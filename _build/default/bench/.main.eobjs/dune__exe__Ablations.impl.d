bench/ablations.ml: Array Coin_expose Coin_gen Coin_oracle Eig_ba Fun Gf2k List Metrics Option Phase_king Prng Refresh Sealed_coin Table Vss
