bench/main.mli:
