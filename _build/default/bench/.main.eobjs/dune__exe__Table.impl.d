bench/table.ml: Float List Printf String
