(* Ablation benches for the design choices DESIGN.md §5 calls out. Each
   compares the paper's choice against the obvious alternative,
   implemented for real in the library. *)

let fi = float_of_int

module F = Gf2k.GF16
module V = Vss.Make (F)
module O = Coin_oracle.Make (F)
module CG = Coin_gen.Make (F)
module CE = Coin_expose.Make (F)
module C = Sealed_coin.Make (F)

(* --- A1: Horner-chained batch combination vs naive power sum ------- *)

let horner_vs_naive () =
  let g = Prng.of_int 1 in
  let rows =
    List.concat_map
      (fun m ->
        let shares = Array.init m (fun _ -> F.random g) in
        let r = F.random g in
        let measure combine =
          let _, snap = Metrics.with_counting (fun () -> ignore (combine ~r shares)) in
          snap
        in
        let h = measure V.combine and nv = measure V.combine_naive in
        (* Cross-check the two agree before trusting the numbers. *)
        assert (F.equal (V.combine ~r shares) (V.combine_naive ~r shares));
        [
          Table.
            [
              S "Horner (Fig. 3 step 2)"; I m; I h.Metrics.field_mults;
              I h.Metrics.field_adds;
            ];
          Table.
            [
              S "naive power sum"; I m; I nv.Metrics.field_mults;
              I nv.Metrics.field_adds;
            ];
        ])
      [ 64; 256 ]
  in
  Table.print ~title:"A1: batch share combination (per player, one batch)"
    ~claim:
      "Fig. 3 step 2: '(this can be efficiently computed as \
       (...((r a_M + a_{M-1})r + ...)r)' — M multiplications instead of ~2M"
    ~headers:[ "method"; "M"; "mults"; "adds" ]
    rows

(* --- A2: one shared check coin vs one per dealer ------------------- *)

let shared_check_coin () =
  let n = 13 and t = 2 and m = 16 in
  let run share =
    let prng = Prng.of_int 2 in
    let oracle = O.simulated_shared (Prng.of_int 3) ~n ~t in
    let batch = ref None in
    let _, snap =
      Metrics.with_counting (fun () ->
          batch :=
            CG.run ~share_check_coin:share ~prng
              ~oracle:(fun () -> O.draw oracle)
              ~n ~t ~m ())
    in
    match !batch with
    | None -> failwith "Coin-Gen failed"
    | Some b -> (snap, b)
  in
  let shared_snap, shared_batch = run true in
  let per_dealer_snap, per_dealer_batch = run false in
  let row label (snap, batch) =
    Table.
      [
        S label;
        I batch.CG.seed_coins_consumed;
        F (fi snap.Metrics.interpolations /. fi n);
        I snap.Metrics.messages;
        I snap.Metrics.rounds;
      ]
  in
  Table.print ~title:"A2: shared check coin across the n parallel Bit-Gens"
    ~claim:
      "Theorem 2 remark: 'n polynomial interpolations have been saved by \
       using the same coin for all the invocations of Bit-Gen' — and n-1 \
       seed coins per batch"
    ~headers:[ "variant"; "seed coins"; "interps/pl"; "msgs"; "rounds" ]
    [
      row "shared r (the paper)" (shared_snap, shared_batch);
      row "per-dealer r (ablation)" (per_dealer_snap, per_dealer_batch);
    ]

(* --- A3: Berlekamp-Welch vs plain Lagrange at exposure ------------- *)

let bw_vs_lagrange () =
  let n = 13 and t = 2 in
  let g = Prng.of_int 4 in
  let trials = 300 in
  let wrong_bw = ref 0 and wrong_lagrange = ref 0 in
  let bw_cost = ref Metrics.zero and lagrange_cost = ref Metrics.zero in
  for _ = 1 to trials do
    let coin = C.dealer_coin g ~n ~t in
    let truth = Option.get (C.ground_truth coin) in
    (* One Byzantine sender lies to everyone. *)
    let liar = Prng.int g n in
    let behavior i = if i = liar then CE.Send (F.random g) else CE.Honest in
    let honest_wrong values =
      List.exists
        (fun i ->
          i <> liar
          &&
          match values.(i) with
          | Some v -> not (F.equal v truth)
          | None -> true)
        (List.init n Fun.id)
    in
    let bw, c1 =
      Metrics.with_counting (fun () -> CE.run ~sender_behavior:behavior coin)
    in
    let lagr, c2 =
      Metrics.with_counting (fun () ->
          CE.run_lagrange ~sender_behavior:behavior coin)
    in
    bw_cost := Metrics.add !bw_cost c1;
    lagrange_cost := Metrics.add !lagrange_cost c2;
    if honest_wrong bw then incr wrong_bw;
    if honest_wrong lagr then incr wrong_lagrange
  done;
  let row label cost wrong =
    Table.
      [
        S label;
        F (fi cost.Metrics.field_mults /. fi trials /. fi n);
        F (fi cost.Metrics.field_invs /. fi trials /. fi n);
        I wrong;
        I trials;
      ]
  in
  Table.print
    ~title:"A3: exposure decoding — robust (Berlekamp-Welch) vs plain Lagrange"
    ~claim:
      "Fig. 6 step 2 prescribes the BW decoder; interpolating the first t+1 \
       shares is cheaper but a single lying sender corrupts the coin for \
       some honest player and breaks unanimity"
    ~headers:
      [ "decoder"; "mults/pl/coin"; "invs/pl/coin"; "corrupted exposures"; "trials" ]
    [
      row "Berlekamp-Welch (the paper)" !bw_cost !wrong_bw;
      row "plain Lagrange (ablation)" !lagrange_cost !wrong_lagrange;
    ]

(* --- A4: "run any BA protocol" — phase-king vs EIG ----------------- *)

let ba_choice () =
  let n = 13 and t = 2 and m = 16 in
  let run ba =
    let prng = Prng.of_int 5 in
    let og = Prng.of_int 6 in
    let oracle () = Metrics.without_counting (fun () -> F.random og) in
    let _, snap =
      Metrics.with_counting (fun () ->
          match CG.run ?ba ~prng ~oracle ~n ~t ~m () with
          | Some _ -> ()
          | None -> failwith "Coin-Gen failed")
    in
    snap
  in
  let pk = run None in
  let eig = run (Some (fun inputs -> Eig_ba.run ~n ~t ~inputs ())) in
  (* The BA protocols in isolation, split inputs. *)
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let solo f =
    let _, snap = Metrics.with_counting (fun () -> ignore (f ())) in
    snap
  in
  let pk_solo = solo (fun () -> Phase_king.run ~n ~t ~inputs ()) in
  let eig_solo = solo (fun () -> Eig_ba.run ~n ~t ~inputs ()) in
  let row label snap =
    Table.
      [
        S label; I snap.Metrics.messages; I snap.Metrics.bytes;
        I snap.Metrics.rounds;
      ]
  in
  Table.print ~title:"A4: the BA sub-protocol of Coin-Gen step 10"
    ~claim:
      "'Run any BA protocol' — the default is phase-king (O(t n^2) bits); \
       EIG matches the guarantees in fewer rounds but ships \
       Theta(n^(t+1)) values: ~130x the BA bytes at t = 2 and growing by \
       ~n per extra fault"
    ~headers:[ "variant"; "msgs"; "bytes"; "rounds" ]
    [
      row "phase-king alone" pk_solo;
      row "EIG alone" eig_solo;
      row "Coin-Gen w/ phase-king (default)" pk;
      row "Coin-Gen w/ EIG" eig;
    ]

(* --- X1: the pro-active refresh extension -------------------------- *)

let refresh_cost () =
  let module R = Refresh.Make (F) in
  let n = 13 and t = 2 in
  let rows =
    List.map
      (fun m ->
        let g = Prng.of_int (700 + m) in
        let coins =
          List.init m (fun _ -> C.dealer_coin g ~n ~t)
        in
        let og = Prng.of_int (800 + m) in
        let oracle () = Metrics.without_counting (fun () -> F.random og) in
        let _, snap =
          Metrics.with_counting (fun () ->
              match R.run ~prng:(Prng.split g) ~oracle coins with
              | Some _ -> ()
              | None -> failwith "refresh failed")
        in
        Table.
          [
            I m;
            F (fi (snap.Metrics.field_adds + snap.Metrics.field_mults)
               /. fi n /. fi m);
            F (fi snap.Metrics.interpolations /. fi n /. fi m);
            F (fi snap.Metrics.bytes /. fi m);
          ])
      [ 8; 32; 128 ]
  in
  Table.print
    ~title:"X1 (extension): pro-active share refresh, amortized per coin"
    ~claim:
      "Sections 1.2/5 motivate pro-active security; refreshing rides the \
       same batch machinery as generation (zero-sharings + the F(0)=0 \
       acceptance rule), so its amortized cost matches Coin-Gen's and a \
       mobile adversary's stolen shares expire every epoch"
    ~headers:[ "coins refreshed"; "ops/pl/coin"; "interps/pl/coin"; "bytes/coin" ]
    rows

let all () =
  horner_vs_naive ();
  shared_check_coin ();
  bw_vs_lagrange ();
  ba_choice ();
  refresh_cost ()
