(* Plain-text table rendering for the experiment harness. *)

type cell = S of string | I of int | F of float | P of float  (* P: probability *)

let string_of_cell = function
  | S s -> s
  | I i -> string_of_int i
  | F f ->
      if Float.abs f >= 1000.0 then Printf.sprintf "%.0f" f
      else Printf.sprintf "%.2f" f
  | P p -> Printf.sprintf "%.5f" p

let print ~title ~claim ~headers rows =
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "paper: %s\n" claim;
  let cells = List.map (List.map string_of_cell) rows in
  let widths =
    List.mapi
      (fun c h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row c)))
          (String.length h) cells)
      headers
  in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line l = print_endline ("  " ^ String.concat "  " l) in
  line (List.map2 pad widths headers);
  line (List.map (fun w -> String.make w '-') widths);
  List.iter (fun row -> line (List.map2 pad widths row)) cells;
  flush stdout
