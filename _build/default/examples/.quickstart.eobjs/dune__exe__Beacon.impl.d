examples/beacon.ml: Gf2k List Net Phase_king Pool Printf Prng Randomness String
