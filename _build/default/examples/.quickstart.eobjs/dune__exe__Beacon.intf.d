examples/beacon.mli:
