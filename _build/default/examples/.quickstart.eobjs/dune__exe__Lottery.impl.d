examples/lottery.ml: Array Gf2k List Metrics Pool Printf Prng String
