examples/lottery.mli:
