examples/proactive_refresh.ml: Array Gf2k List Net Phase_king Pool Printf Prng String
