examples/proactive_refresh.mli:
