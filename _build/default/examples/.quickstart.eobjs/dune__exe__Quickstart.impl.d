examples/quickstart.ml: Fmt Gf2k Metrics Pool Printf Prng
