examples/quickstart.mli:
