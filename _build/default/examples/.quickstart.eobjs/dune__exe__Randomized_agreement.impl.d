examples/randomized_agreement.ml: Array Bool Common_coin_ba Gf2k Hashtbl List Net Option Phase_king Pool Printf Prng String
