examples/randomized_agreement.mli:
