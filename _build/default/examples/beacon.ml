(* A randomness beacon: the "application executed regularly" the paper
   keeps invoking (Section 1: "a distributed application is typically
   executed not once, but regularly, at intervals, as parties need it.
   That's why it is called an application.")

   Every beacon round publishes (1) a fresh shared random value nobody
   could predict or bias, and (2) a committee for the next round derived
   from it. Modern deployments of exactly this shape exist (drand-style
   beacons); here the supply chain is the paper's: a bootstrapped D-PRBG
   pool, trusted dealer at setup only, Byzantine players throughout.

     dune exec examples/beacon.exe *)

module F = Gf2k.GF32
module Pool = Pool.Make (F)
module CG = Pool.CG
module CE = Pool.CE
module R = Randomness.Make (F)

let () =
  let n = 13 and t = 2 in
  let g = Prng.of_int 90210 in
  let faults = Net.Faults.make ~n ~faulty:[ 1; 7 ] in
  let adversary _ =
    CG.faulty_with ~as_dealer:(CG.BG.Bad_degree [ 0 ])
      ~as_ba:(Phase_king.Fixed false) faults
  in
  let expose_behavior _ i =
    if Net.Faults.is_faulty faults i then CE.Send F.zero else CE.Honest
  in
  let pool =
    Pool.create ~adversary ~expose_behavior ~prng:(Prng.split g) ~n ~t
      ~batch_size:48 ~refill_threshold:3 ~initial_seed:6 ()
  in
  let source () = Pool.draw_kary pool in

  Printf.printf
    "Randomness beacon, n=%d t=%d (players 1 and 7 Byzantine)\n\
     round | beacon value | next-round committee\n\
     ------+--------------+---------------------\n"
    n t;
  let committee = ref (R.committee source ~size:4 ~n) in
  for round = 1 to 30 do
    let value = source () in
    let next = R.committee source ~size:4 ~n in
    Printf.printf "  %3d | %s   | {%s}\n" round (F.to_string value)
      (String.concat "," (List.map string_of_int !committee));
    committee := next
  done;

  (* The derivation is a deterministic function of the exposed coins, so
     every honest player computes identical committees — demonstrate by
     replaying the same coin stream through a second derivation. *)
  let replay_values = ref [] in
  let recording_source () =
    let v = source () in
    replay_values := v :: !replay_values;
    v
  in
  let c1 = R.committee recording_source ~size:5 ~n in
  let stream = ref (List.rev !replay_values) in
  let replay_source () =
    match !stream with
    | v :: rest ->
        stream := rest;
        v
    | [] -> source ()
  in
  let c2 = R.committee replay_source ~size:5 ~n in
  Printf.printf "\nagreement check: committee derived twice from the same coins: %s vs %s\n"
    (String.concat "," (List.map string_of_int c1))
    (String.concat "," (List.map string_of_int c2));
  assert (c1 = c2);

  let s = Pool.stats pool in
  Printf.printf
    "\nsupply: %d coins exposed across %d refills; dealer coins: %d (setup \
     only); unanimity failures: %d\n"
    s.Pool.coins_exposed s.Pool.refills s.Pool.dealer_coins
    s.Pool.unanimity_failures
