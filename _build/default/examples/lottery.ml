(* Distributed lottery / leader election on k-ary coins.

   A recurring application drawing k-ary coins: each round elects a
   leader nobody could predict or bias — the same mechanism Coin-Gen
   itself uses in step 9 to pick the proposer. The demo elects 2000
   leaders among 13 players from pool coins and chi-square-checks the
   fairness of the outcome, then demonstrates the paper's "random
   access" property (Section 1.4: "our scheme also provides random
   access to the bits"): any coin of a generated batch can be exposed
   directly, in any order, without touching the others.

     dune exec examples/lottery.exe *)

module F = Gf2k.GF32
module Pool = Pool.Make (F)
module CG = Pool.CG
module CE = Pool.CE

let () =
  let n = 13 and t = 2 in
  let pool =
    Pool.create ~prng:(Prng.of_int 31337) ~n ~t ~batch_size:64
      ~refill_threshold:3 ~initial_seed:6 ()
  in
  let elections = 2000 in
  let wins = Array.make n 0 in
  for _ = 1 to elections do
    let coin = Pool.draw_kary pool in
    let leader = CG.leader_index coin ~n in
    wins.(leader) <- wins.(leader) + 1
  done;
  Printf.printf "%d leader elections among %d players:\n" elections n;
  Array.iteri
    (fun i w ->
      Printf.printf "  player %2d: %4d wins %s\n" i w
        (String.make (w / 10) '*'))
    wins;
  let expected = float_of_int elections /. float_of_int n in
  let chi2 =
    Array.fold_left
      (fun acc w ->
        let d = float_of_int w -. expected in
        acc +. (d *. d /. expected))
      0.0 wins
  in
  Printf.printf "chi-square (12 dof, expect ~12, alarm > 33): %.1f\n\n" chi2;

  (* Random access: build one batch and expose its coins out of order. *)
  let prng = Prng.of_int 999 in
  let seed = Prng.split prng in
  let oracle () = Metrics.without_counting (fun () -> F.random seed) in
  match CG.run ~prng ~oracle ~n ~t ~m:8 () with
  | None -> print_endline "Coin-Gen failed (negligible-probability event)"
  | Some batch ->
      print_endline "random access into one generated batch of 8 coins:";
      List.iter
        (fun h ->
          match (CE.run (CG.coin batch h)).(0) with
          | Some v -> Printf.printf "  coin #%d -> %s\n" h (F.to_string v)
          | None -> Printf.printf "  coin #%d -> decode failure\n" h)
        [ 5; 0; 7; 2 ];
      print_endline "(coins 1, 3, 4, 6 remain sealed and usable later)"
