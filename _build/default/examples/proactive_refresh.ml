(* Pro-active security: the adversary moves between epochs.

   Section 1.2: "one of the motivations and applications of our work is
   pro-active security [...], which deals with settings where intruders
   are allowed to move over time. Our solution to multiple-coin
   generation can be easily adapted to this scenario." Unlike the
   amortization schemes the paper contrasts itself with ([1], [13]),
   nothing here assumes the faulty set stays fixed: each Coin-Gen run
   only needs *some* t-bounded corrupted set during that run.

   This demo runs 12 epochs. In each epoch the adversary corrupts a
   fresh set of t players (dealing garbage, going silent in gamma
   rounds, voting against in BA, lying at exposure), and the application
   draws a burst of coins. The pool never needs the dealer again.

     dune exec examples/proactive_refresh.exe *)

module F = Gf2k.GF32
module Pool = Pool.Make (F)
module CG = Pool.CG
module CE = Pool.CE

let () =
  let n = 13 and t = 2 in
  let g = Prng.of_int 77007 in
  (* One corrupted set per refill epoch, drawn ahead of time. *)
  let epochs = 128 in
  let fault_sets = Array.init epochs (fun _ -> Net.Faults.random g ~n ~t) in
  let adversary refill =
    let faults = fault_sets.(refill mod epochs) in
    CG.faulty_with
      ~as_dealer:(CG.BG.Inconsistent_to [ 0; 1; 2 ])
      ~as_gamma:CG.Silent_vec ~as_ba:(Phase_king.Fixed false) faults
  in
  let expose_behavior refill i =
    let faults = fault_sets.(refill mod epochs) in
    if Net.Faults.is_faulty faults i then CE.Send (F.of_int 0xDEAD)
    else CE.Honest
  in
  let pool =
    Pool.create ~adversary ~expose_behavior ~prng:(Prng.split g) ~n ~t
      ~batch_size:24 ~refill_threshold:3 ~initial_seed:6 ()
  in
  Printf.printf "Mobile adversary, n=%d t=%d, %d application epochs\n\n" n t 12;
  for epoch = 1 to 12 do
    let refills_before = (Pool.stats pool).Pool.refills in
    let burst = 12 + Prng.int g 10 in
    let sample = ref F.zero in
    for _ = 1 to burst do
      sample := Pool.draw_kary pool
    done;
    (* Epoch boundary: re-randomize every sealed coin in stock, so the
       shares this epoch's intruders stole are worthless next epoch. *)
    Pool.refresh pool;
    let s = Pool.stats pool in
    let corrupted =
      if s.Pool.refills > refills_before then
        let f = fault_sets.(refills_before mod epochs) in
        Printf.sprintf "regenerated under corrupted set {%s}"
          (String.concat ","
             (List.map string_of_int (Net.Faults.faulty f)))
      else "served from stock"
    in
    Printf.printf "  epoch %2d: drew %2d coins, refreshed %2d (last=%s) - %s\n"
      epoch burst (Pool.available pool) (F.to_string !sample) corrupted
  done;
  let s = Pool.stats pool in
  Printf.printf
    "\ntotals: %d coins exposed / %d generated across %d refills, %d share \
     refreshes\n\
     seed coins consumed: %d; unanimity failures: %d\n\
     The corrupted set changed on every refill, the sealed coins were\n\
     re-randomized at every epoch boundary, and the supply never paused -\n\
     the pro-active setting the paper's bootstrapping was designed for.\n"
    s.Pool.coins_exposed s.Pool.generated_coins s.Pool.refills s.Pool.refreshes
    s.Pool.seed_coins_consumed s.Pool.unanimity_failures
