(* Quickstart: bootstrap a shared-coin pool and draw coins from it.

   Thirteen players (n = 6t+1 with t = 2) obtain six sealed coins from a
   trusted dealer once, then stretch them forever: every time the pool
   runs low, a Coin-Gen run spends two sealed coins and deposits a batch
   of thirty-two fresh ones.

     dune exec examples/quickstart.exe *)

module F = Gf2k.GF32 (* the shared coins live in GF(2^32): 32-ary coins *)
module Pool = Pool.Make (F)

let () =
  let n = 13 and t = 2 in
  let pool =
    Pool.create
      ~prng:(Prng.of_int 2026) (* deterministic demo; vary for fresh coins *)
      ~n ~t ~batch_size:32 ~refill_threshold:3 ~initial_seed:6 ()
  in
  Printf.printf "Bootstrapped a %d-player pool (tolerating %d Byzantine)\n" n t;
  Printf.printf "Initial sealed coins from the trusted dealer: %d\n\n"
    (Pool.available pool);

  (* k-ary coins: uniform field elements every player agrees on. *)
  print_endline "Ten shared 32-ary coins:";
  for i = 1 to 10 do
    Printf.printf "  coin %2d = %s\n" i (F.to_string (Pool.draw_kary pool))
  done;

  (* Binary coins: one sealed coin funds k_bits of them. *)
  print_endline "\nForty shared binary coins:";
  print_string "  ";
  for _ = 1 to 40 do
    print_char (if Pool.draw_bit pool then '1' else '0')
  done;
  print_newline ();

  (* Draw enough to force several refills, with cost accounting on. *)
  let (), cost =
    Metrics.with_counting (fun () ->
        for _ = 1 to 100 do
          ignore (Pool.draw_kary pool)
        done)
  in
  let s = Pool.stats pool in
  Printf.printf "\nAfter %d k-ary draws total:\n" s.Pool.coins_exposed;
  Printf.printf "  refills (Coin-Gen runs)   : %d\n" s.Pool.refills;
  Printf.printf "  coins generated           : %d\n" s.Pool.generated_coins;
  Printf.printf "  seed coins consumed       : %d\n" s.Pool.seed_coins_consumed;
  Printf.printf "  dealer coins (setup only) : %d\n" s.Pool.dealer_coins;
  Printf.printf "  BA iterations             : %d\n" s.Pool.ba_iterations;
  Printf.printf "  unanimity failures        : %d\n" s.Pool.unanimity_failures;
  Printf.printf "\nCost of the last 100 draws (all players, all refills):\n  %s\n"
    (Fmt.str "%a" Metrics.pp cost);
  Printf.printf
    "\nThe dealer was used once, at setup. Every coin after the first six\n\
     came out of the D-PRBG itself - that is the bootstrap of Fig. 1.\n"
