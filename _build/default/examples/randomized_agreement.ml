(* Randomized Byzantine agreement fed by the D-PRBG pool.

   The paper's motivation: applications like BA need shared coins "in
   bulk", and they are executed "not once, but regularly". Here a
   13-player system runs 50 consecutive Byzantine agreements on random
   (split) inputs, with 2 Byzantine players actively misbehaving in both
   the agreement itself and the coin machinery underneath. Every phase
   of every agreement consumes one common coin from the bootstrapped
   pool.

     dune exec examples/randomized_agreement.exe *)

module F = Gf2k.GF32
module Pool = Pool.Make (F)
module CG = Pool.CG
module CE = Pool.CE

let () =
  let n = 13 and t = 2 in
  let g = Prng.of_int 424242 in
  let faults = Net.Faults.make ~n ~faulty:[ 4; 11 ] in

  (* Byzantine players attack the coin generation... *)
  let adversary _refill =
    CG.faulty_with
      ~as_dealer:(CG.BG.Bad_degree [ 0; 1 ])
      ~as_ba:(Phase_king.Fixed false) faults
  in
  (* ...and lie when coins are exposed... *)
  let expose_behavior _refill i =
    if Net.Faults.is_faulty faults i then CE.Send F.zero else CE.Honest
  in
  let pool =
    Pool.create ~adversary ~expose_behavior ~prng:(Prng.split g) ~n ~t
      ~batch_size:32 ~refill_threshold:3 ~initial_seed:6 ()
  in
  (* ...and in the agreement protocol itself. *)
  let ba_behavior i =
    if Net.Faults.is_faulty faults i then
      Common_coin_ba.Fixed (Prng.bool g)
    else Common_coin_ba.Honest
  in

  Printf.printf
    "50 Byzantine agreements, n=%d t=%d, players %s Byzantine everywhere\n\n" n
    t
    (String.concat "," (List.map string_of_int (Net.Faults.faulty faults)));

  let phase_histogram = Hashtbl.create 8 in
  let agreements = ref 0 and validity_holds = ref 0 and validity_applicable = ref 0 in
  for round = 1 to 50 do
    let inputs = Array.init n (fun _ -> Prng.bool g) in
    match
      Common_coin_ba.run ~behavior:ba_behavior
        ~coin:(fun () -> Pool.draw_bit pool)
        ~n ~t ~max_phases:64 ~inputs ()
    with
    | None -> Printf.printf "  round %2d: DID NOT TERMINATE\n" round
    | Some r ->
        let honest = Net.Faults.honest faults in
        let decisions =
          List.map (fun i -> r.Common_coin_ba.decisions.(i)) honest
        in
        let agreed =
          match decisions with
          | [] -> true
          | d :: rest -> List.for_all (Bool.equal d) rest
        in
        if agreed then incr agreements;
        let honest_inputs = List.map (fun i -> inputs.(i)) honest in
        (match honest_inputs with
        | b :: rest when List.for_all (Bool.equal b) rest ->
            incr validity_applicable;
            if List.for_all (Bool.equal b) decisions then incr validity_holds
        | _ -> ());
        Hashtbl.replace phase_histogram r.Common_coin_ba.phases
          (1
          + Option.value ~default:0
              (Hashtbl.find_opt phase_histogram r.Common_coin_ba.phases))
  done;

  Printf.printf "agreement held in   : %d/50 runs\n" !agreements;
  Printf.printf "validity held in    : %d/%d applicable runs\n" !validity_holds
    !validity_applicable;
  print_endline "phases needed (histogram):";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) phase_histogram []
  |> List.sort compare
  |> List.iter (fun (phases, count) ->
         Printf.printf "  %2d phase%s: %2d runs %s\n" phases
           (if phases = 1 then " " else "s")
           count
           (String.make count '#'));

  let s = Pool.stats pool in
  Printf.printf
    "\ncoin supply: %d coins exposed, %d refills, %d seed coins consumed,\n\
    \             dealer involved only for the first %d coins\n"
    s.Pool.coins_exposed s.Pool.refills s.Pool.seed_coins_consumed
    s.Pool.dealer_coins
