lib/bcast/broadcast.ml: Array Metrics
