lib/bcast/broadcast.mli:
