lib/bcast/broadcast_protocol.ml: Array Gradecast
