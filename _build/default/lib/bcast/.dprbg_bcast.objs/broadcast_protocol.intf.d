lib/bcast/broadcast_protocol.mli: Gradecast
