lib/bcast/eig_ba.ml: Array Fun Hashtbl List Metrics Net Option
