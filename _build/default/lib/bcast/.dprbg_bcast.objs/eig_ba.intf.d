lib/bcast/eig_ba.mli:
