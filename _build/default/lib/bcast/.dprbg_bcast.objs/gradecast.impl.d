lib/bcast/gradecast.ml: Array List Metrics Net
