lib/bcast/gradecast.mli:
