lib/bcast/multivalued_ba.ml: Array List Net Option
