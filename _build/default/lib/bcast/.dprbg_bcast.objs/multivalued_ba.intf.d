lib/bcast/multivalued_ba.mli:
