lib/bcast/phase_king.ml: Array List Metrics Net
