lib/bcast/phase_king.mli:
