let round ~byte_size ~n announce =
  Metrics.tick_round ();
  Array.init n (fun i ->
      match announce i with
      | None -> None
      | Some v ->
          Metrics.tick_message ~bytes_len:(byte_size v);
          Some v)
