let run ?dealer_behavior ?follower_behavior ~ba ~equal ~byte_size ~n ~t ~dealer
    ~value () =
  let outcomes =
    Gradecast.run ?dealer_behavior ?follower_behavior ~equal ~byte_size ~n ~t
      ~dealer ~value ()
  in
  (* Agree on whether the grade-cast was unambiguous. If any honest
     player saw confidence 2, every honest player holds the same value
     with confidence >= 1, so delivering after a positive decision is
     consistent. *)
  let inputs = Array.init n (fun i -> outcomes.(i).Gradecast.confidence = 2) in
  let decisions = ba inputs in
  Array.init n (fun i ->
      if decisions.(i) && outcomes.(i).Gradecast.confidence >= 1 then
        outcomes.(i).Gradecast.value
      else None)
