(** Broadcast from grade-cast plus Byzantine agreement — the
    construction the paper alludes to when it motivates cheap coins:
    "Coins are often used as a source of randomness to execute Byzantine
    agreement, and hence implement a broadcast channel. Thus, we will
    omit the assumption of a broadcast channel from the model."
    (Section 4.)

    The {!Broadcast} module is the {e assumed} channel of the Section-3
    model; this module {e implements} one over point-to-point links
    ([n >= 3t + 1]): the dealer grade-casts its value; every player
    feeds "did I see it with confidence 2?" into a binary BA; if the BA
    accepts, players deliver the grade-cast value (identical at all
    honest players whenever anyone honest had confidence 2), otherwise
    they deliver nothing.

    Guarantees:
    {ul
    {- {b Consistency}: all honest players deliver the same
       [value option];}
    {- {b Validity}: if the dealer is honest, all honest players deliver
       its value.}}

    The BA is a parameter, so callers choose the paper's full circle:
    plug in {!Phase_king} (deterministic) or a common-coin randomized BA
    fed by the D-PRBG pool — coins implementing the broadcast that the
    coin machinery of Section 3 presumes. *)

val run :
  ?dealer_behavior:'v Gradecast.dealer_behavior ->
  ?follower_behavior:(int -> 'v Gradecast.follower_behavior) ->
  ba:(bool array -> bool array) ->
  equal:('v -> 'v -> bool) ->
  byte_size:('v -> int) ->
  n:int ->
  t:int ->
  dealer:int ->
  value:'v ->
  unit ->
  'v option array
(** Delivered value per player ([None] = the broadcast aborted — only
    possible with a faulty dealer). [ba] must implement agreement and
    validity for [n, t]; it receives each player's input bit and returns
    the decisions. *)
