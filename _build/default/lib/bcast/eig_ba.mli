(** Exponential-information-gathering Byzantine agreement (EIG).

    The classic [t + 1]-round deterministic BA for [n >= 3t + 1]
    (Bar-Noy–Dolev–Dwork–Strong style, as presented by Lynch): players
    relay everything they heard, building a tree of claims indexed by
    relay chains of distinct players, then decide by recursive majority.

    [Coin-Gen] step 10 says "run {e any} BA protocol"; this module is the
    second implementation (next to {!Phase_king}) and exists chiefly for
    the ablation bench: it matches phase-king's guarantees —

    {ul
    {- {b Agreement} and {b Validity} against any [<= t] Byzantine
       players,}
    {- {b Termination} after exactly [t + 1] rounds —}}

    but its communication is [Theta(n^(t+1))] values against phase-king's
    [O(t n^2)], which is why the frugal protocol is the default. Only
    sensible for small [t]. *)

type behavior =
  | Honest
  | Silent
  | Fixed of bool  (** Claim this bit for every tree node, every round. *)
  | Arbitrary of (round:int -> dst:int -> path:int list -> bool option)
      (** Per-round, per-destination, per-node claims ([None] = omit the
          node). *)

val run :
  ?behavior:(int -> behavior) ->
  n:int ->
  t:int ->
  inputs:bool array ->
  unit ->
  bool array
(** One agreement; result indexed by player (faulty entries
    meaningless). Requires [n >= 3t + 1]; refuses [t > 4] (the tree
    would be astronomically large). Ticks {!Metrics.tick_ba} once. *)
