(** Grade-Cast — the three-round graded-broadcast primitive of Feldman
    and Micali used by [Coin-Gen] step 7.

    A designated dealer distributes a value over point-to-point channels;
    every player outputs a value and a confidence in [{0, 1, 2}]. With
    [n >= 3t + 1] the primitive guarantees (quoting the paper's summary):
    {ul
    {- if the dealer is honest, every honest player outputs the dealer's
       value with confidence 2;}
    {- "a confidence of 2 indicates that all other honest players have
       seen the value": if any honest player outputs [(v, 2)], every
       honest player outputs [v] with confidence [>= 1];}
    {- honest players with confidence [>= 1] agree on the value.}}

    Round structure: the dealer sends its value; everybody echoes what it
    received; everybody re-echoes any value supported by [n - t] first
    echoes; outputs are graded by the support of the second echo. *)

type 'v dealer_behavior =
  | Dealer_honest
  | Dealer_silent
  | Dealer_equivocate of (int -> 'v option)
      (** Value (or silence) per destination — the canonical Byzantine
          dealer. *)

type 'v follower_behavior =
  | Follower_honest
  | Follower_silent
  | Follower_fixed of 'v
      (** Echo this value to everyone in both echo rounds, regardless of
          what was received. *)
  | Follower_arbitrary of (round:int -> dst:int -> 'v option)
      (** Full per-round, per-destination control ([round] is 2 or 3). *)

type 'v outcome = { value : 'v option; confidence : int }

val run :
  ?dealer_behavior:'v dealer_behavior ->
  ?follower_behavior:(int -> 'v follower_behavior) ->
  equal:('v -> 'v -> bool) ->
  byte_size:('v -> int) ->
  n:int ->
  t:int ->
  dealer:int ->
  value:'v ->
  unit ->
  'v outcome array
(** One grade-cast execution on a fresh synchronous network; the result
    is indexed by player (entries of faulty players are computed but
    meaningless). Ticks {!Metrics.tick_gradecast} once, plus the usual
    message/round accounting. *)

val run_all :
  ?dealer_behavior:(int -> 'v dealer_behavior) ->
  ?follower_behavior:(int -> 'v follower_behavior) ->
  equal:('v -> 'v -> bool) ->
  byte_size:('v -> int) ->
  n:int ->
  t:int ->
  values:(int -> 'v) ->
  unit ->
  'v outcome array array
(** All [n] players grade-cast simultaneously, each the dealer of its
    own [values i], sharing the three rounds — the parallel composition
    [Coin-Gen] step 7 uses. [result.(receiver).(dealer)] is what
    [receiver] outputs for [dealer]'s cast. A follower behaviour applies
    uniformly across all [n] dealer slots (its echo vector repeats the
    lie per slot). Ticks [n] grade-casts but only 3 rounds. *)
