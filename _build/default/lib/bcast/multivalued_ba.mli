(** Multivalued Byzantine agreement from binary agreement (the
    Turpin–Coan reduction, [n >= 3t + 1]).

    The paper's protocols agree on richer values than bits — [Coin-Gen]
    step 10 effectively decides a (leader, clique) proposal — and the
    classic way to get there from a binary primitive is this reduction:
    two vote rounds establish that at most one candidate value can have
    honest support, then a binary BA decides whether that support was
    strong enough to adopt it; otherwise everyone falls back to a
    default.

    Guarantees (for any [<= t] Byzantine players, given a correct binary
    [ba]):
    {ul
    {- {b Agreement}: all honest players output the same value;}
    {- {b Validity}: if all honest players start with [v], they output
       [Some v];}
    {- {b Non-triviality}: [None] (the default) is only possible when
       honest inputs disagree.}}

    Like {!Broadcast_protocol}, the binary BA is a parameter: plug in
    {!Phase_king}, {!Eig_ba}, or a pool-fed common-coin BA. *)

type 'v behavior =
  | Honest
  | Silent
  | Fixed of 'v  (** Vote this value in both rounds. *)
  | Arbitrary of (round:int -> dst:int -> 'v option option)
      (** [None] = silent to that destination; [Some w] sends [w]
          ([w = None] encodes round 2's explicit ⊥). *)

val run :
  ?behavior:(int -> 'v behavior) ->
  ba:(bool array -> bool array) ->
  equal:('v -> 'v -> bool) ->
  byte_size:('v -> int) ->
  n:int ->
  t:int ->
  inputs:'v array ->
  unit ->
  'v option array
(** Per-player outcome; honest entries are all equal. [None] means the
    players agreed to fall back to the application's default. *)
