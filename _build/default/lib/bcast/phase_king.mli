(** Deterministic binary Byzantine agreement (phase-king).

    [Coin-Gen] step 10 "run[s] any BA protocol"; the paper explicitly
    assumes deterministic BA for simplicity ("we shall assume in this
    presentation that deterministic BA is carried out", Section 1.2).
    This is the classic phase-king algorithm: [t + 1] phases of two
    rounds each, king [k] in phase [k]. The simple variant implemented
    here requires [n > 4t] — amply satisfied in the D-PRBG's
    [n >= 6t + 1] model — and guarantees, for any Byzantine behaviour of
    [<= t] players:
    {ul
    {- {b Agreement}: all honest players decide the same bit;}
    {- {b Validity}: if all honest players start with [b], they decide
       [b];}
    {- {b Termination}: after exactly [t + 1] phases.}} *)

type behavior =
  | Honest
  | Silent
  | Fixed of bool  (** Send this bit everywhere, every round. *)
  | Arbitrary of (phase:int -> round:int -> dst:int -> bool option)
      (** Full control; [round] is 1 (exchange) or 2 (king). *)

val run :
  ?behavior:(int -> behavior) ->
  n:int ->
  t:int ->
  inputs:bool array ->
  unit ->
  bool array
(** One agreement on a fresh network; result indexed by player (faulty
    entries meaningless). Requires [n >= 4t + 1]. Ticks
    {!Metrics.tick_ba} once. *)
