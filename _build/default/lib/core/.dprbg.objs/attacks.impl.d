lib/core/attacks.ml: Array Coin_gen Field_intf Gradecast List Metrics Net Phase_king Prng Vss
