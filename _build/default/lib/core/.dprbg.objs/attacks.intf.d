lib/core/attacks.mli: Coin_gen Field_intf Net Prng
