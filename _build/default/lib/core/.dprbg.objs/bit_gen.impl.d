lib/core/bit_gen.ml: Array Berlekamp_welch Field_intf Fun List Net Option Poly Shamir Vss Wire
