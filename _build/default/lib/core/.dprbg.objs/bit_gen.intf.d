lib/core/bit_gen.mli: Field_intf Poly Prng
