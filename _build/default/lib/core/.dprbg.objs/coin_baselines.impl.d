lib/core/coin_baselines.ml: Array Berlekamp_welch Field_intf List Metrics Shamir
