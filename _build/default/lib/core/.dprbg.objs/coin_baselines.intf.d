lib/core/coin_baselines.mli: Field_intf Prng
