lib/core/coin_expose.ml: Array Berlekamp_welch Field_intf List Net Option Poly Sealed_coin Shamir
