lib/core/coin_expose.mli: Field_intf Sealed_coin
