lib/core/coin_gen.ml: Array Bit_gen Field_intf Fun Gradecast List Logs Net Option Phase_king Player_graph Poly Sealed_coin Shamir String Vss Wire
