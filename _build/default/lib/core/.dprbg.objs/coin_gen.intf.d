lib/core/coin_gen.mli: Bit_gen Field_intf Gradecast Net Phase_king Poly Prng Sealed_coin
