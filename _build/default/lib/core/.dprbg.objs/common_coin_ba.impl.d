lib/core/common_coin_ba.ml: Array Fun List Metrics Net
