lib/core/common_coin_ba.mli:
