lib/core/dprbg_version.ml:
