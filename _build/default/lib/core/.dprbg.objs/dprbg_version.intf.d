lib/core/dprbg_version.mli:
