lib/core/pool.ml: Array Coin_expose Coin_gen Common_coin_ba Field_intf Hashtbl List Logs Phase_king Prng Refresh Sealed_coin Wire
