lib/core/pool.mli: Coin_expose Coin_gen Field_intf Prng Sealed_coin
