lib/core/randomness.ml: Array Field_intf Fun List
