lib/core/randomness.mli: Field_intf
