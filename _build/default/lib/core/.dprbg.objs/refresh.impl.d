lib/core/refresh.ml: Array Coin_gen Field_intf List Sealed_coin
