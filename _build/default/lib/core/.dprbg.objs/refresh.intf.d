lib/core/refresh.mli: Coin_gen Field_intf Prng Sealed_coin
