lib/core/sealed_coin.ml: Array Bytes Field_intf List Metrics Option Shamir Wire
