lib/core/sealed_coin.mli: Field_intf Prng Wire
