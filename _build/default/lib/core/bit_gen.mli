(** Protocol [Bit-Gen] (Fig. 4): a dealer shares [M] secrets at once,
    verifiably, over point-to-point channels only.

    The dealer deals [M] degree-[t] polynomials (one message of [M] field
    elements to each player); after the check coin [r] is exposed, every
    player sends the single Horner-combined value
    [gamma_i = r^M a_iM + ... + r a_i1] to everyone; each player then
    runs the Berlekamp–Welch decoder over the [gamma]s it received and
    accepts the dealer iff some degree-[<= t] polynomial [F] agrees with
    at least [n - t] of them, outputting [(F, S)] where [S] is the
    agreeing set (Fig. 4 step 5).

    Because there is no broadcast, players may disagree about a faulty
    dealer (each player only reaches a local verdict) — reconciling the
    views is exactly what [Coin-Gen]'s clique/gradecast/BA machinery is
    for. Soundness is Lemma 5 ([<= M/p] for a bad sharing to survive);
    costs are Lemma 6 / Corollary 2. *)

module Make (F : Field_intf.S) : sig
  module P : module type of Poly.Make (F)

  type dealer_behavior =
    | Honest_dealer
    | Honest_zero_dealer
        (** Honest dealing of [M] sharings of {e zero}: random degree-[t]
            polynomials with constant term 0 — the building block of the
            pro-active share {!Refresh}. The combined check polynomial
            then satisfies [F(0) = 0], which verifiers can demand. *)
    | Silent_dealer
    | Bad_degree of int list
        (** These secret indices get degree-[t+1] polynomials. *)
    | Inconsistent_to of int list
        (** Honest polynomials, but uniformly-random garbage share
            vectors sent to these players. *)
    | Matrix of F.t array array
        (** Fully explicit dealing: [m.(player).(secret)] — the most
            general Byzantine dealer (e.g. the Lemma-3-style targeted
            attack whose combined check collapses to degree [t] on a
            guessed coin). Dimensions must be [n x m]. *)

  type gamma_behavior =
    | Honest_gamma
    | Silent_gamma
    | Fixed_gamma of F.t
    | Gamma_per_dst of (int -> F.t option)

  type player_view = {
    received : F.t array option;
        (** The [M] shares this player got from the dealer. *)
    check_poly : P.t option;
        (** [F] — [None] is Fig. 4's [(⊥, S)] outcome. *)
    support : bool array;
        (** [S]: players whose [gamma] (as seen by this player) lies on
            [F]; all-[false] when [check_poly] is [None]. *)
    gammas : F.t option array;
        (** The raw [gamma_k] this player received, for [Coin-Gen]'s
            graph building. *)
  }

  val run :
    ?dealer_behavior:dealer_behavior ->
    ?gamma_behavior:(int -> gamma_behavior) ->
    prng:Prng.t ->
    n:int ->
    t:int ->
    m:int ->
    dealer:int ->
    r:F.t ->
    unit ->
    player_view array * F.t array array option
  (** One standalone execution. Also returns the dealer's true share
      matrix [shares.(player).(secret)] when the dealer dealt anything
      ([None] for a silent dealer) so callers can build coins from it.
      [r] must be drawn {e after} dealing (the caller owns that
      sequencing; {!Coin_gen} does it with a real coin). *)

  val decode_check :
    n:int -> t:int -> F.t option array -> P.t option * bool array
  (** Fig. 4 step 5 in isolation: Berlekamp–Welch over one player's
      received [gamma]s, requiring [n - t] support. Exposed for
      [Coin-Gen], which decodes one check polynomial per dealer. *)

  val deal_matrix :
    dealer_behavior -> Prng.t -> n:int -> t:int -> m:int -> F.t array array option
  (** Fig. 4 step 1 in isolation: the share matrix
      [shares.(player).(secret)] a dealer with the given behaviour
      produces ([None] for a silent dealer). Exposed for [Coin-Gen]'s
      batched parallel dealing round. *)
end
