module Make (F : Field_intf.S) = struct
  module S = Shamir.Make (F)
  module BW = Berlekamp_welch.Make (F)

  (* Robust reconstruction as each player performs it at exposure. *)
  let decode_per_player ~n ~t shares_by_sender =
    Array.init n (fun _ ->
        let points =
          List.init n (fun j -> (S.eval_point j, shares_by_sender.(j)))
        in
        let e = (n - t - 1) / 2 in
        match BW.decode ~max_degree:t ~max_errors:e points with
        | Some f -> BW.P.eval f F.zero
        | None -> assert false (* all shares honest in the baseline *))

  let from_scratch_coin g ~n ~t =
    (* Dealing round: t+1 dealers send one share to each player. *)
    let dealings =
      Array.init (t + 1) (fun _ -> S.deal g ~t ~n ~secret:(F.random g))
    in
    for _ = 1 to (t + 1) * n do
      Metrics.tick_message ~bytes_len:F.byte_size
    done;
    Metrics.tick_round ();
    (* Exposure round: every player sends its t+1 shares to everyone. *)
    for _ = 1 to n * (n - 1) do
      Metrics.tick_message ~bytes_len:((t + 1) * F.byte_size)
    done;
    Metrics.tick_round ();
    (* Every player interpolates each dealer's polynomial and sums the
       secrets: t+1 robust interpolations per player. *)
    let per_dealer_values =
      Array.map (fun shares -> (decode_per_player ~n ~t shares).(0)) dealings
    in
    let sums =
      Array.init n (fun _ ->
          Array.fold_left F.add F.zero per_dealer_values)
    in
    sums.(0)

  let trusted_dealer_coin g ~n ~t =
    let shares = S.deal g ~t ~n ~secret:(F.random g) in
    for _ = 1 to n do
      Metrics.tick_message ~bytes_len:F.byte_size
    done;
    Metrics.tick_round ();
    for _ = 1 to n * (n - 1) do
      Metrics.tick_message ~bytes_len:F.byte_size
    done;
    Metrics.tick_round ();
    (decode_per_player ~n ~t shares).(0)
end
