(** From-scratch shared-coin baselines for the cost comparisons
    (Sections 1.4 and 4; experiments E11 and E12).

    Two comparison points:

    {ul
    {- {b Naive multi-polynomial coin}: "A straightforward way to
       generate a coin would be to interpolate a number of polynomials
       which at least equals the number of the faults to be tolerated.
       Coins generated this way, however, would still be highly
       expensive." (Section 4.) Each of [t + 1] distinct dealers
       Shamir-shares a fresh random value; the coin is the sum of the
       secrets; exposing it costs every player [t + 1] robust
       interpolations. We charge {e only} dealing and exposure — no
       verification at all — so this baseline is strictly cheaper than
       any real from-scratch protocol and the D-PRBG's advantage is
       measured conservatively.}
    {- {b Per-coin trusted dealer} (Rabin [17]): a trusted party deals
       every coin. Cheap per coin, but "the approach of [17] requires
       the dealer to continuously provide them" — the pool's
       [dealer_coins] statistic is the contrast.}} *)

module Make (F : Field_intf.S) : sig
  val from_scratch_coin : Prng.t -> n:int -> t:int -> F.t
  (** Generate and immediately expose one shared coin by the naive
      [t + 1]-dealer method, ticking all costs. Returns the coin
      value. *)

  val trusted_dealer_coin : Prng.t -> n:int -> t:int -> F.t
  (** Dealer-deals one coin (dealing counted: [n] messages) and exposes
      it ([n^2] share messages, one robust interpolation per player). *)
end
