(** Randomized Byzantine agreement driven by a shared common coin — the
    flagship application class the paper targets ("Shared coins are
    needed, amongst other things, for Byzantine agreement (BA) and
    broadcast", Section 1.1).

    A Ben-Or-style phase protocol for [n >= 3t + 1] where the fallback
    randomness is one {e common} coin per phase (all players see the same
    bit — exactly what the D-PRBG pool supplies) instead of private local
    coins, giving constant expected phases instead of exponential:

    {ul
    {- {b Round 1}: broadcast the current vote; adopt [w = b] if some
       value [b] arrives [>= n - t] times, else [w = ⊥].}
    {- {b Round 2}: broadcast [w]; decide [b] on [>= n - t] support,
       prefer [b] on [>= t + 1] support, otherwise adopt the phase's
       common coin.}}

    Each phase consumes one common coin; with probability [>= 1/2] the
    coin matches any value the adversary forced a preference for, so the
    expected number of phases is at most 4 regardless of scheduling.

    The per-phase coin arrives through a callback, so callers plug in
    {!Pool.draw_bit} (the bootstrapped D-PRBG), a dealer coin, or a test
    stub. *)

type behavior =
  | Honest
  | Silent
  | Fixed of bool  (** Vote this bit in every round. *)
  | Arbitrary of (phase:int -> round:int -> dst:int -> bool option option)
      (** Full control: [None] = silent to that destination; [Some v] =
          send [v] ([v = None] encodes [⊥] in round 2). *)

type result = {
  decisions : bool array;  (** per player; meaningful for honest players *)
  phases : int;  (** phases executed until every honest player decided *)
  coins_used : int;
}

val run :
  ?behavior:(int -> behavior) ->
  coin:(unit -> bool) ->
  n:int ->
  t:int ->
  max_phases:int ->
  inputs:bool array ->
  unit ->
  result option
(** [None] if some honest player is still undecided after [max_phases]
    (probability [<= 2^-max_phases] against any adversary). Honest
    players are the ones whose [behavior] is [Honest]. Requires
    [n >= 3t + 1] and at most [t] non-honest behaviours. *)
