(** Library version string (also reported by the CLI's [--version]). *)

val version : string
