module Make (F : Field_intf.S) = struct
  type source = unit -> F.t

  let bit_stream src ~count =
    if count < 0 then invalid_arg "Randomness.bit_stream: negative count";
    let out = Array.make count false in
    let filled = ref 0 in
    while !filled < count do
      let bits = F.to_bits (src ()) in
      let take = min (Array.length bits) (count - !filled) in
      Array.blit bits 0 out !filled take;
      filled := !filled + take
    done;
    out

  (* Width of the sampling chunk for [bound]; capped so chunks fit in an
     int comfortably. *)
  let chunk_width bound =
    let rec go w = if 1 lsl w >= bound then w else go (w + 1) in
    go 1

  let uniform_int src ~bound =
    if bound < 1 then invalid_arg "Randomness.uniform_int: bound < 1";
    let w = chunk_width bound in
    if w > min F.k_bits 30 then
      invalid_arg "Randomness.uniform_int: bound too large for this field";
    (* Pull coins; consume each coin's bits in w-wide chunks, rejecting
       chunks >= bound. Exactly uniform. *)
    let rec with_coin bits offset =
      if offset + w > Array.length bits || offset + w > 30 then
        with_coin (F.to_bits (src ())) 0
      else begin
        let v = ref 0 in
        for b = 0 to w - 1 do
          if bits.(offset + b) then v := !v lor (1 lsl b)
        done;
        if !v < bound then !v else with_coin bits (offset + w)
      end
    in
    with_coin [||] 0

  let shuffle src a =
    for i = Array.length a - 1 downto 1 do
      let j = uniform_int src ~bound:(i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done

  let committee src ~size ~n =
    if size < 0 || size > n then invalid_arg "Randomness.committee: bad size";
    let ids = Array.init n Fun.id in
    shuffle src ids;
    List.sort compare (Array.to_list (Array.sub ids 0 size))
end
