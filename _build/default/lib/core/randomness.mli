(** Application-level randomness derived from shared coins.

    The paper produces k-ary coins (uniform field elements everyone
    agrees on); applications usually want something shaped differently —
    a player id, a permutation, a committee. This module performs those
    derivations {e exactly uniformly} (rejection sampling, Fisher–Yates)
    so an application built on the pool inherits the coins' guarantees:
    since every honest player feeds the same exposed coins through the
    same deterministic derivation, all honest players obtain the same
    id/permutation/committee, and the adversary can bias it no more than
    it can bias the coins (not at all).

    A [source] is any supplier of agreed-upon coins — typically
    [fun () -> Pool.draw_kary pool]. *)

module Make (F : Field_intf.S) : sig
  type source = unit -> F.t

  val bit_stream : source -> count:int -> bool array
  (** [count] shared bits ([ceil (count / k_bits)] coins consumed). *)

  val uniform_int : source -> bound:int -> int
  (** Uniform in [0, bound). Exact (rejection sampling on [k_bits]-bit
      chunks); requires [1 <= bound <= 2^min(k_bits, 30)]. Expected coin
      consumption is below [2 / floor(k_bits / bits bound)] + 1... in
      practice ~1 coin for small bounds. *)

  val shuffle : source -> 'a array -> unit
  (** In-place Fisher–Yates driven by {!uniform_int}: a uniformly random
      permutation agreed by all players. *)

  val committee : source -> size:int -> n:int -> int list
  (** A uniformly random [size]-subset of [0 .. n-1], increasing order —
      e.g. electing the proposers of the next epoch. Requires
      [size <= n]. *)
end
