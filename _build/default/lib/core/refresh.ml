module Make (F : Field_intf.S) = struct
  module C = Sealed_coin.Make (F)
  module CG = Coin_gen.Make (F)

  (* Honest players must deal zero-sharings in a refresh; faulty players
     keep whatever strategy the adversary prescribes. *)
  let refresh_adversary adversary =
    {
      adversary with
      CG.as_dealer =
        (fun i ->
          match adversary.CG.as_dealer i with
          | CG.BG.Honest_dealer -> CG.BG.Honest_zero_dealer
          | behavior -> behavior);
    }

  let run ?(adversary = CG.honest_adversary) ?max_ba_iterations ~prng ~oracle
      coins =
    match coins with
    | [] -> Some []
    | first :: _ ->
        let n = first.C.n and t = first.C.fault_bound in
        List.iter
          (fun c ->
            if c.C.n <> n || c.C.fault_bound <> t then
              invalid_arg "Refresh.run: coins disagree on (n, t)")
          coins;
        let m = List.length coins in
        (match
           CG.run ~adversary:(refresh_adversary adversary) ?max_ba_iterations
             ~zero_secrets:true ~prng ~oracle ~n ~t ~m ()
         with
        | None -> None
        | Some batch ->
            let refreshed =
              List.mapi
                (fun h coin ->
                  let shares =
                    Array.init n (fun i ->
                        F.add coin.C.shares.(i) batch.CG.shares.(i).(h))
                  in
                  let trusted =
                    match coin.C.trusted with
                    | None -> Some batch.CG.trusted
                    | Some old ->
                        Some
                          (Array.init n (fun i ->
                               Array.init n (fun j ->
                                   old.(i).(j) && batch.CG.trusted.(i).(j))))
                  in
                  { coin with C.shares; C.trusted })
                coins
            in
            Some refreshed)
end
