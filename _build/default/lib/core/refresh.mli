(** Pro-active share refresh for sealed coins.

    The paper's closing motivation (Sections 1.2 and 5): "one of the
    motivations and applications of our work is pro-active security
    [8, 16], which deals with settings where intruders are allowed to
    move over time." A mobile adversary that corrupts [t] players in one
    epoch and a {e different} [t] players in the next holds up to [2t]
    shares of every still-sealed coin — enough to open them unilaterally.
    Refreshing re-randomizes all shares between epochs so that shares
    stolen in different epochs do not combine.

    Construction (Herzberg–Jarecki–Krawczyk–Yung-style masking, run on
    the paper's own machinery): every player deals one {e zero}-sharing
    per pooled coin — a random degree-[t] polynomial with constant term
    0 — and the batch is verified by the same Bit-Gen / clique /
    grade-cast / BA pipeline as coin generation ({!Coin_gen.run} with
    [zero_secrets:true]), with the extra acceptance condition
    [F_j(0) = 0]. Each player then adds the agreed dealers' refresh
    shares onto its coin share. The coin's value is unchanged (the added
    polynomial vanishes at 0); the share polynomial is freshly random.

    Guarantees: secrecy against the mobile adversary is information-
    theoretic (any [t] old shares plus the refresh transcript reveal
    nothing; old and new shares do not interpolate together). The
    exposure-time trusted sets of the refreshed coin are the {e
    intersection} of the old ones with the refresh batch's, so honest
    reconstructability keeps Lemma 7's slack but the worst-case bound
    degrades with repeated refreshes against an adversary that poisons
    distinct victims each epoch (a fresh pool batch resets it; see the
    test-suite's composition tests). *)

module Make (F : Field_intf.S) : sig
  module C : module type of Sealed_coin.Make (F)
  module CG : module type of Coin_gen.Make (F)

  val run :
    ?adversary:CG.adversary ->
    ?max_ba_iterations:int ->
    prng:Prng.t ->
    oracle:(unit -> F.t) ->
    C.t list ->
    C.t list option
  (** [run ~prng ~oracle coins] refreshes all [coins] (which must share
      [n] and the fault bound) in one batch. Honest players deal
      zero-sharings; the [adversary]'s honest entries are coerced to
      [Honest_zero_dealer] automatically, its faulty entries attack as
      specified. Consumes seed coins through [oracle] exactly like a
      generation batch. [None] if the underlying agreement failed
      repeatedly. *)
end
