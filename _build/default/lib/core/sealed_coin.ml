module Make (F : Field_intf.S) = struct
  module S = Shamir.Make (F)
  module Codec = Wire.Codec (F)

  type t = {
    n : int;
    fault_bound : int;
    shares : F.t array;
    trusted : bool array array option;
  }

  let dealer_coin g ~n ~t =
    Metrics.without_counting (fun () ->
        let secret = F.random g in
        { n; fault_bound = t; shares = S.deal g ~t ~n ~secret; trusted = None })

  let trusted_row c i j =
    match c.trusted with None -> true | Some m -> m.(i).(j)

  let ground_truth c =
    Metrics.without_counting (fun () ->
        let shares = List.init c.n (fun i -> (i, c.shares.(i))) in
        Option.map fst (S.robust_reconstruct ~t:c.fault_bound shares))

  let write w c =
    Wire.Writer.u16 w c.n;
    Wire.Writer.u16 w c.fault_bound;
    Codec.write_elt_array w c.shares;
    match c.trusted with
    | None -> Wire.Writer.u8 w 0
    | Some rows ->
        Wire.Writer.u8 w 1;
        Array.iter
          (fun row ->
            (* One bit per entry, packed row-major per player. *)
            let byte = ref 0 and fill = ref 0 in
            let flush () =
              Wire.Writer.u8 w !byte;
              byte := 0;
              fill := 0
            in
            Array.iter
              (fun b ->
                if b then byte := !byte lor (1 lsl !fill);
                incr fill;
                if !fill = 8 then flush ())
              row;
            if !fill > 0 then flush ())
          rows

  let read r =
    let n = Wire.Reader.u16 r in
    let fault_bound = Wire.Reader.u16 r in
    if n < 1 then invalid_arg "Sealed_coin.read: bad n";
    let shares = Codec.read_elt_array r in
    if Array.length shares <> n then
      invalid_arg "Sealed_coin.read: share count mismatch";
    let trusted =
      match Wire.Reader.u8 r with
      | 0 -> None
      | 1 ->
          Some
            (Array.init n (fun _ ->
                 let bitmap = Wire.Reader.raw r ((n + 7) / 8) in
                 Array.init n (fun j ->
                     Bytes.get_uint8 bitmap (j / 8) lsr (j mod 8) land 1 = 1)))
      | _ -> invalid_arg "Sealed_coin.read: bad trusted tag"
    in
    { n; fault_bound; shares; trusted }
end
