(** A sealed shared coin: the distributed object every protocol here
    produces and consumes.

    A sealed coin is a secret value [v] (an element of the field, i.e. a
    "k-ary coin") Shamir-shared among the [n] players with degree [t]:
    player [i] holds the share of a degree-[<= t] polynomial [f] with
    [f(0) = v]. Nobody knows [v]; no [t] players can predict or bias it;
    {!Coin_expose} reveals it to everyone simultaneously.

    Two provenances:
    {ul
    {- {b dealer coins} (Rabin-style, the bootstrap's initial seed): a
       trusted dealer dealt them at setup; every player's share is good
       and every player trusts every exposure message (subject to
       Berlekamp–Welch correction of [<= t] lies);}
    {- {b generated coins} (the D-PRBG's output, Fig. 5): player [i]'s
       share is the sum of the shares it received from the agreed clique
       of dealers, and player [i] only trusts exposure messages from
       players whose combined shares verified against every clique
       dealer's check polynomial — the per-player [trusted] matrix (the
       set [S] of Fig. 6).}} *)

module Make (F : Field_intf.S) : sig
  type t = {
    n : int;
    fault_bound : int;  (** the [t] the sharing tolerates *)
    shares : F.t array;  (** [shares.(i)]: what player [i] holds *)
    trusted : bool array array option;
        (** [trusted.(i).(j)]: does player [i] use player [j]'s exposure
            message? [None] means everyone trusts everyone (dealer
            coins). Rows of honest players are the protocol's guarantee;
            rows of faulty players are irrelevant. *)
  }

  val dealer_coin : Prng.t -> n:int -> t:int -> t
  (** A fresh dealer-dealt sealed coin with a uniform secret. This is
      setup bookkeeping (the trusted party of [Rab83]), so it costs
      nothing: it runs under {!Metrics.without_counting}. *)

  val trusted_row : t -> int -> int -> bool
  (** [trusted_row c i j]: does player [i] trust player [j]'s exposure
      message for this coin? *)

  val ground_truth : t -> F.t option
  (** Test/diagnostic oracle: robustly decode the coin from all shares
      (as an omniscient observer). [None] if the shares are beyond
      repair. Uncounted. *)

  val write : Wire.Writer.t -> t -> unit
  (** Serialize the coin (all players' shares and trust rows — the
      whole simulated state; a deployment would persist each player's
      slice separately). *)

  val read : Wire.Reader.t -> t
  (** Inverse of {!write}.
      @raise Invalid_argument on malformed input. *)
end
