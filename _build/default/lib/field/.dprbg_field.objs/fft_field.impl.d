lib/field/fft_field.ml: Array Bytes Field_bytes Format Hashtbl Metrics Ntt Printf Prng String Zp Zq_table
