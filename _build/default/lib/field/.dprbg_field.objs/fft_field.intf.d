lib/field/fft_field.mli: Field_intf
