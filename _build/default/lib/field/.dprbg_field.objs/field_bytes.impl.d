lib/field/field_bytes.ml: Bytes
