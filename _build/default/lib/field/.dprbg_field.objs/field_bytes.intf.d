lib/field/field_bytes.mli:
