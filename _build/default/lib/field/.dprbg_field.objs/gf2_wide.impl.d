lib/field/gf2_wide.ml: Array Buffer Bytes Field_bytes Format Hashtbl List Metrics Printf Prng
