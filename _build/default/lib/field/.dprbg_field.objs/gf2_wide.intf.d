lib/field/gf2_wide.mli: Field_intf
