lib/field/gf2k.ml: Array Bytes Field_bytes Format Int List Metrics Printf Prng
