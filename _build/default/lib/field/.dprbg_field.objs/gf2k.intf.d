lib/field/gf2k.mli: Field_intf
