lib/field/ntt.ml: Array Zq_table
