lib/field/ntt.mli: Zq_table
