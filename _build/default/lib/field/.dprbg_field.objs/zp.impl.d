lib/field/zp.ml: Array Bytes Field_bytes Format Int List Metrics Printf Prng
