lib/field/zq_table.ml: Array Bytes Field_bytes Format Int Metrics Printf Prng Zp
