lib/field/zq_table.mli: Field_intf
