(** The paper's Section-2 special field with fast multiplication.

    Construction (quoting the paper): "Let q be a prime and l an integer
    such that q >= 2l + 1 and q^l >= 2^k. We work over GF(q^l). We view
    the field elements as degree-l polynomials over Zq. Then we use
    discrete Fourier transforms to do the multiplication, modulo some
    irreducible polynomial, in O(l log l) operations over Zq. We can
    implement operations over Zq via a table [...] Choosing q = O(l) and
    l = O(k / log k) [...] we end up with a O(k log k) time algorithm."

    Our concretization, chosen so the NTT applies directly and the
    reduction is linear-time:
    {ul
    {- [l] is the smallest power of two whose induced field reaches
       [2^k];}
    {- [q] is the smallest prime with [q ≡ 1 (mod 2l)] (so an order-[2l]
       root of unity exists for the product transform) and [q >= 2l+1];}
    {- the irreducible modulus is the binomial [x^l - c] with [c] a
       primitive root of [Z_q] (irreducible by Lidl–Niederreiter
       Thm. 3.75), making reduction of a degree-[2l-2] product a single
       multiply-accumulate pass.}}

    Experiment E13 benches this field's multiplication against the naive
    {!Gf2k}/{!Gf2_wide} multiplication to exhibit the crossover the paper
    warns implementations about. *)

module type PARAM = sig
  val k : int
  (** Desired security parameter: the field will satisfy
      [q^l >= 2^k]. *)
end

module Make (P : PARAM) : sig
  include Field_intf.S

  val q : int
  (** The base-field prime. *)

  val l : int
  (** Extension degree (a power of two). *)

  val c : int
  (** The constant of the irreducible binomial [x^l - c]. *)

  val repr : t -> int array
  (** Coefficient vector, length [l], entries in [0, q). *)

  val of_repr : int array -> t
end

module GF_k64 : Field_intf.S
(** Special field with [>= 64] bits (l = 16, q = 97). *)

module GF_k128 : Field_intf.S
(** Special field with [>= 128] bits. *)

module GF_k256 : Field_intf.S
(** Special field with [>= 256] bits. *)
