(* Little-endian fixed-width integer packing shared by the field
   implementations' canonical encodings. *)

let encode_int dst ~off ~width v =
  assert (v >= 0);
  let v = ref v in
  for j = 0 to width - 1 do
    Bytes.set_uint8 dst (off + j) (!v land 0xFF);
    v := !v lsr 8
  done;
  if !v <> 0 then invalid_arg "Field_bytes.encode_int: value too wide"

let decode_int src ~off ~width =
  let v = ref 0 in
  for j = width - 1 downto 0 do
    v := (!v lsl 8) lor Bytes.get_uint8 src (off + j)
  done;
  !v

let check_length name b expected =
  if Bytes.length b <> expected then
    invalid_arg (name ^ ".of_bytes: wrong length")
