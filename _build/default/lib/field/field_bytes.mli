(** Little-endian fixed-width integer packing shared by the field
    implementations' canonical byte encodings ({!Field_intf.S.to_bytes}).
    Internal to the field library. *)

val encode_int : bytes -> off:int -> width:int -> int -> unit
(** [encode_int dst ~off ~width v] writes [v >= 0] as [width]
    little-endian bytes at [off].
    @raise Invalid_argument if [v] does not fit. *)

val decode_int : bytes -> off:int -> width:int -> int
(** Inverse of {!encode_int}. *)

val check_length : string -> bytes -> int -> unit
(** [check_length who b expected] raises [Invalid_argument] mentioning
    [who] when [b] is not exactly [expected] bytes. *)
