(** [GF(2^k)] for arbitrary [k >= 1], limb-array representation.

    Complements {!Gf2k} (which is limited to one machine word) so the
    security-parameter sweeps in the benchmarks can reach the paper's
    regime of cryptographic [k] (64, 128, 256). Multiplication is the
    schoolbook carryless method — [O(k^2)] bit operations, the "naive"
    cost the paper quotes — followed by reduction modulo an irreducible
    polynomial found at functor-application time with Rabin's test.

    Elements are immutable; all arithmetic allocates fresh limb arrays. *)

module type PARAM = sig
  val k : int
  (** Field extension degree, [k >= 1]. *)
end

module Make (P : PARAM) : sig
  include Field_intf.S

  val modulus_bits : int list
  (** Exponents with non-zero coefficient in the reduction polynomial,
      decreasing; head is [P.k]. *)

  val of_repr : int array -> t
  (** Unsafe view of little-endian 32-bit limbs as an element. *)

  val repr : t -> int array

  val mul_karatsuba : t -> t -> t
  (** Same product as {!mul} via Karatsuba's three-way split on the limb
      array ([O(k^1.585)] bit operations). {!mul} stays schoolbook
      because the paper's "naive [O(k^2)]" baseline is what experiment
      E13 measures; this is the optimization a production deployment
      would enable for large [k] (the bench includes its own row). *)
end

module GF64 : sig
  include Field_intf.S

  val mul_karatsuba : t -> t -> t
end

module GF128 : sig
  include Field_intf.S

  val mul_karatsuba : t -> t -> t
end

module GF256 : sig
  include Field_intf.S

  val mul_karatsuba : t -> t -> t
end
