(** [GF(2^k)] for [1 <= k <= 61], one machine word per element.

    This is the paper's default field (Section 2): elements are degree
    [< k] polynomials over [GF(2)] packed into the low [k] bits of an
    [int]; multiplication is the naive shift-and-xor schoolbook method,
    i.e. [O(k)] word operations realizing the [O(k^2)] bit-operation
    bound the paper quotes for naive multiplication. The paper remarks
    that for small [k] this beats the asymptotically faster special field
    — experiment E13 measures exactly that crossover against
    {!Fft_field}.

    The reduction polynomial is found at functor-application time: the
    lexicographically smallest irreducible polynomial of degree [k] over
    [GF(2)], certified by Rabin's irreducibility test. *)

module type PARAM = sig
  val k : int
  (** Field extension degree; [1 <= k <= 61]. *)
end

module Make (P : PARAM) : sig
  include Field_intf.S

  val modulus : int
  (** The reduction polynomial, bit [i] = coefficient of [x^i]; bit
      [P.k] is always set. *)

  val of_repr : int -> t
  (** Unsafe view of a bit pattern as an element; must be [< 2^k]. *)

  val repr : t -> int
  (** The underlying bit pattern, [< 2^k]. *)
end

(** {1 Ready-made instances} *)

module GF8 : Field_intf.S
module GF16 : Field_intf.S
module GF32 : Field_intf.S
module GF61 : Field_intf.S

(** {1 Polynomial arithmetic over GF(2) on word-packed representations}

    Exposed for tests and for {!Gf2_wide}'s modulus search. *)

val degree : int -> int
(** Degree of the packed polynomial; [-1] for the zero polynomial. *)

val mul_mod : modulus:int -> int -> int -> int
(** Carryless multiply-and-reduce; [modulus] must have its top set bit at
    position [<= 61]. *)

val poly_mod : int -> int -> int
(** [poly_mod a b] is the remainder of carryless division; [b <> 0]. *)

val poly_gcd : int -> int -> int

val is_irreducible : int -> bool
(** Rabin's irreducibility test for a packed [GF(2)] polynomial of
    degree [>= 1]. *)

val smallest_irreducible : int -> int
(** [smallest_irreducible k] is the lexicographically smallest
    irreducible polynomial of degree [k], packed. *)
