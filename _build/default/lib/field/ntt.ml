type plan = {
  tbl : Zq_table.Tables.t;
  m : int;
  log_m : int;
  root_powers : int array;     (* w^0 .. w^(m-1), w of order m *)
  inv_root_powers : int array; (* w^-0 .. w^-(m-1) *)
  m_inv : int;                 (* m^-1 mod q *)
}

let is_pow2 m = m > 0 && m land (m - 1) = 0

let plan tbl ~m =
  let q = Zq_table.Tables.q tbl in
  if not (is_pow2 m) then invalid_arg "Ntt.plan: size not a power of two";
  if (q - 1) mod m <> 0 then invalid_arg "Ntt.plan: m does not divide q-1";
  let w = Zq_table.Tables.exp tbl ((q - 1) / m) in
  let w_inv = Zq_table.Tables.inv tbl w in
  let powers base =
    let a = Array.make m 1 in
    for i = 1 to m - 1 do
      a.(i) <- Zq_table.Tables.mul tbl a.(i - 1) base
    done;
    a
  in
  let rec log2 v = if v = 1 then 0 else 1 + log2 (v / 2) in
  {
    tbl;
    m;
    log_m = log2 m;
    root_powers = powers w;
    inv_root_powers = powers w_inv;
    m_inv = Zq_table.Tables.inv tbl (m mod q);
  }

let size p = p.m

let bit_reverse_permute a log_m =
  let m = Array.length a in
  let rec rev v acc i =
    if i = 0 then acc else rev (v lsr 1) ((acc lsl 1) lor (v land 1)) (i - 1)
  in
  for i = 0 to m - 1 do
    let j = rev i 0 log_m in
    if i < j then begin
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    end
  done

(* In-place decimation-in-time butterfly network over the given root
   power table. *)
let fft_in_place p powers a =
  let tbl = p.tbl in
  bit_reverse_permute a p.log_m;
  let len = ref 2 in
  while !len <= p.m do
    let half = !len / 2 in
    let stride = p.m / !len in
    let base = ref 0 in
    while !base < p.m do
      for i = 0 to half - 1 do
        let w = powers.(i * stride) in
        let u = a.(!base + i) in
        let v = Zq_table.Tables.mul tbl w a.(!base + i + half) in
        a.(!base + i) <- Zq_table.Tables.add tbl u v;
        a.(!base + i + half) <- Zq_table.Tables.sub tbl u v
      done;
      base := !base + !len
    done;
    len := !len * 2
  done

let pad p a =
  if Array.length a > p.m then invalid_arg "Ntt: input longer than plan size";
  let out = Array.make p.m 0 in
  Array.blit a 0 out 0 (Array.length a);
  out

let transform p a =
  let out = pad p a in
  fft_in_place p p.root_powers out;
  out

let inverse p a =
  if Array.length a <> p.m then invalid_arg "Ntt.inverse: wrong length";
  let out = Array.copy a in
  fft_in_place p p.inv_root_powers out;
  for i = 0 to p.m - 1 do
    out.(i) <- Zq_table.Tables.mul p.tbl out.(i) p.m_inv
  done;
  out

let convolve p a b =
  if Array.length a + Array.length b - 1 > p.m then
    invalid_arg "Ntt.convolve: result does not fit plan size";
  let fa = transform p a and fb = transform p b in
  for i = 0 to p.m - 1 do
    fa.(i) <- Zq_table.Tables.mul p.tbl fa.(i) fb.(i)
  done;
  inverse p fa
