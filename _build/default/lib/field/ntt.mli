(** Number-theoretic transform (DFT over [Z_q]).

    Realizes the paper's Section-2 remark that multiplication in the
    special field uses "discrete Fourier transforms to do the
    multiplication, modulo some irreducible polynomial, in O(l log l)
    operations over Zq". Radix-2 iterative Cooley–Tukey; the transform
    size [m] must be a power of two dividing [q - 1]. *)

type plan
(** Precomputed twiddle factors for one [(q, m)] pair. *)

val plan : Zq_table.Tables.t -> m:int -> plan
(** [plan tbl ~m] requires [m] a power of two with [m | q - 1].
    @raise Invalid_argument otherwise. *)

val size : plan -> int

val transform : plan -> int array -> int array
(** Forward DFT of a coefficient vector (length [<= m]; implicitly
    zero-padded). Returns a fresh array of length [m]. *)

val inverse : plan -> int array -> int array
(** Inverse DFT; [inverse p (transform p a)] equals [a] zero-padded
    to length [m]. The input must have length [m]. *)

val convolve : plan -> int array -> int array -> int array
(** Polynomial product via pointwise multiplication in the frequency
    domain. The two inputs must satisfy
    [length a + length b - 1 <= size plan]; the result has length [m]
    (high entries zero). *)
