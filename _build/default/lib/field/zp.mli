(** Prime fields [Z_p] for [p < 2^31], plus the number-theoretic
    utilities shared by {!Zq_table}, {!Ntt} and {!Fft_field}.

    Used directly by the Feldman-VSS baseline (commitments [g^s mod p])
    and as the coefficient field of the number-theoretic transform. All
    arithmetic is single-word: products of two elements fit in OCaml's
    63-bit native int because [p < 2^31]. *)

val is_prime : int -> bool
(** Deterministic Miller–Rabin, valid for all arguments below [2^31]. *)

val factorize : int -> (int * int) list
(** Prime factorization [(p, multiplicity)] by trial division; intended
    for arguments [< 2^31]. *)

val next_prime_in_progression : a:int -> d:int -> int
(** Smallest prime [>= a] congruent to [a (mod d)]... precisely: the
    smallest prime of the form [a + i*d], [i >= 0]. Requires
    [gcd(a, d) = 1] for a result to exist (Dirichlet); raises
    [Invalid_argument] after an implausibly long search. *)

module type PARAM = sig
  val p : int
  (** The modulus; must be prime and [< 2^31]. *)
end

module Make (P : PARAM) : sig
  include Field_intf.S

  val p : int
  val repr : t -> int
  (** Canonical representative in [0, p). *)

  val of_repr : int -> t
  (** Requires the argument to be in [0, p). *)

  val primitive_root : t
  (** A fixed generator of the multiplicative group. *)

  val pow_mod : int -> int -> int
  (** [pow_mod b e] is [b^e mod p] for [e >= 0]; raw-int convenience used
      by the Feldman baseline's exponentiation counting. *)
end
