(* Z_q with exp/log tables: mul a b = exp.(log a + log b), inv a =
   exp.(q - 1 - log a). The exp table is doubled so index sums never
   need reduction mod q-1. *)

module Tables = struct
  type t = {
    q : int;
    generator : int;
    exp_table : int array; (* length 2(q-1): g^i mod q *)
    log_table : int array; (* length q: log_table.(g^i) = i; log_table.(0) unused *)
  }

  let make ~q =
    if q < 3 || q >= 1 lsl 20 then invalid_arg "Zq_table: q out of range";
    if not (Zp.is_prime q) then invalid_arg "Zq_table: q not prime";
    let module G = Zp.Make (struct let p = q end) in
    let g = G.repr G.primitive_root in
    let exp_table = Array.make (2 * (q - 1)) 1 in
    let log_table = Array.make q 0 in
    let acc = ref 1 in
    for i = 0 to (2 * (q - 1)) - 1 do
      exp_table.(i) <- !acc;
      if i < q - 1 then log_table.(!acc) <- i;
      acc := !acc * g mod q
    done;
    { q; generator = g; exp_table; log_table }

  let q t = t.q
  let generator t = t.generator

  let add t a b =
    let s = a + b in
    if s >= t.q then s - t.q else s

  let sub t a b =
    let s = a - b in
    if s < 0 then s + t.q else s

  let neg t a = if a = 0 then 0 else t.q - a

  let mul t a b =
    if a = 0 || b = 0 then 0
    else t.exp_table.(t.log_table.(a) + t.log_table.(b))

  let inv t a =
    if a = 0 then raise Division_by_zero;
    t.exp_table.(t.q - 1 - t.log_table.(a))

  let exp t e = t.exp_table.(e)

  let log t a =
    if a = 0 then invalid_arg "Zq_table.log: zero";
    t.log_table.(a)

  let pow t b e =
    assert (e >= 0);
    if b = 0 then if e = 0 then 1 else 0
    else t.exp_table.(t.log_table.(b) * e mod (t.q - 1))
end

module type PARAM = sig
  val q : int
end

module Make (P : PARAM) = struct
  let tables = Tables.make ~q:P.q

  type t = int

  let name = Printf.sprintf "Z_%d (tabled)" P.q

  let k_bits =
    let rec bits v acc = if v <= 1 then acc else bits (v / 2) (acc + 1) in
    bits P.q 0

  let byte_size = (k_bits + 8) / 8
  let zero = 0
  let one = 1
  let equal = Int.equal
  let compare = Int.compare
  let hash x = x
  let repr x = x

  let of_repr x =
    assert (x >= 0 && x < P.q);
    x

  let add a b =
    Metrics.tick_adds 1;
    Tables.add tables a b

  let sub a b =
    Metrics.tick_adds 1;
    Tables.sub tables a b

  let neg a =
    Metrics.tick_adds 1;
    Tables.neg tables a

  let mul a b =
    Metrics.tick_mults 1;
    Tables.mul tables a b

  let inv a =
    Metrics.tick_invs 1;
    Tables.inv tables a

  let div a b = mul a (inv b)

  let pow x e =
    Metrics.tick_mults 1;
    Tables.pow tables x e

  let of_int i =
    if i < 0 then invalid_arg (name ^ ".of_int: negative") else i mod P.q

  let random g = Prng.int g P.q

  let rec random_nonzero g =
    let x = random g in
    if x = 0 then random_nonzero g else x

  let lsb x = x land 1
  let to_bits x = Array.init k_bits (fun i -> (x lsr i) land 1 = 1)

  let to_bytes x =
    let b = Bytes.create byte_size in
    Field_bytes.encode_int b ~off:0 ~width:byte_size x;
    b

  let of_bytes b =
    Field_bytes.check_length name b byte_size;
    let v = Field_bytes.decode_int b ~off:0 ~width:byte_size in
    if v >= P.q then invalid_arg (name ^ ".of_bytes: non-canonical residue");
    v

  let pp = Format.pp_print_int
  let to_string = string_of_int
end
