type directed = { dn : int; dadj : bool array array }
type undirected = { un : int; uadj : bool array array }

let directed_create ~n =
  if n < 1 then invalid_arg "Player_graph: n must be positive";
  { dn = n; dadj = Array.init n (fun _ -> Array.make n false) }

let check n label i =
  if i < 0 || i >= n then invalid_arg ("Player_graph." ^ label ^ ": id out of range")

let add_edge g i j =
  check g.dn "add_edge" i;
  check g.dn "add_edge" j;
  g.dadj.(i).(j) <- true

let has_edge g i j =
  check g.dn "has_edge" i;
  check g.dn "has_edge" j;
  g.dadj.(i).(j)

let directed_n g = g.dn

let undirected_create ~n =
  if n < 1 then invalid_arg "Player_graph: n must be positive";
  { un = n; uadj = Array.init n (fun _ -> Array.make n false) }

let add_undirected_edge g i j =
  check g.un "add_undirected_edge" i;
  check g.un "add_undirected_edge" j;
  if i <> j then begin
    g.uadj.(i).(j) <- true;
    g.uadj.(j).(i) <- true
  end

let has_undirected_edge g i j =
  check g.un "has_undirected_edge" i;
  check g.un "has_undirected_edge" j;
  g.uadj.(i).(j)

let undirected_n g = g.un

let bidirectional_core d =
  let u = undirected_create ~n:d.dn in
  for i = 0 to d.dn - 1 do
    for j = i + 1 to d.dn - 1 do
      if d.dadj.(i).(j) && d.dadj.(j).(i) then add_undirected_edge u i j
    done
  done;
  u

let is_clique g members =
  let rec pairs = function
    | [] -> true
    | i :: rest ->
        List.for_all (fun j -> has_undirected_edge g i j) rest && pairs rest
  in
  List.for_all (fun i -> i >= 0 && i < g.un) members
  && List.length (List.sort_uniq compare members) = List.length members
  && pairs members

let approx_clique g ~min_size =
  (* Greedy maximal matching in the complement graph, lexicographic
     order. Unmatched vertices form an independent set of the complement,
     i.e. a clique of g: were two unmatched vertices complement-adjacent,
     the greedy pass would have matched them. *)
  let matched = Array.make g.un false in
  for i = 0 to g.un - 1 do
    if not matched.(i) then begin
      let rec find j =
        if j >= g.un then ()
        else if (not matched.(j)) && not g.uadj.(i).(j) then begin
          matched.(i) <- true;
          matched.(j) <- true
        end
        else find (j + 1)
      in
      find (i + 1)
    end
  done;
  let clique =
    List.filter (fun i -> not matched.(i)) (List.init g.un Fun.id)
  in
  if List.length clique >= min_size then Some clique else None
