(** Graphs on player ids and the clique approximation used by
    [Coin-Gen] (Fig. 5, steps 4-6).

    The paper builds a directed graph [G'] ("[P_k] has a proper share of
    the bits which [P_j] shared"), takes its bidirectional core [G], and
    invokes "the protocol of Gabril ([Garey & Johnson], p. 134)" to find
    a clique of size [>= n - 2t], relying on the promise that the honest
    players already form a clique of size [>= n - t].

    The standard realization of that guarantee — and the one implemented
    here — runs a maximal matching on the {e complement} of [G]: every
    complement edge touches at least one non-clique vertex, so the
    matching has at most [t] edges and the unmatched vertices form a
    clique of size [>= n - 2t]. The greedy matching is deterministic
    (lexicographic), so all players with the same view compute the same
    clique. *)

type directed
(** A directed graph on [0 .. n-1]. *)

val directed_create : n:int -> directed
val add_edge : directed -> int -> int -> unit
val has_edge : directed -> int -> int -> bool
val directed_n : directed -> int

type undirected
(** An undirected graph on [0 .. n-1]. *)

val undirected_create : n:int -> undirected
val add_undirected_edge : undirected -> int -> int -> unit
val has_undirected_edge : undirected -> int -> int -> bool
val undirected_n : undirected -> int

val bidirectional_core : directed -> undirected
(** Fig. 5 step 5: keep [(j, k)] iff both [(j, k)] and [(k, j)] are
    present. Self-loops are ignored. *)

val is_clique : undirected -> int list -> bool

val approx_clique : undirected -> min_size:int -> int list option
(** Greedy-matching clique approximation. Returns a clique (sorted,
    increasing) of size [>= min_size], or [None] if the approximation
    comes up short. When the graph contains a clique of size [c], the
    result is guaranteed to have size [>= 2c - n] (so [n - 2t] under
    the protocol's promise of an [n - t] clique). Deterministic. *)
