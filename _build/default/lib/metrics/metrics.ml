type snapshot = {
  field_adds : int;
  field_mults : int;
  field_invs : int;
  interpolations : int;
  messages : int;
  bytes : int;
  rounds : int;
  ba_runs : int;
  gradecasts : int;
}

let zero =
  {
    field_adds = 0;
    field_mults = 0;
    field_invs = 0;
    interpolations = 0;
    messages = 0;
    bytes = 0;
    rounds = 0;
    ba_runs = 0;
    gradecasts = 0;
  }

let add a b =
  {
    field_adds = a.field_adds + b.field_adds;
    field_mults = a.field_mults + b.field_mults;
    field_invs = a.field_invs + b.field_invs;
    interpolations = a.interpolations + b.interpolations;
    messages = a.messages + b.messages;
    bytes = a.bytes + b.bytes;
    rounds = a.rounds + b.rounds;
    ba_runs = a.ba_runs + b.ba_runs;
    gradecasts = a.gradecasts + b.gradecasts;
  }

let diff a b =
  {
    field_adds = a.field_adds - b.field_adds;
    field_mults = a.field_mults - b.field_mults;
    field_invs = a.field_invs - b.field_invs;
    interpolations = a.interpolations - b.interpolations;
    messages = a.messages - b.messages;
    bytes = a.bytes - b.bytes;
    rounds = a.rounds - b.rounds;
    ba_runs = a.ba_runs - b.ba_runs;
    gradecasts = a.gradecasts - b.gradecasts;
  }

let to_row s =
  [
    ("adds", s.field_adds);
    ("mults", s.field_mults);
    ("invs", s.field_invs);
    ("interps", s.interpolations);
    ("msgs", s.messages);
    ("bytes", s.bytes);
    ("rounds", s.rounds);
    ("ba", s.ba_runs);
    ("gradecast", s.gradecasts);
  ]

let pp ppf s =
  let pp_pair ppf (label, v) = Fmt.pf ppf "%s=%d" label v in
  Fmt.pf ppf "@[<h>%a@]" (Fmt.list ~sep:Fmt.sp pp_pair) (to_row s)

(* Mutable sink. A stack of sinks is live at once: every tick updates all
   of them, so an outer [with_counting] sees costs incurred inside an
   inner one. *)
type sink = {
  mutable adds : int;
  mutable mults : int;
  mutable invs : int;
  mutable interps : int;
  mutable msgs : int;
  mutable byts : int;
  mutable rnds : int;
  mutable bas : int;
  mutable gcs : int;
}

let fresh_sink () =
  {
    adds = 0;
    mults = 0;
    invs = 0;
    interps = 0;
    msgs = 0;
    byts = 0;
    rnds = 0;
    bas = 0;
    gcs = 0;
  }

let sinks : sink list ref = ref []

let counting_enabled () = !sinks <> []

let tick_adds n =
  match !sinks with
  | [] -> ()
  | l -> List.iter (fun s -> s.adds <- s.adds + n) l

let tick_mults n =
  match !sinks with
  | [] -> ()
  | l -> List.iter (fun s -> s.mults <- s.mults + n) l

let tick_invs n =
  match !sinks with
  | [] -> ()
  | l -> List.iter (fun s -> s.invs <- s.invs + n) l

let tick_interpolation () =
  match !sinks with
  | [] -> ()
  | l -> List.iter (fun s -> s.interps <- s.interps + 1) l

let tick_message ~bytes_len =
  match !sinks with
  | [] -> ()
  | l ->
      List.iter
        (fun s ->
          s.msgs <- s.msgs + 1;
          s.byts <- s.byts + bytes_len)
        l

let tick_round () =
  match !sinks with
  | [] -> ()
  | l -> List.iter (fun s -> s.rnds <- s.rnds + 1) l

let tick_ba () =
  match !sinks with
  | [] -> ()
  | l -> List.iter (fun s -> s.bas <- s.bas + 1) l

let tick_gradecast () =
  match !sinks with
  | [] -> ()
  | l -> List.iter (fun s -> s.gcs <- s.gcs + 1) l

let snapshot_of_sink s =
  {
    field_adds = s.adds;
    field_mults = s.mults;
    field_invs = s.invs;
    interpolations = s.interps;
    messages = s.msgs;
    bytes = s.byts;
    rounds = s.rnds;
    ba_runs = s.bas;
    gradecasts = s.gcs;
  }

let without_counting f =
  let saved = !sinks in
  sinks := [];
  match f () with
  | result ->
      sinks := saved;
      result
  | exception e ->
      sinks := saved;
      raise e

let with_counting f =
  let sink = fresh_sink () in
  sinks := sink :: !sinks;
  let pop () =
    match !sinks with
    | top :: rest when top == sink -> sinks := rest
    | _ ->
        (* Stack discipline violated only by misuse of exceptions across
           measurement boundaries; restore by filtering. *)
        sinks := List.filter (fun s -> s != sink) !sinks
  in
  match f () with
  | result ->
      pop ();
      (result, snapshot_of_sink sink)
  | exception e ->
      pop ();
      raise e
