(** Cost accounting for protocol executions.

    The paper measures protocols in field additions, multiplications,
    polynomial interpolations, messages, bits and communication rounds
    (Lemmas 2, 4, 6; Theorem 2). This module provides ambient counters
    that the field, polynomial and network layers tick, so any protocol
    run can be bracketed and its exact cost vector extracted.

    Counting is ambient (a single current sink) because the whole
    simulation is single-threaded; [with_counting] scopes a fresh sink
    around a thunk and restores the previous one on exit, so nested
    measurements compose. When no sink is installed the tick functions
    are a single branch, keeping benchmark overhead negligible. *)

type snapshot = {
  field_adds : int;      (** additions/subtractions in a field *)
  field_mults : int;     (** multiplications *)
  field_invs : int;      (** inversions / divisions *)
  interpolations : int;  (** full polynomial interpolations (incl. BW decodes) *)
  messages : int;        (** point-to-point messages sent *)
  bytes : int;           (** total payload bytes sent *)
  rounds : int;          (** synchronous communication rounds *)
  ba_runs : int;         (** Byzantine-agreement executions *)
  gradecasts : int;      (** grade-cast executions *)
}
(** Immutable cost vector. *)

val zero : snapshot

val add : snapshot -> snapshot -> snapshot
(** Component-wise sum. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff a b] is [a - b] component-wise. *)

val pp : Format.formatter -> snapshot -> unit

val to_row : snapshot -> (string * int) list
(** Labelled components, for table printers. *)

(** {1 Ticking (called by instrumented layers)} *)

val tick_adds : int -> unit
val tick_mults : int -> unit
val tick_invs : int -> unit
val tick_interpolation : unit -> unit
val tick_message : bytes_len:int -> unit
val tick_round : unit -> unit
val tick_ba : unit -> unit
val tick_gradecast : unit -> unit

(** {1 Measurement} *)

val with_counting : (unit -> 'a) -> 'a * snapshot
(** [with_counting f] runs [f] with a fresh sink installed and returns
    [f ()]'s result together with the costs incurred. If [f] raises, the
    previous sink is restored and the exception propagates. Outer sinks
    also accumulate the inner costs, so nesting over-counts nothing. *)

val without_counting : (unit -> 'a) -> 'a
(** [without_counting f] runs [f] with all sinks suspended: nothing [f]
    does is charged to any active measurement. Used by simulation
    bookkeeping that has no real-protocol counterpart (e.g. conjuring the
    pre-existing shares of a seed coin). *)

val counting_enabled : unit -> bool
(** True iff a sink is currently installed. *)
