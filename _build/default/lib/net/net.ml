let log_src = Logs.Src.create "dprbg.net" ~doc:"Synchronous network rounds"

module Log = (val Logs.src_log log_src)

type 'msg t = {
  n : int;
  byte_size : 'msg -> int;
  (* queues.(dst) holds (src, msg) in reverse send order. *)
  queues : (int * 'msg) list array;
  mutable rounds : int;
}

let create ~n ~byte_size =
  if n < 1 then invalid_arg "Net.create: n must be positive";
  { n; byte_size; queues = Array.make n []; rounds = 0 }

let n t = t.n

let check_id t label i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Net.%s: player id %d out of range" label i)

let send t ~src ~dst msg =
  check_id t "send" src;
  check_id t "send" dst;
  if src <> dst then Metrics.tick_message ~bytes_len:(t.byte_size msg);
  t.queues.(dst) <- (src, msg) :: t.queues.(dst)

let send_to_all t ~src f =
  for dst = 0 to t.n - 1 do
    send t ~src ~dst (f dst)
  done

let deliver t =
  Metrics.tick_round ();
  t.rounds <- t.rounds + 1;
  Log.debug (fun m ->
      let pending =
        Array.fold_left (fun acc q -> acc + List.length q) 0 t.queues
      in
      m "round %d: delivering %d messages to %d players" t.rounds pending t.n);
  Array.mapi
    (fun dst queue ->
      t.queues.(dst) <- [];
      (* Restore send order, then stable-sort by sender for deterministic
         iteration in protocol code. *)
      List.stable_sort
        (fun (a, _) (b, _) -> Int.compare a b)
        (List.rev queue))
    t.queues

let rounds_elapsed t = t.rounds

module Faults = struct
  type t = { n : int; faulty : bool array }

  let none ~n = { n; faulty = Array.make n false }

  let make ~n ~faulty =
    let a = Array.make n false in
    List.iter
      (fun i ->
        if i < 0 || i >= n then invalid_arg "Faults.make: id out of range";
        if a.(i) then invalid_arg "Faults.make: duplicate id";
        a.(i) <- true)
      faulty;
    { n; faulty = a }

  let random g ~n ~t =
    if t < 0 || t > n then invalid_arg "Faults.random: bad t";
    make ~n ~faulty:(Prng.sample_distinct g t n)

  let n t = t.n
  let is_faulty t i = t.faulty.(i)
  let is_honest t i = not t.faulty.(i)

  let faulty t =
    List.filter (fun i -> t.faulty.(i)) (List.init t.n Fun.id)

  let honest t =
    List.filter (fun i -> not t.faulty.(i)) (List.init t.n Fun.id)

  let count t = List.length (faulty t)

  let pp ppf t =
    Format.fprintf ppf "faulty={%s}"
      (String.concat "," (List.map string_of_int (faulty t)))
end
