(** Synchronous network of [n] players with private point-to-point
    channels — the paper's communication model (Section 2).

    A protocol round is: every player deposits its outgoing messages with
    {!send} (or {!send_to_all}), then the round barrier {!deliver}
    advances time and hands every player its inbox. Synchrony means a
    message sent in round [r] arrives at the start of round [r+1] and a
    missing message is detectable — faulty players simply do not call
    {!send}.

    Channels are private: the simulator only ever exposes an inbox to its
    addressee (there is no eavesdropping API), which models the paper's
    secrecy assumption for shares in transit.

    Byzantine behaviour is expressed by the code driving a faulty
    player's sends — nothing here restricts what a player may send, to
    whom, or how inconsistently (equivocation is just [send]ing different
    values to different destinations).

    Every send ticks {!Metrics.tick_message} with the message's wire
    size and every barrier ticks {!Metrics.tick_round}, which is how the
    paper's per-protocol message/bit/round counts are measured. *)

type 'msg t

val create : n:int -> byte_size:('msg -> int) -> 'msg t
(** A fresh network for one protocol execution. [byte_size] gives the
    wire size of each message for communication accounting. *)

val n : _ t -> int

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Queue a message for delivery at the next {!deliver}. [src] and
    [dst] must be valid player ids; sending to oneself is allowed (and
    free: self-messages are not counted as communication). *)

val send_to_all : 'msg t -> src:int -> (int -> 'msg) -> unit
(** [send_to_all net ~src f] sends [f dst] to every player [dst]
    (including [src] itself, uncounted). With a constant [f] this is the
    point-to-point "announce" the paper uses in place of broadcast; a
    faulty player equivocates by varying [f]. *)

val deliver : 'msg t -> (int * 'msg) list array
(** Round barrier: returns [inbox] where [inbox.(i)] lists
    [(sender, msg)] pairs in sender order (at most one slot per sender
    per round is typical, but multiple sends are preserved in send
    order). All queues are emptied. *)

val rounds_elapsed : _ t -> int

(** {1 Fault sets} *)

module Faults : sig
  type t
  (** Which players are Byzantine in one execution. The set is fixed for
      the run, matching the paper's "fixed for a constant number of
      rounds" assumption; the proactive-refresh example models mobility
      by using a different set per epoch. *)

  val none : n:int -> t
  val make : n:int -> faulty:int list -> t
  (** @raise Invalid_argument on out-of-range or duplicate ids. *)

  val random : Prng.t -> n:int -> t:int -> t
  (** [t] faulty players chosen uniformly. *)

  val n : t -> int
  val count : t -> int
  val is_faulty : t -> int -> bool
  val is_honest : t -> int -> bool
  val faulty : t -> int list
  val honest : t -> int list
  val pp : Format.formatter -> t -> unit
end
