(* SplitMix64. Reference: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let copy g = { state = g.state }

(* The 64-bit finalizer of MurmurHash3, variant from the SplitMix64
   reference implementation. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

(* A distinct finalizer for deriving split-off streams, per the paper's
   recommendation to decorrelate the child gamma/seed from the parent. *)
let mix_gamma z =
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL) in
  let z = Int64.(mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L) in
  Int64.(logxor z (shift_right_logical z 33))

let split g =
  let seed = next_int64 g in
  { state = mix_gamma seed }

let split_n g n =
  assert (n >= 0);
  Array.init n (fun _ -> split g)

let int64_nonneg g = Int64.logand (next_int64 g) Int64.max_int

let bits g w =
  assert (w >= 0 && w <= 62);
  if w = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (next_int64 g) (64 - w))

let bool g = Int64.compare (next_int64 g) 0L < 0

let int g bound =
  assert (bound > 0);
  (* Rejection sampling over the smallest power of two >= bound. *)
  let rec width w = if 1 lsl w >= bound then w else width (w + 1) in
  let w = width 0 in
  let rec draw () =
    let v = bits g w in
    if v < bound then v else draw ()
  in
  draw ()

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let sample_distinct g m bound =
  assert (m >= 0 && m <= bound);
  (* For small m relative to bound, draw-and-retry; otherwise shuffle a
     full range. The protocols only ever sample a handful of ids. *)
  if 2 * m >= bound then begin
    let a = Array.init bound (fun i -> i) in
    shuffle g a;
    List.sort compare (Array.to_list (Array.sub a 0 m))
  end else begin
    let module IS = Set.Make (Int) in
    let rec fill acc =
      if IS.cardinal acc = m then acc else fill (IS.add (int g bound) acc)
    in
    IS.elements (fill IS.empty)
  end
