(** Deterministic splittable pseudo-random number generator.

    Every player in the simulated network owns an independent [Prng.t];
    the paper's model gives each player a source of perfectly random bits,
    and this module stands in for that source while keeping whole-protocol
    runs reproducible from a single integer seed.

    The implementation is SplitMix64 (Steele, Lea, Flood; OOPSLA 2014),
    which has a 64-bit state, passes BigCrush, and supports cheap
    deterministic splitting — exactly what a simulation of [n] independent
    players needs. It is {e not} a cryptographic generator; the paper
    explicitly treats local randomness as a given primitive. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator determined by [seed]. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream. Used to
    give each simulated player its own source. *)

val split_n : t -> int -> t array
(** [split_n g n] returns [n] independent generators split off [g]. *)

val copy : t -> t
(** [copy g] duplicates the current state (the copy replays [g]'s
    future). Useful in tests. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int -> int
(** [bits g w] returns a uniformly random non-negative int of [w] bits,
    [0 <= w <= 62]. *)

val int : t -> int -> int
(** [int g bound] returns a uniform value in [0, bound-1]. [bound] must be
    positive. Uses rejection sampling, so the result is exactly uniform. *)

val bool : t -> bool
(** Uniform random boolean. *)

val int64_nonneg : t -> int64
(** Uniform random non-negative int64 (top bit cleared). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct g m bound] returns [m] distinct values drawn
    uniformly from [0, bound-1], in increasing order.
    Requires [m <= bound]. *)
