lib/rs/berlekamp_welch.ml: Array Field_intf Linalg List Metrics Option Poly
