lib/rs/berlekamp_welch.mli: Field_intf Poly
