lib/rs/linalg.ml: Array Field_intf
