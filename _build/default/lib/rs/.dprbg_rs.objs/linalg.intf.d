lib/rs/linalg.mli: Field_intf
