module Make (F : Field_intf.S) = struct
  module P = Poly.Make (F)
  module L = Linalg.Make (F)

  (* For a candidate error count e, solve the linear system

       Q(x_i) - y_i * (E_0 + E_1 x_i + ... + E_{e-1} x_i^{e-1})
         = y_i * x_i^e                                  for each point i,

     where E(x) = x^e + E_{e-1} x^{e-1} + ... + E_0 is the monic error
     locator and deg Q <= max_degree + e. If the division Q / E is exact,
     the quotient is the candidate codeword polynomial. *)
  let attempt ~max_degree points e =
    let nq = max_degree + e + 1 in
    let rows =
      List.map
        (fun (x, y) ->
          let row = Array.make (nq + e) F.zero in
          let xp = ref F.one in
          for j = 0 to nq - 1 do
            row.(j) <- !xp;
            if j < nq - 1 then xp := F.mul !xp x
          done;
          let xp = ref F.one in
          for j = 0 to e - 1 do
            row.(nq + j) <- F.neg (F.mul y !xp);
            xp := F.mul !xp x
          done;
          row)
        points
    in
    let rhs =
      List.map (fun (x, y) -> F.mul y (F.pow x e)) points
    in
    match L.solve (Array.of_list rows) (Array.of_list rhs) with
    | None -> None
    | Some sol ->
        let q = P.of_coeffs (Array.sub sol 0 nq) in
        let locator =
          P.of_coeffs
            (Array.init (e + 1) (fun j -> if j = e then F.one else sol.(nq + j)))
        in
        let quotient, remainder = P.divmod q locator in
        if P.equal remainder P.zero then Some quotient else None

  let decode_with_support ~max_degree ~max_errors points =
    if max_degree < 0 || max_errors < 0 then
      invalid_arg "Berlekamp_welch.decode: negative parameter";
    let m = List.length points in
    if m < max_degree + 1 + (2 * max_errors) then
      invalid_arg "Berlekamp_welch.decode: too few points for uniqueness";
    Metrics.tick_interpolation ();
    let agreeing f =
      List.filter (fun (x, y) -> F.equal (P.eval f x) y) points
    in
    let accept f =
      P.degree f <= max_degree
      && List.length (agreeing f) >= m - max_errors
    in
    (* Try the largest error count first; fall back in case the locator
       system is degenerate for an over-estimated e. *)
    let rec try_e e =
      if e < 0 then None
      else
        match attempt ~max_degree points e with
        | Some f when accept f -> Some (f, agreeing f)
        | _ -> try_e (e - 1)
    in
    try_e max_errors

  let decode ~max_degree ~max_errors points =
    Option.map fst (decode_with_support ~max_degree ~max_errors points)
end
