(** Berlekamp–Welch decoding: interpolation through points of which some
    may be adversarially wrong.

    The paper uses this as its robust-interpolation primitive ("Methods
    such as the Berlekamp-Welch decoder [5] can be used", Section 2):
    [Bit-Gen] step 5 and [Coin-Expose] step 2 interpolate a degree-[t]
    polynomial through shares of which up to [t] come from faulty
    players. Given [m] points, a degree bound [d] and an error bound
    [e] with [m >= d + 1 + 2e], the unique degree-[<= d] polynomial
    agreeing with at least [m - e] points is recovered whenever it
    exists. *)

module Make (F : Field_intf.S) : sig
  module P : module type of Poly.Make (F)

  val decode :
    max_degree:int -> max_errors:int -> (F.t * F.t) list -> P.t option
  (** [decode ~max_degree:d ~max_errors:e points] returns the unique
      polynomial of degree [<= d] that agrees with at least
      [length points - e] of the points, or [None] when no such
      polynomial exists. The [x]s must be pairwise distinct and
      [length points >= d + 1 + 2e] must hold (raises
      [Invalid_argument] otherwise — with fewer points the answer is
      not unique). Ticks one {!Metrics.tick_interpolation}. *)

  val decode_with_support :
    max_degree:int ->
    max_errors:int ->
    (F.t * F.t) list ->
    (P.t * (F.t * F.t) list) option
  (** Like {!decode} but also returns the agreeing points (the
      "support"); [Bit-Gen] step 5 needs them to report the share set
      [S]. *)
end
