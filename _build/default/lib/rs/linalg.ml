module Make (F : Field_intf.S) = struct
  (* Row-reduce the augmented matrix [a | b] to row-echelon form, then
     back-substitute. Partial pivoting is unnecessary over a finite
     field; any non-zero pivot does. *)

  let reduce rows cols a =
    let pivot_col = Array.make rows (-1) in
    let r = ref 0 in
    for c = 0 to cols - 1 do
      if !r < rows then begin
        (* Find a row at or below !r with a non-zero entry in column c. *)
        let rec find i =
          if i >= rows then None
          else if not (F.equal a.(i).(c) F.zero) then Some i
          else find (i + 1)
        in
        match find !r with
        | None -> ()
        | Some i ->
            let tmp = a.(i) in
            a.(i) <- a.(!r);
            a.(!r) <- tmp;
            let inv = F.inv a.(!r).(c) in
            let width = Array.length a.(!r) in
            for j = c to width - 1 do
              a.(!r).(j) <- F.mul inv a.(!r).(j)
            done;
            for i = 0 to rows - 1 do
              if i <> !r && not (F.equal a.(i).(c) F.zero) then begin
                let f = a.(i).(c) in
                for j = c to width - 1 do
                  a.(i).(j) <- F.sub a.(i).(j) (F.mul f a.(!r).(j))
                done
              end
            done;
            pivot_col.(!r) <- c;
            incr r
      end
    done;
    pivot_col

  let solve a b =
    let rows = Array.length a in
    if rows = 0 then Some [||]
    else begin
      let cols = Array.length a.(0) in
      let aug =
        Array.init rows (fun i ->
            Array.init (cols + 1) (fun j -> if j < cols then a.(i).(j) else b.(i)))
      in
      let pivot_col = reduce rows cols aug in
      (* Inconsistent iff a fully-zero coefficient row has non-zero rhs. *)
      let consistent = ref true in
      for i = 0 to rows - 1 do
        if pivot_col.(i) = -1 then begin
          let all_zero = ref true in
          for j = 0 to cols - 1 do
            if not (F.equal aug.(i).(j) F.zero) then all_zero := false
          done;
          if !all_zero && not (F.equal aug.(i).(cols) F.zero) then
            consistent := false
        end
      done;
      if not !consistent then None
      else begin
        let x = Array.make cols F.zero in
        for i = 0 to rows - 1 do
          if pivot_col.(i) >= 0 then begin
            (* Reduced form: x_(pivot) = rhs - sum of free columns; free
               variables are zero, and full reduction already cleared
               other pivot columns, so the row reads off directly except
               for free columns, which we subtract. *)
            let c = pivot_col.(i) in
            let v = ref aug.(i).(cols) in
            for j = c + 1 to cols - 1 do
              if not (F.equal x.(j) F.zero) then
                v := F.sub !v (F.mul aug.(i).(j) x.(j))
            done;
            x.(c) <- !v
          end
        done;
        Some x
      end
    end

  let solve_homogeneous_nontrivial a =
    let rows = Array.length a in
    if rows = 0 then None
    else begin
      let cols = Array.length a.(0) in
      let aug = Array.init rows (fun i -> Array.copy a.(i)) in
      let pivot_col = reduce rows cols aug in
      let is_pivot = Array.make cols false in
      Array.iter (fun c -> if c >= 0 then is_pivot.(c) <- true) pivot_col;
      (* A free column yields a non-trivial kernel vector: set it to one,
         read pivots off the reduced rows. *)
      let rec free c = if c >= cols then None else if is_pivot.(c) then free (c + 1) else Some c in
      match free 0 with
      | None -> None
      | Some fc ->
          let x = Array.make cols F.zero in
          x.(fc) <- F.one;
          for i = 0 to rows - 1 do
            let c = pivot_col.(i) in
            if c >= 0 then x.(c) <- F.neg aug.(i).(fc)
          done;
          Some x
    end
end
