(** Dense linear algebra over an abstract field — just enough Gaussian
    elimination to drive the Berlekamp–Welch decoder's linear system. *)

module Make (F : Field_intf.S) : sig
  val solve : F.t array array -> F.t array -> F.t array option
  (** [solve a b] returns some [x] with [A x = b], or [None] if the
      system is inconsistent. When the system is under-determined, free
      variables are set to zero (any solution works for the decoder).
      [a] is an array of rows; neither input is mutated. *)

  val solve_homogeneous_nontrivial : F.t array array -> F.t array option
  (** A non-zero [x] with [A x = 0], if one exists (i.e. if the columns
      are linearly dependent). *)
end
