module Make (F : Field_intf.S) = struct
  module P = Poly.Make (F)
  module BW = Berlekamp_welch.Make (F)

  let eval_point i =
    assert (i >= 0);
    F.of_int (i + 1)

  let share_poly g ~t ~secret =
    assert (t >= 0);
    P.random_with_c0 g ~degree:t ~c0:secret

  let deal g ~t ~n ~secret =
    if t >= n then invalid_arg "Shamir.deal: need t < n";
    let f = share_poly g ~t ~secret in
    Array.init n (fun i -> P.eval f (eval_point i))

  let reconstruct shares =
    if shares = [] then invalid_arg "Shamir.reconstruct: no shares";
    P.interpolate_at
      (List.map (fun (i, s) -> (eval_point i, s)) shares)
      F.zero

  let robust_reconstruct ~t shares =
    let m = List.length shares in
    let e = (m - t - 1) / 2 in
    if e < 0 then None
    else
      let points = List.map (fun (i, s) -> (eval_point i, s)) shares in
      match BW.decode_with_support ~max_degree:t ~max_errors:e points with
      | None -> None
      | Some (f, support) ->
          let support_ids =
            List.filter
              (fun (i, s) ->
                List.exists
                  (fun (x, y) -> F.equal x (eval_point i) && F.equal y s)
                  support)
              shares
          in
          Some (BW.P.eval f F.zero, support_ids)
end
