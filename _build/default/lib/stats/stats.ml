let mean xs =
  if xs = [] then invalid_arg "Stats.mean: empty";
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  if xs = [] then invalid_arg "Stats.stddev: empty";
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let histogram ~buckets key xs =
  if buckets < 1 then invalid_arg "Stats.histogram: buckets < 1";
  let h = Array.make buckets 0 in
  List.iter
    (fun x ->
      let b = key x mod buckets in
      if b < 0 then invalid_arg "Stats.histogram: negative key";
      h.(b) <- h.(b) + 1)
    xs;
  h

let chi_square ~observed =
  let buckets = Array.length observed in
  if buckets < 2 then invalid_arg "Stats.chi_square: need >= 2 buckets";
  let total = Array.fold_left ( + ) 0 observed in
  if total = 0 then invalid_arg "Stats.chi_square: no observations";
  let expected = float_of_int total /. float_of_int buckets in
  Array.fold_left
    (fun acc c ->
      let d = float_of_int c -. expected in
      acc +. (d *. d /. expected))
    0.0 observed

let chi_square_two_sample a b =
  if Array.length a <> Array.length b then
    invalid_arg "Stats.chi_square_two_sample: length mismatch";
  let acc = ref 0.0 in
  Array.iteri
    (fun i ca ->
      let cb = b.(i) in
      if ca + cb > 0 then begin
        let e = float_of_int (ca + cb) /. 2.0 in
        let da = float_of_int ca -. e and db = float_of_int cb -. e in
        acc := !acc +. (da *. da /. e) +. (db *. db /. e)
      end)
    a;
  !acc

let uniform_5sigma_bound ~buckets =
  let dof = float_of_int (buckets - 1) in
  dof +. (5.0 *. sqrt (2.0 *. dof))

let bit_balance_bound ~trials =
  int_of_float (5.0 *. sqrt (float_of_int trials) /. 2.0)
