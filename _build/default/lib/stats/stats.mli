(** Small statistics toolkit for the randomness tests and experiment
    harness: uniformity checks on coin outputs, goodness-of-fit between
    empirical distributions, and summary statistics for iteration counts.

    Shared coins are useless if they are biased, so the test-suite and
    several experiments (E8, E12, E14, the lottery example) check
    empirical distributions; this module centralizes those checks. *)

val mean : float list -> float
(** Arithmetic mean. @raise Invalid_argument on the empty list. *)

val stddev : float list -> float
(** Population standard deviation. @raise Invalid_argument on empty. *)

val histogram : buckets:int -> ('a -> int) -> 'a list -> int array
(** [histogram ~buckets key xs] counts [xs] by [key x mod buckets]
    (non-negative keys expected). *)

val chi_square : observed:int array -> float
(** Chi-square statistic against the uniform expectation over the
    buckets. @raise Invalid_argument when there are no observations or
    fewer than two buckets. *)

val chi_square_two_sample : int array -> int array -> float
(** Chi-square statistic for the hypothesis that two equally-bucketed
    samples come from the same distribution (empty bucket pairs are
    skipped). *)

val uniform_5sigma_bound : buckets:int -> float
(** A loose pass threshold for {!chi_square} on a uniform sample:
    [dof + 5 * sqrt (2 * dof)] where [dof = buckets - 1]. Exceeding this
    is a > 5-sigma event for a genuinely uniform source — the test
    thresholds the suite uses. *)

val bit_balance_bound : trials:int -> int
(** Maximum absolute deviation from [trials/2] heads accepted for a fair
    coin: [5 * sqrt (trials) / 2], the 5-sigma band. *)
