lib/vss/coin_oracle.ml: Array Broadcast Field_intf Fun List Metrics Option Prng Shamir
