lib/vss/coin_oracle.mli: Field_intf Prng
