lib/vss/cut_and_choose_vss.ml: Array Broadcast Field_intf Fun List Metrics Poly Shamir
