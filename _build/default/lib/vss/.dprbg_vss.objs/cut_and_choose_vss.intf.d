lib/vss/cut_and_choose_vss.mli: Field_intf Poly Prng
