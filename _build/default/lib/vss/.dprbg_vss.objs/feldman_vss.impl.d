lib/vss/feldman_vss.ml: Array Broadcast Metrics Poly Shamir Zp
