lib/vss/feldman_vss.mli: Field_intf Prng
