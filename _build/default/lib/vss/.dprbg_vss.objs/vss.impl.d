lib/vss/vss.ml: Array Berlekamp_welch Broadcast Field_intf Fun List Metrics Option Poly Shamir
