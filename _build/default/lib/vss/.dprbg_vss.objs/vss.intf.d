lib/vss/vss.mli: Field_intf Poly Prng Shamir
