module Make (F : Field_intf.S) = struct
  module S = Shamir.Make (F)

  type t = Ideal of Prng.t | Shared of { g : Prng.t; n : int; t : int }

  let ideal g = Ideal g

  let simulated_shared g ~n ~t =
    if t >= n then invalid_arg "Coin_oracle.simulated_shared: need t < n";
    Shared { g; n; t }

  let draw = function
    | Ideal g -> Metrics.without_counting (fun () -> F.random g)
    | Shared { g; n; t } ->
        (* The sharing pre-exists (it is what "holding a sealed coin"
           means), so materializing it is uncounted. *)
        let shares =
          Metrics.without_counting (fun () ->
              S.deal g ~t ~n ~secret:(F.random g))
        in
        (* Expose: every player broadcasts its share, then each player
           reconstructs — the paper's n messages of size k plus one
           interpolation per player. *)
        let announced =
          Broadcast.round ~byte_size:(fun _ -> F.byte_size) ~n (fun i ->
              Some shares.(i))
        in
        let reconstruct () =
          let shares_list =
            List.filter_map
              (fun i -> Option.map (fun s -> (i, s)) announced.(i))
              (List.init n Fun.id)
          in
          S.reconstruct shares_list
        in
        let per_player = Array.init n (fun _ -> reconstruct ()) in
        per_player.(0)
end
