(** The "secret random k-ary coin" the Section-3 protocols assume.

    Protocols VSS and Batch-VSS are parameterized by access to a shared
    coin that stays secret until exposed ({i "Given: access to a secret
    random k-ary-coin"}, Figs. 2-3). In the full system that coin comes
    from the D-PRBG pool; for running or measuring the VSS layer on its
    own, this module provides two stand-ins:

    {ul
    {- {!Make.ideal} — a zero-cost oracle for unit tests: drawing costs
       nothing and just consumes local randomness;}
    {- {!Make.simulated_shared} — an oracle that actually performs the
       broadcast-model [Coin-Expose] on a fresh pre-dealt Shamir sharing
       each draw: [n] broadcast messages of one field element, one round,
       and one reconstruction per player. This is the accounting the
       paper applies in Lemma 2 ("a single secret coin is reconstructed
       for the verification [...] equivalent in computation to the
       interpolation of the shares being examined").}}

    Creating the pre-existing sharing is bookkeeping with no protocol
    counterpart, so it runs under {!Metrics.without_counting}. *)

module Make (F : Field_intf.S) : sig
  type t

  val ideal : Prng.t -> t
  (** Draws are free and uncounted. *)

  val simulated_shared : Prng.t -> n:int -> t:int -> t
  (** Draws execute a broadcast-model expose among [n] players with
      degree-[t] sharings and tick the corresponding costs. *)

  val draw : t -> F.t
  (** Consume and expose the next coin. *)
end
