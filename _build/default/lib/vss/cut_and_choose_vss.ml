module Make (F : Field_intf.S) = struct
  module P = Poly.Make (F)
  module S = Shamir.Make (F)

  type verdict = Accept | Reject

  type dealing = {
    alpha : F.t array;
    masks : F.t array array;
    mask_polys : P.t array;
    sum_polys : P.t array;
  }

  let eval_all f n = Array.init n (fun i -> P.eval f (S.eval_point i))

  let dealing_of_polys ~n f gs =
    {
      alpha = eval_all f n;
      masks = Array.map (fun gj -> eval_all gj n) gs;
      mask_polys = gs;
      sum_polys = Array.map (fun gj -> P.add f gj) gs;
    }

  let honest_dealing g ~n ~t ~rounds ~secret =
    if t >= n then invalid_arg "Cut_and_choose_vss: need t < n";
    let f = S.share_poly g ~t ~secret in
    let gs =
      Array.init rounds (fun _ -> S.share_poly g ~t ~secret:(F.random g))
    in
    dealing_of_polys ~n f gs

  let cheating_dealing g ~n ~t ~rounds =
    if t + 1 >= n then invalid_arg "Cut_and_choose_vss: t+1 >= n";
    let f =
      P.add (P.random g ~degree:t) (P.monomial (F.random_nonzero g) (t + 1))
    in
    let gs =
      Array.init rounds (fun _ -> S.share_poly g ~t ~secret:(F.random g))
    in
    dealing_of_polys ~n f gs

  let run ~n ~t ~challenges dealing =
    if Array.length dealing.masks <> Array.length challenges then
      invalid_arg "Cut_and_choose_vss.run: challenge count mismatch";
    (* The dealer first distributes the mask shares: one round of n
       messages per mask polynomial. *)
    Array.iter
      (fun _ ->
        for _ = 1 to n do
          Metrics.tick_message ~bytes_len:F.byte_size
        done)
      dealing.masks;
    Metrics.tick_round ();
    let ok = ref true in
    Array.iteri
      (fun j open_sum ->
        (* Players broadcast the opened share for challenge j. *)
        let announced =
          Broadcast.round ~byte_size:(fun _ -> F.byte_size) ~n (fun i ->
              let share =
                if open_sum then F.add dealing.alpha.(i) dealing.masks.(j).(i)
                else dealing.masks.(j).(i)
              in
              Some share)
        in
        let points =
          List.map
            (fun i ->
              match announced.(i) with
              | Some v -> (S.eval_point i, v)
              | None -> assert false)
            (List.init n Fun.id)
        in
        (* Every player interpolates and checks the degree (global-total
           accounting; see DESIGN.md). *)
        let verdicts =
          Array.init n (fun _ -> P.fits_degree points ~max_degree:t)
        in
        if not verdicts.(0) then ok := false)
      challenges;
    if !ok then Accept else Reject
end
