(** Cut-and-choose VSS — the Chaum–Crépeau–Damgård-style baseline the
    paper compares against (Section 1.4 and Section 3.1).

    "The method presented in [9] is a cut-and-choose protocol. Roughly
    speaking, the dealer who shared the secret is asked to share k
    additional polynomials g_1(x), ..., g_k(x). For each j the players
    decide whether to reconstruct g_j(x) or f(x) + g_j(x), and check if
    the reconstructed polynomial is of degree <= t. Thus, in this
    approach k polynomial interpolations are computed [...]"

    Each challenge round catches a cheating dealer with probability 1/2,
    so [rounds] challenges give soundness error [2^-rounds] — against the
    single interpolation and [1/p] error of the paper's protocol. This
    module exists to let the benchmark harness reproduce that comparison
    (experiment E10). *)

module Make (F : Field_intf.S) : sig
  module P : module type of Poly.Make (F)

  type verdict = Accept | Reject

  type dealing = {
    alpha : F.t array;  (** shares of the secret polynomial [f] *)
    masks : F.t array array;  (** [masks.(j).(i)]: player [i]'s share of [g_j] *)
    mask_polys : P.t array;  (** the dealer's committed [g_j] (used when a
                                 challenge asks it to open [g_j] directly) *)
    sum_polys : P.t array;  (** the dealer's committed [f + g_j] *)
  }

  val honest_dealing :
    Prng.t -> n:int -> t:int -> rounds:int -> secret:F.t -> dealing

  val cheating_dealing :
    Prng.t -> n:int -> t:int -> rounds:int -> dealing
  (** A dealer whose [f] has degree [t + 1] and whose masks are all
      honest (degree [<= t]) — each challenge then catches it with
      probability exactly 1/2, the optimal evasion. *)

  val run :
    n:int -> t:int -> challenges:bool array -> dealing -> verdict
  (** One execution with the given public challenge bits (one per
      round): [false] opens [g_j], [true] opens [f + g_j]. Every opened
      polynomial costs a broadcast round of [n] shares and one
      interpolation per player. *)
end
