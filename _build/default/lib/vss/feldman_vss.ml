type verdict = Accept | Reject

(* A ~30-bit safe-prime pair: q prime with p = 2q + 1 prime. Found once
   at load time; the search is a few dozen Miller-Rabin calls. *)
let q, p =
  let rec search q =
    if q >= 1 lsl 30 then failwith "Feldman_vss: no safe prime found"
    else if Zp.is_prime q && Zp.is_prime ((2 * q) + 1) then (q, (2 * q) + 1)
    else search (q + 1)
  in
  search ((1 lsl 29) + 1)

module Fq = Zp.Make (struct let p = q end)
module Fp = Zp.Make (struct let p = (2 * q) + 1 end)
module S = Shamir.Make (Fq)
module P = Poly.Make (Fq)

let generator =
  (* Squares generate the order-q subgroup of Z_p*; avoid the trivial
     square 1. *)
  let rec find h =
    let cand = Fp.repr (Fp.mul (Fp.of_int h) (Fp.of_int h)) in
    if cand <> 1 then cand else find (h + 1)
  in
  find 2

type dealing = { shares : Fq.t array; commitments : int array }

let commitments_of_poly ~t f =
  Array.init (t + 1) (fun j ->
      Fp.repr (Fp.pow (Fp.of_int generator) (Fq.repr (P.coeff f j))))

let honest_dealing g ~n ~t ~secret =
  let f = S.share_poly g ~t ~secret in
  { shares = Array.init n (fun i -> P.eval f (S.eval_point i));
    commitments = commitments_of_poly ~t f }

let cheating_dealing g ~n ~t ~corrupt =
  if corrupt < 0 || corrupt >= n then
    invalid_arg "Feldman_vss.cheating_dealing: corrupt id out of range";
  let d = honest_dealing g ~n ~t ~secret:(Fq.random g) in
  d.shares.(corrupt) <- Fq.add d.shares.(corrupt) Fq.one;
  d

let verify_share ~t ~commitments ~player ~share =
  if Array.length commitments <> t + 1 then
    invalid_arg "Feldman_vss.verify_share: commitment count";
  let x = Fq.repr (S.eval_point player) in
  (* prod_j c_j^(x^j) via Horner in the exponent:
     (((c_t)^x * c_{t-1})^x * ...)^x * c_0 — t exponentiations, each a
     square-and-multiply of the counted Z_p multiplications. *)
  let acc = ref (Fp.of_repr commitments.(t)) in
  for j = t - 1 downto 0 do
    acc := Fp.mul (Fp.pow !acc x) (Fp.of_repr commitments.(j))
  done;
  let lhs = Fp.pow (Fp.of_int generator) (Fq.repr share) in
  Fp.equal lhs !acc

let run ~n ~t dealing =
  if Array.length dealing.shares <> n then
    invalid_arg "Feldman_vss.run: share count";
  (* Round 1: dealer broadcasts the t+1 commitments and deals the n
     shares over private channels. *)
  ignore
    (Broadcast.round ~byte_size:(fun c -> Array.length c * Fp.byte_size) ~n:1
       (fun _ -> Some dealing.commitments));
  for _ = 1 to n do
    Metrics.tick_message ~bytes_len:Fq.byte_size
  done;
  (* Round 2: every player verifies its own share and broadcasts a
     complaint bit. *)
  let complaints =
    Broadcast.round ~byte_size:(fun _ -> 1) ~n (fun i ->
        Some
          (not
             (verify_share ~t ~commitments:dealing.commitments ~player:i
                ~share:dealing.shares.(i))))
  in
  if Array.exists (fun c -> c = Some true) complaints then Reject else Accept
