(** Feldman's non-interactive VSS [Fel87] — the discrete-log baseline of
    the paper's Section 1.4 comparison.

    "Feldman's protocol depends on the unproven assumption of the
    hardness of the discrete log problem. After defining the polynomial
    (à la Shamir) and computing all the private shares f(i) of the
    players, the dealer generates public information which aids in the
    verification. A consequence of this is that both the dealer and the
    players have to carry out t exponentiations (i.e., t log p
    multiplications)."

    Concretely: shares live in [Z_q]; the dealer publishes commitments
    [c_j = g^(f_j) mod p] to every coefficient, where [p = 2q + 1] is a
    safe prime and [g] generates the order-[q] subgroup; player [i]
    accepts its share [s] iff [g^s = prod_j c_j^((i+1)^j) mod p].

    {b Substitution note} (DESIGN.md §3): the paper sizes [p] at 1024
    bits; no bignum library is available here, so [p] is a ~30-bit safe
    prime. The comparison metric is {e operation counts} — each
    exponentiation still costs [Theta(log p)] counted multiplications —
    so the cost shape survives; only the (irrelevant to the benchmark)
    cryptographic hardness does not. *)

type verdict = Accept | Reject

val q : int
(** The share-field prime. *)

val p : int
(** The group prime, [p = 2q + 1]. *)

val generator : int
(** Generator of the order-[q] subgroup of [Z_p*]. *)

module Fq : Field_intf.S
(** The exponent field [Z_q] the shares live in. *)

type dealing = {
  shares : Fq.t array;
  commitments : int array;  (** [c_j = g^(f_j) mod p], [j = 0..t] *)
}

val honest_dealing : Prng.t -> n:int -> t:int -> secret:Fq.t -> dealing

val cheating_dealing : Prng.t -> n:int -> t:int -> corrupt:int -> dealing
(** Honest commitments but a corrupted share for player [corrupt] —
    Feldman verification catches this deterministically. *)

val verify_share : t:int -> commitments:int array -> player:int -> share:Fq.t -> bool
(** The player-side check; costs [t] exponentiations, each counted as
    [Theta(log p)] multiplications. *)

val run : n:int -> t:int -> dealing -> verdict
(** Full execution: the dealer broadcasts commitments and deals shares;
    every player verifies its own share and broadcasts a complaint bit;
    accept iff nobody complains. *)
