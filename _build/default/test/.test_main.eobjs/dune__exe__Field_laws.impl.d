test/field_laws.ml: Alcotest Array Bytes Field_intf List Prng QCheck QCheck_alcotest
