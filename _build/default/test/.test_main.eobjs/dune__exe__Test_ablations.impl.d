test/test_ablations.ml: Alcotest Array Bit_gen Coin_expose Coin_gen Gf2k List Metrics Net Option Phase_king Prng QCheck QCheck_alcotest Sealed_coin Shamir Vss
