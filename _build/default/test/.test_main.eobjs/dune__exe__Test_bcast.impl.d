test/test_bcast.ml: Alcotest Array Bool Broadcast Gradecast List Metrics Net Phase_king Prng QCheck QCheck_alcotest String
