test/test_bit_gen.ml: Alcotest Array Bit_gen Fun Gf2k List Metrics Option Printf Prng Vss
