test/test_broadcast_protocol.ml: Alcotest Array Broadcast_protocol Common_coin_ba Gf2k Gradecast List Net Phase_king Pool Prng QCheck QCheck_alcotest String
