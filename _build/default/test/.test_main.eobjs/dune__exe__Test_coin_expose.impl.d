test/test_coin_expose.ml: Alcotest Array Coin_expose Fun Gf2k List Metrics Option Printf Prng Sealed_coin
