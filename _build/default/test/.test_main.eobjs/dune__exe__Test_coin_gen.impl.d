test/test_coin_gen.ml: Alcotest Array Attacks Coin_expose Coin_gen Fun Gf2k List Metrics Net Option Phase_king Printf Prng Sealed_coin
