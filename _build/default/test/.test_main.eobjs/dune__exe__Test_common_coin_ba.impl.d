test/test_common_coin_ba.ml: Alcotest Array Bool Common_coin_ba List Net Printf Prng
