test/test_eig.ml: Alcotest Array Bool Coin_expose Coin_gen Eig_ba Gf2k Hashtbl List Metrics Net Phase_king Printf Prng QCheck QCheck_alcotest
