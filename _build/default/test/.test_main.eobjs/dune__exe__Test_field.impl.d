test/test_field.ml: Alcotest Array Fft_field Field_laws Gf2_wide Gf2k List Ntt Printf Prng QCheck QCheck_alcotest Zp Zq_table
