test/test_gradecast_all.ml: Alcotest Array Fun Gradecast List Metrics Net Printf Prng QCheck QCheck_alcotest String
