test/test_graph.ml: Alcotest Fun List Net Player_graph Prng QCheck QCheck_alcotest
