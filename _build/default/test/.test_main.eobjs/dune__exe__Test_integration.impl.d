test/test_integration.ml: Alcotest Array Gf2k Metrics Pool Prng Vss
