test/test_multivalued_ba.ml: Alcotest Array Gf2k Hashtbl List Multivalued_ba Net Phase_king Prng QCheck QCheck_alcotest String
