test/test_net.ml: Alcotest Array Metrics Net Prng String
