test/test_ntt_edge.ml: Alcotest Array Fft_field List Ntt Prng Zp Zq_table
