test/test_persistence.ml: Alcotest Array Bytes Coin_expose Coin_gen Gf2k Metrics Option Pool Prng Sealed_coin Wire
