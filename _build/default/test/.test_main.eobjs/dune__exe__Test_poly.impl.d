test/test_poly.ml: Alcotest Fmt Gf2k List Metrics Poly Prng QCheck QCheck_alcotest
