test/test_pool.ml: Alcotest Array Gf2k List Metrics Net Phase_king Pool Printf Prng QCheck QCheck_alcotest
