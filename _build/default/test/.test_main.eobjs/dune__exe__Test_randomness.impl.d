test/test_randomness.ml: Alcotest Array Fun Gf2k List Printf Prng Randomness Stats
