test/test_refresh.ml: Alcotest Array Coin_expose Coin_gen Gf2k Gradecast List Metrics Net Option Phase_king Poly Pool Printf Prng Refresh Sealed_coin Shamir
