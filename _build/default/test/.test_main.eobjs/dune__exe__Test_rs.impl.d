test/test_rs.ml: Alcotest Array Berlekamp_welch Gf2k Linalg List Poly Prng QCheck QCheck_alcotest
