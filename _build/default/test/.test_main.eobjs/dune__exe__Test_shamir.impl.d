test/test_shamir.ml: Alcotest Array Gf2k List Printf Prng QCheck QCheck_alcotest Shamir
