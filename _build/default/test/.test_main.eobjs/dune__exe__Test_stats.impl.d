test/test_stats.ml: Alcotest Array Fun List Printf Prng Stats
