test/test_vss.ml: Alcotest Array Coin_oracle Fun Gf2k List Metrics Printf Prng Vss
