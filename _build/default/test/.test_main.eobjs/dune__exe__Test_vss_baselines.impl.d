test/test_vss_baselines.ml: Alcotest Array Cut_and_choose_vss Feldman_vss Gf2k Metrics Printf Prng Zp
