test/test_wire.ml: Alcotest Array Bytes Gf2k List Prng QCheck QCheck_alcotest Wire
