(* Property tests every field implementation must pass: the abelian-group
   and ring axioms, inverse laws, and the contracts of the auxiliary
   operations (of_int injectivity, to_bits width, pow semantics). Reused
   by test_field for each of the five implementations. *)

module Make (F : Field_intf.S) = struct
  let arb_elt =
    QCheck.make ~print:F.to_string
      (QCheck.Gen.map (fun s -> F.random (Prng.of_int s)) QCheck.Gen.int)

  let arb_nonzero =
    QCheck.make ~print:F.to_string
      (QCheck.Gen.map (fun s -> F.random_nonzero (Prng.of_int s)) QCheck.Gen.int)

  let pair = QCheck.pair arb_elt arb_elt
  let triple = QCheck.triple arb_elt arb_elt arb_elt

  let count = 300

  let law name arb f = QCheck.Test.make ~count ~name:(F.name ^ ": " ^ name) arb f

  let tests =
    [
      law "add commutative" pair (fun (a, b) -> F.equal (F.add a b) (F.add b a));
      law "add associative" triple (fun (a, b, c) ->
          F.equal (F.add (F.add a b) c) (F.add a (F.add b c)));
      law "zero is additive identity" arb_elt (fun a -> F.equal (F.add a F.zero) a);
      law "sub inverts add" pair (fun (a, b) -> F.equal (F.sub (F.add a b) b) a);
      law "neg is additive inverse" arb_elt (fun a ->
          F.equal (F.add a (F.neg a)) F.zero);
      law "mul commutative" pair (fun (a, b) -> F.equal (F.mul a b) (F.mul b a));
      law "mul associative" triple (fun (a, b, c) ->
          F.equal (F.mul (F.mul a b) c) (F.mul a (F.mul b c)));
      law "one is multiplicative identity" arb_elt (fun a ->
          F.equal (F.mul a F.one) a);
      law "mul distributes over add" triple (fun (a, b, c) ->
          F.equal (F.mul a (F.add b c)) (F.add (F.mul a b) (F.mul a c)));
      law "zero annihilates" arb_elt (fun a -> F.equal (F.mul a F.zero) F.zero);
      law "inv is multiplicative inverse" arb_nonzero (fun a ->
          F.equal (F.mul a (F.inv a)) F.one);
      law "div inverts mul" (QCheck.pair arb_elt arb_nonzero) (fun (a, b) ->
          F.equal (F.div (F.mul a b) b) a);
      law "pow agrees with iterated mul" (QCheck.pair arb_elt (QCheck.int_range 0 12))
        (fun (a, e) ->
          let rec naive i acc = if i = 0 then acc else naive (i - 1) (F.mul acc a) in
          F.equal (F.pow a e) (naive e F.one));
      law "of_int injective on small ints"
        (QCheck.pair (QCheck.int_range 0 1000) (QCheck.int_range 0 1000))
        (fun (i, j) ->
          QCheck.assume (i <> j);
          let bound = if F.k_bits >= 62 then max_int else 1 lsl F.k_bits in
          QCheck.assume (i < bound && j < bound);
          not (F.equal (F.of_int i) (F.of_int j)));
      law "to_bits has width k_bits" arb_elt (fun a ->
          Array.length (F.to_bits a) = F.k_bits);
      law "bytes roundtrip" arb_elt (fun a ->
          let b = F.to_bytes a in
          Bytes.length b = F.byte_size && F.equal (F.of_bytes b) a);
      law "lsb is 0 or 1" arb_elt (fun a -> F.lsb a = 0 || F.lsb a = 1);
      law "equal is reflexive" arb_elt (fun a -> F.equal a a);
      law "compare consistent with equal" pair (fun (a, b) ->
          F.equal a b = (F.compare a b = 0));
      law "hash respects equality" pair (fun (a, b) ->
          (not (F.equal a b)) || F.hash a = F.hash b);
    ]

  let unit_tests =
    [
      Alcotest.test_case (F.name ^ ": constants distinct") `Quick (fun () ->
          Alcotest.(check bool) "zero <> one" false (F.equal F.zero F.one));
      Alcotest.test_case (F.name ^ ": inv zero raises") `Quick (fun () ->
          Alcotest.check_raises "Division_by_zero" Division_by_zero (fun () ->
              ignore (F.inv F.zero)));
      Alcotest.test_case (F.name ^ ": byte_size covers k_bits") `Quick (fun () ->
          Alcotest.(check bool) "8*byte_size >= k_bits" true
            (8 * F.byte_size >= F.k_bits));
      Alcotest.test_case (F.name ^ ": player ids distinct & non-zero") `Quick
        (fun () ->
          let n = min 40 ((1 lsl min F.k_bits 20) - 1) in
          let pts = List.init n (fun i -> F.of_int (i + 1)) in
          List.iter
            (fun p ->
              Alcotest.(check bool) "non-zero" false (F.equal p F.zero))
            pts;
          let distinct =
            List.length (List.sort_uniq F.compare pts) = List.length pts
          in
          Alcotest.(check bool) "distinct" true distinct);
    ]

  let all = unit_tests @ List.map (QCheck_alcotest.to_alcotest ~long:false) tests
end
