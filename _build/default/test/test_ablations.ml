(* Tests for the ablation variants: they must compute the same values as
   the paper's choices (where applicable) and exhibit exactly the
   weakness/cost the design section attributes to them. *)

module F = Gf2k.GF16
module V = Vss.Make (F)
module CG = Coin_gen.Make (F)
module CE = Coin_expose.Make (F)
module C = Sealed_coin.Make (F)

let ideal_oracle seed =
  let g = Prng.of_int seed in
  fun () -> Metrics.without_counting (fun () -> F.random g)

let prop_combines_agree =
  QCheck.Test.make ~count:300 ~name:"Horner and naive combine agree"
    QCheck.(pair int (int_range 0 32))
    (fun (seed, m) ->
      let g = Prng.of_int seed in
      let shares = Array.init m (fun _ -> F.random g) in
      let r = F.random g in
      F.equal (V.combine ~r shares) (V.combine_naive ~r shares))

let test_naive_combine_costs_more () =
  let g = Prng.of_int 1 in
  let shares = Array.init 128 (fun _ -> F.random g) in
  let r = F.random g in
  let mults f =
    let _, snap = Metrics.with_counting (fun () -> ignore (f ~r shares)) in
    snap.Metrics.field_mults
  in
  Alcotest.(check int) "Horner: exactly M mults" 128 (mults V.combine);
  Alcotest.(check bool) "naive costs more" true
    (mults V.combine_naive > 128)

let test_per_dealer_coin_still_correct () =
  (* The ablation variant must still produce valid, unanimous coins. *)
  let n = 13 and t = 2 and m = 4 in
  match
    CG.run ~share_check_coin:false ~prng:(Prng.of_int 2)
      ~oracle:(ideal_oracle 22) ~n ~t ~m ()
  with
  | None -> Alcotest.fail "run failed"
  | Some batch ->
      Alcotest.(check int) "n+1 seed coins" (n + 1) batch.CG.seed_coins_consumed;
      for h = 0 to m - 1 do
        let values = CE.run (CG.coin batch h) in
        let first = values.(0) in
        Alcotest.(check bool) "decoded" true (first <> None);
        Array.iter
          (fun v ->
            Alcotest.(check bool) "unanimous" true
              (match (v, first) with
              | Some a, Some b -> F.equal a b
              | _ -> false))
          values
      done

let test_per_dealer_coin_under_attack () =
  (* Lemma 7 must hold for the ablation too: per-dealer coins change the
     cost, not the guarantees. *)
  let n = 13 and t = 2 and m = 2 in
  let g = Prng.of_int 3 in
  for seed = 1 to 10 do
    let faults = Net.Faults.random g ~n ~t in
    let adversary =
      CG.faulty_with ~as_dealer:(CG.BG.Bad_degree [ 0 ])
        ~as_ba:(Phase_king.Fixed false) faults
    in
    match
      CG.run ~share_check_coin:false ~adversary ~prng:(Prng.of_int (seed * 7))
        ~oracle:(ideal_oracle (seed + 333)) ~n ~t ~m ()
    with
    | None -> ()
    | Some batch ->
        Alcotest.(check bool) "clique big enough" true
          (List.length batch.CG.dealers >= n - (2 * t))
  done

let test_lagrange_expose_correct_without_faults () =
  let g = Prng.of_int 4 in
  for _ = 1 to 20 do
    let coin = C.dealer_coin g ~n:13 ~t:2 in
    let truth = Option.get (C.ground_truth coin) in
    Array.iter
      (fun v ->
        Alcotest.(check bool) "correct" true
          (match v with Some x -> F.equal x truth | None -> false))
      (CE.run_lagrange coin)
  done

let test_lagrange_expose_breaks_under_liar () =
  (* Demonstrate the weakness deterministically: a lying sender with a
     low id lands in everyone's first t+1 shares and corrupts all
     decodings, while BW is unaffected. *)
  let g = Prng.of_int 5 in
  let coin = C.dealer_coin g ~n:13 ~t:2 in
  let truth = Option.get (C.ground_truth coin) in
  let behavior i = if i = 0 then CE.Send (F.add truth F.one) else CE.Honest in
  let lagr = CE.run_lagrange ~sender_behavior:behavior coin in
  Alcotest.(check bool) "lagrange corrupted somewhere" true
    (Array.exists
       (fun v -> match v with Some x -> not (F.equal x truth) | None -> true)
       lagr);
  let bw = CE.run ~sender_behavior:behavior coin in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "BW unaffected" true
        (match v with Some x -> F.equal x truth | None -> false))
    bw

let test_matrix_dealer_behavior () =
  (* The explicit-matrix dealer used by experiment E14: an honest-shaped
     matrix must behave exactly like an honest dealing. *)
  let module BG = Bit_gen.Make (F) in
  let module S = Shamir.Make (F) in
  let n = 13 and t = 2 and m = 3 in
  let g = Prng.of_int 6 in
  let honest_matrix =
    Array.init n (fun _ -> Array.make m F.zero)
  in
  for h = 0 to m - 1 do
    let shares = S.deal g ~t ~n ~secret:(F.random g) in
    Array.iteri (fun i s -> honest_matrix.(i).(h) <- s) shares
  done;
  let prng = Prng.of_int 7 in
  let r = F.random g in
  let views, matrix =
    BG.run ~dealer_behavior:(BG.Matrix honest_matrix) ~prng ~n ~t ~m ~dealer:0
      ~r ()
  in
  Alcotest.(check bool) "matrix returned" true (matrix = Some honest_matrix);
  Array.iter
    (fun v -> Alcotest.(check bool) "accepted" true (v.BG.check_poly <> None))
    views;
  (* Dimension validation. *)
  Alcotest.check_raises "bad dims"
    (Invalid_argument "Bit_gen: explicit matrix has wrong dimensions")
    (fun () ->
      ignore
        (BG.run
           ~dealer_behavior:(BG.Matrix [| [| F.zero |] |])
           ~prng ~n ~t ~m ~dealer:0 ~r ()))

let suite =
  [
    Alcotest.test_case "naive combine costs more" `Quick
      test_naive_combine_costs_more;
    Alcotest.test_case "per-dealer coin still correct" `Quick
      test_per_dealer_coin_still_correct;
    Alcotest.test_case "per-dealer coin under attack" `Quick
      test_per_dealer_coin_under_attack;
    Alcotest.test_case "lagrange expose correct without faults" `Quick
      test_lagrange_expose_correct_without_faults;
    Alcotest.test_case "lagrange expose breaks under liar" `Quick
      test_lagrange_expose_breaks_under_liar;
    Alcotest.test_case "matrix dealer behavior" `Quick test_matrix_dealer_behavior;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_combines_agree ]
