let gc_run ?dealer_behavior ?follower_behavior ~n ~t ~dealer ~value () =
  Gradecast.run ?dealer_behavior ?follower_behavior ~equal:String.equal
    ~byte_size:String.length ~n ~t ~dealer ~value ()

let honest_outcomes faults outcomes =
  List.map (fun i -> outcomes.(i)) (Net.Faults.honest faults)

let test_gradecast_honest_dealer () =
  let n = 7 and t = 2 in
  let outcomes = gc_run ~n ~t ~dealer:3 ~value:"v" () in
  Array.iter
    (fun o ->
      Alcotest.(check (option string)) "value" (Some "v") o.Gradecast.value;
      Alcotest.(check int) "confidence" 2 o.Gradecast.confidence)
    outcomes

let test_gradecast_silent_dealer () =
  let n = 7 and t = 2 in
  let outcomes = gc_run ~dealer_behavior:Gradecast.Dealer_silent ~n ~t ~dealer:0
      ~value:"v" ()
  in
  Array.iter
    (fun o -> Alcotest.(check int) "confidence 0" 0 o.Gradecast.confidence)
    outcomes

(* The core gradecast soundness property under arbitrary strategies:
   if one honest player has confidence 2 on w, every honest player has
   confidence >= 1 on w; and honest confidences >= 1 agree. *)
let prop_gradecast_soundness =
  QCheck.Test.make ~count:300 ~name:"gradecast graded agreement"
    QCheck.(pair int (int_range 1 3))
    (fun (seed, t) ->
      let g = Prng.of_int seed in
      let n = (3 * t) + 1 + Prng.int g 3 in
      let faults = Net.Faults.random g ~n ~t in
      let dealer = Prng.int g n in
      let lies = [| "a"; "b"; "c"; "v" |] in
      let dealer_behavior =
        if Net.Faults.is_honest faults dealer then Gradecast.Dealer_honest
        else
          Gradecast.Dealer_equivocate
            (fun dst ->
              if Prng.bool g then Some lies.(dst mod 4) else None)
      in
      let strategies =
        Array.init n (fun i ->
            if Net.Faults.is_honest faults i then Gradecast.Follower_honest
            else
              match Prng.int g 3 with
              | 0 -> Gradecast.Follower_silent
              | 1 -> Gradecast.Follower_fixed lies.(Prng.int g 4)
              | _ ->
                  (* Pre-draw the equivocation table so the behaviour is
                     a function, not fresh randomness per call. *)
                  let table =
                    Array.init 2 (fun _ ->
                        Array.init n (fun _ ->
                            if Prng.bool g then Some lies.(Prng.int g 4) else None))
                  in
                  Gradecast.Follower_arbitrary
                    (fun ~round ~dst -> table.(round - 2).(dst)))
      in
      let outcomes =
        gc_run ~dealer_behavior
          ~follower_behavior:(fun i -> strategies.(i))
          ~n ~t ~dealer ~value:"v" ()
      in
      let honest = honest_outcomes faults outcomes in
      let conf2 =
        List.filter_map
          (fun o -> if o.Gradecast.confidence = 2 then o.Gradecast.value else None)
          honest
      in
      let conf1_values =
        List.filter_map
          (fun o -> if o.Gradecast.confidence >= 1 then o.Gradecast.value else None)
          honest
      in
      let all_equal = function
        | [] -> true
        | v :: rest -> List.for_all (String.equal v) rest
      in
      (* Honest dealer: everyone at confidence 2 with the right value. *)
      (if Net.Faults.is_honest faults dealer then
         List.for_all
           (fun o ->
             o.Gradecast.confidence = 2 && o.Gradecast.value = Some "v")
           honest
       else true)
      && all_equal conf1_values
      && (conf2 = [] || List.length conf1_values = List.length honest))

let test_phase_king_all_agree_no_faults () =
  let n = 9 and t = 2 in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let decisions = Phase_king.run ~n ~t ~inputs () in
  let first = decisions.(0) in
  Array.iter (fun d -> Alcotest.(check bool) "agree" first d) decisions

let test_phase_king_validity () =
  let n = 9 and t = 2 in
  List.iter
    (fun b ->
      let inputs = Array.make n b in
      let decisions = Phase_king.run ~n ~t ~inputs () in
      Array.iter (fun d -> Alcotest.(check bool) "validity" b d) decisions)
    [ true; false ]

let prop_phase_king_agreement_and_validity =
  QCheck.Test.make ~count:300 ~name:"phase king agreement+validity"
    QCheck.(pair int (int_range 1 3))
    (fun (seed, t) ->
      let g = Prng.of_int seed in
      let n = (4 * t) + 1 + Prng.int g 4 in
      let faults = Net.Faults.random g ~n ~t in
      let inputs = Array.init n (fun _ -> Prng.bool g) in
      let strategies =
        Array.init n (fun i ->
            if Net.Faults.is_honest faults i then Phase_king.Honest
            else
              match Prng.int g 3 with
              | 0 -> Phase_king.Silent
              | 1 -> Phase_king.Fixed (Prng.bool g)
              | _ ->
                  let noise =
                    Array.init ((t + 1) * 2 * n) (fun _ ->
                        if Prng.bool g then Some (Prng.bool g) else None)
                  in
                  Phase_king.Arbitrary
                    (fun ~phase ~round ~dst ->
                      noise.((((phase * 2) + (round - 1)) * n) + dst)))
      in
      let decisions =
        Phase_king.run ~behavior:(fun i -> strategies.(i)) ~n ~t ~inputs ()
      in
      let honest = Net.Faults.honest faults in
      let honest_decisions = List.map (fun i -> decisions.(i)) honest in
      let agreement =
        match honest_decisions with
        | [] -> true
        | d :: rest -> List.for_all (Bool.equal d) rest
      in
      let honest_inputs = List.map (fun i -> inputs.(i)) honest in
      let validity =
        match honest_inputs with
        | [] -> true
        | b :: rest ->
            (not (List.for_all (Bool.equal b) rest))
            || List.for_all (Bool.equal b) honest_decisions
      in
      agreement && validity)

let test_phase_king_requires_quorum () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Phase_king.run: requires n >= 4t+1") (fun () ->
      ignore (Phase_king.run ~n:8 ~t:2 ~inputs:(Array.make 8 true) ()))

let test_gradecast_requires_quorum () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Gradecast.run: requires n >= 3t+1") (fun () ->
      ignore (gc_run ~n:6 ~t:2 ~dealer:0 ~value:"v" ()))

let test_metrics_ticks () =
  let (), snap =
    Metrics.with_counting (fun () ->
        ignore (gc_run ~n:7 ~t:2 ~dealer:0 ~value:"v" ());
        ignore (Phase_king.run ~n:9 ~t:2 ~inputs:(Array.make 9 true) ()))
  in
  Alcotest.(check int) "one gradecast" 1 snap.Metrics.gradecasts;
  Alcotest.(check int) "one ba" 1 snap.Metrics.ba_runs;
  (* Gradecast: 3 rounds; phase king: 2(t+1) = 6 rounds. *)
  Alcotest.(check int) "rounds" 9 snap.Metrics.rounds

let test_broadcast_consistency () =
  let seen =
    Broadcast.round ~byte_size:String.length ~n:4 (fun i ->
        if i = 2 then None else Some (string_of_int i))
  in
  Alcotest.(check (array (option string)))
    "vector"
    [| Some "0"; Some "1"; None; Some "3" |]
    seen

let test_broadcast_cost_model () =
  let (), snap =
    Metrics.with_counting (fun () ->
        ignore
          (Broadcast.round ~byte_size:String.length ~n:5 (fun i ->
               if i = 0 then None else Some "xy")))
  in
  Alcotest.(check int) "one message per announcer" 4 snap.Metrics.messages;
  Alcotest.(check int) "bytes" 8 snap.Metrics.bytes;
  Alcotest.(check int) "one round" 1 snap.Metrics.rounds

let suite =
  [
    Alcotest.test_case "gradecast honest dealer" `Quick
      test_gradecast_honest_dealer;
    Alcotest.test_case "gradecast silent dealer" `Quick
      test_gradecast_silent_dealer;
    Alcotest.test_case "phase king no faults" `Quick
      test_phase_king_all_agree_no_faults;
    Alcotest.test_case "phase king validity" `Quick test_phase_king_validity;
    Alcotest.test_case "phase king quorum check" `Quick
      test_phase_king_requires_quorum;
    Alcotest.test_case "gradecast quorum check" `Quick
      test_gradecast_requires_quorum;
    Alcotest.test_case "metrics ticks" `Quick test_metrics_ticks;
    Alcotest.test_case "broadcast consistency" `Quick test_broadcast_consistency;
    Alcotest.test_case "broadcast cost model" `Quick test_broadcast_cost_model;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ prop_gradecast_soundness; prop_phase_king_agreement_and_validity ]
