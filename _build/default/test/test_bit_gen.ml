module F = Gf2k.GF16
module BG = Bit_gen.Make (F)

let n = 13 (* 6t+1 with t = 2 *)
let t = 2
let m = 5

let run ?dealer_behavior ?gamma_behavior seed =
  let prng = Prng.of_int seed in
  let r = F.random (Prng.split prng) in
  BG.run ?dealer_behavior ?gamma_behavior ~prng ~n ~t ~m ~dealer:0 ~r ()

let test_honest_run_accepts_everywhere () =
  let views, matrix = run 1 in
  Alcotest.(check bool) "matrix present" true (matrix <> None);
  Array.iter
    (fun v ->
      Alcotest.(check bool) "check poly found" true (v.BG.check_poly <> None);
      let support =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 v.BG.support
      in
      Alcotest.(check int) "full support" n support)
    views

let test_outputs_consistent_across_players () =
  let views, _ = run 2 in
  let polys =
    Array.map
      (fun v -> Option.map BG.P.coeffs v.BG.check_poly)
      views
  in
  Array.iter
    (fun p -> Alcotest.(check bool) "same F" true (p = polys.(0)))
    polys

let test_silent_dealer () =
  let views, matrix = run ~dealer_behavior:BG.Silent_dealer 3 in
  Alcotest.(check bool) "no matrix" true (matrix = None);
  Array.iter
    (fun v ->
      Alcotest.(check bool) "no check poly" true (v.BG.check_poly = None);
      Alcotest.(check bool) "no shares" true (v.BG.received = None))
    views

(* Lemma 5: a dealer who deals a too-high-degree polynomial is caught
   (w.p. >= 1 - M/p over the check coin). *)
let test_bad_degree_caught () =
  let caught = ref 0 in
  let trials = 200 in
  for seed = 1 to trials do
    let views, _ = run ~dealer_behavior:(BG.Bad_degree [ 2 ]) seed in
    if Array.for_all (fun v -> v.BG.check_poly = None) views then incr caught
  done;
  (* M/p = 5/65536 per trial; essentially all caught. *)
  Alcotest.(check int) "all caught" trials !caught

(* A dealer who lies to a few players is accepted — with the victims
   outside the support set. *)
let test_inconsistent_dealer_support () =
  let victims = [ 3; 7 ] in
  let views, _ = run ~dealer_behavior:(BG.Inconsistent_to victims) 5 in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "player %d accepts" i)
        true
        (v.BG.check_poly <> None);
      List.iter
        (fun victim ->
          Alcotest.(check bool)
            (Printf.sprintf "victim %d outside support" victim)
            false v.BG.support.(victim))
        victims;
      Alcotest.(check bool) "non-victim in support" true v.BG.support.(0))
    views

(* Byzantine gamma senders cannot break honest players' agreement on F
   when the dealer is honest. *)
let test_gamma_liars_tolerated () =
  let g = Prng.of_int 77 in
  for seed = 1 to 50 do
    let liars = Prng.sample_distinct g t n in
    let gamma_behavior i =
      if List.mem i liars then
        match Prng.int g 3 with
        | 0 -> BG.Silent_gamma
        | 1 -> BG.Fixed_gamma (F.random g)
        | _ ->
            let noise =
              Array.init n (fun _ ->
                  if Prng.bool g then Some (F.random g) else None)
            in
            BG.Gamma_per_dst (fun dst -> noise.(dst))
      else BG.Honest_gamma
    in
    let views, _ = run ~gamma_behavior seed in
    let reference =
      Option.map BG.P.coeffs views.(List.find (fun i -> not (List.mem i liars))
        (List.init n Fun.id)).BG.check_poly
    in
    Alcotest.(check bool) "reference exists" true (reference <> None);
    List.iter
      (fun i ->
        if not (List.mem i liars) then
          Alcotest.(check bool) "honest agree on F" true
            (Option.map BG.P.coeffs views.(i).BG.check_poly = reference))
      (List.init n Fun.id)
  done

let test_check_poly_matches_dealt_combination () =
  (* The decoded F must equal sum_h r^h f_h where f_h are the dealer's
     true polynomials: verify via the returned share matrix. *)
  let prng = Prng.of_int 9 in
  let r = F.random (Prng.split prng) in
  let views, matrix = BG.run ~prng ~n ~t ~m ~dealer:4 ~r () in
  let matrix = Option.get matrix in
  let module V = Vss.Make (F) in
  Array.iteri
    (fun i view ->
      let f = Option.get view.BG.check_poly in
      let expected = V.combine ~r matrix.(i) in
      Alcotest.(check bool) "F(i) = combined share" true
        (F.equal (BG.P.eval f (F.of_int (i + 1))) expected))
    views

let test_cost_scales_with_m () =
  let prng = Prng.of_int 11 in
  let r = F.random (Prng.split prng) in
  let cost m =
    let _, snap =
      Metrics.with_counting (fun () ->
          ignore (BG.run ~prng ~n ~t ~m ~dealer:0 ~r ()))
    in
    snap
  in
  let c1 = cost 1 and c64 = cost 64 in
  (* Interpolations do not grow with M (that is the whole point)... *)
  Alcotest.(check int) "interpolations equal" c1.Metrics.interpolations
    c64.Metrics.interpolations;
  (* ...while bytes grow with the dealing only: n messages of Mk plus
     n^2 of k. *)
  Alcotest.(check bool) "bytes grow sublinearly in M" true
    (c64.Metrics.bytes < 64 * c1.Metrics.bytes);
  Alcotest.(check int) "rounds" 2 c1.Metrics.rounds

let suite =
  [
    Alcotest.test_case "honest run accepts" `Quick test_honest_run_accepts_everywhere;
    Alcotest.test_case "outputs consistent" `Quick
      test_outputs_consistent_across_players;
    Alcotest.test_case "silent dealer" `Quick test_silent_dealer;
    Alcotest.test_case "bad degree caught (Lemma 5)" `Quick test_bad_degree_caught;
    Alcotest.test_case "inconsistent dealer support" `Quick
      test_inconsistent_dealer_support;
    Alcotest.test_case "gamma liars tolerated" `Quick test_gamma_liars_tolerated;
    Alcotest.test_case "check poly matches dealing" `Quick
      test_check_poly_matches_dealt_combination;
    Alcotest.test_case "cost scales with M" `Quick test_cost_scales_with_m;
  ]
