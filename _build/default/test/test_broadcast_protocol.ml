(* The broadcast-from-BA construction: consistency always, validity for
   honest dealers — including the full-circle variant where the BA's
   coins come from the D-PRBG pool. *)

let phase_king_ba ~n ~t inputs = Phase_king.run ~n ~t ~inputs ()

let run ?dealer_behavior ?follower_behavior ~n ~t ~dealer ~value ?ba () =
  let ba = match ba with Some f -> f | None -> phase_king_ba ~n ~t in
  Broadcast_protocol.run ?dealer_behavior ?follower_behavior ~ba
    ~equal:String.equal ~byte_size:String.length ~n ~t ~dealer ~value ()

let test_honest_dealer_delivers () =
  let n = 9 and t = 2 in
  let delivered = run ~n ~t ~dealer:3 ~value:"payload" () in
  Array.iter
    (fun v -> Alcotest.(check (option string)) "delivered" (Some "payload") v)
    delivered

let test_silent_dealer_aborts () =
  let n = 9 and t = 2 in
  let delivered =
    run ~dealer_behavior:Gradecast.Dealer_silent ~n ~t ~dealer:0 ~value:"x" ()
  in
  Array.iter
    (fun v -> Alcotest.(check (option string)) "no delivery" None v)
    delivered

let prop_consistency_under_attack =
  QCheck.Test.make ~count:200 ~name:"broadcast consistency vs Byzantine"
    QCheck.(pair int (int_range 1 3))
    (fun (seed, t) ->
      let g = Prng.of_int seed in
      let n = (4 * t) + 1 + Prng.int g 3 (* phase-king needs 4t+1 *) in
      let faults = Net.Faults.random g ~n ~t in
      let dealer = Prng.int g n in
      let lies = [| "a"; "b"; "c" |] in
      let dealer_behavior =
        if Net.Faults.is_honest faults dealer then Gradecast.Dealer_honest
        else
          let noise =
            Array.init n (fun _ ->
                if Prng.bool g then Some lies.(Prng.int g 3) else None)
          in
          Gradecast.Dealer_equivocate (fun dst -> noise.(dst))
      in
      let follower_behavior i =
        if Net.Faults.is_honest faults i then Gradecast.Follower_honest
        else if Prng.bool g then Gradecast.Follower_silent
        else Gradecast.Follower_fixed lies.(Prng.int g 3)
      in
      let ba inputs =
        let behavior i =
          if Net.Faults.is_honest faults i then Phase_king.Honest
          else Phase_king.Fixed (Prng.bool g)
        in
        Phase_king.run ~behavior ~n ~t ~inputs ()
      in
      let delivered =
        run ~dealer_behavior ~follower_behavior ~n ~t ~dealer ~value:"v" ~ba ()
      in
      let honest = Net.Faults.honest faults in
      let outputs = List.map (fun i -> delivered.(i)) honest in
      let consistent =
        match outputs with [] -> true | o :: rest -> List.for_all (( = ) o) rest
      in
      let valid =
        (not (Net.Faults.is_honest faults dealer))
        || List.for_all (( = ) (Some "v")) outputs
      in
      consistent && valid)

let test_full_circle_with_pool_coins () =
  (* Coins -> randomized BA -> broadcast: the sentence from Section 4,
     executed end to end. *)
  let module F = Gf2k.GF32 in
  let module Pool = Pool.Make (F) in
  let n = 13 and t = 2 in
  let pool =
    Pool.create ~prng:(Prng.of_int 99) ~n ~t ~batch_size:32 ~refill_threshold:3
      ~initial_seed:6 ()
  in
  let ba inputs =
    match
      Common_coin_ba.run
        ~coin:(fun () -> Pool.draw_bit pool)
        ~n ~t ~max_phases:64 ~inputs ()
    with
    | Some r -> r.Common_coin_ba.decisions
    | None -> Alcotest.fail "BA did not terminate"
  in
  let delivered = run ~n ~t ~dealer:5 ~value:"block#42" ~ba () in
  Array.iter
    (fun v -> Alcotest.(check (option string)) "delivered" (Some "block#42") v)
    delivered;
  Alcotest.(check bool) "coins consumed" true
    ((Pool.stats pool).Pool.coins_exposed >= 1)

let suite =
  [
    Alcotest.test_case "honest dealer delivers" `Quick test_honest_dealer_delivers;
    Alcotest.test_case "silent dealer aborts" `Quick test_silent_dealer_aborts;
    Alcotest.test_case "full circle with pool coins" `Quick
      test_full_circle_with_pool_coins;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ prop_consistency_under_attack ]
