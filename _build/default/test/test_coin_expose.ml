module F = Gf2k.GF32
module C = Sealed_coin.Make (F)
module CE = Coin_expose.Make (F)

let n = 7
let t = 1

let test_dealer_coin_exposes_to_truth () =
  let g = Prng.of_int 1 in
  for _ = 1 to 30 do
    let coin = C.dealer_coin g ~n ~t in
    let truth = Option.get (C.ground_truth coin) in
    let values = CE.run coin in
    Array.iter
      (fun v ->
        match v with
        | Some x -> Alcotest.(check bool) "matches truth" true (F.equal x truth)
        | None -> Alcotest.fail "decode failed")
      values
  done

let test_unanimity_under_lying_senders () =
  let g = Prng.of_int 2 in
  for _ = 1 to 50 do
    let coin = C.dealer_coin g ~n ~t in
    let truth = Option.get (C.ground_truth coin) in
    let liars = Prng.sample_distinct g t n in
    let behavior i =
      if List.mem i liars then
        match Prng.int g 3 with
        | 0 -> CE.Silent
        | 1 -> CE.Send (F.random g)
        | _ ->
            let noise = Array.init n (fun _ -> if Prng.bool g then Some (F.random g) else None) in
            CE.Equivocate (fun dst -> noise.(dst))
      else CE.Honest
    in
    let values = CE.run ~sender_behavior:behavior coin in
    (* Honest players (everyone outside liars) must all decode truth. *)
    List.iter
      (fun i ->
        if not (List.mem i liars) then
          match values.(i) with
          | Some x ->
              Alcotest.(check bool) "honest decode = truth" true (F.equal x truth)
          | None -> Alcotest.fail "honest decode failed")
      (List.init n Fun.id)
  done

let test_expose_bit_is_lsb () =
  let g = Prng.of_int 3 in
  let coin = C.dealer_coin g ~n ~t in
  let truth = Option.get (C.ground_truth coin) in
  let bits = CE.expose_bit coin in
  Array.iter
    (fun b ->
      Alcotest.(check (option bool)) "lsb" (Some (F.lsb truth = 1)) b)
    bits

let test_trusted_restriction () =
  (* A coin whose trusted matrix excludes two senders still decodes,
     because enough trusted honest senders remain. *)
  let g = Prng.of_int 4 in
  let base = C.dealer_coin g ~n ~t in
  let trusted = Array.init n (fun _ -> Array.init n (fun j -> j > 1)) in
  let coin = { base with C.trusted = Some trusted } in
  let truth = Option.get (C.ground_truth base) in
  let values = CE.run coin in
  Array.iter
    (fun v ->
      match v with
      | Some x -> Alcotest.(check bool) "decodes" true (F.equal x truth)
      | None -> Alcotest.fail "decode failed")
    values

let test_expose_cost_profile () =
  let g = Prng.of_int 5 in
  let coin = C.dealer_coin g ~n ~t in
  let _, snap = Metrics.with_counting (fun () -> ignore (CE.run coin)) in
  Alcotest.(check int) "n(n-1) messages" (n * (n - 1)) snap.Metrics.messages;
  Alcotest.(check int) "one round" 1 snap.Metrics.rounds;
  Alcotest.(check int) "one interpolation per player" n
    snap.Metrics.interpolations

let test_coin_is_uniformish () =
  (* Chi-square over the low nibble of exposures of fresh dealer coins. *)
  let g = Prng.of_int 6 in
  let buckets = Array.make 16 0 in
  let trials = 3200 in
  for _ = 1 to trials do
    let coin = C.dealer_coin g ~n ~t in
    match (CE.run coin).(0) with
    | Some v ->
        let b = F.hash v land 15 in
        buckets.(b) <- buckets.(b) + 1
    | None -> Alcotest.fail "decode failed"
  done;
  let expected = float_of_int trials /. 16.0 in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 buckets
  in
  Alcotest.(check bool) (Printf.sprintf "chi2 %.1f" chi2) true (chi2 < 60.0)

let suite =
  [
    Alcotest.test_case "dealer coin exposes to truth" `Quick
      test_dealer_coin_exposes_to_truth;
    Alcotest.test_case "unanimity under lying senders" `Quick
      test_unanimity_under_lying_senders;
    Alcotest.test_case "expose_bit is lsb" `Quick test_expose_bit_is_lsb;
    Alcotest.test_case "trusted restriction" `Quick test_trusted_restriction;
    Alcotest.test_case "expose cost profile" `Quick test_expose_cost_profile;
    Alcotest.test_case "coin value uniform-ish" `Quick test_coin_is_uniformish;
  ]
