module F = Gf2k.GF16
module CG = Coin_gen.Make (F)
module CE = Coin_expose.Make (F)
module C = Sealed_coin.Make (F)
module AT = Attacks.Make (F)

let n = 13
let t = 2
let m = 4

let ideal_oracle seed =
  let g = Prng.of_int seed in
  fun () -> Metrics.without_counting (fun () -> F.random g)

let run ?adversary seed =
  CG.run ?adversary ~prng:(Prng.of_int seed) ~oracle:(ideal_oracle (seed + 1000))
    ~n ~t ~m ()

let honest_players faults = Net.Faults.honest faults

let test_honest_run_completes () =
  match run 1 with
  | None -> Alcotest.fail "honest run failed"
  | Some batch ->
      Alcotest.(check int) "m coins" m batch.CG.m;
      Alcotest.(check int) "full clique" n (List.length batch.CG.dealers);
      Alcotest.(check int) "one BA iteration" 1 batch.CG.ba_iterations;
      Alcotest.(check int) "two seed coins" 2 batch.CG.seed_coins_consumed;
      (* Everyone trusts everyone in the all-honest run. *)
      Array.iter
        (fun row ->
          Alcotest.(check bool) "all trusted" true (Array.for_all Fun.id row))
        batch.CG.trusted

let test_coins_expose_unanimously () =
  match run 2 with
  | None -> Alcotest.fail "run failed"
  | Some batch ->
      for h = 0 to m - 1 do
        let coin = CG.coin batch h in
        let values = CE.run coin in
        let first = values.(0) in
        Alcotest.(check bool) "decoded" true (first <> None);
        Array.iter
          (fun v ->
            Alcotest.(check bool) "unanimous" true
              (match (v, first) with
              | Some a, Some b -> F.equal a b
              | _ -> false))
          values
      done

let test_coin_exposure_deterministic () =
  (* Exposing the same sealed coin twice yields the same value: the coin
     is a well-defined shared object, not a random draw at expose time. *)
  let batch = Option.get (run 3) in
  let v1 = Option.get (CE.run (CG.coin batch 0)).(0) in
  let v2 = Option.get (CE.run (CG.coin batch 0)).(0) in
  Alcotest.(check bool) "same value" true (F.equal v1 v2);
  (* Distinct coins of one batch are independent values. *)
  let w = Option.get (CE.run (CG.coin batch 1)).(0) in
  ignore w

(* Lemma 7 under adversarial conditions: when Coin-Gen terminates, the
   agreed set is big enough, honest players agree on it, and at least
   2t+1 honest players are universally trusted by honest players. *)
let lemma7_check faults batch =
  let honest = honest_players faults in
  List.length batch.CG.dealers >= n - (2 * t)
  && List.for_all
       (fun i ->
         (* each honest player's trusted row contains >= 2t+1 honest
            players trusted by ALL honest players *)
         let universally_trusted =
           List.filter
             (fun j ->
               List.for_all (fun i' -> batch.CG.trusted.(i').(j)) honest
               && List.mem j honest)
             (List.init n Fun.id)
         in
         ignore i;
         List.length universally_trusted >= (2 * t) + 1)
       honest

let test_lemma7_under_attacks () =
  let g = Prng.of_int 99 in
  let completed = ref 0 in
  for seed = 1 to 60 do
    let faults = Net.Faults.random g ~n ~t in
    let adversary = AT.mixed_adversary g ~n ~m faults in
    match run ~adversary seed with
    | None -> ()
    | Some batch ->
        incr completed;
        Alcotest.(check bool)
          (Printf.sprintf "lemma7 seed=%d" seed)
          true (lemma7_check faults batch)
  done;
  (* Most runs must complete (honest leaders are drawn with prob
     (n-t)/n). *)
  Alcotest.(check bool)
    (Printf.sprintf "%d/60 completed" !completed)
    true
    (!completed > 40)

let test_unanimity_under_attacks () =
  let g = Prng.of_int 123 in
  for seed = 1 to 40 do
    let faults = Net.Faults.random g ~n ~t in
    let adversary = AT.mixed_adversary g ~n ~m faults in
    match run ~adversary seed with
    | None -> ()
    | Some batch ->
        for h = 0 to m - 1 do
          let coin = CG.coin batch h in
          (* Faulty players also lie at exposure time. *)
          let behavior i =
            if Net.Faults.is_faulty faults i then
              match Prng.int g 3 with
              | 0 -> CE.Silent
              | 1 -> CE.Send (F.random g)
              | _ -> CE.Honest
            else CE.Honest
          in
          let values = CE.run ~sender_behavior:behavior coin in
          let honest_values =
            List.map (fun i -> values.(i)) (honest_players faults)
          in
          match honest_values with
          | [] -> ()
          | first :: rest ->
              Alcotest.(check bool)
                (Printf.sprintf "decoded seed=%d h=%d" seed h)
                true (first <> None);
              List.iter
                (fun v ->
                  Alcotest.(check bool) "honest unanimity" true
                    (match (v, first) with
                    | Some a, Some b -> F.equal a b
                    | _ -> false))
                rest
        done
  done

(* Lemma 8: with an honest majority of leader draws, termination is
   fast. Count BA iterations across adversarial runs. *)
let test_lemma8_iterations () =
  let g = Prng.of_int 7 in
  let total_iters = ref 0 and runs = ref 0 in
  for seed = 1 to 40 do
    let faults = Net.Faults.random g ~n ~t in
    let adversary =
      CG.faulty_with ~as_ba:(Phase_king.Fixed false) faults
    in
    match run ~adversary seed with
    | None -> ()
    | Some batch ->
        incr runs;
        total_iters := !total_iters + batch.CG.ba_iterations
  done;
  Alcotest.(check bool) "most runs complete" true (!runs > 30);
  (* Expected iterations <= n/(n-t) ~ 1.18; allow generous slack. *)
  let mean = float_of_int !total_iters /. float_of_int !runs in
  Alcotest.(check bool) (Printf.sprintf "mean iters %.2f" mean) true (mean < 2.0)

let test_model_validation () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Coin_gen.run: requires n >= 6t+1") (fun () ->
      ignore
        (CG.run ~prng:(Prng.of_int 1) ~oracle:(ideal_oracle 1) ~n:12 ~t:2 ~m:1 ()))

let test_leader_index_range () =
  let g = Prng.of_int 5 in
  for _ = 1 to 200 do
    let l = CG.leader_index (F.random g) ~n in
    Alcotest.(check bool) "in range" true (l >= 0 && l < n)
  done

let test_bad_dealers_excluded_or_pinned () =
  (* A dealer whose sharings have too-high degree must not end up in the
     agreed clique (its check polynomial cannot gather n-t support,
     except with probability M/p). *)
  let faults = Net.Faults.make ~n ~faulty:[ 0; 5 ] in
  let adversary =
    CG.faulty_with ~as_dealer:(CG.BG.Bad_degree [ 0; 1; 2; 3 ]) faults
  in
  for seed = 1 to 20 do
    match run ~adversary seed with
    | None -> ()
    | Some batch ->
        Alcotest.(check bool) "bad dealer 0 out" false
          (List.mem 0 batch.CG.dealers);
        Alcotest.(check bool) "bad dealer 5 out" false
          (List.mem 5 batch.CG.dealers)
  done

let test_other_fault_bounds () =
  (* The protocol is generic in t; exercise the smallest and a larger
     quorum, with attacks, end to end. *)
  List.iter
    (fun (t', seeds) ->
      let n' = (6 * t') + 1 in
      let g = Prng.of_int (400 + t') in
      List.iter
        (fun seed ->
          let faults = Net.Faults.random g ~n:n' ~t:t' in
          let adversary =
            CG.faulty_with ~as_dealer:(CG.BG.Bad_degree [ 0 ])
              ~as_ba:(Phase_king.Fixed false) faults
          in
          match
            CG.run ~adversary ~prng:(Prng.of_int (seed * 3))
              ~oracle:(ideal_oracle (seed + 600))
              ~n:n' ~t:t' ~m:2 ()
          with
          | None -> ()
          | Some batch ->
              Alcotest.(check bool) "clique size" true
                (List.length batch.CG.dealers >= n' - (2 * t'));
              let coin = CG.coin batch 0 in
              let values = CE.run coin in
              List.iter
                (fun i ->
                  Alcotest.(check bool) "honest decode" true
                    (values.(i) <> None))
                (Net.Faults.honest faults))
        seeds)
    [ (1, [ 1; 2; 3; 4 ]); (3, [ 1; 2 ]) ]

let suite =
  [
    Alcotest.test_case "other fault bounds" `Quick test_other_fault_bounds;
    Alcotest.test_case "honest run completes" `Quick test_honest_run_completes;
    Alcotest.test_case "coins expose unanimously" `Quick
      test_coins_expose_unanimously;
    Alcotest.test_case "coin exposure deterministic" `Quick
      test_coin_exposure_deterministic;
    Alcotest.test_case "Lemma 7 under attacks" `Quick test_lemma7_under_attacks;
    Alcotest.test_case "unanimity under attacks" `Quick
      test_unanimity_under_attacks;
    Alcotest.test_case "Lemma 8 iterations" `Quick test_lemma8_iterations;
    Alcotest.test_case "model validation" `Quick test_model_validation;
    Alcotest.test_case "leader index range" `Quick test_leader_index_range;
    Alcotest.test_case "bad dealers excluded" `Quick
      test_bad_dealers_excluded_or_pinned;
  ]
