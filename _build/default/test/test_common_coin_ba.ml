let n = 10
let t = 3

let stub_coin seed =
  let g = Prng.of_int seed in
  fun () -> Prng.bool g

let test_unanimous_inputs_one_phase () =
  List.iter
    (fun b ->
      let inputs = Array.make n b in
      match
        Common_coin_ba.run ~coin:(stub_coin 1) ~n ~t ~max_phases:50 ~inputs ()
      with
      | None -> Alcotest.fail "did not terminate"
      | Some r ->
          Alcotest.(check int) "one phase" 1 r.Common_coin_ba.phases;
          Array.iter
            (fun d -> Alcotest.(check bool) "validity" b d)
            r.Common_coin_ba.decisions)
    [ true; false ]

let test_split_inputs_agree () =
  let g = Prng.of_int 2 in
  for seed = 1 to 50 do
    let inputs = Array.init n (fun _ -> Prng.bool g) in
    match
      Common_coin_ba.run ~coin:(stub_coin seed) ~n ~t ~max_phases:60 ~inputs ()
    with
    | None -> Alcotest.fail "did not terminate"
    | Some r ->
        let d0 = r.Common_coin_ba.decisions.(0) in
        Array.iter
          (fun d -> Alcotest.(check bool) "agreement" d0 d)
          r.Common_coin_ba.decisions
  done

let test_byzantine_agreement_and_validity () =
  let g = Prng.of_int 3 in
  for seed = 1 to 60 do
    let faults = Net.Faults.random g ~n ~t in
    let behavior i =
      if Net.Faults.is_honest faults i then Common_coin_ba.Honest
      else
        match Prng.int g 3 with
        | 0 -> Common_coin_ba.Silent
        | 1 -> Common_coin_ba.Fixed (Prng.bool g)
        | _ ->
            let noise =
              Array.init (60 * 2 * n) (fun _ ->
                  if Prng.bool g then Some (if Prng.bool g then Some (Prng.bool g) else None)
                  else None)
            in
            Common_coin_ba.Arbitrary
              (fun ~phase ~round ~dst ->
                noise.((((phase mod 60 * 2) + (round - 1)) * n) + dst))
    in
    let inputs = Array.init n (fun _ -> Prng.bool g) in
    match
      Common_coin_ba.run ~behavior ~coin:(stub_coin seed) ~n ~t ~max_phases:80
        ~inputs ()
    with
    | None -> Alcotest.fail "did not terminate"
    | Some r ->
        let honest = Net.Faults.honest faults in
        let decisions = List.map (fun i -> r.Common_coin_ba.decisions.(i)) honest in
        (match decisions with
        | [] -> ()
        | d :: rest ->
            List.iter (fun d' -> Alcotest.(check bool) "agreement" d d') rest);
        let hon_inputs = List.map (fun i -> inputs.(i)) honest in
        (match hon_inputs with
        | [] -> ()
        | b :: rest when List.for_all (Bool.equal b) rest ->
            List.iter (fun d -> Alcotest.(check bool) "validity" b d) decisions
        | _ -> ())
  done

let test_expected_phases_small () =
  let total = ref 0 in
  let runs = 50 in
  let g = Prng.of_int 4 in
  for seed = 1 to runs do
    let inputs = Array.init n (fun _ -> Prng.bool g) in
    match
      Common_coin_ba.run ~coin:(stub_coin (seed * 7)) ~n ~t ~max_phases:100
        ~inputs ()
    with
    | None -> Alcotest.fail "did not terminate"
    | Some r -> total := !total + r.Common_coin_ba.phases
  done;
  let mean = float_of_int !total /. float_of_int runs in
  Alcotest.(check bool) (Printf.sprintf "mean phases %.2f" mean) true (mean < 5.0)

let test_coin_consumption () =
  let inputs = Array.make n true in
  match Common_coin_ba.run ~coin:(stub_coin 5) ~n ~t ~max_phases:10 ~inputs () with
  | None -> Alcotest.fail "did not terminate"
  | Some r ->
      Alcotest.(check int) "one coin per phase" r.Common_coin_ba.phases
        r.Common_coin_ba.coins_used

let suite =
  [
    Alcotest.test_case "unanimous inputs: one phase" `Quick
      test_unanimous_inputs_one_phase;
    Alcotest.test_case "split inputs agree" `Quick test_split_inputs_agree;
    Alcotest.test_case "byzantine agreement+validity" `Quick
      test_byzantine_agreement_and_validity;
    Alcotest.test_case "expected phases small" `Quick test_expected_phases_small;
    Alcotest.test_case "coin consumption" `Quick test_coin_consumption;
  ]
