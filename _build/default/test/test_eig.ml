let test_validity_no_faults () =
  let n = 7 and t = 2 in
  List.iter
    (fun b ->
      let inputs = Array.make n b in
      let decisions = Eig_ba.run ~n ~t ~inputs () in
      Array.iter (fun d -> Alcotest.(check bool) "validity" b d) decisions)
    [ true; false ]

let test_agreement_split_inputs () =
  let g = Prng.of_int 1 in
  let n = 7 and t = 2 in
  for _ = 1 to 30 do
    let inputs = Array.init n (fun _ -> Prng.bool g) in
    let decisions = Eig_ba.run ~n ~t ~inputs () in
    Array.iter
      (fun d -> Alcotest.(check bool) "agreement" decisions.(0) d)
      decisions
  done

let prop_agreement_and_validity_under_attack =
  QCheck.Test.make ~count:120 ~name:"EIG agreement+validity vs Byzantine"
    QCheck.(pair int (int_range 1 2))
    (fun (seed, t) ->
      let g = Prng.of_int seed in
      let n = (3 * t) + 1 + Prng.int g 3 in
      let faults = Net.Faults.random g ~n ~t in
      let inputs = Array.init n (fun _ -> Prng.bool g) in
      let behavior i =
        if Net.Faults.is_honest faults i then Eig_ba.Honest
        else
          match Prng.int g 3 with
          | 0 -> Eig_ba.Silent
          | 1 -> Eig_ba.Fixed (Prng.bool g)
          | _ ->
              (* Deterministic per-(round, dst, path) lies. *)
              let salt = Prng.int g 1000 in
              Eig_ba.Arbitrary
                (fun ~round ~dst ~path ->
                  let h = Hashtbl.hash (salt, round, dst, path) in
                  if h land 3 = 0 then None else Some (h land 4 = 0))
      in
      let decisions = Eig_ba.run ~behavior ~n ~t ~inputs () in
      let honest = Net.Faults.honest faults in
      let hd = List.map (fun i -> decisions.(i)) honest in
      let agreement =
        match hd with [] -> true | d :: rest -> List.for_all (Bool.equal d) rest
      in
      let hi = List.map (fun i -> inputs.(i)) honest in
      let validity =
        match hi with
        | [] -> true
        | b :: rest ->
            (not (List.for_all (Bool.equal b) rest))
            || List.for_all (Bool.equal b) hd
      in
      agreement && validity)

let test_matches_phase_king () =
  (* Both BAs must agree with each other on honest runs (both decide the
     honest input when unanimous). *)
  let n = 9 and t = 2 in
  List.iter
    (fun b ->
      let inputs = Array.make n b in
      let e = Eig_ba.run ~n ~t ~inputs () in
      let p = Phase_king.run ~n ~t ~inputs () in
      Alcotest.(check bool) "same decision" e.(0) p.(0))
    [ true; false ]

let test_cost_explodes_vs_phase_king () =
  let n = 10 and t = 2 in
  let inputs = Array.init n (fun i -> i mod 2 = 0) in
  let cost f =
    let _, snap = Metrics.with_counting (fun () -> ignore (f ())) in
    snap
  in
  let eig = cost (fun () -> Eig_ba.run ~n ~t ~inputs ()) in
  let pk = cost (fun () -> Phase_king.run ~n ~t ~inputs ()) in
  Alcotest.(check bool)
    (Printf.sprintf "EIG bytes %d >> phase-king bytes %d" eig.Metrics.bytes
       pk.Metrics.bytes)
    true
    (eig.Metrics.bytes > 10 * pk.Metrics.bytes);
  Alcotest.(check int) "EIG rounds t+1" (t + 1) eig.Metrics.rounds

let test_validation () =
  Alcotest.check_raises "quorum" (Invalid_argument "Eig_ba.run: requires n >= 3t+1")
    (fun () -> ignore (Eig_ba.run ~n:6 ~t:2 ~inputs:(Array.make 6 true) ()));
  Alcotest.check_raises "t cap"
    (Invalid_argument "Eig_ba.run: t too large for the EIG tree") (fun () ->
      ignore (Eig_ba.run ~n:16 ~t:5 ~inputs:(Array.make 16 true) ()))

let test_coin_gen_with_eig () =
  (* "Run any BA protocol": Coin-Gen must work identically with EIG. *)
  let module F = Gf2k.GF16 in
  let module CG = Coin_gen.Make (F) in
  let module CE = Coin_expose.Make (F) in
  let n = 13 and t = 2 and m = 3 in
  let og = Prng.of_int 42 in
  let oracle () = Metrics.without_counting (fun () -> F.random og) in
  let ba inputs = Eig_ba.run ~n ~t ~inputs () in
  match CG.run ~ba ~prng:(Prng.of_int 7) ~oracle ~n ~t ~m () with
  | None -> Alcotest.fail "run failed"
  | Some batch ->
      Alcotest.(check int) "full clique" n (List.length batch.CG.dealers);
      let values = CE.run (CG.coin batch 0) in
      Array.iter
        (fun v ->
          Alcotest.(check bool) "unanimous" true
            (match (v, values.(0)) with
            | Some a, Some b -> F.equal a b
            | _ -> false))
        values

let suite =
  [
    Alcotest.test_case "validity no faults" `Quick test_validity_no_faults;
    Alcotest.test_case "agreement split inputs" `Quick test_agreement_split_inputs;
    Alcotest.test_case "matches phase king" `Quick test_matches_phase_king;
    Alcotest.test_case "cost explodes vs phase king" `Quick
      test_cost_explodes_vs_phase_king;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "coin-gen with EIG" `Quick test_coin_gen_with_eig;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ prop_agreement_and_validity_under_attack ]
