(* Implementation-specific field tests; the generic algebraic laws are in
   Field_laws and instantiated at the bottom. *)

module GF3 = Gf2k.Make (struct let k = 3 end)
module GF8k = Gf2k.Make (struct let k = 8 end)
module GF20 = Gf2k.Make (struct let k = 20 end)
module Wide20 = Gf2_wide.Make (struct let k = 20 end)
module P97 = Zp.Make (struct let p = 97 end)
module Q97 = Zq_table.Make (struct let q = 97 end)
module Mersenne31 = Zp.Make (struct let p = 2147483647 end)
module F64 = Fft_field.Make (struct let k = 64 end)

let test_smallest_irreducibles () =
  (* Cross-checked against the standard tables (HAC Table 4.8 and the
     AES polynomial). *)
  List.iter
    (fun (k, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "degree %d" k)
        expected
        (Gf2k.smallest_irreducible k))
    [
      (1, 0b10);
      (2, 0b111);
      (3, 0b1011);
      (4, 0b10011);
      (8, 0b100011011) (* x^8+x^4+x^3+x+1: the AES modulus is the smallest *);
    ]

let test_irreducibility_judgements () =
  (* x^2 (reducible), x^2+1 = (x+1)^2 (reducible), x^2+x+1 (irreducible),
     x^4+x^2+1 = (x^2+x+1)^2 (reducible). *)
  List.iter
    (fun (f, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "poly %#x" f)
        expected (Gf2k.is_irreducible f))
    [ (0b100, false); (0b101, false); (0b111, true); (0b10101, false) ]

let test_gf8_multiplication_table () =
  (* GF(2^3) mod x^3+x+1: x * x^2 = x^3 = x + 1. *)
  Alcotest.(check bool) "x*x^2 = x+1" true
    (GF3.equal (GF3.mul (GF3.of_int 2) (GF3.of_int 4)) (GF3.of_int 3));
  (* (x+1)(x^2+1) = x^3+x^2+x+1 = (x+1) + x^2 + x + 1 = x^2. *)
  Alcotest.(check bool) "(x+1)(x^2+1) = x^2" true
    (GF3.equal (GF3.mul (GF3.of_int 3) (GF3.of_int 5)) (GF3.of_int 4))

let test_aes_field_example () =
  (* FIPS-197 worked example: {57} * {83} = {c1} in GF(2^8). *)
  Alcotest.(check bool) "0x57*0x83 = 0xc1" true
    (GF8k.equal (GF8k.mul (GF8k.of_int 0x57) (GF8k.of_int 0x83))
       (GF8k.of_int 0xc1))

let test_frobenius_fixes_field () =
  let g = Prng.of_int 5 in
  for _ = 1 to 50 do
    let a = GF20.random g in
    (* a^(2^20) = a in GF(2^20). *)
    Alcotest.(check bool) "a^(2^k) = a" true
      (GF20.equal (GF20.pow a (1 lsl 20)) a)
  done

let test_wide_matches_word_sized () =
  (* Same degree means the same smallest irreducible modulus, so the two
     representations must implement the identical field. *)
  let g = Prng.of_int 9 in
  let to_wide x = Wide20.of_repr [| x land 0xFFFFFFFF |] in
  for _ = 1 to 200 do
    let a = Prng.bits g 20 and b = Prng.bits g 20 in
    let small = GF20.mul (GF20.of_int a) (GF20.of_int b) in
    let wide = Wide20.mul (to_wide a) (to_wide b) in
    Alcotest.(check string) "products agree"
      (GF20.to_string small)
      (* Wide prints limbs in fixed-width hex; normalize through int. *)
      (Printf.sprintf "0x%x" (Wide20.repr wide).(0));
    let sinv = GF20.inv (GF20.of_int (max a 1)) in
    let winv = Wide20.inv (to_wide (max a 1)) in
    Alcotest.(check string) "inverses agree" (GF20.to_string sinv)
      (Printf.sprintf "0x%x" (Wide20.repr winv).(0))
  done

let prop_karatsuba_matches_schoolbook =
  QCheck.Test.make ~count:300 ~name:"karatsuba = schoolbook (GF(2^256))"
    QCheck.int
    (fun seed ->
      let module W = Gf2_wide.GF256 in
      let g = Prng.of_int seed in
      let a = W.random g and b = W.random g in
      W.equal (W.mul a b) (W.mul_karatsuba a b))

let prop_karatsuba_matches_schoolbook_64 =
  QCheck.Test.make ~count:300 ~name:"karatsuba = schoolbook (GF(2^64))"
    QCheck.int
    (fun seed ->
      let module W = Gf2_wide.GF64 in
      let g = Prng.of_int seed in
      let a = W.random g and b = W.random g in
      W.equal (W.mul a b) (W.mul_karatsuba a b))

let test_wide_modulus_reported () =
  match Wide20.modulus_bits with
  | top :: _ -> Alcotest.(check int) "top exponent" 20 top
  | [] -> Alcotest.fail "empty modulus"

let test_fermat () =
  let g = Prng.of_int 21 in
  for _ = 1 to 50 do
    let a = P97.random_nonzero g in
    Alcotest.(check bool) "a^(p-1) = 1" true (P97.equal (P97.pow a 96) P97.one)
  done

let test_primitive_root_order () =
  let r = P97.primitive_root in
  (* Order must be exactly 96: r^96 = 1 and r^(96/p) <> 1 for p in {2,3}. *)
  Alcotest.(check bool) "r^96 = 1" true (P97.equal (P97.pow r 96) P97.one);
  Alcotest.(check bool) "r^48 <> 1" false (P97.equal (P97.pow r 48) P97.one);
  Alcotest.(check bool) "r^32 <> 1" false (P97.equal (P97.pow r 32) P97.one)

let test_is_prime () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check bool) (string_of_int n) expected (Zp.is_prime n))
    [
      (0, false); (1, false); (2, true); (3, true); (4, false); (97, true);
      (91, false) (* 7*13 *); (561, false) (* Carmichael *);
      (2147483647, true) (* Mersenne prime 2^31-1 *);
      (2147483645, false);
    ]

let test_factorize () =
  Alcotest.(check (list (pair int int))) "360" [ (2, 3); (3, 2); (5, 1) ]
    (Zp.factorize 360);
  Alcotest.(check (list (pair int int))) "97" [ (97, 1) ] (Zp.factorize 97)

let test_next_prime_in_progression () =
  (* Smallest prime = 1 (mod 32) at least 33: 97. *)
  Alcotest.(check int) "1 mod 32" 97 (Zp.next_prime_in_progression ~a:33 ~d:32);
  Alcotest.(check int) "1 mod 8" 17 (Zp.next_prime_in_progression ~a:9 ~d:8)

let test_tables_match_direct () =
  let g = Prng.of_int 33 in
  for _ = 1 to 300 do
    let a = P97.random g and b = P97.random g in
    let ra = P97.repr a and rb = P97.repr b in
    Alcotest.(check int) "mul"
      (P97.repr (P97.mul a b))
      (Q97.repr (Q97.mul (Q97.of_repr ra) (Q97.of_repr rb)));
    Alcotest.(check int) "add"
      (P97.repr (P97.add a b))
      (Q97.repr (Q97.add (Q97.of_repr ra) (Q97.of_repr rb)));
    if ra <> 0 then
      Alcotest.(check int) "inv"
        (P97.repr (P97.inv a))
        (Q97.repr (Q97.inv (Q97.of_repr ra)))
  done

let test_ntt_roundtrip () =
  let tbl = Zq_table.Tables.make ~q:97 in
  let plan = Ntt.plan tbl ~m:32 in
  let g = Prng.of_int 41 in
  for _ = 1 to 50 do
    let a = Array.init 32 (fun _ -> Prng.int g 97) in
    let back = Ntt.inverse plan (Ntt.transform plan a) in
    Alcotest.(check (array int)) "roundtrip" a back
  done

let test_ntt_convolution_matches_naive () =
  let q = 97 in
  let tbl = Zq_table.Tables.make ~q in
  let plan = Ntt.plan tbl ~m:32 in
  let g = Prng.of_int 43 in
  for _ = 1 to 50 do
    let la = 1 + Prng.int g 16 and lb = 1 + Prng.int g 16 in
    let a = Array.init la (fun _ -> Prng.int g q) in
    let b = Array.init lb (fun _ -> Prng.int g q) in
    let naive = Array.make 32 0 in
    Array.iteri
      (fun i ai -> Array.iteri (fun j bj -> naive.(i + j) <- (naive.(i + j) + (ai * bj)) mod q) b)
      a;
    Alcotest.(check (array int)) "convolution" naive (Ntt.convolve plan a b)
  done

let test_fft_field_parameters () =
  Alcotest.(check bool) "k_bits >= 64" true (F64.k_bits >= 64);
  Alcotest.(check bool) "q = 1 (mod 2l)" true ((F64.q - 1) mod (2 * F64.l) = 0);
  Alcotest.(check bool) "q >= 2l+1" true (F64.q >= (2 * F64.l) + 1);
  Alcotest.(check bool) "l is a power of two" true
    (F64.l land (F64.l - 1) = 0)

let test_fft_field_mul_matches_naive () =
  let q = F64.q and l = F64.l and c = F64.c in
  let g = Prng.of_int 47 in
  for _ = 1 to 50 do
    let a = F64.random g and b = F64.random g in
    let ra = F64.repr a and rb = F64.repr b in
    (* Naive: schoolbook product then fold x^(l+i) = c x^i. *)
    let prod = Array.make ((2 * l) - 1) 0 in
    Array.iteri
      (fun i ai ->
        Array.iteri (fun j bj -> prod.(i + j) <- (prod.(i + j) + (ai * bj)) mod q) rb)
      ra;
    let reduced =
      Array.init l (fun i ->
          if i + l < Array.length prod then (prod.(i) + (c * prod.(i + l))) mod q
          else prod.(i))
    in
    Alcotest.(check (array int)) "mul agrees with naive"
      reduced
      (F64.repr (F64.mul a b))
  done

let specific =
  [
    Alcotest.test_case "smallest irreducibles" `Quick test_smallest_irreducibles;
    Alcotest.test_case "irreducibility judgements" `Quick
      test_irreducibility_judgements;
    Alcotest.test_case "GF(8) multiplication" `Quick test_gf8_multiplication_table;
    Alcotest.test_case "AES field example" `Quick test_aes_field_example;
    Alcotest.test_case "Frobenius fixes field" `Quick test_frobenius_fixes_field;
    Alcotest.test_case "wide matches word-sized" `Quick
      test_wide_matches_word_sized;
    Alcotest.test_case "wide modulus reported" `Quick test_wide_modulus_reported;
    Alcotest.test_case "Fermat" `Quick test_fermat;
    Alcotest.test_case "primitive root order" `Quick test_primitive_root_order;
    Alcotest.test_case "is_prime" `Quick test_is_prime;
    Alcotest.test_case "factorize" `Quick test_factorize;
    Alcotest.test_case "next_prime_in_progression" `Quick
      test_next_prime_in_progression;
    Alcotest.test_case "tables match direct Zp" `Quick test_tables_match_direct;
    Alcotest.test_case "NTT roundtrip" `Quick test_ntt_roundtrip;
    Alcotest.test_case "NTT convolution" `Quick test_ntt_convolution_matches_naive;
    Alcotest.test_case "FFT field parameters" `Quick test_fft_field_parameters;
    Alcotest.test_case "FFT field mul vs naive" `Quick
      test_fft_field_mul_matches_naive;
  ]

module Laws_gf8 = Field_laws.Make (Gf2k.GF8)
module Laws_gf32 = Field_laws.Make (Gf2k.GF32)
module Laws_gf61 = Field_laws.Make (Gf2k.GF61)
module Laws_wide64 = Field_laws.Make (Gf2_wide.GF64)
module Laws_wide128 = Field_laws.Make (Gf2_wide.GF128)
module Laws_mersenne = Field_laws.Make (Mersenne31)
module Laws_q97 = Field_laws.Make (Q97)
module Laws_fft64 = Field_laws.Make (F64)

let suite =
  specific @ Laws_gf8.all @ Laws_gf32.all @ Laws_gf61.all @ Laws_wide64.all
  @ Laws_wide128.all @ Laws_mersenne.all @ Laws_q97.all @ Laws_fft64.all
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ prop_karatsuba_matches_schoolbook; prop_karatsuba_matches_schoolbook_64 ]
