(* Direct tests for Gradecast.run_all — the parallel composition
   Coin-Gen step 7 uses. Properties must hold per dealer slot. *)

let run_all ?dealer_behavior ?follower_behavior ~n ~t values =
  Gradecast.run_all ?dealer_behavior ?follower_behavior ~equal:String.equal
    ~byte_size:String.length ~n ~t
    ~values:(fun i -> values.(i))
    ()

let test_all_honest () =
  let n = 7 and t = 2 in
  let values = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let outcomes = run_all ~n ~t values in
  Array.iteri
    (fun _receiver per_dealer ->
      Array.iteri
        (fun d o ->
          Alcotest.(check (option string)) "value" (Some values.(d))
            o.Gradecast.value;
          Alcotest.(check int) "confidence" 2 o.Gradecast.confidence)
        per_dealer)
    outcomes

let test_rounds_shared () =
  let n = 7 and t = 2 in
  let values = Array.init n string_of_int in
  let (), snap = Metrics.with_counting (fun () -> ignore (run_all ~n ~t values)) in
  Alcotest.(check int) "three rounds for all n casts" 3 snap.Metrics.rounds;
  Alcotest.(check int) "n gradecasts ticked" n snap.Metrics.gradecasts

let test_mixed_dealers () =
  let n = 7 and t = 2 in
  let values = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let dealer_behavior d =
    if d = 3 then Gradecast.Dealer_silent
    else if d = 5 then
      Gradecast.Dealer_equivocate
        (fun dst -> if dst mod 2 = 0 then Some "x" else Some "y")
    else Gradecast.Dealer_honest
  in
  let outcomes = run_all ~dealer_behavior ~n ~t values in
  Array.iter
    (fun per_dealer ->
      (* Honest dealers' slots unaffected by the faulty ones. *)
      List.iter
        (fun d ->
          Alcotest.(check (option string)) "honest slot value" (Some values.(d))
            per_dealer.(d).Gradecast.value;
          Alcotest.(check int) "honest slot conf" 2
            per_dealer.(d).Gradecast.confidence)
        [ 0; 1; 2; 4; 6 ];
      (* Silent dealer: everyone at confidence 0. *)
      Alcotest.(check int) "silent slot conf" 0 per_dealer.(3).Gradecast.confidence)
    outcomes

(* The per-slot graded-agreement property under arbitrary faulty
   followers and dealers. *)
let prop_run_all_soundness =
  QCheck.Test.make ~count:200 ~name:"run_all graded agreement per slot"
    QCheck.(pair int (int_range 1 3))
    (fun (seed, t) ->
      let g = Prng.of_int seed in
      let n = (3 * t) + 1 + Prng.int g 3 in
      let faults = Net.Faults.random g ~n ~t in
      let values = Array.init n (fun i -> Printf.sprintf "v%d" i) in
      let lies = [| "a"; "b"; "c" |] in
      let dealer_behavior d =
        if Net.Faults.is_honest faults d then Gradecast.Dealer_honest
        else
          let noise =
            Array.init n (fun _ ->
                if Prng.bool g then Some lies.(Prng.int g 3) else None)
          in
          Gradecast.Dealer_equivocate (fun dst -> noise.(dst))
      in
      let follower_behavior i =
        if Net.Faults.is_honest faults i then Gradecast.Follower_honest
        else
          match Prng.int g 3 with
          | 0 -> Gradecast.Follower_silent
          | 1 -> Gradecast.Follower_fixed lies.(Prng.int g 3)
          | _ ->
              let table =
                Array.init 2 (fun _ ->
                    Array.init n (fun _ ->
                        if Prng.bool g then Some lies.(Prng.int g 3) else None))
              in
              Gradecast.Follower_arbitrary (fun ~round ~dst -> table.(round - 2).(dst))
      in
      let outcomes = run_all ~dealer_behavior ~follower_behavior ~n ~t values in
      let honest = Net.Faults.honest faults in
      List.for_all
        (fun d ->
          let slot = List.map (fun i -> outcomes.(i).(d)) honest in
          let conf1_values =
            List.filter_map
              (fun o ->
                if o.Gradecast.confidence >= 1 then o.Gradecast.value else None)
              slot
          in
          let has_conf2 = List.exists (fun o -> o.Gradecast.confidence = 2) slot in
          let all_equal = function
            | [] -> true
            | v :: rest -> List.for_all (String.equal v) rest
          in
          (* Honest dealer slots: everyone at (value, 2). *)
          (if Net.Faults.is_honest faults d then
             List.for_all
               (fun o ->
                 o.Gradecast.confidence = 2 && o.Gradecast.value = Some values.(d))
               slot
           else true)
          && all_equal conf1_values
          && ((not has_conf2) || List.length conf1_values = List.length slot))
        (List.init n Fun.id))

let suite =
  [
    Alcotest.test_case "all honest" `Quick test_all_honest;
    Alcotest.test_case "rounds shared" `Quick test_rounds_shared;
    Alcotest.test_case "mixed dealers" `Quick test_mixed_dealers;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_run_all_soundness ]
