let test_bidirectional_core () =
  let d = Player_graph.directed_create ~n:4 in
  Player_graph.add_edge d 0 1;
  Player_graph.add_edge d 1 0;
  Player_graph.add_edge d 2 3 (* one-directional: dropped *);
  let u = Player_graph.bidirectional_core d in
  Alcotest.(check bool) "0-1 kept" true (Player_graph.has_undirected_edge u 0 1);
  Alcotest.(check bool) "1-0 kept" true (Player_graph.has_undirected_edge u 1 0);
  Alcotest.(check bool) "2-3 dropped" false
    (Player_graph.has_undirected_edge u 2 3)

let test_is_clique () =
  let u = Player_graph.undirected_create ~n:4 in
  List.iter
    (fun (i, j) -> Player_graph.add_undirected_edge u i j)
    [ (0, 1); (0, 2); (1, 2) ];
  Alcotest.(check bool) "triangle" true (Player_graph.is_clique u [ 0; 1; 2 ]);
  Alcotest.(check bool) "not with 3" false
    (Player_graph.is_clique u [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "singleton" true (Player_graph.is_clique u [ 3 ]);
  Alcotest.(check bool) "empty" true (Player_graph.is_clique u []);
  Alcotest.(check bool) "duplicates rejected" false
    (Player_graph.is_clique u [ 0; 0 ])

let test_approx_clique_complete_graph () =
  let n = 7 in
  let u = Player_graph.undirected_create ~n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Player_graph.add_undirected_edge u i j
    done
  done;
  match Player_graph.approx_clique u ~min_size:n with
  | None -> Alcotest.fail "complete graph must yield everyone"
  | Some c -> Alcotest.(check (list int)) "all players" (List.init n Fun.id) c

let test_approx_clique_empty_graph () =
  let u = Player_graph.undirected_create ~n:6 in
  (* Complement is complete: perfect matching leaves nobody. *)
  Alcotest.(check bool) "no clique of 2" true
    (Player_graph.approx_clique u ~min_size:2 = None)

(* The protocol-relevant promise: honest players always form a clique
   (size n - t); the approximation must return a clique of size
   >= n - 2t whatever edges faulty players induce. *)
let prop_clique_guarantee =
  QCheck.Test.make ~count:300 ~name:"approx clique guarantee n-2t"
    QCheck.(pair int (int_range 1 4))
    (fun (seed, t) ->
      let g = Prng.of_int seed in
      let n = (6 * t) + 1 in
      let faults = Net.Faults.random g ~n ~t in
      let u = Player_graph.undirected_create ~n in
      (* Honest pairs are always connected. *)
      let honest = Net.Faults.honest faults in
      List.iter
        (fun i ->
          List.iter
            (fun j -> if i < j then Player_graph.add_undirected_edge u i j)
            honest)
        honest;
      (* Faulty players connect arbitrarily. *)
      List.iter
        (fun f ->
          for j = 0 to n - 1 do
            if j <> f && Prng.bool g then Player_graph.add_undirected_edge u f j
          done)
        (Net.Faults.faulty faults);
      match Player_graph.approx_clique u ~min_size:(n - (2 * t)) with
      | None -> false
      | Some c ->
          Player_graph.is_clique u c && List.length c >= n - (2 * t))

let test_deterministic () =
  let build () =
    let u = Player_graph.undirected_create ~n:9 in
    List.iter
      (fun (i, j) -> Player_graph.add_undirected_edge u i j)
      [ (0, 1); (0, 2); (1, 2); (3, 4); (5, 6); (6, 7); (5, 7); (0, 8); (1, 8); (2, 8) ];
    u
  in
  let c1 = Player_graph.approx_clique (build ()) ~min_size:1 in
  let c2 = Player_graph.approx_clique (build ()) ~min_size:1 in
  Alcotest.(check bool) "same result" true (c1 = c2)

let suite =
  [
    Alcotest.test_case "bidirectional core" `Quick test_bidirectional_core;
    Alcotest.test_case "is_clique" `Quick test_is_clique;
    Alcotest.test_case "approx clique complete" `Quick
      test_approx_clique_complete_graph;
    Alcotest.test_case "approx clique empty" `Quick test_approx_clique_empty_graph;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) [ prop_clique_guarantee ]
