(* End-to-end integration: the full self-sufficiency story.

   Section 3.1: the VSS protocol "assumes the existence of a k-ary
   secret coin; this is a realistic assumption in the presence of a
   D-PRBG, and in particular under the 'bootstrapping' setting we are
   considering here." Here the assumption is discharged for real: the
   verification coins of Section-3 protocols are drawn from the
   bootstrapped pool, whose own machinery (BA leader draws, check coins)
   also feeds on the pool. *)

module F = Gf2k.GF16
module V = Vss.Make (F)
module PL = Pool.Make (F)

let n = 13
let t = 2

let mk_pool seed =
  PL.create ~prng:(Prng.of_int seed) ~n ~t ~batch_size:32 ~refill_threshold:3
    ~initial_seed:6 ()

let test_vss_on_pool_coins () =
  let pool = mk_pool 1 in
  let g = Prng.of_int 2 in
  (* Many VSS verifications, every checking coin a real shared coin. *)
  for _ = 1 to 30 do
    let alpha = V.honest_dealing g ~n ~t ~secret:(F.random g) in
    let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
    let r = PL.draw_kary pool in
    Alcotest.(check bool) "honest accepted" true
      (V.run ~n ~t ~alpha ~beta ~r () = V.Accept)
  done;
  let caught = ref 0 in
  for _ = 1 to 30 do
    (* The dealer must commit before the pool coin is exposed — exactly
       the ordering the pool gives for free. *)
    let guess = F.random_nonzero g in
    let alpha, beta = V.targeted_cheating_dealing g ~n ~t ~guess in
    let r = PL.draw_kary pool in
    if V.run ~n ~t ~alpha ~beta ~r () = V.Reject then incr caught
  done;
  Alcotest.(check int) "cheaters caught" 30 !caught;
  Alcotest.(check bool) "pool kept up" true ((PL.stats pool).PL.refills >= 1)

let test_batch_vss_on_pool_coins () =
  let pool = mk_pool 3 in
  let g = Prng.of_int 4 in
  for _ = 1 to 10 do
    let secrets = Array.init 32 (fun _ -> F.random g) in
    let shares = V.batch_honest_dealing g ~n ~t ~secrets in
    let r = PL.draw_kary pool in
    Alcotest.(check bool) "batch accepted" true
      (V.run_batch ~n ~t ~shares ~r () = V.Accept)
  done

let test_whole_stack_cost_visibility () =
  (* The complete pipeline under one measurement: every layer's costs
     land in a single snapshot. *)
  let pool = mk_pool 5 in
  let g = Prng.of_int 6 in
  let (), snap =
    Metrics.with_counting (fun () ->
        for _ = 1 to 10 do
          let secrets = Array.init 8 (fun _ -> F.random g) in
          let shares = V.batch_honest_dealing g ~n ~t ~secrets in
          let r = PL.draw_kary pool in
          ignore (V.run_batch ~n ~t ~shares ~r ())
        done)
  in
  Alcotest.(check bool) "interpolations observed" true
    (snap.Metrics.interpolations > 0);
  Alcotest.(check bool) "rounds observed" true (snap.Metrics.rounds > 0);
  Alcotest.(check bool) "BA observed (refills ran)" true
    (snap.Metrics.ba_runs >= 1)

let suite =
  [
    Alcotest.test_case "VSS on pool coins" `Quick test_vss_on_pool_coins;
    Alcotest.test_case "Batch-VSS on pool coins" `Quick
      test_batch_vss_on_pool_coins;
    Alcotest.test_case "whole-stack cost visibility" `Quick
      test_whole_stack_cost_visibility;
  ]
