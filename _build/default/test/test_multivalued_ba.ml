let phase_king_ba ~n ~t inputs = Phase_king.run ~n ~t ~inputs ()

let run ?behavior ~n ~t ~inputs ?ba () =
  let ba = match ba with Some f -> f | None -> phase_king_ba ~n ~t in
  Multivalued_ba.run ?behavior ~ba ~equal:String.equal
    ~byte_size:String.length ~n ~t ~inputs ()

let test_validity () =
  let n = 9 and t = 2 in
  let inputs = Array.make n "block-7f3a" in
  let out = run ~n ~t ~inputs () in
  Array.iter
    (fun o -> Alcotest.(check (option string)) "validity" (Some "block-7f3a") o)
    out

let test_split_inputs_agree () =
  let g = Prng.of_int 1 in
  let n = 9 and t = 2 in
  let values = [| "a"; "b"; "c" |] in
  for _ = 1 to 30 do
    let inputs = Array.init n (fun _ -> values.(Prng.int g 3)) in
    let out = run ~n ~t ~inputs () in
    Array.iter (fun o -> Alcotest.(check bool) "agreement" true (o = out.(0))) out
  done

let test_two_thirds_majority_wins () =
  (* If >= n - t honest players share an input, validity extends: that
     value must be adopted (every honest player sieves it in round 1). *)
  let n = 9 and t = 2 in
  let inputs =
    Array.init n (fun i -> if i < 7 then "major" else "minor")
  in
  let out = run ~n ~t ~inputs () in
  Array.iter
    (fun o -> Alcotest.(check (option string)) "majority value" (Some "major") o)
    out

let prop_agreement_validity_byzantine =
  QCheck.Test.make ~count:150 ~name:"multivalued BA vs Byzantine"
    QCheck.(pair int (int_range 1 2))
    (fun (seed, t) ->
      let g = Prng.of_int seed in
      let n = (4 * t) + 1 + Prng.int g 3 in
      let faults = Net.Faults.random g ~n ~t in
      let values = [| "x"; "y"; "z" |] in
      let inputs = Array.init n (fun _ -> values.(Prng.int g 3)) in
      let behavior i =
        if Net.Faults.is_honest faults i then Multivalued_ba.Honest
        else
          match Prng.int g 3 with
          | 0 -> Multivalued_ba.Silent
          | 1 -> Multivalued_ba.Fixed values.(Prng.int g 3)
          | _ ->
              let salt = Prng.int g 1000 in
              Multivalued_ba.Arbitrary
                (fun ~round ~dst ->
                  match Hashtbl.hash (salt, round, dst) land 3 with
                  | 0 -> None
                  | 1 -> Some None
                  | h -> Some (Some values.(h mod 3)))
      in
      let ba inputs =
        let b i =
          if Net.Faults.is_honest faults i then Phase_king.Honest
          else Phase_king.Fixed (Prng.bool g)
        in
        Phase_king.run ~behavior:b ~n ~t ~inputs ()
      in
      let out = run ~behavior ~n ~t ~inputs ~ba () in
      let honest = Net.Faults.honest faults in
      let outs = List.map (fun i -> out.(i)) honest in
      let agreement =
        match outs with [] -> true | o :: rest -> List.for_all (( = ) o) rest
      in
      let hon_inputs = List.map (fun i -> inputs.(i)) honest in
      let validity =
        match hon_inputs with
        | [] -> true
        | v :: rest when List.for_all (String.equal v) rest ->
            List.for_all (( = ) (Some v)) outs
        | _ -> true
      in
      agreement && validity)

let test_agree_on_field_elements () =
  (* The use case Coin-Gen-like protocols need: agree on a field value. *)
  let module F = Gf2k.GF32 in
  let n = 9 and t = 2 in
  let v = F.of_int 0xDEAD in
  let inputs = Array.make n v in
  let out =
    Multivalued_ba.run
      ~ba:(phase_king_ba ~n ~t)
      ~equal:F.equal
      ~byte_size:(fun _ -> F.byte_size)
      ~n ~t ~inputs ()
  in
  Array.iter
    (fun o ->
      Alcotest.(check bool) "field value agreed" true
        (match o with Some x -> F.equal x v | None -> false))
    out

let suite =
  [
    Alcotest.test_case "validity" `Quick test_validity;
    Alcotest.test_case "split inputs agree" `Quick test_split_inputs_agree;
    Alcotest.test_case "2/3 majority wins" `Quick test_two_thirds_majority_wins;
    Alcotest.test_case "agree on field elements" `Quick
      test_agree_on_field_elements;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ prop_agreement_validity_byzantine ]
