let mk n = Net.create ~n ~byte_size:String.length

let test_delivery_order () =
  let net = mk 4 in
  Net.send net ~src:2 ~dst:0 "b";
  Net.send net ~src:1 ~dst:0 "a";
  Net.send net ~src:3 ~dst:0 "c";
  let inbox = Net.deliver net in
  Alcotest.(check (list (pair int string)))
    "sorted by sender"
    [ (1, "a"); (2, "b"); (3, "c") ]
    inbox.(0);
  Alcotest.(check (list (pair int string))) "others empty" [] inbox.(1)

let test_queues_cleared () =
  let net = mk 2 in
  Net.send net ~src:0 ~dst:1 "x";
  ignore (Net.deliver net);
  let inbox = Net.deliver net in
  Alcotest.(check (list (pair int string))) "second round empty" [] inbox.(1)

let test_rounds_counted () =
  let net = mk 2 in
  ignore (Net.deliver net);
  ignore (Net.deliver net);
  Alcotest.(check int) "two rounds" 2 (Net.rounds_elapsed net)

let test_metrics_accounting () =
  let (), snap =
    Metrics.with_counting (fun () ->
        let net = mk 3 in
        Net.send net ~src:0 ~dst:1 "hello";
        Net.send net ~src:0 ~dst:0 "self" (* uncounted *);
        Net.send_to_all net ~src:2 (fun _ -> "xy");
        ignore (Net.deliver net))
  in
  (* send_to_all from 2 counts 2 messages (to 0 and 1, not itself). *)
  Alcotest.(check int) "messages" 3 snap.Metrics.messages;
  Alcotest.(check int) "bytes" (5 + 2 + 2) snap.Metrics.bytes;
  Alcotest.(check int) "rounds" 1 snap.Metrics.rounds

let test_equivocation_expressible () =
  let net = mk 3 in
  Net.send_to_all net ~src:0 (fun dst -> if dst = 1 then "one" else "two");
  let inbox = Net.deliver net in
  Alcotest.(check (list (pair int string))) "to 1" [ (0, "one") ] inbox.(1);
  Alcotest.(check (list (pair int string))) "to 2" [ (0, "two") ] inbox.(2)

let test_multiple_messages_same_round () =
  let net = mk 2 in
  Net.send net ~src:0 ~dst:1 "first";
  Net.send net ~src:0 ~dst:1 "second";
  let inbox = Net.deliver net in
  Alcotest.(check (list (pair int string)))
    "both kept, send order"
    [ (0, "first"); (0, "second") ]
    inbox.(1)

let test_id_validation () =
  let net = mk 2 in
  Alcotest.check_raises "bad dst"
    (Invalid_argument "Net.send: player id 5 out of range") (fun () ->
      Net.send net ~src:0 ~dst:5 "x")

let test_faults_construction () =
  let f = Net.Faults.make ~n:7 ~faulty:[ 1; 4 ] in
  Alcotest.(check int) "count" 2 (Net.Faults.count f);
  Alcotest.(check bool) "1 faulty" true (Net.Faults.is_faulty f 1);
  Alcotest.(check bool) "0 honest" true (Net.Faults.is_honest f 0);
  Alcotest.(check (list int)) "faulty list" [ 1; 4 ] (Net.Faults.faulty f);
  Alcotest.(check (list int)) "honest list" [ 0; 2; 3; 5; 6 ]
    (Net.Faults.honest f)

let test_faults_random () =
  let g = Prng.of_int 5 in
  for _ = 1 to 50 do
    let f = Net.Faults.random g ~n:10 ~t:3 in
    Alcotest.(check int) "three faulty" 3 (Net.Faults.count f)
  done

let test_faults_validation () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Faults.make: duplicate id")
    (fun () -> ignore (Net.Faults.make ~n:4 ~faulty:[ 1; 1 ]));
  Alcotest.check_raises "range" (Invalid_argument "Faults.make: id out of range")
    (fun () -> ignore (Net.Faults.make ~n:4 ~faulty:[ 4 ]))

let suite =
  [
    Alcotest.test_case "delivery order" `Quick test_delivery_order;
    Alcotest.test_case "queues cleared" `Quick test_queues_cleared;
    Alcotest.test_case "rounds counted" `Quick test_rounds_counted;
    Alcotest.test_case "metrics accounting" `Quick test_metrics_accounting;
    Alcotest.test_case "equivocation expressible" `Quick
      test_equivocation_expressible;
    Alcotest.test_case "multiple messages same round" `Quick
      test_multiple_messages_same_round;
    Alcotest.test_case "id validation" `Quick test_id_validation;
    Alcotest.test_case "faults construction" `Quick test_faults_construction;
    Alcotest.test_case "faults random" `Quick test_faults_random;
    Alcotest.test_case "faults validation" `Quick test_faults_validation;
  ]
