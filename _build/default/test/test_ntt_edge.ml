(* Edge-case coverage for the NTT plan machinery and the special-field
   parameter derivation across several target sizes. *)

let tbl97 = Zq_table.Tables.make ~q:97

let test_plan_validation () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Ntt.plan: size not a power of two") (fun () ->
      ignore (Ntt.plan tbl97 ~m:24));
  Alcotest.check_raises "m does not divide q-1"
    (Invalid_argument "Ntt.plan: m does not divide q-1") (fun () ->
      ignore (Ntt.plan tbl97 ~m:64))
  (* 96 = 2^5 * 3: 64 does not divide it. *)

let test_plan_sizes () =
  List.iter
    (fun m ->
      let plan = Ntt.plan tbl97 ~m in
      Alcotest.(check int) "size" m (Ntt.size plan))
    [ 1; 2; 4; 8; 16; 32 ]

let test_convolve_size_guard () =
  let plan = Ntt.plan tbl97 ~m:8 in
  Alcotest.check_raises "overflow"
    (Invalid_argument "Ntt.convolve: result does not fit plan size") (fun () ->
      ignore (Ntt.convolve plan (Array.make 6 1) (Array.make 6 1)))

let test_inverse_length_guard () =
  let plan = Ntt.plan tbl97 ~m:8 in
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Ntt.inverse: wrong length") (fun () ->
      ignore (Ntt.inverse plan (Array.make 4 0)))

let test_transform_of_delta_is_flat () =
  (* DFT of the unit impulse is the all-ones vector. *)
  let plan = Ntt.plan tbl97 ~m:16 in
  let delta = Array.init 16 (fun i -> if i = 0 then 1 else 0) in
  Alcotest.(check (array int)) "flat" (Array.make 16 1)
    (Ntt.transform plan delta)

let test_fft_field_derivations () =
  (* The derived (l, q) pairs must satisfy the paper's constraints for
     every target size. *)
  List.iter
    (fun target ->
      let module M = Fft_field.Make (struct let k = target end) in
      Alcotest.(check bool) "l power of two" true (M.l land (M.l - 1) = 0);
      Alcotest.(check bool) "q prime" true (Zp.is_prime M.q);
      Alcotest.(check int) "q = 1 mod 2l" 1 (M.q mod (2 * M.l));
      Alcotest.(check bool) "q >= 2l+1" true (M.q >= (2 * M.l) + 1);
      Alcotest.(check bool) "capacity" true (M.k_bits >= target);
      (* c is a generator, so x^l - c is irreducible (Lidl-Niederreiter
         3.75); sanity: c^((q-1)/2) <> 1 (c is a non-residue). *)
      let module Q = Zp.Make (struct let p = M.q end) in
      Alcotest.(check bool) "c non-residue" false
        (Q.equal (Q.pow (Q.of_int M.c) ((M.q - 1) / 2)) Q.one))
    [ 4; 16; 64; 128; 256; 512 ]

let test_fft_field_small_k () =
  (* Tiny targets still give a working field. *)
  let module M = Fft_field.Make (struct let k = 2 end) in
  let g = Prng.of_int 1 in
  let a = M.random_nonzero g in
  Alcotest.(check bool) "inverse works" true (M.equal (M.mul a (M.inv a)) M.one)

let test_zq_pow_edges () =
  Alcotest.(check int) "0^0" 1 (Zq_table.Tables.pow tbl97 0 0);
  Alcotest.(check int) "0^5" 0 (Zq_table.Tables.pow tbl97 0 5);
  Alcotest.(check int) "x^0" 1 (Zq_table.Tables.pow tbl97 42 0);
  Alcotest.(check int) "fermat" 1 (Zq_table.Tables.pow tbl97 42 96)

let suite =
  [
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "plan sizes" `Quick test_plan_sizes;
    Alcotest.test_case "convolve size guard" `Quick test_convolve_size_guard;
    Alcotest.test_case "inverse length guard" `Quick test_inverse_length_guard;
    Alcotest.test_case "impulse transform" `Quick test_transform_of_delta_is_flat;
    Alcotest.test_case "fft field derivations" `Quick test_fft_field_derivations;
    Alcotest.test_case "fft field small k" `Quick test_fft_field_small_k;
    Alcotest.test_case "zq pow edges" `Quick test_zq_pow_edges;
  ]
