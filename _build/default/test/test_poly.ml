module F = Gf2k.GF32
module P = Poly.Make (F)

let elt i = F.of_int (i land 0xFFFFFFFF)

let arb_poly =
  let gen =
    QCheck.Gen.map
      (fun (seed, d) ->
        let g = Prng.of_int seed in
        P.random g ~degree:d)
      QCheck.Gen.(pair int (int_range 0 12))
  in
  QCheck.make ~print:(Fmt.to_to_string P.pp) gen

let arb_elt =
  QCheck.make ~print:F.to_string
    (QCheck.Gen.map (fun s -> F.random (Prng.of_int s)) QCheck.Gen.int)

let qtest name arb f = QCheck.Test.make ~count:200 ~name arb f

let props =
  [
    qtest "eval distributes over add" (QCheck.triple arb_poly arb_poly arb_elt)
      (fun (p, q, x) ->
        F.equal (P.eval (P.add p q) x) (F.add (P.eval p x) (P.eval q x)));
    qtest "eval distributes over mul" (QCheck.triple arb_poly arb_poly arb_elt)
      (fun (p, q, x) ->
        F.equal (P.eval (P.mul p q) x) (F.mul (P.eval p x) (P.eval q x)));
    qtest "sub of self is zero" arb_poly (fun p -> P.equal (P.sub p p) P.zero);
    qtest "divmod reconstructs" (QCheck.pair arb_poly arb_poly) (fun (a, b) ->
        QCheck.assume (P.degree b >= 0);
        let q, r = P.divmod a b in
        P.degree r < P.degree b && P.equal a (P.add (P.mul q b) r));
    qtest "interpolation recovers polynomial"
      (QCheck.pair QCheck.int (QCheck.int_range 0 10))
      (fun (seed, d) ->
        let g = Prng.of_int seed in
        let p = P.random g ~degree:d in
        let points = List.init (d + 1) (fun i -> (elt (i + 1), P.eval p (elt (i + 1)))) in
        P.equal p (P.interpolate points));
    qtest "interpolate_at agrees with interpolate"
      (QCheck.pair QCheck.int (QCheck.int_range 0 8))
      (fun (seed, d) ->
        let g = Prng.of_int seed in
        let p = P.random g ~degree:d in
        let points =
          List.init (d + 1) (fun i -> (elt (i + 3), P.eval p (elt (i + 3))))
        in
        F.equal (P.interpolate_at points F.zero) (P.eval (P.interpolate points) F.zero));
    qtest "degree of product adds" (QCheck.pair arb_poly arb_poly)
      (fun (a, b) ->
        QCheck.assume (P.degree a >= 0 && P.degree b >= 0);
        P.degree (P.mul a b) = P.degree a + P.degree b);
    qtest "random_with_c0 pins the constant term"
      (QCheck.pair QCheck.int (QCheck.int_range 1 10))
      (fun (seed, d) ->
        let g = Prng.of_int seed in
        let c0 = F.random g in
        let p = P.random_with_c0 g ~degree:d ~c0 in
        F.equal (P.eval p F.zero) c0);
  ]

let test_constants () =
  Alcotest.(check int) "zero degree" (-1) (P.degree P.zero);
  Alcotest.(check int) "one degree" 0 (P.degree P.one);
  Alcotest.(check bool) "constant zero collapses" true
    (P.equal (P.constant F.zero) P.zero);
  Alcotest.(check int) "monomial degree" 7 (P.degree (P.monomial F.one 7))

let test_eval_known () =
  (* p(x) = x^2 + x + 1 over GF(2^32): p(0) = 1, p(1) = 1 (char 2). *)
  let p = P.of_coeffs [| F.one; F.one; F.one |] in
  Alcotest.(check bool) "p(0)=1" true (F.equal (P.eval p F.zero) F.one);
  Alcotest.(check bool) "p(1)=1" true (F.equal (P.eval p F.one) F.one)

let test_coeff_beyond_degree () =
  let p = P.of_coeffs [| F.one |] in
  Alcotest.(check bool) "coeff 5 is zero" true (F.equal (P.coeff p 5) F.zero)

let test_normalization () =
  let p = P.of_coeffs [| F.one; F.zero; F.zero |] in
  Alcotest.(check int) "trailing zeros stripped" 0 (P.degree p)

let test_interpolate_empty_and_single () =
  Alcotest.(check bool) "empty -> zero" true (P.equal (P.interpolate []) P.zero);
  let p = P.interpolate [ (elt 1, elt 42) ] in
  Alcotest.(check int) "single point -> constant" 0 (P.degree p);
  Alcotest.(check bool) "value" true (F.equal (P.eval p (elt 9)) (elt 42))

let test_fits_degree () =
  let g = Prng.of_int 7 in
  let p = P.random g ~degree:3 in
  let points = List.init 10 (fun i -> (elt (i + 1), P.eval p (elt (i + 1)))) in
  Alcotest.(check bool) "fits 3" true (P.fits_degree points ~max_degree:3);
  (* Corrupt one evaluation: a degree-3 fit must fail (10 points pin the
     polynomial uniquely). *)
  let corrupted =
    List.mapi (fun i (x, y) -> if i = 4 then (x, F.add y F.one) else (x, y)) points
  in
  Alcotest.(check bool) "corruption breaks fit" false
    (P.fits_degree corrupted ~max_degree:3)

let test_interpolation_ticks_metrics () =
  let points = List.init 4 (fun i -> (elt (i + 1), elt (i * i))) in
  let _, snap = Metrics.with_counting (fun () -> P.interpolate points) in
  Alcotest.(check int) "one interpolation" 1 snap.Metrics.interpolations

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "eval known" `Quick test_eval_known;
    Alcotest.test_case "coeff beyond degree" `Quick test_coeff_beyond_degree;
    Alcotest.test_case "normalization" `Quick test_normalization;
    Alcotest.test_case "interpolate empty/single" `Quick
      test_interpolate_empty_and_single;
    Alcotest.test_case "fits_degree" `Quick test_fits_degree;
    Alcotest.test_case "interpolation ticks metrics" `Quick
      test_interpolation_ticks_metrics;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) props
