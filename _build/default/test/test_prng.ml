let test_deterministic () =
  let a = Prng.of_int 42 and b = Prng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.of_int 1 and b = Prng.of_int 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)) then
      differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_split_independence () =
  let g = Prng.of_int 7 in
  let a = Prng.split g and b = Prng.split g in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)) then
      differs := true
  done;
  Alcotest.(check bool) "split streams differ" true !differs

let test_copy_replays () =
  let g = Prng.of_int 3 in
  ignore (Prng.next_int64 g);
  let c = Prng.copy g in
  Alcotest.(check int64) "copy replays" (Prng.next_int64 g) (Prng.next_int64 c)

let test_int_bounds () =
  let g = Prng.of_int 11 in
  for _ = 1 to 2000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_covers_range () =
  let g = Prng.of_int 13 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Prng.int g 8) <- true
  done;
  Alcotest.(check bool) "all 8 values seen" true (Array.for_all Fun.id seen)

let test_bits_width () =
  let g = Prng.of_int 17 in
  for w = 0 to 62 do
    let v = Prng.bits g w in
    Alcotest.(check bool)
      (Printf.sprintf "bits %d in range" w)
      true
      (v >= 0 && (w = 62 || v < 1 lsl w))
  done

let test_bool_balanced () =
  let g = Prng.of_int 19 in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Prng.bool g then incr trues
  done;
  (* 5 sigma around n/2. *)
  let dev = abs (!trues - (n / 2)) in
  Alcotest.(check bool) "roughly balanced" true (dev < 250)

let test_sample_distinct () =
  let g = Prng.of_int 23 in
  List.iter
    (fun (m, bound) ->
      let s = Prng.sample_distinct g m bound in
      Alcotest.(check int) "cardinality" m (List.length s);
      Alcotest.(check int) "distinct" m (List.length (List.sort_uniq compare s));
      List.iter
        (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < bound))
        s;
      Alcotest.(check bool) "sorted" true (List.sort compare s = s))
    [ (0, 5); (3, 100); (5, 5); (7, 10); (50, 60) ]

let test_shuffle_permutes () =
  let g = Prng.of_int 29 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_split_n () =
  let g = Prng.of_int 31 in
  let gs = Prng.split_n g 5 in
  Alcotest.(check int) "count" 5 (Array.length gs);
  let outs = Array.map Prng.next_int64 gs in
  let distinct =
    List.length (List.sort_uniq Int64.compare (Array.to_list outs))
  in
  Alcotest.(check int) "first outputs distinct" 5 distinct

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "copy replays" `Quick test_copy_replays;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "bits width" `Quick test_bits_width;
    Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
    Alcotest.test_case "sample_distinct" `Quick test_sample_distinct;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "split_n" `Quick test_split_n;
  ]
