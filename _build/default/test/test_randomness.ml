module F = Gf2k.GF16
module R = Randomness.Make (F)

let stub_source seed =
  let g = Prng.of_int seed in
  fun () -> F.random g

let test_bit_stream_length_and_balance () =
  let bits = R.bit_stream (stub_source 1) ~count:10000 in
  Alcotest.(check int) "length" 10000 (Array.length bits);
  let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits in
  Alcotest.(check bool)
    (Printf.sprintf "%d ones" ones)
    true
    (abs (ones - 5000) < Stats.bit_balance_bound ~trials:10000)

let test_uniform_int_bounds () =
  let src = stub_source 2 in
  for bound = 1 to 40 do
    for _ = 1 to 50 do
      let v = R.uniform_int src ~bound in
      Alcotest.(check bool) "in range" true (v >= 0 && v < bound)
    done
  done

let test_uniform_int_uniformity () =
  let src = stub_source 3 in
  (* bound 12 does not divide 2^16: rejection sampling must still give
     exact uniformity. *)
  let h = Array.make 12 0 in
  let trials = 12000 in
  for _ = 1 to trials do
    let v = R.uniform_int src ~bound:12 in
    h.(v) <- h.(v) + 1
  done;
  let chi2 = Stats.chi_square ~observed:h in
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.1f" chi2)
    true
    (chi2 < Stats.uniform_5sigma_bound ~buckets:12)

let test_uniform_int_validation () =
  let src = stub_source 4 in
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Randomness.uniform_int: bound < 1") (fun () ->
      ignore (R.uniform_int src ~bound:0));
  Alcotest.check_raises "bound too large"
    (Invalid_argument "Randomness.uniform_int: bound too large for this field")
    (fun () -> ignore (R.uniform_int src ~bound:(1 lsl 17)))

let test_shuffle_is_permutation () =
  let src = stub_source 5 in
  for _ = 1 to 50 do
    let a = Array.init 20 Fun.id in
    R.shuffle src a;
    let sorted = Array.copy a in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted
  done

let test_shuffle_uniformity () =
  (* Position of element 0 after shuffling [0..5]: uniform over 6 slots. *)
  let src = stub_source 6 in
  let h = Array.make 6 0 in
  for _ = 1 to 6000 do
    let a = Array.init 6 Fun.id in
    R.shuffle src a;
    let pos = ref 0 in
    Array.iteri (fun i v -> if v = 0 then pos := i) a;
    h.(!pos) <- h.(!pos) + 1
  done;
  let chi2 = Stats.chi_square ~observed:h in
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.1f" chi2)
    true
    (chi2 < Stats.uniform_5sigma_bound ~buckets:6)

let test_committee_properties () =
  let src = stub_source 7 in
  for _ = 1 to 100 do
    let c = R.committee src ~size:4 ~n:13 in
    Alcotest.(check int) "size" 4 (List.length c);
    Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare c));
    Alcotest.(check bool) "sorted & in range" true
      (List.sort compare c = c && List.for_all (fun i -> i >= 0 && i < 13) c)
  done

let test_committee_fair () =
  (* Each player's membership frequency: size/n = 2/6. *)
  let src = stub_source 8 in
  let h = Array.make 6 0 in
  let trials = 6000 in
  for _ = 1 to trials do
    List.iter (fun i -> h.(i) <- h.(i) + 1) (R.committee src ~size:2 ~n:6)
  done;
  Array.iteri
    (fun i c ->
      let expected = trials * 2 / 6 in
      Alcotest.(check bool)
        (Printf.sprintf "player %d: %d" i c)
        true
        (abs (c - expected) < 200))
    h

let test_derivation_is_agreed () =
  (* Two players replaying the same exposed coins derive identical
     results — the whole point. *)
  let a = R.committee (stub_source 9) ~size:5 ~n:20 in
  let b = R.committee (stub_source 9) ~size:5 ~n:20 in
  Alcotest.(check (list int)) "same committee" a b

let suite =
  [
    Alcotest.test_case "bit stream" `Quick test_bit_stream_length_and_balance;
    Alcotest.test_case "uniform_int bounds" `Quick test_uniform_int_bounds;
    Alcotest.test_case "uniform_int uniformity" `Quick test_uniform_int_uniformity;
    Alcotest.test_case "uniform_int validation" `Quick test_uniform_int_validation;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "shuffle uniformity" `Quick test_shuffle_uniformity;
    Alcotest.test_case "committee properties" `Quick test_committee_properties;
    Alcotest.test_case "committee fair" `Quick test_committee_fair;
    Alcotest.test_case "derivation agreed" `Quick test_derivation_is_agreed;
  ]
