module F = Gf2k.GF16
module C = Sealed_coin.Make (F)
module CG = Coin_gen.Make (F)
module CE = Coin_expose.Make (F)
module R = Refresh.Make (F)
module S = Shamir.Make (F)
module P = Poly.Make (F)

let n = 13
let t = 2

let ideal_oracle seed =
  let g = Prng.of_int seed in
  fun () -> Metrics.without_counting (fun () -> F.random g)

let fresh_coins g count = List.init count (fun _ -> C.dealer_coin g ~n ~t)

let test_value_preserved () =
  let g = Prng.of_int 1 in
  let coins = fresh_coins g 5 in
  let truths = List.map (fun c -> Option.get (C.ground_truth c)) coins in
  match R.run ~prng:(Prng.split g) ~oracle:(ideal_oracle 11) coins with
  | None -> Alcotest.fail "refresh failed"
  | Some refreshed ->
      List.iter2
        (fun coin truth ->
          Alcotest.(check bool) "ground truth preserved" true
            (F.equal (Option.get (C.ground_truth coin)) truth);
          let values = CE.run coin in
          Array.iter
            (fun v ->
              Alcotest.(check bool) "exposes to same value" true
                (match v with Some x -> F.equal x truth | None -> false))
            values)
        refreshed truths

let test_shares_change () =
  let g = Prng.of_int 2 in
  let coins = fresh_coins g 3 in
  match R.run ~prng:(Prng.split g) ~oracle:(ideal_oracle 22) coins with
  | None -> Alcotest.fail "refresh failed"
  | Some refreshed ->
      List.iter2
        (fun old fresh ->
          let changed = ref 0 in
          for i = 0 to n - 1 do
            if not (F.equal old.C.shares.(i) fresh.C.shares.(i)) then
              incr changed
          done;
          (* All n players' refresh-sum is zero only at x=0; each share
             changes unless the mask polynomial vanishes at that point
             (probability n/p per coin). *)
          Alcotest.(check bool)
            (Printf.sprintf "%d shares changed" !changed)
            true
            (!changed >= n - 1))
        coins refreshed

let test_old_and_new_shares_do_not_mix () =
  (* The mobile-adversary threat: t shares from before the refresh plus
     t+1-e shares from after must NOT reconstruct the secret. *)
  let g = Prng.of_int 3 in
  let coins = fresh_coins g 1 in
  let old = List.hd coins in
  let truth = Option.get (C.ground_truth old) in
  match R.run ~prng:(Prng.split g) ~oracle:(ideal_oracle 33) coins with
  | None -> Alcotest.fail "refresh failed"
  | Some [ fresh ] ->
      (* Mix: players 0..t-1 old-epoch shares, players t..t new-epoch. *)
      let mixed =
        List.init (t + 1) (fun i ->
            if i < t then (i, old.C.shares.(i)) else (i, fresh.C.shares.(i)))
      in
      let recon = S.reconstruct mixed in
      Alcotest.(check bool) "mixed shares give garbage" false
        (F.equal recon truth);
      (* Control: t+1 new shares do reconstruct. *)
      let pure = List.init (t + 1) (fun i -> (i, fresh.C.shares.(i))) in
      Alcotest.(check bool) "new shares reconstruct" true
        (F.equal (S.reconstruct pure) truth)
  | Some _ -> Alcotest.fail "wrong batch size"

let test_nonzero_refresher_rejected () =
  (* A faulty refresher dealing sharings of non-zero values must be
     excluded by the F(0) = 0 acceptance rule — otherwise it could shift
     every coin's value. *)
  let g = Prng.of_int 4 in
  for seed = 1 to 15 do
    let coins = fresh_coins g 3 in
    let truths = List.map (fun c -> Option.get (C.ground_truth c)) coins in
    let faults = Net.Faults.make ~n ~faulty:[ 2; 9 ] in
    let adversary =
      CG.faulty_with ~as_dealer:CG.BG.Honest_dealer (* non-zero secrets! *)
        ~as_gamma:CG.Honest_vec
        ~as_gradecast_dealer:Gradecast.Dealer_honest
        ~as_gradecast_follower:Gradecast.Follower_honest
        ~as_ba:Phase_king.Honest faults
    in
    match
      R.run ~adversary ~prng:(Prng.of_int (seed * 13))
        ~oracle:(ideal_oracle (seed + 44))
        coins
    with
    | None -> ()
    | Some refreshed ->
        List.iter2
          (fun coin truth ->
            Alcotest.(check bool) "value still preserved" true
              (F.equal (Option.get (C.ground_truth coin)) truth))
          refreshed truths
  done

let test_refresh_under_byzantine_attack () =
  let g = Prng.of_int 5 in
  for seed = 1 to 10 do
    let coins = fresh_coins g 4 in
    let truths = List.map (fun c -> Option.get (C.ground_truth c)) coins in
    let faults = Net.Faults.random g ~n ~t in
    let adversary =
      CG.faulty_with ~as_dealer:(CG.BG.Bad_degree [ 0; 1 ])
        ~as_gamma:CG.Silent_vec ~as_ba:(Phase_king.Fixed false) faults
    in
    match
      R.run ~adversary ~prng:(Prng.of_int (seed * 17))
        ~oracle:(ideal_oracle (seed + 55))
        coins
    with
    | None -> ()
    | Some refreshed ->
        List.iter2
          (fun coin truth ->
            let values = CE.run coin in
            List.iter
              (fun i ->
                match values.(i) with
                | Some v ->
                    Alcotest.(check bool) "honest expose = truth" true
                      (F.equal v truth)
                | None -> Alcotest.fail "honest decode failed")
              (Net.Faults.honest faults))
          refreshed truths
  done

let test_repeated_refresh () =
  let g = Prng.of_int 6 in
  let coins = fresh_coins g 2 in
  let truths = List.map (fun c -> Option.get (C.ground_truth c)) coins in
  let rec go round coins =
    if round = 0 then coins
    else
      match
        R.run ~prng:(Prng.of_int (round * 7)) ~oracle:(ideal_oracle (round + 66))
          coins
      with
      | None -> Alcotest.fail "refresh failed"
      | Some refreshed -> go (round - 1) refreshed
  in
  let final = go 3 coins in
  List.iter2
    (fun coin truth ->
      Alcotest.(check bool) "value survives 3 refreshes" true
        (F.equal (Option.get (C.ground_truth coin)) truth))
    final truths

let test_mismatched_coins_rejected () =
  let g = Prng.of_int 7 in
  let a = C.dealer_coin g ~n ~t in
  let b = C.dealer_coin g ~n:7 ~t:1 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Refresh.run: coins disagree on (n, t)") (fun () ->
      ignore (R.run ~prng:(Prng.split g) ~oracle:(ideal_oracle 77) [ a; b ]))

let test_empty_refresh () =
  Alcotest.(check bool) "empty ok" true
    (R.run ~prng:(Prng.of_int 8) ~oracle:(ideal_oracle 88) [] = Some [])

let test_pool_refresh () =
  let module PL = Pool.Make (F) in
  let p =
    PL.create ~prng:(Prng.of_int 9) ~n ~t ~batch_size:16 ~refill_threshold:3
      ~initial_seed:6 ()
  in
  (* Stock the pool, refresh, and keep drawing: supply and unanimity
     must be unaffected. *)
  for _ = 1 to 20 do
    ignore (PL.draw_kary p)
  done;
  PL.refresh p;
  for _ = 1 to 20 do
    ignore (PL.draw_kary p)
  done;
  PL.refresh p;
  let s = PL.stats p in
  Alcotest.(check int) "two refreshes" 2 s.PL.refreshes;
  Alcotest.(check int) "draws all served" 40 s.PL.coins_exposed;
  Alcotest.(check int) "no unanimity failures" 0 s.PL.unanimity_failures

let suite =
  [
    Alcotest.test_case "value preserved" `Quick test_value_preserved;
    Alcotest.test_case "shares change" `Quick test_shares_change;
    Alcotest.test_case "old/new shares do not mix" `Quick
      test_old_and_new_shares_do_not_mix;
    Alcotest.test_case "non-zero refresher rejected" `Quick
      test_nonzero_refresher_rejected;
    Alcotest.test_case "refresh under attack" `Quick
      test_refresh_under_byzantine_attack;
    Alcotest.test_case "repeated refresh" `Quick test_repeated_refresh;
    Alcotest.test_case "mismatched coins rejected" `Quick
      test_mismatched_coins_rejected;
    Alcotest.test_case "empty refresh" `Quick test_empty_refresh;
    Alcotest.test_case "pool refresh" `Quick test_pool_refresh;
  ]
