module F = Gf2k.GF32
module P = Poly.Make (F)
module L = Linalg.Make (F)
module BW = Berlekamp_welch.Make (F)

let elt i = F.of_int (i land 0xFFFFFFFF)

(* Corrupt exactly [e] of the points (at distinct positions) with random
   non-zero offsets, so every corruption is a genuine error. *)
let corrupt g e points =
  let arr = Array.of_list points in
  let positions = Prng.sample_distinct g e (Array.length arr) in
  List.iter
    (fun i ->
      let x, y = arr.(i) in
      arr.(i) <- (x, F.add y (F.random_nonzero g)))
    positions;
  Array.to_list arr

let test_linalg_known_system () =
  (* Over GF(2^32): x + y = 3, x = 1  =>  y = 2 (xor arithmetic). *)
  let a = [| [| F.one; F.one |]; [| F.one; F.zero |] |] in
  let b = [| elt 3; elt 1 |] in
  match L.solve a b with
  | None -> Alcotest.fail "no solution"
  | Some x ->
      Alcotest.(check bool) "x=1" true (F.equal x.(0) (elt 1));
      Alcotest.(check bool) "y=2" true (F.equal x.(1) (elt 2))

let test_linalg_inconsistent () =
  (* x + y = 1 and x + y = 2: inconsistent. *)
  let a = [| [| F.one; F.one |]; [| F.one; F.one |] |] in
  let b = [| elt 1; elt 2 |] in
  Alcotest.(check bool) "inconsistent" true (L.solve a b = None)

let test_linalg_underdetermined () =
  let a = [| [| F.one; F.one; F.zero |] |] in
  let b = [| elt 5 |] in
  match L.solve a b with
  | None -> Alcotest.fail "should be solvable"
  | Some x ->
      let lhs = F.add (F.mul a.(0).(0) x.(0)) (F.add (F.mul a.(0).(1) x.(1)) (F.mul a.(0).(2) x.(2))) in
      Alcotest.(check bool) "satisfies" true (F.equal lhs (elt 5))

let prop_linalg_solves_random_systems =
  QCheck.Test.make ~count:200 ~name:"linalg solves consistent random systems"
    QCheck.(pair int (int_range 1 8))
    (fun (seed, n) ->
      let g = Prng.of_int seed in
      let a = Array.init n (fun _ -> Array.init n (fun _ -> F.random g)) in
      let x0 = Array.init n (fun _ -> F.random g) in
      let b =
        Array.init n (fun i ->
            let acc = ref F.zero in
            for j = 0 to n - 1 do
              acc := F.add !acc (F.mul a.(i).(j) x0.(j))
            done;
            !acc)
      in
      match L.solve a b with
      | None -> false
      | Some x ->
          (* Any solution must satisfy the system (it need not equal x0
             when a is singular). *)
          Array.for_all2
            (fun row rhs ->
              let acc = ref F.zero in
              Array.iteri (fun j v -> acc := F.add !acc (F.mul v x.(j))) row;
              F.equal !acc rhs)
            a b)

let prop_homogeneous_kernel =
  QCheck.Test.make ~count:200 ~name:"homogeneous solver finds kernel vectors"
    QCheck.(pair int (int_range 2 6))
    (fun (seed, n) ->
      let g = Prng.of_int seed in
      (* Build a singular matrix: last row = sum of the others. *)
      let a = Array.init n (fun _ -> Array.init n (fun _ -> F.random g)) in
      a.(n - 1) <-
        Array.init n (fun j ->
            let acc = ref F.zero in
            for i = 0 to n - 2 do
              acc := F.add !acc a.(i).(j)
            done;
            !acc);
      (* Rows are dependent, so columns of the transpose are dependent;
         feed the transpose to get a guaranteed non-trivial kernel. *)
      let at = Array.init n (fun i -> Array.init n (fun j -> a.(j).(i))) in
      match L.solve_homogeneous_nontrivial at with
      | None -> false
      | Some x ->
          let nonzero = Array.exists (fun v -> not (F.equal v F.zero)) x in
          let zero_image =
            Array.for_all
              (fun row ->
                let acc = ref F.zero in
                Array.iteri (fun j v -> acc := F.add !acc (F.mul v x.(j))) row;
                F.equal !acc F.zero)
              at
          in
          nonzero && zero_image)

let prop_bw_decodes_with_errors =
  QCheck.Test.make ~count:200 ~name:"BW decodes with <= e corruptions"
    QCheck.(triple int (int_range 0 4) (int_range 0 3))
    (fun (seed, d, e) ->
      let g = Prng.of_int seed in
      let p = P.random g ~degree:d in
      let m = d + 1 + (2 * e) + Prng.int g 3 in
      let points = List.init m (fun i -> (elt (i + 1), P.eval p (elt (i + 1)))) in
      let actual_errors = Prng.int g (e + 1) in
      let corrupted = corrupt g actual_errors points in
      match BW.decode ~max_degree:d ~max_errors:e corrupted with
      | None -> false
      | Some f -> P.equal (P.of_coeffs (BW.P.coeffs f)) p)

let prop_bw_support =
  QCheck.Test.make ~count:100 ~name:"BW support excludes corrupted points"
    QCheck.(pair int (int_range 1 3))
    (fun (seed, e) ->
      let g = Prng.of_int seed in
      let d = 2 in
      let p = P.random g ~degree:d in
      let m = d + 1 + (2 * e) in
      let points = List.init m (fun i -> (elt (i + 1), P.eval p (elt (i + 1)))) in
      let corrupted = corrupt g e points in
      match BW.decode_with_support ~max_degree:d ~max_errors:e corrupted with
      | None -> false
      | Some (f, support) ->
          List.length support = m - e
          && List.for_all (fun (x, y) -> F.equal (BW.P.eval f x) y) support)

let test_bw_exact_when_no_errors () =
  let g = Prng.of_int 3 in
  let p = P.random g ~degree:3 in
  let points = List.init 4 (fun i -> (elt (i + 1), P.eval p (elt (i + 1)))) in
  match BW.decode ~max_degree:3 ~max_errors:0 points with
  | None -> Alcotest.fail "decode failed"
  | Some f -> Alcotest.(check bool) "recovers" true (P.equal f p)

let test_bw_rejects_too_few_points () =
  Alcotest.check_raises "too few points"
    (Invalid_argument "Berlekamp_welch.decode: too few points for uniqueness")
    (fun () ->
      ignore (BW.decode ~max_degree:3 ~max_errors:1 [ (elt 1, elt 1) ]))

let test_bw_detects_unrecoverable () =
  (* Points from a genuinely high-degree polynomial cannot be explained
     by degree <= 1 with at most 1 error. *)
  let points =
    [ (elt 1, elt 1); (elt 2, elt 4); (elt 3, elt 9); (elt 4, elt 16); (elt 5, elt 37) ]
  in
  (* x^2 over the integers does not match GF arithmetic; these are just
     five scattered values. Check the decoder is honest either way: if it
     returns a polynomial it must satisfy the agreement bound. *)
  match BW.decode_with_support ~max_degree:1 ~max_errors:1 points with
  | None -> ()
  | Some (_, support) ->
      Alcotest.(check bool) "agreement bound" true (List.length support >= 4)

let test_bw_beyond_error_budget_never_lies () =
  (* With more corruptions than max_errors the decoder may fail, but if
     it answers, the answer must satisfy its contract. *)
  let g = Prng.of_int 99 in
  for _ = 1 to 100 do
    let d = 2 and e = 1 in
    let p = P.random g ~degree:d in
    let m = d + 1 + (2 * e) in
    let points = List.init m (fun i -> (elt (i + 1), P.eval p (elt (i + 1)))) in
    let corrupted = corrupt g (e + 1) points in
    match BW.decode_with_support ~max_degree:d ~max_errors:e corrupted with
    | None -> ()
    | Some (f, support) ->
        Alcotest.(check bool) "contract" true
          (BW.P.degree f <= d && List.length support >= m - e)
  done

let suite =
  [
    Alcotest.test_case "linalg known system" `Quick test_linalg_known_system;
    Alcotest.test_case "linalg inconsistent" `Quick test_linalg_inconsistent;
    Alcotest.test_case "linalg underdetermined" `Quick test_linalg_underdetermined;
    Alcotest.test_case "BW exact no errors" `Quick test_bw_exact_when_no_errors;
    Alcotest.test_case "BW rejects too few points" `Quick
      test_bw_rejects_too_few_points;
    Alcotest.test_case "BW detects unrecoverable" `Quick
      test_bw_detects_unrecoverable;
    Alcotest.test_case "BW never lies beyond budget" `Quick
      test_bw_beyond_error_budget_never_lies;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [
        prop_linalg_solves_random_systems;
        prop_homogeneous_kernel;
        prop_bw_decodes_with_errors;
        prop_bw_support;
      ]
