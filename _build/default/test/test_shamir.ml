module F = Gf2k.GF32
module S = Shamir.Make (F)

let prop_reconstruct_from_any_subset =
  QCheck.Test.make ~count:200 ~name:"any t+1 shares reconstruct"
    QCheck.(triple int (int_range 0 4) (int_range 0 100))
    (fun (seed, t, _) ->
      let g = Prng.of_int seed in
      let n = (3 * t) + 1 + Prng.int g 5 in
      let secret = F.random g in
      let shares = S.deal g ~t ~n ~secret in
      let ids = Prng.sample_distinct g (t + 1) n in
      let subset = List.map (fun i -> (i, shares.(i))) ids in
      F.equal (S.reconstruct subset) secret)

let prop_robust_reconstruct =
  QCheck.Test.make ~count:200 ~name:"robust reconstruction through t errors"
    QCheck.(pair int (int_range 1 3))
    (fun (seed, t) ->
      let g = Prng.of_int seed in
      let n = (3 * t) + 1 in
      let secret = F.random g in
      let shares = S.deal g ~t ~n ~secret in
      let errors = Prng.int g (t + 1) in
      let bad = Prng.sample_distinct g errors n in
      List.iter (fun i -> shares.(i) <- F.add shares.(i) (F.random_nonzero g)) bad;
      let all = List.init n (fun i -> (i, shares.(i))) in
      match S.robust_reconstruct ~t all with
      | None -> false
      | Some (v, support) ->
          F.equal v secret
          && List.for_all (fun (i, _) -> not (List.mem i bad)) support)

(* t shares carry no information: for a fixed share pattern held by the
   adversary, every secret is equally likely. We verify the stronger
   exchangeability consequence: the distribution of any single share is
   uniform, and shares of two different secrets have identical marginal
   behaviour (chi-square on a small field). *)
let test_privacy_marginal_uniform () =
  let module F8 = Gf2k.GF8 in
  let module S8 = Shamir.Make (F8) in
  let g = Prng.of_int 77 in
  let buckets = Array.make 256 0 in
  let trials = 25600 in
  let secret = F8.of_int 42 in
  for _ = 1 to trials do
    let shares = S8.deal g ~t:2 ~n:7 ~secret in
    buckets.(F8.hash shares.(3) land 255) <- buckets.(F8.hash shares.(3) land 255) + 1
  done;
  (* Expected 100 per bucket; chi-square with 255 dof: mean 255,
     sd ~ 22.6; 400 is beyond 6 sigma. *)
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. 100.0 in
        acc +. (d *. d /. 100.0))
      0.0 buckets
  in
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.1f reasonable" chi2)
    true (chi2 < 400.0)

let test_joint_independence_of_t_shares () =
  (* With t = 1, any single share is independent of the secret: the pair
     (share_0 given secret s) and (share_0 given secret s') must have the
     same distribution. Compare empirical distributions coarsely. *)
  let module F8 = Gf2k.GF8 in
  let module S8 = Shamir.Make (F8) in
  let sample secret seed =
    let g = Prng.of_int seed in
    let buckets = Array.make 16 0 in
    for _ = 1 to 8000 do
      let shares = S8.deal g ~t:1 ~n:4 ~secret in
      let b = F8.hash shares.(0) land 15 in
      buckets.(b) <- buckets.(b) + 1
    done;
    buckets
  in
  let b1 = sample (F8.of_int 0) 1 and b2 = sample (F8.of_int 255) 2 in
  let chi2 = ref 0.0 in
  Array.iteri
    (fun i c1 ->
      let c2 = b2.(i) in
      let e = float_of_int (c1 + c2) /. 2.0 in
      let d1 = float_of_int c1 -. e and d2 = float_of_int c2 -. e in
      chi2 := !chi2 +. ((d1 *. d1) /. e) +. ((d2 *. d2) /. e))
    b1;
  (* 15 dof; 50 is far beyond any reasonable quantile. *)
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.1f" !chi2)
    true (!chi2 < 50.0)

let test_eval_points_nonzero_distinct () =
  let pts = List.init 20 S.eval_point in
  Alcotest.(check bool) "no zero" true
    (List.for_all (fun p -> not (F.equal p F.zero)) pts);
  Alcotest.(check int) "distinct" 20
    (List.length (List.sort_uniq F.compare pts))

let test_deal_validation () =
  let g = Prng.of_int 1 in
  Alcotest.check_raises "t >= n" (Invalid_argument "Shamir.deal: need t < n")
    (fun () -> ignore (S.deal g ~t:4 ~n:4 ~secret:F.zero))

let test_reconstruct_wrong_share_corrupts () =
  let g = Prng.of_int 3 in
  let secret = F.random g in
  let shares = S.deal g ~t:2 ~n:7 ~secret in
  let subset = [ (0, shares.(0)); (1, F.add shares.(1) F.one); (2, shares.(2)) ] in
  Alcotest.(check bool) "plain reconstruction is not robust" false
    (F.equal (S.reconstruct subset) secret)

let suite =
  [
    Alcotest.test_case "privacy: marginal uniform" `Quick
      test_privacy_marginal_uniform;
    Alcotest.test_case "privacy: share independent of secret" `Quick
      test_joint_independence_of_t_shares;
    Alcotest.test_case "eval points" `Quick test_eval_points_nonzero_distinct;
    Alcotest.test_case "deal validation" `Quick test_deal_validation;
    Alcotest.test_case "plain reconstruct not robust" `Quick
      test_reconstruct_wrong_share_corrupts;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ prop_reconstruct_from_any_subset; prop_robust_reconstruct ]
