let test_mean_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev constant" 0.0 (Stats.stddev [ 5.0; 5.0 ]);
  Alcotest.(check (float 1e-9)) "stddev" 1.0 (Stats.stddev [ 0.0; 2.0 ])

let test_empty_rejected () =
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Stats.mean []));
  Alcotest.check_raises "stddev" (Invalid_argument "Stats.stddev: empty")
    (fun () -> ignore (Stats.stddev []))

let test_histogram () =
  let h = Stats.histogram ~buckets:4 Fun.id [ 0; 1; 2; 3; 4; 5; 8 ] in
  Alcotest.(check (array int)) "counts" [| 3; 2; 1; 1 |] h

let test_chi_square_uniform_is_small () =
  let g = Prng.of_int 1 in
  let xs = List.init 6400 (fun _ -> Prng.int g 16) in
  let h = Stats.histogram ~buckets:16 Fun.id xs in
  let chi2 = Stats.chi_square ~observed:h in
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.1f" chi2)
    true
    (chi2 < Stats.uniform_5sigma_bound ~buckets:16)

let test_chi_square_biased_is_large () =
  (* Heavily skewed distribution must blow past the bound. *)
  let h = Array.make 16 10 in
  h.(0) <- 500;
  Alcotest.(check bool) "detected" true
    (Stats.chi_square ~observed:h > Stats.uniform_5sigma_bound ~buckets:16)

let test_two_sample_same_source () =
  let g = Prng.of_int 2 in
  let sample () =
    Stats.histogram ~buckets:8 Fun.id (List.init 4000 (fun _ -> Prng.int g 8))
  in
  let chi2 = Stats.chi_square_two_sample (sample ()) (sample ()) in
  Alcotest.(check bool)
    (Printf.sprintf "chi2 %.1f" chi2)
    true
    (chi2 < Stats.uniform_5sigma_bound ~buckets:8 *. 2.0)

let test_two_sample_different_sources () =
  let g = Prng.of_int 3 in
  let a =
    Stats.histogram ~buckets:8 Fun.id (List.init 4000 (fun _ -> Prng.int g 8))
  in
  let b =
    Stats.histogram ~buckets:8 Fun.id
      (List.init 4000 (fun _ -> if Prng.bool g then 0 else Prng.int g 8))
  in
  Alcotest.(check bool) "detected" true
    (Stats.chi_square_two_sample a b > 100.0)

let test_validation () =
  Alcotest.check_raises "chi2 one bucket"
    (Invalid_argument "Stats.chi_square: need >= 2 buckets") (fun () ->
      ignore (Stats.chi_square ~observed:[| 5 |]));
  Alcotest.check_raises "chi2 empty"
    (Invalid_argument "Stats.chi_square: no observations") (fun () ->
      ignore (Stats.chi_square ~observed:[| 0; 0 |]));
  Alcotest.check_raises "two-sample mismatch"
    (Invalid_argument "Stats.chi_square_two_sample: length mismatch") (fun () ->
      ignore (Stats.chi_square_two_sample [| 1 |] [| 1; 2 |]))

let test_bounds_sane () =
  Alcotest.(check bool) "5 sigma bound grows" true
    (Stats.uniform_5sigma_bound ~buckets:256
    > Stats.uniform_5sigma_bound ~buckets:16);
  Alcotest.(check int) "bit balance 10000" 250 (Stats.bit_balance_bound ~trials:10000)

let suite =
  [
    Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "chi2 uniform small" `Quick test_chi_square_uniform_is_small;
    Alcotest.test_case "chi2 biased large" `Quick test_chi_square_biased_is_large;
    Alcotest.test_case "two-sample same" `Quick test_two_sample_same_source;
    Alcotest.test_case "two-sample different" `Quick
      test_two_sample_different_sources;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "bounds sane" `Quick test_bounds_sane;
  ]
