module F = Gf2k.GF16
module V = Vss.Make (F)
module O = Coin_oracle.Make (F)

let n = 7
let t = 2

let test_honest_accepts () =
  let g = Prng.of_int 1 in
  for _ = 1 to 50 do
    let alpha = V.honest_dealing g ~n ~t ~secret:(F.random g) in
    let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
    let r = F.random g in
    Alcotest.(check bool) "accept" true
      (V.run ~n ~t ~alpha ~beta ~r () = V.Accept)
  done

let test_cheater_rejected_whp () =
  let g = Prng.of_int 2 in
  let accepts = ref 0 in
  let trials = 500 in
  for _ = 1 to trials do
    let alpha = V.cheating_dealing g ~n ~t ~degree:(t + 1) in
    let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
    let r = F.random g in
    if V.run ~n ~t ~alpha ~beta ~r () = V.Accept then incr accepts
  done;
  (* Bound is 1/p = 2^-16; 500 trials should essentially never accept. *)
  Alcotest.(check int) "never accepted" 0 !accepts

(* Lemma 1 with equality: the targeted cheater passes exactly when the
   coin hits its guess. *)
let test_targeted_cheater_boundary () =
  let g = Prng.of_int 3 in
  for _ = 1 to 50 do
    let guess = F.random_nonzero g in
    let alpha, beta = V.targeted_cheating_dealing g ~n ~t ~guess in
    Alcotest.(check bool) "accepts on guessed coin" true
      (V.run ~n ~t ~alpha ~beta ~r:guess () = V.Accept);
    let other = F.random g in
    if not (F.equal other guess) then
      Alcotest.(check bool) "rejects on other coin" true
        (V.run ~n ~t ~alpha ~beta ~r:other () = V.Reject)
  done

(* Empirical Lemma 1 over a tiny field: acceptance rate ~ 1/p. *)
let test_lemma1_rate_small_field () =
  let module F4 = Gf2k.Make (struct let k = 4 end) in
  let module V4 = Vss.Make (F4) in
  let g = Prng.of_int 4 in
  let trials = 4000 in
  let accepts = ref 0 in
  for _ = 1 to trials do
    let guess = F4.random_nonzero g in
    let alpha, beta = V4.targeted_cheating_dealing g ~n ~t ~guess in
    let r = F4.random g in
    if V4.run ~n ~t ~alpha ~beta ~r () = V4.Accept then incr accepts
  done;
  (* Expected rate 1/16 = 250/4000; sigma = sqrt(4000 * (1/16) * (15/16))
     ~ 15.3. Accept within 5 sigma. *)
  let dev = abs (!accepts - 250) in
  Alcotest.(check bool)
    (Printf.sprintf "%d accepts (expected ~250)" !accepts)
    true (dev < 77)

let test_silent_player_forces_reject_strict () =
  let g = Prng.of_int 5 in
  let alpha = V.honest_dealing g ~n ~t ~secret:(F.random g) in
  let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
  let behavior i = if i = 3 then V.Silent else V.Honest in
  Alcotest.(check bool) "strict rejects" true
    (V.run ~player_behavior:behavior ~n ~t ~alpha ~beta ~r:(F.random g) ()
    = V.Reject);
  Alcotest.(check bool) "robust accepts" true
    (V.run_robust ~player_behavior:behavior ~n ~t ~alpha ~beta ~r:(F.random g) ()
    = V.Accept)

let test_lying_players_robust () =
  let g = Prng.of_int 6 in
  for _ = 1 to 30 do
    let alpha = V.honest_dealing g ~n ~t ~secret:(F.random g) in
    let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
    let liars = Prng.sample_distinct g t n in
    let behavior i =
      if List.mem i liars then V.Broadcast (F.random g) else V.Honest
    in
    Alcotest.(check bool) "robust tolerates t liars" true
      (V.run_robust ~player_behavior:behavior ~n ~t ~alpha ~beta ~r:(F.random g)
         ()
      = V.Accept)
  done

let test_robust_still_rejects_cheater () =
  let g = Prng.of_int 7 in
  let accepts = ref 0 in
  for _ = 1 to 300 do
    (* Degree t+1+2e... any degree above t but such that not even n-t
       points can sit on a degree-t polynomial: degree t+1 works since
       n - t = 5 > t + 1 = 3 points pin it. *)
    let alpha = V.cheating_dealing g ~n ~t ~degree:(t + 1) in
    let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
    if V.run_robust ~n ~t ~alpha ~beta ~r:(F.random g) () = V.Accept then
      incr accepts
  done;
  Alcotest.(check int) "robust rejects cheater" 0 !accepts

let test_combine_is_powers () =
  let g = Prng.of_int 8 in
  for _ = 1 to 100 do
    let m = 1 + Prng.int g 10 in
    let shares = Array.init m (fun _ -> F.random g) in
    let r = F.random g in
    let expected =
      Array.to_list shares
      |> List.mapi (fun j a -> F.mul (F.pow r (j + 1)) a)
      |> List.fold_left F.add F.zero
    in
    Alcotest.(check bool) "combine = sum r^j a_j" true
      (F.equal (V.combine ~r shares) expected)
  done

let test_batch_honest_accepts () =
  let g = Prng.of_int 9 in
  for _ = 1 to 30 do
    let m = 1 + Prng.int g 20 in
    let secrets = Array.init m (fun _ -> F.random g) in
    let shares = V.batch_honest_dealing g ~n ~t ~secrets in
    Alcotest.(check bool) "accept" true
      (V.run_batch ~n ~t ~shares ~r:(F.random g) () = V.Accept)
  done

let test_batch_cheater_rejected () =
  let g = Prng.of_int 10 in
  let accepts = ref 0 in
  for _ = 1 to 300 do
    let m = 8 in
    let bad = Prng.sample_distinct g (1 + Prng.int g 3) m in
    let shares = V.batch_cheating_dealing g ~n ~t ~m ~bad in
    if V.run_batch ~n ~t ~shares ~r:(F.random g) () = V.Accept then
      incr accepts
  done;
  (* Bound m/p = 8/65536; essentially never in 300 trials. *)
  Alcotest.(check int) "rejected" 0 !accepts

(* Lemma 3 with equality: the targeted batch cheater passes exactly on
   its m-element acceptance set. *)
let test_batch_targeted_boundary () =
  let g = Prng.of_int 11 in
  for _ = 1 to 20 do
    let m = 2 + Prng.int g 5 in
    let roots =
      Array.of_list
        (List.map
           (fun i -> F.of_int (i + 1))
           (Prng.sample_distinct g m ((1 lsl 16) - 1)))
    in
    let shares = V.batch_targeted_cheating_dealing g ~n ~t ~roots in
    (* Accepts at r = 0 and at the first m-1 roots. *)
    Alcotest.(check bool) "accepts at 0" true
      (V.run_batch ~n ~t ~shares ~r:F.zero () = V.Accept);
    Array.iteri
      (fun i root ->
        if i < m - 1 then
          Alcotest.(check bool) "accepts at root" true
            (V.run_batch ~n ~t ~shares ~r:root () = V.Accept))
      roots;
    (* The last root is NOT in the acceptance set. *)
    Alcotest.(check bool) "rejects at non-root" true
      (V.run_batch ~n ~t ~shares ~r:roots.(m - 1) () = V.Reject)
  done

(* Empirical Lemma 3 rate on a tiny field: acceptance ~ m/p. *)
let test_lemma3_rate_small_field () =
  let module F6 = Gf2k.Make (struct let k = 6 end) in
  let module V6 = Vss.Make (F6) in
  let g = Prng.of_int 12 in
  let m = 4 in
  let trials = 4000 in
  let accepts = ref 0 in
  for _ = 1 to trials do
    let roots =
      Array.of_list
        (List.map (fun i -> F6.of_int (i + 1)) (Prng.sample_distinct g m 63))
    in
    let shares = V6.batch_targeted_cheating_dealing g ~n ~t ~roots in
    if V6.run_batch ~n ~t ~shares ~r:(F6.random g) () = V6.Accept then
      incr accepts
  done;
  (* Expected rate m/p = 4/64 = 1/16 -> 250; sigma ~ 15.3; 5 sigma. *)
  let dev = abs (!accepts - 250) in
  Alcotest.(check bool)
    (Printf.sprintf "%d accepts (expected ~250)" !accepts)
    true (dev < 77)

let test_batch_robust_tolerates_liars () =
  let g = Prng.of_int 13 in
  for _ = 1 to 20 do
    let secrets = Array.init 6 (fun _ -> F.random g) in
    let shares = V.batch_honest_dealing g ~n ~t ~secrets in
    let liars = Prng.sample_distinct g t n in
    let behavior i =
      if List.mem i liars then V.Broadcast (F.random g) else V.Honest
    in
    Alcotest.(check bool) "tolerates" true
      (V.run_batch_robust ~player_behavior:behavior ~n ~t ~shares
         ~r:(F.random g) ()
      = V.Accept)
  done

(* Lemma 2 / Lemma 4 cost shape: batch uses one check interpolation per
   player regardless of M, single uses one per secret. *)
let test_batch_amortizes_interpolations () =
  let g = Prng.of_int 14 in
  let m = 16 in
  let secrets = Array.init m (fun _ -> F.random g) in
  let shares = V.batch_honest_dealing g ~n ~t ~secrets in
  let _, batch_cost =
    Metrics.with_counting (fun () ->
        ignore (V.run_batch ~n ~t ~shares ~r:(F.random g) ()))
  in
  Alcotest.(check int) "batch: n interpolations total" n
    batch_cost.Metrics.interpolations;
  Alcotest.(check int) "batch: n broadcast messages" n batch_cost.Metrics.messages;
  let _, single_cost =
    Metrics.with_counting (fun () ->
        Array.iter
          (fun secret ->
            let alpha = V.honest_dealing g ~n ~t ~secret in
            let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
            ignore (V.run ~n ~t ~alpha ~beta ~r:(F.random g) ()))
          secrets)
  in
  Alcotest.(check int) "single: m*n interpolations" (m * n)
    single_cost.Metrics.interpolations;
  Alcotest.(check bool) "batch mults per player ~ M" true
    (batch_cost.Metrics.field_mults >= n * m)

let test_batch_on_subset () =
  let g = Prng.of_int 21 in
  for _ = 1 to 20 do
    let secrets = Array.init 6 (fun _ -> F.random g) in
    let shares = V.batch_honest_dealing g ~n ~t ~secrets in
    let players = Prng.sample_distinct g (t + 2) n in
    (* Honest dealing: any subset fits. *)
    Alcotest.(check bool) "subset accepts" true
      (V.run_batch_on ~n ~t ~players ~shares ~r:(F.random g) () = V.Accept);
    (* A silent player inside the subset forces reject; outside it is
       irrelevant. *)
    let inside = List.hd players in
    let outside =
      List.find (fun i -> not (List.mem i players)) (List.init n Fun.id)
    in
    let silent who i = if i = who then V.Silent else V.Honest in
    Alcotest.(check bool) "silent inside rejects" true
      (V.run_batch_on ~player_behavior:(silent inside) ~n ~t ~players ~shares
         ~r:(F.random g) ()
      = V.Reject);
    Alcotest.(check bool) "silent outside ignored" true
      (V.run_batch_on ~player_behavior:(silent outside) ~n ~t ~players ~shares
         ~r:(F.random g) ()
      = V.Accept)
  done

let test_batch_on_detects_subset_inconsistency () =
  (* Shares on a degree-(t+1) polynomial: any subset of >= t+2 points
     betrays it (with the usual 1/p-ish failure probability folded into
     the batch combination). *)
  let g = Prng.of_int 22 in
  let rejects = ref 0 in
  for _ = 1 to 100 do
    let shares = V.batch_cheating_dealing g ~n ~t ~m:4 ~bad:[ 1 ] in
    let players = Prng.sample_distinct g (t + 2) n in
    if
      V.run_batch_on ~n ~t ~players ~shares ~r:(F.random g) () = V.Reject
    then incr rejects
  done;
  Alcotest.(check int) "all rejected" 100 !rejects

let test_batch_on_validation () =
  let g = Prng.of_int 23 in
  let shares = V.batch_honest_dealing g ~n ~t ~secrets:[| F.one |] in
  let r = F.random g in
  Alcotest.check_raises "too few"
    (Invalid_argument "Vss.run_batch_on: need at least t+1 players") (fun () ->
      ignore (V.run_batch_on ~n ~t ~players:[ 0; 1 ] ~shares ~r ()));
  Alcotest.check_raises "dup"
    (Invalid_argument "Vss.run_batch_on: duplicate player ids") (fun () ->
      ignore (V.run_batch_on ~n ~t ~players:[ 0; 0; 1 ] ~shares ~r ()))

let test_coin_oracle_costs () =
  let g = Prng.of_int 15 in
  let ideal = O.ideal (Prng.split g) in
  let _, free = Metrics.with_counting (fun () -> ignore (O.draw ideal)) in
  Alcotest.(check int) "ideal draw free" 0 free.Metrics.messages;
  Alcotest.(check int) "ideal draw no interp" 0 free.Metrics.interpolations;
  let shared = O.simulated_shared (Prng.split g) ~n ~t in
  let _, cost = Metrics.with_counting (fun () -> ignore (O.draw shared)) in
  Alcotest.(check int) "shared: n messages" n cost.Metrics.messages;
  Alcotest.(check int) "shared: n reconstructions" n cost.Metrics.interpolations;
  Alcotest.(check int) "shared: 1 round" 1 cost.Metrics.rounds

let test_coin_oracle_uniform () =
  let shared = O.simulated_shared (Prng.of_int 16) ~n ~t in
  let buckets = Array.make 16 0 in
  for _ = 1 to 4800 do
    let v = O.draw shared in
    buckets.(F.hash v land 15) <- buckets.(F.hash v land 15) + 1
  done;
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. 300.0 in
        acc +. (d *. d /. 300.0))
      0.0 buckets
  in
  Alcotest.(check bool) (Printf.sprintf "chi2 %.1f" chi2) true (chi2 < 60.0)

let suite =
  [
    Alcotest.test_case "honest accepts" `Quick test_honest_accepts;
    Alcotest.test_case "cheater rejected whp" `Quick test_cheater_rejected_whp;
    Alcotest.test_case "targeted cheater boundary (Lemma 1)" `Quick
      test_targeted_cheater_boundary;
    Alcotest.test_case "Lemma 1 rate on small field" `Quick
      test_lemma1_rate_small_field;
    Alcotest.test_case "silent player: strict vs robust" `Quick
      test_silent_player_forces_reject_strict;
    Alcotest.test_case "robust tolerates t liars" `Quick test_lying_players_robust;
    Alcotest.test_case "robust still rejects cheater" `Quick
      test_robust_still_rejects_cheater;
    Alcotest.test_case "combine is power sum" `Quick test_combine_is_powers;
    Alcotest.test_case "batch honest accepts" `Quick test_batch_honest_accepts;
    Alcotest.test_case "batch cheater rejected" `Quick test_batch_cheater_rejected;
    Alcotest.test_case "batch targeted boundary (Lemma 3)" `Quick
      test_batch_targeted_boundary;
    Alcotest.test_case "Lemma 3 rate on small field" `Quick
      test_lemma3_rate_small_field;
    Alcotest.test_case "batch robust tolerates liars" `Quick
      test_batch_robust_tolerates_liars;
    Alcotest.test_case "batch amortizes interpolations" `Quick
      test_batch_amortizes_interpolations;
    Alcotest.test_case "Batch-VSS(l) subset" `Quick test_batch_on_subset;
    Alcotest.test_case "Batch-VSS(l) detects inconsistency" `Quick
      test_batch_on_detects_subset_inconsistency;
    Alcotest.test_case "Batch-VSS(l) validation" `Quick test_batch_on_validation;
    Alcotest.test_case "coin oracle costs" `Quick test_coin_oracle_costs;
    Alcotest.test_case "coin oracle uniform" `Quick test_coin_oracle_uniform;
  ]
