module F = Gf2k.GF16
module CC = Cut_and_choose_vss.Make (F)

let n = 7
let t = 2

let test_cc_honest_accepts () =
  let g = Prng.of_int 1 in
  for _ = 1 to 20 do
    let d = CC.honest_dealing g ~n ~t ~rounds:8 ~secret:(F.random g) in
    let challenges = Array.init 8 (fun _ -> Prng.bool g) in
    Alcotest.(check bool) "accept" true (CC.run ~n ~t ~challenges d = CC.Accept)
  done

let test_cc_cheater_rate_half_per_round () =
  let g = Prng.of_int 2 in
  (* One challenge round: the optimal cheater survives iff the challenge
     opens the mask alone — probability exactly 1/2. *)
  let trials = 2000 in
  let accepts = ref 0 in
  for _ = 1 to trials do
    let d = CC.cheating_dealing g ~n ~t ~rounds:1 in
    let challenges = [| Prng.bool g |] in
    if CC.run ~n ~t ~challenges d = CC.Accept then incr accepts
  done;
  let dev = abs (!accepts - 1000) in
  (* sigma ~ 22.4; allow 5 sigma. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d/2000 accepts" !accepts)
    true (dev < 112)

let test_cc_cheater_caught_with_many_rounds () =
  let g = Prng.of_int 3 in
  let accepts = ref 0 in
  for _ = 1 to 200 do
    let d = CC.cheating_dealing g ~n ~t ~rounds:16 in
    let challenges = Array.init 16 (fun _ -> Prng.bool g) in
    if CC.run ~n ~t ~challenges d = CC.Accept then incr accepts
  done;
  (* Escape probability 2^-16 per trial. *)
  Alcotest.(check int) "caught" 0 !accepts

let test_cc_interpolation_cost_scales_with_rounds () =
  let g = Prng.of_int 4 in
  let cost rounds =
    let d = CC.honest_dealing g ~n ~t ~rounds ~secret:(F.random g) in
    let challenges = Array.init rounds (fun _ -> Prng.bool g) in
    let _, snap =
      Metrics.with_counting (fun () -> ignore (CC.run ~n ~t ~challenges d))
    in
    snap.Metrics.interpolations
  in
  Alcotest.(check int) "1 round: n interps" n (cost 1);
  Alcotest.(check int) "8 rounds: 8n interps" (8 * n) (cost 8)

let test_feldman_parameters () =
  Alcotest.(check bool) "q prime" true (Zp.is_prime Feldman_vss.q);
  Alcotest.(check bool) "p = 2q+1 prime" true (Zp.is_prime Feldman_vss.p);
  Alcotest.(check int) "p = 2q+1" Feldman_vss.p ((2 * Feldman_vss.q) + 1);
  (* The generator has order q: g^q = 1 and g <> 1. *)
  let module Fp = Zp.Make (struct let p = Feldman_vss.p end) in
  Alcotest.(check bool) "g^q = 1" true
    (Fp.equal (Fp.pow (Fp.of_int Feldman_vss.generator) Feldman_vss.q) Fp.one);
  Alcotest.(check bool) "g <> 1" false (Feldman_vss.generator = 1)

let test_feldman_honest_accepts () =
  let g = Prng.of_int 5 in
  for _ = 1 to 10 do
    let d =
      Feldman_vss.honest_dealing g ~n ~t ~secret:(Feldman_vss.Fq.random g)
    in
    Alcotest.(check bool) "accept" true
      (Feldman_vss.run ~n ~t d = Feldman_vss.Accept)
  done

let test_feldman_catches_corruption_deterministically () =
  let g = Prng.of_int 6 in
  for corrupt = 0 to n - 1 do
    let d = Feldman_vss.cheating_dealing g ~n ~t ~corrupt in
    Alcotest.(check bool) "reject" true
      (Feldman_vss.run ~n ~t d = Feldman_vss.Reject)
  done

let test_feldman_verify_share_direct () =
  let g = Prng.of_int 7 in
  let d = Feldman_vss.honest_dealing g ~n ~t ~secret:(Feldman_vss.Fq.random g) in
  for i = 0 to n - 1 do
    Alcotest.(check bool) "own share verifies" true
      (Feldman_vss.verify_share ~t ~commitments:d.Feldman_vss.commitments
         ~player:i ~share:d.Feldman_vss.shares.(i))
  done;
  Alcotest.(check bool) "wrong share fails" false
    (Feldman_vss.verify_share ~t ~commitments:d.Feldman_vss.commitments
       ~player:0
       ~share:(Feldman_vss.Fq.add d.Feldman_vss.shares.(0) Feldman_vss.Fq.one))

let test_feldman_cost_has_exponentiations () =
  let g = Prng.of_int 8 in
  let d = Feldman_vss.honest_dealing g ~n ~t ~secret:(Feldman_vss.Fq.random g) in
  let _, snap =
    Metrics.with_counting (fun () -> ignore (Feldman_vss.run ~n ~t d))
  in
  (* Each player: t exponentiations with ~30-bit exponents plus one for
     the left side — hundreds of multiplications; far more than the
     paper's VSS needs. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d mults" snap.Metrics.field_mults)
    true
    (snap.Metrics.field_mults > n * t * 20);
  Alcotest.(check int) "no interpolations" 0 snap.Metrics.interpolations

let suite =
  [
    Alcotest.test_case "cut-and-choose honest accepts" `Quick
      test_cc_honest_accepts;
    Alcotest.test_case "cut-and-choose 1/2 per round" `Quick
      test_cc_cheater_rate_half_per_round;
    Alcotest.test_case "cut-and-choose catches with rounds" `Quick
      test_cc_cheater_caught_with_many_rounds;
    Alcotest.test_case "cut-and-choose interpolation cost" `Quick
      test_cc_interpolation_cost_scales_with_rounds;
    Alcotest.test_case "feldman parameters" `Quick test_feldman_parameters;
    Alcotest.test_case "feldman honest accepts" `Quick test_feldman_honest_accepts;
    Alcotest.test_case "feldman catches corruption" `Quick
      test_feldman_catches_corruption_deterministically;
    Alcotest.test_case "feldman verify share" `Quick test_feldman_verify_share_direct;
    Alcotest.test_case "feldman cost profile" `Quick
      test_feldman_cost_has_exponentiations;
  ]
