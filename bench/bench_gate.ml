(* CI regression gate over the bench trajectory.

   Reads two BENCH_*.json files (the committed baseline and a freshly
   measured run), matches entries by (op, field, n, t, m), and fails
   when any deterministic op count regresses beyond the tolerance band,
   a plan path's allocated-words-per-op leaves its own (tighter) band,
   or an entry disappears. Wall-clock ns are reported for context but
   never gated — they move with the runner; op counts and steady-state
   allocation do not.

   The image has no JSON library, so this carries a small
   recursive-descent parser for the subset the bench schema uses
   (objects, arrays, strings, numbers, booleans, null). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* --- parser ------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> malformed "expected %c at byte %d, found %c" ch c.pos x
  | None -> malformed "expected %c at byte %d, found end of input" ch c.pos

let parse_literal c word value =
  String.iter (fun ch -> expect c ch) word;
  value

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> malformed "unterminated string at byte %d" c.pos
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some (('"' | '\\' | '/') as ch) -> advance c; Buffer.add_char buf ch; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then
              malformed "truncated \\u escape at byte %d" c.pos;
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            let code = int_of_string ("0x" ^ hex) in
            (* The bench files are ASCII; anything beyond is replaced. *)
            Buffer.add_char buf
              (if code < 0x80 then Char.chr code else '?');
            go ()
        | _ -> malformed "bad escape at byte %d" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> malformed "bad number %S at byte %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '{' -> parse_obj c
  | Some '[' -> parse_arr c
  | Some '"' -> Str (parse_string c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ('0' .. '9' | '-') -> parse_number c
  | Some ch -> malformed "unexpected %c at byte %d" ch c.pos
  | None -> malformed "unexpected end of input"

and parse_obj c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then (advance c; Obj [])
  else begin
    let rec members acc =
      skip_ws c;
      let key = parse_string c in
      skip_ws c;
      expect c ':';
      let value = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' -> advance c; members ((key, value) :: acc)
      | Some '}' -> advance c; Obj (List.rev ((key, value) :: acc))
      | _ -> malformed "expected , or } at byte %d" c.pos
    in
    members []
  end

and parse_arr c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then (advance c; Arr [])
  else begin
    let rec elements acc =
      let value = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' -> advance c; elements (value :: acc)
      | Some ']' -> advance c; Arr (List.rev (value :: acc))
      | _ -> malformed "expected , or ] at byte %d" c.pos
    in
    elements []
  end

let parse src =
  let c = { src; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length src then
    malformed "trailing garbage at byte %d" c.pos;
  v

(* --- accessors ---------------------------------------------------- *)

let member key = function
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> malformed "missing field %S" key)
  | _ -> malformed "field %S looked up on a non-object" key

let to_str = function Str s -> s | _ -> malformed "expected a string"
let to_num = function Num f -> f | _ -> malformed "expected a number"
let to_int j = int_of_float (to_num j)
let to_arr = function Arr l -> l | _ -> malformed "expected an array"

(* --- bench schema -------------------------------------------------- *)

type entry = {
  op : string;
  field : string;
  n : int;
  t : int;
  m : int;
  naive_ns : float;
  naive_mults : int;
  plan_ns : float;
  plan_mults : int;
  plan_alloc_w : float option;
      (* allocated words per op; None in schema-1 files, which predate
         allocation tracking *)
}

type file = { mode : string; entries : entry list }

let member_opt key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let entry_of_json j =
  {
    op = to_str (member "op" j);
    field = to_str (member "field" j);
    n = to_int (member "n" j);
    t = to_int (member "t" j);
    m = to_int (member "m" j);
    naive_ns = to_num (member "naive_ns_per_op" j);
    naive_mults = to_int (member "naive_mults_per_op" j);
    plan_ns = to_num (member "plan_ns_per_op" j);
    plan_mults = to_int (member "plan_mults_per_op" j);
    plan_alloc_w = Option.map to_num (member_opt "plan_alloc_w_per_op" j);
  }

(* Both the original PR-3 schema and the PR-8 one (which adds the
   alloc_w columns) parse; alloc gating simply disengages against a
   schema-1 baseline. *)
let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let j = parse src in
  let schema = to_str (member "schema" j) in
  if schema <> "dprbg-bench-pr3/1" && schema <> "dprbg-bench/2" then
    malformed "%s: unknown schema %S" path schema;
  {
    mode = to_str (member "mode" j);
    entries = List.map entry_of_json (to_arr (member "entries" j));
  }

let key e = (e.op, e.field, e.n, e.t, e.m)

let key_str (op, field, n, t, m) =
  Printf.sprintf "%s %s n=%d t=%d M=%d" op field n t m

(* --- gate ---------------------------------------------------------- *)

(* An op count regresses when fresh > base * (1 + tolerance). Exact
   counters, so improvements and sub-tolerance noise (there is none:
   the counts are deterministic) both pass. *)
let regressed ~tolerance ~base ~fresh =
  float_of_int fresh > float_of_int base *. (1. +. tolerance)

let delta_pct ~base ~fresh =
  if base = 0 then if fresh = 0 then 0. else infinity
  else 100. *. (float_of_int fresh -. float_of_int base) /. float_of_int base

(* Allocation band: allocated words per op are deterministic up to
   cache-warm effects, but near-zero entries (the arena paths) would
   turn a few stray words into an infinite relative delta, so the band
   is relative tolerance plus a small absolute slack. *)
let alloc_slack_w = 16.

let alloc_regressed ~alloc_tolerance ~base ~fresh =
  fresh > (base *. (1. +. alloc_tolerance)) +. alloc_slack_w

(* Prints a markdown delta table (for $GITHUB_STEP_SUMMARY) and returns
   true iff the fresh run passes the gate against the baseline. *)
let run ~tolerance ?(alloc_tolerance = 0.10) ~baseline_path ~fresh_path () =
  let baseline = read_file baseline_path in
  let fresh = read_file fresh_path in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  if baseline.mode <> fresh.mode then
    fail "mode mismatch: baseline is %S, fresh is %S (compare like with like)"
      baseline.mode fresh.mode;
  Printf.printf
    "## Bench gate: %s vs %s (mode %s, tolerance +%.0f%%, alloc +%.0f%%)\n\n"
    fresh_path baseline_path baseline.mode (100. *. tolerance)
    (100. *. alloc_tolerance);
  Printf.printf
    "| op | params | plan mults | Δ | naive mults | Δ | plan alloc w/op | \
     plan ns/op | status |\n";
  Printf.printf "|---|---|---|---|---|---|---|---|---|\n";
  let pp_alloc = function Some w -> Printf.sprintf "%.0f" w | None -> "—" in
  List.iter
    (fun b ->
      match List.find_opt (fun f -> key f = key b) fresh.entries with
      | None ->
          fail "entry disappeared: %s" (key_str (key b));
          Printf.printf
            "| %s | n=%d t=%d M=%d | %d | — | %d | — | — | — | MISSING |\n"
            b.op b.n b.t b.m b.plan_mults b.naive_mults
      | Some f ->
          let plan_bad =
            regressed ~tolerance ~base:b.plan_mults ~fresh:f.plan_mults
          in
          let naive_bad =
            regressed ~tolerance ~base:b.naive_mults ~fresh:f.naive_mults
          in
          let alloc_bad =
            match (b.plan_alloc_w, f.plan_alloc_w) with
            | Some base, Some fresh ->
                alloc_regressed ~alloc_tolerance ~base ~fresh
            | _ -> false
          in
          if plan_bad then
            fail "%s: plan mults regressed %d -> %d (+%.1f%%)"
              (key_str (key b)) b.plan_mults f.plan_mults
              (delta_pct ~base:b.plan_mults ~fresh:f.plan_mults);
          if naive_bad then
            fail "%s: naive mults regressed %d -> %d (+%.1f%%)"
              (key_str (key b)) b.naive_mults f.naive_mults
              (delta_pct ~base:b.naive_mults ~fresh:f.naive_mults);
          if alloc_bad then
            fail "%s: plan allocations regressed %s -> %s words/op"
              (key_str (key b))
              (pp_alloc b.plan_alloc_w) (pp_alloc f.plan_alloc_w);
          Printf.printf
            "| %s | n=%d t=%d M=%d | %d → %d | %+.1f%% | %d → %d | %+.1f%% | \
             %s → %s | %.0f → %.0f | %s |\n"
            b.op b.n b.t b.m b.plan_mults f.plan_mults
            (delta_pct ~base:b.plan_mults ~fresh:f.plan_mults)
            b.naive_mults f.naive_mults
            (delta_pct ~base:b.naive_mults ~fresh:f.naive_mults)
            (pp_alloc b.plan_alloc_w) (pp_alloc f.plan_alloc_w)
            b.plan_ns f.plan_ns
            (if plan_bad || naive_bad || alloc_bad then "**FAIL**" else "ok"))
    baseline.entries;
  List.iter
    (fun f ->
      if not (List.exists (fun b -> key b = key f) baseline.entries) then
        Printf.printf
          "| %s | n=%d t=%d M=%d | %d (new) | — | %d (new) | — | %s | \
           %.0f | new |\n"
          f.op f.n f.t f.m f.plan_mults f.naive_mults (pp_alloc f.plan_alloc_w)
          f.plan_ns)
    fresh.entries;
  Printf.printf "\n";
  match List.rev !failures with
  | [] ->
      Printf.printf "Gate passed: no op-count regression beyond +%.0f%%.\n"
        (100. *. tolerance);
      true
  | fs ->
      List.iter (fun s -> Printf.printf "- **GATE FAILURE**: %s\n" s) fs;
      false
