(* Machine-readable benchmark trajectory for the PR-3 kernels.

   Emits BENCH_pr3.json: for each hot operation, wall-clock ns/op and
   Metrics field-mult counts for the pre-PR naive path (untabled
   GF(2^16) multiplication, per-call Lagrange/Horner setup) and the
   plan-based path (tabled GF16, precomputed Grid kernels), plus the
   speedup ratio. Every section first checks that the two paths compute
   exactly the same field elements / verdicts; any divergence makes the
   run exit non-zero, so CI can gate on it. *)

module F = Gf2k.GF16
module FU = Gf2k.Make_untabled (struct
  let k = 16
end)

module S = Shamir.Make (F)
module SU = Shamir.Make (FU)
module G = S.G

type entry = {
  op : string;
  field : string;
  n : int;
  t : int;
  m : int; (* batch size, 1 when not batched *)
  naive_ns : float;
  naive_mults : int;
  naive_alloc_w : float; (* allocated words per op, Gc.allocated_bytes *)
  plan_ns : float;
  plan_mults : int;
  plan_alloc_w : float;
  delta_ns : float; (* median paired block delta, plan - naive *)
}

let divergences : string list ref = ref []

let check_same label ok =
  if not ok then divergences := label :: !divergences

(* CPU-clock timing; the op is warmed once so table/cache setup costs
   (the point of the plans) are visible only in the `make`-cost entry,
   not folded into steady-state per-op numbers. *)
let reps = 7

let block_ns iters f =
  let t0 = Sys.time () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  ((Sys.time () -. t0) *. 1e9) /. float_of_int iters

(* Paired, interleaved min-of-[reps] blocks. Timing the two paths in
   alternating blocks and keeping each path's best block cancels clock
   drift (frequency scaling, migration) that a single
   naive-then-plan pass folds straight into the reported delta — the
   ledger-overhead budget is tighter than that drift. Alongside the
   per-path minima this returns the {e median} of the per-pair block
   deltas: adjacent blocks share thermal/frequency state, so the pair
   delta is a far lower-variance overhead estimate than differencing
   the two minima. *)
let time_pair iters f g =
  ignore (f ());
  ignore (g ());
  let best_f = ref infinity and best_g = ref infinity in
  let deltas = Array.make reps 0.0 in
  for r = 0 to reps - 1 do
    let df = block_ns iters f in
    let dg = block_ns iters g in
    if df < !best_f then best_f := df;
    if dg < !best_g then best_g := dg;
    deltas.(r) <- dg -. df
  done;
  Array.sort compare deltas;
  (!best_f, !best_g, deltas.(reps / 2))

let mults_of f =
  let _, s = Metrics.with_counting f in
  s.Metrics.field_mults

(* Allocated words per op: exact allocation accounting (minor + major,
   [Gc.allocated_bytes] deltas), normalized per iteration. The op is
   warmed first so one-time table/cache fills are not charged to the
   steady state the zero-alloc paths are gated on. *)
let alloc_words_of iters f =
  ignore (f ());
  let words_per_byte = 1.0 /. float_of_int (Sys.word_size / 8) in
  let before = Gc.allocated_bytes () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  (Gc.allocated_bytes () -. before) *. words_per_byte /. float_of_int iters

let measure ~op ~field ~n ~t ~m ~iters ~naive ~plan =
  let naive_ns, plan_ns, delta_ns = time_pair iters naive plan in
  let alloc_iters = min iters 1000 in
  {
    op;
    field;
    n;
    t;
    m;
    naive_ns;
    naive_mults = mults_of naive;
    naive_alloc_w = alloc_words_of alloc_iters naive;
    plan_ns;
    plan_mults = mults_of plan;
    plan_alloc_w = alloc_words_of alloc_iters plan;
    delta_ns;
  }

(* Mirror a tabled-GF16 element into the untabled twin field (same
   modulus, so reprs are directly comparable). *)
let to_u x = FU.of_repr (F.repr x)
let same x u = F.repr x = FU.repr u

(* --- ops ---------------------------------------------------------- *)

(* Batch-VSS verification (Fig. 3 step 4): one player's strict degree
   check over the n broadcast gammas. Naive: rebuild the full Lagrange
   interpolation from a (point, value) list and test its degree. Plan:
   dot the cached extension rows. *)
let batch_vss_verify ~n ~t ~m ~iters =
  let g = Prng.of_int 1031 in
  let secrets = Array.init m (fun _ -> F.random g) in
  let plan = S.grid ~n ~t in
  let per_secret = Array.map (fun secret -> S.deal_with plan g ~secret) secrets in
  let r = F.random g in
  let module V = Vss.Make (F) in
  let gammas =
    Array.init n (fun i ->
        V.combine ~r (Array.map (fun shares -> shares.(i)) per_secret))
  in
  let gammas_u = Array.map to_u gammas in
  let points_u =
    List.init n (fun i -> (FU.of_int (i + 1), gammas_u.(i)))
  in
  let naive () = SU.P.fits_degree points_u ~max_degree:t in
  let plan_op () = G.fits plan gammas in
  check_same "batch_vss_verify: verdicts diverge" (naive () = plan_op ());
  check_same "batch_vss_verify: verdict is Accept" (plan_op ());
  measure ~op:"batch_vss_verify" ~field:"GF(2^16)" ~n ~t ~m ~iters
    ~naive ~plan:plan_op

(* Dealing one secret to the n grid points. Naive: fresh Horner
   evaluation per point over untabled multiplication. Plan: the cached
   transposed-Vandermonde table over tabled multiplication. Identical
   PRNG draw order, so share vectors must match repr-for-repr. *)
let deal ~n ~t ~iters =
  let plan = S.grid ~n ~t in
  let seed = 2063 in
  let shares = S.deal_with plan (Prng.of_int seed) ~secret:(F.random (Prng.of_int 7)) in
  let shares_u =
    SU.deal_naive (Prng.of_int seed) ~t ~n ~secret:(FU.random (Prng.of_int 7))
  in
  check_same "deal: share vectors diverge"
    (Array.for_all2 (fun x u -> same x u) shares shares_u);
  let gp = Prng.of_int 5 and gu = Prng.of_int 5 in
  let naive () = SU.deal_naive gu ~t ~n ~secret:(FU.random gu) in
  let plan_op () = S.deal_with plan gp ~secret:(F.random gp) in
  measure ~op:"deal" ~field:"GF(2^16)" ~n ~t ~m:1 ~iters ~naive ~plan:plan_op

(* One field multiplication: shift-and-xor reduction vs exp/log table
   lookup. Both tick exactly one Metrics mult — the cost model is
   unchanged, only the constant factor moves. *)
let gf2k_mul ~iters =
  let g = Prng.of_int 3089 in
  let pairs = Array.init 512 (fun _ -> (F.random g, F.random g)) in
  Array.iter
    (fun (a, b) ->
      check_same "gf2k_mul: tabled and naive products diverge"
        (F.equal (F.mul a b) (F.mul_naive a b)))
    pairs;
  let idx = ref 0 in
  let pick () =
    idx := (!idx + 1) land 511;
    pairs.(!idx)
  in
  let naive () =
    let a, b = pick () in
    F.mul_naive a b
  in
  let plan_op () =
    let a, b = pick () in
    F.mul a b
  in
  measure ~op:"gf2k_mul" ~field:"GF(2^16)" ~n:0 ~t:0 ~m:1 ~iters ~naive
    ~plan:plan_op

(* Coin-Expose style subset reconstruction: interpolate f(0) from the
   same t+1 trusted senders, coin after coin. Naive: full Lagrange per
   call. Plan: cached Lagrange-at-zero weights for the subset bitset. *)
let subset_reconstruct ~n ~t ~iters =
  let g = Prng.of_int 4093 in
  let plan = S.grid ~n ~t in
  let secret = F.random g in
  let shares = S.deal_with plan g ~secret in
  let ids = Prng.sample_distinct g (t + 1) n in
  let points = List.map (fun i -> (i, shares.(i))) ids in
  let points_u =
    List.map (fun (i, v) -> (FU.of_int (i + 1), to_u v)) points
  in
  let naive () = SU.P.interpolate_at points_u FU.zero in
  let plan_op () = G.reconstruct_zero plan points in
  check_same "subset_reconstruct: values diverge" (same (plan_op ()) (naive ()));
  check_same "subset_reconstruct: wrong secret" (F.equal (plan_op ()) secret);
  let e =
    measure ~op:"subset_reconstruct" ~field:"GF(2^16)" ~n ~t ~m:1 ~iters
      ~naive ~plan:plan_op
  in
  e

(* The zero-alloc reconstruct arena (PR-8): the same checked subset
   reconstruction, list path vs the plan's scratch-arena path. Values,
   ticks and cache keys are identical; the entry exists for the ns and
   the allocated-words column — the arena path must stay O(1) minor
   words on the cache-hit steady state. The subset is larger than
   t + 1 so the degree check (extension rows) runs too, like a real
   Coin-Expose inbox. *)
let subset_reconstruct_arena ~n ~t ~iters =
  let g = Prng.of_int 5119 in
  let plan = S.grid ~n ~t in
  let secret = F.random g in
  let shares = S.deal_with plan g ~secret in
  let ids = Prng.sample_distinct g (min n (t + 3)) n in
  let points = List.map (fun i -> (i, shares.(i))) ids in
  let len = List.length ids in
  let ids_arr = Array.of_list ids in
  let ys_arr = Array.map (fun i -> shares.(i)) ids_arr in
  let naive () = G.reconstruct_zero_checked plan points in
  let plan_op () =
    G.reconstruct_zero_checked_into plan ~ids:ids_arr ~ys:ys_arr ~len
  in
  check_same "subset_reconstruct_arena: values diverge"
    (match (naive (), plan_op ()) with
    | Some a, Some b -> F.equal a b
    | None, None -> true
    | _ -> false);
  check_same "subset_reconstruct_arena: wrong secret"
    (plan_op () = Some secret);
  measure ~op:"subset_reconstruct_arena" ~field:"GF(2^16)" ~n ~t ~m:1 ~iters
    ~naive ~plan:plan_op

(* NTT/finite-difference batch dealing (PR-8 tentpole): M sharings dealt
   through one [Shamir.deal_batch_with] over the NTT-capable field vs M
   sequential naive deals. Share vectors are checked bit-equal against
   the sequential plan path (same PRNG stream: polynomials are drawn
   before any evaluation in both). Runs at the full (32, 10, 64) shape
   in both smoke and full mode — this is the entry the >= 8x
   acceptance figure reads from. *)
module FF = Fft_field.GF_k64
module SF = Shamir.Make (FF)

let deal_batch ~iters =
  let n = 32 and t = 10 and m = 64 in
  let plan = SF.grid ~n ~t in
  let seed = 7207 in
  let dealt_batch =
    let g = Prng.of_int seed in
    let secrets = Array.init m (fun _ -> FF.random g) in
    SF.deal_batch_with plan g ~secrets
  in
  let dealt_seq =
    let g = Prng.of_int seed in
    let secrets = Array.init m (fun _ -> FF.random g) in
    Array.map (fun secret -> SF.deal_with plan g ~secret) secrets
  in
  check_same "deal_batch: batch and sequential shares diverge"
    (Array.for_all2 (Array.for_all2 FF.equal) dealt_batch dealt_seq);
  let gn = Prng.of_int 5 and gp = Prng.of_int 5 in
  let naive () =
    let secrets = Array.init m (fun _ -> FF.random gn) in
    Array.map (fun secret -> SF.deal_naive gn ~t ~n ~secret) secrets
  in
  let plan_op () =
    let secrets = Array.init m (fun _ -> FF.random gp) in
    SF.deal_batch_with plan gp ~secrets
  in
  measure ~op:"deal_batch" ~field:"GF(q^l)~k=64" ~n ~t ~m ~iters ~naive
    ~plan:plan_op

(* Bit-sliced wide-field multiplication (PR-8 tentpole): one word-op
   batch of [lanes] products vs the same products through the scalar
   schoolbook kernel. Both tick [lanes] Metrics mults; the sliced path
   does the work in k^2 word ops for all lanes at once. Slicing runs
   outside the timed op: in the batch kernels the transposed form is
   the working representation, amortized across a whole Horner loop. *)
module W64 = Gf2_wide.GF64

let sliced_mul ~iters =
  let g = Prng.of_int 6211 in
  let lanes = W64.Sliced.lanes in
  let xs = Array.init lanes (fun _ -> W64.random_nonzero g) in
  let ys = Array.init lanes (fun _ -> W64.random_nonzero g) in
  let sx = W64.Sliced.slice xs and sy = W64.Sliced.slice ys in
  check_same "sliced_mul: sliced and schoolbook products diverge"
    (Array.for_all2 W64.equal
       (W64.Sliced.unslice (W64.Sliced.mul sx sy))
       (Array.map2 W64.mul_schoolbook xs ys));
  let naive () =
    for i = 0 to lanes - 1 do
      ignore (W64.mul_schoolbook xs.(i) ys.(i))
    done
  in
  let plan_op () = ignore (W64.Sliced.mul sx sy) in
  measure ~op:"sliced_mul" ~field:"GF(2^64)" ~n:0 ~t:0 ~m:lanes ~iters
    ~naive ~plan:plan_op

(* The steady-state exposure path under the deployment default — a
   passive ledger installed (DESIGN §14). Naive: the preserved
   list-based reference exposure ([Coin_expose.run_reference]) with no
   ledger, i.e. the pre-PR-8 hot loop at its cheapest. Plan: the
   arena-reconstruct [run] under the passive ledger. Decoded values are
   checked bit-equal and the ledger must accuse nobody; mult counts are
   identical by the run/run_reference parity contract. *)
let coin_expose_ledger ~n ~t ~iters =
  let module C = Sealed_coin.Make (F) in
  let module CE = Coin_expose.Make (F) in
  let g = Prng.of_int 6151 in
  let coin = C.dealer_coin g ~n ~t in
  let ledger = Sentinel.Ledger.create ~config:Sentinel.passive ~n () in
  let naive () = CE.run_reference coin in
  let plan_op () = Sentinel.with_ledger ledger (fun () -> CE.run coin) in
  check_same "coin_expose_ledger: optimized path changed a decoded value"
    (let a = naive () and b = plan_op () in
     Array.for_all2
       (fun x y ->
         match (x, y) with
         | Some x, Some y -> F.equal x y
         | None, None -> true
         | _ -> false)
       a b);
  check_same "coin_expose_ledger: passive ledger accused someone"
    (Sentinel.Ledger.suspects ledger = []);
  measure ~op:"coin_expose_ledger" ~field:"GF(2^16)" ~n ~t ~m:1 ~iters
    ~naive ~plan:plan_op

(* The <2% ledger-overhead budget, re-baselined on the optimized path:
   the same [run] with and without a passive ledger installed. The
   overhead is percent-level on a ~10us op, below single-pair noise, so
   the whole paired protocol is repeated and the median taken (the
   overhead line below the table); this is not a gate entry because ns
   are never gated. *)
let ledger_overhead_pct ~n ~t ~iters =
  let module C = Sealed_coin.Make (F) in
  let module CE = Coin_expose.Make (F) in
  let g = Prng.of_int 6151 in
  let coin = C.dealer_coin g ~n ~t in
  let ledger = Sentinel.Ledger.create ~config:Sentinel.passive ~n () in
  let bare () = CE.run coin in
  let ledgered () = Sentinel.with_ledger ledger (fun () -> CE.run coin) in
  let reps = 5 in
  let pcts =
    Array.init reps (fun _ ->
        let bare_ns, _, delta_ns = time_pair iters bare ledgered in
        if bare_ns > 0. then 100. *. delta_ns /. bare_ns else 0.)
  in
  Array.sort compare pcts;
  pcts.(reps / 2)

(* --- transport backends ------------------------------------------- *)

type transport_row = { backend : string; wall_ns : float; campaigns : int }

(* Wall-clock per backend for an identical Coin-Expose campaign batch,
   with the decoded values asserted bit-equal across backends before any
   number is reported. These rows land only in BENCH_history.jsonl —
   BENCH_latest.json keeps its op-count schema so --gate is unaffected.
   Backend order is Sim -> Socket -> Domains: OCaml forbids fork once a
   domain has been spawned, so the socket backend must run first. *)
let transport_rows ~smoke =
  let n = 13 and t = 2 in
  let module C = Sealed_coin.Make (F) in
  let module CE = Coin_expose.Make (F) in
  let campaigns = if smoke then 3 else 20 in
  let campaign ~seed () =
    let g = Prng.of_int seed in
    let coin = C.dealer_coin g ~n ~t in
    CE.run coin
  in
  ignore (campaign ~seed:9001 ()) (* warm lazy field tables once *);
  let run_all () =
    Array.init campaigns (fun k -> campaign ~seed:(9001 + k) ())
  in
  let measure backend =
    let t0 = Unix.gettimeofday () in
    let values = Transport.with_backend backend run_all in
    (values, (Unix.gettimeofday () -. t0) *. 1e9)
  in
  let oracle, sim_ns = measure Transport.Sim in
  let sock, sock_ns = measure Transport.Socket in
  let doms, dom_ns = measure Transport.Domains in
  let same_values a b =
    Array.for_all2
      (fun xs ys ->
        Array.for_all2
          (fun x y ->
            match (x, y) with
            | Some x, Some y -> F.equal x y
            | None, None -> true
            | _ -> false)
          xs ys)
      a b
  in
  check_same "transport: socket values diverge from sim"
    (same_values oracle sock);
  check_same "transport: domains values diverge from sim"
    (same_values oracle doms);
  [
    { backend = "sim"; wall_ns = sim_ns; campaigns };
    { backend = "socket"; wall_ns = sock_ns; campaigns };
    { backend = "domains"; wall_ns = dom_ns; campaigns };
  ]

(* Time-to-converge under real failures (DESIGN.md section 16): a
   supervised expose campaign with [t] players SIGKILLed (socket) /
   crashed (domains) at round 2. The row is the wall-clock of the whole
   supervised run — kill detection, declaration, and the survivor
   rounds that follow — with convergence asserted before the number is
   reported: every post-kill coin still decodes for all n - t
   survivors. Like the transport rows, this lands only in
   BENCH_history.jsonl. *)
type chaos_row = { cr_backend : string; killed : int; cr_wall_ns : float }

let chaos_recovery_row ~smoke backend =
  let n = 13 and t = 2 in
  let m = if smoke then 3 else 8 in
  let module C = Sealed_coin.Make (F) in
  let module CE = Coin_expose.Make (F) in
  let events =
    List.init t (fun i ->
        { Transport.Chaos.round = 2; player = i; action = Transport.Chaos.Kill })
  in
  let campaign () =
    let g = Prng.of_int 9901 in
    let plan = Transport.Plan.make ~seed:17 () in
    Transport.with_chaos events (fun () ->
        Transport.with_supervision ~deadline:0.25 ~retries:2 ~backoff:2.0
          ~fault_bound:t (fun () ->
            Transport.with_plan plan (fun () ->
                Array.init m (fun _ -> CE.run (C.dealer_coin g ~n ~t)))))
  in
  let t0 = Unix.gettimeofday () in
  let values = Transport.with_backend backend campaign in
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let decoded =
    Array.fold_left (fun a v -> if v <> None then a + 1 else a) 0 values.(m - 1)
  in
  check_same
    (Printf.sprintf "chaos_recovery (%s): survivors failed to converge"
       (Transport.backend_name backend))
    (decoded >= n - t);
  { cr_backend = Transport.backend_name backend; killed = t; cr_wall_ns = wall_ns }

(* Journal replay throughput (DESIGN.md section 19): how fast a
   restarted beacon re-applies a write-ahead journal — record decode,
   seal re-verification, chain linking, AND the replay-debt pool draws
   that advance the restored pool past the published coins. That last
   term dominates and is the honest recovery cost; convergence (same
   seq, same head as the journaled chain) is asserted on every replay
   before the number is reported. History-only, like the transport
   rows. *)
type beacon_recovery_row_t = {
  br_epochs : int;
  br_replays : int;
  br_wall_ns : float;
}

let beacon_recovery_row ~smoke =
  let module BC = Beacon.Make (F) in
  let epochs = if smoke then 8 else 32 in
  let replays = if smoke then 3 else 10 in
  let mk () =
    BC.create
      ~pool:
        (BC.P.create ~prng:(Prng.of_int 4242) ~n:13 ~t:2 ~batch_size:16
           ~refill_threshold:3 ~initial_seed:6 ())
      ()
  in
  let jp = Filename.temp_file "dprbg-bench" ".journal" in
  let d, _ = BC.Durable.attach ~journal:jp ~sync:Beacon_journal.Flush_only (mk ()) in
  for _ = 1 to epochs do
    for _ = 1 to 4 do
      ignore (BC.Durable.request d ~callback:ignore ())
    done;
    match BC.Durable.close_epoch d with
    | Ok _ -> ()
    | Error msg -> check_same ("beacon_recovery: close failed: " ^ msg) false
  done;
  BC.Durable.close d;
  let head = BC.head (BC.Durable.beacon d) in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to replays do
    let b = mk () in
    let d2, _ = BC.Durable.attach ~journal:jp ~sync:Beacon_journal.Flush_only b in
    BC.Durable.close d2;
    check_same "beacon_recovery: replay diverged from the journaled chain"
      (BC.next_seq b = epochs && Beacon_hash.equal (BC.head b) head)
  done;
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  Sys.remove jp;
  { br_epochs = epochs; br_replays = replays; br_wall_ns = wall_ns }

(* --- emission ------------------------------------------------------ *)

let json_of_entry e =
  let speedup = if e.plan_ns > 0. then e.naive_ns /. e.plan_ns else 0. in
  Printf.sprintf
    "    {\"op\": %S, \"field\": %S, \"n\": %d, \"t\": %d, \"m\": %d,\n\
    \     \"naive_ns_per_op\": %.1f, \"naive_mults_per_op\": %d,\n\
    \     \"naive_alloc_w_per_op\": %.1f,\n\
    \     \"plan_ns_per_op\": %.1f, \"plan_mults_per_op\": %d,\n\
    \     \"plan_alloc_w_per_op\": %.1f,\n\
    \     \"speedup\": %.2f}"
    e.op e.field e.n e.t e.m e.naive_ns e.naive_mults e.naive_alloc_w
    e.plan_ns e.plan_mults e.plan_alloc_w speedup

let run ~smoke ~path =
  let n, t, m = if smoke then (8, 2, 8) else (32, 10, 64) in
  let iters = if smoke then 500 else 5_000 in
  let mul_iters = if smoke then 50_000 else 2_000_000 in
  (* The naive side of deal_batch runs M=64 sequential Horner deals at
     ~130ms per op; a handful of iterations per timing block is all the
     budget allows, and the paired-median protocol absorbs the noise. *)
  let batch_iters = if smoke then 3 else 10 in
  let entries =
    [
      batch_vss_verify ~n ~t ~m ~iters;
      deal ~n ~t ~iters;
      (* Always the full (32, 10, 64) shape: the acceptance figure for
         the NTT/FD batch-dealing kernel reads from this entry in both
         modes. *)
      deal_batch ~iters:batch_iters;
      subset_reconstruct ~n ~t ~iters;
      subset_reconstruct_arena ~n ~t ~iters;
      gf2k_mul ~iters:mul_iters;
      sliced_mul ~iters:(if smoke then 5_000 else 50_000);
      (* A full exposure is ~10us and the overhead budget is percent-level,
         so this entry needs long blocks: its own iteration budget, far
         above the shared [iters]. *)
      coin_expose_ledger ~n:(min n 13) ~t:(min t 2) ~iters:20_000;
    ]
  in
  let overhead_pct =
    ledger_overhead_pct ~n:(min n 13) ~t:(min t 2) ~iters:20_000
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"dprbg-bench/2\",\n\
    \  \"mode\": %S,\n\
    \  \"description\": \"naive = reference paths (untabled GF(2^16), \
     per-call Lagrange/Horner, sequential deals, list reconstruct); plan = \
     grid kernels, NTT/FD batch dealing, bit-sliced wide mults, arena \
     reconstruct. alloc_w = allocated words per op (Gc.allocated_bytes \
     deltas)\",\n\
    \  \"entries\": [\n%s\n  ]\n}\n"
    (if smoke then "smoke" else "full")
    (String.concat ",\n" (List.map json_of_entry entries));
  close_out oc;
  (* One compact line per run appended to the trajectory log, so the
     repo accumulates a machine-readable bench history across PRs. *)
  (* Fork-before-domains ordering: the socket chaos row runs before
     transport_rows spawns its first domain, the domains chaos row
     after everything that forks. *)
  let beacon_recovery = beacon_recovery_row ~smoke in
  let chaos_socket = chaos_recovery_row ~smoke Transport.Socket in
  let transports = transport_rows ~smoke in
  let chaos_rows = [ chaos_socket; chaos_recovery_row ~smoke Transport.Domains ] in
  let history = Filename.concat (Filename.dirname path) "BENCH_history.jsonl" in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 history in
  Printf.fprintf oc
    "{\"schema\": \"dprbg-bench-history/1\", \"mode\": %S, \"ops\": [%s], \
     \"transports\": [%s], \"chaos_recovery\": [%s], \"beacon_recovery\": \
     [%s]}\n"
    (if smoke then "smoke" else "full")
    (String.concat ", "
       (List.map
          (fun e ->
            Printf.sprintf
              "{\"op\": %S, \"plan_mults\": %d, \"plan_ns\": %.1f, \
               \"plan_alloc_w\": %.1f, \"naive_mults\": %d, \
               \"naive_ns\": %.1f}"
              e.op e.plan_mults e.plan_ns e.plan_alloc_w e.naive_mults
              e.naive_ns)
          entries))
    (String.concat ", "
       (List.map
          (fun r ->
            Printf.sprintf
              "{\"backend\": %S, \"campaigns\": %d, \"wall_ns\": %.1f}"
              r.backend r.campaigns r.wall_ns)
          transports))
    (String.concat ", "
       (List.map
          (fun r ->
            Printf.sprintf
              "{\"backend\": %S, \"killed\": %d, \"wall_ns\": %.1f}"
              r.cr_backend r.killed r.cr_wall_ns)
          chaos_rows))
    (Printf.sprintf
       "{\"epochs\": %d, \"replays\": %d, \"wall_ns\": %.1f, \
        \"epochs_per_s\": %.1f}"
       beacon_recovery.br_epochs beacon_recovery.br_replays
       beacon_recovery.br_wall_ns
       (float_of_int (beacon_recovery.br_epochs * beacon_recovery.br_replays)
       /. (beacon_recovery.br_wall_ns /. 1e9)));
  close_out oc;
  Printf.printf "wrote %s (%s mode), appended %s\n" path
    (if smoke then "smoke" else "full")
    history;
  List.iter
    (fun e ->
      Printf.printf
        "  %-26s naive %10.1f ns/op  plan %10.1f ns/op  %5.2fx  \
         alloc %8.1f -> %8.1f w/op\n"
        e.op e.naive_ns e.plan_ns
        (if e.plan_ns > 0. then e.naive_ns /. e.plan_ns else 0.)
        e.naive_alloc_w e.plan_alloc_w)
    entries;
  List.iter
    (fun r ->
      Printf.printf "  transport %-8s %d campaigns in %10.1f ns (%.1f ns/campaign)\n"
        r.backend r.campaigns r.wall_ns
        (r.wall_ns /. float_of_int r.campaigns))
    transports;
  List.iter
    (fun r ->
      Printf.printf
        "  chaos_recovery %-8s %d killed at round 2, converged in %10.1f ns\n"
        r.cr_backend r.killed r.cr_wall_ns)
    chaos_rows;
  Printf.printf
    "  beacon_recovery: %d epochs x %d replays in %10.1f ns (%.1f \
     epochs/s)\n"
    beacon_recovery.br_epochs beacon_recovery.br_replays
    beacon_recovery.br_wall_ns
    (float_of_int (beacon_recovery.br_epochs * beacon_recovery.br_replays)
    /. (beacon_recovery.br_wall_ns /. 1e9));
  (* Median paired-block delta of run-with-ledger over run-without, on
     the optimized path: the lowest-variance overhead estimate this
     harness can produce. *)
  Printf.printf "  ledger overhead on expose: %+.2f%% (budget < 2%%)\n"
    overhead_pct;
  match !divergences with
  | [] -> ()
  | ds ->
      List.iter (Printf.eprintf "DIVERGENCE: %s\n") ds;
      exit 2
