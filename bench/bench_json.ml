(* Machine-readable benchmark trajectory for the PR-3 kernels.

   Emits BENCH_pr3.json: for each hot operation, wall-clock ns/op and
   Metrics field-mult counts for the pre-PR naive path (untabled
   GF(2^16) multiplication, per-call Lagrange/Horner setup) and the
   plan-based path (tabled GF16, precomputed Grid kernels), plus the
   speedup ratio. Every section first checks that the two paths compute
   exactly the same field elements / verdicts; any divergence makes the
   run exit non-zero, so CI can gate on it. *)

module F = Gf2k.GF16
module FU = Gf2k.Make_untabled (struct
  let k = 16
end)

module S = Shamir.Make (F)
module SU = Shamir.Make (FU)
module G = S.G

type entry = {
  op : string;
  field : string;
  n : int;
  t : int;
  m : int; (* batch size, 1 when not batched *)
  naive_ns : float;
  naive_mults : int;
  plan_ns : float;
  plan_mults : int;
}

let divergences : string list ref = ref []

let check_same label ok =
  if not ok then divergences := label :: !divergences

(* CPU-clock timing; the op is warmed once so table/cache setup costs
   (the point of the plans) are visible only in the `make`-cost entry,
   not folded into steady-state per-op numbers. *)
let time_ns iters f =
  ignore (f ());
  let t0 = Sys.time () in
  for _ = 1 to iters do
    ignore (f ())
  done;
  ((Sys.time () -. t0) *. 1e9) /. float_of_int iters

let mults_of f =
  let _, s = Metrics.with_counting f in
  s.Metrics.field_mults

let measure ~op ~field ~n ~t ~m ~iters ~naive ~plan =
  {
    op;
    field;
    n;
    t;
    m;
    naive_ns = time_ns iters naive;
    naive_mults = mults_of naive;
    plan_ns = time_ns iters plan;
    plan_mults = mults_of plan;
  }

(* Mirror a tabled-GF16 element into the untabled twin field (same
   modulus, so reprs are directly comparable). *)
let to_u x = FU.of_repr (F.repr x)
let same x u = F.repr x = FU.repr u

(* --- ops ---------------------------------------------------------- *)

(* Batch-VSS verification (Fig. 3 step 4): one player's strict degree
   check over the n broadcast gammas. Naive: rebuild the full Lagrange
   interpolation from a (point, value) list and test its degree. Plan:
   dot the cached extension rows. *)
let batch_vss_verify ~n ~t ~m ~iters =
  let g = Prng.of_int 1031 in
  let secrets = Array.init m (fun _ -> F.random g) in
  let plan = S.grid ~n ~t in
  let per_secret = Array.map (fun secret -> S.deal_with plan g ~secret) secrets in
  let r = F.random g in
  let module V = Vss.Make (F) in
  let gammas =
    Array.init n (fun i ->
        V.combine ~r (Array.map (fun shares -> shares.(i)) per_secret))
  in
  let gammas_u = Array.map to_u gammas in
  let points_u =
    List.init n (fun i -> (FU.of_int (i + 1), gammas_u.(i)))
  in
  let naive () = SU.P.fits_degree points_u ~max_degree:t in
  let plan_op () = G.fits plan gammas in
  check_same "batch_vss_verify: verdicts diverge" (naive () = plan_op ());
  check_same "batch_vss_verify: verdict is Accept" (plan_op ());
  measure ~op:"batch_vss_verify" ~field:"GF(2^16)" ~n ~t ~m ~iters
    ~naive ~plan:plan_op

(* Dealing one secret to the n grid points. Naive: fresh Horner
   evaluation per point over untabled multiplication. Plan: the cached
   transposed-Vandermonde table over tabled multiplication. Identical
   PRNG draw order, so share vectors must match repr-for-repr. *)
let deal ~n ~t ~iters =
  let plan = S.grid ~n ~t in
  let seed = 2063 in
  let shares = S.deal_with plan (Prng.of_int seed) ~secret:(F.random (Prng.of_int 7)) in
  let shares_u =
    SU.deal_naive (Prng.of_int seed) ~t ~n ~secret:(FU.random (Prng.of_int 7))
  in
  check_same "deal: share vectors diverge"
    (Array.for_all2 (fun x u -> same x u) shares shares_u);
  let gp = Prng.of_int 5 and gu = Prng.of_int 5 in
  let naive () = SU.deal_naive gu ~t ~n ~secret:(FU.random gu) in
  let plan_op () = S.deal_with plan gp ~secret:(F.random gp) in
  measure ~op:"deal" ~field:"GF(2^16)" ~n ~t ~m:1 ~iters ~naive ~plan:plan_op

(* One field multiplication: shift-and-xor reduction vs exp/log table
   lookup. Both tick exactly one Metrics mult — the cost model is
   unchanged, only the constant factor moves. *)
let gf2k_mul ~iters =
  let g = Prng.of_int 3089 in
  let pairs = Array.init 512 (fun _ -> (F.random g, F.random g)) in
  Array.iter
    (fun (a, b) ->
      check_same "gf2k_mul: tabled and naive products diverge"
        (F.equal (F.mul a b) (F.mul_naive a b)))
    pairs;
  let idx = ref 0 in
  let pick () =
    idx := (!idx + 1) land 511;
    pairs.(!idx)
  in
  let naive () =
    let a, b = pick () in
    F.mul_naive a b
  in
  let plan_op () =
    let a, b = pick () in
    F.mul a b
  in
  measure ~op:"gf2k_mul" ~field:"GF(2^16)" ~n:0 ~t:0 ~m:1 ~iters ~naive
    ~plan:plan_op

(* Coin-Expose style subset reconstruction: interpolate f(0) from the
   same t+1 trusted senders, coin after coin. Naive: full Lagrange per
   call. Plan: cached Lagrange-at-zero weights for the subset bitset. *)
let subset_reconstruct ~n ~t ~iters =
  let g = Prng.of_int 4093 in
  let plan = S.grid ~n ~t in
  let secret = F.random g in
  let shares = S.deal_with plan g ~secret in
  let ids = Prng.sample_distinct g (t + 1) n in
  let points = List.map (fun i -> (i, shares.(i))) ids in
  let points_u =
    List.map (fun (i, v) -> (FU.of_int (i + 1), to_u v)) points
  in
  let naive () = SU.P.interpolate_at points_u FU.zero in
  let plan_op () = G.reconstruct_zero plan points in
  check_same "subset_reconstruct: values diverge" (same (plan_op ()) (naive ()));
  check_same "subset_reconstruct: wrong secret" (F.equal (plan_op ()) secret);
  let e =
    measure ~op:"subset_reconstruct" ~field:"GF(2^16)" ~n ~t ~m:1 ~iters
      ~naive ~plan:plan_op
  in
  e

(* --- emission ------------------------------------------------------ *)

let json_of_entry e =
  let speedup = if e.plan_ns > 0. then e.naive_ns /. e.plan_ns else 0. in
  Printf.sprintf
    "    {\"op\": %S, \"field\": %S, \"n\": %d, \"t\": %d, \"m\": %d,\n\
    \     \"naive_ns_per_op\": %.1f, \"naive_mults_per_op\": %d,\n\
    \     \"plan_ns_per_op\": %.1f, \"plan_mults_per_op\": %d,\n\
    \     \"speedup\": %.2f}"
    e.op e.field e.n e.t e.m e.naive_ns e.naive_mults e.plan_ns e.plan_mults
    speedup

let run ~smoke ~path =
  let n, t, m = if smoke then (8, 2, 8) else (32, 10, 64) in
  let iters = if smoke then 500 else 5_000 in
  let mul_iters = if smoke then 50_000 else 2_000_000 in
  let entries =
    [
      batch_vss_verify ~n ~t ~m ~iters;
      deal ~n ~t ~iters;
      subset_reconstruct ~n ~t ~iters;
      gf2k_mul ~iters:mul_iters;
    ]
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"dprbg-bench-pr3/1\",\n\
    \  \"mode\": %S,\n\
    \  \"description\": \"naive = pre-PR path (untabled GF(2^16), per-call \
     Lagrange/Horner); plan = grid kernels + exp/log tables\",\n\
    \  \"entries\": [\n%s\n  ]\n}\n"
    (if smoke then "smoke" else "full")
    (String.concat ",\n" (List.map json_of_entry entries));
  close_out oc;
  Printf.printf "wrote %s (%s mode)\n" path (if smoke then "smoke" else "full");
  List.iter
    (fun e ->
      Printf.printf "  %-20s naive %10.1f ns/op  plan %10.1f ns/op  %5.2fx\n"
        e.op e.naive_ns e.plan_ns
        (if e.plan_ns > 0. then e.naive_ns /. e.plan_ns else 0.))
    entries;
  match !divergences with
  | [] -> ()
  | ds ->
      List.iter (Printf.eprintf "DIVERGENCE: %s\n") ds;
      exit 2
