(* One function per experiment in DESIGN.md's index (E1-E14). Each
   prints a table of measured values next to the paper's claim. Ambient
   Metrics counters are totals across all players; per-player figures
   divide by n (DESIGN.md, "accounting convention"). *)

module type Wide_field = sig
  include Field_intf.S

  val mul_schoolbook : t -> t -> t
  val mul_karatsuba : t -> t -> t
end

let fi = float_of_int

let per_run f =
  let _, snap = Metrics.with_counting f in
  snap

(* ------------------------------------------------------------- E1 -- *)

let lemma1 ~quick =
  let trials = if quick then 4000 else 20000 in
  let n = 7 and t = 2 in
  let rows =
    List.map
      (fun k ->
        let module Fk = Gf2k.Make (struct let k = k end) in
        let module Vk = Vss.Make (Fk) in
        let g = Prng.of_int (1000 + k) in
        let accepts = ref 0 in
        for _ = 1 to trials do
          let guess = Fk.random_nonzero g in
          let alpha, beta = Vk.targeted_cheating_dealing g ~n ~t ~guess in
          if Vk.run ~n ~t ~alpha ~beta ~r:(Fk.random g) () = Vk.Accept then
            incr accepts
        done;
        Table.
          [
            I k;
            I (1 lsl k);
            I trials;
            I !accepts;
            P (fi !accepts /. fi trials);
            P (1.0 /. fi (1 lsl k));
          ])
      [ 4; 6; 8; 10 ]
  in
  Table.print ~title:"E1 (Lemma 1): single-VSS soundness, optimal cheating dealer"
    ~claim:"a cheating dealer passes protocol VSS with probability <= 1/p"
    ~headers:[ "k"; "p"; "trials"; "accepts"; "measured"; "bound 1/p" ]
    rows

(* ------------------------------------------------------------- E2 -- *)

let lemma2 ~quick =
  ignore quick;
  let module F = Gf2k.GF32 in
  let module V = Vss.Make (F) in
  let module O = Coin_oracle.Make (F) in
  let rows =
    List.map
      (fun t ->
        let n = (3 * t) + 1 in
        let g = Prng.of_int (2000 + t) in
        let oracle = O.simulated_shared (Prng.split g) ~n ~t in
        let snap =
          per_run (fun () ->
              let alpha = V.honest_dealing g ~n ~t ~secret:(F.random g) in
              let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
              let r = O.draw oracle in
              ignore (V.run ~n ~t ~alpha ~beta ~r ()))
        in
        Table.
          [
            I n;
            I t;
            F (fi snap.Metrics.field_adds /. fi n);
            F (fi snap.Metrics.field_mults /. fi n);
            F (fi snap.Metrics.interpolations /. fi n);
            I snap.Metrics.messages;
            I (3 * n);
            I snap.Metrics.bytes;
            I snap.Metrics.rounds;
          ])
      [ 1; 2; 4; 8 ]
  in
  Table.print
    ~title:"E2 (Lemma 2): single VSS cost per player (incl. coin expose)"
    ~claim:
      "n + k log k + 1 additions, 2 interpolations per player; 2 rounds of n \
       messages of size k (expose adds n more messages and a round)"
    ~headers:
      [
        "n"; "t"; "adds/pl"; "mults/pl"; "interps/pl"; "msgs"; "pred msgs";
        "bytes"; "rounds";
      ]
    rows

(* ------------------------------------------------------------- E3 -- *)

let lemma3 ~quick =
  let trials = if quick then 4000 else 20000 in
  let n = 7 and t = 2 in
  let k = 8 in
  let module Fk = Gf2k.Make (struct let k = 8 end) in
  let module Vk = Vss.Make (Fk) in
  let rows =
    List.map
      (fun m ->
        let g = Prng.of_int (3000 + m) in
        let accepts = ref 0 in
        for _ = 1 to trials do
          let roots =
            Array.of_list
              (List.map
                 (fun i -> Fk.of_int (i + 1))
                 (Prng.sample_distinct g m ((1 lsl k) - 1)))
          in
          let shares = Vk.batch_targeted_cheating_dealing g ~n ~t ~roots in
          if Vk.run_batch ~n ~t ~shares ~r:(Fk.random g) () = Vk.Accept then
            incr accepts
        done;
        Table.
          [
            I m;
            I trials;
            I !accepts;
            P (fi !accepts /. fi trials);
            P (fi m /. fi (1 lsl k));
          ])
      [ 2; 4; 8; 16 ]
  in
  Table.print
    ~title:"E3 (Lemma 3): Batch-VSS soundness, optimal cheating dealer (k=8)"
    ~claim:"a cheating dealer passes Batch-VSS with probability <= M/p"
    ~headers:[ "M"; "trials"; "accepts"; "measured"; "bound M/p" ]
    rows

(* ------------------------------------------------------------- E4 -- *)

let corollary1 ~quick =
  let module F = Gf2k.GF32 in
  let module V = Vss.Make (F) in
  let module O = Coin_oracle.Make (F) in
  let n = 7 and t = 2 in
  let ms = if quick then [ 1; 4; 16; 64; 256 ] else [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ] in
  let rows =
    List.map
      (fun m ->
        let g = Prng.of_int (4000 + m) in
        let oracle = O.simulated_shared (Prng.split g) ~n ~t in
        let secrets = Array.init m (fun _ -> F.random g) in
        let shares = V.batch_honest_dealing g ~n ~t ~secrets in
        let snap =
          per_run (fun () ->
              let r = O.draw oracle in
              ignore (V.run_batch ~n ~t ~shares ~r ()))
        in
        Table.
          [
            I m;
            F (fi snap.Metrics.field_adds /. fi n /. fi m);
            F (fi snap.Metrics.field_mults /. fi n /. fi m);
            F (fi snap.Metrics.interpolations /. fi n /. fi m);
            F (fi snap.Metrics.messages /. fi m);
            F (fi snap.Metrics.bytes /. fi m);
          ])
      ms
  in
  Table.print
    ~title:"E4 (Corollary 1): Batch-VSS amortized verification cost per secret"
    ~claim:
      "amortized 2k log k additions per player and O(1) communication per \
       secret; interpolations vanish as 2/M"
    ~headers:
      [ "M"; "adds/pl/sec"; "mults/pl/sec"; "interps/pl/sec"; "msgs/sec"; "bytes/sec" ]
    rows

(* ------------------------------------------------------------- E5 -- *)

let lemma5 ~quick =
  let trials = if quick then 400 else 1500 in
  let t = 2 in
  let n = 13 in
  let m = 4 in
  let rows =
    List.map
      (fun k ->
        let module Fk = Gf2k.Make (struct let k = k end) in
        let module BGk = Bit_gen.Make (Fk) in
        let g = Prng.of_int (5000 + k) in
        let accepts = ref 0 in
        for s = 1 to trials do
          let prng = Prng.of_int ((7919 * k) + s) in
          let r = Fk.random g in
          let views, _ =
            BGk.run ~dealer_behavior:(BGk.Bad_degree [ 0 ]) ~prng ~n ~t ~m
              ~dealer:0 ~r ()
          in
          if Array.exists (fun v -> v.BGk.check_poly <> None) views then
            incr accepts
        done;
        Table.
          [
            I k;
            I trials;
            I !accepts;
            P (fi !accepts /. fi trials);
            P (fi m /. fi (1 lsl k));
          ])
      [ 4; 6; 8 ]
  in
  Table.print
    ~title:"E5 (Lemma 5): Bit-Gen soundness without broadcast (M=4, n=13, t=2)"
    ~claim:
      "a dealing with some degree-> t polynomial is accepted by any player \
       with probability <= M/p"
    ~headers:[ "k"; "trials"; "accepts"; "measured"; "bound M/p" ]
    rows

(* ------------------------------------------------------------- E6 -- *)

let corollary2 ~quick =
  let module F = Gf2k.GF32 in
  let module BG = Bit_gen.Make (F) in
  let n = 13 and t = 2 in
  let k_bits = F.k_bits in
  let ms = if quick then [ 1; 8; 64; 256 ] else [ 1; 4; 16; 64; 256; 1024 ] in
  let rows =
    List.map
      (fun m ->
        let prng = Prng.of_int (6000 + m) in
        let r = F.random (Prng.split prng) in
        let snap =
          per_run (fun () -> ignore (BG.run ~prng ~n ~t ~m ~dealer:0 ~r ()))
        in
        let bits = fi (m * k_bits) in
        Table.
          [
            I m;
            I (m * k_bits);
            F (fi snap.Metrics.field_adds /. fi n /. bits);
            F (fi snap.Metrics.field_mults /. fi n /. bits);
            F (fi snap.Metrics.messages /. bits);
            F (fi snap.Metrics.bytes /. bits);
            F (fi snap.Metrics.interpolations /. fi n);
          ])
      ms
  in
  Table.print
    ~title:"E6 (Corollary 2): Bit-Gen amortized cost per generated bit"
    ~claim:
      "n log k + O(log k) additions and n + O(1) communication per bit; \
       interpolations per player stay constant in M"
    ~headers:
      [ "M"; "bits"; "adds/pl/bit"; "mults/pl/bit"; "msgs/bit"; "bytes/bit"; "interps/pl" ]
    rows

(* ---------------------------------------------------------- E7/E8 -- *)

module F16 = Gf2k.GF16
module CG16 = Coin_gen.Make (F16)
module CE16 = Coin_expose.Make (F16)
module C16 = Sealed_coin.Make (F16)
module AT16 = Attacks.Make (F16)

let ideal_oracle seed =
  let g = Prng.of_int seed in
  fun () -> Metrics.without_counting (fun () -> F16.random g)

let lemma7 ~quick =
  let runs = if quick then 15 else 50 in
  let n = 13 and t = 2 and m = 4 in
  let g = Prng.of_int 70707 in
  let completed = ref 0 in
  let holds = ref 0 in
  let min_clique = ref n and min_trusted = ref n in
  for seed = 1 to runs do
    let faults = Net.Faults.random g ~n ~t in
    let adversary = AT16.mixed_adversary g ~n ~m faults in
    match
      CG16.run ~adversary ~prng:(Prng.of_int seed)
        ~oracle:(ideal_oracle (seed + 5000)) ~n ~t ~m ()
    with
    | None -> ()
    | Some batch ->
        incr completed;
        let honest = Net.Faults.honest faults in
        let universally_trusted =
          List.filter
            (fun j ->
              List.mem j honest
              && List.for_all (fun i -> batch.CG16.trusted.(i).(j)) honest)
            (List.init n Fun.id)
        in
        let clique_size = List.length batch.CG16.dealers in
        min_clique := min !min_clique clique_size;
        min_trusted := min !min_trusted (List.length universally_trusted);
        if
          clique_size >= n - (2 * t)
          && List.length universally_trusted >= (2 * t) + 1
        then incr holds
  done;
  Table.print
    ~title:"E7 (Lemma 7): Coin-Gen clique guarantees under mixed attacks"
    ~claim:
      "|U| >= n-2t = 4t+1 at all honest players, identical across them, with \
       >= 2t+1 honest universally-usable reconstructors"
    ~headers:
      [ "runs"; "completed"; "guarantee held"; "min |C_l|"; "min honest trusted" ]
    [ Table.[ I runs; I !completed; I !holds; I !min_clique; I !min_trusted ] ]

let lemma8 ~quick =
  let runs = if quick then 40 else 120 in
  let n = 13 and t = 2 and m = 2 in
  let g = Prng.of_int 80808 in
  let histogram = Hashtbl.create 8 in
  let total = ref 0 and completed = ref 0 in
  for seed = 1 to runs do
    let faults = Net.Faults.random g ~n ~t in
    (* Worst case for termination: faulty leaders' proposals fail and
       faulty players vote the BA down. *)
    let adversary =
      CG16.faulty_with ~as_ba:(Phase_king.Fixed false) faults
    in
    match
      CG16.run ~adversary ~prng:(Prng.of_int (seed * 31))
        ~oracle:(ideal_oracle (seed + 9000)) ~n ~t ~m ()
    with
    | None -> ()
    | Some batch ->
        incr completed;
        total := !total + batch.CG16.ba_iterations;
        Hashtbl.replace histogram batch.CG16.ba_iterations
          (1 + Option.value ~default:0
             (Hashtbl.find_opt histogram batch.CG16.ba_iterations))
  done;
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram []
    |> List.sort compare
    |> List.map (fun (iters, count) -> Table.[ I iters; I count ])
  in
  Table.print
    ~title:"E8 (Lemma 8): Coin-Gen BA iterations until success (adversarial)"
    ~claim:
      (Printf.sprintf
         "constant expected iterations: success prob >= (n-t)/n per draw, so \
          mean <= n/(n-t) = %.2f; measured mean %.2f over %d runs"
         (fi n /. fi (n - t))
         (fi !total /. fi (max 1 !completed))
         !completed)
    ~headers:[ "BA iterations"; "runs" ]
    rows

(* ------------------------------------------------------------- E9 -- *)

let corollary3 ~quick =
  let params = [ (1, 7); (2, 13) ] in
  let ms = if quick then [ 4; 16; 64 ] else [ 4; 16; 64; 256 ] in
  let rows =
    List.concat_map
      (fun (t, n) ->
        List.map
          (fun m ->
            let prng = Prng.of_int ((100 * t) + m) in
            let snap =
              per_run (fun () ->
                  match
                    CG16.run ~prng ~oracle:(ideal_oracle (m + (17 * t))) ~n ~t
                      ~m ()
                  with
                  | Some batch ->
                      (* Expose every coin: the full life cycle. *)
                      for h = 0 to m - 1 do
                        ignore (CE16.run (CG16.coin batch h))
                      done
                  | None -> failwith "Coin-Gen failed")
            in
            Table.
              [
                I n;
                I t;
                I m;
                F (fi (snap.Metrics.field_adds + snap.Metrics.field_mults)
                   /. fi n /. fi m);
                F (fi snap.Metrics.interpolations /. fi n /. fi m);
                F (fi snap.Metrics.messages /. fi m);
                F (fi snap.Metrics.bytes /. fi m);
              ])
          ms)
      params
  in
  Table.print
    ~title:
      "E9 (Theorem 2 / Corollary 3): Coin-Gen + expose, amortized cost per \
       k-ary coin"
    ~claim:
      "amortized O(n log k) operations per coin and n + O(n^4/M) \
       communication: the per-coin overhead of generation dies off as M \
       grows, leaving the exposure interpolation as the bottleneck"
    ~headers:
      [ "n"; "t"; "M"; "ops/pl/coin"; "interps/pl/coin"; "msgs/coin"; "bytes/coin" ]
    rows

(* ------------------------------------------------------------ E10 -- *)

let vss_comparison ~quick =
  ignore quick;
  let module F = Gf2k.GF16 in
  let module V = Vss.Make (F) in
  let module O = Coin_oracle.Make (F) in
  let module CC = Cut_and_choose_vss.Make (F) in
  let n = 7 and t = 2 in
  let g = Prng.of_int 10101 in
  (* bit-operation estimate: one w-bit field addition ~ w bit ops, one
     naive multiplication ~ w^2 — the unit the paper states its costs
     in, and the only fair way to set a 16-bit GF(2^k) next to a
     modular field. *)
  let bitops ~w snap =
    (fi snap.Metrics.field_adds *. fi w)
    +. (fi snap.Metrics.field_mults *. fi w *. fi w)
  in
  let row ?(w = 16) label secrets snap =
    Table.
      [
        S label;
        F (fi snap.Metrics.field_adds /. fi n /. fi secrets);
        F (fi snap.Metrics.field_mults /. fi n /. fi secrets);
        F (fi snap.Metrics.interpolations /. fi n /. fi secrets);
        F (fi snap.Metrics.messages /. fi secrets);
        F (fi snap.Metrics.bytes /. fi secrets);
        F (bitops ~w snap /. fi n /. fi secrets);
      ]
  in
  let ours_single =
    let oracle = O.simulated_shared (Prng.split g) ~n ~t in
    per_run (fun () ->
        let alpha = V.honest_dealing g ~n ~t ~secret:(F.random g) in
        let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
        let r = O.draw oracle in
        ignore (V.run ~n ~t ~alpha ~beta ~r ()))
  in
  let m = 64 in
  let ours_batch =
    let oracle = O.simulated_shared (Prng.split g) ~n ~t in
    per_run (fun () ->
        let secrets = Array.init m (fun _ -> F.random g) in
        let shares = V.batch_honest_dealing g ~n ~t ~secrets in
        let r = O.draw oracle in
        ignore (V.run_batch ~n ~t ~shares ~r ()))
  in
  let cc_rounds = 16 (* soundness 2^-16 = our 1/p at k=16 *) in
  let cut_and_choose =
    per_run (fun () ->
        let d = CC.honest_dealing g ~n ~t ~rounds:cc_rounds ~secret:(F.random g) in
        let challenges = Array.init cc_rounds (fun _ -> Prng.bool g) in
        ignore (CC.run ~n ~t ~challenges d))
  in
  let feldman =
    per_run (fun () ->
        let d =
          Feldman_vss.honest_dealing g ~n ~t ~secret:(Feldman_vss.Fq.random g)
        in
        ignore (Feldman_vss.run ~n ~t d))
  in
  Table.print
    ~title:
      "E10 (Section 1.4): VSS scheme comparison, per secret per player \
       (k=16; n=7, t=2)"
    ~claim:
      "paper VSS: 1 check interpolation, error 1/p | CCD cut-and-choose: one \
       interpolation per challenge round (16 rounds ~ same error) | Feldman: \
       t exponentiations = t log p multiplications; measured at a 30-bit p \
       (no bignum installed), the last row extrapolates to the paper's \
       1024-bit p"
    ~headers:
      [ "scheme"; "adds/pl"; "mults/pl"; "interps/pl"; "msgs"; "bytes"; "bitops/pl" ]
    [
      row "paper VSS (Fig. 2)" 1 ours_single;
      row (Printf.sprintf "paper Batch-VSS M=%d" m) m ours_batch;
      row "cut-and-choose (CCD88)" 1 cut_and_choose;
      row ~w:30 "Feldman (dlog, 30-bit p)" 1 feldman;
      (let exps = fi (t + 1) *. 1.5 *. 1024.0 in
       Table.
         [
           S "Feldman @ 1024-bit p (extrapolated)";
           F 0.0;
           F exps;
           F 0.0;
           F 15.0;
           F (fi ((t + 1) * 128) +. fi (n * 128 / n));
           F (exps *. 1024.0 *. 1024.0);
         ]);
    ]

(* ------------------------------------------------------------ E11 -- *)

let coin_comparison ~quick =
  let module F = Gf2k.GF16 in
  let module CB = Coin_baselines.Make (F) in
  let n = 13 and t = 2 in
  let ms = if quick then [ 16; 64 ] else [ 16; 64; 256 ] in
  let dprbg_rows =
    List.map
      (fun m ->
        let prng = Prng.of_int (11000 + m) in
        let snap =
          per_run (fun () ->
              match
                CG16.run ~prng ~oracle:(ideal_oracle (m + 23)) ~n ~t ~m ()
              with
              | Some batch ->
                  for h = 0 to m - 1 do
                    ignore (CE16.run (CG16.coin batch h))
                  done
              | None -> failwith "Coin-Gen failed")
        in
        Table.
          [
            S (Printf.sprintf "D-PRBG batch M=%d" m);
            F (fi (snap.Metrics.field_adds + snap.Metrics.field_mults)
               /. fi n /. fi m);
            F (fi snap.Metrics.interpolations /. fi n /. fi m);
            F (fi snap.Metrics.messages /. fi m);
            F (fi snap.Metrics.bytes /. fi m);
          ])
      ms
  in
  let baseline label f =
    let coins = 20 in
    let g = Prng.of_int 11999 in
    let snap =
      per_run (fun () ->
          for _ = 1 to coins do
            ignore (f g ~n ~t)
          done)
    in
    Table.
      [
        S label;
        F (fi (snap.Metrics.field_adds + snap.Metrics.field_mults)
           /. fi n /. fi coins);
        F (fi snap.Metrics.interpolations /. fi n /. fi coins);
        F (fi snap.Metrics.messages /. fi coins);
        F (fi snap.Metrics.bytes /. fi coins);
      ]
  in
  Table.print
    ~title:"E11 (Section 1.4): amortized cost per shared coin, vs from-scratch"
    ~claim:
      "the D-PRBG's amortized per-coin cost approaches a single exposure \
       interpolation as M grows (Section 5: 'the amortized cost of our \
       method does not exceed this value'); from-scratch needs t+1 of them \
       plus dealing every time; the per-coin dealer needs a trusted party \
       forever"
    ~headers:[ "scheme"; "ops/pl/coin"; "interps/pl/coin"; "msgs/coin"; "bytes/coin" ]
    (dprbg_rows
    @ [
        baseline "from-scratch (t+1 dealers)" (fun g ~n ~t ->
            CB.from_scratch_coin g ~n ~t);
        baseline "trusted dealer per coin" (fun g ~n ~t ->
            CB.trusted_dealer_coin g ~n ~t);
      ])

(* ------------------------------------------------------------ E12 -- *)

let bootstrap ~quick =
  let module F = Gf2k.GF16 in
  let module Pool = Pool.Make (F) in
  let module CGp = Pool.CG in
  let module CEp = Pool.CE in
  let n = 13 and t = 2 in
  let draws = if quick then 150 else 500 in
  let g = Prng.of_int 121212 in
  let fault_sets = Array.init 256 (fun _ -> Net.Faults.random g ~n ~t) in
  let adversary refill =
    CGp.faulty_with ~as_dealer:(CGp.BG.Bad_degree [ 0 ])
      ~as_ba:(Phase_king.Fixed false)
      fault_sets.(refill mod 256)
  in
  let expose_behavior refill i =
    if Net.Faults.is_faulty fault_sets.(refill mod 256) i then
      CEp.Send (F.of_int 0xAB)
    else CEp.Honest
  in
  let pool =
    Pool.create ~adversary ~expose_behavior ~prng:(Prng.split g) ~n ~t
      ~batch_size:64 ~refill_threshold:3 ~initial_seed:6 ()
  in
  for _ = 1 to draws do
    ignore (Pool.draw_kary pool)
  done;
  let s = Pool.stats pool in
  Table.print
    ~title:"E12 (Fig. 1): bootstrapped pool under a mobile adversary"
    ~claim:
      "the initial dealer seed is consumed once; every subsequent batch is \
       generated from surviving coins; supply never pauses even though the \
       corrupted set changes every refill"
    ~headers:
      [
        "draws"; "refills"; "dealer coins"; "generated"; "seed consumed";
        "unanimity failures";
      ]
    [
      Table.
        [
          I s.Pool.coins_exposed;
          I s.Pool.refills;
          I s.Pool.dealer_coins;
          I s.Pool.generated_coins;
          I s.Pool.seed_coins_consumed;
          I s.Pool.unanimity_failures;
        ];
    ]

(* ------------------------------------------------------------ E13 -- *)

let time_mults (type a) (module F : Field_intf.S with type t = a) =
  let g = Prng.of_int 13131 in
  let xs = Array.init 256 (fun _ -> F.random_nonzero g) in
  (* Warm up, then time batches until >= 0.2 s elapsed. *)
  let batch () =
    let acc = ref xs.(0) in
    for i = 1 to 255 do
      acc := F.mul !acc xs.(i)
    done;
    !acc
  in
  ignore (batch ());
  let start = Sys.time () in
  let iters = ref 0 in
  while Sys.time () -. start < 0.2 do
    ignore (batch ());
    incr iters
  done;
  let elapsed = Sys.time () -. start in
  elapsed /. fi (!iters * 255) *. 1e9

let field_crossover ~quick =
  ignore quick;
  (* The naive wide rows must time the O(k^2) schoolbook kernel
     explicitly: [Gf2_wide.mul] dispatches to Karatsuba above the limb
     threshold, which would silently turn this paper-baseline row into
     the production path. *)
  let time_schoolbook (module W : Wide_field) =
    let g = Prng.of_int 13131 in
    let xs = Array.init 256 (fun _ -> W.random_nonzero g) in
    let batch () =
      let acc = ref xs.(0) in
      for i = 1 to 255 do
        acc := W.mul_schoolbook !acc xs.(i)
      done;
      !acc
    in
    ignore (batch ());
    let start = Sys.time () in
    let iters = ref 0 in
    while Sys.time () -. start < 0.2 do
      ignore (batch ());
      incr iters
    done;
    (Sys.time () -. start) /. fi (!iters * 255) *. 1e9
  in
  let naive =
    [
      ("naive GF(2^16)", 16, time_mults (module Gf2k.GF16));
      ("naive GF(2^32)", 32, time_mults (module Gf2k.GF32));
      ("naive GF(2^61)", 61, time_mults (module Gf2k.GF61));
      ("naive GF(2^64) wide", 64, time_schoolbook (module Gf2_wide.GF64));
      ("naive GF(2^128) wide", 128, time_schoolbook (module Gf2_wide.GF128));
      ("naive GF(2^256) wide", 256, time_schoolbook (module Gf2_wide.GF256));
    ]
  in
  let fft =
    [
      ("FFT GF(q^l) ~k=64", 64, time_mults (module Fft_field.GF_k64));
      ("FFT GF(q^l) ~k=128", 128, time_mults (module Fft_field.GF_k128));
      ("FFT GF(q^l) ~k=256", 256, time_mults (module Fft_field.GF_k256));
    ]
  in
  (* Karatsuba rows (production optimization, not the paper's baseline):
     same field as 'wide', sub-quadratic multiplication. *)
  let time_karatsuba (module W : Wide_field) =
    let g = Prng.of_int 13132 in
    let xs = Array.init 256 (fun _ -> W.random_nonzero g) in
    let batch () =
      let acc = ref xs.(0) in
      for i = 1 to 255 do
        acc := W.mul_karatsuba !acc xs.(i)
      done;
      !acc
    in
    ignore (batch ());
    let start = Sys.time () in
    let iters = ref 0 in
    while Sys.time () -. start < 0.2 do
      ignore (batch ());
      incr iters
    done;
    (Sys.time () -. start) /. fi (!iters * 255) *. 1e9
  in
  let karatsuba =
    [
      ("karatsuba GF(2^128)", 128, time_karatsuba (module Gf2_wide.GF128));
      ("karatsuba GF(2^256)", 256, time_karatsuba (module Gf2_wide.GF256));
    ]
  in
  Table.print
    ~title:"E13 (Section 2): naive vs FFT field multiplication"
    ~claim:
      "'in practice, when k is small, working over GF(2^k) with the naive \
       O(k^2) multiplication is faster than working over our special field \
       with the O(k log k) multiplication, because of the sizes of the \
       constants involved. So an implementation should be careful about \
       which method it uses.'"
    ~headers:[ "field"; "k"; "ns/mult" ]
    (List.map
       (fun (label, k, ns) -> Table.[ S label; I k; F ns ])
       (naive @ fft @ karatsuba));
  (* Fit the two asymptotic models on the wide-word points and report the
     predicted crossover — the 'figure' of this experiment. *)
  let fit points f =
    let pts = List.filter (fun (_, k, _) -> k >= 64) points in
    List.fold_left (fun acc (_, k, ns) -> acc +. (ns /. f (fi k))) 0.0 pts
    /. fi (List.length pts)
  in
  let c_naive = fit naive (fun k -> k *. k) in
  let c_fft = fit fft (fun k -> k *. (log k /. log 2.0)) in
  let rec solve k i =
    if i = 0 then k
    else solve (c_fft *. (log k /. log 2.0) /. c_naive) (i - 1)
  in
  let k_star = solve 512.0 40 in
  Printf.printf
    "fit: naive ~ %.3f*k^2 ns, FFT ~ %.3f*k*log2(k) ns => predicted \
     crossover at k ~ %.0f bits\n\
     (matches the paper: at the security parameters the protocols use, the \
     naive method wins)\n"
    c_naive c_fft k_star

(* ------------------------------------------------------------ E14 -- *)

let unanimity ~quick =
  let module F8 = Gf2k.Make (struct let k = 8 end) in
  let module CG8 = Coin_gen.Make (F8) in
  let module CE8 = Coin_expose.Make (F8) in
  let module AT8 = Attacks.Make (F8) in
  let n = 13 and t = 2 and m = 4 in
  let runs = if quick then 150 else 600 in
  let g = Prng.of_int 141414 in
  let oracle seed =
    let og = Prng.of_int seed in
    fun () -> Metrics.without_counting (fun () -> F8.random og)
  in
  let completed = ref 0 and bad_dealer_in = ref 0 and failures = ref 0 in
  for seed = 1 to runs do
    let faults = Net.Faults.make ~n ~faulty:[ 2; 9 ] in
    (* The optimal attack: faulty dealers deal high-degree sharings whose
       batch combination collapses to degree t on a guessed set of coin
       values (Lemma 3's construction), hoping the exposed r lands there;
       if it does, the bad dealer enters the clique and the batch's coins
       are not degree-t shared — the event behind the M n 2^-k unanimity
       bound. *)
    let adversary =
      {
        (CG8.faulty_with faults) with
        CG8.as_dealer =
          (fun i ->
            if Net.Faults.is_faulty faults i then
              CG8.BG.Matrix (AT8.unanimity_attack_matrix g ~n ~t ~m)
            else CG8.BG.Honest_dealer);
        as_gamma = (fun _ -> CG8.Honest_vec);
      }
    in
    match
      CG8.run ~adversary ~prng:(Prng.of_int (seed * 101)) ~oracle:(oracle seed)
        ~n ~t ~m ()
    with
    | None -> ()
    | Some batch ->
        incr completed;
        let bad_in = List.mem 2 batch.CG8.dealers || List.mem 9 batch.CG8.dealers in
        if bad_in then incr bad_dealer_in;
        for h = 0 to m - 1 do
          let values = CE8.run (CG8.coin batch h) in
          let honest = Net.Faults.honest faults in
          let honest_values = List.map (fun i -> values.(i)) honest in
          let ok =
            match honest_values with
            | Some first :: rest ->
                List.for_all
                  (function Some v -> F8.equal v first | None -> false)
                  rest
            | _ -> false
          in
          if not ok then incr failures
        done
  done;
  Table.print
    ~title:"E14: unanimity bound under the optimal bad-dealer attack (k=8)"
    ~claim:
      (Printf.sprintf
         "coins are unanimous except with probability <= M n 2^-k; the attack \
          vehicle (bad dealer slipping into the clique) succeeds per dealer \
          with probability ~ M/p = %.4f, and only those batches can fail"
         (fi m /. 256.0))
    ~headers:
      [ "runs"; "completed"; "bad dealer in clique"; "non-unanimous coins" ]
    [ Table.[ I runs; I !completed; I !bad_dealer_in; I !failures ] ]

(* ------------------------------------------------------------------ *)

let all ~quick =
  lemma1 ~quick;
  lemma2 ~quick;
  lemma3 ~quick;
  corollary1 ~quick;
  lemma5 ~quick;
  corollary2 ~quick;
  lemma7 ~quick;
  lemma8 ~quick;
  corollary3 ~quick;
  vss_comparison ~quick;
  coin_comparison ~quick;
  bootstrap ~quick;
  field_crossover ~quick;
  unanimity ~quick
