(* Benchmark harness.

   Two parts:
   1. The experiment tables (E1-E14 in DESIGN.md): every lemma, theorem
      and comparison in the paper re-measured and printed next to the
      paper's claim. This is the default output.
   2. A bechamel wall-clock suite with one kernel per experiment table,
      run with --micro.

   Usage:
     dune exec bench/main.exe            # all tables, full workloads
     dune exec bench/main.exe -- --quick # all tables, reduced workloads
     dune exec bench/main.exe -- --micro # bechamel timings only
     dune exec bench/main.exe -- --json [--smoke] [--out FILE]
                                         # kernel trajectory: naive vs plan
                                         # ns/op + mult counts, written as
                                         # JSON (default BENCH_latest.json);
                                         # exits non-zero on any plan/naive
                                         # divergence
     dune exec bench/main.exe -- --check-conformance
                                         # measure VSS / Batch-VSS / Bit-Gen
                                         # / Coin-Gen against the paper's
                                         # cost formulas (Lemmas 2/4/6,
                                         # Theorem 2); exit 3 on violation
     dune exec bench/main.exe -- --gate --baseline F --fresh F
                                 [--tolerance PCT] [--alloc-tolerance PCT]
                                         # compare two --json outputs; exit 4
                                         # on op-count regression > PCT
                                         # (default 25), plan allocation
                                         # regression > alloc PCT (default
                                         # 10) or a vanished entry
     dune exec bench/main.exe -- --check-trajectory [--file F]
                                         # validate every BENCH_history.jsonl
                                         # row against its schema; exit 4 on
                                         # malformed rows, duplicate keys or
                                         # an unknown schema
*)

module F32 = Gf2k.GF32
module F16 = Gf2k.GF16
module V32 = Vss.Make (F32)
module V16 = Vss.Make (F16)
module CC16 = Cut_and_choose_vss.Make (F16)
module BG32 = Bit_gen.Make (F32)
module CG16 = Coin_gen.Make (F16)
module CE16 = Coin_expose.Make (F16)
module Pool16 = Pool.Make (F16)
module CB16 = Coin_baselines.Make (F16)

let ideal_oracle seed =
  let g = Prng.of_int seed in
  fun () -> Metrics.without_counting (fun () -> F16.random g)

(* --- bechamel kernels: one per experiment table ------------------- *)

let kernel_e1_vss_soundness_trial () =
  let g = Prng.of_int 1 in
  let n = 7 and t = 2 in
  fun () ->
    let guess = F16.random_nonzero g in
    let alpha, beta = V16.targeted_cheating_dealing g ~n ~t ~guess in
    ignore (V16.run ~n ~t ~alpha ~beta ~r:(F16.random g) ())

let kernel_e2_single_vss () =
  let g = Prng.of_int 2 in
  let n = 7 and t = 2 in
  fun () ->
    let alpha = V32.honest_dealing g ~n ~t ~secret:(F32.random g) in
    let beta = V32.honest_dealing g ~n ~t ~secret:(F32.random g) in
    ignore (V32.run ~n ~t ~alpha ~beta ~r:(F32.random g) ())

let kernel_e4_batch_vss () =
  let g = Prng.of_int 3 in
  let n = 7 and t = 2 and m = 64 in
  fun () ->
    let secrets = Array.init m (fun _ -> F32.random g) in
    let shares = V32.batch_honest_dealing g ~n ~t ~secrets in
    ignore (V32.run_batch ~n ~t ~shares ~r:(F32.random g) ())

let kernel_e6_bit_gen () =
  let prng = Prng.of_int 4 in
  let g = Prng.split prng in
  let n = 13 and t = 2 and m = 64 in
  fun () -> ignore (BG32.run ~prng ~n ~t ~m ~dealer:0 ~r:(F32.random g) ())

let kernel_e9_coin_gen () =
  let prng = Prng.of_int 5 in
  let oracle = ideal_oracle 55 in
  let n = 13 and t = 2 and m = 16 in
  fun () ->
    match CG16.run ~prng ~oracle ~n ~t ~m () with
    | Some _ -> ()
    | None -> failwith "Coin-Gen failed"

let kernel_e10_cut_and_choose () =
  let g = Prng.of_int 6 in
  let n = 7 and t = 2 in
  fun () ->
    let d = CC16.honest_dealing g ~n ~t ~rounds:16 ~secret:(F16.random g) in
    let challenges = Array.init 16 (fun _ -> Prng.bool g) in
    ignore (CC16.run ~n ~t ~challenges d)

let kernel_e10_feldman () =
  let g = Prng.of_int 7 in
  let n = 7 and t = 2 in
  fun () ->
    let d = Feldman_vss.honest_dealing g ~n ~t ~secret:(Feldman_vss.Fq.random g) in
    ignore (Feldman_vss.run ~n ~t d)

let kernel_e11_from_scratch_coin () =
  let g = Prng.of_int 8 in
  fun () -> ignore (CB16.from_scratch_coin g ~n:13 ~t:2)

let kernel_e12_pool_draw () =
  let pool =
    Pool16.create ~prng:(Prng.of_int 9) ~n:13 ~t:2 ~batch_size:64
      ~refill_threshold:3 ~initial_seed:6 ()
  in
  fun () -> ignore (Pool16.draw_kary pool)

let kernel_e14_coin_expose () =
  let module C16 = Sealed_coin.Make (F16) in
  let g = Prng.of_int 10 in
  let coin = C16.dealer_coin g ~n:13 ~t:2 in
  fun () -> ignore (CE16.run coin)

let kernel_field mul random =
  let g = Prng.of_int 11 in
  let a = random g and b = random g in
  fun () -> ignore (mul a b)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let stage f = Staged.stage (f ()) in
  let tests =
    Test.make_grouped ~name:"dprbg" ~fmt:"%s %s"
      [
        Test.make ~name:"E1:vss-soundness-trial"
          (stage kernel_e1_vss_soundness_trial);
        Test.make ~name:"E2:single-vss" (stage kernel_e2_single_vss);
        Test.make ~name:"E4:batch-vss-M64" (stage kernel_e4_batch_vss);
        Test.make ~name:"E6:bit-gen-M64" (stage kernel_e6_bit_gen);
        Test.make ~name:"E9:coin-gen-M16" (stage kernel_e9_coin_gen);
        Test.make ~name:"E10:cut-and-choose" (stage kernel_e10_cut_and_choose);
        Test.make ~name:"E10:feldman" (stage kernel_e10_feldman);
        Test.make ~name:"E11:from-scratch-coin"
          (stage kernel_e11_from_scratch_coin);
        Test.make ~name:"E12:pool-draw" (stage kernel_e12_pool_draw);
        Test.make ~name:"E14:coin-expose" (stage kernel_e14_coin_expose);
        Test.make ~name:"E13:mult-gf32"
          (stage (fun () -> kernel_field F32.mul F32.random));
        Test.make ~name:"E13:mult-wide128"
          (stage (fun () ->
               kernel_field Gf2_wide.GF128.mul Gf2_wide.GF128.random));
        Test.make ~name:"E13:mult-fft128"
          (stage (fun () ->
               kernel_field Fft_field.GF_k128.mul Fft_field.GF_k128.random));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  print_endline "\n== bechamel wall-clock (monotonic ns per run) ==";
  List.sort (fun (a, _) (b, _) -> compare a b) rows
  |> List.iter (fun (name, r) ->
         let ns =
           match Analyze.OLS.estimates r with
           | Some [ x ] -> Printf.sprintf "%12.1f" x
           | _ -> "     (n/a)"
         in
         Printf.printf "  %-34s %s ns\n" name ns)

(* The acceptance grid for --check-conformance: both deployment sizes of
   the ROADMAP, amortized and single-coin batches. Coin-Gen runs at
   t' = min t ((n-1)/6) inside the suite (it needs n >= 6t+1). *)
let conformance () =
  let ppf = Format.std_formatter in
  let ok =
    List.for_all
      (fun (n, t, m) ->
        Format.fprintf ppf "== conformance at n=%d t=%d M=%d ==@." n t m;
        Conformance.report ppf (Conformance.suite ~n ~t ~m))
      [ (16, 5, 1); (16, 5, 64); (32, 10, 1); (32, 10, 64) ]
  in
  if ok then print_endline "conformance: all formulas hold"
  else begin
    print_endline "conformance: FAILED (measured costs left the paper's bounds)";
    exit 3
  end

let gate args =
  let rec find flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> find flag rest
    | [] -> None
  in
  let required flag =
    match find flag args with
    | Some v -> v
    | None ->
        Printf.eprintf "--gate requires %s FILE\n" flag;
        exit 2
  in
  let tolerance =
    match find "--tolerance" args with
    | Some v -> float_of_string v /. 100.
    | None -> 0.25
  in
  let alloc_tolerance =
    match find "--alloc-tolerance" args with
    | Some v -> float_of_string v /. 100.
    | None -> 0.10
  in
  if
    not
      (Bench_gate.run ~tolerance ~alloc_tolerance
         ~baseline_path:(required "--baseline")
         ~fresh_path:(required "--fresh") ())
  then exit 4

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let micro_only = List.mem "--micro" args in
  let json_only = List.mem "--json" args in
  let rec out_path = function
    | "--out" :: p :: _ -> p
    | _ :: rest -> out_path rest
    | [] -> "BENCH_latest.json"
  in
  if List.mem "--check-conformance" args then conformance ()
  else if List.mem "--check-trajectory" args then begin
    let rec file_path = function
      | "--file" :: p :: _ -> p
      | _ :: rest -> file_path rest
      | [] -> "BENCH_history.jsonl"
    in
    if not (Trajectory.run ~path:(file_path args) ()) then exit 4
  end
  else if List.mem "--gate" args then gate args
  else if json_only then
    Bench_json.run ~smoke:(List.mem "--smoke" args) ~path:(out_path args)
  else if micro_only then micro ()
  else begin
    Printf.printf
      "D-PRBG experiment harness (Bellare-Garay-Rabin, PODC 1996)\n\
       mode: %s | counters are totals over all players; /pl = per player\n"
      (if quick then "quick" else "full");
    Experiments.all ~quick;
    print_endline "\n---- ablations (DESIGN.md §5) ----";
    Ablations.all ();
    print_endline "\n(run with --micro for bechamel wall-clock timings)"
  end
