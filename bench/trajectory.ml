(* BENCH_history.jsonl trajectory validator (--check-trajectory).

   Every bench run appends one row to the trajectory log; nothing ever
   rewrites it. This check re-reads the whole file each time, so merge
   damage, hand edits, encoder drift and duplicate keys are caught the
   run after they land instead of months later when someone finally
   plots the history. Unknown row schemas are fatal by design: the PR
   that starts emitting a new shape must teach this validator about it
   in the same change. *)

let fail fmt =
  Printf.ksprintf (fun s -> raise (Bench_gate.Malformed s)) fmt

(* The hand-rolled parser keeps every key-value pair, so repeated keys —
   which a lenient consumer would silently last-wins over — are still
   visible here. Checked recursively: a duplicate inside an ops entry is
   as damaging as one at top level. *)
let rec check_dup_keys = function
  | Bench_gate.Obj pairs ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (k, v) ->
          if Hashtbl.mem seen k then fail "duplicate key %S" k;
          Hashtbl.add seen k ();
          check_dup_keys v)
        pairs
  | Bench_gate.Arr l -> List.iter check_dup_keys l
  | Bench_gate.Null | Bench_gate.Bool _ | Bench_gate.Num _
  | Bench_gate.Str _ ->
      ()

let str j k = Bench_gate.to_str (Bench_gate.member k j)
let num j k = Bench_gate.to_num (Bench_gate.member k j)

let finite j k =
  let v = num j k in
  if not (Float.is_finite v) then fail "%S is not finite" k;
  v

let nonneg j k =
  let v = finite j k in
  if v < 0. then fail "%S is negative (%g)" k v;
  v

let nonneg_int j k =
  let v = nonneg j k in
  if Float.of_int (Float.to_int v) <> v then fail "%S is not an integer (%g)" k v;
  Float.to_int v

let str_in j k allowed =
  let v = str j k in
  if not (List.mem v allowed) then
    fail "%S is %S; expected one of %s" k v (String.concat "/" allowed);
  v

let arr_of_objs j k =
  List.map
    (function
      | Bench_gate.Obj _ as o -> o
      | _ -> fail "%S entries must be objects" k)
    (Bench_gate.to_arr (Bench_gate.member k j))

let opt_arr_of_objs j k =
  match Bench_gate.member_opt k j with
  | None -> []
  | Some _ -> arr_of_objs j k

(* "dprbg-bench-history/1": one row per bench --json run — kernel
   trajectory ops plus transport and chaos-recovery wall clocks.
   plan_alloc_w and the transport/chaos arrays postdate the earliest
   rows, so they stay optional; everything present must be sound. *)
let check_bench_history row =
  ignore (str_in row "mode" [ "smoke"; "full" ]);
  let ops = arr_of_objs row "ops" in
  if ops = [] then fail "\"ops\" must be non-empty";
  List.iter
    (fun op ->
      ignore (str op "op");
      ignore (nonneg_int op "plan_mults");
      ignore (nonneg_int op "naive_mults");
      ignore (nonneg op "plan_ns");
      ignore (nonneg op "naive_ns");
      match Bench_gate.member_opt "plan_alloc_w" op with
      | Some _ -> ignore (nonneg op "plan_alloc_w")
      | None -> ())
    ops;
  List.iter
    (fun r ->
      ignore (str r "backend");
      ignore (nonneg_int r "campaigns");
      ignore (nonneg r "wall_ns"))
    (opt_arr_of_objs row "transports");
  List.iter
    (fun r ->
      ignore (str r "backend");
      ignore (nonneg_int r "killed");
      ignore (nonneg r "wall_ns"))
    (opt_arr_of_objs row "chaos_recovery");
  List.iter
    (fun r ->
      let epochs = nonneg_int r "epochs" in
      let replays = nonneg_int r "replays" in
      if epochs = 0 || replays = 0 then
        fail "\"beacon_recovery\" must replay at least one epoch";
      ignore (nonneg r "wall_ns");
      ignore (nonneg r "epochs_per_s"))
    (opt_arr_of_objs row "beacon_recovery")

(* "dprbg-loadgen/1": one row per beacon loadgen run. *)
let check_loadgen row =
  ignore (str_in row "arrival" [ "poisson"; "bursty" ]);
  let rate = nonneg row "rate" in
  if rate = 0. then fail "\"rate\" must be positive";
  let draws = nonneg_int row "draws" in
  let epochs = nonneg_int row "epochs" in
  if draws > 0 && epochs = 0 then fail "%d draws vended across 0 epochs" draws;
  ignore (nonneg_int row "shed");
  ignore (nonneg row "draws_per_coin");
  ignore (nonneg row "p50_vend_ns");
  ignore (nonneg row "p99_vend_ns");
  ignore (nonneg row "elapsed_s");
  let sr = nonneg row "shed_rate" in
  if sr > 1. then fail "\"shed_rate\" is %g; must be in [0, 1]" sr

let known =
  [ ("dprbg-bench-history/1", check_bench_history);
    ("dprbg-loadgen/1", check_loadgen) ]

let check_row json =
  check_dup_keys json;
  let schema = str json "schema" in
  match List.assoc_opt schema known with
  | Some check -> check json
  | None ->
      fail
        "unknown row schema %S — the change that emits a new schema must \
         extend the trajectory validator to cover it"
        schema

let run ~path () =
  if not (Sys.file_exists path) then begin
    Printf.printf "trajectory: %s does not exist, nothing to validate\n" path;
    true
  end
  else begin
    let ic = open_in path in
    let counts = Hashtbl.create 4 in
    let errors = ref 0 in
    let line_no = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr line_no;
         if String.trim line <> "" then begin
           match
             let json = Bench_gate.parse line in
             check_row json;
             json
           with
           | json ->
               let schema = str json "schema" in
               Hashtbl.replace counts schema
                 (1 + Option.value ~default:0 (Hashtbl.find_opt counts schema))
           | exception Bench_gate.Malformed msg ->
               incr errors;
               Printf.printf "trajectory: %s:%d: %s\n" path !line_no msg
         end
       done
     with End_of_file -> close_in ic);
    Hashtbl.fold (fun s c acc -> (s, c) :: acc) counts []
    |> List.sort compare
    |> List.iter (fun (s, c) ->
           Printf.printf "trajectory: %4d row(s) of %s\n" c s);
    if !errors = 0 then begin
      Printf.printf "trajectory: OK (%d line(s) in %s)\n" !line_no path;
      true
    end
    else begin
      Printf.printf "trajectory: FAILED — %d bad row(s) in %s\n" !errors path;
      false
    end
  end
