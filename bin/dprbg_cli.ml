(* dprbg — command-line front end to the D-PRBG simulation stack.

   Subcommands:
     coins      draw shared coins from a bootstrapped pool
     soundness  measure cheating-dealer acceptance rates (Lemmas 1, 3, 5)
     costs      cost vectors for the paper's protocols at given parameters
     agreement  run common-coin randomized Byzantine agreements
     pool       persistent pool: state survives process restarts
     fuzz       adversarial property fuzzing with shrinking and replay
     trace      structured protocol traces (JSONL export, round timeline)
     beacon     randomness-beacon service: chained epochs, batched vending
     loadgen    drive the beacon with synthetic arrivals, report latency
*)

module F = Gf2k.GF32
module Pool = Pool.Make (F)
module B = Beacon.Make (F)
module CG = Pool.CG
module CE = Pool.CE
module V = Vss.Make (F)
module BG = Bit_gen.Make (F)

open Cmdliner

(* -v / -vv (from Logs_cli) enables protocol tracing: Coin-Gen batch
   events at info, per-round network activity at debug. *)
let setup_logs =
  let init style_renderer level =
    Fmt_tty.setup_std_outputs ?style_renderer ();
    Logs.set_level level;
    Logs.set_reporter (Logs_fmt.reporter ())
  in
  Term.(const init $ Fmt_cli.style_renderer () $ Logs_cli.level ())

let seed_arg =
  let doc = "PRNG seed (runs are deterministic given the seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let t_arg =
  let doc = "Number of Byzantine players to tolerate." in
  Arg.(value & opt int 2 & info [ "t" ] ~docv:"T" ~doc)

let n_for t = (6 * t) + 1

let backend_conv =
  let parse s =
    match Transport.backend_of_string s with
    | Ok b -> Ok b
    | Error e -> Error (`Msg e)
  in
  let print ppf b = Format.pp_print_string ppf (Transport.backend_name b) in
  Arg.conv (parse, print)

let transport_arg =
  let doc =
    "Transport backend: $(b,sim) (in-memory simulator, the default), \
     $(b,domains) (one OCaml domain per player, shared-memory mailboxes), or \
     $(b,socket) (one local process per player over length-prefixed frames). \
     Results are byte-identical across backends."
  in
  Arg.(
    value
    & opt backend_conv Transport.Sim
    & info [ "transport" ] ~docv:"BACKEND" ~doc)

let transport_timeout_arg =
  let doc =
    "Per-read receive timeout for the byte backends, in seconds. Takes \
     precedence over the $(b,DPRBG_TRANSPORT_TIMEOUT) environment variable \
     (default 60). Must be positive."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "transport-timeout" ] ~docv:"SECONDS" ~doc)

let apply_transport_timeout t =
  (try Transport.set_timeout_override t
   with Invalid_argument _ ->
     Printf.eprintf "error: --transport-timeout must be a positive number\n";
     exit 2);
  (* Force the effective timeout now: a malformed DPRBG_TRANSPORT_TIMEOUT
     is a configuration error and should die as one, up front, not as an
     uncaught exception from the middle of a session. *)
  match Transport.timeout () with
  | _ -> ()
  | exception Transport.Backend_failure msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2

(* ------------------------------------------------------------------ *)

let coins_cmd =
  let count =
    Arg.(value & opt int 20 & info [ "count"; "c" ] ~docv:"N" ~doc:"Coins to draw.")
  in
  let bits =
    Arg.(value & flag & info [ "bits" ] ~doc:"Draw binary coins instead of k-ary ones.")
  in
  let run () seed t count bits transport timeout =
    apply_transport_timeout timeout;
    Transport.with_backend transport @@ fun () ->
    let n = n_for t in
    let pool =
      Pool.create ~prng:(Prng.of_int seed) ~n ~t ~batch_size:32
        ~refill_threshold:3 ~initial_seed:6 ()
    in
    if bits then begin
      for _ = 1 to count do
        print_char (if Pool.draw_bit pool then '1' else '0')
      done;
      print_newline ()
    end
    else
      for i = 1 to count do
        Printf.printf "%4d  %s\n" i (F.to_string (Pool.draw_kary pool))
      done;
    let s = Pool.stats pool in
    Printf.printf
      "# n=%d t=%d | refills=%d generated=%d seed-consumed=%d dealer=%d\n" n t
      s.Pool.refills s.Pool.generated_coins s.Pool.seed_coins_consumed
      s.Pool.dealer_coins
  in
  let info =
    Cmd.info "coins" ~doc:"Draw shared coins from a bootstrapped D-PRBG pool."
  in
  Cmd.v info
    Term.(const run $ setup_logs $ seed_arg $ t_arg $ count $ bits
          $ transport_arg $ transport_timeout_arg)

(* ------------------------------------------------------------------ *)

let soundness_cmd =
  let trials =
    Arg.(value & opt int 20000 & info [ "trials" ] ~docv:"N" ~doc:"Attack trials.")
  in
  let k =
    Arg.(
      value & opt int 8
      & info [ "k" ] ~docv:"K" ~doc:"Field bits (small, so the rate is visible).")
  in
  let m =
    Arg.(value & opt int 4 & info [ "m" ] ~docv:"M" ~doc:"Batch size for Lemma 3/5.")
  in
  let run () seed t trials k m =
    if k < 3 || k > 16 then failwith "k must be in [3, 16] for rate experiments";
    let n = n_for t in
    let module Fk = Gf2k.Make (struct let k = k end) in
    let module Vk = Vss.Make (Fk) in
    let module BGk = Bit_gen.Make (Fk) in
    let g = Prng.of_int seed in
    let p = float_of_int (1 lsl k) in
    (* Lemma 1: targeted single-VSS cheat. *)
    let accepts = ref 0 in
    for _ = 1 to trials do
      let guess = Fk.random_nonzero g in
      let alpha, beta = Vk.targeted_cheating_dealing g ~n ~t ~guess in
      if Vk.run ~n ~t ~alpha ~beta ~r:(Fk.random g) () = Vk.Accept then
        incr accepts
    done;
    Printf.printf "Lemma 1 | measured %.5f  bound 1/p = %.5f\n"
      (float_of_int !accepts /. float_of_int trials)
      (1.0 /. p);
    (* Lemma 3: targeted batch cheat. *)
    let accepts = ref 0 in
    for _ = 1 to trials do
      let roots =
        Array.of_list
          (List.map (fun i -> Fk.of_int (i + 1))
             (Prng.sample_distinct g m ((1 lsl k) - 1)))
      in
      let shares = Vk.batch_targeted_cheating_dealing g ~n ~t ~roots in
      if Vk.run_batch ~n ~t ~shares ~r:(Fk.random g) () = Vk.Accept then
        incr accepts
    done;
    Printf.printf "Lemma 3 | measured %.5f  bound M/p = %.5f\n"
      (float_of_int !accepts /. float_of_int trials)
      (float_of_int m /. p);
    (* Lemma 5: Bit-Gen with a bad-degree dealing. *)
    let accepts = ref 0 in
    let bitgen_trials = min trials 2000 in
    for s = 1 to bitgen_trials do
      let prng = Prng.of_int (seed + s) in
      let r = Fk.random g in
      let views, _ =
        BGk.run ~dealer_behavior:(BGk.Bad_degree [ 0 ]) ~prng ~n ~t ~m ~dealer:0
          ~r ()
      in
      if Array.exists (fun v -> v.BGk.check_poly <> None) views then
        incr accepts
    done;
    Printf.printf "Lemma 5 | measured %.5f  bound M/p = %.5f  (%d trials)\n"
      (float_of_int !accepts /. float_of_int bitgen_trials)
      (float_of_int m /. p)
      bitgen_trials
  in
  let info =
    Cmd.info "soundness"
      ~doc:"Measure optimal cheating-dealer acceptance rates (Lemmas 1, 3, 5)."
  in
  Cmd.v info Term.(const run $ setup_logs $ seed_arg $ t_arg $ trials $ k $ m)

(* ------------------------------------------------------------------ *)

let costs_cmd =
  let m =
    Arg.(value & opt int 64 & info [ "m" ] ~docv:"M" ~doc:"Secrets/coins per batch.")
  in
  let run () seed t m =
    let n = n_for t in
    let g = Prng.of_int seed in
    let show label snap =
      Printf.printf "%-28s %s\n" label (Fmt.str "%a" Metrics.pp snap)
    in
    Printf.printf "n=%d t=%d m=%d field=%s (totals across all players)\n\n" n t
      m F.name;
    let _, c =
      Metrics.with_counting (fun () ->
          let alpha = V.honest_dealing g ~n ~t ~secret:(F.random g) in
          let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
          ignore (V.run ~n ~t ~alpha ~beta ~r:(F.random g) ()))
    in
    show "VSS (Fig. 2, one secret)" c;
    let _, c =
      Metrics.with_counting (fun () ->
          let secrets = Array.init m (fun _ -> F.random g) in
          let shares = V.batch_honest_dealing g ~n ~t ~secrets in
          ignore (V.run_batch ~n ~t ~shares ~r:(F.random g) ()))
    in
    show (Printf.sprintf "Batch-VSS (Fig. 3, M=%d)" m) c;
    let _, c =
      Metrics.with_counting (fun () ->
          let prng = Prng.of_int (seed + 1) in
          ignore (BG.run ~prng ~n ~t ~m ~dealer:0 ~r:(F.random g) ()))
    in
    show (Printf.sprintf "Bit-Gen (Fig. 4, M=%d)" m) c;
    let _, c =
      Metrics.with_counting (fun () ->
          let prng = Prng.of_int (seed + 2) in
          let sg = Prng.split prng in
          let oracle () = Metrics.without_counting (fun () -> F.random sg) in
          ignore (CG.run ~prng ~oracle ~n ~t ~m ()))
    in
    show (Printf.sprintf "Coin-Gen (Fig. 5, M=%d)" m) c
  in
  let info =
    Cmd.info "costs" ~doc:"Cost vectors of the paper's protocols (Lemmas 2/4/6, Thm 2)."
  in
  Cmd.v info Term.(const run $ setup_logs $ seed_arg $ t_arg $ m)

(* ------------------------------------------------------------------ *)

let agreement_cmd =
  let rounds =
    Arg.(value & opt int 20 & info [ "rounds" ] ~docv:"N" ~doc:"Agreements to run.")
  in
  let run () seed t rounds transport =
    Transport.with_backend transport @@ fun () ->
    let n = n_for t in
    let g = Prng.of_int seed in
    let pool =
      Pool.create ~prng:(Prng.split g) ~n ~t ~batch_size:32 ~refill_threshold:3
        ~initial_seed:6 ()
    in
    let ok = ref 0 in
    for i = 1 to rounds do
      let inputs = Array.init n (fun _ -> Prng.bool g) in
      match
        Common_coin_ba.run
          ~coin:(fun () -> Pool.draw_bit pool)
          ~n ~t ~max_phases:64 ~inputs ()
      with
      | None -> Printf.printf "round %d: no termination\n" i
      | Some r ->
          incr ok;
          Printf.printf "round %2d: decided %b in %d phase(s)\n" i
            r.Common_coin_ba.decisions.(0) r.Common_coin_ba.phases
    done;
    Printf.printf "# %d/%d agreements completed; pool stats: %s\n" !ok rounds
      (let s = Pool.stats pool in
       Printf.sprintf "exposed=%d refills=%d" s.Pool.coins_exposed s.Pool.refills)
  in
  let info =
    Cmd.info "agreement"
      ~doc:"Run randomized Byzantine agreements on pool-supplied common coins."
  in
  Cmd.v info
    Term.(const run $ setup_logs $ seed_arg $ t_arg $ rounds $ transport_arg)

(* ------------------------------------------------------------------ *)

let pool_cmd =
  let state_file =
    Arg.(
      value
      & opt string "dprbg-pool.state"
      & info [ "file"; "f" ] ~docv:"PATH" ~doc:"Pool state file.")
  in
  let draws =
    Arg.(value & opt int 10 & info [ "draws" ] ~docv:"N" ~doc:"Coins to draw.")
  in
  let fresh =
    Arg.(
      value & flag
      & info [ "fresh" ] ~doc:"Ignore any existing state file and bootstrap anew.")
  in
  let suspects =
    Arg.(
      value & flag
      & info [ "suspects" ]
          ~doc:
            "Print the sentinel ledger's per-player suspicion/quarantine \
             table after drawing.")
  in
  let quarantine =
    Arg.(
      value
      & opt (some int) None
      & info [ "quarantine" ] ~docv:"SCORE"
          ~doc:
            "Run an active sentinel ledger: players whose suspicion score \
             reaches $(docv) are quarantined out of subset selection and \
             leader rotation. Without this flag the ledger is passive \
             (evidence is recorded but never acted on).")
  in
  let run () seed t state_file draws fresh suspects quarantine transport
      timeout =
    apply_transport_timeout timeout;
    Transport.with_backend transport @@ fun () ->
    let n = n_for t in
    let sentinel =
      match quarantine with
      | None -> Some Sentinel.passive
      | Some threshold -> Some (Sentinel.active ~threshold ())
    in
    let pool =
      if (not fresh) && Sys.file_exists state_file then begin
        let ic = open_in_bin state_file in
        let len = in_channel_length ic in
        let data = really_input_string ic len in
        close_in ic;
        match Pool.load ~sentinel ~prng:(Prng.of_int seed) ~batch_size:32
                ~refill_threshold:3 (Bytes.of_string data)
        with
        | pool ->
            Printf.printf "# restored pool from %s\n" state_file;
            pool
        | exception Pool.Corrupt_snapshot msg ->
            Printf.eprintf
              "error: %s is not an intact pool snapshot (%s)\n\
               Refusing to serve coins from damaged state; rerun with \
               --fresh to bootstrap anew (uses the trusted dealer once).\n"
              state_file msg;
            exit 1
      end
      else begin
        Printf.printf "# bootstrapping a fresh pool (trusted dealer used once)\n";
        Pool.create ~sentinel ~prng:(Prng.of_int seed) ~n ~t ~batch_size:32
          ~refill_threshold:3 ~initial_seed:6 ()
      end
    in
    let print_suspect_table () =
      match Pool.ledger pool with
      | Some ledger -> Fmt.pr "%a" Sentinel.Ledger.pp_table ledger
      | None -> Printf.printf "# no sentinel ledger configured\n"
    in
    let save_state () =
      (* Atomic (temp + rename): a crash mid-save never clobbers the
         previous good snapshot. *)
      Beacon_journal.write_file_atomic state_file (Pool.save pool)
    in
    (try
       for i = 1 to draws do
         Printf.printf "%4d  %s\n" i (F.to_string (Pool.draw_kary pool))
       done
     with
    | Pool.Safe_mode msg ->
        (* The evidence implies more than t corrupted players: the fault
           assumption under reconstruction is void. Persist the ledger so
           the operator can inspect it, then refuse with a dedicated
           exit code. *)
        save_state ();
        Printf.eprintf
          "error: safe mode — refusing to vend possibly-biased coins.\n%s\n"
          msg;
        exit 5
    | Pool.Starved msg ->
        (* The refill retry budget ran dry. The message carries the
           attribution an operator needs (refill_attempts, backoff_rounds,
           coins left); persist what survived so a later run resumes. *)
        save_state ();
        if suspects then print_suspect_table ();
        Printf.eprintf "error: pool starved — %s\n" msg;
        exit 1);
    save_state ();
    let s = Pool.stats pool in
    Printf.printf
      "# saved %d sealed coins to %s | lifetime: exposed=%d refills=%d \
       refill_attempts=%d backoff_rounds=%d dealer=%d\n"
      (Pool.available pool) state_file s.Pool.coins_exposed s.Pool.refills
      s.Pool.refill_attempts s.Pool.backoff_rounds s.Pool.dealer_coins;
    if suspects then print_suspect_table ()
  in
  let info =
    Cmd.info "pool"
      ~doc:
        "Draw coins from a persistent pool: state survives restarts, the \
         trusted dealer is only ever used at first bootstrap."
  in
  Cmd.v info
    Term.(
      const run $ setup_logs $ seed_arg $ t_arg $ state_file $ draws $ fresh
      $ suspects $ quarantine $ transport_arg $ transport_timeout_arg)

(* ------------------------------------------------------------------ *)

(* Counterexample artifacts: the replay line (plus provenance comments —
   replayers only read the first line) and a full JSONL trace of the
   shrunk scenario, re-run under a collector. CI uploads the directory
   from the nightly soak so a red run ships its own reproduction kit. *)
let dump_artifacts dir ~label ~replay_line ~comments ~scenario =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let base = Filename.concat dir label in
  let oc = open_out (base ^ ".replay") in
  Printf.fprintf oc "%s\n" replay_line;
  List.iter (fun c -> Printf.fprintf oc "# %s\n" c) comments;
  close_out oc;
  let _, trace = Trace.try_collect scenario in
  Trace.write_jsonl (base ^ ".trace.jsonl") trace;
  Printf.printf "# artifacts: %s.replay %s.trace.jsonl\n" base base

let dump_failure_artifacts dir (f : Fuzz.failure) =
  dump_artifacts dir
    ~label:(Printf.sprintf "counterexample-%d" f.Fuzz.trial)
    ~replay_line:(Fuzz_config.to_string f.Fuzz.shrunk)
    ~comments:
      [
        "message: " ^ f.Fuzz.message;
        "original: " ^ Fuzz_config.to_string f.Fuzz.original;
        "original message: " ^ f.Fuzz.original_message;
        Printf.sprintf "shrink steps: %d, failing trial: %d" f.Fuzz.shrink_steps
          f.Fuzz.trial;
      ]
    ~scenario:(fun () -> Fuzz.run_config f.Fuzz.shrunk)

let fuzz_cmd =
  let trials =
    Arg.(
      value & opt int 2000
      & info [ "trials" ] ~docv:"N" ~doc:"Random scenarios to run (soak knob).")
  in
  let property =
    let names = String.concat ", " (List.map (fun s -> s.Fuzz.name) Fuzz.registry) in
    Arg.(
      value
      & opt (some string) None
      & info [ "property"; "p" ] ~docv:"NAME"
          ~doc:(Printf.sprintf "Fuzz only one invariant. One of: %s." names))
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"LINE"
          ~doc:
            "Re-run one scenario from a counterexample line (as printed on \
             failure) instead of fuzzing.")
  in
  let self_check =
    Arg.(
      value & flag
      & info [ "self-check" ]
          ~doc:
            "Inject each known bug and verify the fuzzer finds, shrinks and \
             replays it — tests the harness itself.")
  in
  let faults_profile =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"PROFILE"
          ~doc:
            "Degrade the network for every generated trial: comma-separated \
             axes $(b,drop)/$(b,delay)/$(b,dup)/$(b,corrupt)/$(b,reorder) \
             (percent, 0-100), $(b,crash) (players) and $(b,rt) (retransmit \
             budget, 0-8), e.g. $(b,drop=20,delay=10,crash=1,rt=2). Values \
             are floors, clamped per property to what its invariant \
             tolerates; properties that require a pristine network are \
             unaffected.")
  in
  let artifacts =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifacts" ] ~docv:"DIR"
          ~doc:
            "On failure, write the counterexample replay line and a full \
             JSONL trace of the shrunk scenario into $(docv) (created if \
             missing) — what CI uploads from the nightly soak.")
  in
  let run () seed trials property replay self_check faults_profile artifacts =
    let degrade =
      match faults_profile with
      | None -> None
      | Some s -> (
          match Fuzz_config.degrade_of_string s with
          | Ok d -> Some d
          | Error e ->
              Printf.eprintf "cannot parse --faults profile: %s\n" e;
              exit 2)
    in
    match replay with
    | Some line -> (
        match Fuzz_config.of_string line with
        | Error e ->
            Printf.eprintf "cannot parse replay line: %s\n" e;
            exit 2
        | Ok cfg -> (
            match Fuzz.run_config cfg with
            | Ok () ->
                Printf.printf "PASS %s\n" (Fuzz_config.to_string cfg)
            | Error msg ->
                Printf.printf "FAIL %s\n     %s\n" (Fuzz_config.to_string cfg)
                  msg;
                Option.iter
                  (fun dir ->
                    dump_artifacts dir ~label:"replay-failure"
                      ~replay_line:(Fuzz_config.to_string cfg)
                      ~comments:[ "message: " ^ msg ]
                      ~scenario:(fun () -> Fuzz.run_config cfg))
                  artifacts;
                exit 1))
    | None ->
        if self_check then begin
          let failed = ref false in
          List.iter
            (fun bug ->
              let name = Fuzz_config.bug_name bug in
              match Fuzz.self_check ~seed bug with
              | Ok f ->
                  Format.printf
                    "self-check %s: found at trial %d, shrunk in %d step(s)@.  \
                     %s@."
                    name f.Fuzz.trial f.Fuzz.shrink_steps
                    (Fuzz_config.to_string f.Fuzz.shrunk)
              | Error e ->
                  failed := true;
                  Format.printf "self-check %s: FAILED — %s@." name e)
            [ Fuzz_config.Accept_high_degree; Fuzz_config.Drop_gamma;
              Fuzz_config.Lagrange_expose; Fuzz_config.No_retransmit ];
          if !failed then exit 1
        end
        else begin
          (match property with
          | Some name when Fuzz.find_spec name = None ->
              Printf.eprintf "unknown property %S; known: %s\n" name
                (String.concat ", "
                   (List.map (fun s -> s.Fuzz.name) Fuzz.registry));
              exit 2
          | _ -> ());
          let report = Fuzz.campaign ?degrade ?property ~trials ~seed () in
          Format.printf "%a@." Fuzz.pp_report report;
          match report.Fuzz.failure with
          | None -> ()
          | Some f ->
              Option.iter (fun dir -> dump_failure_artifacts dir f) artifacts;
              exit 1
        end
  in
  let info =
    Cmd.info "fuzz"
      ~doc:
        "Fuzz the protocol stack against random Byzantine schedules; shrink \
         and print a replayable counterexample on any invariant violation."
  in
  Cmd.v info
    Term.(
      const run $ setup_logs $ seed_arg $ trials $ property $ replay
      $ self_check $ faults_profile $ artifacts)

(* ------------------------------------------------------------------ *)

let trace_cmd =
  let draws =
    Arg.(
      value & opt int 3
      & info [ "draws" ] ~docv:"N"
          ~doc:"Pool draws to trace in the default scenario.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"LINE"
          ~doc:
            "Trace one fuzz scenario from its counterexample line instead of \
             the pool scenario — the full trace of a failing trial.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the JSONL trace here ($(b,-) = stdout).")
  in
  let timeline =
    Arg.(
      value & flag
      & info [ "timeline" ]
          ~doc:
            "Render the per-player round timeline (and span tree) instead of \
             JSONL on stdout; with --out FILE, both are produced.")
  in
  let run () seed t draws replay out timeline transport =
    Transport.with_backend transport @@ fun () ->
    let status, trace, failed =
      match replay with
      | Some line -> (
          match Fuzz_config.of_string line with
          | Error e ->
              Printf.eprintf "cannot parse replay line: %s\n" e;
              exit 2
          | Ok cfg -> (
              let result, trace =
                Trace.try_collect (fun () -> Fuzz.run_config cfg)
              in
              match result with
              | Ok (Ok ()) -> ("PASS " ^ Fuzz_config.to_string cfg, trace, false)
              | Ok (Error msg) ->
                  ( Printf.sprintf "FAIL %s: %s" (Fuzz_config.to_string cfg) msg,
                    trace, true )
              | Error e ->
                  ( Printf.sprintf "RAISED %s: %s" (Fuzz_config.to_string cfg)
                      (Printexc.to_string e),
                    trace, true )))
      | None ->
          let n = n_for t in
          let (), trace =
            Trace.collect (fun () ->
                let pool =
                  Pool.create ~prng:(Prng.of_int seed) ~n ~t ~batch_size:32
                    ~refill_threshold:3 ~initial_seed:6 ()
                in
                for _ = 1 to draws do
                  ignore (Pool.draw_kary pool)
                done)
          in
          ( Printf.sprintf "traced %d pool draw(s) at n=%d t=%d" draws n t,
            trace, false )
    in
    (match out with
    | "-" ->
        if timeline then begin
          Format.printf "%a" Trace.pp trace;
          Format.printf "%a" Trace.pp_timeline trace
        end
        else Format.printf "%a" Trace.pp_jsonl trace
    | path ->
        Trace.write_jsonl path trace;
        Printf.printf "# wrote %s\n" path;
        if timeline then begin
          Format.printf "%a" Trace.pp trace;
          Format.printf "%a" Trace.pp_timeline trace
        end);
    Printf.printf "# %s\n" status;
    if failed then exit 1
  in
  let info =
    Cmd.info "trace"
      ~doc:
        "Record a structured protocol trace — nested protocol/phase/round \
         spans with per-span cost deltas and send/recv/verdict events — as \
         JSONL or a per-player round timeline."
  in
  Cmd.v info
    Term.(const run $ setup_logs $ seed_arg $ t_arg $ draws $ replay $ out
          $ timeline $ transport_arg)

(* ------------------------------------------------------------------ *)

(* Differential soak: run the same seeded pool campaign on the sim
   oracle and on one byte-level backend, compare the full transcripts
   (draws, pool stats, metrics, fault tally), repeat over consecutive
   seeds. This is the nightly flake guard for nondeterministic
   interleavings: one invocation per backend, 50 iterations each, with
   every mismatch printed as a ready-to-paste replay line. *)
let transport_cmd =
  let backend =
    let doc =
      "Backend under test: $(b,domains) or $(b,socket) (compared against the \
       in-process sim oracle)."
    in
    Arg.(
      required
      & opt (some backend_conv) None
      & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let iters =
    Arg.(
      value & opt int 1
      & info [ "iters" ] ~docv:"N"
          ~doc:"Iterations; iteration $(i,k) uses seed SEED+$(i,k).")
  in
  let draws =
    Arg.(value & opt int 5 & info [ "draws" ] ~docv:"N" ~doc:"Pool draws per iteration.")
  in
  let faulty =
    Arg.(
      value & flag
      & info [ "faulty" ]
          ~doc:"Run each campaign under a degraded Net.Plan schedule.")
  in
  let run () seed t iters draws faulty backend timeout =
    apply_transport_timeout timeout;
    if backend = Transport.Sim then begin
      Printf.eprintf "error: --backend must be domains or socket\n";
      exit 2
    end;
    let n = n_for t in
    let campaign ~seed () =
      let buf = Buffer.create 512 in
      let body () =
        let pool =
          Pool.create ~prng:(Prng.of_int seed) ~n ~t ~batch_size:8
            ~refill_threshold:3 ~initial_seed:4 ()
        in
        (match List.init draws (fun _ -> Pool.draw_kary pool) with
        | values ->
            List.iteri
              (fun k v ->
                Buffer.add_string buf
                  (Printf.sprintf "draw%d:%s\n" k (F.to_string v)))
              values
        | exception Pool.Starved why ->
            Buffer.add_string buf (Printf.sprintf "starved:%s\n" why));
        let s = Pool.stats pool in
        Buffer.add_string buf
          (Printf.sprintf "stats:refills=%d generated=%d exposed=%d ba=%d\n"
             s.Pool.refills s.Pool.generated_coins s.Pool.coins_exposed
             s.Pool.ba_iterations)
      in
      let run_body () =
        if not faulty then body ()
        else begin
          let plan =
            Transport.Plan.make ~drop:0.05 ~delay:0.05 ~max_delay:2
              ~reorder:0.1 ~retransmits:2 ~seed:((seed * 13) + 5) ()
          in
          Transport.with_plan plan body;
          Buffer.add_string buf
            (Fmt.str "plan:%a\n" Transport.Plan.pp_stats
               (Transport.Plan.stats plan))
        end
      in
      let (), metrics = Metrics.with_counting run_body in
      Buffer.add_string buf (Fmt.str "metrics:%a\n" Metrics.pp metrics);
      Buffer.contents buf
    in
    ignore (campaign ~seed ()) (* warm lazy field tables once *);
    let failures = ref 0 in
    for k = 0 to iters - 1 do
      let s = seed + k in
      let c = campaign ~seed:s in
      let oracle = c () in
      let got = Transport.with_backend backend c in
      if String.equal oracle got then
        Printf.printf "iter %3d seed=%d OK\n%!" k s
      else begin
        incr failures;
        Printf.printf "iter %3d seed=%d MISMATCH\n%!" k s;
        Printf.printf
          "replay: dprbg transport --backend %s --seed %d --t %d --draws %d%s \
           --iters 1\n\
           %!"
          (Transport.backend_name backend)
          s t draws
          (if faulty then " --faulty" else "")
      end
    done;
    Printf.printf "# %d/%d iterations matched the sim oracle on %s\n"
      (iters - !failures) iters
      (Transport.backend_name backend);
    if !failures > 0 then exit 1
  in
  let info =
    Cmd.info "transport"
      ~doc:
        "Differential transport soak: run seeded pool campaigns on a \
         domains/socket backend and compare full transcripts against the \
         in-process sim oracle, printing a replay line for every mismatch."
  in
  Cmd.v info
    Term.(
      const run $ setup_logs $ seed_arg $ t_arg $ iters $ draws $ faulty
      $ backend $ transport_timeout_arg)

(* ------------------------------------------------------------------ *)

(* Chaos soak: inflict seeded *real* failures — SIGKILLed player
   processes, stalled peers, garbled streams — on a supervised byte
   backend and check the run against the sim oracle with the equivalent
   simulated crash schedule. Within the fault bound the transcripts must
   match (exactly for kills/stalls; truncation additionally accrues
   Undecodable evidence the simulator cannot produce, so only the draws
   are compared); past the bound the run must refuse in Safe_mode (exit
   6) rather than hang or crash. *)
let chaos_cmd =
  let kills =
    Arg.(value & opt int 1 & info [ "kill" ] ~docv:"N" ~doc:"Peers to SIGKILL.")
  in
  let stalls =
    Arg.(
      value & opt int 0
      & info [ "stall" ] ~docv:"N"
          ~doc:
            "Peers to wedge for $(b,--stall-duration) seconds (under the \
             retry budget the read deadline machinery recovers them; over \
             it they are declared dead).")
  in
  let truncates =
    Arg.(
      value & opt int 0
      & info [ "truncate" ] ~docv:"N"
          ~doc:
            "Peers whose stream gets undecodable bytes injected mid-run \
             (attributed as Undecodable evidence).")
  in
  let stall_duration =
    Arg.(
      value & opt float 0.4
      & info [ "stall-duration" ] ~docv:"SECONDS"
          ~doc:"How long a stalled peer stays wedged.")
  in
  let deadline =
    Arg.(
      value & opt float 0.25
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-attempt supervised read deadline (2 retries, 2x backoff).")
  in
  let iters =
    Arg.(
      value & opt int 1
      & info [ "iters" ] ~docv:"N"
          ~doc:"Iterations; iteration $(i,k) uses seed SEED+$(i,k).")
  in
  let draws =
    Arg.(value & opt int 3 & info [ "draws" ] ~docv:"N" ~doc:"Pool draws per iteration.")
  in
  let run () seed t kills stalls truncates stall_duration deadline iters draws
      backend timeout =
    apply_transport_timeout timeout;
    if backend = Transport.Sim then begin
      Printf.eprintf "error: --transport must be domains or socket\n";
      exit 2
    end;
    if kills + stalls + truncates = 0 then begin
      Printf.eprintf "error: schedule at least one fault (--kill/--stall/--truncate)\n";
      exit 2
    end;
    let n = n_for t in
    if kills + stalls + truncates > n then begin
      Printf.eprintf "error: more victims than players (n=%d)\n" n;
      exit 2
    end;
    let retries = 2 and backoff = 2.0 in
    let cfg =
      Transport.Supervisor.make ~deadline ~retries ~backoff ~fault_bound:t ()
    in
    let budget = Transport.Supervisor.total_budget cfg in
    (* A run's transcript: the drawn coins, the sentinel evidence rows,
       the fault tally and the cost vector — everything the equivalence
       contract covers. [crashes] is the plan's static schedule (the sim
       oracle's stand-in for the real failures); [real] runs the chaos
       schedule under supervision instead. *)
    let transcript ~s ~events ~crashes ~real () =
      let buf = Buffer.create 512 in
      let plan = Transport.Plan.make ~crashes ~seed:((s * 17) + 3) () in
      let body () =
        let pool =
          Pool.create ~prng:(Prng.of_int s) ~n ~t ~batch_size:8
            ~refill_threshold:3 ~initial_seed:4 ()
        in
        (match List.init draws (fun _ -> Pool.draw_kary pool) with
        | values ->
            List.iteri
              (fun k v ->
                Buffer.add_string buf
                  (Printf.sprintf "draw%d:%s\n" k (F.to_string v)))
              values
        | exception Pool.Starved why ->
            Buffer.add_string buf (Printf.sprintf "starved:%s\n" why));
        match Pool.ledger pool with
        | None -> ()
        | Some ledger ->
            Array.iteri
              (fun p row ->
                if Array.exists (fun c -> c > 0) row then
                  Buffer.add_string buf
                    (Printf.sprintf "evidence:p%d:%s\n" p
                       (String.concat ","
                          (List.map string_of_int (Array.to_list row)))))
              (Sentinel.Ledger.dump ledger)
      in
      let safe = ref None in
      (let (), metrics =
         Metrics.with_counting (fun () ->
             try
               if real then
                 Transport.with_chaos events (fun () ->
                     Transport.with_supervision ~deadline ~retries ~backoff
                       ~fault_bound:t (fun () ->
                         Transport.with_plan plan body))
               else Transport.with_plan plan body
             with
             | Transport.Safe_mode msg -> safe := Some ("transport: " ^ msg)
             | Pool.Safe_mode msg -> safe := Some ("pool: " ^ msg))
       in
       Buffer.add_string buf
         (Fmt.str "plan:%a\n" Transport.Plan.pp_stats
            (Transport.Plan.stats plan));
       Buffer.add_string buf (Fmt.str "metrics:%a\n" Metrics.pp metrics));
      (Buffer.contents buf, !safe)
    in
    let is_evidence l = String.length l >= 9 && String.sub l 0 9 = "evidence:" in
    let non_evidence_lines transcript =
      List.filter
        (fun l -> not (is_evidence l))
        (String.split_on_char '\n' transcript)
    in
    (* An Undecodable count (last column, [Sentinel.all_kinds] order) on
       some player's evidence row — what a truncation must leave behind. *)
    let has_undecodable transcript =
      List.exists
        (fun l ->
          is_evidence l
          &&
          match String.rindex_opt l ',' with
          | Some i -> String.sub l (i + 1) (String.length l - i - 1) <> "0"
          | None -> false)
        (String.split_on_char '\n' transcript)
    in
    (* Warm lazy field tables so they don't skew the first comparison. *)
    ignore
      (transcript ~s:seed ~events:[] ~crashes:[] ~real:false ());
    let failures = ref 0 and safe_modes = ref 0 in
    for k = 0 to iters - 1 do
      let s = seed + k in
      let events =
        Transport.Chaos.schedule ~seed:s ~n ~kills ~stalls ~truncates
          ~stall_duration ~first_round:2 ~last_round:5 ()
      in
      let sim = Transport.Chaos.sim_crashes ~budget events in
      (* Every kill, permanent stall and truncation is one distinct real
         fault; recovered stalls cost nothing. *)
      let fatal = List.length sim in
      List.iter
        (fun e -> Format.printf "  %a@." Transport.Chaos.pp_event e)
        events;
      (* Warm the shared memo tables (subset weights etc.) on the exact
         crash configuration under test, so neither compared run pays
         cold-cache field ops the other inherits. *)
      if fatal <= t then
        ignore (transcript ~s ~events:[] ~crashes:sim ~real:false ());
      let real, real_safe =
        Transport.with_backend backend (fun () ->
            transcript ~s ~events ~crashes:[] ~real:true ())
      in
      if fatal > t then begin
        match real_safe with
        | Some why ->
            incr safe_modes;
            Printf.printf "iter %3d seed=%d SAFE-MODE as expected (%s)\n%!" k s
              why
        | None ->
            incr failures;
            Printf.printf
              "iter %3d seed=%d FAILED: %d real faults > t=%d but no safe \
               mode\n\
               %!"
              k s fatal t
      end
      else begin
        let oracle, oracle_safe =
          transcript ~s ~events:[] ~crashes:sim ~real:false ()
        in
        let ok =
          oracle_safe = None && real_safe = None
          &&
          if truncates = 0 then String.equal oracle real
          else
            (* Truncation: the coin stream and tallies must match the
               crash-equivalent oracle, and the mangled stream must have
               been attributed as Undecodable — evidence the simulator
               cannot produce, hence excluded from the equality. *)
            non_evidence_lines oracle = non_evidence_lines real
            && has_undecodable real
        in
        if ok then Printf.printf "iter %3d seed=%d OK\n%!" k s
        else begin
          incr failures;
          Printf.printf "iter %3d seed=%d MISMATCH\n" k s;
          Printf.printf "--- sim oracle (crashes at the same rounds)\n%s" oracle;
          Printf.printf "--- %s under chaos\n%s%!"
            (Transport.backend_name backend)
            real;
          Printf.printf
            "replay: dprbg chaos --transport %s --seed %d --t %d --kill %d \
             --stall %d --truncate %d --iters 1\n\
             %!"
            (Transport.backend_name backend)
            s t kills stalls truncates
        end
      end
    done;
    Printf.printf "# %d/%d chaos iterations behaved per contract on %s\n"
      (iters - !failures) iters
      (Transport.backend_name backend);
    if !failures > 0 then exit 1;
    if !safe_modes > 0 then exit 6
  in
  let info =
    Cmd.info "chaos"
      ~doc:
        "Inflict real peer failures (SIGKILL, stalls, truncated frames) on a \
         supervised byte backend and verify crash-tolerant coin runs against \
         the sim oracle; exits 6 when the fault bound is exceeded and safe \
         mode engages."
  in
  Cmd.v info
    Term.(
      const run $ setup_logs $ seed_arg $ t_arg $ kills $ stalls $ truncates
      $ stall_duration $ deadline $ iters $ draws $ transport_arg
      $ transport_timeout_arg)

(* ------------------------------------------------------------------ *)

(* Beacon plumbing shared by `beacon` and `loadgen`. Exit code 7 is
   chain-verification failure: the transcript (or the beacon's own
   emitted chain) does not recompute — a red flag CI must not swallow. *)

let beacon_pool ~sentinel ~seed ~n ~t () =
  B.P.create ~sentinel ~prng:(Prng.of_int seed) ~n ~t ~batch_size:32
    ~refill_threshold:3 ~initial_seed:6 ()

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  data

(* Snapshot writes are atomic everywhere: temp + fsync + rename, so a
   crash mid-write can clobber at most a stale [.tmp], never the last
   good state. *)
let write_file path bytes = Beacon_journal.write_file_atomic path bytes

let verify_transcript ~key path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  let epochs =
    List.mapi
      (fun i line ->
        match B.epoch_of_json line with
        | Ok e -> e
        | Error msg ->
            Printf.eprintf "error: %s:%d: %s\n" path (i + 1) msg;
            exit 7)
      lines
  in
  match B.verify_chain ~key epochs with
  | Ok () ->
      Printf.printf "# verified %d epoch(s)%s\n" (List.length epochs)
        (match List.rev epochs with
        | last :: _ -> " | head " ^ Beacon_hash.to_hex last.B.digest
        | [] -> "")
  | Error msg ->
      Printf.eprintf "error: chain verification failed: %s\n" msg;
      exit 7

let beacon_key_arg =
  let doc = "MAC key for epoch records (verification needs the same key)." in
  Arg.(value & opt string "dprbg-beacon" & info [ "key" ] ~docv:"KEY" ~doc)

let beacon_cmd =
  let state_file =
    Arg.(
      value
      & opt string "dprbg-beacon.state"
      & info [ "file"; "f" ] ~docv:"PATH" ~doc:"Beacon state file.")
  in
  let epochs =
    Arg.(value & opt int 10 & info [ "epochs" ] ~docv:"N" ~doc:"Epochs to serve.")
  in
  let requests =
    Arg.(
      value & opt int 8
      & info [ "requests" ] ~docv:"N"
          ~doc:"Synthetic consumer requests admitted per epoch.")
  in
  let nbits =
    Arg.(
      value
      & opt (some int) None
      & info [ "nbits" ] ~docv:"BITS"
          ~doc:"Derived bits per request (default: the field width).")
  in
  let fresh =
    Arg.(
      value & flag
      & info [ "fresh" ] ~doc:"Ignore any existing state file and start anew.")
  in
  let status =
    Arg.(
      value & flag
      & info [ "status" ]
          ~doc:
            "Print the restored beacon's state (chain position, lifetime \
             counters, pool level) and exit without serving.")
  in
  let transcript =
    Arg.(
      value
      & opt (some string) None
      & info [ "transcript" ] ~docv:"PATH"
          ~doc:"Append one JSONL epoch record per close to $(docv).")
  in
  let verify =
    Arg.(
      value
      & opt (some string) None
      & info [ "verify" ] ~docv:"PATH"
          ~doc:
            "Verify a transcript's hash chain and MACs instead of serving; \
             exits 7 on any verification failure.")
  in
  let expect_head =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect-head" ] ~docv:"HEX"
          ~doc:
            "Refuse to restore a snapshot whose chain head differs from \
             $(docv) (32 hex chars, e.g. the digest of the last transcript \
             line).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Durable mode: write-ahead journal every epoch to $(docv) \
             (fsynced before any vend is acknowledged) and recover \
             snapshot + journal on start, truncating a torn tail.")
  in
  let snapshot_every =
    Arg.(
      value & opt int 0
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "In durable mode, rotate an atomic snapshot (and truncate the \
             journal) every $(docv) epoch closes; 0 (default) snapshots \
             only at exit.")
  in
  let supervise =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Run the durable serve loop in a supervised child process: a \
             crashed child is restarted (recovering from snapshot + \
             journal) with exponential backoff under the --restarts \
             budget. $(b,--epochs) becomes the absolute target chain \
             length. Implies --journal.")
  in
  let restarts =
    Arg.(
      value & opt int 16
      & info [ "restarts" ] ~docv:"N"
          ~doc:"Supervised restart budget (crashes beyond it are fatal).")
  in
  let chaos_kills =
    Arg.(
      value & opt int 0
      & info [ "chaos-kills" ] ~docv:"N"
          ~doc:
            "Chaos schedule for the supervised soak: the serving child \
             SIGKILLs itself right after closing $(docv) seeded epochs \
             (each fires once; recovery resumes past it).")
  in
  let run () seed t state_file epochs requests nbits fresh status transcript
      verify expect_head key journal snapshot_every supervise restarts
      chaos_kills timeout =
    apply_transport_timeout timeout;
    match verify with
    | Some path -> verify_transcript ~key path
    | None -> (
        let n = n_for t in
        let expect_head =
          Option.map
            (fun h ->
              match Beacon_hash.of_hex h with
              | Ok d -> d
              | Error msg ->
                  Printf.eprintf "error: --expect-head: %s\n" msg;
                  exit 2)
            expect_head
        in
        if supervise && journal = None then begin
          Printf.eprintf "error: --supervise requires --journal PATH\n";
          exit 2
        end;
        if chaos_kills > 0 && not supervise then begin
          Printf.eprintf "error: --chaos-kills requires --supervise\n";
          exit 2
        end;
        if restarts < 0 || snapshot_every < 0 || chaos_kills > epochs then begin
          Printf.eprintf
            "error: --restarts/--snapshot-every must be >= 0 and \
             --chaos-kills <= --epochs\n";
          exit 2
        end;
        let sentinel = Some Sentinel.passive in
        let restore_or_create ~fresh () =
          if (not fresh) && Sys.file_exists state_file then begin
            match
              B.load ~key ?expect_head ~sentinel ~prng:(Prng.of_int seed)
                ~batch_size:32 ~refill_threshold:3
                (Bytes.of_string (read_file state_file))
            with
            | b ->
                Printf.printf "# restored beacon from %s (next epoch %d)\n"
                  state_file (B.next_seq b);
                b
            | exception B.Corrupt_snapshot msg ->
                Printf.eprintf
                  "error: %s is not a restorable beacon snapshot (%s)\n\
                   Refusing to emit epochs from damaged or mismatched state; \
                   rerun with --fresh to start a new chain.\n"
                  state_file msg;
                exit 1
          end
          else begin
            (* --fresh must not inherit a stale journal: replaying another
               chain's records onto a new chain is exactly the mismatch
               recovery exists to reject. Without --fresh a journal with
               no snapshot is NOT stale — it is the journal-only recovery
               case (crash before the first snapshot) and Durable.attach
               replays it from epoch 0. *)
            if fresh then
              List.iter
                (fun p ->
                  match p with
                  | Some p when Sys.file_exists p -> Sys.remove p
                  | _ -> ())
                [
                  journal;
                  Option.map (fun j -> j ^ ".tmp") journal;
                  Some state_file;
                  Some (state_file ^ ".tmp");
                ];
            Printf.printf "# starting from the genesis head\n";
            B.create ~key ~pool:(beacon_pool ~sentinel ~seed ~n ~t ()) ()
          end
        in
        let print_status b =
          let s = B.stats b in
          Printf.printf
            "# state=%s | next epoch %d | head %s\n\
             # lifetime: epochs=%d vended=%d shed: queue_full=%d \
             pool_pressure=%d halted=%d | pool: %d sealed coin(s)\n"
            (B.state_label (B.state b))
            (B.next_seq b)
            (Beacon_hash.to_hex (B.head b))
            s.B.epochs s.B.vended s.B.shed_queue_full s.B.shed_pool_pressure
            s.B.shed_halted
            (B.P.available (B.pool b))
        in
        let self_verify b =
          match B.verify_chain ~key (B.chain b) with
          | Ok () -> ()
          | Error msg ->
              Printf.eprintf
                "error: emitted chain fails self-verification: %s\n" msg;
              exit 7
        in
        match journal with
        | None ->
            (* Snapshot-only mode: the historical behavior, with the
               snapshot write now atomic. *)
            let b = restore_or_create ~fresh () in
            if status then print_status b
            else begin
              let tr_oc =
                Option.map
                  (fun p -> open_out_gen [ Open_append; Open_creat ] 0o644 p)
                  transcript
              in
              let save () = write_file state_file (B.save b) in
              for _ = 1 to epochs do
                for _ = 1 to requests do
                  match B.request b ?nbits ~callback:(fun _ -> ()) () with
                  | Ok _ -> ()
                  | Error r ->
                      Printf.printf "# shed request: %s\n" (B.reject_name r)
                done;
                match B.close_epoch b with
                | Ok e ->
                    Printf.printf "epoch %4d  vended=%d shed=%d flags=%s  %s\n"
                      e.B.seq e.B.vended e.B.shed e.B.flags
                      (Beacon_hash.to_hex e.B.digest);
                    Option.iter
                      (fun oc -> output_string oc (B.epoch_to_json e ^ "\n"))
                      tr_oc
                | Error msg -> (
                    save ();
                    Option.iter close_out tr_oc;
                    match B.state b with
                    | B.Halted _ ->
                        Printf.eprintf
                          "error: beacon halted — refusing to vend \
                           possibly-biased randomness.\n%s\n"
                          msg;
                        exit 5
                    | _ ->
                        Printf.eprintf "error: epoch close failed — %s\n" msg;
                        exit 1)
              done;
              Option.iter close_out tr_oc;
              save ();
              self_verify b;
              print_status b
            end
        | Some jpath ->
            let kill_epochs =
              if chaos_kills > 0 then
                Transport.Chaos.serve_kill_epochs ~seed ~kills:chaos_kills
                  ~epochs
              else []
            in
            (* One serving incarnation: restore, recover, serve to the
               target, snapshot, exit. Runs in-process (no --supervise)
               or as the forked child (--supervise). *)
            let serve_once ~fresh () =
              let b = restore_or_create ~fresh () in
              let d, rs =
                match
                  B.Durable.attach ~journal:jpath ~snapshot:state_file b
                with
                | r -> r
                | exception Beacon_journal.Corrupt_journal msg ->
                    Printf.eprintf
                      "error: journal is damaged beyond the torn tail: %s\n\
                       Run `dprbg recover --journal %s` to inspect, or \
                       restore from a trusted snapshot and transcript.\n"
                      msg jpath;
                    exit 1
              in
              if rs.B.Durable.torn_bytes > 0 then
                Printf.printf "# dropped a torn journal tail (%d byte(s))\n"
                  rs.B.Durable.torn_bytes;
              if rs.B.Durable.replayed <> [] then
                Printf.printf
                  "# replayed %d journaled epoch(s): recovered to epoch %d\n"
                  (List.length rs.B.Durable.replayed)
                  (B.next_seq b);
              if status then begin
                B.Durable.close d;
                print_status b
              end
              else begin
                let tr_oc =
                  Option.map
                    (fun p ->
                      open_out_gen [ Open_append; Open_creat ] 0o644 p)
                    transcript
                in
                let target =
                  if supervise then max epochs (B.next_seq b)
                  else B.next_seq b + epochs
                in
                while B.next_seq b < target do
                  for _ = 1 to requests do
                    match
                      B.Durable.request d ?nbits ~callback:(fun _ -> ()) ()
                    with
                    | Ok _ -> ()
                    | Error r ->
                        Printf.printf "# shed request: %s\n" (B.reject_name r)
                  done;
                  (match B.Durable.close_epoch d with
                  | Ok e ->
                      Printf.printf
                        "epoch %4d  vended=%d shed=%d flags=%s  %s\n" e.B.seq
                        e.B.vended e.B.shed e.B.flags
                        (Beacon_hash.to_hex e.B.digest);
                      Option.iter
                        (fun oc ->
                          output_string oc (B.epoch_to_json e ^ "\n");
                          flush oc)
                        tr_oc;
                      if List.mem e.B.seq kill_epochs then begin
                        (* The chaos kill fires only after the epoch is
                           durable, so the restarted incarnation resumes
                           past it and the schedule converges. *)
                        flush stdout;
                        Unix.kill (Unix.getpid ()) Sys.sigkill
                      end
                  | Error msg -> (
                      Option.iter close_out tr_oc;
                      B.Durable.close d;
                      match B.state b with
                      | B.Halted _ ->
                          Printf.eprintf
                            "error: beacon halted — refusing to vend \
                             possibly-biased randomness.\n%s\n"
                            msg;
                          exit 5
                      | _ ->
                          Printf.eprintf "error: epoch close failed — %s\n"
                            msg;
                          exit 1));
                  if
                    snapshot_every > 0
                    && B.next_seq b mod snapshot_every = 0
                    && B.next_seq b < target
                  then B.Durable.snapshot d
                done;
                Option.iter close_out tr_oc;
                B.Durable.snapshot d;
                B.Durable.close d;
                self_verify b;
                print_status b
              end
            in
            if not supervise then serve_once ~fresh ()
            else begin
              (* PR 7's escalation discipline, applied to the serve
                 loop: SIGTERM to the supervisor forwards to the child
                 with a grace window, then SIGKILL; a killed child is
                 restarted under the budget with exponential backoff
                 that resets whenever the incarnation made durable
                 progress. *)
              let child = ref None in
              let term _ =
                (match !child with
                | None -> ()
                | Some pid ->
                    (try Unix.kill pid Sys.sigterm
                     with Unix.Unix_error _ -> ());
                    let deadline = Unix.gettimeofday () +. 2.0 in
                    let rec drain () =
                      match Unix.waitpid [ Unix.WNOHANG ] pid with
                      | 0, _ ->
                          if Unix.gettimeofday () < deadline then begin
                            Unix.sleepf 0.02;
                            drain ()
                          end
                          else begin
                            (try Unix.kill pid Sys.sigkill
                             with Unix.Unix_error _ -> ());
                            ignore (Unix.waitpid [] pid)
                          end
                      | _ -> ()
                      | exception Unix.Unix_error _ -> ()
                    in
                    drain ());
                exit 143
              in
              Sys.set_signal Sys.sigterm (Sys.Signal_handle term);
              let progress () =
                let size p =
                  try (Unix.stat p).Unix.st_size
                  with Unix.Unix_error _ -> -1
                in
                (size jpath, size state_file)
              in
              let rec loop ~fresh ~used ~streak =
                let before = progress () in
                match Unix.fork () with
                | 0 ->
                    Sys.set_signal Sys.sigterm Sys.Signal_default;
                    serve_once ~fresh ();
                    exit 0
                | pid -> (
                    child := Some pid;
                    let _, st = Unix.waitpid [] pid in
                    child := None;
                    match st with
                    | Unix.WEXITED 0 -> ()
                    | Unix.WEXITED c ->
                        (* Deterministic refusals (corrupt state, safe
                           mode, bad args) do not heal by restarting. *)
                        Printf.eprintf
                          "error: supervised beacon exited %d; not \
                           restartable\n"
                          c;
                        exit c
                    | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
                        if used >= restarts then begin
                          Printf.eprintf
                            "error: restart budget (%d) exhausted\n" restarts;
                          exit 1
                        end;
                        let streak =
                          if progress () <> before then 0 else streak + 1
                        in
                        let delay =
                          min 2.0 (0.05 *. (2. ** float_of_int streak))
                        in
                        Printf.printf
                          "# supervised beacon died; restart %d/%d after \
                           %.2fs\n%!"
                          (used + 1) restarts delay;
                        Unix.sleepf delay;
                        loop ~fresh:false ~used:(used + 1) ~streak)
              in
              loop ~fresh ~used:0 ~streak:0
            end)
  in
  let info =
    Cmd.info "beacon"
      ~doc:
        "Run the randomness-beacon service: batched request vending over a \
         persistent pool, one hash-chained MAC'd epoch record per close. \
         --journal adds write-ahead durability (journal before ack, \
         crash recovery with torn-tail truncation); --supervise restarts a \
         crashed server under a budget. --verify checks a transcript (exit \
         7 on chain failure); --status inspects saved state."
  in
  Cmd.v info
    Term.(
      const run $ setup_logs $ seed_arg $ t_arg $ state_file $ epochs
      $ requests $ nbits $ fresh $ status $ transcript $ verify $ expect_head
      $ beacon_key_arg $ journal $ snapshot_every $ supervise $ restarts
      $ chaos_kills $ transport_timeout_arg)

(* ------------------------------------------------------------------ *)

let recover_cmd =
  let state_file =
    Arg.(
      value
      & opt string "dprbg-beacon.state"
      & info [ "file"; "f" ] ~docv:"PATH" ~doc:"Beacon snapshot file.")
  in
  let journal =
    Arg.(
      required
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH" ~doc:"Write-ahead journal to recover.")
  in
  let export =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"PATH"
          ~doc:
            "Write the replayed journal window (epochs past the snapshot) \
             as JSONL to $(docv), after verifying it as a chain slice \
             (exit 7 on failure).")
  in
  let run () seed t state_file journal export key =
    let n = n_for t in
    let sentinel = Some Sentinel.passive in
    let b =
      if Sys.file_exists state_file then begin
        match
          B.load ~key ~sentinel ~prng:(Prng.of_int seed) ~batch_size:32
            ~refill_threshold:3
            (Bytes.of_string (read_file state_file))
        with
        | b ->
            Printf.printf "# snapshot %s: next epoch %d, head %s\n" state_file
              (B.next_seq b)
              (Beacon_hash.to_hex (B.head b));
            b
        | exception B.Corrupt_snapshot msg ->
            Printf.eprintf "error: snapshot %s is corrupt: %s\n" state_file msg;
            exit 1
      end
      else begin
        Printf.printf "# no snapshot at %s; recovering from the journal alone\n"
          state_file;
        B.create ~key ~pool:(beacon_pool ~sentinel ~seed ~n ~t ()) ()
      end
    in
    let d, rs =
      match B.Durable.attach ~journal ~snapshot:state_file b with
      | r -> r
      | exception Beacon_journal.Corrupt_journal msg ->
          Printf.eprintf
            "error: journal is damaged beyond the torn tail: %s\n\
             The journal cannot be trusted past this point; restore from a \
             trusted snapshot and transcript.\n"
            msg;
          exit 1
    in
    B.Durable.close d;
    let replayed = rs.B.Durable.replayed in
    Printf.printf
      "# recovered: next epoch %d | head %s\n\
       # journal: %d epoch(s) replayed, %d duplicate request id(s) \
       registered, %d torn byte(s) dropped\n"
      (B.next_seq b)
      (Beacon_hash.to_hex (B.head b))
      (List.length replayed) rs.B.Durable.deduped rs.B.Durable.torn_bytes;
    (match B.verify_chain ~key replayed with
    | Ok () -> ()
    | Error msg ->
        Printf.eprintf
          "error: replayed journal window fails verification: %s\n" msg;
        exit 7);
    Option.iter
      (fun path ->
        let buf = Buffer.create 4096 in
        List.iter
          (fun e ->
            Buffer.add_string buf (B.epoch_to_json e);
            Buffer.add_char buf '\n')
          replayed;
        write_file path (Buffer.to_bytes buf);
        Printf.printf "# exported %d epoch(s) to %s\n" (List.length replayed)
          path)
      export
  in
  let info =
    Cmd.info "recover"
      ~doc:
        "Inspect and repair beacon durability state offline: load the \
         snapshot, replay the write-ahead journal (truncating a torn \
         tail), verify the replayed window against the hash chain and \
         MACs, and report what a restarted server would recover. --export \
         writes the replayed epochs as JSONL."
  in
  Cmd.v info
    Term.(
      const run $ setup_logs $ seed_arg $ t_arg $ state_file $ journal
      $ export $ beacon_key_arg)

let loadgen_cmd =
  let draws =
    Arg.(
      value & opt int 1_000_000
      & info [ "draws" ] ~docv:"N" ~doc:"Fulfilled draws to drive.")
  in
  let rate =
    Arg.(
      value & opt float 1000.
      & info [ "rate" ] ~docv:"R" ~doc:"Mean request arrivals per epoch.")
  in
  let arrival =
    Arg.(
      value
      & opt (enum [ ("poisson", `Poisson); ("bursty", `Bursty) ]) `Poisson
      & info [ "arrival" ] ~docv:"PROCESS"
          ~doc:
            "Open-loop arrival process: $(b,poisson) (i.i.d.) or $(b,bursty) \
             (two-state Markov-modulated Poisson).")
  in
  let burst =
    Arg.(
      value & opt float 1.8
      & info [ "burst" ] ~docv:"FACTOR"
          ~doc:"Bursty high-state rate multiplier, in [1, 2].")
  in
  let nbits =
    Arg.(
      value
      & opt (some int) None
      & info [ "nbits" ] ~docv:"BITS"
          ~doc:"Derived bits per request (default: the field width).")
  in
  let max_pending =
    Arg.(
      value & opt int 4096
      & info [ "max-pending" ] ~docv:"N"
          ~doc:"Hard admission bound (soft cap under pressure is half).")
  in
  let latency_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "latency-out" ] ~docv:"PATH"
          ~doc:"Write the latency/throughput summary as JSON to $(docv).")
  in
  let transcript =
    Arg.(
      value
      & opt (some string) None
      & info [ "transcript" ] ~docv:"PATH"
          ~doc:"Write the full JSONL epoch-chain transcript to $(docv).")
  in
  let bench_file =
    Arg.(
      value & opt string "BENCH_history.jsonl"
      & info [ "bench-file" ] ~docv:"PATH"
          ~doc:"Append the loadgen history row here ($(b,-) = skip).")
  in
  let run () seed t draws rate arrival burst nbits max_pending latency_out
      transcript bench_file key timeout =
    apply_transport_timeout timeout;
    if draws < 1 then begin
      Printf.eprintf "error: --draws must be >= 1\n";
      exit 2
    end;
    if rate <= 0. then begin
      Printf.eprintf "error: --rate must be positive\n";
      exit 2
    end;
    let n = n_for t in
    let pool = beacon_pool ~sentinel:(Some Sentinel.passive) ~seed ~n ~t () in
    let b = B.create ~key ~max_pending ~pool () in
    let arr =
      match arrival with
      | `Poisson -> B.Arrival.poisson ~rate ~seed:(seed + 1)
      | `Bursty -> B.Arrival.bursty ~burst ~rate ~seed:(seed + 1) ()
    in
    (* Vend latency is wall time from admission to callback — queue wait
       plus the amortized share of the epoch's single Coin-Expose. *)
    let lat = ref (Array.make (draws + 4096) 0.) in
    let lat_n = ref 0 in
    let record ns =
      if !lat_n >= Array.length !lat then begin
        let bigger = Array.make (2 * Array.length !lat) 0. in
        Array.blit !lat 0 bigger 0 !lat_n;
        lat := bigger
      end;
      !lat.(!lat_n) <- ns;
      incr lat_n
    in
    let submit_times = Queue.create () in
    let vended = ref 0 in
    let callback _ =
      record ((Unix.gettimeofday () -. Queue.pop submit_times) *. 1e9);
      incr vended
    in
    let t_start = Unix.gettimeofday () in
    while !vended < draws do
      let k = B.Arrival.next arr in
      for _ = 1 to k do
        let t0 = Unix.gettimeofday () in
        match B.request b ?nbits ~callback () with
        | Ok _ -> Queue.push t0 submit_times
        | Error _ -> () (* shed; attributed in the beacon's counters *)
      done;
      match B.close_epoch b with
      | Ok _ -> ()
      | Error msg -> (
          match B.state b with
          | B.Halted _ ->
              Printf.eprintf "error: beacon halted mid-run — %s\n" msg;
              exit 5
          | _ ->
              Printf.eprintf "error: epoch close failed — %s\n" msg;
              exit 1)
    done;
    let elapsed = Unix.gettimeofday () -. t_start in
    let s = B.stats b in
    let shed = s.B.shed_queue_full + s.B.shed_pool_pressure + s.B.shed_halted in
    let shed_rate =
      if s.B.vended + shed = 0 then 0.
      else float_of_int shed /. float_of_int (s.B.vended + shed)
    in
    let draws_per_coin =
      if s.B.epochs = 0 then 0.
      else float_of_int s.B.vended /. float_of_int s.B.epochs
    in
    let lats = Array.sub !lat 0 !lat_n in
    Array.sort compare lats;
    let pct p =
      if !lat_n = 0 then 0.
      else lats.(min (!lat_n - 1) (p * !lat_n / 100))
    in
    let p50 = pct 50 and p99 = pct 99 in
    let chain = B.chain b in
    Option.iter
      (fun path ->
        let oc = open_out path in
        List.iter (fun e -> output_string oc (B.epoch_to_json e ^ "\n")) chain;
        close_out oc;
        Printf.printf "# transcript: %s (%d epochs)\n" path (List.length chain))
      transcript;
    let arrival_name = B.Arrival.name arr in
    let row =
      Printf.sprintf
        "{\"schema\":\"dprbg-loadgen/1\",\"arrival\":%S,\"rate\":%g,\"draws\":%d,\"epochs\":%d,\"draws_per_coin\":%.2f,\"shed\":%d,\"shed_rate\":%.6f,\"p50_vend_ns\":%.0f,\"p99_vend_ns\":%.0f,\"elapsed_s\":%.3f}"
        arrival_name rate s.B.vended s.B.epochs draws_per_coin shed shed_rate
        p50 p99 elapsed
    in
    if bench_file <> "-" then begin
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 bench_file in
      output_string oc (row ^ "\n");
      close_out oc;
      Printf.printf "# appended loadgen row to %s\n" bench_file
    end;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (row ^ "\n");
        close_out oc;
        Printf.printf "# latency summary: %s\n" path)
      latency_out;
    Printf.printf
      "# loadgen: arrival=%s rate=%g | vended=%d over %d epoch(s) = %.1f \
       draws/coin | shed=%d (rate %.6f)\n\
       # vend latency: p50=%.0fns p99=%.0fns | wall %.3fs\n"
      arrival_name rate s.B.vended s.B.epochs draws_per_coin shed shed_rate p50
      p99 elapsed;
    let ps = B.P.stats (B.pool b) in
    Printf.printf "# pool: refills=%d refill_attempts=%d backoff_rounds=%d\n"
      ps.B.P.refills ps.B.P.refill_attempts ps.B.P.backoff_rounds;
    match B.verify_chain ~key chain with
    | Ok () ->
        Printf.printf "# chain: verified %d epoch(s) | head %s\n"
          (List.length chain)
          (Beacon_hash.to_hex (B.head b))
    | Error msg ->
        Printf.eprintf "error: chain verification failed: %s\n" msg;
        exit 7
  in
  let info =
    Cmd.info "loadgen"
      ~doc:
        "Drive the beacon with seeded open-loop synthetic arrivals (Poisson \
         or bursty), then report p50/p99 vend latency, draws-per-coin and \
         shed rate, append a history row to BENCH_history.jsonl, and verify \
         the emitted epoch chain (exit 7 on failure)."
  in
  Cmd.v info
    Term.(
      const run $ setup_logs $ seed_arg $ t_arg $ draws $ rate $ arrival
      $ burst $ nbits $ max_pending $ latency_out $ transcript $ bench_file
      $ beacon_key_arg $ transport_timeout_arg)

let main =
  let doc = "Distributed pseudo-random bit generators (PODC 1996) simulator" in
  let info = Cmd.info "dprbg" ~version:Dprbg_version.version ~doc in
  Cmd.group info
    [
      coins_cmd; soundness_cmd; costs_cmd; agreement_cmd; pool_cmd; fuzz_cmd;
      trace_cmd; transport_cmd; chaos_cmd; beacon_cmd; recover_cmd;
      loadgen_cmd;
    ]

let () = exit (Cmd.eval main)
