let fault_free ~byte_size ~n announce =
  Metrics.tick_round ();
  Array.init n (fun i ->
      match announce i with
      | None -> None
      | Some v ->
          Metrics.tick_message ~bytes_len:(byte_size v);
          Trace.event (fun () -> Trace.Broadcast { src = i; bytes = byte_size v });
          Some v)

(* Under a fault plan the channel can fail whole announcements (it never
   equivocates — every receiver still sees the same vector): an
   announcement can be omitted, corrupted in transit, or lost to a
   crashed announcer. The retransmit envelope re-announces once per
   attempt and keeps the latest delivered copy, mirroring
   [Net.exchange]: under a bounded plan the final attempt is exempt from
   link faults, so omission bursts within the budget are absorbed. *)
let degraded plan ?codec ~byte_size ~n announce =
  let attempts = Net.Plan.retransmits plan + 1 in
  let result = Array.make n None in
  Fun.protect
    ~finally:(fun () -> Net.Plan.exit_envelope plan)
    (fun () ->
      for attempt = 1 to attempts do
        Net.Plan.enter_envelope plan ~attempt ~attempts;
        Metrics.tick_round ();
        for i = 0 to n - 1 do
          match announce i with
          | None -> ()
          | Some v ->
              Metrics.tick_message ~bytes_len:(byte_size v);
              Trace.event (fun () ->
                  Trace.Broadcast { src = i; bytes = byte_size v });
              if Net.Plan.down plan i then Net.Plan.note_crashed_msg plan
              else (
                match Net.Plan.broadcast_fate plan with
                | `Deliver -> result.(i) <- Some v
                | `Drop -> ()
                | `Corrupt -> (
                    match codec with
                    | None -> () (* no wire form: detected and discarded *)
                    | Some (encode, decode) -> (
                        match decode (Net.Plan.corrupt_bytes plan (encode v)) with
                        | v' -> result.(i) <- Some v'
                        | exception _ -> ())))
        done;
        Net.Plan.advance_round plan
      done);
  result

let round ?codec ~byte_size ~n announce =
  Trace.span Trace.Round "bcast.round" @@ fun () ->
  match Net.current_plan () with
  | None -> fault_free ~byte_size ~n announce
  | Some plan -> degraded plan ?codec ~byte_size ~n announce
