(* The channel itself — fault handling, retransmit envelope, metric
   accounting, and the physical replication step on byte-level backends
   — lives in [Transport.broadcast_round]; this module keeps the
   historical entry point protocol code and examples use. *)
let round = Transport.broadcast_round
