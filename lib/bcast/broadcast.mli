(** An assumed (ideal) broadcast channel.

    Section 3 of the paper runs over a model where "a broadcast channel
    facility is in place" — the channel guarantees that everyone sees the
    same value from each announcer, even a faulty one (a Byzantine player
    can announce a {e wrong} value but cannot equivocate). Section 4
    removes the assumption; the substitute protocols ([Bit-Gen] and
    grade-cast) live elsewhere in this library.

    Cost model: following the paper's Lemma 2 accounting ("the
    communication required by our protocol is 2n messages, each of size
    k"), one announcement ticks {e one} message of the value's size, and
    each call is one synchronous round. *)

val round :
  ?codec:(('v -> bytes) * (bytes -> 'v)) ->
  byte_size:('v -> int) ->
  n:int ->
  (int -> 'v option) ->
  'v option array
(** [round ~byte_size ~n announce] performs one broadcast round:
    player [i] announces [announce i] ([None] = stays silent) and every
    player observes the same resulting vector.

    Under an ambient {!Transport.Plan} the channel degrades per announcement —
    an announcement may be dropped, corrupted in transit (when [codec]
    gives the wire encoding; a strict decoder turns corruption into a
    detected drop), or lost because its announcer is crashed — and the
    round becomes a retransmit envelope of [retransmits + 1] identical
    announcement rounds keeping the latest delivered copy, so omission
    faults within the budget are absorbed. The channel still never
    equivocates. [announce] must be deterministic across attempts.
    Without a plan the cost model is unchanged: one round, one message
    per announcement. *)
