type behavior =
  | Honest
  | Silent
  | Fixed of bool
  | Arbitrary of (round:int -> dst:int -> path:int list -> bool option)

(* Tree nodes are relay chains: the node [j1; ...; jr] (most recent relay
   last) holds what j_r said j_{r-1} said ... j_1 said about its input.
   Each player stores its own copy of the tree in a hashtable keyed by
   path. *)

let run ?(behavior = fun _ -> Honest) ~n ~t ~inputs () =
  if n < (3 * t) + 1 then invalid_arg "Eig_ba.run: requires n >= 3t+1";
  if t > 4 then invalid_arg "Eig_ba.run: t too large for the EIG tree";
  if Array.length inputs <> n then invalid_arg "Eig_ba.run: inputs size";
  Metrics.tick_ba ();
  (* A message is the list of (path, claimed value) pairs for one level;
     wire size: one byte per value plus one per path element. *)
  let msg_bytes entries =
    List.fold_left (fun acc (path, _) -> acc + 1 + List.length path) 0 entries
  in
  let net = Transport.create ~n ~byte_size:msg_bytes () in
  let trees = Array.init n (fun _ -> Hashtbl.create 64) in
  Array.iteri (fun i input -> Hashtbl.replace trees.(i) [] input) inputs;
  (* The level-r paths (length r) of distinct ids, built incrementally. *)
  let level = ref [ [] ] in
  for round = 1 to t + 1 do
    (* Send: player i relays every level-(round-1) node it may extend
       (its id not already in the chain). *)
    let inbox =
      Transport.exchange net ~send:(fun () ->
          for i = 0 to n - 1 do
            match behavior i with
            | Honest ->
                let entries =
                  List.filter_map
                    (fun path ->
                      if List.mem i path then None
                      else
                        Option.map
                          (fun v -> (path, v))
                          (Hashtbl.find_opt trees.(i) path))
                    !level
                in
                if entries <> [] then
                  Transport.send_to_all net ~src:i (fun _ -> entries)
            | Silent -> ()
            | Fixed b ->
                let entries =
                  List.filter_map
                    (fun path ->
                      if List.mem i path then None else Some (path, b))
                    !level
                in
                if entries <> [] then
                  Transport.send_to_all net ~src:i (fun _ -> entries)
            | Arbitrary f ->
                for dst = 0 to n - 1 do
                  let entries =
                    List.filter_map
                      (fun path ->
                        if List.mem i path then None
                        else
                          Option.map (fun v -> (path, v)) (f ~round ~dst ~path))
                      !level
                  in
                  if entries <> [] then Transport.send net ~src:i ~dst entries
                done
          done)
    in
    (* Store: hearing (path, v) from j defines node path @ [j]. *)
    for i = 0 to n - 1 do
      List.iter
        (fun (j, entries) ->
          List.iter
            (fun (path, v) ->
              if (not (List.mem j path)) && List.mem path !level then
                Hashtbl.replace trees.(i) (path @ [ j ]) v)
            entries)
        inbox.(i)
    done;
    (* Advance the level frontier. *)
    level :=
      List.concat_map
        (fun path ->
          List.filter_map
            (fun j -> if List.mem j path then None else Some (path @ [ j ]))
            (List.init n Fun.id))
        !level
  done;
  (* Decide: recursive strict majority over children, defaulting to
     false; leaves are the level-(t+1) nodes. *)
  let decide i =
    let tree = trees.(i) in
    let rec resolve path depth =
      if depth = t + 1 then
        Option.value ~default:false (Hashtbl.find_opt tree path)
      else begin
        let children =
          List.filter_map
            (fun j ->
              if List.mem j path then None else Some (resolve (path @ [ j ]) (depth + 1)))
            (List.init n Fun.id)
        in
        let trues = List.length (List.filter Fun.id children) in
        2 * trues > List.length children
      end
    in
    resolve [] 0
  in
  Array.init n decide
