type 'v dealer_behavior =
  | Dealer_honest
  | Dealer_silent
  | Dealer_equivocate of (int -> 'v option)

type 'v follower_behavior =
  | Follower_honest
  | Follower_silent
  | Follower_fixed of 'v
  | Follower_arbitrary of (round:int -> dst:int -> 'v option)

type 'v outcome = { value : 'v option; confidence : int }

(* The most-supported value among a list, with its support count. *)
let best_supported ~equal received =
  let rec count v = function
    | [] -> 0
    | w :: rest -> (if equal v w then 1 else 0) + count v rest
  in
  let rec scan best best_count = function
    | [] -> (best, best_count)
    | v :: rest ->
        let c = count v received in
        if c > best_count then scan (Some v) c rest else scan best best_count rest
  in
  scan None 0 received

let run_all ?(dealer_behavior = fun _ -> Dealer_honest)
    ?(follower_behavior = fun _ -> Follower_honest) ~equal ~byte_size ~n ~t
    ~values () =
  if n < (3 * t) + 1 then invalid_arg "Gradecast.run_all: requires n >= 3t+1";
  for _ = 1 to n do
    Metrics.tick_gradecast ()
  done;
  (* Messages are per-dealer-slot vectors; wire size is the sum of the
     present entries. *)
  let vec_size v =
    Array.fold_left
      (fun acc -> function Some x -> acc + byte_size x | None -> acc)
      0 v
  in
  let net = Transport.create ~n ~byte_size:vec_size () in
  (* Round 1: every dealer distributes its value in its own slot. *)
  let inbox1 =
    Transport.exchange net ~send:(fun () ->
        for d = 0 to n - 1 do
          let slot dst =
            let msg = Array.make n None in
            (match dealer_behavior d with
            | Dealer_honest -> msg.(d) <- Some (values d)
            | Dealer_silent -> ()
            | Dealer_equivocate f -> msg.(d) <- f dst);
            msg
          in
          Transport.send_to_all net ~src:d slot
        done)
  in
  let received_from_dealer =
    Array.init n (fun i ->
        Array.init n (fun d ->
            match List.assoc_opt d inbox1.(i) with
            | Some msg -> msg.(d)
            | None -> None))
  in
  (* A follower's echo vector for one round, given its honest choices. *)
  let echo_round round honest_choices =
    Transport.exchange net ~send:(fun () ->
        for i = 0 to n - 1 do
          match follower_behavior i with
          | Follower_honest ->
              Transport.send_to_all net ~src:i (fun _ -> honest_choices.(i))
          | Follower_silent -> ()
          | Follower_fixed v ->
              Transport.send_to_all net ~src:i (fun _ -> Array.make n (Some v))
          | Follower_arbitrary f ->
              for dst = 0 to n - 1 do
                Transport.send net ~src:i ~dst (Array.init n (fun _ -> f ~round ~dst))
              done
        done)
  in
  (* Round 2: echo what each dealer sent. *)
  let inbox2 = echo_round 2 received_from_dealer in
  (* Round 3: per slot, re-echo a value with n - t support. *)
  let choices =
    Array.init n (fun i ->
        Array.init n (fun d ->
            let echoes =
              List.filter_map (fun (_, msg) -> msg.(d)) inbox2.(i)
            in
            match best_supported ~equal echoes with
            | Some v, c when c >= n - t -> Some v
            | _ -> None))
  in
  let inbox3 = echo_round 3 choices in
  let outcomes =
    Array.init n (fun i ->
        Array.init n (fun d ->
            let echoes = List.filter_map (fun (_, msg) -> msg.(d)) inbox3.(i) in
            match best_supported ~equal echoes with
            | Some v, c when c >= n - t -> { value = Some v; confidence = 2 }
            | Some v, c when c >= t + 1 -> { value = Some v; confidence = 1 }
            | _ -> { value = None; confidence = 0 }))
  in
  (* Ledger evidence per dealer slot. Two different confidence >= 1
     values is equivocation: each carried t + 1 third-round echoes, and
     an honest echo needed n - t second-round support — impossible for
     two values from one honest dealer, whatever up to t followers do.
     Grade 0 at t + 1 players likewise cannot happen to an honest dealer
     under the retransmit envelope: only crashed receivers (at most t)
     void their inboxes. *)
  Sentinel.observe (fun () ->
      List.concat_map
        (fun d ->
          let votes =
            List.filter_map
              (fun i ->
                let o = outcomes.(i).(d) in
                if o.confidence >= 1 then o.value else None)
              (List.init n Fun.id)
          in
          let equivocated =
            match votes with
            | [] -> false
            | v :: rest -> List.exists (fun w -> not (equal v w)) rest
          in
          let zeroes =
            List.length
              (List.filter
                 (fun i -> outcomes.(i).(d).confidence = 0)
                 (List.init n Fun.id))
          in
          if equivocated then [ (d, Sentinel.Equivocation) ]
          else if zeroes >= t + 1 then [ (d, Sentinel.Grade_zero) ]
          else [])
        (List.init n Fun.id));
  outcomes

let run ?(dealer_behavior = Dealer_honest)
    ?(follower_behavior = fun _ -> Follower_honest) ~equal ~byte_size ~n ~t
    ~dealer ~value () =
  if n < (3 * t) + 1 then invalid_arg "Gradecast.run: requires n >= 3t+1";
  if dealer < 0 || dealer >= n then invalid_arg "Gradecast.run: bad dealer id";
  Metrics.tick_gradecast ();
  let net = Transport.create ~n ~byte_size () in
  (* Round 1: the dealer distributes its value. *)
  let inbox1 =
    Transport.exchange net ~send:(fun () ->
        match dealer_behavior with
        | Dealer_honest -> Transport.send_to_all net ~src:dealer (fun _ -> value)
        | Dealer_silent -> ()
        | Dealer_equivocate f ->
            for dst = 0 to n - 1 do
              match f dst with
              | Some v -> Transport.send net ~src:dealer ~dst v
              | None -> ()
            done)
  in
  let received_from_dealer =
    Array.init n (fun i ->
        List.assoc_opt dealer inbox1.(i))
  in
  (* A follower's sends for echo round [round], given its honest choice. *)
  let follower_sends i ~round honest_choice =
    match follower_behavior i with
    | Follower_honest -> (
        match honest_choice with
        | Some v -> Transport.send_to_all net ~src:i (fun _ -> v)
        | None -> ())
    | Follower_silent -> ()
    | Follower_fixed v -> Transport.send_to_all net ~src:i (fun _ -> v)
    | Follower_arbitrary f ->
        for dst = 0 to n - 1 do
          match f ~round ~dst with
          | Some v -> Transport.send net ~src:i ~dst v
          | None -> ()
        done
  in
  (* Round 2: echo what the dealer sent. *)
  let inbox2 =
    Transport.exchange net ~send:(fun () ->
        for i = 0 to n - 1 do
          follower_sends i ~round:2 received_from_dealer.(i)
        done)
  in
  (* Round 3: re-echo a value supported by at least n - t first echoes. *)
  let choices =
    Array.init n (fun i ->
        let echoes = List.map snd inbox2.(i) in
        match best_supported ~equal echoes with
        | Some v, c when c >= n - t -> Some v
        | _ -> None)
  in
  let inbox3 =
    Transport.exchange net ~send:(fun () ->
        for i = 0 to n - 1 do
          follower_sends i ~round:3 choices.(i)
        done)
  in
  let outcomes =
    Array.init n (fun i ->
        let echoes = List.map snd inbox3.(i) in
        match best_supported ~equal echoes with
        | Some v, c when c >= n - t -> { value = Some v; confidence = 2 }
        | Some v, c when c >= t + 1 -> { value = Some v; confidence = 1 }
        | _ -> { value = None; confidence = 0 })
  in
  Sentinel.observe (fun () ->
      let votes =
        List.filter_map
          (fun i ->
            let o = outcomes.(i) in
            if o.confidence >= 1 then o.value else None)
          (List.init n Fun.id)
      in
      let equivocated =
        match votes with
        | [] -> false
        | v :: rest -> List.exists (fun w -> not (equal v w)) rest
      in
      let zeroes =
        List.length
          (List.filter
             (fun i -> outcomes.(i).confidence = 0)
             (List.init n Fun.id))
      in
      if equivocated then [ (dealer, Sentinel.Equivocation) ]
      else if zeroes >= t + 1 then [ (dealer, Sentinel.Grade_zero) ]
      else []);
  outcomes
