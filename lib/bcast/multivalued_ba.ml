type 'v behavior =
  | Honest
  | Silent
  | Fixed of 'v
  | Arbitrary of (round:int -> dst:int -> 'v option option)

(* Messages are ['v option]: a vote, or round 2's explicit ⊥. *)
let run ?(behavior = fun _ -> Honest) ~ba ~equal ~byte_size ~n ~t ~inputs () =
  if n < (3 * t) + 1 then invalid_arg "Multivalued_ba.run: requires n >= 3t+1";
  if Array.length inputs <> n then invalid_arg "Multivalued_ba.run: inputs size";
  let msg_size = function None -> 1 | Some v -> 1 + byte_size v in
  let net = Transport.create ~n ~byte_size:msg_size () in
  let exchange ~round honest_msg =
    Transport.exchange net ~send:(fun () ->
        for i = 0 to n - 1 do
          match behavior i with
          | Honest -> Transport.send_to_all net ~src:i (fun _ -> honest_msg i)
          | Silent -> ()
          | Fixed v -> Transport.send_to_all net ~src:i (fun _ -> Some v)
          | Arbitrary f ->
              for dst = 0 to n - 1 do
                match f ~round ~dst with
                | Some msg -> Transport.send net ~src:i ~dst msg
                | None -> ()
              done
        done)
  in
  (* Count the occurrences of each distinct announced value. *)
  let tallies inbox_i =
    let votes = List.filter_map snd inbox_i in
    let rec count v = function
      | [] -> 0
      | w :: rest -> (if equal v w then 1 else 0) + count v rest
    in
    List.map (fun v -> (v, count v votes)) votes
  in
  (* Round 1: raw inputs; keep a value only with n - t support. *)
  let inbox = exchange ~round:1 (fun i -> Some inputs.(i)) in
  let sieved =
    Array.init n (fun i ->
        match List.find_opt (fun (_, c) -> c >= n - t) (tallies inbox.(i)) with
        | Some (v, _) -> Some v
        | None -> None)
  in
  (* Round 2: sieved values (⊥ allowed); strong support feeds the binary
     agreement, weak support (>= t+1, necessarily unique) names the
     candidate. *)
  let inbox = exchange ~round:2 (fun i -> sieved.(i)) in
  let strong = Array.make n false in
  let candidate = Array.make n None in
  Array.iteri
    (fun i inbox_i ->
      let t_i = tallies inbox_i in
      strong.(i) <- List.exists (fun (_, c) -> c >= n - t) t_i;
      candidate.(i) <-
        Option.map fst (List.find_opt (fun (_, c) -> c >= t + 1) t_i))
    inbox;
  let decisions = ba strong in
  Array.init n (fun i -> if decisions.(i) then candidate.(i) else None)
