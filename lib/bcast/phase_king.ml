type behavior =
  | Honest
  | Silent
  | Fixed of bool
  | Arbitrary of (phase:int -> round:int -> dst:int -> bool option)

let run ?(behavior = fun _ -> Honest) ~n ~t ~inputs () =
  if n < (4 * t) + 1 then invalid_arg "Phase_king.run: requires n >= 4t+1";
  if Array.length inputs <> n then invalid_arg "Phase_king.run: inputs size";
  Metrics.tick_ba ();
  let net = Transport.create ~n ~byte_size:(fun _ -> 1) () in
  let pref = Array.copy inputs in
  let sends i ~phase ~round honest_bit =
    match behavior i with
    | Honest -> Transport.send_to_all net ~src:i (fun _ -> honest_bit)
    | Silent -> ()
    | Fixed b -> Transport.send_to_all net ~src:i (fun _ -> b)
    | Arbitrary f ->
        for dst = 0 to n - 1 do
          match f ~phase ~round ~dst with
          | Some b -> Transport.send net ~src:i ~dst b
          | None -> ()
        done
  in
  for phase = 0 to t do
    (* Round 1: universal exchange of preferences; a missing message
       counts as 0. *)
    let inbox =
      Transport.exchange net ~send:(fun () ->
          for i = 0 to n - 1 do
            sends i ~phase ~round:1 pref.(i)
          done)
    in
    let majority = Array.make n false and support = Array.make n 0 in
    for i = 0 to n - 1 do
      let ones =
        List.length (List.filter (fun (_, b) -> b) inbox.(i))
      in
      let zeros = n - ones in
      majority.(i) <- ones > zeros;
      support.(i) <- max ones zeros
    done;
    (* Round 2: the phase king proposes its majority value. *)
    let king = phase mod n in
    let inbox =
      Transport.exchange net ~send:(fun () ->
          sends king ~phase ~round:2 majority.(king))
    in
    for i = 0 to n - 1 do
      let king_bit =
        match List.assoc_opt king inbox.(i) with Some b -> b | None -> false
      in
      (* Keep own majority only when its support is unambiguous even
         against t lies; otherwise defer to the king. *)
      if support.(i) > (n / 2) + t then pref.(i) <- majority.(i)
      else pref.(i) <- king_bit
    done
  done;
  pref
