let log_src = Logs.Src.create "dprbg.beacon" ~doc:"Randomness-beacon service"

module Log = (val Logs.src_log log_src)

module Make (F : Field_intf.S) = struct
  module P = Pool.Make (F)

  exception Corrupt_snapshot of string

  type state = Serving | Degraded of string | Halted of string
  type reject = Queue_full | Pool_pressure | Beacon_halted of string

  let reject_name = function
    | Queue_full -> "queue_full"
    | Pool_pressure -> "pool_pressure"
    | Beacon_halted _ -> "halted"

  let state_label = function
    | Serving -> "serving"
    | Degraded _ -> "degraded"
    | Halted _ -> "halted"

  type epoch = {
    seq : int;
    prev : Beacon_hash.t;
    coin : F.t;
    vended : int;
    shed : int;
    flags : string;
    digest : Beacon_hash.t;
    mac : Beacon_hash.t;
  }

  (* The byte string the digest commits to: every record field except
     the digest and MAC themselves. [prev] is inside, so each digest
     transitively commits to the whole chain before it. *)
  let epoch_preimage ~seq ~prev ~coin ~vended ~shed ~flags =
    let w = Wire.Writer.create () in
    Wire.Writer.u32 w seq;
    Beacon_hash.write w prev;
    let cb = F.to_bytes coin in
    Wire.Writer.u16 w (Bytes.length cb);
    Wire.Writer.raw w cb;
    Wire.Writer.u32 w vended;
    Wire.Writer.u32 w shed;
    let fb = Bytes.of_string flags in
    Wire.Writer.u16 w (Bytes.length fb);
    Wire.Writer.raw w fb;
    Wire.Writer.contents w

  let default_key = "dprbg-beacon"

  let seal ?(key = default_key) ~seq ~prev ~coin ~vended ~shed ~flags () =
    let digest =
      Beacon_hash.digest (epoch_preimage ~seq ~prev ~coin ~vended ~shed ~flags)
    in
    let mac = Beacon_hash.mac ~key (Beacon_hash.to_bytes digest) in
    { seq; prev; coin; vended; shed; flags; digest; mac }

  let verify_chain ?(key = default_key) epochs =
    let check e ~expect_prev =
      if e.seq < 0 then Error (Printf.sprintf "epoch %d: negative seq" e.seq)
      else if
        (match expect_prev with
        | Some p -> not (Beacon_hash.equal e.prev p)
        | None -> e.seq = 0 && not (Beacon_hash.equal e.prev Beacon_hash.zero))
      then Error (Printf.sprintf "epoch %d: broken prev link" e.seq)
      else
        let expect =
          seal ~key ~seq:e.seq ~prev:e.prev ~coin:e.coin ~vended:e.vended
            ~shed:e.shed ~flags:e.flags ()
        in
        if not (Beacon_hash.equal expect.digest e.digest) then
          Error
            (Printf.sprintf "epoch %d: digest does not match its fields" e.seq)
        else if not (Beacon_hash.equal expect.mac e.mac) then
          Error (Printf.sprintf "epoch %d: MAC verification failed" e.seq)
        else Ok ()
    in
    let rec go prev_epoch = function
      | [] -> Ok ()
      | e :: rest -> (
          let link =
            match prev_epoch with
            | None -> Ok ()
            | Some p ->
                if e.seq <> p.seq + 1 then
                  Error
                    (Printf.sprintf "epoch %d: sequence gap after %d" e.seq
                       p.seq)
                else Ok ()
          in
          match link with
          | Error _ as err -> err
          | Ok () -> (
              match
                check e ~expect_prev:(Option.map (fun p -> p.digest) prev_epoch)
              with
              | Error _ as err -> err
              | Ok () -> go (Some e) rest))
    in
    go None epochs

  (* --- transcript codec -------------------------------------------- *)

  let schema = "dprbg-beacon-epoch/1"

  let epoch_to_json e =
    Printf.sprintf
      "{\"schema\":%S,\"seq\":%d,\"prev\":%S,\"coin\":%S,\"vended\":%d,\"shed\":%d,\"flags\":%S,\"digest\":%S,\"mac\":%S}"
      schema e.seq
      (Beacon_hash.to_hex e.prev)
      (Beacon_hash.hex_of_bytes (F.to_bytes e.coin))
      e.vended e.shed e.flags
      (Beacon_hash.to_hex e.digest)
      (Beacon_hash.to_hex e.mac)

  let epoch_of_json line =
    let ( let* ) = Result.bind in
    match
      Scanf.sscanf line
        "{\"schema\":%S,\"seq\":%d,\"prev\":%S,\"coin\":%S,\"vended\":%d,\"shed\":%d,\"flags\":%S,\"digest\":%S,\"mac\":%S}"
        (fun sc seq prev coin vended shed flags digest mac ->
          (sc, seq, prev, coin, vended, shed, flags, digest, mac))
    with
    | exception Scanf.Scan_failure msg -> Error ("malformed epoch line: " ^ msg)
    | exception End_of_file -> Error "truncated epoch line"
    | exception Failure msg -> Error ("malformed epoch line: " ^ msg)
    | sc, seq, prev, coin, vended, shed, flags, digest, mac ->
        if sc <> schema then Error (Printf.sprintf "unknown schema %S" sc)
        else
          let* prev = Beacon_hash.of_hex prev in
          let* digest = Beacon_hash.of_hex digest in
          let* mac = Beacon_hash.of_hex mac in
          let* coin_bytes = Beacon_hash.bytes_of_hex coin in
          let* coin =
            match F.of_bytes coin_bytes with
            | c -> Ok c
            | exception Invalid_argument msg ->
                Error ("bad coin encoding: " ^ msg)
          in
          Ok { seq; prev; coin; vended; shed; flags; digest; mac }

  (* --- the service -------------------------------------------------- *)

  type fulfillment = { request_id : int; epoch : int; bits : bool array }

  type request = {
    id : int;
    nbits : int;
    callback : fulfillment -> unit;
  }

  type t = {
    pool : P.t;
    key : string;
    max_pending : int;
    soft_cap : int;
    prefetch : int;
    mutable state : state;
    mutable next_seq : int;
    mutable head : Beacon_hash.t;
    mutable chain_rev : epoch list;
    mutable queue : request list; (* newest first *)
    mutable queue_len : int;
    mutable next_request_id : int;
    mutable shed_since_close : int;
    mutable epochs : int;
    mutable vended : int;
    mutable shed_queue_full : int;
    mutable shed_pool_pressure : int;
    mutable shed_halted : int;
  }

  type stats = {
    epochs : int;
    vended : int;
    shed_queue_full : int;
    shed_pool_pressure : int;
    shed_halted : int;
  }

  let create ?(key = default_key) ?(max_pending = 4096) ?(prefetch = 1) ~pool
      () =
    if max_pending < 2 then
      invalid_arg "Beacon.create: max_pending must be >= 2";
    if prefetch < 0 then invalid_arg "Beacon.create: prefetch must be >= 0";
    {
      pool;
      key;
      max_pending;
      soft_cap = max 1 (max_pending / 2);
      prefetch;
      state = Serving;
      next_seq = 0;
      head = Beacon_hash.zero;
      chain_rev = [];
      queue = [];
      queue_len = 0;
      next_request_id = 1;
      shed_since_close = 0;
      epochs = 0;
      vended = 0;
      shed_queue_full = 0;
      shed_pool_pressure = 0;
      shed_halted = 0;
    }

  let pool b = b.pool
  let pending b = b.queue_len
  let next_seq b = b.next_seq
  let head b = b.head
  let chain b = List.rev b.chain_rev

  (* Recompute the admission state from the live signals. [Halted] is
     sticky: once the fault assumption is void nothing short of a
     rebuild/restore makes the output trustworthy again. *)
  let refresh_state b =
    match b.state with
    | Halted _ -> ()
    | Serving | Degraded _ ->
        let quarantined =
          match P.ledger b.pool with
          | Some ledger -> Sentinel.Ledger.quarantined_count ledger
          | None -> 0
        in
        b.state <-
          (if P.headroom b.pool <= 0 then
             Degraded
               (Printf.sprintf
                  "pool at refill watermark (available=%d threshold=%d)"
                  (P.available b.pool)
                  (P.refill_threshold b.pool))
           else if quarantined > 0 then
             Degraded (Printf.sprintf "%d player(s) quarantined" quarantined)
           else Serving)

  let state b =
    refresh_state b;
    b.state

  let halt b msg =
    b.state <- Halted msg;
    (* In-flight requests can no longer be served honestly: shed them
       (their callbacks never fire) and account the shed. *)
    b.shed_halted <- b.shed_halted + b.queue_len;
    b.shed_since_close <- b.shed_since_close + b.queue_len;
    b.queue <- [];
    b.queue_len <- 0;
    Log.warn (fun f -> f "beacon halted: %s" msg)

  let request b ?id ?nbits ~callback () =
    let nbits = Option.value nbits ~default:F.k_bits in
    if nbits < 1 then invalid_arg "Beacon.request: nbits must be >= 1";
    (match id with
    | Some id when id < 1 -> invalid_arg "Beacon.request: id must be >= 1"
    | _ -> ());
    refresh_state b;
    match b.state with
    | _ when
        (match id with
        | Some id -> List.exists (fun r -> r.id = id) b.queue
        | None -> false) ->
        (* The id is already queued: the resubmission is idempotent (the
           first registration's callback fires, once) and costs no
           admission. *)
        Ok (Option.get id)
    | Halted msg ->
        b.shed_halted <- b.shed_halted + 1;
        b.shed_since_close <- b.shed_since_close + 1;
        Error (Beacon_halted msg)
    | _ when b.queue_len >= b.max_pending ->
        b.shed_queue_full <- b.shed_queue_full + 1;
        b.shed_since_close <- b.shed_since_close + 1;
        Error Queue_full
    | Degraded _ when b.queue_len >= b.soft_cap ->
        b.shed_pool_pressure <- b.shed_pool_pressure + 1;
        b.shed_since_close <- b.shed_since_close + 1;
        Error Pool_pressure
    | Serving | Degraded _ ->
        let id =
          match id with
          | None ->
              let id = b.next_request_id in
              b.next_request_id <- id + 1;
              id
          | Some id ->
              b.next_request_id <- max b.next_request_id (id + 1);
              id
        in
        b.queue <- { id; nbits; callback } :: b.queue;
        b.queue_len <- b.queue_len + 1;
        Ok id

  (* Per-request vend stream: a keyed digest of (epoch seq, coin,
     request id) seeds a SplitMix64 stream that yields the requested
     bits. Distinct requests in the same epoch get computationally
     unrelated streams from the single exposed coin — the paper's PRBG
     expansion, applied service-side. *)
  let derive b ~seq ~coin r =
    let w = Wire.Writer.create () in
    Wire.Writer.u8 w 3;
    Wire.Writer.u32 w seq;
    let cb = F.to_bytes coin in
    Wire.Writer.u16 w (Bytes.length cb);
    Wire.Writer.raw w cb;
    Wire.Writer.u32 w r.id;
    let h = Beacon_hash.mac ~key:b.key (Wire.Writer.contents w) in
    let g = Prng.create (Beacon_hash.to_seed h) in
    {
      request_id = r.id;
      epoch = seq;
      bits = Array.init r.nbits (fun _ -> Prng.bool g);
    }

  (* The closing sequence is write-ahead shaped: the epoch is sealed
     and handed to [pre_ack] {e before} any callback fires, so a
     durable backend can journal it first — a vend is acknowledged only
     once its epoch can survive a crash. [refresh_state] runs before
     the callbacks instead of after; callbacks cannot touch the pool,
     so the sealed record is bit-identical to the historical order. An
     exception from [pre_ack] aborts the close with the queue already
     drained: the process is presumed dead and recovery re-derives the
     position from what did reach the journal. *)
  let close_epoch_with ~pre_ack b =
    match b.state with
    | Halted msg -> Error ("beacon halted: " ^ msg)
    | Serving | Degraded _ -> (
        Trace.span Trace.Protocol "beacon.epoch" @@ fun () ->
        match P.draw_kary b.pool with
        | exception P.Safe_mode msg ->
            halt b msg;
            Error ("safe mode: " ^ msg)
        | exception P.Starved msg ->
            (* The refill retry budget ran dry. The queue is kept — the
               diagnostics (refill_attempts, backoff_rounds) are in the
               message, and the caller may close again once pressure
               passes. *)
            b.state <- Degraded ("pool starved: " ^ msg);
            Trace.note ("beacon epoch aborted, pool starved: " ^ msg);
            Error ("pool starved: " ^ msg)
        | coin ->
            let pending = List.rev b.queue in
            b.queue <- [];
            b.queue_len <- 0;
            let seq = b.next_seq in
            refresh_state b;
            let vended = List.length pending in
            let e =
              seal ~key:b.key ~seq ~prev:b.head ~coin ~vended
                ~shed:b.shed_since_close
                ~flags:(state_label b.state) ()
            in
            pre_ack e pending;
            List.iter
              (fun r ->
                let f = derive b ~seq ~coin r in
                Trace.event (fun () ->
                    Trace.Vend { request = r.id; epoch = seq; bits = r.nbits });
                r.callback f)
              pending;
            b.head <- e.digest;
            b.next_seq <- seq + 1;
            b.chain_rev <- e :: b.chain_rev;
            b.epochs <- b.epochs + 1;
            b.vended <- b.vended + vended;
            b.shed_since_close <- 0;
            Log.debug (fun f ->
                f "epoch %d: vended %d, shed %d, head %s" seq vended e.shed
                  (Beacon_hash.to_hex e.digest));
            (* Pending-demand signal: pay the next refill between
               epochs, not inside the next vend. Pressure failures here
               degrade/halt the state but never lose the epoch just
               emitted. *)
            (try if b.prefetch > 0 then P.prefetch b.pool ~upcoming:b.prefetch
             with
            | P.Safe_mode msg -> halt b msg
            | P.Starved msg -> b.state <- Degraded ("pool starved: " ^ msg));
            Ok e)

  let close_epoch b = close_epoch_with ~pre_ack:(fun _ _ -> ()) b

  let stats (b : t) : stats =
    {
      epochs = b.epochs;
      vended = b.vended;
      shed_queue_full = b.shed_queue_full;
      shed_pool_pressure = b.shed_pool_pressure;
      shed_halted = b.shed_halted;
    }

  (* --- persistence --------------------------------------------------- *)

  let magic = 0xBEA1

  (* v2 adds [next_request_id] after the counters, so ids stay unique
     for the lifetime of the chain even after the journal (the other
     id-recovery source) is rotated away. v1 snapshots still load and
     restart ids at 1 — the pre-journal behavior. *)
  let snapshot_version = 2
  let oldest_readable_version = 1

  let save b =
    let w = Wire.Writer.create () in
    Wire.Writer.u32 w b.next_seq;
    Beacon_hash.write w b.head;
    List.iter
      (fun v -> Wire.Writer.u32 w v)
      [ b.epochs; b.vended; b.shed_queue_full; b.shed_pool_pressure;
        b.shed_halted ];
    Wire.Writer.u32 w b.next_request_id;
    let pool_bytes = P.save b.pool in
    Wire.Writer.u32 w (Bytes.length pool_bytes);
    Wire.Writer.raw w pool_bytes;
    let payload = Wire.Writer.contents w in
    let header = Wire.Writer.create () in
    Wire.Writer.u16 header magic;
    Wire.Writer.u8 header snapshot_version;
    Wire.Writer.u32 header (Bytes.length payload);
    Wire.Writer.u32 header (Wire.Crc32.digest payload);
    Wire.Writer.raw header payload;
    Wire.Writer.contents header

  let corrupt msg = raise (Corrupt_snapshot ("Beacon.load: " ^ msg))

  let load ?(key = default_key) ?max_pending ?prefetch ?expect_head ?adversary
      ?expose_behavior ?sentinel ~prng ~batch_size ~refill_threshold bytes =
    if Bytes.length bytes < 11 then corrupt "truncated header";
    let r = Wire.Reader.of_bytes bytes in
    if Wire.Reader.u16 r <> magic then corrupt "bad magic";
    let version = Wire.Reader.u8 r in
    if version < oldest_readable_version || version > snapshot_version then
      corrupt (Printf.sprintf "unsupported version %d" version);
    let len = Wire.Reader.u32 r in
    if Bytes.length bytes <> 11 + len then corrupt "payload length mismatch";
    let crc = Wire.Reader.u32 r in
    let payload = Wire.Reader.raw r len in
    if Wire.Crc32.digest payload <> crc then corrupt "checksum mismatch";
    let next_seq, head, counters, next_request_id, pool_bytes =
      match
        let r = Wire.Reader.of_bytes payload in
        let next_seq = Wire.Reader.u32 r in
        let head = Beacon_hash.read r in
        let counters = Array.init 5 (fun _ -> Wire.Reader.u32 r) in
        let next_request_id =
          if version >= 2 then Wire.Reader.u32 r else 1
        in
        let pool_len = Wire.Reader.u32 r in
        let pool_bytes = Wire.Reader.raw r pool_len in
        Wire.Reader.expect_end r;
        (next_seq, head, counters, next_request_id, pool_bytes)
      with
      | decoded -> decoded
      | exception _ ->
          corrupt
            (Printf.sprintf "undecodable payload [bytes=%d]"
               (Bytes.length bytes))
    in
    (match expect_head with
    | Some h when not (Beacon_hash.equal h head) ->
        corrupt
          (Printf.sprintf
             "chain head mismatch: snapshot head is %s, expected %s — this \
              snapshot does not extend the trusted transcript"
             (Beacon_hash.to_hex head) (Beacon_hash.to_hex h))
    | _ -> ());
    let pool =
      match
        P.load ?adversary ?expose_behavior ?sentinel ~prng ~batch_size
          ~refill_threshold pool_bytes
      with
      | pool -> pool
      | exception P.Corrupt_snapshot msg ->
          corrupt ("wrapped pool snapshot is damaged: " ^ msg)
    in
    let b = create ~key ?max_pending ?prefetch ~pool () in
    b.next_seq <- next_seq;
    b.head <- head;
    b.epochs <- counters.(0);
    b.vended <- counters.(1);
    b.shed_queue_full <- counters.(2);
    b.shed_pool_pressure <- counters.(3);
    b.shed_halted <- counters.(4);
    b.next_request_id <- max 1 next_request_id;
    b

  (* --- crash-consistent durability ----------------------------------- *)

  module Durable = struct
    type d = {
      beacon : t;
      journal_path : string;
      snapshot_path : string option;
      sync : Beacon_journal.sync_policy;
      mutable w : Beacon_journal.writer;
      acked : (int, int * F.t * int) Hashtbl.t;
          (* request id -> (epoch seq, epoch coin, nbits vended) *)
      mutable replay_debt : int;
    }

    type recovery_stats = {
      replayed : epoch list;  (** journal epochs applied on top of [t] *)
      torn_bytes : int;
      deduped : int;  (** acked request ids recovered into the window *)
    }

    let journal_corrupt fmt =
      Printf.ksprintf (fun m -> raise (Beacon_journal.Corrupt_journal m)) fmt

    (* Journal record body: one epoch in full (digest and MAC included,
       so replay re-verifies rather than re-trusts) plus the request
       ids it acknowledged — the dedup window. *)
    let record_kind_epoch = 1

    let encode_record e acked =
      let w = Wire.Writer.create () in
      Wire.Writer.u8 w record_kind_epoch;
      Wire.Writer.u32 w e.seq;
      Beacon_hash.write w e.prev;
      let cb = F.to_bytes e.coin in
      Wire.Writer.u16 w (Bytes.length cb);
      Wire.Writer.raw w cb;
      Wire.Writer.u32 w e.vended;
      Wire.Writer.u32 w e.shed;
      let fb = Bytes.of_string e.flags in
      Wire.Writer.u16 w (Bytes.length fb);
      Wire.Writer.raw w fb;
      Beacon_hash.write w e.digest;
      Beacon_hash.write w e.mac;
      Wire.Writer.u32 w (List.length acked);
      List.iter
        (fun (id, nbits) ->
          Wire.Writer.u32 w id;
          Wire.Writer.u32 w nbits)
        acked;
      Wire.Writer.contents w

    let decode_record ~index body =
      match
        let r = Wire.Reader.of_bytes body in
        let kind = Wire.Reader.u8 r in
        if kind <> record_kind_epoch then failwith "unknown record kind";
        let seq = Wire.Reader.u32 r in
        let prev = Beacon_hash.read r in
        let clen = Wire.Reader.u16 r in
        let coin = F.of_bytes (Wire.Reader.raw r clen) in
        let vended = Wire.Reader.u32 r in
        let shed = Wire.Reader.u32 r in
        let flen = Wire.Reader.u16 r in
        let flags = Bytes.to_string (Wire.Reader.raw r flen) in
        let digest = Beacon_hash.read r in
        let mac = Beacon_hash.read r in
        let n = Wire.Reader.u32 r in
        let acked =
          List.init n (fun _ ->
              let id = Wire.Reader.u32 r in
              let nbits = Wire.Reader.u32 r in
              (id, nbits))
        in
        Wire.Reader.expect_end r;
        ({ seq; prev; coin; vended; shed; flags; digest; mac }, acked)
      with
      | decoded -> decoded
      | exception _ ->
          journal_corrupt
            "journal record %d passed its checksum but does not decode as a \
             beacon epoch"
            index

    (* Each replayed epoch consumed one pool draw the snapshot knows
       nothing about: pay those draws back (values discarded) so the
       restored pool can never re-vend a coin the published chain
       already exposed. Refill randomness differs across incarnations,
       so the discarded values are not compared against the journaled
       coins — it is the pool's position that must advance, not the
       values that must match. A pool that cannot advance leaves the
       debt outstanding: [Safe_mode] halts the beacon (no draw will
       ever be needed again), [Starved] degrades it and the next
       {!close_epoch} retries the debt before vending. *)
    let pay_replay_debt d =
      let b = d.beacon in
      let continue = ref true in
      while !continue && d.replay_debt > 0 do
        match P.draw_kary b.pool with
        | _ -> d.replay_debt <- d.replay_debt - 1
        | exception P.Safe_mode msg ->
            halt b msg;
            d.replay_debt <- 0;
            continue := false
        | exception P.Starved msg ->
            b.state <- Degraded ("pool starved during recovery replay: " ^ msg);
            continue := false
      done

    let attach ~journal ?snapshot ?(sync = Beacon_journal.Fsync) b =
      (* A stale temp from a crashed snapshot rotation is never state. *)
      (match snapshot with
      | Some p when Sys.file_exists (p ^ ".tmp") -> (
          try Sys.remove (p ^ ".tmp") with Sys_error _ -> ())
      | _ -> ());
      let r, w = Beacon_journal.open_append ~sync journal in
      let acked = Hashtbl.create 64 in
      let replayed = ref [] in
      let deduped = ref 0 in
      List.iteri
        (fun index body ->
          let e, ids = decode_record ~index body in
          (* Dedup entries are registered even for records the snapshot
             already covers: those vends were acknowledged too, and a
             client replaying one must get its original stream. *)
          List.iter
            (fun (id, nbits) ->
              if not (Hashtbl.mem acked id) then incr deduped;
              Hashtbl.replace acked id (e.seq, e.coin, nbits);
              b.next_request_id <- max b.next_request_id (id + 1))
            ids;
          if e.seq < b.next_seq then ()
          else if e.seq > b.next_seq then
            journal_corrupt
              "journal record %d skips from epoch %d to %d — this journal \
               does not continue the snapshot"
              index b.next_seq e.seq
          else begin
            if not (Beacon_hash.equal e.prev b.head) then
              journal_corrupt
                "journal epoch %d does not link to the recovered head %s"
                e.seq (Beacon_hash.to_hex b.head);
            let expect =
              seal ~key:b.key ~seq:e.seq ~prev:e.prev ~coin:e.coin
                ~vended:e.vended ~shed:e.shed ~flags:e.flags ()
            in
            if
              (not (Beacon_hash.equal expect.digest e.digest))
              || not (Beacon_hash.equal expect.mac e.mac)
            then
              journal_corrupt "journal epoch %d fails chain verification"
                e.seq;
            b.head <- e.digest;
            b.next_seq <- e.seq + 1;
            b.epochs <- b.epochs + 1;
            b.vended <- b.vended + e.vended;
            replayed := e :: !replayed
          end)
        r.Beacon_journal.records;
      let replayed = List.rev !replayed in
      let d =
        {
          beacon = b;
          journal_path = journal;
          snapshot_path = snapshot;
          sync;
          w;
          acked;
          replay_debt = List.length replayed;
        }
      in
      pay_replay_debt d;
      Log.info (fun f ->
          f "recovered beacon at seq %d: %d epoch(s) replayed, %d byte(s) \
             torn, %d request id(s) in the dedup window"
            b.next_seq (List.length replayed)
            r.Beacon_journal.torn_bytes !deduped);
      (d, { replayed; torn_bytes = r.Beacon_journal.torn_bytes;
            deduped = !deduped })

    let beacon d = d.beacon

    let replay d ~id =
      match Hashtbl.find_opt d.acked id with
      | None -> None
      | Some (seq, coin, nbits) ->
          Some (derive d.beacon ~seq ~coin { id; nbits; callback = ignore })

    let request d ?id ?nbits ~callback () =
      match id with
      | Some id0 -> (
          match replay d ~id:id0 with
          | Some f ->
              (* Already acknowledged before some restart: the original
                 vend is replayed verbatim — same epoch, same bits —
                 never a fresh draw. *)
              callback f;
              Ok id0
          | None -> request d.beacon ~id:id0 ?nbits ~callback ())
      | None -> request d.beacon ?nbits ~callback ()

    let close_epoch d =
      if d.replay_debt > 0 then pay_replay_debt d;
      if d.replay_debt > 0 then
        match d.beacon.state with
        | Halted msg -> Error ("beacon halted: " ^ msg)
        | Degraded msg -> Error (msg ^ ": recovery replay debt outstanding")
        | Serving -> Error "recovery replay debt outstanding"
      else begin
        let staged = ref None in
        let result =
          close_epoch_with d.beacon ~pre_ack:(fun e pending ->
              let ids = List.map (fun r -> (r.id, r.nbits)) pending in
              Beacon_journal.append d.w (encode_record e ids);
              staged := Some (e, ids))
        in
        (match (result, !staged) with
        | Ok e, Some (e', ids) when e'.seq = e.seq ->
            List.iter
              (fun (id, nbits) ->
                Hashtbl.replace d.acked id (e.seq, e.coin, nbits))
              ids
        | _ -> ());
        result
      end

    let snapshot d =
      match d.snapshot_path with
      | None -> invalid_arg "Beacon.Durable.snapshot: no snapshot path"
      | Some path ->
          let bytes = save d.beacon in
          let fsync = d.sync = Beacon_journal.Fsync in
          Beacon_journal.write_file_atomic ~fsync path bytes;
          (* Only now — the snapshot's covered seq durable — does the
             journal rotate to empty. A crash anywhere in between
             leaves snapshot and journal overlapping, which replay
             resolves by skipping records below the snapshot's seq. *)
          Beacon_journal.close d.w;
          d.w <- Beacon_journal.reset ~sync:d.sync d.journal_path

    let close d = Beacon_journal.close d.w
  end

  (* --- deterministic crash-point harness ------------------------------ *)

  module Harness = struct
    type report = {
      points : int;
      crashes : int;
      torn_recoveries : int;
      epochs : int;
    }

    exception Violation of string

    let fail fmt = Printf.ksprintf (fun m -> raise (Violation m)) fmt
    let snapshot_path dir = Filename.concat dir "beacon.snap"
    let journal_path dir = Filename.concat dir "beacon.journal"

    let clean dir =
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [
          snapshot_path dir;
          snapshot_path dir ^ ".tmp";
          journal_path dir;
          journal_path dir ^ ".tmp";
        ]

    let read_file path =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          let b = Bytes.create len in
          really_input ic b 0 len;
          b)

    let run ?(epochs = 4) ?(requests = 2) ?(snapshot_every = 2) ?(stride = 1)
        ~mk_fresh ~mk_restore ~dir () =
      if epochs < 1 then invalid_arg "Harness.run: epochs must be >= 1";
      if requests < 1 then invalid_arg "Harness.run: requests must be >= 1";
      if stride < 1 then invalid_arg "Harness.run: stride must be >= 1";
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      (* The harness plays both sides: it drives the server and keeps
         the clients' books — every epoch observed at ack time and the
         exact bits each acknowledged request received. Recovery is checked
         against those books after every kill. *)
      let closed : (int, epoch) Hashtbl.t = Hashtbl.create 64 in
      let acked_bits : (int, bool array) Hashtbl.t = Hashtbl.create 64 in
      let chain_key = ref default_key in
      let incarnation () =
        let spath = snapshot_path dir in
        let b =
          if Sys.file_exists spath then mk_restore (read_file spath)
          else mk_fresh ()
        in
        chain_key := b.key;
        let d, rs =
          Durable.attach ~journal:(journal_path dir) ~snapshot:spath
            ~sync:Beacon_journal.Flush_only b
        in
        Fun.protect ~finally:(fun () -> Durable.close d) @@ fun () ->
        (* Recovered epochs must extend the acknowledged chain: an acked
           seq must come back with the identical digest, and an epoch
           the clients never saw acked (journaled, killed before the
           ack) may only extend past everything acknowledged. *)
        let max_closed = Hashtbl.fold (fun s _ m -> max s m) closed (-1) in
        List.iter
          (fun (e : epoch) ->
            match Hashtbl.find_opt closed e.seq with
            | Some e' when Beacon_hash.equal e'.digest e.digest -> ()
            | Some _ -> fail "recovery rewrote acked epoch %d" e.seq
            | None ->
                if e.seq <= max_closed then
                  fail "recovery resurrected unacked epoch %d below the \
                        acked head %d" e.seq max_closed;
                Hashtbl.replace closed e.seq e)
          rs.Durable.replayed;
        (* Every acknowledged request still inside the dedup window must
           replay bit-identically. *)
        Hashtbl.iter
          (fun id bits ->
            match Durable.replay d ~id with
            | None -> () (* rotated out of the journal window *)
            | Some f ->
                if f.bits <> bits then
                  fail "request %d replayed with different bits" id)
          acked_bits;
        while next_seq d.beacon < epochs do
          let vend_buf = ref [] in
          for _ = 1 to requests do
            match
              Durable.request d ~callback:(fun f -> vend_buf := f :: !vend_buf)
                ()
            with
            | Ok _ -> ()
            | Error r -> fail "harness request rejected: %s" (reject_name r)
          done;
          (match Durable.close_epoch d with
          | Error msg -> fail "close failed: %s" msg
          | Ok e ->
              if Hashtbl.mem closed e.seq then
                fail "epoch seq %d reused" e.seq;
              Hashtbl.replace closed e.seq e;
              List.iter
                (fun f -> Hashtbl.replace acked_bits f.request_id f.bits)
                !vend_buf);
          if
            snapshot_every > 0
            && next_seq d.beacon mod snapshot_every = 0
            && next_seq d.beacon < epochs
          then Durable.snapshot d
        done;
        rs
      in
      let fresh_world () =
        clean dir;
        Hashtbl.reset closed;
        Hashtbl.reset acked_bits
      in
      let final_check () =
        let chain =
          Hashtbl.fold (fun _ e acc -> e :: acc) closed []
          |> List.sort (fun a b -> compare a.seq b.seq)
        in
        if List.length chain <> epochs then
          fail "final chain has %d epochs, expected %d (seq lost or skipped)"
            (List.length chain) epochs;
        List.iteri
          (fun i e ->
            if e.seq <> i then fail "seq %d missing from the final chain" i)
          chain;
        match verify_chain ~key:!chain_key chain with
        | Ok () -> ()
        | Error msg -> fail "final chain does not verify: %s" msg
      in
      let at = ref (-1) in
      try
        fresh_world ();
        let _, points = Beacon_journal.Crash_point.count incarnation in
        final_check ();
        let crashes = ref 0 and torn = ref 0 in
        let k = ref 0 in
        while !k < points do
          at := !k;
          fresh_world ();
          (match Beacon_journal.Crash_point.with_budget !k incarnation with
          | `Completed _ -> ()
          | `Crashed ->
              incr crashes;
              let rs = incarnation () in
              if rs.Durable.torn_bytes > 0 then incr torn);
          final_check ();
          k := !k + stride
        done;
        Ok { points; crashes = !crashes; torn_recoveries = !torn; epochs }
      with
      | Violation msg ->
          Error
            (if !at < 0 then "oracle run: " ^ msg
             else Printf.sprintf "crash point %d: %s" !at msg)
      | Beacon_journal.Corrupt_journal msg ->
          Error (Printf.sprintf "crash point %d: journal corrupt: %s" !at msg)
      | Corrupt_snapshot msg ->
          Error (Printf.sprintf "crash point %d: snapshot corrupt: %s" !at msg)
  end

  (* --- synthetic arrivals -------------------------------------------- *)

  module Arrival = struct
    type kind = Poisson | Bursty of { burst : float; mutable high : bool }
    type t = { rate : float; g : Prng.t; kind : kind }

    let unit_float g = float_of_int (Prng.bits g 53) /. 9007199254740992.

    let rec gaussian g =
      let u1 = unit_float g and u2 = unit_float g in
      if u1 <= 0. then gaussian g
      else sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

    (* Knuth's product method below lambda = 30 (exp(-lambda) stays
       representable), normal approximation above — loadgen rates are in
       the hundreds-to-thousands, where the approximation error is far
       below the arrival noise. *)
    let poisson_draw g lambda =
      if lambda <= 0. then 0
      else if lambda < 30. then begin
        let l = exp (-.lambda) in
        let k = ref 0 and p = ref 1.0 in
        let continue = ref true in
        while !continue do
          p := !p *. unit_float g;
          if !p > l then incr k else continue := false
        done;
        !k
      end
      else
        let x = lambda +. (sqrt lambda *. gaussian g) in
        int_of_float (Float.max 0. (Float.round x))

    let poisson ~rate ~seed =
      if rate < 0. then invalid_arg "Arrival.poisson: rate must be >= 0";
      { rate; g = Prng.of_int seed; kind = Poisson }

    let bursty ?(burst = 1.8) ~rate ~seed () =
      if rate < 0. then invalid_arg "Arrival.bursty: rate must be >= 0";
      if burst < 1.0 || burst > 2.0 then
        invalid_arg "Arrival.bursty: burst must be in [1, 2]";
      { rate; g = Prng.of_int seed; kind = Bursty { burst; high = false } }

    let next t =
      match t.kind with
      | Poisson -> poisson_draw t.g t.rate
      | Bursty b ->
          if unit_float t.g < 0.2 then b.high <- not b.high;
          let r =
            if b.high then b.burst *. t.rate else (2. -. b.burst) *. t.rate
          in
          poisson_draw t.g r

    let name t = match t.kind with Poisson -> "poisson" | Bursty _ -> "bursty"
  end
end
