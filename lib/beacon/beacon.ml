let log_src = Logs.Src.create "dprbg.beacon" ~doc:"Randomness-beacon service"

module Log = (val Logs.src_log log_src)

module Make (F : Field_intf.S) = struct
  module P = Pool.Make (F)

  exception Corrupt_snapshot of string

  type state = Serving | Degraded of string | Halted of string
  type reject = Queue_full | Pool_pressure | Beacon_halted of string

  let reject_name = function
    | Queue_full -> "queue_full"
    | Pool_pressure -> "pool_pressure"
    | Beacon_halted _ -> "halted"

  let state_label = function
    | Serving -> "serving"
    | Degraded _ -> "degraded"
    | Halted _ -> "halted"

  type epoch = {
    seq : int;
    prev : Beacon_hash.t;
    coin : F.t;
    vended : int;
    shed : int;
    flags : string;
    digest : Beacon_hash.t;
    mac : Beacon_hash.t;
  }

  (* The byte string the digest commits to: every record field except
     the digest and MAC themselves. [prev] is inside, so each digest
     transitively commits to the whole chain before it. *)
  let epoch_preimage ~seq ~prev ~coin ~vended ~shed ~flags =
    let w = Wire.Writer.create () in
    Wire.Writer.u32 w seq;
    Beacon_hash.write w prev;
    let cb = F.to_bytes coin in
    Wire.Writer.u16 w (Bytes.length cb);
    Wire.Writer.raw w cb;
    Wire.Writer.u32 w vended;
    Wire.Writer.u32 w shed;
    let fb = Bytes.of_string flags in
    Wire.Writer.u16 w (Bytes.length fb);
    Wire.Writer.raw w fb;
    Wire.Writer.contents w

  let default_key = "dprbg-beacon"

  let seal ?(key = default_key) ~seq ~prev ~coin ~vended ~shed ~flags () =
    let digest =
      Beacon_hash.digest (epoch_preimage ~seq ~prev ~coin ~vended ~shed ~flags)
    in
    let mac = Beacon_hash.mac ~key (Beacon_hash.to_bytes digest) in
    { seq; prev; coin; vended; shed; flags; digest; mac }

  let verify_chain ?(key = default_key) epochs =
    let check e ~expect_prev =
      if e.seq < 0 then Error (Printf.sprintf "epoch %d: negative seq" e.seq)
      else if
        (match expect_prev with
        | Some p -> not (Beacon_hash.equal e.prev p)
        | None -> e.seq = 0 && not (Beacon_hash.equal e.prev Beacon_hash.zero))
      then Error (Printf.sprintf "epoch %d: broken prev link" e.seq)
      else
        let expect =
          seal ~key ~seq:e.seq ~prev:e.prev ~coin:e.coin ~vended:e.vended
            ~shed:e.shed ~flags:e.flags ()
        in
        if not (Beacon_hash.equal expect.digest e.digest) then
          Error
            (Printf.sprintf "epoch %d: digest does not match its fields" e.seq)
        else if not (Beacon_hash.equal expect.mac e.mac) then
          Error (Printf.sprintf "epoch %d: MAC verification failed" e.seq)
        else Ok ()
    in
    let rec go prev_epoch = function
      | [] -> Ok ()
      | e :: rest -> (
          let link =
            match prev_epoch with
            | None -> Ok ()
            | Some p ->
                if e.seq <> p.seq + 1 then
                  Error
                    (Printf.sprintf "epoch %d: sequence gap after %d" e.seq
                       p.seq)
                else Ok ()
          in
          match link with
          | Error _ as err -> err
          | Ok () -> (
              match
                check e ~expect_prev:(Option.map (fun p -> p.digest) prev_epoch)
              with
              | Error _ as err -> err
              | Ok () -> go (Some e) rest))
    in
    go None epochs

  (* --- transcript codec -------------------------------------------- *)

  let schema = "dprbg-beacon-epoch/1"

  let epoch_to_json e =
    Printf.sprintf
      "{\"schema\":%S,\"seq\":%d,\"prev\":%S,\"coin\":%S,\"vended\":%d,\"shed\":%d,\"flags\":%S,\"digest\":%S,\"mac\":%S}"
      schema e.seq
      (Beacon_hash.to_hex e.prev)
      (Beacon_hash.hex_of_bytes (F.to_bytes e.coin))
      e.vended e.shed e.flags
      (Beacon_hash.to_hex e.digest)
      (Beacon_hash.to_hex e.mac)

  let epoch_of_json line =
    let ( let* ) = Result.bind in
    match
      Scanf.sscanf line
        "{\"schema\":%S,\"seq\":%d,\"prev\":%S,\"coin\":%S,\"vended\":%d,\"shed\":%d,\"flags\":%S,\"digest\":%S,\"mac\":%S}"
        (fun sc seq prev coin vended shed flags digest mac ->
          (sc, seq, prev, coin, vended, shed, flags, digest, mac))
    with
    | exception Scanf.Scan_failure msg -> Error ("malformed epoch line: " ^ msg)
    | exception End_of_file -> Error "truncated epoch line"
    | exception Failure msg -> Error ("malformed epoch line: " ^ msg)
    | sc, seq, prev, coin, vended, shed, flags, digest, mac ->
        if sc <> schema then Error (Printf.sprintf "unknown schema %S" sc)
        else
          let* prev = Beacon_hash.of_hex prev in
          let* digest = Beacon_hash.of_hex digest in
          let* mac = Beacon_hash.of_hex mac in
          let* coin_bytes = Beacon_hash.bytes_of_hex coin in
          let* coin =
            match F.of_bytes coin_bytes with
            | c -> Ok c
            | exception Invalid_argument msg ->
                Error ("bad coin encoding: " ^ msg)
          in
          Ok { seq; prev; coin; vended; shed; flags; digest; mac }

  (* --- the service -------------------------------------------------- *)

  type fulfillment = { request_id : int; epoch : int; bits : bool array }

  type request = {
    id : int;
    nbits : int;
    callback : fulfillment -> unit;
  }

  type t = {
    pool : P.t;
    key : string;
    max_pending : int;
    soft_cap : int;
    prefetch : int;
    mutable state : state;
    mutable next_seq : int;
    mutable head : Beacon_hash.t;
    mutable chain_rev : epoch list;
    mutable queue : request list; (* newest first *)
    mutable queue_len : int;
    mutable next_request_id : int;
    mutable shed_since_close : int;
    mutable epochs : int;
    mutable vended : int;
    mutable shed_queue_full : int;
    mutable shed_pool_pressure : int;
    mutable shed_halted : int;
  }

  type stats = {
    epochs : int;
    vended : int;
    shed_queue_full : int;
    shed_pool_pressure : int;
    shed_halted : int;
  }

  let create ?(key = default_key) ?(max_pending = 4096) ?(prefetch = 1) ~pool
      () =
    if max_pending < 2 then
      invalid_arg "Beacon.create: max_pending must be >= 2";
    if prefetch < 0 then invalid_arg "Beacon.create: prefetch must be >= 0";
    {
      pool;
      key;
      max_pending;
      soft_cap = max 1 (max_pending / 2);
      prefetch;
      state = Serving;
      next_seq = 0;
      head = Beacon_hash.zero;
      chain_rev = [];
      queue = [];
      queue_len = 0;
      next_request_id = 1;
      shed_since_close = 0;
      epochs = 0;
      vended = 0;
      shed_queue_full = 0;
      shed_pool_pressure = 0;
      shed_halted = 0;
    }

  let pool b = b.pool
  let pending b = b.queue_len
  let next_seq b = b.next_seq
  let head b = b.head
  let chain b = List.rev b.chain_rev

  (* Recompute the admission state from the live signals. [Halted] is
     sticky: once the fault assumption is void nothing short of a
     rebuild/restore makes the output trustworthy again. *)
  let refresh_state b =
    match b.state with
    | Halted _ -> ()
    | Serving | Degraded _ ->
        let quarantined =
          match P.ledger b.pool with
          | Some ledger -> Sentinel.Ledger.quarantined_count ledger
          | None -> 0
        in
        b.state <-
          (if P.headroom b.pool <= 0 then
             Degraded
               (Printf.sprintf
                  "pool at refill watermark (available=%d threshold=%d)"
                  (P.available b.pool)
                  (P.refill_threshold b.pool))
           else if quarantined > 0 then
             Degraded (Printf.sprintf "%d player(s) quarantined" quarantined)
           else Serving)

  let state b =
    refresh_state b;
    b.state

  let halt b msg =
    b.state <- Halted msg;
    (* In-flight requests can no longer be served honestly: shed them
       (their callbacks never fire) and account the shed. *)
    b.shed_halted <- b.shed_halted + b.queue_len;
    b.shed_since_close <- b.shed_since_close + b.queue_len;
    b.queue <- [];
    b.queue_len <- 0;
    Log.warn (fun f -> f "beacon halted: %s" msg)

  let request b ?nbits ~callback () =
    let nbits = Option.value nbits ~default:F.k_bits in
    if nbits < 1 then invalid_arg "Beacon.request: nbits must be >= 1";
    refresh_state b;
    match b.state with
    | Halted msg ->
        b.shed_halted <- b.shed_halted + 1;
        b.shed_since_close <- b.shed_since_close + 1;
        Error (Beacon_halted msg)
    | _ when b.queue_len >= b.max_pending ->
        b.shed_queue_full <- b.shed_queue_full + 1;
        b.shed_since_close <- b.shed_since_close + 1;
        Error Queue_full
    | Degraded _ when b.queue_len >= b.soft_cap ->
        b.shed_pool_pressure <- b.shed_pool_pressure + 1;
        b.shed_since_close <- b.shed_since_close + 1;
        Error Pool_pressure
    | Serving | Degraded _ ->
        let id = b.next_request_id in
        b.next_request_id <- id + 1;
        b.queue <- { id; nbits; callback } :: b.queue;
        b.queue_len <- b.queue_len + 1;
        Ok id

  (* Per-request vend stream: a keyed digest of (epoch seq, coin,
     request id) seeds a SplitMix64 stream that yields the requested
     bits. Distinct requests in the same epoch get computationally
     unrelated streams from the single exposed coin — the paper's PRBG
     expansion, applied service-side. *)
  let derive b ~seq ~coin r =
    let w = Wire.Writer.create () in
    Wire.Writer.u8 w 3;
    Wire.Writer.u32 w seq;
    let cb = F.to_bytes coin in
    Wire.Writer.u16 w (Bytes.length cb);
    Wire.Writer.raw w cb;
    Wire.Writer.u32 w r.id;
    let h = Beacon_hash.mac ~key:b.key (Wire.Writer.contents w) in
    let g = Prng.create (Beacon_hash.to_seed h) in
    {
      request_id = r.id;
      epoch = seq;
      bits = Array.init r.nbits (fun _ -> Prng.bool g);
    }

  let close_epoch b =
    match b.state with
    | Halted msg -> Error ("beacon halted: " ^ msg)
    | Serving | Degraded _ -> (
        Trace.span Trace.Protocol "beacon.epoch" @@ fun () ->
        match P.draw_kary b.pool with
        | exception P.Safe_mode msg ->
            halt b msg;
            Error ("safe mode: " ^ msg)
        | exception P.Starved msg ->
            (* The refill retry budget ran dry. The queue is kept — the
               diagnostics (refill_attempts, backoff_rounds) are in the
               message, and the caller may close again once pressure
               passes. *)
            b.state <- Degraded ("pool starved: " ^ msg);
            Trace.note ("beacon epoch aborted, pool starved: " ^ msg);
            Error ("pool starved: " ^ msg)
        | coin ->
            let pending = List.rev b.queue in
            b.queue <- [];
            b.queue_len <- 0;
            let seq = b.next_seq in
            List.iter
              (fun r ->
                let f = derive b ~seq ~coin r in
                Trace.event (fun () ->
                    Trace.Vend { request = r.id; epoch = seq; bits = r.nbits });
                r.callback f)
              pending;
            refresh_state b;
            let vended = List.length pending in
            let e =
              seal ~key:b.key ~seq ~prev:b.head ~coin ~vended
                ~shed:b.shed_since_close
                ~flags:(state_label b.state) ()
            in
            b.head <- e.digest;
            b.next_seq <- seq + 1;
            b.chain_rev <- e :: b.chain_rev;
            b.epochs <- b.epochs + 1;
            b.vended <- b.vended + vended;
            b.shed_since_close <- 0;
            Log.debug (fun f ->
                f "epoch %d: vended %d, shed %d, head %s" seq vended e.shed
                  (Beacon_hash.to_hex e.digest));
            (* Pending-demand signal: pay the next refill between
               epochs, not inside the next vend. Pressure failures here
               degrade/halt the state but never lose the epoch just
               emitted. *)
            (try if b.prefetch > 0 then P.prefetch b.pool ~upcoming:b.prefetch
             with
            | P.Safe_mode msg -> halt b msg
            | P.Starved msg -> b.state <- Degraded ("pool starved: " ^ msg));
            Ok e)

  let stats (b : t) : stats =
    {
      epochs = b.epochs;
      vended = b.vended;
      shed_queue_full = b.shed_queue_full;
      shed_pool_pressure = b.shed_pool_pressure;
      shed_halted = b.shed_halted;
    }

  (* --- persistence --------------------------------------------------- *)

  let magic = 0xBEA1
  let snapshot_version = 1

  let save b =
    let w = Wire.Writer.create () in
    Wire.Writer.u32 w b.next_seq;
    Beacon_hash.write w b.head;
    List.iter
      (fun v -> Wire.Writer.u32 w v)
      [ b.epochs; b.vended; b.shed_queue_full; b.shed_pool_pressure;
        b.shed_halted ];
    let pool_bytes = P.save b.pool in
    Wire.Writer.u32 w (Bytes.length pool_bytes);
    Wire.Writer.raw w pool_bytes;
    let payload = Wire.Writer.contents w in
    let header = Wire.Writer.create () in
    Wire.Writer.u16 header magic;
    Wire.Writer.u8 header snapshot_version;
    Wire.Writer.u32 header (Bytes.length payload);
    Wire.Writer.u32 header (Wire.Crc32.digest payload);
    Wire.Writer.raw header payload;
    Wire.Writer.contents header

  let corrupt msg = raise (Corrupt_snapshot ("Beacon.load: " ^ msg))

  let load ?(key = default_key) ?max_pending ?prefetch ?expect_head ?adversary
      ?expose_behavior ?sentinel ~prng ~batch_size ~refill_threshold bytes =
    if Bytes.length bytes < 11 then corrupt "truncated header";
    let r = Wire.Reader.of_bytes bytes in
    if Wire.Reader.u16 r <> magic then corrupt "bad magic";
    let version = Wire.Reader.u8 r in
    if version <> snapshot_version then
      corrupt (Printf.sprintf "unsupported version %d" version);
    let len = Wire.Reader.u32 r in
    if Bytes.length bytes <> 11 + len then corrupt "payload length mismatch";
    let crc = Wire.Reader.u32 r in
    let payload = Wire.Reader.raw r len in
    if Wire.Crc32.digest payload <> crc then corrupt "checksum mismatch";
    let next_seq, head, counters, pool_bytes =
      match
        let r = Wire.Reader.of_bytes payload in
        let next_seq = Wire.Reader.u32 r in
        let head = Beacon_hash.read r in
        let counters = Array.init 5 (fun _ -> Wire.Reader.u32 r) in
        let pool_len = Wire.Reader.u32 r in
        let pool_bytes = Wire.Reader.raw r pool_len in
        Wire.Reader.expect_end r;
        (next_seq, head, counters, pool_bytes)
      with
      | decoded -> decoded
      | exception _ ->
          corrupt
            (Printf.sprintf "undecodable payload [bytes=%d]"
               (Bytes.length bytes))
    in
    (match expect_head with
    | Some h when not (Beacon_hash.equal h head) ->
        corrupt
          (Printf.sprintf
             "chain head mismatch: snapshot head is %s, expected %s — this \
              snapshot does not extend the trusted transcript"
             (Beacon_hash.to_hex head) (Beacon_hash.to_hex h))
    | _ -> ());
    let pool =
      match
        P.load ?adversary ?expose_behavior ?sentinel ~prng ~batch_size
          ~refill_threshold pool_bytes
      with
      | pool -> pool
      | exception P.Corrupt_snapshot msg ->
          corrupt ("wrapped pool snapshot is damaged: " ^ msg)
    in
    let b = create ~key ?max_pending ?prefetch ~pool () in
    b.next_seq <- next_seq;
    b.head <- head;
    b.epochs <- counters.(0);
    b.vended <- counters.(1);
    b.shed_queue_full <- counters.(2);
    b.shed_pool_pressure <- counters.(3);
    b.shed_halted <- counters.(4);
    b

  (* --- synthetic arrivals -------------------------------------------- *)

  module Arrival = struct
    type kind = Poisson | Bursty of { burst : float; mutable high : bool }
    type t = { rate : float; g : Prng.t; kind : kind }

    let unit_float g = float_of_int (Prng.bits g 53) /. 9007199254740992.

    let rec gaussian g =
      let u1 = unit_float g and u2 = unit_float g in
      if u1 <= 0. then gaussian g
      else sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

    (* Knuth's product method below lambda = 30 (exp(-lambda) stays
       representable), normal approximation above — loadgen rates are in
       the hundreds-to-thousands, where the approximation error is far
       below the arrival noise. *)
    let poisson_draw g lambda =
      if lambda <= 0. then 0
      else if lambda < 30. then begin
        let l = exp (-.lambda) in
        let k = ref 0 and p = ref 1.0 in
        let continue = ref true in
        while !continue do
          p := !p *. unit_float g;
          if !p > l then incr k else continue := false
        done;
        !k
      end
      else
        let x = lambda +. (sqrt lambda *. gaussian g) in
        int_of_float (Float.max 0. (Float.round x))

    let poisson ~rate ~seed =
      if rate < 0. then invalid_arg "Arrival.poisson: rate must be >= 0";
      { rate; g = Prng.of_int seed; kind = Poisson }

    let bursty ?(burst = 1.8) ~rate ~seed () =
      if rate < 0. then invalid_arg "Arrival.bursty: rate must be >= 0";
      if burst < 1.0 || burst > 2.0 then
        invalid_arg "Arrival.bursty: burst must be in [1, 2]";
      { rate; g = Prng.of_int seed; kind = Bursty { burst; high = false } }

    let next t =
      match t.kind with
      | Poisson -> poisson_draw t.g t.rate
      | Bursty b ->
          if unit_float t.g < 0.2 then b.high <- not b.high;
          let r =
            if b.high then b.burst *. t.rate else (2. -. b.burst) *. t.rate
          in
          poisson_draw t.g r

    let name t = match t.kind with Poisson -> "poisson" | Bursty _ -> "bursty"
  end
end
