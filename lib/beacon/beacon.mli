(** A long-running randomness-beacon service over the bootstrap {!Pool}.

    The paper's headline result is amortization: one Coin-Expose spread
    over many consumers. This module turns the library {!Pool} into a
    {e service} that demonstrates it under sustained load. Consumers
    submit requests and get back a request id (the VRF-coordinator
    pattern: requests are queued, fulfillment arrives through the
    registered callback); at each epoch close the beacon exposes {e one}
    pool coin and vends every pending request from a per-request stream
    derived from that coin — the draws-per-coin ratio is exactly the
    number of requests amortized onto the exposure.

    Every epoch close emits a sequenced, hash-chained, MAC'd epoch
    record, so the output stream is publicly verifiable: anyone holding
    the transcript can recompute the chain ({!verify_chain}), and anyone
    holding the key can authenticate each record. Admission control
    sheds or queues new requests with explicit backpressure signals as
    the pool approaches [Starved], and sentinel quarantine /
    [Safe_mode] events surface as degraded/halted beacon {e states}
    instead of crashes.

    Property checklist (SoK on randomness beacons): {e liveness} — every
    admitted request is fulfilled at the next epoch close; {e
    bias-resistance} — outputs are exposed pool coins, which the paper's
    protocols already guarantee unbiased within the fault bound, and the
    beacon refuses to vend (halts) when the evidence voids that bound;
    {e public verifiability} — the hash chain plus per-record MACs. *)

module Make (F : Field_intf.S) : sig
  module P : module type of Pool.Make (F)

  exception Corrupt_snapshot of string
  (** Raised by {!load} on bytes that are not an intact beacon snapshot,
      or whose chain head does not match the caller's expectation. *)

  (** {1 States and backpressure} *)

  type state =
    | Serving  (** pool headroom positive, no quarantine evidence *)
    | Degraded of string
        (** still vending, but shedding above the soft cap: the pool is
            at its refill watermark, a refill just failed, or the
            sentinel has quarantined players (diagnostic attached) *)
    | Halted of string
        (** the pool refused to vend ([Pool.Safe_mode]): evidence
            implies more than [t] corrupted players, so the beacon
            stops emitting epochs rather than serve biased randomness.
            Sticky — a halted beacon must be rebuilt or restored. *)

  type reject =
    | Queue_full  (** hard queue bound [max_pending] hit *)
    | Pool_pressure
        (** degraded state: admission above the soft cap is shed until
            the pool recovers headroom *)
    | Beacon_halted of string  (** no admission in a halted beacon *)

  val reject_name : reject -> string
  val state_label : state -> string

  (** {1 Epoch records} *)

  type epoch = {
    seq : int;  (** 0-based, gapless *)
    prev : Beacon_hash.t;  (** digest of epoch [seq - 1]; zero at 0 *)
    coin : F.t;  (** the exposed pool coin seeding this epoch's vends *)
    vended : int;  (** requests fulfilled at this close *)
    shed : int;  (** requests shed since the previous close *)
    flags : string;  (** beacon state label at close *)
    digest : Beacon_hash.t;  (** hash of all fields above *)
    mac : Beacon_hash.t;  (** keyed MAC of [digest] *)
  }

  val verify_chain :
    ?key:string -> epoch list -> (unit, string) result
  (** Check a transcript slice (ascending [seq] order): gapless
      sequence, [prev] linkage, every digest recomputes from its
      fields, every MAC verifies under [key], and a slice starting at
      epoch 0 starts from the zero link. The error names the first
      offending sequence number. *)

  val epoch_to_json : epoch -> string
  (** One transcript line (schema [dprbg-beacon-epoch/1], no newline). *)

  val epoch_of_json : string -> (epoch, string) result
  (** Strict inverse of {!epoch_to_json}. *)

  (** {1 The service} *)

  type fulfillment = {
    request_id : int;
    epoch : int;  (** the epoch that vended it *)
    bits : bool array;  (** the requested number of derived bits *)
  }

  type t

  val create :
    ?key:string ->
    ?max_pending:int ->
    ?prefetch:int ->
    pool:P.t ->
    unit ->
    t
  (** A beacon over [pool] (which the beacon now owns: drawing from it
      elsewhere desynchronizes the demand accounting, not the chain).
      [key] (default ["dprbg-beacon"]) keys the record MACs.
      [max_pending] (default 4096, must be >= 2) bounds the request
      queue; the degraded-state soft cap is half of it. [prefetch]
      (default 1) is the pending-demand signal forwarded to
      {!P.prefetch} after each close, so refills run between epochs
      instead of inside one. *)

  val pool : t -> P.t
  val state : t -> state
  (** Recomputed from pool headroom and ledger evidence on every call;
      [Halted] is sticky. *)

  val pending : t -> int
  val next_seq : t -> int
  val head : t -> Beacon_hash.t
  (** Digest of the last emitted epoch ([Beacon_hash.zero] before the
      first). *)

  val chain : t -> epoch list
  (** All epochs emitted by this instance, ascending. A restored beacon
      starts with an empty in-memory chain but a non-zero {!head}. *)

  val request :
    t -> ?id:int -> ?nbits:int -> callback:(fulfillment -> unit) -> unit ->
    (int, reject) result
  (** Admit one consumer request for [nbits] derived bits (default
      [F.k_bits], must be >= 1). [Ok id] means the request is queued
      and [callback] will fire exactly once, at the next successful
      {!close_epoch}; [Error] is the explicit backpressure signal and
      the callback will never fire. [id] (must be >= 1) lets a client
      resubmit under its own request id: a resubmission of an id
      already queued is idempotent (the first registration's callback
      fires, once), and fresh auto-assigned ids never collide with
      explicitly used ones. *)

  val close_epoch : t -> (epoch, string) result
  (** Close the current epoch: expose one pool coin, seal the chained
      record, vend every pending request from it (callbacks fire in
      admission order, inside the [beacon.epoch] trace span, one
      [Trace.Vend] event each — strictly {e after} the record is
      sealed, which is what lets {!Durable} journal it first), then
      forward the demand signal to the pool. [Pool.Safe_mode] halts
      the beacon (pending requests are shed as [Beacon_halted]);
      [Pool.Starved] leaves the queue intact and the beacon degraded,
      so the caller may retry. Neither escapes as an exception. *)

  type stats = {
    epochs : int;
    vended : int;
    shed_queue_full : int;
    shed_pool_pressure : int;
    shed_halted : int;
  }

  val stats : t -> stats

  (** {1 Persistence} *)

  val save : t -> bytes
  (** Snapshot the beacon's durable state: the chain position
      ([next_seq], {!head}), the lifetime counters, and the wrapped
      pool snapshot ({!P.save}). The pending queue is deliberately not
      persisted — callbacks are not serializable; a restart sheds
      in-flight requests and consumers re-submit. *)

  val load :
    ?key:string ->
    ?max_pending:int ->
    ?prefetch:int ->
    ?expect_head:Beacon_hash.t ->
    ?adversary:(int -> P.CG.adversary) ->
    ?expose_behavior:(int -> int -> P.CE.sender_behavior) ->
    ?sentinel:Sentinel.config option ->
    prng:Prng.t ->
    batch_size:int ->
    refill_threshold:int ->
    bytes ->
    t
  (** Rebuild a beacon from {!save}d bytes; the epoch sequence resumes
      exactly where the snapshot left it (no sequence number is reused
      or skipped). [expect_head] is the chain head the operator trusts
      (e.g. the digest of the last transcript line); a snapshot whose
      head differs is rejected. The pool pass-throughs mirror
      {!P.load}. Snapshots are v2 (v1 still loads); v2 additionally
      carries the request-id counter so ids stay unique for the
      chain's lifetime.
      @raise Corrupt_snapshot on damaged bytes, an undecodable wrapped
      pool snapshot, or an [expect_head] mismatch. *)

  (** {1 Crash-consistent durability}

      A {!Durable.d} wraps a beacon in a write-ahead epoch journal
      ({!Beacon_journal}): every epoch is appended and flushed {e
      before} any vend callback fires, so an acknowledged vend can
      always be recovered. Recovery = snapshot + journal replay with
      torn-tail truncation; replayed records re-verify the chain
      (digest, MAC, prev linkage) rather than being re-trusted, and
      the request ids they acknowledged form a dedup window: a client
      resubmitting an acked id gets its original bits back verbatim.

      Restart determinism caveat: a restored pool's refill randomness
      is a fresh stream, so coins drawn {e after} a recovery differ
      from what the crashed process would have drawn — the journal
      guarantees the {e published} chain, not the counterfactual one.
      Replay therefore advances the pool by position (one discarded
      draw per replayed epoch), never by value. *)

  module Durable : sig
    type d

    type recovery_stats = {
      replayed : epoch list;
          (** journal epochs applied on top of the snapshot state *)
      torn_bytes : int;  (** trailing journal bytes dropped as torn *)
      deduped : int;  (** request ids recovered into the dedup window *)
    }

    val attach :
      journal:string ->
      ?snapshot:string ->
      ?sync:Beacon_journal.sync_policy ->
      t ->
      d * recovery_stats
    (** Wrap [t] — freshly created, or {!load}ed from [snapshot] — and
        replay the journal at [journal] on top of it: the torn tail is
        truncated, records at or below the snapshot's seq contribute
        only dedup entries, and records above it must link and verify
        or the attach fails. A stale [<snapshot>.tmp] from a crashed
        rotation is removed. [sync] (default [Fsync]) governs every
        subsequent append and rotation.
        @raise Beacon_journal.Corrupt_journal on mid-journal damage, a
        record that does not decode/verify, or a snapshot/journal pair
        that does not fit together. *)

    val beacon : d -> t

    val request :
      d -> ?id:int -> ?nbits:int -> callback:(fulfillment -> unit) ->
      unit -> (int, reject) result
    (** {!request} with restart-safe dedup: if [id] was already
        acknowledged in the journal window, the original fulfillment
        is re-derived and [callback] fires immediately (the recorded
        [nbits] wins over the argument — the replay is verbatim). *)

    val replay : d -> id:int -> fulfillment option
    (** The fulfillment [id] received, if it is in the dedup window. *)

    val close_epoch : d -> (epoch, string) result
    (** {!close_epoch} with the write-ahead step: the sealed record and
        its acked request ids are journaled (and synced, under
        [Fsync]) before any callback fires. Outstanding replay debt
        (a pool that could not advance during recovery) is paid first;
        while it cannot be, the close fails without vending. *)

    val snapshot : d -> unit
    (** Atomic snapshot rotation: {!save} to [<snapshot>.tmp], fsync,
        rename, and only then truncate the journal (itself an atomic
        header swap). Requires [snapshot] to have been given to
        {!attach}. The on-disk dedup window resets with the journal;
        in-memory entries survive until the process exits. *)

    val close : d -> unit
    (** Release the journal file descriptor. Never writes. *)
  end

  (** The deterministic crash-point sweep: runs a seeded workload once
      to count durability points ({!Beacon_journal.Crash_point}), then
      once per point with the writer killed at exactly that byte
      offset, recovering and re-checking after each kill. *)
  module Harness : sig
    type report = {
      points : int;  (** durability points (= crash offsets) swept *)
      crashes : int;  (** runs actually killed mid-write *)
      torn_recoveries : int;  (** recoveries that dropped a torn tail *)
      epochs : int;  (** chain length each run converges to *)
    }

    val run :
      ?epochs:int ->
      ?requests:int ->
      ?snapshot_every:int ->
      ?stride:int ->
      mk_fresh:(unit -> t) ->
      mk_restore:(bytes -> t) ->
      dir:string ->
      unit ->
      (report, string) result
    (** Serve [epochs] epochs of [requests] requests each, snapshotting
        every [snapshot_every] closes (0 = never), under files in
        [dir]; then kill-and-recover at every [stride]-th durability
        point. [mk_fresh] must build the same beacon every call (same
        seed) and [mk_restore] must load its snapshots with the same
        parameters. After every recovery the harness asserts: acked
        epochs reappear digest-identical, the final chain is gapless
        [0 .. epochs-1] and verifies, no seq is reused, and every
        acked request id still in the dedup window replays
        bit-identically. The first violated invariant comes back as
        [Error] with the crash offset. *)
  end

  (** {1 Synthetic consumer arrivals (loadgen)} *)

  module Arrival : sig
    type t
    (** A seeded open-loop arrival process: how many requests arrive in
        each successive epoch window. *)

    val poisson : rate:float -> seed:int -> t
    (** I.i.d. Poisson([rate]) arrivals per epoch. *)

    val bursty : ?burst:float -> rate:float -> seed:int -> unit -> t
    (** Two-state Markov-modulated Poisson arrivals: a high state at
        [burst * rate] and a low state at [(2 - burst) * rate]
        (default [burst = 1.8]), switching with probability 0.2 per
        epoch — long-run mean [rate], strongly correlated bursts. *)

    val next : t -> int
    val name : t -> string
  end
end
