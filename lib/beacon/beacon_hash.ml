(* Two-lane SplitMix64 sponge: 128-bit state, 64-bit rate. Each block
   perturbs the high lane through the SplitMix64 finalizer (full
   avalanche on 64 bits) and folds the result into the low lane, so
   every input bit diffuses into both lanes within one round. The
   length is absorbed at the end (suffix-freeness), followed by two
   blank rounds to flush the final block through both lanes. *)

type t = { hi : int64; lo : int64 }

let zero = { hi = 0L; lo = 0L }
let equal a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo

let compare a b =
  match Int64.unsigned_compare a.hi b.hi with
  | 0 -> Int64.unsigned_compare a.lo b.lo
  | c -> c

let golden = 0x9e3779b97f4a7c15L

let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let absorb st w =
  let hi = mix64 (Int64.add (Int64.logxor st.hi w) golden) in
  let lo = mix64 (Int64.logxor st.lo (Int64.add hi w)) in
  { hi; lo }

(* Little-endian 64-bit word at [off]; missing tail bytes read as 0. *)
let block b off =
  let len = Bytes.length b in
  let w = ref 0L in
  for i = 7 downto 0 do
    let v = if off + i < len then Char.code (Bytes.get b (off + i)) else 0 in
    w := Int64.logor (Int64.shift_left !w 8) (Int64.of_int v)
  done;
  !w

let absorb_bytes st b =
  let len = Bytes.length b in
  let st = ref st in
  let off = ref 0 in
  while !off < len do
    st := absorb !st (block b !off);
    off := !off + 8
  done;
  !st

let finish st ~total =
  let st = absorb st (Int64.of_int total) in
  let st = absorb st 0L in
  absorb st 0L

let digest b =
  (* Domain tag 1: unkeyed. *)
  let st = absorb { hi = 1L; lo = 0L } (Int64.of_int (Bytes.length b)) in
  finish (absorb_bytes st b) ~total:(Bytes.length b)

let mac ~key b =
  (* Domain tag 2: keyed sandwich — key, message, key again. *)
  let kb = Bytes.of_string key in
  let st = absorb { hi = 2L; lo = 0L } (Int64.of_int (Bytes.length kb)) in
  let st = absorb_bytes st kb in
  let st = absorb st (Int64.of_int (Bytes.length b)) in
  let st = absorb_bytes st b in
  let st = absorb_bytes st kb in
  finish st ~total:(Bytes.length b)

let to_bytes { hi; lo } =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 hi;
  Bytes.set_int64_le b 8 lo;
  b

let of_bytes b =
  if Bytes.length b <> 16 then
    invalid_arg "Beacon_hash.of_bytes: need exactly 16 bytes";
  { hi = Bytes.get_int64_le b 0; lo = Bytes.get_int64_le b 8 }

let to_seed { hi; lo } = Int64.logxor hi (mix64 lo)

let hex_of_bytes b =
  String.init
    (2 * Bytes.length b)
    (fun i ->
      let v = Char.code (Bytes.get b (i / 2)) in
      "0123456789abcdef".[if i mod 2 = 0 then v lsr 4 else v land 0xf])

let bytes_of_hex s =
  let len = String.length s in
  if len mod 2 <> 0 then Error "odd-length hex string"
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let b = Bytes.create (len / 2) in
    let bad = ref None in
    for i = 0 to (len / 2) - 1 do
      match (nibble s.[2 * i], nibble s.[(2 * i) + 1]) with
      | Some h, Some l -> Bytes.set b i (Char.chr ((h lsl 4) lor l))
      | _ -> if !bad = None then bad := Some (2 * i)
    done;
    match !bad with
    | Some i -> Error (Printf.sprintf "non-hex character at offset %d" i)
    | None -> Ok b

let to_hex h = hex_of_bytes (to_bytes h)

let of_hex s =
  if String.length s <> 32 then Error "digest hex must be 32 characters"
  else Result.map of_bytes (bytes_of_hex s)

let write w h = Wire.Writer.raw w (to_bytes h)
let read r = of_bytes (Wire.Reader.raw r 16)
let pp ppf h = Format.pp_print_string ppf (to_hex h)
