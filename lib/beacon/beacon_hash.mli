(** 128-bit digests and MACs for beacon epoch records.

    The container has no cryptographic library, and the repository's
    stance on local primitives follows {!Prng}: the paper treats them as
    given, so the simulation stands in a fast deterministic function
    with good avalanche behaviour — a two-lane SplitMix64 sponge — and
    documents that it is {e not} cryptographic. Everything the beacon
    layer asserts (chain linkage, tamper evidence in tests, keyed
    record authentication) only needs a stable, collision-scattering,
    key-separated function; swapping in a real hash/MAC later is a
    one-module change. *)

type t
(** A 128-bit digest. Immutable. *)

val zero : t
(** The genesis chain link: the [prev] of epoch 0. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val digest : bytes -> t
(** Unkeyed digest of the whole buffer. *)

val mac : key:string -> bytes -> t
(** Keyed digest (sandwich construction: the key is absorbed before and
    after the message, with domain separation from {!digest}). *)

val to_bytes : t -> bytes
(** 16 bytes, little-endian lanes. Round-trips with {!of_bytes}. *)

val of_bytes : bytes -> t
(** @raise Invalid_argument on a buffer that is not exactly 16 bytes. *)

val to_seed : t -> int64
(** Fold the digest into one 64-bit PRNG seed (for deriving per-request
    vend streams from an epoch coin). *)

val to_hex : t -> string
(** 32 lowercase hex characters. *)

val of_hex : string -> (t, string) result

val write : Wire.Writer.t -> t -> unit
val read : Wire.Reader.t -> t
val pp : Format.formatter -> t -> unit

(** {1 Generic hex helpers}

    Used by the beacon transcript codec for field-element payloads. *)

val hex_of_bytes : bytes -> string
val bytes_of_hex : string -> (bytes, string) result
