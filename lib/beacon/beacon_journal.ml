exception Corrupt_journal of string

type sync_policy = Fsync | Flush_only

let corrupt fmt =
  Printf.ksprintf (fun msg -> raise (Corrupt_journal msg)) fmt

(* ------------------------ crash injection ------------------------- *)

module Crash_point = struct
  exception Crashed

  type mode = Off | Counting of int ref | Budget of int ref

  let mode = ref Off

  let rec write_all fd buf pos len =
    if len > 0 then begin
      let n = Unix.write fd buf pos len in
      write_all fd buf (pos + n) (len - n)
    end

  (* Every byte of journal/snapshot traffic funnels through here, so an
     armed budget simulates SIGKILL at an exact byte offset: the write
     that overruns it lands only its first [remaining] bytes — the torn
     write — and the process is presumed dead from then on. *)
  let guarded_write fd buf =
    let len = Bytes.length buf in
    match !mode with
    | Off -> write_all fd buf 0 len
    | Counting c ->
        c := !c + len;
        write_all fd buf 0 len
    | Budget b ->
        if !b >= len then begin
          b := !b - len;
          write_all fd buf 0 len
        end
        else begin
          let part = !b in
          b := 0;
          write_all fd buf 0 part;
          raise Crashed
        end

  (* Metadata operations (renames) are one durability point each, so
     the sweep also exercises "crashed between the data and the
     rename". *)
  let tick () =
    match !mode with
    | Off -> ()
    | Counting c -> incr c
    | Budget b -> if !b >= 1 then decr b else raise Crashed

  let arm m f ~finally =
    (match !mode with
    | Off -> ()
    | _ -> invalid_arg "Beacon_journal.Crash_point: already armed");
    mode := m;
    Fun.protect ~finally:(fun () -> mode := Off) (fun () -> finally (f ()))

  let count f =
    let c = ref 0 in
    arm (Counting c) f ~finally:(fun x -> (x, !c))

  let with_budget budget f =
    if budget < 0 then
      invalid_arg "Beacon_journal.Crash_point.with_budget: negative budget";
    let b = ref budget in
    match arm (Budget b) f ~finally:(fun x -> `Completed x) with
    | outcome -> outcome
    | exception Crashed -> `Crashed
end

(* --------------------------- file format -------------------------- *)

let magic = 0xBEA2
let version = 1
let header_len = 3
let frame_len = 8 (* u32 length + u32 crc *)

let header_bytes () =
  let w = Wire.Writer.create () in
  Wire.Writer.u16 w magic;
  Wire.Writer.u8 w version;
  Wire.Writer.contents w

(* ---------------------------- writing ----------------------------- *)

type writer = {
  path : string;
  sync_policy : sync_policy;
  fd : Unix.file_descr;
  mutable next_record_seq : int;
  mutable closed : bool;
}

let path w = w.path

let maybe_fsync w =
  match w.sync_policy with Fsync -> Unix.fsync w.fd | Flush_only -> ()

let sync w = if not w.closed then Unix.fsync w.fd

let close w =
  if not w.closed then begin
    w.closed <- true;
    try Unix.close w.fd with Unix.Unix_error _ -> ()
  end

let open_writer ~sync_policy ~next_record_seq ~trunc path =
  let flags =
    Unix.[ O_WRONLY; O_CREAT; O_CLOEXEC ] @ if trunc then [ Unix.O_TRUNC ] else []
  in
  let fd = Unix.openfile path flags 0o644 in
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  { path; sync_policy; fd; next_record_seq; closed = false }

let create ?(sync = Fsync) path =
  let w = open_writer ~sync_policy:sync ~next_record_seq:0 ~trunc:true path in
  (try Crash_point.guarded_write w.fd (header_bytes ())
   with e ->
     close w;
     raise e);
  maybe_fsync w;
  w

let append w body =
  if w.closed then invalid_arg "Beacon_journal.append: writer is closed";
  let payload = Wire.Writer.create () in
  Wire.Writer.u32 payload w.next_record_seq;
  Wire.Writer.raw payload body;
  let payload = Wire.Writer.contents payload in
  let frame = Wire.Writer.create () in
  Wire.Writer.u32 frame (Bytes.length payload);
  Wire.Writer.u32 frame (Wire.Crc32.digest payload);
  Wire.Writer.raw frame payload;
  (* One write for the whole record: a crash splits it at a byte
     offset, never interleaves. The record seq is claimed only after
     the bytes are down, so a crashed append leaves it unconsumed. *)
  Crash_point.guarded_write w.fd (Wire.Writer.contents frame);
  w.next_record_seq <- w.next_record_seq + 1;
  maybe_fsync w

(* ---------------------------- recovery ---------------------------- *)

type recovery = {
  records : bytes list;
  next_record_seq : int;
  valid_len : int;
  torn_bytes : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

let u32_at data pos =
  Bytes.get_uint16_le data pos lor (Bytes.get_uint16_le data (pos + 2) lsl 16)

let recover jpath =
  if not (Sys.file_exists jpath) then
    { records = []; next_record_seq = 0; valid_len = 0; torn_bytes = 0 }
  else begin
    let data = read_file jpath in
    let size = Bytes.length data in
    if size < header_len then
      (* The crash landed inside the initial header write: nothing was
         ever durable, so the whole file is the torn tail. *)
      { records = []; next_record_seq = 0; valid_len = 0; torn_bytes = size }
    else begin
      if Bytes.get_uint16_le data 0 <> magic then
        corrupt "not a beacon journal (bad magic) [bytes=%d]" size;
      let v = Bytes.get_uint8 data 2 in
      if v <> version then corrupt "unsupported journal version %d" v;
      let records = ref [] in
      let seq = ref 0 in
      let pos = ref header_len in
      let torn = ref 0 in
      (* A frame that runs past end-of-file, or a checksum failure on
         the record that ends exactly at end-of-file, is a torn write:
         only the final append can be cut short by a crash. The same
         failures with bytes after them cannot be torn and are fatal. *)
      (try
         while !pos < size do
           if size - !pos < frame_len then begin
             torn := size - !pos;
             raise Exit
           end;
           let len = u32_at data !pos in
           if size - !pos - frame_len < len then begin
             torn := size - !pos;
             raise Exit
           end;
           let crc = u32_at data (!pos + 4) in
           let payload = Bytes.sub data (!pos + frame_len) len in
           if Wire.Crc32.digest payload <> crc then
             if !pos + frame_len + len = size then begin
               torn := size - !pos;
               raise Exit
             end
             else
               corrupt
                 "record %d at offset %d: checksum mismatch with %d bytes \
                  following — mid-journal corruption, not a torn tail"
                 !seq !pos
                 (size - !pos - frame_len - len);
           if len < 4 then
             corrupt "record %d at offset %d: intact but only %d bytes long"
               !seq !pos len;
           let rseq = u32_at payload 0 in
           if rseq <> !seq then
             corrupt
               "record sequence gap at offset %d: expected record %d, found \
                %d"
               !pos !seq rseq;
           records := Bytes.sub payload 4 (len - 4) :: !records;
           incr seq;
           pos := !pos + frame_len + len
         done
       with Exit -> ());
      {
        records = List.rev !records;
        next_record_seq = !seq;
        valid_len = !pos;
        torn_bytes = !torn;
      }
    end
  end

let open_append ?(sync = Fsync) jpath =
  let r = recover jpath in
  if r.valid_len < header_len then
    (* New file, or the header itself was torn: start clean. *)
    (r, create ~sync jpath)
  else begin
    if r.torn_bytes > 0 then
      Unix.truncate jpath r.valid_len;
    let w =
      open_writer ~sync_policy:sync ~next_record_seq:r.next_record_seq
        ~trunc:false jpath
    in
    (r, w)
  end

let fsync_fd fd = Unix.fsync fd

let write_file_atomic ?(fsync = true) fpath bytes =
  let tmp = fpath ^ ".tmp" in
  let fd =
    Unix.openfile tmp Unix.[ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Crash_point.guarded_write fd bytes;
      if fsync then fsync_fd fd);
  Crash_point.tick ();
  Sys.rename tmp fpath

let reset ?(sync = Fsync) jpath =
  write_file_atomic ~fsync:(sync = Fsync) jpath (header_bytes ());
  open_writer ~sync_policy:sync ~next_record_seq:0 ~trunc:false jpath
