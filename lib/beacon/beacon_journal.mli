(** Write-ahead epoch journal for the beacon's durability layer.

    A journal is a byte file: a 3-byte header (magic, version), then a
    run of records, each framed as a u32 payload length, a u32 CRC-32
    of the payload, and the payload itself — whose first four bytes are
    a record sequence number that must run contiguously from the value
    the file was created with. The framing is what makes recovery
    decidable: a crash mid-append leaves a {e torn tail} (a final
    record whose frame or checksum does not close), which {!recover}
    detects and drops; damage anywhere {e before} the tail cannot be a
    torn write and stays fatal with a precise diagnostic.

    Durability discipline is explicit in the API. Every {!append}
    pushes the framed record through [write(2)] before returning —
    under {!Fsync} (the production default for the durable beacon) it
    also [fsync]s, so an acknowledged append survives power loss; under
    {!Flush_only} the bytes are in the kernel page cache, which
    survives a process crash (SIGKILL) but not the machine. The
    crash-point harness runs [Flush_only]: process death is the failure
    model it simulates.

    The module is single-domain: the {!Crash_point} instrumentation is
    ambient global state, as is the writer's position. *)

exception Corrupt_journal of string
(** Mid-journal damage: a checksum or framing failure {e before} the
    final record, a record-sequence gap, or a header that belongs to
    some other file format. Never raised for a torn tail. *)

type sync_policy =
  | Fsync  (** [fsync] after every append and metadata rotation *)
  | Flush_only
      (** stop at [write(2)]: durable across process death only *)

(** Deterministic crash injection for the crash-point harness. Every
    byte the journal (and {!write_file_atomic}) pushes to disk, plus
    every metadata operation (a rename), is one {e durability point}.
    Counting a seeded workload's points and then re-running it once per
    point with that budget kills the writer at every possible byte
    offset — the SIGKILL sweep, made deterministic. *)
module Crash_point : sig
  exception Crashed
  (** Raised by the write that exhausts an armed budget, after it has
      written the bytes that still fit — the torn write itself. *)

  val count : (unit -> 'a) -> 'a * int
  (** Run a workload with points counted instead of limited; returns
      its result and the total number of durability points. *)

  val with_budget : int -> (unit -> 'a) -> [ `Completed of 'a | `Crashed ]
  (** Run a workload allowed exactly [budget] durability points; the
      write that would exceed them completes partially and the
      resulting {!Crashed} is caught here. Nested arming is rejected
      with [Invalid_argument]. *)
end

(** {1 Appending} *)

type writer

val create : ?sync:sync_policy -> string -> writer
(** Start a fresh journal at the path (truncating anything there),
    record sequence 0. Default [sync] is {!Fsync}. *)

val append : writer -> bytes -> unit
(** Frame and write one record carrying [body]; under {!Fsync} the
    record is on stable storage when this returns. *)

val sync : writer -> unit
(** Force an [fsync] regardless of the writer's policy. *)

val close : writer -> unit
(** Close the file descriptor. Idempotent; never writes. *)

val path : writer -> string

(** {1 Recovery} *)

type recovery = {
  records : bytes list;  (** every intact record body, in append order *)
  next_record_seq : int;  (** one past the last intact record *)
  valid_len : int;  (** byte length of the intact prefix *)
  torn_bytes : int;  (** trailing bytes dropped as a torn write *)
}

val recover : string -> recovery
(** Parse the journal at the path (a missing file is an empty
    journal). A final record that does not close — frame running past
    end-of-file, or a checksum mismatch on the very last record — is
    the torn tail: dropped, reported in [torn_bytes]. The file itself
    is not modified; {!open_append} is the mutating entry point.
    @raise Corrupt_journal on damage anywhere before the tail. *)

val open_append : ?sync:sync_policy -> string -> recovery * writer
(** {!recover}, then truncate the file to the intact prefix (rewriting
    the header if even that was torn or the file is new) and return a
    writer positioned after it, continuing the record sequence. *)

val reset : ?sync:sync_policy -> string -> writer
(** Atomically replace the journal with an empty one (fresh header
    written to [<path>.tmp], synced, renamed over) and return a writer
    on it, record sequence 0. This is the rotation step after a
    snapshot has made the journaled history redundant. *)

(** {1 Atomic file replacement} *)

val write_file_atomic : ?fsync:bool -> string -> bytes -> unit
(** Write [bytes] to [<path>.tmp], [fsync] it (default [true]), and
    rename over [path] — the snapshot-rotation primitive. A crash at
    any byte offset leaves either the old file intact (plus a stale
    [.tmp] that recovery ignores) or the new one complete, never a
    torn target. Writes count as {!Crash_point} durability points. *)
