type prop_spec = {
  name : string;
  regime : Fuzz_config.regime;
  ks : int array;
  ts : int array;
  max_m : int;
  weight : int;
  degrade_min : Fuzz_config.degrade;
  degrade_max : Fuzz_config.degrade;
  max_quar : int;
      (* ceiling for the quarantine-threshold axis; 0 keeps the axis off
         (the property runs no active sentinel ledger) *)
  doc : string;
}

(* Per-axis generation ceilings. An axis whose ceiling is 0 is never
   degraded for that property; [no_degrade] as the ceiling pins the
   property to pristine networks (exact Metrics accounting, or
   statistical trial counts that retransmit loops would distort).
   Whenever any axis is enabled the generator forces a retransmit
   budget >= 1, so a bounded envelope absorbs every sampled omission
   and the invariants stay deterministic. *)
let nd = Fuzz_config.no_degrade
let broadcast_axes = { nd with Fuzz_config.drop = 30; corrupt = 30; rt = 2 }

let p2p_axes =
  {
    Fuzz_config.drop = 25;
    delay = 25;
    dup = 20;
    corrupt = 20;
    reorder = 40;
    crash = 0;
    rt = 2;
  }

let registry =
  [
    {
      name = "vss-soundness";
      regime = Fuzz_config.Broadcast;
      ks = [| 8; 16; 32 |];
      ts = [| 1; 2; 3 |];
      max_m = 6;
      weight = 20;
      degrade_min = nd;
      degrade_max = broadcast_axes;
      max_quar = 0;
      doc =
        "Lemmas 1/3: honest dealings accepted (plain and robust rules), \
         degree-(t+1) dealings always rejected, targeted cheats accepted \
         exactly on their guessed coin set";
    };
    {
      name = "vss-reject-rate";
      regime = Fuzz_config.Broadcast;
      ks = [| 8 |];
      ts = [| 1; 2 |];
      max_m = 4;
      weight = 6;
      degrade_min = nd;
      degrade_max = nd;
      max_quar = 0;
      doc =
        "Lemma 3 with equality: the optimal batch cheat passes at rate \
         M/p over a small field (two-sided statistical bound)";
    };
    {
      name = "bitgen-verdicts";
      regime = Fuzz_config.Full;
      ks = [| 24; 32 |];
      ts = [| 1; 2 |];
      max_m = 4;
      weight = 14;
      degrade_min = nd;
      degrade_max = p2p_axes;
      max_quar = 0;
      doc =
        "Fig. 4: honest dealers convince everyone (even under faulty \
         gamma senders and t-bounded inconsistency), bad-degree dealers \
         convince nobody";
    };
    {
      name = "coin-honest-trust";
      regime = Fuzz_config.Full;
      ks = [| 32; 61 |];
      ts = [| 1; 1; 1; 2 |];
      max_m = 4;
      weight = 12;
      degrade_min = nd;
      degrade_max = p2p_axes;
      max_quar = 0;
      doc =
        "Honest Coin-Gen path: full clique, full trust, 1 BA iteration, \
         2 seed coins, and every coin exposes to ground truth under \
         exposure-time lies";
    };
    {
      name = "coin-unanimity";
      regime = Fuzz_config.Full;
      ks = [| 32; 61 |];
      ts = [| 1; 1; 1; 2 |];
      max_m = 4;
      weight = 16;
      degrade_min = nd;
      degrade_max = { p2p_axes with Fuzz_config.crash = 2 };
      max_quar = 0;
      doc =
        "Theorem 2 / Lemma 7 under scheduled mixed adversaries: clique \
         and trust bounds hold and all honest players decode every coin \
         identically";
    };
    {
      name = "coin-termination";
      regime = Fuzz_config.Full;
      ks = [| 32 |];
      ts = [| 1; 1; 2 |];
      max_m = 3;
      weight = 8;
      degrade_min = nd;
      degrade_max = nd;
      max_quar = 0;
      doc =
        "Lemma 8 accounting: BA iterations, seed-coin consumption, \
         grade-cast count and the exact synchronous round count agree \
         with the Metrics counters";
    };
    {
      name = "coin-freshness";
      regime = Fuzz_config.Full;
      ks = [| 32; 61 |];
      ts = [| 1 |];
      max_m = 4;
      weight = 8;
      degrade_min = nd;
      degrade_max = p2p_axes;
      max_quar = 0;
      doc =
        "Unpredictability necessary conditions: batch coins pairwise \
         distinct, fresh honest randomness changes every coin, no \
         corrupted share equals the coin value";
    };
    {
      name = "pool-liveness";
      regime = Fuzz_config.Full;
      ks = [| 32 |];
      ts = [| 1 |];
      max_m = 3;
      weight = 6;
      degrade_min = nd;
      degrade_max =
        {
          Fuzz_config.drop = 15;
          delay = 15;
          dup = 15;
          corrupt = 15;
          reorder = 30;
          crash = 0;
          rt = 2;
        };
      max_quar = 0;
      doc =
        "Bootstrap pool under a mobile scheduled adversary: never \
         starves, never breaks unanimity, ledger counters stay \
         consistent";
    };
    {
      name = "expose-degraded";
      regime = Fuzz_config.Full;
      ks = [| 32; 61 |];
      ts = [| 1; 2 |];
      max_m = 3;
      weight = 10;
      (* Always degraded, with a drop floor: this property exists to
         prove the retransmit envelope earns its keep — disable it
         ([No_retransmit]) and the dropped exposure shares overwhelm the
         Berlekamp-Welch error budget. *)
      degrade_min = { nd with Fuzz_config.drop = 15; rt = 1 };
      degrade_max =
        {
          Fuzz_config.drop = 40;
          delay = 25;
          dup = 25;
          corrupt = 25;
          reorder = 40;
          crash = 2;
          rt = 3;
        };
      max_quar = 0;
      doc =
        "Exposure under a degraded network: every honest player decodes \
         each dealer coin to ground truth despite drops, delays, \
         corruption, exposure-time lies and crashed faulty players — \
         the bounded retransmit envelope absorbs the omissions";
    };
    {
      name = "pool-recovery";
      regime = Fuzz_config.Full;
      ks = [| 32 |];
      ts = [| 1 |];
      max_m = 3;
      weight = 6;
      degrade_min = nd;
      degrade_max =
        {
          Fuzz_config.drop = 15;
          delay = 15;
          dup = 15;
          corrupt = 15;
          reorder = 30;
          crash = 0;
          rt = 2;
        };
      max_quar = 0;
      doc =
        "Crash-recovery: a mid-soak pool snapshot restores to an \
         equivalent pool (stock and ledger intact, dealer untouched) \
         that keeps serving under the same degraded network, while any \
         single bit flip in the snapshot is rejected as corrupt";
    };
    {
      name = "no-honest-quarantine";
      regime = Fuzz_config.Full;
      ks = [| 32 |];
      ts = [| 1 |];
      max_m = 3;
      weight = 6;
      degrade_min = nd;
      (* crash stays 0: a crashed player falls silent through no lie of
         its own, and this property requires every faulty player to be a
         persistent exposure-time liar. *)
      degrade_max =
        {
          Fuzz_config.drop = 15;
          delay = 15;
          dup = 15;
          corrupt = 15;
          reorder = 30;
          crash = 0;
          rt = 2;
        };
      max_quar = 12;
      doc =
        "Sentinel attribution: a passive ledger leaves the draw stream \
         bit-identical, an active one quarantines every persistently \
         lying faulty player and never an honest one, even over lossy \
         links";
    };
  ]

let find_spec name = List.find_opt (fun s -> s.name = name) registry

(* ---------------------- Field instantiation ---------------------- *)

let field_cache : (int, (module Field_intf.S)) Hashtbl.t = Hashtbl.create 8

let field_of_k k : (module Field_intf.S) =
  match k with
  | 8 -> (module Gf2k.GF8)
  | 16 -> (module Gf2k.GF16)
  | 32 -> (module Gf2k.GF32)
  | 61 -> (module Gf2k.GF61)
  | k -> (
      match Hashtbl.find_opt field_cache k with
      | Some f -> f
      | None ->
          let f : (module Field_intf.S) =
            (module Gf2k.Make (struct
              let k = k
            end))
          in
          Hashtbl.add field_cache k f;
          f)

(* Build the fault plan a degraded scenario runs under. Everything is
   derived from the scenario seed, so replays install a bit-identical
   plan. Crashed players are the first [crash] members of the
   scenario's corrupted set — properties draw that set as their first
   PRNG use ([Transport.Faults.random (Prng.of_int cfg.seed)]), which we
   replay here, keeping crash faults a subset of Byzantine faults so no
   invariant over honest players is weakened. The [No_retransmit]
   injected bug zeroes the retransmit budget, leaving every other axis
   in place: the envelope's absorption is exactly what it ablates. *)
let plan_of (cfg : Fuzz_config.t) =
  let d = cfg.net in
  if d = Fuzz_config.no_degrade then None
  else
    let n = Fuzz_config.n_of cfg in
    let crashes =
      if d.crash = 0 then []
      else
        let faults =
          Transport.Faults.random (Prng.of_int cfg.seed) ~n ~t:cfg.faults
        in
        let gp = Prng.of_int (cfg.seed + 0x6b43a9b5) in
        Transport.Faults.faulty faults
        |> List.filteri (fun i _ -> i < d.crash)
        |> List.map (fun p ->
               let from = 1 + Prng.int gp 8 in
               let until =
                 if Prng.bool gp then Some (from + 1 + Prng.int gp 6)
                 else None
               in
               (p, from, until))
    in
    let retransmits =
      match cfg.bug with Some Fuzz_config.No_retransmit -> 0 | _ -> d.rt
    in
    let pct x = float_of_int x /. 100.0 in
    Some
      (Transport.Plan.make ~drop:(pct d.drop) ~delay:(pct d.delay)
         ~duplicate:(pct d.dup) ~corrupt:(pct d.corrupt)
         ~reorder:(pct d.reorder) ~crashes ~retransmits
         ~seed:(cfg.seed lxor 0x2b992ddf) ())

let run_config_outcome (cfg : Fuzz_config.t) : Fuzz_props.outcome =
  match find_spec cfg.prop with
  | None -> Fuzz_props.Fail (Printf.sprintf "unknown property %S" cfg.prop)
  | Some spec ->
      if spec.regime <> cfg.regime then
        Fuzz_props.Fail
          (Printf.sprintf "property %s runs in the %s regime, not %s"
             cfg.prop
             (Format.asprintf "%a" Fuzz_config.pp_regime spec.regime)
             (Format.asprintf "%a" Fuzz_config.pp_regime cfg.regime))
      else
        let module F = (val field_of_k cfg.k) in
        let module Props = Fuzz_props.Make (F) in
        let go () = Props.run cfg in
        match plan_of cfg with
        | None -> go ()
        | Some plan -> Transport.with_plan plan go

let run_config cfg =
  match run_config_outcome cfg with
  | Fuzz_props.Pass -> Ok ()
  | Fuzz_props.Fail msg -> Error msg

(* --------------------------- Shrinking --------------------------- *)

(* Greedy descent: take the first strictly-smaller candidate that still
   fails, repeat from there; stop at a local minimum or after [budget]
   candidate executions. Candidate field sizes outside the property's
   own envelope are discarded so a deterministic counterexample cannot
   degenerate into small-field soundness noise. *)
let shrink cfg first_message =
  let allowed_ks =
    match find_spec cfg.Fuzz_config.prop with
    | Some spec -> Array.to_list spec.ks
    | None -> []
  in
  let budget = ref 200 in
  let rec loop cfg message steps =
    if !budget <= 0 then (cfg, message, steps)
    else
      let candidates =
        Fuzz_config.shrink_candidates cfg
        |> List.filter (fun (c : Fuzz_config.t) ->
               c.k = cfg.Fuzz_config.k || List.mem c.k allowed_ks)
      in
      let rec try_candidates = function
        | [] -> (cfg, message, steps)
        | c :: rest -> (
            decr budget;
            if !budget < 0 then (cfg, message, steps)
            else
              match run_config_outcome c with
              | Fuzz_props.Fail msg' -> loop c msg' (steps + 1)
              | Fuzz_props.Pass -> try_candidates rest)
      in
      try_candidates candidates
  in
  loop cfg first_message 0

(* --------------------------- Campaigns --------------------------- *)

type failure = {
  original : Fuzz_config.t;
  original_message : string;
  shrunk : Fuzz_config.t;
  message : string;
  shrink_steps : int;
  trial : int;
}

type report = {
  trials_run : int;
  passes : int;
  per_property : (string * int) list;
  per_regime : (Fuzz_config.regime * int) list;
  failure : failure option;
}

let gen_config g ~specs ~bug : Fuzz_config.t =
  let total = List.fold_left (fun acc s -> acc + s.weight) 0 specs in
  let rec pick specs roll =
    match specs with
    | [] -> assert false
    | [ s ] -> s
    | s :: rest -> if roll < s.weight then s else pick rest (roll - s.weight)
  in
  let spec = pick specs (Prng.int g total) in
  let fault_bound = Prng.choose g spec.ts in
  let seed = Prng.bits g 30 in
  let k = Prng.choose g spec.ks in
  let faults = Prng.int g (fault_bound + 1) in
  let m = 1 + Prng.int g spec.max_m in
  let net =
    if spec.degrade_max = Fuzz_config.no_degrade then Fuzz_config.no_degrade
    else if spec.degrade_min = Fuzz_config.no_degrade && Prng.bool g then
      (* Half the trials keep the pristine network so degraded coverage
         never crowds out the protocol-logic search space. *)
      Fuzz_config.no_degrade
    else
      let lo = spec.degrade_min and hi = spec.degrade_max in
      let axis lo hi = if hi <= lo then lo else lo + Prng.int g (hi - lo + 1) in
      {
        Fuzz_config.drop = axis lo.Fuzz_config.drop hi.Fuzz_config.drop;
        delay = axis lo.delay hi.delay;
        dup = axis lo.dup hi.dup;
        corrupt = axis lo.corrupt hi.corrupt;
        reorder = axis lo.reorder hi.reorder;
        crash = min faults (axis lo.crash hi.crash);
        rt = axis (max 1 lo.rt) hi.rt;
      }
  in
  let quar =
    (* Floor of 3: the heaviest single observation (Equivocation, weight
       4) may quarantine at once, but a threshold below any single
       weight would be degenerate. *)
    if spec.max_quar = 0 then 0 else 3 + Prng.int g (spec.max_quar - 2)
  in
  {
    Fuzz_config.seed;
    prop = spec.name;
    k;
    regime = spec.regime;
    fault_bound;
    faults;
    m;
    net;
    quar;
    bug;
  }

let campaign ?bug ?degrade ?property ~trials ~seed () =
  let specs =
    match property with
    | None -> registry
    | Some name -> (
        match find_spec name with
        | Some spec -> [ spec ]
        | None -> invalid_arg ("Fuzz.campaign: unknown property " ^ name))
  in
  (* A requested degradation profile (the CLI's [--faults]) raises each
     property's generation floors toward it, clamped by the property's
     own ceilings — so properties pinned to pristine networks stay
     pristine and no axis exceeds what its invariant tolerates. A
     non-zero floor switches off the 50% pristine sampling, so every
     eligible trial is degraded at least that much. *)
  let specs =
    match degrade with
    | None -> specs
    | Some (d : Fuzz_config.degrade) ->
        List.map
          (fun s ->
            if s.degrade_max = Fuzz_config.no_degrade then s
            else
              let lo = s.degrade_min and hi = s.degrade_max in
              let lift lo hi want = max lo (min want hi) in
              let degrade_min =
                {
                  Fuzz_config.drop =
                    lift lo.Fuzz_config.drop hi.Fuzz_config.drop
                      d.Fuzz_config.drop;
                  delay = lift lo.delay hi.delay d.delay;
                  dup = lift lo.dup hi.dup d.dup;
                  corrupt = lift lo.corrupt hi.corrupt d.corrupt;
                  reorder = lift lo.reorder hi.reorder d.reorder;
                  crash = lift lo.crash hi.crash d.crash;
                  rt = lift lo.rt hi.rt d.rt;
                }
              in
              { s with degrade_min })
          specs
  in
  let g = Prng.of_int seed in
  let per_property = Hashtbl.create 8 in
  let per_regime = Hashtbl.create 2 in
  let tally tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)) in
  let rec loop trial passes =
    if trial > trials then (trial - 1, passes, None)
    else
      let cfg = gen_config g ~specs ~bug in
      tally per_property cfg.Fuzz_config.prop;
      tally per_regime cfg.Fuzz_config.regime;
      match run_config_outcome cfg with
      | Fuzz_props.Pass -> loop (trial + 1) (passes + 1)
      | Fuzz_props.Fail msg ->
          let shrunk, message, shrink_steps = shrink cfg msg in
          ( trial,
            passes,
            Some
              {
                original = cfg;
                original_message = msg;
                shrunk;
                message;
                shrink_steps;
                trial;
              } )
  in
  let trials_run, passes, failure = loop 1 0 in
  {
    trials_run;
    passes;
    per_property =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_property []
      |> List.sort compare;
    per_regime =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_regime []
      |> List.sort compare;
    failure;
  }

(* -------------------------- Self-check --------------------------- *)

let target_property = function
  | Fuzz_config.Accept_high_degree -> "vss-soundness"
  | Fuzz_config.Drop_gamma -> "coin-honest-trust"
  | Fuzz_config.Lagrange_expose -> "coin-unanimity"
  | Fuzz_config.No_retransmit -> "expose-degraded"

let self_check ?(trials = 500) ~seed bug =
  let property = target_property bug in
  let report = campaign ~bug ~property ~trials ~seed () in
  match report.failure with
  | None ->
      Error
        (Printf.sprintf
           "injected bug %S survived %d %s trials undetected — the fuzzer \
            is blind to it"
           (Fuzz_config.bug_name bug) report.trials_run property)
  | Some f ->
      if Fuzz_config.size f.shrunk > Fuzz_config.size f.original then
        Error
          (Printf.sprintf "shrinking grew the counterexample: %s -> %s"
             (Fuzz_config.to_string f.original)
             (Fuzz_config.to_string f.shrunk))
      else
        let line = Fuzz_config.to_string f.shrunk in
        (* The printed line alone must reproduce the same failure. *)
        match Fuzz_config.of_string line with
        | Error e -> Error ("replay line does not parse: " ^ e)
        | Ok replayed -> (
            match run_config_outcome replayed with
            | Fuzz_props.Pass ->
                Error
                  (Printf.sprintf "replay of %S unexpectedly passed" line)
            | Fuzz_props.Fail msg ->
                if String.equal msg f.message then Ok f
                else
                  Error
                    (Printf.sprintf
                       "replay of %S failed differently: %S instead of %S"
                       line msg f.message))

(* --------------------------- Printing ---------------------------- *)

let pp_failure fmt f =
  Format.fprintf fmt
    "@[<v>COUNTEREXAMPLE (trial %d, %d shrink step%s)@,\
     first seen : %s@,\
    \             %s@,\
     shrunk to  : %s@,\
    \             %s@,\
     replay with: dprbg fuzz --replay '%s'@]" f.trial f.shrink_steps
    (if f.shrink_steps = 1 then "" else "s")
    (Fuzz_config.to_string f.original)
    f.original_message
    (Fuzz_config.to_string f.shrunk)
    f.message
    (Fuzz_config.to_string f.shrunk)

let pp_report fmt r =
  Format.fprintf fmt "@[<v>%d trial%s, %d passed@," r.trials_run
    (if r.trials_run = 1 then "" else "s")
    r.passes;
  List.iter
    (fun (regime, count) ->
      Format.fprintf fmt "  regime %a: %d trial%s@," Fuzz_config.pp_regime
        regime count
        (if count = 1 then "" else "s"))
    r.per_regime;
  List.iter
    (fun (prop, count) -> Format.fprintf fmt "  %-18s %d@," prop count)
    r.per_property;
  match r.failure with
  | None -> Format.fprintf fmt "no counterexample found@]"
  | Some f -> Format.fprintf fmt "%a@]" pp_failure f
