(** The adversarial property fuzzer: QuickCheck-style search over the
    whole protocol stack.

    A {e campaign} draws random scenarios — field, fault-tolerance
    regime, dimensions, corrupted set, and a fresh per-round Byzantine
    misbehaviour schedule — and runs each through one of the registered
    executable paper invariants ({!Fuzz_props}). On the first violation
    it greedily {e shrinks} the scenario (smaller [t], fewer corruptions,
    smaller batch, smaller field) while the failure persists, and reports
    a one-line replay string that reproduces the shrunk counterexample
    deterministically.

    Self-check mode injects a known defect ({!Fuzz_config.bug}) and
    demands that the fuzzer finds, shrinks and replays it — testing the
    harness itself. *)

type prop_spec = {
  name : string;
  regime : Fuzz_config.regime;
  ks : int array;  (** field sizes the generator may draw *)
  ts : int array;  (** fault bounds (repetition = bias) *)
  max_m : int;  (** batch sizes drawn from [1, max_m] *)
  weight : int;  (** relative generation frequency *)
  degrade_min : Fuzz_config.degrade;
      (** per-axis floors when a degraded network is sampled; a non-zero
          floor (e.g. expose-degraded's drop rate) makes every trial of
          the property degraded *)
  degrade_max : Fuzz_config.degrade;
      (** per-axis generation ceilings; {!Fuzz_config.no_degrade} pins
          the property to pristine networks. Degraded trials always get
          a retransmit budget >= 1, so a bounded envelope keeps the
          invariants deterministic. *)
  max_quar : int;
      (** ceiling for the quarantine-threshold axis ([quar=] drawn from
          [\[3, max_quar\]]); 0 keeps the axis off — the property runs
          no active sentinel ledger *)
  doc : string;  (** one-line description of the invariant *)
}

val registry : prop_spec list
(** Every property the fuzzer knows, with its generation envelope. *)

val find_spec : string -> prop_spec option

type failure = {
  original : Fuzz_config.t;  (** the scenario that first failed *)
  original_message : string;
  shrunk : Fuzz_config.t;  (** the smallest still-failing scenario *)
  message : string;  (** the shrunk scenario's failure *)
  shrink_steps : int;  (** successful shrink steps taken *)
  trial : int;  (** 1-based index of the failing trial *)
}

type report = {
  trials_run : int;
  passes : int;
  per_property : (string * int) list;  (** trials attempted per property *)
  per_regime : (Fuzz_config.regime * int) list;
  failure : failure option;  (** the campaign stops at the first failure *)
}

val run_config : Fuzz_config.t -> (unit, string) result
(** Execute one scenario. Deterministic: the same configuration always
    yields the same result — this is what replays a printed
    counterexample line. *)

val shrink :
  Fuzz_config.t -> string -> Fuzz_config.t * string * int
(** [shrink cfg msg] greedily minimizes a failing scenario; returns the
    smallest configuration still failing, its message, and the number of
    successful shrink steps. Candidate field sizes are restricted to the
    property's own envelope so a shrunk counterexample never trades the
    reported defect for small-field soundness noise. *)

val campaign :
  ?bug:Fuzz_config.bug ->
  ?degrade:Fuzz_config.degrade ->
  ?property:string ->
  trials:int ->
  seed:int ->
  unit ->
  report
(** Run up to [trials] random scenarios derived from [seed], stopping at
    (and shrinking) the first failure. [property] restricts generation to
    one registered invariant; [bug] injects a defect into every scenario
    (self-check mode). [degrade] (the CLI's [--faults] profile) raises
    each property's degradation floors toward the given axes, clamped by
    the property's own ceilings: every trial of a property that admits
    degradation then runs at least that degraded, while pristine-pinned
    properties are unaffected.
    @raise Invalid_argument if [property] names no registered invariant. *)

val target_property : Fuzz_config.bug -> string
(** The invariant an injected bug is expected to violate. *)

val self_check : ?trials:int -> seed:int -> Fuzz_config.bug -> (failure, string) result
(** Inject [bug], fuzz its target property, and verify the harness
    end-to-end: a counterexample is found, shrinking only made it
    smaller, and the printed replay line reproduces the same failure
    message. [Error] explains which of those steps broke. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit
