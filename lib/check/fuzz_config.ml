type regime = Broadcast | Full

type bug = Accept_high_degree | Drop_gamma | Lagrange_expose | No_retransmit

type degrade = {
  drop : int;
  delay : int;
  dup : int;
  corrupt : int;
  reorder : int;
  crash : int;
  rt : int;
}

let no_degrade =
  { drop = 0; delay = 0; dup = 0; corrupt = 0; reorder = 0; crash = 0; rt = 0 }

type t = {
  seed : int;
  prop : string;
  k : int;
  regime : regime;
  fault_bound : int;
  faults : int;
  m : int;
  net : degrade;
  quar : int;
      (** quarantine threshold handed to the sentinel ledger by
          properties that run one; 0 means the property's default. *)
  bug : bug option;
}

let n_of c =
  match c.regime with
  | Broadcast -> (3 * c.fault_bound) + 1
  | Full -> (6 * c.fault_bound) + 1

let regime_name = function Broadcast -> "3t+1" | Full -> "6t+1"

let regime_of_name = function
  | "3t+1" -> Some Broadcast
  | "6t+1" -> Some Full
  | _ -> None

let pp_regime fmt r = Format.pp_print_string fmt (regime_name r)

let bug_name = function
  | Accept_high_degree -> "accept-high-degree"
  | Drop_gamma -> "drop-gamma"
  | Lagrange_expose -> "lagrange-expose"
  | No_retransmit -> "no-retransmit"

let bug_of_name = function
  | "accept-high-degree" -> Some Accept_high_degree
  | "drop-gamma" -> Some Drop_gamma
  | "lagrange-expose" -> Some Lagrange_expose
  | "no-retransmit" -> Some No_retransmit
  | _ -> None

let to_string c =
  let net =
    if c.net = no_degrade then ""
    else
      Printf.sprintf " drop=%d delay=%d dup=%d corrupt=%d reorder=%d crash=%d rt=%d"
        c.net.drop c.net.delay c.net.dup c.net.corrupt c.net.reorder
        c.net.crash c.net.rt
  in
  Printf.sprintf "prop=%s seed=%d k=%d regime=%s t=%d faults=%d m=%d%s%s%s"
    c.prop c.seed c.k (regime_name c.regime) c.fault_bound c.faults c.m net
    (if c.quar = 0 then "" else Printf.sprintf " quar=%d" c.quar)
    (match c.bug with None -> "" | Some b -> " bug=" ^ bug_name b)

let pp fmt c = Format.pp_print_string fmt (to_string c)

let of_string line =
  let ( let* ) = Result.bind in
  let* bindings =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
    |> List.fold_left
         (fun acc tok ->
           let* acc = acc in
           match String.index_opt tok '=' with
           | None -> Error (Printf.sprintf "malformed token %S" tok)
           | Some i ->
               let key = String.sub tok 0 i
               and v = String.sub tok (i + 1) (String.length tok - i - 1) in
               Ok ((key, v) :: acc))
         (Ok [])
  in
  let str key =
    match List.assoc_opt key bindings with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing key %s=" key)
  in
  let int key =
    let* v = str key in
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s=%s is not an integer" key v)
  in
  (* Degradation axes are optional — absent means 0, so lines from before
     the degraded-network extension still parse. *)
  let int_default key =
    match List.assoc_opt key bindings with
    | None -> Ok 0
    | Some v -> (
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "%s=%s is not an integer" key v))
  in
  let* prop = str "prop" in
  let* seed = int "seed" in
  let* k = int "k" in
  let* regime =
    let* v = str "regime" in
    match regime_of_name v with
    | Some r -> Ok r
    | None -> Error (Printf.sprintf "regime=%s (expected 3t+1 or 6t+1)" v)
  in
  let* fault_bound = int "t" in
  let* faults = int "faults" in
  let* m = int "m" in
  let* drop = int_default "drop" in
  let* delay = int_default "delay" in
  let* dup = int_default "dup" in
  let* corrupt = int_default "corrupt" in
  let* reorder = int_default "reorder" in
  let* crash = int_default "crash" in
  let* rt = int_default "rt" in
  let* quar = int_default "quar" in
  let* bug =
    match List.assoc_opt "bug" bindings with
    | None -> Ok None
    | Some v -> (
        match bug_of_name v with
        | Some b -> Ok (Some b)
        | None -> Error (Printf.sprintf "unknown bug=%s" v))
  in
  let net = { drop; delay; dup; corrupt; reorder; crash; rt } in
  let pct_ok x = x >= 0 && x <= 100 in
  if fault_bound < 1 then Error "t must be >= 1"
  else if faults < 0 || faults > fault_bound then
    Error "faults must be in [0, t]"
  else if m < 1 then Error "m must be >= 1"
  else if k < 3 || k > 61 then Error "k must be in [3, 61]"
  else if not (List.for_all pct_ok [ drop; delay; dup; corrupt; reorder ]) then
    Error "drop/delay/dup/corrupt/reorder must be in [0, 100]"
  else if crash < 0 || crash > faults then Error "crash must be in [0, faults]"
  else if rt < 0 || rt > 8 then Error "rt must be in [0, 8]"
  else if quar < 0 || quar > 64 then Error "quar must be in [0, 64]"
  else Ok { seed; prop; k; regime; fault_bound; faults; m; net; quar; bug }

(* A bare degradation profile — the CLI's [--faults] value. Same keys
   as the replay-line tokens, but comma-separated and standalone:
   "drop=20,delay=10,crash=1,rt=2". The crash count is validated only
   for non-negativity here; the per-scenario [crash <= faults] clamp
   happens at generation time where faults is known. *)
let degrade_of_string s =
  let ( let* ) = Result.bind in
  let* bindings =
    String.split_on_char ',' (String.trim s)
    |> List.filter (fun tok -> tok <> "")
    |> List.fold_left
         (fun acc tok ->
           let* acc = acc in
           let tok = String.trim tok in
           match String.index_opt tok '=' with
           | None -> Error (Printf.sprintf "malformed fault token %S" tok)
           | Some i ->
               let key = String.sub tok 0 i
               and v = String.sub tok (i + 1) (String.length tok - i - 1) in
               if not (List.mem key
                        [ "drop"; "delay"; "dup"; "corrupt"; "reorder";
                          "crash"; "rt" ])
               then Error (Printf.sprintf "unknown fault axis %S" key)
               else
                 let* n =
                   match int_of_string_opt v with
                   | Some n -> Ok n
                   | None ->
                       Error (Printf.sprintf "%s=%s is not an integer" key v)
                 in
                 Ok ((key, n) :: acc))
         (Ok [])
  in
  let axis key = Option.value ~default:0 (List.assoc_opt key bindings) in
  let d =
    {
      drop = axis "drop";
      delay = axis "delay";
      dup = axis "dup";
      corrupt = axis "corrupt";
      reorder = axis "reorder";
      crash = axis "crash";
      rt = axis "rt";
    }
  in
  let pct_ok x = x >= 0 && x <= 100 in
  if not (List.for_all pct_ok [ d.drop; d.delay; d.dup; d.corrupt; d.reorder ])
  then Error "drop/delay/dup/corrupt/reorder must be in [0, 100]"
  else if d.crash < 0 then Error "crash must be >= 0"
  else if d.rt < 0 || d.rt > 8 then Error "rt must be in [0, 8]"
  else Ok d

let degrade_weight d = d.drop + d.delay + d.dup + d.corrupt + d.reorder + d.crash + d.rt

let size c =
  (c.fault_bound * 1000) + (c.faults * 100) + (c.m * 10) + c.k
  + degrade_weight c.net + c.quar

(* The field ladder the generator draws from; shrinking steps down it. *)
let k_ladder = [ 8; 10; 12; 16; 24; 32; 61 ]

let shrink_candidates c =
  let clamp c' =
    (* Keep the invariants of_string enforces. Clamping only lowers
       fields, so candidates stay strictly smaller in [size]. *)
    let faults = min c'.faults c'.fault_bound in
    {
      c' with
      faults;
      m = max 1 c'.m;
      net = { c'.net with crash = min c'.net.crash faults };
    }
  in
  let ts =
    if c.fault_bound > 1 then
      List.sort_uniq compare [ 1; c.fault_bound / 2; c.fault_bound - 1 ]
      |> List.filter (fun t -> t >= 1 && t < c.fault_bound)
      |> List.map (fun t -> clamp { c with fault_bound = t })
    else []
  in
  let faults =
    if c.faults > 0 then
      List.sort_uniq compare [ 0; c.faults / 2; c.faults - 1 ]
      |> List.filter (fun f -> f >= 0 && f < c.faults)
      |> List.map (fun f -> clamp { c with faults = f })
    else []
  in
  let ms =
    if c.m > 1 then
      List.sort_uniq compare [ 1; c.m / 2; c.m - 1 ]
      |> List.filter (fun m -> m >= 1 && m < c.m)
      |> List.map (fun m -> { c with m })
    else []
  in
  let nets =
    (* First try dropping network degradation wholesale (a failure that
       survives is a protocol bug, not an omission artifact), then zero
       or halve individual axes. *)
    if c.net = no_degrade then []
    else
      let with_net net = { c with net } in
      let axis get set =
        let v = get c.net in
        (if v > 0 then [ with_net (set c.net 0) ] else [])
        @ if v > 1 then [ with_net (set c.net (v / 2)) ] else []
      in
      (with_net no_degrade :: axis (fun d -> d.drop) (fun d v -> { d with drop = v }))
      @ axis (fun d -> d.delay) (fun d v -> { d with delay = v })
      @ axis (fun d -> d.dup) (fun d v -> { d with dup = v })
      @ axis (fun d -> d.corrupt) (fun d v -> { d with corrupt = v })
      @ axis (fun d -> d.reorder) (fun d v -> { d with reorder = v })
      @ axis (fun d -> d.crash) (fun d v -> { d with crash = v })
      @ axis (fun d -> d.rt) (fun d v -> { d with rt = v })
  in
  let quars =
    (* 0 is the property default, so it is the terminal shrink. *)
    if c.quar > 0 then
      List.sort_uniq compare [ 0; c.quar / 2; c.quar - 1 ]
      |> List.filter (fun q -> q >= 0 && q < c.quar)
      |> List.map (fun quar -> { c with quar })
    else []
  in
  let ks =
    (* The smallest field still hosting n+1 distinct evaluation points. *)
    let k_min =
      let n = n_of c in
      let rec bits b = if 1 lsl b > n then b else bits (b + 1) in
      max 8 (bits 3)
    in
    List.filter (fun k -> k >= k_min && k < c.k) k_ladder
    |> List.map (fun k -> { c with k })
  in
  ts @ faults @ ms @ nets @ quars @ ks
