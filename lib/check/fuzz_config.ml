type regime = Broadcast | Full

type bug = Accept_high_degree | Drop_gamma | Lagrange_expose

type t = {
  seed : int;
  prop : string;
  k : int;
  regime : regime;
  fault_bound : int;
  faults : int;
  m : int;
  bug : bug option;
}

let n_of c =
  match c.regime with
  | Broadcast -> (3 * c.fault_bound) + 1
  | Full -> (6 * c.fault_bound) + 1

let regime_name = function Broadcast -> "3t+1" | Full -> "6t+1"

let regime_of_name = function
  | "3t+1" -> Some Broadcast
  | "6t+1" -> Some Full
  | _ -> None

let pp_regime fmt r = Format.pp_print_string fmt (regime_name r)

let bug_name = function
  | Accept_high_degree -> "accept-high-degree"
  | Drop_gamma -> "drop-gamma"
  | Lagrange_expose -> "lagrange-expose"

let bug_of_name = function
  | "accept-high-degree" -> Some Accept_high_degree
  | "drop-gamma" -> Some Drop_gamma
  | "lagrange-expose" -> Some Lagrange_expose
  | _ -> None

let to_string c =
  Printf.sprintf "prop=%s seed=%d k=%d regime=%s t=%d faults=%d m=%d%s" c.prop
    c.seed c.k (regime_name c.regime) c.fault_bound c.faults c.m
    (match c.bug with None -> "" | Some b -> " bug=" ^ bug_name b)

let pp fmt c = Format.pp_print_string fmt (to_string c)

let of_string line =
  let ( let* ) = Result.bind in
  let* bindings =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
    |> List.fold_left
         (fun acc tok ->
           let* acc = acc in
           match String.index_opt tok '=' with
           | None -> Error (Printf.sprintf "malformed token %S" tok)
           | Some i ->
               let key = String.sub tok 0 i
               and v = String.sub tok (i + 1) (String.length tok - i - 1) in
               Ok ((key, v) :: acc))
         (Ok [])
  in
  let str key =
    match List.assoc_opt key bindings with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing key %s=" key)
  in
  let int key =
    let* v = str key in
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s=%s is not an integer" key v)
  in
  let* prop = str "prop" in
  let* seed = int "seed" in
  let* k = int "k" in
  let* regime =
    let* v = str "regime" in
    match regime_of_name v with
    | Some r -> Ok r
    | None -> Error (Printf.sprintf "regime=%s (expected 3t+1 or 6t+1)" v)
  in
  let* fault_bound = int "t" in
  let* faults = int "faults" in
  let* m = int "m" in
  let* bug =
    match List.assoc_opt "bug" bindings with
    | None -> Ok None
    | Some v -> (
        match bug_of_name v with
        | Some b -> Ok (Some b)
        | None -> Error (Printf.sprintf "unknown bug=%s" v))
  in
  if fault_bound < 1 then Error "t must be >= 1"
  else if faults < 0 || faults > fault_bound then
    Error "faults must be in [0, t]"
  else if m < 1 then Error "m must be >= 1"
  else if k < 3 || k > 61 then Error "k must be in [3, 61]"
  else Ok { seed; prop; k; regime; fault_bound; faults; m; bug }

let size c = (c.fault_bound * 1000) + (c.faults * 100) + (c.m * 10) + c.k

(* The field ladder the generator draws from; shrinking steps down it. *)
let k_ladder = [ 8; 10; 12; 16; 24; 32; 61 ]

let shrink_candidates c =
  let clamp c' =
    (* Keep the invariants of_string enforces. *)
    { c' with faults = min c'.faults c'.fault_bound; m = max 1 c'.m }
  in
  let ts =
    if c.fault_bound > 1 then
      List.sort_uniq compare [ 1; c.fault_bound / 2; c.fault_bound - 1 ]
      |> List.filter (fun t -> t >= 1 && t < c.fault_bound)
      |> List.map (fun t -> clamp { c with fault_bound = t })
    else []
  in
  let faults =
    if c.faults > 0 then
      List.sort_uniq compare [ 0; c.faults / 2; c.faults - 1 ]
      |> List.filter (fun f -> f >= 0 && f < c.faults)
      |> List.map (fun f -> { c with faults = f })
    else []
  in
  let ms =
    if c.m > 1 then
      List.sort_uniq compare [ 1; c.m / 2; c.m - 1 ]
      |> List.filter (fun m -> m >= 1 && m < c.m)
      |> List.map (fun m -> { c with m })
    else []
  in
  let ks =
    (* The smallest field still hosting n+1 distinct evaluation points. *)
    let k_min =
      let n = n_of c in
      let rec bits b = if 1 lsl b > n then b else bits (b + 1) in
      max 8 (bits 3)
    in
    List.filter (fun k -> k >= k_min && k < c.k) k_ladder
    |> List.map (fun k -> { c with k })
  in
  ts @ faults @ ms @ ks
