(** Fuzzer scenarios: the replayable coordinates of one adversarial trial.

    A scenario pins down {e everything} a property execution depends on —
    the master PRNG seed, the field, the fault-tolerance regime, the
    protocol dimensions, the network degradation plan and (for harness
    self-checks) an injected bug — so that a failing trial is
    reproducible from its one-line textual form alone. {!to_string} and
    {!of_string} are exact inverses; the printed line is what
    `dprbg fuzz --replay` consumes. *)

type regime =
  | Broadcast  (** the Section-3 broadcast model, [n = 3t + 1] *)
  | Full  (** the Section-4 point-to-point model, [n = 6t + 1] *)

type bug =
  | Accept_high_degree
      (** The VSS verdict used by the soundness property accepts
          degree-[t + 1] dealings — Lemma 1/3 violated. *)
  | Drop_gamma
      (** One honest player's combined-share (gamma) vector is lost in
          Coin-Gen step 3 — an honest sender silently vanishes. *)
  | Lagrange_expose
      (** Coin-Expose interpolates through the first [t + 1] trusted
          shares instead of Berlekamp–Welch decoding — a single lying
          trusted sender corrupts the coin (the DESIGN §5 ablation). *)
  | No_retransmit
      (** The retransmit envelope is disabled (budget forced to 0), so
          omission faults the envelope should absorb reach the protocol
          drivers — degraded-network properties must catch this. *)

type degrade = {
  drop : int;  (** per-link message drop probability, percent *)
  delay : int;  (** per-link delay probability, percent *)
  dup : int;  (** per-link duplication probability, percent *)
  corrupt : int;  (** per-link payload bit-flip probability, percent *)
  reorder : int;  (** per-inbox reordering probability, percent *)
  crash : int;  (** players crashed mid-run, [<= faults] *)
  rt : int;  (** retransmit budget per protocol round, in [0, 8] *)
}
(** Network-degradation axes of a scenario. All probabilities are whole
    percents so that replay lines stay exact (no float printing). *)

val no_degrade : degrade
(** All axes zero: the pristine synchronous network. *)

val degrade_of_string : string -> (degrade, string) result
(** Parse a standalone degradation profile — the CLI's [--faults]
    value: comma-separated axis tokens, e.g. ["drop=20,delay=10,rt=2"].
    Absent axes default to 0. Probabilities must lie in [\[0, 100\]]
    and [rt] in [\[0, 8\]]; [crash] only needs to be non-negative here
    (the per-scenario [crash <= faults] clamp happens at generation
    time, where the corrupted-player count is known). *)

type t = {
  seed : int;  (** master seed; every random choice derives from it *)
  prop : string;  (** registered property name (see {!Fuzz.properties}) *)
  k : int;  (** field bits: the scenario runs over [GF(2^k)] *)
  regime : regime;
  fault_bound : int;  (** the tolerated [t]; [n] is implied by the regime *)
  faults : int;  (** actually corrupted players, [<= fault_bound] *)
  m : int;  (** batch size [M] *)
  net : degrade;  (** network degradation plan ({!no_degrade} = pristine) *)
  quar : int;
      (** quarantine threshold for properties that run an active sentinel
          ledger; 0 means the property's default (and is the terminal
          shrink). In [\[0, 64\]]. Printed as [quar=] only when non-zero,
          so pre-sentinel lines keep their shape. *)
  bug : bug option;  (** injected defect (self-check mode only) *)
}

val n_of : t -> int
(** [3t + 1] or [6t + 1] according to the regime. *)

val pp_regime : Format.formatter -> regime -> unit
val bug_name : bug -> string
val bug_of_name : string -> bug option

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** One replay line, e.g.
    ["prop=coin-unanimity seed=8812 k=32 regime=6t+1 t=2 faults=1 m=3"].
    The seven degradation tokens ([drop= delay= dup= corrupt= reorder=
    crash= rt=]) are printed only when {!field-net} differs from
    {!no_degrade}, so pristine lines keep their pre-extension shape. *)

val of_string : string -> (t, string) result
(** Parse a replay line. Inverse of {!to_string}; unknown keys, missing
    keys or inconsistent values are reported as [Error]. Degradation
    tokens are optional and default to 0; probabilities must lie in
    [\[0, 100\]], [crash] in [\[0, faults\]] and [rt] in [\[0, 8\]]. *)

val shrink_candidates : t -> t list
(** Strictly smaller scenarios to try when [t] fails, in the order the
    shrinker should try them: lower fault bound (which shrinks [n]),
    fewer corrupted players, smaller batch, milder network degradation
    (drop it wholesale, then zero or halve individual axes), smaller
    field. The master seed, property and injected bug are preserved — a
    candidate is a cheaper re-ask of the same question. *)

val size : t -> int
(** Shrinking metric: candidates from {!shrink_candidates} always have
    strictly smaller {!size}, so greedy shrinking terminates. *)
