(* The executable paper invariants the fuzzer searches for violations of,
   together with the randomized adversary schedules it drives them with.

   Every property derives all of its randomness from the scenario's seed
   (via disjoint [Prng.split] streams, in a fixed order), so a scenario
   line replays bit-for-bit. Properties are written against the bound
   stated in the paper: deterministic sub-checks use fields large enough
   that the allowed soundness error (M/p per trial) is negligible even
   over month-long soaks; statistical sub-checks state explicit
   confidence intervals. *)

type outcome = Pass | Fail of string

let failf fmt = Format.kasprintf (fun s -> Fail s) fmt

let check cond fmt =
  Format.kasprintf (fun s -> if cond then Pass else Fail s) fmt

let ( let* ) o k = match o with Pass -> k () | Fail _ as f -> f

let rec each f = function
  | [] -> Pass
  | x :: rest -> ( match f x with Pass -> each f rest | fail -> fail)

let range lo hi = List.init (hi - lo + 1) (fun i -> lo + i)

module Make (F : Field_intf.S) = struct
  module P = Poly.Make (F)
  module S = Shamir.Make (F)
  module V = Vss.Make (F)
  module BG = Bit_gen.Make (F)
  module CG = Coin_gen.Make (F)
  module CE = Coin_expose.Make (F)
  module C = Sealed_coin.Make (F)
  module PL = Pool.Make (F)
  module AT = Attacks.Make (F)

  let ideal_oracle seed =
    let g = Prng.of_int seed in
    fun () -> Metrics.without_counting (fun () -> F.random g)

  (* ---------------- Randomized adversary schedules ---------------- *)

  (* A syntactically arbitrary gradecast payload: random clique, random
     check "polynomials" (sometimes malformed: wrong length, members
     missing). Coin-Gen must survive any of it. *)
  let random_payload g ~n ~t =
    let clique = Prng.sample_distinct g (1 + Prng.int g n) n in
    let polys =
      List.filter_map
        (fun j ->
          if Prng.int g 8 = 0 then None (* malformed: member without poly *)
          else
            Some (j, Array.init (Prng.int g (t + 3)) (fun _ -> F.random g)))
        clique
    in
    { CG.clique; polys }

  (* A full Byzantine strategy with fresh per-round / per-destination
     misbehaviour schedules, materialized up-front from [g] so that the
     adversary is a fixed (replayable) function. Extends
     [Attacks.mixed_adversary] with explicit-matrix dealers, equivocating
     gradecast dealers, arbitrary followers and per-(phase, round, dst)
     BA schedules. *)
  let scheduled_adversary g ~n ~t ~m faults =
    let dealer i =
      if Transport.Faults.is_honest faults i then BG.Honest_dealer
      else
        match Prng.int g 6 with
        | 0 -> BG.Silent_dealer
        | 1 -> BG.Bad_degree (Prng.sample_distinct g (1 + Prng.int g m) m)
        | 2 ->
            BG.Inconsistent_to
              (Prng.sample_distinct g (1 + Prng.int g (min n (t + 1))) n)
        | 3 ->
            BG.Matrix
              (Array.init n (fun _ -> Array.init m (fun _ -> F.random g)))
        | _ -> BG.Honest_dealer
    in
    let gamma i =
      if Transport.Faults.is_honest faults i then CG.Honest_vec
      else
        match Prng.int g 3 with
        | 0 -> CG.Silent_vec
        | 1 ->
            let noise =
              Array.init n (fun _ ->
                  Array.init n (fun _ ->
                      if Prng.bool g then Some (F.random g) else None))
            in
            CG.Arbitrary_vec (fun dst -> noise.(dst))
        | _ -> CG.Honest_vec
    in
    let gradecast_dealer i =
      if Transport.Faults.is_honest faults i then Gradecast.Dealer_honest
      else
        match Prng.int g 3 with
        | 0 -> Gradecast.Dealer_silent
        | 1 ->
            let per_dst =
              Array.init n (fun _ ->
                  if Prng.bool g then Some (random_payload g ~n ~t) else None)
            in
            Gradecast.Dealer_equivocate (fun dst -> per_dst.(dst))
        | _ -> Gradecast.Dealer_honest
    in
    let gradecast_follower i =
      if Transport.Faults.is_honest faults i then Gradecast.Follower_honest
      else
        match Prng.int g 4 with
        | 0 -> Gradecast.Follower_silent
        | 1 -> Gradecast.Follower_fixed (random_payload g ~n ~t)
        | 2 ->
            (* Fresh lie per echo round and destination. *)
            let tbl =
              Array.init 2 (fun _ ->
                  Array.init n (fun _ ->
                      if Prng.bool g then Some (random_payload g ~n ~t)
                      else None))
            in
            Gradecast.Follower_arbitrary
              (fun ~round ~dst -> tbl.((round - 2) land 1).(dst mod n))
        | _ -> Gradecast.Follower_honest
    in
    let ba i =
      if Transport.Faults.is_honest faults i then Phase_king.Honest
      else
        match Prng.int g 4 with
        | 0 -> Phase_king.Silent
        | 1 -> Phase_king.Fixed (Prng.bool g)
        | 2 ->
            (* Per-(phase, round, destination) bit schedule. *)
            let tbl =
              Array.init (t + 2) (fun _ ->
                  Array.init 2 (fun _ ->
                      Array.init n (fun _ ->
                          if Prng.bool g then Some (Prng.bool g) else None)))
            in
            Phase_king.Arbitrary
              (fun ~phase ~round ~dst ->
                tbl.(abs phase mod (t + 2)).((round - 1) land 1).(dst mod n))
        | _ -> Phase_king.Honest
    in
    let strategies =
      Array.init n (fun i ->
          (dealer i, gamma i, gradecast_dealer i, gradecast_follower i, ba i))
    in
    {
      CG.as_dealer = (fun i -> match strategies.(i) with d, _, _, _, _ -> d);
      as_gamma = (fun i -> match strategies.(i) with _, gm, _, _, _ -> gm);
      as_gradecast_dealer =
        (fun i -> match strategies.(i) with _, _, gd, _, _ -> gd);
      as_gradecast_follower =
        (fun i -> match strategies.(i) with _, _, _, gf, _ -> gf);
      as_ba = (fun i -> match strategies.(i) with _, _, _, _, b -> b);
    }

  (* Exposure-time lies: silent, fixed garbage, or per-destination
     equivocation from every faulty player. *)
  let expose_schedule g ~n faults =
    let table =
      Array.init n (fun i ->
          if Transport.Faults.is_honest faults i then CE.Honest
          else
            match Prng.int g 4 with
            | 0 -> CE.Silent
            | 1 -> CE.Send (F.random g)
            | 2 ->
                let lies =
                  Array.init n (fun _ ->
                      if Prng.bool g then Some (F.random g) else None)
                in
                CE.Equivocate (fun dst -> lies.(dst mod n))
            | _ -> CE.Honest)
    in
    fun i -> table.(i)

  (* ------------------------- Properties --------------------------- *)

  let has_bug (cfg : Fuzz_config.t) b = cfg.bug = Some b

  (* Lemmas 1 and 3 as deterministic statements: honest dealings are
     accepted (also under [faults] silent players, by the robust rule);
     degree-(t+1) dealings are always rejected; the optimal targeted
     cheats are accepted on exactly their guessed coin set and rejected
     off it. *)
  let vss_soundness (cfg : Fuzz_config.t) =
    let t = cfg.fault_bound and m = cfg.m in
    let n = Fuzz_config.n_of cfg in
    let g = Prng.of_int cfg.seed in
    let faults = Transport.Faults.random g ~n ~t:cfg.faults in
    let silent i =
      if Transport.Faults.is_faulty faults i then V.Silent else V.Honest
    in
    let* () =
      let alpha = V.honest_dealing g ~n ~t ~secret:(F.random g) in
      let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
      let* () =
        check
          (V.run ~n ~t ~alpha ~beta ~r:(F.random g) () = V.Accept)
          "honest VSS dealing rejected"
      in
      check
        (V.run_robust ~player_behavior:silent ~n ~t ~alpha ~beta
           ~r:(F.random g) ()
        = V.Accept)
        "honest VSS dealing rejected by robust rule under %d silent players"
        cfg.faults
    in
    let* () =
      let secrets = Array.init m (fun _ -> F.random g) in
      let shares = V.batch_honest_dealing g ~n ~t ~secrets in
      let* () =
        check
          (V.run_batch ~n ~t ~shares ~r:(F.random g) () = V.Accept)
          "honest batch dealing rejected"
      in
      check
        (V.run_batch_robust ~player_behavior:silent ~n ~t ~shares
           ~r:(F.random g) ()
        = V.Accept)
        "honest batch dealing rejected by robust rule under %d silent players"
        cfg.faults
    in
    let* () =
      (* A degree-(t+1) numerator cannot be cancelled by a degree-<= t
         mask: rejection holds for every coin, not just w.h.p. *)
      let alpha = V.cheating_dealing g ~n ~t ~degree:(t + 1) in
      let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
      let verdict = V.run ~n ~t ~alpha ~beta ~r:(F.random g) () in
      let verdict =
        if has_bug cfg Fuzz_config.Accept_high_degree then V.Accept
        else verdict
      in
      check (verdict = V.Reject) "degree-%d dealing accepted (Lemma 1)" (t + 1)
    in
    let* () =
      let shares =
        V.batch_cheating_dealing g ~n ~t ~m ~bad:[ Prng.int g m ]
      in
      check
        (V.run_batch ~n ~t ~shares ~r:(F.random g) () = V.Reject)
        "batch with a degree-%d member accepted (Lemma 3)" (t + 1)
    in
    let* () =
      let guess = F.random_nonzero g in
      let alpha, beta = V.targeted_cheating_dealing g ~n ~t ~guess in
      let* () =
        check
          (V.run ~n ~t ~alpha ~beta ~r:guess () = V.Accept)
          "targeted cheat not accepted on its guessed coin"
      in
      each
        (fun _ ->
          let r = F.random g in
          if F.equal r guess then Pass
          else
            check
              (V.run ~n ~t ~alpha ~beta ~r () = V.Reject)
              "targeted cheat accepted off its guess: r=%s guess=%s"
              (F.to_string r) (F.to_string guess))
        (range 1 8)
    in
    let roots =
      Array.of_list
        (List.map
           (fun i -> F.of_int (i + 1))
           (Prng.sample_distinct g m (min 100_000 ((1 lsl min F.k_bits 20) - 1))))
    in
    let shares = V.batch_targeted_cheating_dealing g ~n ~t ~roots in
    let in_accept_set r =
      F.equal r F.zero
      || Array.exists (F.equal r) (Array.sub roots 0 (m - 1))
    in
    let* () =
      check
        (V.run_batch ~n ~t ~shares ~r:F.zero () = V.Accept)
        "batch targeted cheat not accepted at r=0"
    in
    let* () =
      if m < 2 then Pass
      else
        check
          (V.run_batch ~n ~t ~shares ~r:roots.(0) () = V.Accept)
          "batch targeted cheat not accepted on a root"
    in
    each
      (fun _ ->
        let r = F.random g in
        if in_accept_set r then Pass
        else
          check
            (V.run_batch ~n ~t ~shares ~r () = V.Reject)
            "batch targeted cheat accepted off its root set at r=%s"
            (F.to_string r))
      (range 1 8)

  (* Lemma 3's bound holds with equality: over a small field the optimal
     batch cheat must be accepted at a rate statistically consistent with
     exactly M/p. Trial count is sized so that both tails have
     probability < 1e-9 — a flagged deviation is a real bias. *)
  let vss_reject_rate (cfg : Fuzz_config.t) =
    let t = cfg.fault_bound and m = cfg.m in
    let n = Fuzz_config.n_of cfg in
    let g = Prng.of_int cfg.seed in
    let p = float_of_int (1 lsl cfg.k) in
    let trials =
      min 40_000 (int_of_float (ceil (25.0 *. p /. float_of_int m)))
    in
    let accepts = ref 0 in
    for _ = 1 to trials do
      let roots =
        Array.of_list
          (List.map
             (fun i -> F.of_int (i + 1))
             (Prng.sample_distinct g m ((1 lsl cfg.k) - 1)))
      in
      let shares = V.batch_targeted_cheating_dealing g ~n ~t ~roots in
      if V.run_batch ~n ~t ~shares ~r:(F.random g) () = V.Accept then
        incr accepts
    done;
    let expected = float_of_int trials *. float_of_int m /. p in
    let slack = (6.0 *. sqrt expected) +. 4.0 in
    let* () =
      check
        (float_of_int !accepts <= expected +. slack)
        "batch cheat accepted %d/%d times; expected %.1f (Lemma 3 bound \
         exceeded)"
        !accepts trials expected
    in
    check (!accepts >= 1)
      "batch cheat accepted 0/%d times; expected %.1f (optimal attack \
       under-performs: bound not met with equality)"
      trials expected

  (* Fig. 4 verdict logic: honest dealers are accepted by everyone (with
     the dealer's true combined polynomial), even under faulty gamma
     senders and inconsistent dealing to <= t victims; a high-degree
     sharing convinces nobody. *)
  let bitgen_verdicts (cfg : Fuzz_config.t) =
    let t = cfg.fault_bound and m = cfg.m in
    let n = Fuzz_config.n_of cfg in
    let g = Prng.of_int cfg.seed in
    let faults = Transport.Faults.random g ~n ~t:cfg.faults in
    let dealer = Prng.int g n in
    let run ?dealer_behavior ?gamma_behavior seed r =
      BG.run ?dealer_behavior ?gamma_behavior ~prng:(Prng.of_int seed) ~n ~t
        ~m ~dealer ~r ()
    in
    let* () =
      let r = F.random g in
      let views, matrix = run (Prng.bits g 30) r in
      match matrix with
      | None -> Fail "honest dealer produced no share matrix"
      | Some shares ->
          each
            (fun i ->
              match views.(i).BG.check_poly with
              | None -> failf "player %d rejected an honest dealer" i
              | Some f ->
                  let* () =
                    check
                      (Array.fold_left
                         (fun acc b -> if b then acc + 1 else acc)
                         0 views.(i).BG.support
                      >= n - t)
                      "player %d: honest support below n - t" i
                  in
                  each
                    (fun j ->
                      check
                        (F.equal
                           (P.eval f (S.eval_point j))
                           (V.combine ~r shares.(j)))
                        "player %d decoded a polynomial off the dealer's \
                         combined shares at point %d"
                        i j)
                    (range 0 (n - 1)))
            (range 0 (n - 1))
    in
    let* () =
      (* Faulty players garble or withhold their gammas; everyone still
         accepts the honest dealer (n - faults >= n - t supports). *)
      let behavior =
        Array.init n (fun i ->
            if Transport.Faults.is_honest faults i then BG.Honest_gamma
            else if Prng.bool g then BG.Silent_gamma
            else BG.Fixed_gamma (F.random g))
      in
      let views, _ =
        run ~gamma_behavior:(fun i -> behavior.(i)) (Prng.bits g 30)
          (F.random g)
      in
      each
        (fun i ->
          check
            (views.(i).BG.check_poly <> None)
            "player %d rejected an honest dealer under %d faulty gamma \
             senders"
            i cfg.faults)
        (Transport.Faults.honest faults)
    in
    let* () =
      let bad = Prng.sample_distinct g (1 + Prng.int g m) m in
      let views, _ =
        run ~dealer_behavior:(BG.Bad_degree bad) (Prng.bits g 30) (F.random g)
      in
      each
        (fun i ->
          check
            (views.(i).BG.check_poly = None)
            "player %d accepted a degree-%d dealing (Lemma 5)" i (t + 1))
        (range 0 (n - 1))
    in
    if cfg.faults = 0 then Pass
    else
      let victims = Prng.sample_distinct g cfg.faults n in
      let views, _ =
        run ~dealer_behavior:(BG.Inconsistent_to victims) (Prng.bits g 30)
          (F.random g)
      in
      each
        (fun i ->
          check
            (views.(i).BG.check_poly <> None)
            "player %d rejected a dealer inconsistent to only %d <= t players"
            i cfg.faults)
        (range 0 (n - 1))

  (* The honest path of Coin-Gen, exactly: full clique, everybody
     trusted, one BA iteration, two seed coins — and every coin exposes
     to its ground truth on all honest players even when the (generation
     -honest) faulty players lie during exposure. The [Drop_gamma] bug
     (one honest player's gamma vector lost) breaks the full-clique and
     full-trust claims. *)
  let coin_honest_trust (cfg : Fuzz_config.t) =
    let t = cfg.fault_bound and m = cfg.m in
    let n = Fuzz_config.n_of cfg in
    let g = Prng.of_int cfg.seed in
    let faults = Transport.Faults.random g ~n ~t:cfg.faults in
    let adversary =
      if has_bug cfg Fuzz_config.Drop_gamma then
        let victim = Prng.int g n in
        {
          CG.honest_adversary with
          CG.as_gamma =
            (fun i -> if i = victim then CG.Silent_vec else CG.Honest_vec);
        }
      else CG.honest_adversary
    in
    let oracle = ideal_oracle (Prng.bits g 30) in
    let expose = expose_schedule (Prng.split g) ~n faults in
    match
      CG.run ~adversary ~prng:(Prng.split g) ~oracle ~n ~t ~m ()
    with
    | None -> Fail "honest Coin-Gen run did not terminate"
    | Some batch ->
        let* () =
          check
            (batch.CG.dealers = List.init n Fun.id)
            "honest run: clique is not all n players (got %d)"
            (List.length batch.CG.dealers)
        in
        let* () =
          check
            (Array.for_all (Array.for_all Fun.id) batch.CG.trusted)
            "honest run: some player distrusts another"
        in
        let* () =
          check
            (batch.CG.ba_iterations = 1)
            "honest run took %d BA iterations" batch.CG.ba_iterations
        in
        let* () =
          check
            (batch.CG.seed_coins_consumed = 2)
            "honest run consumed %d seed coins" batch.CG.seed_coins_consumed
        in
        each
          (fun h ->
            let coin = CG.coin batch h in
            match C.ground_truth coin with
            | None -> failf "coin %d has no ground truth" h
            | Some truth ->
                let values = CE.run ~sender_behavior:expose coin in
                each
                  (fun i ->
                    match values.(i) with
                    | Some v when F.equal v truth -> Pass
                    | Some v ->
                        failf
                          "coin %d: honest player %d decoded %s, truth %s" h
                          i (F.to_string v) (F.to_string truth)
                    | None ->
                        failf "coin %d: honest player %d failed to decode" h
                          i)
                  (Transport.Faults.honest faults))
          (range 0 (m - 1))

  (* The headline theorem, under fire: whatever the (scheduled, mixed)
     adversary does, if Coin-Gen terminates then Lemma 7 holds and every
     exposed coin is decoded identically by all honest players, with
     faulty players lying during exposure too. The [Lagrange_expose] bug
     replaces the Berlekamp–Welch decoder with plain interpolation, which
     a single lying trusted sender defeats. *)
  let coin_unanimity (cfg : Fuzz_config.t) =
    let t = cfg.fault_bound and m = cfg.m in
    let n = Fuzz_config.n_of cfg in
    let g = Prng.of_int cfg.seed in
    let faults = Transport.Faults.random g ~n ~t:cfg.faults in
    let adversary = scheduled_adversary (Prng.split g) ~n ~t ~m faults in
    let oracle = ideal_oracle (Prng.bits g 30) in
    let expose = expose_schedule (Prng.split g) ~n faults in
    let expose_run =
      if has_bug cfg Fuzz_config.Lagrange_expose then CE.run_lagrange
      else CE.run
    in
    match CG.run ~adversary ~prng:(Prng.split g) ~oracle ~n ~t ~m () with
    | None -> Pass (* adversarial non-termination is allowed, prob <= (t/n)^64 *)
    | Some batch ->
        let honest = Transport.Faults.honest faults in
        let* () =
          check
            (List.length batch.CG.dealers >= n - (2 * t))
            "Lemma 7: clique has %d < n - 2t members"
            (List.length batch.CG.dealers)
        in
        let* () =
          let universally_trusted =
            List.filter
              (fun j ->
                List.mem j honest
                && List.for_all (fun i -> batch.CG.trusted.(i).(j)) honest)
              (List.init n Fun.id)
          in
          check
            (List.length universally_trusted >= (2 * t) + 1)
            "Lemma 7: only %d honest players universally trusted (< 2t + 1)"
            (List.length universally_trusted)
        in
        each
          (fun h ->
            let coin = CG.coin batch h in
            let values = expose_run ~sender_behavior:expose coin in
            match List.map (fun i -> (i, values.(i))) honest with
            | [] -> Pass
            | (i0, first) :: rest ->
                let* () =
                  check (first <> None)
                    "coin %d: honest player %d failed to decode" h i0
                in
                each
                  (fun (i, v) ->
                    match (v, first) with
                    | Some a, Some b when F.equal a b -> Pass
                    | Some a, Some b ->
                        failf
                          "coin %d: unanimity broken — player %d got %s, \
                           player %d got %s"
                          h i (F.to_string a) i0 (F.to_string b)
                    | _ ->
                        failf "coin %d: honest player %d failed to decode" h
                          i)
                  rest)
          (range 0 (m - 1))

  (* Lemma 8 / Theorem 2 accounting: the batch's own ledger must agree
     with the ambient Metrics counters — BA executions, grade-casts, and
     the exact round count 5 + iterations * 2(t + 1) (deal + gamma +
     3-round grade-cast + two phase-king rounds per phase). The faulty
     players vote against every proposal, so multiple iterations are
     exercised whenever a faulty leader is drawn. *)
  let coin_termination (cfg : Fuzz_config.t) =
    let t = cfg.fault_bound and m = cfg.m in
    let n = Fuzz_config.n_of cfg in
    let g = Prng.of_int cfg.seed in
    let faults = Transport.Faults.random g ~n ~t:cfg.faults in
    let adversary = AT.worst_case_ba_blocker faults in
    let oracle = ideal_oracle (Prng.bits g 30) in
    let result, snap =
      Metrics.with_counting (fun () ->
          CG.run ~adversary ~prng:(Prng.split g) ~oracle ~n ~t ~m ())
    in
    match result with
    | None -> Fail "Coin-Gen failed to terminate against a BA blocker"
    | Some batch ->
        let iters = batch.CG.ba_iterations in
        let* () =
          check
            (iters >= 1 && iters <= 64)
            "BA iteration count %d outside [1, 64]" iters
        in
        let* () =
          check
            (batch.CG.seed_coins_consumed = 1 + iters)
            "consumed %d seed coins for %d BA iterations"
            batch.CG.seed_coins_consumed iters
        in
        let* () =
          check
            (snap.Metrics.ba_runs = iters)
            "Metrics saw %d BA runs, batch reports %d iterations"
            snap.Metrics.ba_runs iters
        in
        let* () =
          check
            (snap.Metrics.gradecasts = n)
            "Metrics saw %d grade-casts, expected n = %d"
            snap.Metrics.gradecasts n
        in
        let expected_rounds = 5 + (iters * 2 * (t + 1)) in
        let* () =
          check
            (snap.Metrics.rounds = expected_rounds)
            "Metrics saw %d rounds, expected 5 + %d * 2(t+1) = %d"
            snap.Metrics.rounds iters expected_rounds
        in
        check
          (snap.Metrics.messages > 0 && snap.Metrics.interpolations > 0)
          "a full Coin-Gen run cost no messages or interpolations"

  (* Necessary conditions for unpredictability: coins of one batch are
     pairwise distinct; re-running with fresh player randomness (same
     seed-coin oracle, same adversary structure) changes every coin; and
     no corrupted player's share leaks the coin value outright. These
     cannot prove Shamir secrecy, but any failure is a real entropy bug
     (constant coins, replayed randomness, evaluation at the secret
     point). Field size >= 32 bits makes chance collisions negligible. *)
  let coin_freshness (cfg : Fuzz_config.t) =
    let t = cfg.fault_bound and m = cfg.m in
    let n = Fuzz_config.n_of cfg in
    let g = Prng.of_int cfg.seed in
    let faults = Transport.Faults.random g ~n ~t:cfg.faults in
    let oracle_seed = Prng.bits g 30 in
    let g1 = Prng.split g and g2 = Prng.split g in
    let run prng =
      CG.run ~prng ~oracle:(ideal_oracle oracle_seed) ~n ~t ~m ()
    in
    match (run g1, run g2) with
    | None, _ | _, None -> Fail "honest Coin-Gen run did not terminate"
    | Some b1, Some b2 ->
        let value batch h =
          match (CE.run (CG.coin batch h)).(0) with
          | Some v -> v
          | None -> F.zero
        in
        let v1 = Array.init m (value b1) and v2 = Array.init m (value b2) in
        let* () =
          each
            (fun h ->
              check
                (not (F.equal v1.(h) v2.(h)))
                "coin %d identical across independent runs: %s (stale \
                 randomness?)"
                h
                (F.to_string v1.(h)))
            (range 0 (m - 1))
        in
        let* () =
          each
            (fun h ->
              each
                (fun h' ->
                  check
                    (not (F.equal v1.(h) v1.(h')))
                    "coins %d and %d of one batch collide on %s" h h'
                    (F.to_string v1.(h)))
                (range (h + 1) (m - 1)))
            (range 0 (m - 2))
        in
        each
          (fun h ->
            each
              (fun i ->
                check
                  (not (F.equal b1.CG.shares.(i).(h) v1.(h)))
                  "corrupted player %d's share of coin %d equals the coin \
                   value"
                  i h)
              (Transport.Faults.faulty faults))
          (range 0 (m - 1))

  (* The bootstrap loop stays alive and accounted-for under a mobile
     adversary: a fresh scheduled corruption set per refill epoch, lying
     at exposure time too, must never starve the pool, never break
     unanimity, and keep the ledger consistent. *)
  let pool_liveness (cfg : Fuzz_config.t) =
    let t = cfg.fault_bound and m = cfg.m in
    let n = Fuzz_config.n_of cfg in
    let g = Prng.of_int cfg.seed in
    let adv_seed = Prng.bits g 30 and expose_seed = Prng.bits g 30 in
    let batch_size = max 8 (2 * m) in
    let fault_set epoch =
      let ge = Prng.of_int (adv_seed + (7919 * epoch)) in
      Transport.Faults.random ge ~n ~t:cfg.faults
    in
    let adversary epoch =
      let ge = Prng.of_int (adv_seed + (7919 * epoch) + 1) in
      (* The pool's internal Coin-Gen runs at [batch_size] coins per
         refill, not at the property's [m]. The proposal grade-cast is
         kept honest: a faulty leader equivocating there forces extra BA
         iterations, each burning a seed coin beyond the fixed
         [refill_threshold] reserve — that worst case is Lemma 8
         territory, exercised by coin-termination, not a liveness bug.
         Every other surface (dealing, gammas, grade-cast followers, BA
         votes, exposure) stays adversarial. *)
      let adv = scheduled_adversary ge ~n ~t ~m:batch_size (fault_set epoch) in
      { adv with CG.as_gradecast_dealer = (fun _ -> Gradecast.Dealer_honest) }
    in
    let expose_behavior epoch =
      let ge = Prng.of_int (expose_seed + (104729 * epoch)) in
      expose_schedule ge ~n (fault_set epoch)
    in
    let kary_draws = 8 + (2 * m) in
    match
      let pool =
        PL.create ~adversary
          ~expose_behavior:(fun epoch i -> (expose_behavior epoch) i)
          ~prng:(Prng.split g) ~n ~t ~batch_size ~refill_threshold:2
          ~initial_seed:4 ()
      in
      for _ = 1 to kary_draws do
        ignore (PL.draw_kary pool)
      done;
      for _ = 1 to 10 do
        ignore (PL.draw_bit pool)
      done;
      (pool, PL.stats pool)
    with
    | exception PL.Starved msg -> failf "pool starved: %s" msg
    | pool, s ->
        let* () =
          check (s.PL.refills >= 1) "no refill over %d draws" kary_draws
        in
        let* () =
          check
            (s.PL.unanimity_failures = 0)
            "%d unanimity failures during pool exposures"
            s.PL.unanimity_failures
        in
        let* () =
          check
            (s.PL.generated_coins = s.PL.refills * batch_size)
            "%d coins generated over %d refills of %d" s.PL.generated_coins
            s.PL.refills batch_size
        in
        let* () =
          check
            (s.PL.seed_coins_consumed >= 2 * s.PL.refills)
            "%d seed coins consumed over %d refills" s.PL.seed_coins_consumed
            s.PL.refills
        in
        let* () =
          check (s.PL.dealer_coins = 4)
            "dealer supplied %d coins after setup (expected 4)"
            s.PL.dealer_coins
        in
        check
          (PL.available pool > 0)
          "pool left empty after %d draws" kary_draws

  (* Exposure under a degraded network (DESIGN §11): every honest player
     decodes each dealer coin to its ground truth even while the ambient
     plan drops, delays, duplicates and corrupts exposure messages,
     faulty players lie and crashed faulty players fall silent — because
     the bounded retransmit envelope absorbs every omission within its
     budget, leaving at most [faults <= t] bad senders for the
     Berlekamp-Welch decoder. With the envelope ablated
     ([No_retransmit] forces a zero budget) the drops land, the decoder
     runs short of agreeing shares, and unanimity with ground truth
     breaks — which is how the fuzzer proves the envelope is
     load-bearing. *)
  let expose_degraded (cfg : Fuzz_config.t) =
    let t = cfg.fault_bound in
    let n = Fuzz_config.n_of cfg in
    let g = Prng.of_int cfg.seed in
    let faults = Transport.Faults.random g ~n ~t:cfg.faults in
    let expose = expose_schedule (Prng.split g) ~n faults in
    each
      (fun h ->
        let coin = C.dealer_coin g ~n ~t in
        match C.ground_truth coin with
        | None -> failf "dealer coin %d has no ground truth" h
        | Some truth ->
            let values = CE.run ~sender_behavior:expose coin in
            each
              (fun i ->
                match values.(i) with
                | Some v when F.equal v truth -> Pass
                | Some v ->
                    failf "coin %d: honest player %d decoded %s, truth %s" h
                      i (F.to_string v) (F.to_string truth)
                | None ->
                    failf "coin %d: honest player %d failed to decode" h i)
              (Transport.Faults.honest faults))
      (range 0 (cfg.m - 1))

  (* Crash-recovery (DESIGN §11): a snapshot taken mid-soak restores to
     an equivalent pool — same stock, same ledger, no fresh dealer
     setup — that keeps serving draws under the same (possibly
     degraded) network; and a single random bit flip anywhere in the
     snapshot is rejected as [Corrupt_snapshot], never accepted and
     never surfaced as a raw decode error. *)
  let pool_recovery (cfg : Fuzz_config.t) =
    let t = cfg.fault_bound and m = cfg.m in
    let n = Fuzz_config.n_of cfg in
    let g = Prng.of_int cfg.seed in
    let batch_size = max 8 (2 * m) in
    let draws = 6 + (2 * m) in
    match
      let pool =
        PL.create ~prng:(Prng.split g) ~n ~t ~batch_size ~refill_threshold:2
          ~initial_seed:4 ()
      in
      for _ = 1 to draws do
        ignore (PL.draw_kary pool)
      done;
      (pool, PL.save pool, PL.stats pool)
    with
    | exception PL.Starved msg -> failf "pool starved before snapshot: %s" msg
    | pool, saved, before -> (
        let* () =
          let corrupted = Bytes.copy saved in
          let pos = Prng.int g (Bytes.length saved) in
          let bit = Prng.int g 8 in
          Bytes.set_uint8 corrupted pos
            (Bytes.get_uint8 corrupted pos lxor (1 lsl bit));
          match
            PL.load ~prng:(Prng.of_int 1) ~batch_size ~refill_threshold:2
              corrupted
          with
          | (_ : PL.t) ->
              failf "corrupted snapshot (byte %d bit %d) accepted" pos bit
          | exception PL.Corrupt_snapshot _ -> Pass
          | exception e ->
              failf "corrupted snapshot raised %s, not Corrupt_snapshot"
                (Printexc.to_string e)
        in
        match
          PL.load ~prng:(Prng.split g) ~batch_size ~refill_threshold:2 saved
        with
        | exception e ->
            failf "intact snapshot rejected: %s" (Printexc.to_string e)
        | q -> (
            let* () =
              check
                (PL.available q = PL.available pool)
                "restored pool holds %d coins, original held %d"
                (PL.available q) (PL.available pool)
            in
            let* () =
              check (PL.stats q = before) "restored ledger differs from saved"
            in
            match
              for _ = 1 to draws do
                ignore (PL.draw_kary q)
              done
            with
            | exception PL.Starved msg -> failf "restored pool starved: %s" msg
            | () ->
                let s = PL.stats q in
                let* () =
                  check (s.PL.dealer_coins = 4)
                    "restored pool consulted the dealer (%d coins, expected \
                     4)"
                    s.PL.dealer_coins
                in
                let* () =
                  check
                    (s.PL.coins_exposed = before.PL.coins_exposed + draws)
                    "restored pool served %d draws, expected %d"
                    (s.PL.coins_exposed - before.PL.coins_exposed)
                    draws
                in
                check
                  (s.PL.unanimity_failures = before.PL.unanimity_failures)
                  "%d unanimity failures after restore"
                  s.PL.unanimity_failures))

  (* The sentinel's twin obligations (DESIGN §14), fuzzed: (a) a passive
     ledger is pure observation — the draw stream and stats of a
     ledger-free pool and a passive-ledger pool are bit-identical under
     the same (replayed) degraded network; (b) with an active ledger,
     every persistently lying faulty player is quarantined while no
     honest player ever is, however lossy the links — the t+1
     concurrence rule plus the bounded retransmit envelope mean link
     faults cannot frame an honest sender. Safe mode must stay quiet:
     evidence against <= t real liars never implies > t faults. *)
  let no_honest_quarantine (cfg : Fuzz_config.t) =
    let t = cfg.fault_bound and m = cfg.m in
    let n = Fuzz_config.n_of cfg in
    let g = Prng.of_int cfg.seed in
    let faults = Transport.Faults.random g ~n ~t:cfg.faults in
    let faulty = Transport.Faults.faulty faults in
    (* Every faulty player runs the same detectable lie at every epoch:
       persistence is what separates a corrupted player from line
       noise. *)
    let lie_table =
      Array.init n (fun i ->
          if Transport.Faults.is_honest faults i then CE.Honest
          else
            match Prng.int g 3 with
            | 0 -> CE.Silent
            | 1 -> CE.Send (F.random g)
            | _ ->
                let lies = Array.init n (fun _ -> F.random g) in
                CE.Equivocate (fun dst -> Some lies.(dst mod n)))
    in
    let threshold = if cfg.quar > 0 then cfg.quar else 6 in
    let config = Sentinel.active ~threshold () in
    (* Enough exposures for the weakest evidence stream (Silent, weight
       1, first [link_slack] observations forgiven) to cross any
       threshold the generator picks. *)
    let kary_draws = threshold + config.Sentinel.link_slack + 4 + (2 * m) in
    let pool_seed = Prng.bits g 30 in
    (* Each comparison run replays the identical degraded network: a
       fresh plan with the same seed, installed over the ambient one the
       campaign set up. *)
    let with_fresh_plan f =
      let d = cfg.net in
      if d = Fuzz_config.no_degrade then f ()
      else
        let pct x = float_of_int x /. 100.0 in
        Transport.with_plan
          (Transport.Plan.make ~drop:(pct d.drop) ~delay:(pct d.delay)
             ~duplicate:(pct d.dup) ~corrupt:(pct d.corrupt)
             ~reorder:(pct d.reorder) ~retransmits:(max 1 d.rt)
             ~seed:(cfg.seed lxor 0x3ac5f1b9) ())
          f
    in
    let run_pool sentinel =
      with_fresh_plan @@ fun () ->
      let pool =
        PL.create ~sentinel
          ~expose_behavior:(fun _epoch i -> lie_table.(i))
          ~prng:(Prng.of_int pool_seed) ~n ~t ~batch_size:(max 8 (2 * m))
          ~refill_threshold:3 ~initial_seed:6 ()
      in
      let values = List.init kary_draws (fun _ -> PL.draw_kary pool) in
      (values, PL.stats pool, pool)
    in
    match
      let bare = run_pool None in
      let passive = run_pool (Some Sentinel.passive) in
      let active = run_pool (Some config) in
      (bare, passive, active)
    with
    | exception PL.Starved msg -> failf "pool starved: %s" msg
    | exception PL.Safe_mode msg ->
        failf "safe mode engaged with only %d <= t faults: %s" cfg.faults msg
    | (v0, s0, _), (v1, s1, _), (_, _, pool) -> (
        let* () =
          check
            (List.for_all2 F.equal v0 v1)
            "passive ledger changed the draw stream"
        in
        let* () =
          check (s0 = s1) "passive ledger changed the pool stats"
        in
        match PL.ledger pool with
        | None -> Fail "active pool has no ledger"
        | Some ledger ->
            let quarantined = Sentinel.Ledger.quarantine_set ledger in
            let* () =
              each
                (fun p ->
                  check (List.mem p faulty)
                    "honest player %d quarantined (score %d, threshold %d)" p
                    (Sentinel.Ledger.score ledger ~player:p)
                    threshold)
                quarantined
            in
            each
              (fun p ->
                check (List.mem p quarantined)
                  "persistent liar %d not quarantined after %d exposures \
                   (score %d < threshold %d)"
                  p kary_draws
                  (Sentinel.Ledger.score ledger ~player:p)
                  threshold)
              faulty)

  let run (cfg : Fuzz_config.t) =
    match cfg.prop with
    | "vss-soundness" -> vss_soundness cfg
    | "vss-reject-rate" -> vss_reject_rate cfg
    | "bitgen-verdicts" -> bitgen_verdicts cfg
    | "coin-honest-trust" -> coin_honest_trust cfg
    | "coin-unanimity" -> coin_unanimity cfg
    | "coin-termination" -> coin_termination cfg
    | "coin-freshness" -> coin_freshness cfg
    | "pool-liveness" -> pool_liveness cfg
    | "expose-degraded" -> expose_degraded cfg
    | "pool-recovery" -> pool_recovery cfg
    | "no-honest-quarantine" -> no_honest_quarantine cfg
    | other -> failf "unknown property %S" other
end
