module Make (F : Field_intf.S) = struct
  module CG = Coin_gen.Make (F)
  module V = Vss.Make (F)

  let unanimity_attack_matrix g ~n ~t ~m =
    Metrics.without_counting (fun () ->
        (* Distinct non-zero root guesses; the acceptance set is
           {0} ∪ (first m-1 of them) — see
           Vss.batch_targeted_cheating_dealing. *)
        let space = min ((1 lsl min F.k_bits 20) - 1) 100_000 in
        let roots =
          Array.of_list
            (List.map
               (fun i -> F.of_int (i + 1))
               (Prng.sample_distinct g m space))
        in
        V.batch_targeted_cheating_dealing g ~n ~t ~roots)

  let mixed_adversary g ~n ~m faults =
    let dealer i =
      if Transport.Faults.is_honest faults i then CG.BG.Honest_dealer
      else
        match Prng.int g 4 with
        | 0 -> CG.BG.Silent_dealer
        | 1 -> CG.BG.Bad_degree [ Prng.int g m ]
        | 2 -> CG.BG.Inconsistent_to (Prng.sample_distinct g 2 n)
        | _ -> CG.BG.Honest_dealer
    in
    let gamma i =
      if Transport.Faults.is_honest faults i then CG.Honest_vec
      else
        match Prng.int g 3 with
        | 0 -> CG.Silent_vec
        | 1 ->
            let noise =
              Array.init n (fun _ ->
                  Array.init n (fun _ ->
                      if Prng.bool g then Some (F.random g) else None))
            in
            CG.Arbitrary_vec (fun dst -> noise.(dst))
        | _ -> CG.Honest_vec
    in
    let gradecast_dealer i =
      if Transport.Faults.is_honest faults i then Gradecast.Dealer_honest
      else
        match Prng.int g 3 with
        | 0 -> Gradecast.Dealer_silent
        | 1 ->
            let bogus = { CG.clique = [ 0; 1 ]; polys = [] } in
            Gradecast.Dealer_equivocate
              (fun dst -> if dst mod 2 = 0 then Some bogus else None)
        | _ -> Gradecast.Dealer_honest
    in
    let gradecast_follower i =
      if Transport.Faults.is_honest faults i then Gradecast.Follower_honest
      else if Prng.bool g then Gradecast.Follower_silent
      else Gradecast.Follower_honest
    in
    let ba i =
      if Transport.Faults.is_honest faults i then Phase_king.Honest
      else
        match Prng.int g 3 with
        | 0 -> Phase_king.Silent
        | 1 -> Phase_king.Fixed (Prng.bool g)
        | _ -> Phase_king.Honest
    in
    (* Materialize every player's strategy now so the adversary is a
       fixed (pure) strategy rather than fresh randomness per query. *)
    let strategies =
      Array.init n (fun i ->
          (dealer i, gamma i, gradecast_dealer i, gradecast_follower i, ba i))
    in
    let pick f i =
      let d, gm, gd, gf, b = strategies.(i) in
      f (d, gm, gd, gf, b)
    in
    {
      CG.as_dealer = pick (fun (d, _, _, _, _) -> d);
      as_gamma = pick (fun (_, gm, _, _, _) -> gm);
      as_gradecast_dealer = pick (fun (_, _, gd, _, _) -> gd);
      as_gradecast_follower = pick (fun (_, _, _, gf, _) -> gf);
      as_ba = pick (fun (_, _, _, _, b) -> b);
    }

  let worst_case_ba_blocker faults =
    CG.faulty_with ~as_dealer:CG.BG.Honest_dealer ~as_gamma:CG.Honest_vec
      ~as_gradecast_dealer:Gradecast.Dealer_honest
      ~as_gradecast_follower:Gradecast.Follower_honest
      ~as_ba:(Phase_king.Fixed false) faults
end
