(** A library of Byzantine strategies.

    Soundness claims are only as strong as the attacks they are measured
    against, so the adversaries used by the test-suite and the
    experiment harness are first-class citizens here rather than ad-hoc
    test code. Two kinds:

    {ul
    {- {b optimal attacks} that meet the paper's probability bounds with
       equality (the Lemma-1/Lemma-3 cheaters live in {!Vss.Make}; the
       Bit-Gen port for the unanimity bound lives here);}
    {- {b randomized mixed strategies} exercising every sub-protocol at
       once, for property tests and the Lemma-7/8 experiments.}} *)

module Make (F : Field_intf.S) : sig
  module CG : module type of Coin_gen.Make (F)

  val unanimity_attack_matrix :
    Prng.t -> n:int -> t:int -> m:int -> F.t array array
  (** The E14 dealing: [m] sharings of degree [t + 1] whose Horner
      combination collapses to degree [t] exactly when the check coin
      lands in a prescribed [m]-element set — a faulty dealer playing
      this slips into the clique with probability [m/p] and poisons the
      batch's coins (the mechanism behind the [M n 2^-k] unanimity
      bound). Construction is attacker bookkeeping: uncounted. *)

  val mixed_adversary :
    Prng.t -> n:int -> m:int -> Transport.Faults.t -> CG.adversary
  (** A randomized combination of misbehaviours for every faulty player:
      bad-degree / inconsistent / silent dealing, silent or garbage
      gamma vectors, silent or equivocating grade-casts, and hostile BA
      votes. Honest players map to the honest behaviours. The random
      choices are drawn from the given generator at construction time,
      so the resulting adversary is a pure strategy. *)

  val worst_case_ba_blocker : Transport.Faults.t -> CG.adversary
  (** Faulty players behave honestly in the sharing phases but vote
      every agreement down — the Lemma-8 worst case for termination. *)
end
