module Make (F : Field_intf.S) = struct
  module P = Poly.Make (F)
  module S = Shamir.Make (F)
  module V = Vss.Make (F)
  module BW = Berlekamp_welch.Make (F)
  module Codec = Wire.Codec (F)

  type dealer_behavior =
    | Honest_dealer
    | Honest_zero_dealer
    | Silent_dealer
    | Bad_degree of int list
    | Inconsistent_to of int list
    | Matrix of F.t array array

  type gamma_behavior =
    | Honest_gamma
    | Silent_gamma
    | Fixed_gamma of F.t
    | Gamma_per_dst of (int -> F.t option)

  type player_view = {
    received : F.t array option;
    check_poly : P.t option;
    support : bool array;
    gammas : F.t option array;
  }

  (* The dealer's share matrix: shares.(i).(h) is player i's share of
     secret h. *)
  let deal_matrix behavior g ~n ~t ~m =
    let honest_poly () = S.share_poly g ~t ~secret:(F.random g) in
    let zero_poly () = S.share_poly g ~t ~secret:F.zero in
    match behavior with
    | Silent_dealer -> None
    | Matrix matrix ->
        if
          Array.length matrix <> n
          || Array.exists (fun row -> Array.length row <> m) matrix
        then invalid_arg "Bit_gen: explicit matrix has wrong dimensions";
        Some matrix
    | Honest_dealer | Honest_zero_dealer | Bad_degree _ | Inconsistent_to _ ->
        let polys =
          Array.init m (fun h ->
              match behavior with
              | Bad_degree bad when List.mem h bad ->
                  P.add (honest_poly ())
                    (P.monomial (F.random_nonzero g) (t + 1))
              | Honest_zero_dealer -> zero_poly ()
              | Honest_dealer | Bad_degree _ | Inconsistent_to _ ->
                  honest_poly ()
              | Silent_dealer | Matrix _ -> assert false)
        in
        let matrix =
          Array.init n (fun i ->
              Array.init m (fun h -> P.eval polys.(h) (S.eval_point i)))
        in
        (match behavior with
        | Inconsistent_to victims ->
            List.iter
              (fun i ->
                if i < 0 || i >= n then
                  invalid_arg "Bit_gen: victim id out of range";
                matrix.(i) <- Array.init m (fun _ -> F.random g))
              victims
        | Honest_dealer | Honest_zero_dealer | Bad_degree _ | Silent_dealer
        | Matrix _ -> ());
        Some matrix

  (* Fig. 4 step 5: decode F through the gammas with >= n - t support. *)
  let decode_check ~n ~t gammas =
    let points =
      List.filter_map
        (fun k -> Option.map (fun v -> (S.eval_point k, v)) gammas.(k))
        (List.init n Fun.id)
    in
    let m_pts = List.length points in
    if m_pts < n - t then (None, Array.make n false)
    else
      let e = (m_pts - t - 1) / 2 in
      match BW.decode_with_support ~max_degree:t ~max_errors:e points with
      | Some (f, support) when List.length support >= n - t ->
          let in_support =
            Array.init n (fun k ->
                match gammas.(k) with
                | Some v -> F.equal (P.eval f (S.eval_point k)) v
                | None -> false)
          in
          (Some f, in_support)
      | Some _ | None -> (None, Array.make n false)

  let run ?(dealer_behavior = Honest_dealer)
      ?(gamma_behavior = fun _ -> Honest_gamma) ~prng ~n ~t ~m ~dealer ~r () =
    if n < (3 * t) + 1 then invalid_arg "Bit_gen.run: requires n >= 3t+1";
    if dealer < 0 || dealer >= n then invalid_arg "Bit_gen.run: bad dealer id";
    if m < 1 then invalid_arg "Bit_gen.run: m must be positive";
    Trace.span Trace.Protocol "bit-gen" @@ fun () ->
    (* Round 1: dealing. One vector message of m elements per player. *)
    let matrix = deal_matrix dealer_behavior prng ~n ~t ~m in
    let share_net =
      Transport.create
        ~codec:(Codec.encode_elt_array, Codec.decode_elt_array)
        ~n
        ~byte_size:(fun v -> Codec.elt_array_size (Array.length v))
        ()
    in
    let inbox =
      Trace.span Trace.Phase "bit-gen.deal" @@ fun () ->
      Transport.exchange share_net ~send:(fun () ->
          match matrix with
          | None -> ()
          | Some matrix ->
              Transport.send_to_all share_net ~src:dealer (fun dst -> matrix.(dst)))
    in
    let received =
      Array.init n (fun i ->
          match List.assoc_opt dealer inbox.(i) with
          | Some v when Array.length v = m -> Some v
          | Some _ | None -> None)
    in
    (* (The check coin r was exposed between the rounds, by the caller.) *)
    (* Round 2: everyone announces its combined share gamma_i. *)
    let gamma_net =
      Transport.create
        ~codec:(Codec.encode_elt, Codec.decode_elt)
        ~n
        ~byte_size:(fun _ -> F.byte_size)
        ()
    in
    let inbox =
      Trace.span Trace.Phase "bit-gen.gamma" @@ fun () ->
      Transport.exchange gamma_net ~send:(fun () ->
          for i = 0 to n - 1 do
            match gamma_behavior i with
            | Honest_gamma -> (
                match received.(i) with
                | Some shares ->
                    let gamma = V.combine ~r shares in
                    Transport.send_to_all gamma_net ~src:i (fun _ -> gamma)
                | None -> ())
            | Silent_gamma -> ()
            | Fixed_gamma v -> Transport.send_to_all gamma_net ~src:i (fun _ -> v)
            | Gamma_per_dst f ->
                for dst = 0 to n - 1 do
                  match f dst with
                  | Some v -> Transport.send gamma_net ~src:i ~dst v
                  | None -> ()
                done
          done)
    in
    let views =
      Trace.span Trace.Phase "bit-gen.decode" @@ fun () ->
      Array.init n (fun i ->
          let gammas = Array.make n None in
          List.iter (fun (k, v) -> gammas.(k) <- Some v) inbox.(i);
          let check_poly, support = decode_check ~n ~t gammas in
          Trace.event (fun () ->
              Trace.Reconstruct { player = i; ok = Option.is_some check_poly });
          { received = received.(i); check_poly; support; gammas })
    in
    (views, matrix)
end
