module Make (F : Field_intf.S) = struct
  module C = Sealed_coin.Make (F)
  module S = Shamir.Make (F)
  module P = Poly.Make (F)
  module BW = Berlekamp_welch.Make (F)

  type sender_behavior =
    | Honest
    | Silent
    | Send of F.t
    | Equivocate of (int -> F.t option)

  (* The single communication round both decoders share: everyone sends
     its share of the coin to everyone. *)
  let send_round ?(sender_behavior = fun _ -> Honest) (coin : C.t) =
    let n = coin.C.n in
    let module Codec = Wire.Codec (F) in
    let net =
      Net.create
        ~codec:(Codec.encode_elt, Codec.decode_elt)
        ~n
        ~byte_size:(fun _ -> F.byte_size)
        ()
    in
    Net.exchange net ~send:(fun () ->
        for i = 0 to n - 1 do
          match sender_behavior i with
          | Honest -> Net.send_to_all net ~src:i (fun _ -> coin.C.shares.(i))
          | Silent -> ()
          | Send v -> Net.send_to_all net ~src:i (fun _ -> v)
          | Equivocate f ->
              for dst = 0 to n - 1 do
                match f dst with
                | Some v -> Net.send net ~src:i ~dst v
                | None -> ()
              done
        done)

  let trusted_points coin i inbox_i =
    List.filter_map
      (fun (j, v) -> if C.trusted_row coin i j then Some (j, v) else None)
      inbox_i

  let run ?sender_behavior (coin : C.t) =
    Trace.span Trace.Protocol "coin-expose" @@ fun () ->
    let n = coin.C.n and t = coin.C.fault_bound in
    let plan = S.grid ~n ~t in
    let inbox = send_round ?sender_behavior coin in
    Array.init n (fun i ->
        let points = trusted_points coin i inbox.(i) in
        let m = List.length points in
        let e = (m - t - 1) / 2 in
        let value =
          if e < 0 then None
          else
            (* Fast path: when every trusted share lies on one degree-<= t
               polynomial (the overwhelmingly common, fault-free case) the
               plan's cached subset weights reconstruct f(0) directly.
               Berlekamp-Welch — the same decoder as before — takes over
               exactly when the check fails, i.e. when there are errors to
               correct, so the decoded value is unchanged in all cases. *)
            match S.G.reconstruct_zero_checked plan points with
            | Some v -> Some v
            | None -> (
                let points =
                  List.map (fun (j, v) -> (S.eval_point j, v)) points
                in
                match BW.decode ~max_degree:t ~max_errors:e points with
                | None -> None
                | Some f -> Some (BW.P.eval f F.zero))
        in
        Trace.event (fun () ->
            Trace.Reconstruct { player = i; ok = Option.is_some value });
        value)

  let expose_bit ?sender_behavior coin =
    Array.map
      (Option.map (fun v -> F.lsb v = 1))
      (run ?sender_behavior coin)

  let run_lagrange ?sender_behavior (coin : C.t) =
    Trace.span Trace.Protocol "coin-expose.lagrange" @@ fun () ->
    let n = coin.C.n and t = coin.C.fault_bound in
    let plan = S.grid ~n ~t in
    let inbox = send_round ?sender_behavior coin in
    Array.init n (fun i ->
        let points = trusted_points coin i inbox.(i) in
        let rec take k = function
          | [] -> []
          | _ when k = 0 -> []
          | p :: rest -> p :: take (k - 1) rest
        in
        let points = take (t + 1) points in
        let value =
          if List.length points < t + 1 then None
          else Some (S.reconstruct_with plan points)
        in
        Trace.event (fun () ->
            Trace.Reconstruct { player = i; ok = Option.is_some value });
        value)
end
