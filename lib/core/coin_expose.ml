module Make (F : Field_intf.S) = struct
  module C = Sealed_coin.Make (F)
  module S = Shamir.Make (F)
  module P = Poly.Make (F)
  module BW = Berlekamp_welch.Make (F)

  type sender_behavior =
    | Honest
    | Silent
    | Send of F.t
    | Equivocate of (int -> F.t option)

  module Codec = Wire.Codec (F)

  let elt_byte_size _ = F.byte_size

  (* The single communication round both decoders share: everyone sends
     its share of the coin to everyone. *)
  let send_round ?(sender_behavior = fun _ -> Honest) (coin : C.t) =
    let n = coin.C.n in
    let net =
      Transport.create
        ~codec:(Codec.encode_elt, Codec.decode_elt)
        ~n ~byte_size:elt_byte_size ()
    in
    let inbox =
      Transport.exchange net ~send:(fun () ->
          for i = 0 to n - 1 do
            match sender_behavior i with
            | Honest -> Transport.send_to_all net ~src:i (fun _ -> coin.C.shares.(i))
            | Silent -> ()
            | Send v -> Transport.send_to_all net ~src:i (fun _ -> v)
            | Equivocate f ->
                for dst = 0 to n - 1 do
                  match f dst with
                  | Some v -> Transport.send net ~src:i ~dst v
                  | None -> ()
                done
          done)
    in
    (net, inbox)

  (* Quarantined players are dropped from subset selection on top of the
     per-coin trust matrix. With no (or a passive) ambient ledger
     [Sentinel.excluded] is constantly false, so selection is unchanged;
     with an active one the honest trusted majority still clears the
     paper's n' >= 2t'+1 reconstruction floor (at most t quarantined,
     at least n - 2t >= t + 1 honest trusted rows survive). *)
  let trusted_points coin i inbox_i ~excl =
    List.filter_map
      (fun (j, v) ->
        if C.trusted_row coin i j && not excl.(j) then Some (j, v) else None)
      inbox_i

  (* The reference exposure path: list-based point gathering, list-based
     checked reconstruction, attribution tallies kept unconditionally.
     Bit-identical to [run] — same decoded values, same steady-state
     Metrics ticks (one-time subset-cache builds may land in whichever
     twin runs first), same Trace events, same PRNG stream (pinned by
     differential tests in test/test_batch_kernels.ml) — but allocates
     a points list and a closure environment per player per exposure.
     Kept as the naive twin for equivalence tests and the bench
     baseline. *)
  let run_reference ?sender_behavior (coin : C.t) =
    Trace.span Trace.Protocol "coin-expose" @@ fun () ->
    let n = coin.C.n and t = coin.C.fault_bound in
    let plan = S.grid ~n ~t in
    let excl = Sentinel.exclusion_mask ~n in
    let net, inbox = send_round ?sender_behavior coin in
    (* Attribution tallies: how many players decoded sender j's share as
       an error, and how many got nothing from j at all. Pure integer
       bookkeeping; an accusation is only scored at t + 1 concurring
       players (see DESIGN.md section 14). *)
    let bad_votes = Array.make n 0 in
    let results =
      Array.init n (fun i ->
          let points = trusted_points coin i inbox.(i) ~excl in
          let m = List.length points in
          (* Degree-t reconstruction needs m >= t + 1 points; note
             (m - t - 1) / 2 truncates toward zero, so at m = t it is 0,
             not negative — guard on m, not on e. *)
          let e = (m - t - 1) / 2 in
          let value =
            if m <= t then begin
              (* Too few trusted shares survived (crashes past the
                 budget, quarantine, silence): reconstruction is
                 impossible, never approximate. Leave a breadcrumb for
                 chaos post-mortems — forced only when tracing. *)
              Trace.event (fun () ->
                  Trace.Note
                    (Printf.sprintf
                       "p%d: reconstruction impossible (m=%d <= t=%d)" i m t));
              None
            end
            else
              (* Fast path: when every trusted share lies on one degree-<= t
                 polynomial (the overwhelmingly common, fault-free case) the
                 plan's cached subset weights reconstruct f(0) directly.
                 Berlekamp-Welch — the same decoder as before — takes over
                 exactly when the check fails, i.e. when there are errors to
                 correct, so the decoded value is unchanged in all cases. *)
              match S.G.reconstruct_zero_checked plan points with
              | Some v -> Some v
              | None -> (
                  let mapped =
                    List.map (fun (j, v) -> (j, (S.eval_point j, v))) points
                  in
                  match
                    BW.decode_with_support ~max_degree:t ~max_errors:e
                      (List.map snd mapped)
                  with
                  | None -> None
                  | Some (f, support) ->
                      (* The support is a physical sublist of the input
                         points, so [memq] recovers the error locators —
                         exactly the shares BW corrected — with no field
                         arithmetic beyond what [decode] already did. *)
                      List.iter
                        (fun (j, pt) ->
                          if not (List.memq pt support) then
                            bad_votes.(j) <- bad_votes.(j) + 1)
                        mapped;
                      Some (BW.P.eval f F.zero))
          in
          Trace.event (fun () ->
              Trace.Reconstruct { player = i; ok = Option.is_some value });
          value)
    in
    Sentinel.observe (fun () ->
        let acc = ref [] in
        if Transport.complete_last_round net then begin
          (* Nobody can be absent; only decode evidence remains. *)
          for j = n - 1 downto 0 do
            if bad_votes.(j) >= t + 1 then
              acc := (j, Sentinel.Bad_share) :: !acc
          done
        end
        else begin
          let unique_senders =
            match Transport.current_plan () with
            | None -> true
            | Some p -> Transport.Plan.retransmits p >= 1
          in
          let miss_votes = Transport.absent_counts ~unique_senders ~n inbox in
          for j = n - 1 downto 0 do
            if miss_votes.(j) >= t + 1 then
              acc := (j, Sentinel.Silent) :: !acc;
            if bad_votes.(j) >= t + 1 then
              acc := (j, Sentinel.Bad_share) :: !acc
          done
        end;
        !acc);
    results

  (* Accusations computed from the tallies of one exposure round; shared
     by [run] and hoisted out of its hot loop. Pure integer bookkeeping —
     an accusation is only scored at t + 1 concurring players (see
     DESIGN.md section 14). *)
  let accusations net inbox ~n ~t ~bad_votes =
    let acc = ref [] in
    if Transport.complete_last_round net then begin
      (* Nobody can be absent; only decode evidence remains. *)
      for j = n - 1 downto 0 do
        if bad_votes.(j) >= t + 1 then acc := (j, Sentinel.Bad_share) :: !acc
      done
    end
    else begin
      let unique_senders =
        match Transport.current_plan () with
        | None -> true
        | Some p -> Transport.Plan.retransmits p >= 1
      in
      let miss_votes = Transport.absent_counts ~unique_senders ~n inbox in
      for j = n - 1 downto 0 do
        if miss_votes.(j) >= t + 1 then acc := (j, Sentinel.Silent) :: !acc;
        if bad_votes.(j) >= t + 1 then acc := (j, Sentinel.Bad_share) :: !acc
      done
    end;
    !acc

  (* The steady-state exposure path. Identical values, ticks, traces and
     draws as [run_reference]; the differences are purely allocation and
     control flow:
     - trusted points are gathered into two flat scratch arrays and fed
       to the plan's arena reconstruction
       ([Grid.reconstruct_zero_checked_into]) — no intermediate list, no
       sort closures on the fault-free path;
     - attribution bookkeeping (the [bad_votes] tally and the evidence
       list) is built only when a ledger is installed
       ([Sentinel.is_active]); without one those votes were dropped
       unread, so skipping them changes nothing observable. *)
  let run ?sender_behavior (coin : C.t) =
    Trace.span Trace.Protocol "coin-expose" @@ fun () ->
    let n = coin.C.n and t = coin.C.fault_bound in
    let plan = S.grid ~n ~t in
    let excl = Sentinel.exclusion_mask ~n in
    let net, inbox = send_round ?sender_behavior coin in
    let active = Sentinel.is_active () in
    let bad_votes = if active then Array.make n 0 else [||] in
    let ids = Array.make n 0 and ys = Array.make n F.zero in
    (* Event thunks allocate even when no collector is installed; the
       draw loop emits two per player, so hoist the enabled check. *)
    let traced = Trace.enabled () in
    let results =
      Array.init n (fun i ->
          (* A duplicating fault plan can deliver more than n messages to
             one player; the shared n-sized scratch only serves the
             normal case, so fall back to a fresh pair when oversized
             (such inboxes carry duplicate ids and end up in the
             Berlekamp-Welch cold path anyway). *)
          let cap = List.length inbox.(i) in
          let ids, ys =
            if cap <= n then (ids, ys)
            else (Array.make cap 0, Array.make cap F.zero)
          in
          let len = ref 0 in
          List.iter
            (fun (j, v) ->
              if C.trusted_row coin i j && not excl.(j) then begin
                ids.(!len) <- j;
                ys.(!len) <- v;
                incr len
              end)
            inbox.(i);
          let m = !len in
          (* Degree-t reconstruction needs m >= t + 1 points; note
             (m - t - 1) / 2 truncates toward zero, so at m = t it is 0,
             not negative — guard on m, not on e. *)
          let e = (m - t - 1) / 2 in
          let value =
            if m <= t then begin
              if traced then
                Trace.event (fun () ->
                    Trace.Note
                      (Printf.sprintf
                         "p%d: reconstruction impossible (m=%d <= t=%d)" i m t));
              None
            end
            else
              match
                S.G.reconstruct_zero_checked_into plan ~ids ~ys ~len:m
              with
              | Some v -> Some v
              | None -> (
                  (* Cold path: some share is faulty or duplicated, so
                     the list spine and eval_point mapping are paid only
                     when the Berlekamp-Welch decoder actually runs. *)
                  let mapped = ref [] in
                  for k = m - 1 downto 0 do
                    mapped := (ids.(k), (S.eval_point ids.(k), ys.(k))) :: !mapped
                  done;
                  let mapped = !mapped in
                  match
                    BW.decode_with_support ~max_degree:t ~max_errors:e
                      (List.map snd mapped)
                  with
                  | None -> None
                  | Some (f, support) ->
                      (* The support is a physical sublist of the mapped
                         points, so [memq] recovers the error locators
                         with no extra field arithmetic. *)
                      if active then
                        List.iter
                          (fun (j, pt) ->
                            if not (List.memq pt support) then
                              bad_votes.(j) <- bad_votes.(j) + 1)
                          mapped;
                      Some (BW.P.eval f F.zero))
          in
          if traced then
            Trace.event (fun () ->
                Trace.Reconstruct { player = i; ok = Option.is_some value });
          value)
    in
    if active then
      Sentinel.observe (fun () -> accusations net inbox ~n ~t ~bad_votes);
    results

  let expose_bit ?sender_behavior coin =
    Array.map
      (Option.map (fun v -> F.lsb v = 1))
      (run ?sender_behavior coin)

  let run_lagrange ?sender_behavior (coin : C.t) =
    Trace.span Trace.Protocol "coin-expose.lagrange" @@ fun () ->
    let n = coin.C.n and t = coin.C.fault_bound in
    let plan = S.grid ~n ~t in
    let excl = Sentinel.exclusion_mask ~n in
    let _net, inbox = send_round ?sender_behavior coin in
    Array.init n (fun i ->
        let points = trusted_points coin i inbox.(i) ~excl in
        let rec take k = function
          | [] -> []
          | _ when k = 0 -> []
          | p :: rest -> p :: take (k - 1) rest
        in
        let points = take (t + 1) points in
        let value =
          if List.length points < t + 1 then None
          else Some (S.reconstruct_with plan points)
        in
        Trace.event (fun () ->
            Trace.Reconstruct { player = i; ok = Option.is_some value });
        value)
end
