(** Protocol [Coin-Expose] (Fig. 6): reveal a sealed coin to everyone.

    Every player sends its share of the coin to all players over the
    point-to-point channels; each player then interpolates a degree-[t]
    polynomial through the shares it trusts for this coin, using the
    Berlekamp–Welch decoder to ride out lies, and reads the coin off as
    [F(0)] (its low bit for a binary coin, Fig. 6 step 3).

    Decoding uses only senders in the coin's per-player trusted set (the
    paper's [S], "subset of clique members which satisfied condition iii
    in [the] previous run of Coin-Gen"): among trusted senders, at least
    [2t + 1] are honest with correct shares (Lemma 7.3) and each faulty
    trusted sender both adds a point and an error, so the decoding
    condition [m >= t + 1 + 2e] always holds and every honest player
    recovers the same [F(0)] — unanimity. *)

module Make (F : Field_intf.S) : sig
  module C : module type of Sealed_coin.Make (F)

  type sender_behavior =
    | Honest
    | Silent
    | Send of F.t  (** Send this instead of the true share. *)
    | Equivocate of (int -> F.t option)  (** Per-destination lies. *)

  val run :
    ?sender_behavior:(int -> sender_behavior) ->
    C.t ->
    F.t option array
  (** One exposure round ([n^2] share messages, Section-4 model). Entry
      [i] is player [i]'s decoded coin, [None] if its decoding failed
      (impossible for honest players when the coin's trust guarantee
      holds).

      This is the steady-state path: trusted shares are gathered into
      flat scratch arrays and reconstructed through the plan's arena
      ({!Grid.Make.reconstruct_zero_checked_into}), and attribution
      bookkeeping is built only when a {!Sentinel} ledger is installed —
      the fault-free draw loop allocates O(1) minor words beyond the
      transport round itself. *)

  val run_reference :
    ?sender_behavior:(int -> sender_behavior) ->
    C.t ->
    F.t option array
  (** The list-based reference twin of {!run}: same decoded values, same
      steady-state {!Metrics} ticks (one-time subset-cache builds may
      land in whichever twin runs first), same [Trace] events, same PRNG
      stream (pinned by differential tests), but per-player point lists
      and unconditional attribution tallies. Kept for equivalence tests
      and as the bench baseline. *)

  val expose_bit : ?sender_behavior:(int -> sender_behavior) -> C.t -> bool option array
  (** [Fig. 6 step 3]: the binary coin [F(0) mod 2]. *)

  val run_lagrange :
    ?sender_behavior:(int -> sender_behavior) -> C.t -> F.t option array
  (** Ablation variant: each player interpolates plainly through the
      first [t + 1] trusted shares it receives instead of running the
      Berlekamp–Welch decoder. Cheaper — and wrong under faults: a
      single lying trusted sender silently corrupts the coin and breaks
      unanimity. Exists for the DESIGN.md §5 ablation bench; the real
      protocol never uses it. *)
end
