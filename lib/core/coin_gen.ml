let log_src = Logs.Src.create "dprbg.coingen" ~doc:"Coin-Gen protocol events"

module Log = (val Logs.src_log log_src)

module Make (F : Field_intf.S) = struct
  module C = Sealed_coin.Make (F)
  module BG = Bit_gen.Make (F)
  module P = Poly.Make (F)
  module S = Shamir.Make (F)
  module V = Vss.Make (F)

  type payload = { clique : int list; polys : (int * F.t array) list }

  let payload_equal a b =
    let coeffs_equal x y =
      Array.length x = Array.length y && Array.for_all2 F.equal x y
    in
    a.clique = b.clique
    && List.length a.polys = List.length b.polys
    && List.for_all2
         (fun (i, p) (j, q) -> i = j && coeffs_equal p q)
         a.polys b.polys

  module Codec = Wire.Codec (F)

  let payload_bytes p =
    Codec.payload_size ~clique:p.clique
      ~poly_sizes:(List.map (fun (_, coeffs) -> Array.length coeffs) p.polys)

  type gamma_vector_behavior =
    | Honest_vec
    | Silent_vec
    | Arbitrary_vec of (int -> F.t option array)

  type adversary = {
    as_dealer : int -> BG.dealer_behavior;
    as_gamma : int -> gamma_vector_behavior;
    as_gradecast_dealer : int -> payload Gradecast.dealer_behavior;
    as_gradecast_follower : int -> payload Gradecast.follower_behavior;
    as_ba : int -> Phase_king.behavior;
  }

  let honest_adversary =
    {
      as_dealer = (fun _ -> BG.Honest_dealer);
      as_gamma = (fun _ -> Honest_vec);
      as_gradecast_dealer = (fun _ -> Gradecast.Dealer_honest);
      as_gradecast_follower = (fun _ -> Gradecast.Follower_honest);
      as_ba = (fun _ -> Phase_king.Honest);
    }

  let faulty_with ?(as_dealer = BG.Silent_dealer) ?(as_gamma = Silent_vec)
      ?(as_gradecast_dealer = Gradecast.Dealer_silent)
      ?(as_gradecast_follower = Gradecast.Follower_silent)
      ?(as_ba = Phase_king.Silent) faults =
    let pick faulty honest i =
      if Transport.Faults.is_faulty faults i then faulty else honest
    in
    {
      as_dealer = pick as_dealer BG.Honest_dealer;
      as_gamma = pick as_gamma Honest_vec;
      as_gradecast_dealer = pick as_gradecast_dealer Gradecast.Dealer_honest;
      as_gradecast_follower =
        pick as_gradecast_follower Gradecast.Follower_honest;
      as_ba = pick as_ba Phase_king.Honest;
    }

  type batch = {
    n : int;
    fault_bound : int;
    m : int;
    dealers : int list;
    shares : F.t array array;
    trusted : bool array array;
    ba_iterations : int;
    seed_coins_consumed : int;
  }

  let leader_index v ~n =
    (* Fold the element's low bits into an int; the non-uniformity of
       "mod n" over >= 2^min(k,40) values is negligible. *)
    let bits = F.to_bits v in
    let w = min 40 (Array.length bits) in
    let acc = ref 0 in
    for b = 0 to w - 1 do
      if bits.(b) then acc := !acc lor (1 lsl b)
    done;
    !acc mod n

  (* A payload is structurally valid for parameters (n, t) if its clique
     is a sorted duplicate-free subset of the players and it carries one
     degree-<= t polynomial for exactly each clique member. *)
  let well_formed ~n ~t pay =
    let rec sorted_distinct = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) -> a < b && sorted_distinct rest
    in
    sorted_distinct pay.clique
    && List.for_all (fun j -> j >= 0 && j < n) pay.clique
    && List.map fst pay.polys = pay.clique
    && List.for_all (fun (_, coeffs) -> Array.length coeffs <= t + 1) pay.polys

  let run ?(adversary = honest_adversary) ?(max_ba_iterations = 64)
      ?(share_check_coin = true) ?ba ?(zero_secrets = false) ~prng ~oracle ~n
      ~t ~m () =
    let run_ba =
      match ba with
      | Some f -> f
      | None ->
          fun inputs -> Phase_king.run ~behavior:adversary.as_ba ~n ~t ~inputs ()
    in
    if n < (6 * t) + 1 then invalid_arg "Coin_gen.run: requires n >= 6t+1";
    if m < 1 then invalid_arg "Coin_gen.run: m must be positive";
    Trace.span Trace.Protocol "coin-gen" @@ fun () ->
    (* ---- Step 1: n parallel Bit-Gen dealings, batched on one net. *)
    let matrices =
      Array.init n (fun j -> BG.deal_matrix (adversary.as_dealer j) prng ~n ~t ~m)
    in
    let deal_net =
      Transport.create
        ~codec:(Codec.encode_elt_array, Codec.decode_elt_array)
        ~n
        ~byte_size:(fun v -> Codec.elt_array_size (Array.length v))
        ()
    in
    let inbox =
      Trace.span Trace.Phase "coin-gen.deal" @@ fun () ->
      Transport.exchange deal_net ~send:(fun () ->
          Array.iteri
            (fun j -> function
              | None -> ()
              | Some matrix ->
                  Transport.send_to_all deal_net ~src:j (fun dst -> matrix.(dst)))
            matrices)
    in
    let received =
      Array.init n (fun i ->
          let row = Array.make n None in
          List.iter
            (fun (j, v) -> if Array.length v = m then row.(j) <- Some v)
            inbox.(i);
          row)
    in
    (* Attribution: a dealer absent from (or malformed in) the merged
       deal inboxes of t + 1 players is blamed — the envelope delivers
       honest live senders everywhere, and at most t crashed receivers
       can void an inbox. Evaluated lazily, only under a ledger. *)
    let exchange_evidence inbox ~malformed =
      let unique_senders =
        match Transport.current_plan () with
        | None -> true
        | Some p -> Transport.Plan.retransmits p >= 1
      in
      let miss = Transport.absent_counts ~unique_senders ~n inbox in
      let bad = Array.make n 0 in
      Array.iter
        (List.iter (fun (j, v) -> if malformed v then bad.(j) <- bad.(j) + 1))
        inbox;
      List.concat_map
        (fun j ->
          let acc =
            if bad.(j) >= t + 1 then [ (j, Sentinel.Undecodable) ] else []
          in
          if miss.(j) >= t + 1 then (j, Sentinel.Silent) :: acc else acc)
        (List.init n Fun.id)
    in
    Sentinel.observe (fun () ->
        exchange_evidence inbox ~malformed:(fun v -> Array.length v <> m));
    (* ---- Step 2: expose the check coin(s). Sharing one r across all n
       Bit-Gen invocations is the Theorem-2 optimization; the ablation
       path draws one per dealer. *)
    let check_coins =
      if share_check_coin then Array.make n (oracle ())
      else Array.init n (fun _ -> oracle ())
    in
    let check_coins_used = if share_check_coin then 1 else n in
    (* ---- Step 3: everyone announces its vector of combined shares,
       one gamma per dealer. *)
    let gamma_net =
      Transport.create
        ~codec:(Codec.encode_opt_elt_array, Codec.decode_opt_elt_array)
        ~n ~byte_size:Codec.opt_elt_array_size ()
    in
    let inbox =
      Trace.span Trace.Phase "coin-gen.gamma" @@ fun () ->
      Transport.exchange gamma_net ~send:(fun () ->
          for i = 0 to n - 1 do
            match adversary.as_gamma i with
            | Honest_vec ->
                let vec =
                  Array.mapi
                    (fun j shares_opt ->
                      Option.map
                        (fun shares -> V.combine ~r:check_coins.(j) shares)
                        shares_opt)
                    received.(i)
                in
                Transport.send_to_all gamma_net ~src:i (fun _ -> vec)
            | Silent_vec -> ()
            | Arbitrary_vec f ->
                for dst = 0 to n - 1 do
                  let vec = f dst in
                  if Array.length vec = n then Transport.send gamma_net ~src:i ~dst vec
                done
          done)
    in
    (* gammas.(i).(k).(j) = gamma_k^(dealer j) as received by player i. *)
    let gammas =
      Array.init n (fun i ->
          let rows = Array.init n (fun _ -> Array.make n None) in
          List.iter
            (fun (k, vec) -> if Array.length vec = n then rows.(k) <- vec)
            inbox.(i);
          rows)
    in
    Sentinel.observe (fun () ->
        exchange_evidence inbox ~malformed:(fun v -> Array.length v <> n));
    (* ---- Steps 4-6: local decode, graph, clique — per player. *)
    let checks =
      (* checks.(i).(j): player i's (F_j, S_j) for dealer j. In a
         zero-secrets (refresh) batch, a dealer whose check polynomial
         does not vanish at 0 is rejected outright here — otherwise a
         faulty dealer with valid but non-zero sharings would poison
         every honest clique and stall the agreement loop. *)
      Trace.span Trace.Phase "coin-gen.decode" @@ fun () ->
      Array.init n (fun i ->
          let row =
            Array.init n (fun j ->
                let gam_j = Array.init n (fun k -> gammas.(i).(k).(j)) in
                match BG.decode_check ~n ~t gam_j with
                | Some f, _
                  when zero_secrets && not (F.equal (P.eval f F.zero) F.zero)
                  ->
                    (None, Array.make n false)
                | result -> result)
          in
          Trace.event (fun () ->
              let decoded =
                Array.fold_left
                  (fun acc (f, _) -> if Option.is_some f then acc + 1 else acc)
                  0 row
              in
              Trace.Reconstruct { player = i; ok = decoded >= n - t });
          row)
    in
    (* A dealing undecodable at t + 1 players is the dealer's fault:
       honest dealings decode at every live player (robust decode
       tolerates the <= t faulty gamma senders), and at most t crashed
       receivers decode nothing at all. *)
    Sentinel.observe (fun () ->
        List.filter_map
          (fun j ->
            let rejections =
              Array.fold_left
                (fun acc row -> if fst row.(j) = None then acc + 1 else acc)
                0 checks
            in
            if rejections >= t + 1 then Some (j, Sentinel.Rejected_dealing)
            else None)
          (List.init n Fun.id));
    let cliques =
      Array.init n (fun i ->
          let dg = Player_graph.directed_create ~n in
          for j = 0 to n - 1 do
            match fst checks.(i).(j) with
            | None -> ()
            | Some fj ->
                for k = 0 to n - 1 do
                  match gammas.(i).(k).(j) with
                  | Some v when F.equal (P.eval fj (S.eval_point k)) v ->
                      Player_graph.add_edge dg j k
                  | Some _ | None -> ()
                done
          done;
          let ug = Player_graph.bidirectional_core dg in
          Player_graph.approx_clique ug ~min_size:(n - (2 * t)))
    in
    (* ---- Step 7: parallel grade-cast of (clique, check polynomials). *)
    let payload_of i =
      match cliques.(i) with
      | None -> { clique = []; polys = [] }
      | Some c ->
          {
            clique = c;
            polys =
              List.filter_map
                (fun j ->
                  Option.map (fun f -> (j, P.coeffs f)) (fst checks.(i).(j)))
                c;
          }
    in
    let outcomes =
      Trace.span Trace.Phase "coin-gen.gradecast" @@ fun () ->
      Gradecast.run_all ~dealer_behavior:adversary.as_gradecast_dealer
        ~follower_behavior:adversary.as_gradecast_follower ~equal:payload_equal
        ~byte_size:payload_bytes ~n ~t ~values:payload_of ()
    in
    (* Step 10 conditions, evaluated from player i's own state. *)
    let condition_iii i pay =
      let poly_of =
        List.map (fun (k, coeffs) -> (k, P.of_coeffs coeffs)) pay.polys
      in
      let share_ok j k =
        match gammas.(i).(j).(k) with
        | Some v ->
            F.equal (P.eval (List.assoc k poly_of) (S.eval_point j)) v
        | None -> false
      in
      let good_j j = List.for_all (fun k -> share_ok j k) pay.clique in
      let good_count = List.length (List.filter good_j pay.clique) in
      good_count >= (3 * t) + 1
    in
    (* For refresh batches, every accepted check polynomial must vanish
       at zero: F_k = sum_h r^h g_{k,h} with all g(0) = 0, so a dealer
       hiding a non-zero secret escapes with probability <= M/p. *)
    let zero_secret_ok pay =
      (not zero_secrets)
      || List.for_all
           (fun (_, coeffs) ->
             Array.length coeffs = 0 || F.equal coeffs.(0) F.zero)
           pay.polys
    in
    let ba_input i l =
      let o = outcomes.(i).(l) in
      match o.Gradecast.value with
      | Some pay ->
          o.Gradecast.confidence = 2
          && well_formed ~n ~t pay
          && List.length pay.clique >= n - (2 * t)
          && zero_secret_ok pay
          && condition_iii i pay
      | None -> false
    in
    (* Majority helpers: >= n - t honest players always agree, and
       n >= 6t+1 makes that an absolute majority. *)
    let majority_decision decisions =
      let ones = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 decisions in
      2 * ones > n
    in
    let majority_payload l =
      let candidates =
        List.filter_map
          (fun i ->
            let o = outcomes.(i).(l) in
            if o.Gradecast.confidence >= 1 then o.Gradecast.value else None)
          (List.init n Fun.id)
      in
      let count p = List.length (List.filter (payload_equal p) candidates) in
      List.find_opt (fun p -> 2 * count p > n) candidates
    in
    (* ---- Steps 9-11: draw a leader, agree, repeat on failure. *)
    let rec ba_loop iter coins_used =
      if iter >= max_ba_iterations then begin
        Log.warn (fun m ->
            m "giving up after %d leader draws (adversarial luck?)" iter);
        None
      end
      else begin
        (* Leader rotation skips quarantined players: the draw indexes
           into the eligible list, which is all n players whenever no
           active ledger has quarantined anyone — identical arithmetic,
           identical leader. *)
        let eligible =
          match
            List.filter
              (fun p -> not (Sentinel.excluded p))
              (List.init n Fun.id)
          with
          | [] -> List.init n Fun.id
          | ps -> ps
        in
        let l =
          List.nth eligible
            (leader_index (oracle ()) ~n:(List.length eligible))
        in
        Trace.note (Printf.sprintf "iteration %d: leader %d" (iter + 1) l);
        let coins_used = coins_used + 1 in
        let inputs = Array.init n (fun i -> ba_input i l) in
        let yes = Array.fold_left (fun a b -> if b then a + 1 else a) 0 inputs in
        let decisions = run_ba inputs in
        Log.debug (fun m ->
            m "iteration %d: leader %d, %d/%d players input 1, BA decided %b"
              (iter + 1) l yes n
              (majority_decision decisions));
        if majority_decision decisions then
          match majority_payload l with
          | Some pay -> Some (pay, iter + 1, coins_used)
          | None ->
              (* Decision 1 guarantees an honest input 1, hence an honest
                 confidence-2 outcome, hence a majority payload; reaching
                 here means the adversary broke a protocol invariant. *)
              assert false
        else ba_loop (iter + 1) coins_used
      end
    in
    match Trace.span Trace.Phase "coin-gen.ba" (fun () -> ba_loop 0 check_coins_used) with
    | None -> None
    | Some (pay, iterations, coins_used) ->
        Log.info (fun f ->
            f "batch accepted: clique {%s}, %d coins, %d BA iteration(s), %d seed coin(s)"
              (String.concat "," (List.map string_of_int pay.clique))
              m iterations coins_used);
        let dealers = pay.clique in
        let poly_of =
          List.map (fun (k, coeffs) -> (k, P.of_coeffs coeffs)) pay.polys
        in
        let shares =
          Array.init n (fun i ->
              Array.init m (fun h ->
                  List.fold_left
                    (fun acc j ->
                      match received.(i).(j) with
                      | Some v -> F.add acc v.(h)
                      | None -> acc)
                    F.zero dealers))
        in
        let trusted =
          Array.init n (fun i ->
              Array.init n (fun j ->
                  List.for_all
                    (fun k ->
                      match gammas.(i).(j).(k) with
                      | Some v ->
                          F.equal
                            (P.eval (List.assoc k poly_of) (S.eval_point j))
                            v
                      | None -> false)
                    dealers))
        in
        Some
          {
            n;
            fault_bound = t;
            m;
            dealers;
            shares;
            trusted;
            ba_iterations = iterations;
            seed_coins_consumed = coins_used;
          }

  let coin batch h =
    if h < 0 || h >= batch.m then invalid_arg "Coin_gen.coin: index out of range";
    {
      C.n = batch.n;
      C.fault_bound = batch.fault_bound;
      C.shares = Array.init batch.n (fun i -> batch.shares.(i).(h));
      C.trusted = Some batch.trusted;
    }
end
