(** Protocol [Coin-Gen] (Fig. 5): the D-PRBG's stretching step.

    All [n] players run [Bit-Gen] in parallel (each as the dealer of [M]
    secrets), re-using a single exposed check coin [r] across all [n]
    invocations (the Theorem-2 remark: this saves [n] interpolations).
    Each player then builds a local directed graph — an edge [(j, k)]
    when [P_k]'s combined share verified against dealer [j]'s check
    polynomial — takes its bidirectional core, extracts a clique of size
    [>= n - 2t], and grade-casts the clique together with the check
    polynomials. A second exposed coin picks a leader [l]; a Byzantine
    agreement decides whether [P_l]'s proposal is good (confidence 2,
    clique size [>= 4t + 1], and at least [3t + 1] members whose shares
    verify against {e every} clique member's polynomial — conditions
    i-iii of step 10); on failure a new leader is drawn.

    The output batch packages, for each of the [M] coins, player [i]'s
    summed share over the agreed clique of dealers, plus player [i]'s
    trusted-sender set for exposure (see {!Sealed_coin} and
    {!Coin_expose}). Lemma 7 gives the clique guarantees, Lemma 8
    constant expected BA iterations, Theorem 2 / Corollary 3 the costs.

    Model: [n >= 6t + 1], point-to-point channels only (Section 4).

    Concretization note: the paper leaves the post-BA choice of the
    exposure set [S] implicit. We keep it per-player — player [i] trusts
    [j] iff [j]'s combined shares verified against every agreed dealer's
    polynomial {e in [i]'s own view}. Honest players' trusted sets then
    all contain the [>= 2t + 1] honest members of the certified set
    (honest senders look identical to everyone), and each faulty trusted
    sender adds one point and at most one error, so Berlekamp–Welch
    decodes the same polynomial for every honest player — unanimity
    without any extra agreement. *)

module Make (F : Field_intf.S) : sig
  module C : module type of Sealed_coin.Make (F)
  module BG : module type of Bit_gen.Make (F)
  module P : module type of Poly.Make (F)

  (** What a player grade-casts in step 7: its clique and the check
      polynomials (as coefficient vectors) of the clique members. *)
  type payload = { clique : int list; polys : (int * F.t array) list }

  val payload_equal : payload -> payload -> bool

  type gamma_vector_behavior =
    | Honest_vec
    | Silent_vec
    | Arbitrary_vec of (int -> F.t option array)
        (** Per-destination gamma vectors (slot [j] = combined share for
            dealer [j]). *)

  (** A full Byzantine strategy: how each faulty player misbehaves in
      every sub-protocol. Honest players must be mapped to the honest
      constructors (the driver consults this for every player). *)
  type adversary = {
    as_dealer : int -> BG.dealer_behavior;
    as_gamma : int -> gamma_vector_behavior;
    as_gradecast_dealer : int -> payload Gradecast.dealer_behavior;
    as_gradecast_follower : int -> payload Gradecast.follower_behavior;
    as_ba : int -> Phase_king.behavior;
  }

  val honest_adversary : adversary

  val faulty_with :
    ?as_dealer:BG.dealer_behavior ->
    ?as_gamma:gamma_vector_behavior ->
    ?as_gradecast_dealer:payload Gradecast.dealer_behavior ->
    ?as_gradecast_follower:payload Gradecast.follower_behavior ->
    ?as_ba:Phase_king.behavior ->
    Transport.Faults.t ->
    adversary
  (** Uniform strategy: every faulty player in the fault set uses the
      given behaviours (defaults: silent); honest players honest. *)

  type batch = {
    n : int;
    fault_bound : int;
    m : int;
    dealers : int list;  (** the agreed clique [C_l] *)
    shares : F.t array array;
        (** [shares.(i).(h)]: player [i]'s share of coin [h] — the sum
            of what the clique dealers gave it. *)
    trusted : bool array array;
        (** [trusted.(i).(j)]: player [i] accepts [j]'s exposure
            messages. *)
    ba_iterations : int;  (** leader draws until BA accepted (Lemma 8) *)
    seed_coins_consumed : int;
        (** 1 for [r] plus one per BA iteration. *)
  }

  val run :
    ?adversary:adversary ->
    ?max_ba_iterations:int ->
    ?share_check_coin:bool ->
    ?ba:(bool array -> bool array) ->
    ?zero_secrets:bool ->
    prng:Prng.t ->
    oracle:(unit -> F.t) ->
    n:int ->
    t:int ->
    m:int ->
    unit ->
    batch option
  (** One full execution producing [m] fresh sealed coins. [oracle]
      supplies the (already-sealed) seed coins' exposed values — the
      bootstrap pool wires it to real {!Coin_expose} runs; tests may use
      an ideal oracle. [None] only if [max_ba_iterations] (default 64)
      leader draws all failed — a probability-[<= (t/n)^max] event.

      [share_check_coin] (default [true]) is the Theorem-2 optimization:
      "n polynomial interpolations have been saved by using the same
      coin for all the invocations of Bit-Gen". Setting it to [false]
      draws a separate check coin per dealer — the ablation the
      benchmark's A2 table measures; the protocol's guarantees hold
      either way.

      [ba] overrides the agreement sub-protocol of step 10 ("Run any BA
      protocol") — it receives the players' inputs and must return their
      decisions. Default: {!Phase_king} driven by the adversary's
      [as_ba] behaviours; the benchmark's A4 table plugs in {!Eig_ba}
      instead.

      [zero_secrets] (default [false]) runs the batch in {!Refresh} mode:
      honest dealers should use [Honest_zero_dealer] and verifiers
      additionally reject any check polynomial with a non-zero constant
      term, so every accepted sharing hides zero (up to the usual [M/p]
      soundness). The resulting batch is a mask, not a coin supply. *)

  val coin : batch -> int -> C.t
  (** [coin batch h] views coin [h] of the batch as a sealed coin for
      {!Coin_expose}. *)

  val leader_index : F.t -> n:int -> int
  (** Step 9: map an exposed coin to a leader id in [0, n). *)
end
