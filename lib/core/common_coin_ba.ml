type behavior =
  | Honest
  | Silent
  | Fixed of bool
  | Arbitrary of (phase:int -> round:int -> dst:int -> bool option option)

type result = {
  decisions : bool array;
  phases : int;
  coins_used : int;
}

(* Messages are [bool option]: [Some b] is a vote, [None] is round 2's
   explicit ⊥. *)
let run ?(behavior = fun _ -> Honest) ~coin ~n ~t ~max_phases ~inputs () =
  if n < (3 * t) + 1 then invalid_arg "Common_coin_ba.run: requires n >= 3t+1";
  if Array.length inputs <> n then invalid_arg "Common_coin_ba.run: inputs size";
  Metrics.tick_ba ();
  let honest i = match behavior i with Honest -> true | Silent | Fixed _ | Arbitrary _ -> false in
  let net = Transport.create ~n ~byte_size:(fun _ -> 1) () in
  let votes = Array.copy inputs in
  let decided = Array.make n None in
  let coins_used = ref 0 in
  let sends ~phase ~round honest_msg =
    Transport.exchange net ~send:(fun () ->
        for i = 0 to n - 1 do
          match behavior i with
          | Honest -> Transport.send_to_all net ~src:i (fun _ -> honest_msg i)
          | Silent -> ()
          | Fixed b -> Transport.send_to_all net ~src:i (fun _ -> Some b)
          | Arbitrary f ->
              for dst = 0 to n - 1 do
                match f ~phase ~round ~dst with
                | Some msg -> Transport.send net ~src:i ~dst msg
                | None -> ()
              done
        done)
  in
  let count inbox value =
    List.length (List.filter (fun (_, msg) -> msg = value) inbox)
  in
  let rec phase_loop phase =
    if phase >= max_phases then None
    else begin
      (* Round 1: votes. *)
      let inbox = sends ~phase ~round:1 (fun i -> Some votes.(i)) in
      let prefer =
        Array.init n (fun i ->
            if count inbox.(i) (Some true) >= n - t then Some true
            else if count inbox.(i) (Some false) >= n - t then Some false
            else None)
      in
      (* Round 2: preferences, with explicit ⊥. *)
      let inbox = sends ~phase ~round:2 (fun i -> prefer.(i)) in
      (* One shared coin for the whole phase. *)
      let c = coin () in
      incr coins_used;
      for i = 0 to n - 1 do
        let support b = count inbox.(i) (Some b) in
        let strong b = support b >= n - t and weak b = support b >= t + 1 in
        if strong true then begin
          decided.(i) <- Some true;
          votes.(i) <- true
        end
        else if strong false then begin
          decided.(i) <- Some false;
          votes.(i) <- false
        end
        else if weak true && not (weak false) then votes.(i) <- true
        else if weak false && not (weak true) then votes.(i) <- false
        else votes.(i) <- c
      done;
      let all_honest_decided =
        List.for_all
          (fun i -> (not (honest i)) || decided.(i) <> None)
          (List.init n Fun.id)
      in
      if all_honest_decided then
        Some
          {
            decisions =
              Array.init n (fun i ->
                  match decided.(i) with Some b -> b | None -> votes.(i));
            phases = phase + 1;
            coins_used = !coins_used;
          }
      else phase_loop (phase + 1)
    end
  in
  phase_loop 0
