let log_src = Logs.Src.create "dprbg.pool" ~doc:"Bootstrap pool events"

module Log = (val Logs.src_log log_src)

module Make (F : Field_intf.S) = struct
  module C = Sealed_coin.Make (F)
  module CG = Coin_gen.Make (F)
  module CE = Coin_expose.Make (F)
  module R = Refresh.Make (F)

  exception Starved of string
  exception Corrupt_snapshot of string
  exception Safe_mode of string

  type stats = {
    refills : int;
    refreshes : int;
    dealer_coins : int;
    generated_coins : int;
    seed_coins_consumed : int;
    coins_exposed : int;
    ba_iterations : int;
    unanimity_failures : int;
    refill_attempts : int;
    backoff_rounds : int;
  }

  type t = {
    prng : Prng.t;
    n : int;
    fault_bound : int;
    batch_size : int;
    refill_threshold : int;
    adversary : int -> CG.adversary;
    expose_behavior : int -> int -> CE.sender_behavior;
    max_ba_iterations : int;
    ba_flavor : [ `Phase_king | `Common_coin ];
    max_refill_attempts : int;
    ledger : Sentinel.Ledger.t option;
    mutable quarantine_mark : int;
        (* quarantine count at the last evidence-triggered refresh *)
    mutable coins : C.t list;
    mutable bit_buffer : bool list;
    mutable refills : int;
    mutable refreshes : int;
    mutable dealer_coins : int;
    mutable generated_coins : int;
    mutable seed_coins_consumed : int;
    mutable coins_exposed : int;
    mutable ba_iterations : int;
    mutable unanimity_failures : int;
    mutable refill_attempts : int;
    mutable backoff_rounds : int;
  }

  let create ?(adversary = fun _ -> CG.honest_adversary)
      ?(expose_behavior = fun _ _ -> CE.Honest) ?(max_ba_iterations = 64)
      ?(ba_flavor = `Phase_king) ?(max_refill_attempts = 5)
      ?(sentinel = Some Sentinel.passive) ~prng ~n ~t ~batch_size
      ~refill_threshold ~initial_seed () =
    if refill_threshold < 2 then
      invalid_arg "Pool.create: refill_threshold must be >= 2";
    if initial_seed <= refill_threshold then
      invalid_arg "Pool.create: initial_seed must exceed refill_threshold";
    if batch_size < 2 * refill_threshold then
      invalid_arg "Pool.create: batch_size must be >= 2 * refill_threshold";
    if max_refill_attempts < 1 then
      invalid_arg "Pool.create: max_refill_attempts must be >= 1";
    let coins =
      List.init initial_seed (fun _ -> C.dealer_coin prng ~n ~t)
    in
    {
      prng;
      n;
      fault_bound = t;
      batch_size;
      refill_threshold;
      adversary;
      expose_behavior;
      max_ba_iterations;
      ba_flavor;
      max_refill_attempts;
      ledger =
        Option.map (fun config -> Sentinel.Ledger.create ~config ~n ()) sentinel;
      quarantine_mark = 0;
      coins;
      bit_buffer = [];
      refills = 0;
      refreshes = 0;
      dealer_coins = initial_seed;
      generated_coins = 0;
      seed_coins_consumed = 0;
      coins_exposed = 0;
      ba_iterations = 0;
      unanimity_failures = 0;
      refill_attempts = 0;
      backoff_rounds = 0;
    }

  let available p = List.length p.coins
  let ledger p = p.ledger
  let refill_threshold p = p.refill_threshold

  (* Draws the pool can serve before the next draw pays a refill inline.
     The beacon's admission control reads this as its pool-pressure
     signal: headroom <= 0 means the next epoch close runs Coin-Gen in
     the vend path. *)
  let headroom p = available p - p.refill_threshold

  (* Satellite diagnostics: every Starved carries the pool's vital signs
     so a post-mortem needs no debugger. *)
  let starve p msg =
    raise
      (Starved
         (Printf.sprintf
            "%s [refills=%d refill_attempts=%d backoff_rounds=%d coins=%d]" msg
            p.refills p.refill_attempts p.backoff_rounds (available p)))

  (* Install the pool's ledger for the extent of a protocol run, so the
     drivers' Sentinel.observe hooks land in it. A [None] ledger leaves
     the ambient state untouched — the run is exactly the pre-sentinel
     code path. *)
  let with_sentinel p f =
    match p.ledger with
    | None -> f ()
    | Some ledger -> Sentinel.with_ledger ledger f

  (* Safe mode: when the implied fault count exceeds t the assumptions
     underpinning reconstruction are void, so the pool refuses to vend
     coins rather than serve possibly-biased randomness. Implied faults
     are the union of quarantined players (ledger evidence) and players
     the supervised transport session has declared physically dead —
     each voids one slot of the fault budget, and a player that is both
     counts once. The diagnostic embeds the full suspicion table. *)
  let guard_safe_mode p =
    let quarantined =
      match p.ledger with
      | None -> []
      | Some ledger -> Sentinel.Ledger.quarantine_set ledger
    in
    let dead = List.map fst (Transport.session_deaths ~n:p.n) in
    let implied = List.sort_uniq compare (quarantined @ dead) in
    if List.length implied > p.fault_bound then
      let table =
        match p.ledger with
        | Some ledger when quarantined <> [] ->
            Format.asprintf "@.%a" Sentinel.Ledger.pp_table ledger
        | _ -> ""
      in
      raise
        (Safe_mode
           (Printf.sprintf
              "evidence implies %d faults > t = %d (%d quarantined, %d \
               really dead); refusing draws%s"
              (List.length implied) p.fault_bound (List.length quarantined)
              (List.length dead) table))

  (* Expose the next sealed coin and return the honest players' majority
     reconstruction. Counts a unanimity failure when any player's
     decoding disagrees or fails (bounded by M n 2^-k per batch). *)
  let expose_next p ~for_seed =
    Trace.span Trace.Phase "pool.expose" @@ fun () ->
    match p.coins with
    | [] ->
        starve p
          (if for_seed then "seed coins exhausted during a refill"
           else "pool empty")
    | coin :: rest ->
        p.coins <- rest;
        let values =
          with_sentinel p (fun () ->
              CE.run ~sender_behavior:(p.expose_behavior p.refills) coin)
        in
        let counts = Hashtbl.create 7 in
        Array.iter
          (fun v ->
            match v with
            | None -> ()
            | Some x ->
                let key = F.to_string x in
                let prev =
                  match Hashtbl.find_opt counts key with
                  | Some (c, _) -> c
                  | None -> 0
                in
                Hashtbl.replace counts key (prev + 1, x))
          values;
        let best =
          Hashtbl.fold
            (fun _ (c, x) acc ->
              match acc with
              | Some (c', _) when c' >= c -> acc
              | _ -> Some (c, x))
            counts None
        in
        (match best with
        | Some (c, _) when c = p.n -> ()
        | _ -> p.unanimity_failures <- p.unanimity_failures + 1);
        (if for_seed then p.seed_coins_consumed <- p.seed_coins_consumed + 1
         else p.coins_exposed <- p.coins_exposed + 1);
        (match best with
        | Some (_, x) -> x
        | None -> starve p "exposure produced no value at any player")

  (* For the `Common_coin flavor, the BA's shared coins come out of the
     pool's own seed reserve: one exposed k-ary coin buffers k_bits of
     phase coins. Nested refills cannot trigger (the bits are drawn via
     expose_next directly), which is exactly why the threshold must
     cover them — the Section-1.2 remark. *)
  let randomized_ba p adversary inputs =
    let buffer = ref [] in
    let draw_bit () =
      match !buffer with
      | b :: rest ->
          buffer := rest;
          b
      | [] -> (
          let v = expose_next p ~for_seed:true in
          match Array.to_list (F.to_bits v) with
          | b :: rest ->
              buffer := rest;
              b
          | [] -> assert false)
    in
    let behavior i =
      match adversary.CG.as_ba i with
      | Phase_king.Honest -> Common_coin_ba.Honest
      | Phase_king.Silent -> Common_coin_ba.Silent
      | Phase_king.Fixed b -> Common_coin_ba.Fixed b
      | Phase_king.Arbitrary _ -> Common_coin_ba.Silent
    in
    match
      Common_coin_ba.run ~behavior ~coin:draw_bit ~n:p.n ~t:p.fault_bound
        ~max_phases:64 ~inputs ()
    with
    | Some r -> r.Common_coin_ba.decisions
    | None -> starve p "randomized BA did not terminate"

  let refill p =
    Trace.span Trace.Protocol "pool.refill" @@ fun () ->
    let attempt () =
      let adversary = p.adversary p.refills in
      let ba =
        match p.ba_flavor with
        | `Phase_king -> None
        | `Common_coin -> Some (randomized_ba p adversary)
      in
      with_sentinel p (fun () ->
          CG.run ~adversary ?ba ~max_ba_iterations:p.max_ba_iterations
            ~prng:p.prng
            ~oracle:(fun () -> expose_next p ~for_seed:true)
            ~n:p.n ~t:p.fault_bound ~m:p.batch_size ())
    in
    (* Graceful degradation: a failed Coin-Gen run (the BA loop giving
       up, typically under heavy fault pressure) is retried after an
       exponentially growing backoff — the real-world move of waiting
       out an omission burst before re-engaging the protocol. The
       backoff is idle time, charged to the round counter. [Starved]
       still bounds the retries: it now means the budget is exhausted,
       not that the first burst of bad luck was fatal. *)
    let rec go tries backoff =
      if tries = 0 then starve p "Coin-Gen failed repeatedly"
      else begin
        p.refill_attempts <- p.refill_attempts + 1;
        match attempt () with
        | Some batch -> batch
        | None ->
            if tries > 1 then begin
              for _ = 1 to backoff do
                Metrics.tick_round ()
              done;
              p.backoff_rounds <- p.backoff_rounds + backoff
            end;
            go (tries - 1) (2 * backoff)
      end
    in
    let batch = go p.max_refill_attempts 1 in
    p.refills <- p.refills + 1;
    p.generated_coins <- p.generated_coins + batch.CG.m;
    p.ba_iterations <- p.ba_iterations + batch.CG.ba_iterations;
    let fresh = List.init batch.CG.m (fun h -> CG.coin batch h) in
    p.coins <- p.coins @ fresh;
    Log.info (fun f ->
        f "refill %d: +%d coins (spent %d seed), %d now available" p.refills
          batch.CG.m batch.CG.seed_coins_consumed (available p))

  let refresh p =
    Trace.span Trace.Protocol "pool.refresh" @@ fun () ->
    (* Reserve a seed budget up front: the refresh batch size must be
       fixed before any seed coin is consumed, so the reserve coins fuel
       the run and skip this round's re-randomization. *)
    let rec split k acc rest =
      match (k, rest) with
      | 0, _ | _, [] -> (List.rev acc, rest)
      | k, c :: tl -> split (k - 1) (c :: acc) tl
    in
    let reserve, to_refresh = split p.refill_threshold [] p.coins in
    if to_refresh = [] then ()
    else begin
      p.coins <- reserve;
      match
        with_sentinel p (fun () ->
            R.run ~adversary:(p.adversary p.refills)
              ?max_ba_iterations:(Some p.max_ba_iterations) ~prng:p.prng
              ~oracle:(fun () -> expose_next p ~for_seed:true)
              to_refresh)
      with
      | None ->
          (* Agreement never succeeded; put the coins back unrefreshed. *)
          p.coins <- p.coins @ to_refresh;
          starve p "refresh batch failed repeatedly"
      | Some refreshed ->
          p.refreshes <- p.refreshes + 1;
          p.coins <- p.coins @ refreshed;
          Log.info (fun f ->
              f "refresh %d: re-randomized %d coins, %d now available"
                p.refreshes (List.length refreshed) (available p))
    end

  (* Rising suspected-corruption count triggers an early proactive
     refresh: shares an intruder harvested through the players it now
     stands accused of controlling go stale immediately, instead of at
     the next scheduled epoch boundary. Fires once per quarantine-count
     increase; passive ledgers (threshold None) never quarantine, so
     this never fires for them. *)
  let refresh_on_suspicion p =
    match p.ledger with
    | None -> ()
    | Some ledger ->
        let q = Sentinel.Ledger.quarantined_count ledger in
        if q > p.quarantine_mark then begin
          p.quarantine_mark <- q;
          Log.info (fun f ->
              f "quarantine count rose to %d: early proactive refresh" q);
          refresh p
        end

  (* Pending-demand signal from a long-running consumer (the beacon
     daemon): refill ahead of the vend path so the next [upcoming] draws
     are served from stock instead of paying Coin-Gen latency inline at
     an epoch close. Each refill strictly grows the pool (batch_size >=
     2 * refill_threshold and a run spends at most threshold seed
     coins), so the loop terminates; the bound is belt and braces
     against a pathological adversary hook. *)
  let prefetch p ~upcoming =
    guard_safe_mode p;
    let rec go budget =
      if budget > 0 && headroom p < upcoming then begin
        let before = available p in
        refill p;
        if available p > before then go (budget - 1)
      end
    in
    go 64

  let draw_kary p =
    Trace.span Trace.Protocol "pool.draw" @@ fun () ->
    guard_safe_mode p;
    (* The suspicion-triggered refresh runs before the refill check: it
       burns seed coins out of the reserve, so a refresh that drains the
       stock to the threshold is replenished right here instead of
       starving the next refill's Coin-Gen mid-run. *)
    refresh_on_suspicion p;
    if available p <= p.refill_threshold then refill p;
    expose_next p ~for_seed:false

  let draw_bit p =
    guard_safe_mode p;
    match p.bit_buffer with
    | b :: rest ->
        p.bit_buffer <- rest;
        b
    | [] ->
        let v = draw_kary p in
        let bits = Array.to_list (F.to_bits v) in
        (match bits with
        | b :: rest ->
            p.bit_buffer <- rest;
            b
        | [] -> assert false (* k_bits >= 1 *))

  let stats p =
    {
      refills = p.refills;
      refreshes = p.refreshes;
      dealer_coins = p.dealer_coins;
      generated_coins = p.generated_coins;
      seed_coins_consumed = p.seed_coins_consumed;
      coins_exposed = p.coins_exposed;
      ba_iterations = p.ba_iterations;
      unanimity_failures = p.unanimity_failures;
      refill_attempts = p.refill_attempts;
      backoff_rounds = p.backoff_rounds;
    }

  let magic = 0xD9B6
  let snapshot_version = 3
  let oldest_readable_version = 2

  (* Snapshot layout: a header of magic (u16), version (u8), payload
     length (u32) and CRC-32 of the payload (u32), then the payload —
     pool parameters, stats counters, the sealed coins, and (since v3) a
     sentinel-ledger section: a presence flag (u8), then per player the
     evidence counts in [Sentinel.all_kinds] order (u32 each). v2
     snapshots — the same payload without the ledger section — are still
     read; they restore with a fresh ledger. The header lets [load]
     reject truncated, corrupted or alien bytes with a clean
     [Corrupt_snapshot] before any payload decoding runs. *)
  let save p =
    let w = Wire.Writer.create () in
    Wire.Writer.u16 w p.n;
    Wire.Writer.u16 w p.fault_bound;
    List.iter
      (fun v -> Wire.Writer.u32 w v)
      [
        p.refills; p.refreshes; p.dealer_coins; p.generated_coins;
        p.seed_coins_consumed; p.coins_exposed; p.ba_iterations;
        p.unanimity_failures; p.refill_attempts; p.backoff_rounds;
      ];
    Wire.Writer.u16 w (List.length p.coins);
    List.iter (fun c -> C.write w c) p.coins;
    (match p.ledger with
    | None -> Wire.Writer.u8 w 0
    | Some ledger ->
        Wire.Writer.u8 w 1;
        Array.iter
          (fun row -> Array.iter (fun c -> Wire.Writer.u32 w c) row)
          (Sentinel.Ledger.dump ledger));
    let payload = Wire.Writer.contents w in
    let header = Wire.Writer.create () in
    Wire.Writer.u16 header magic;
    Wire.Writer.u8 header snapshot_version;
    Wire.Writer.u32 header (Bytes.length payload);
    Wire.Writer.u32 header (Wire.Crc32.digest payload);
    Wire.Writer.raw header payload;
    Wire.Writer.contents header

  let corrupt msg = raise (Corrupt_snapshot ("Pool.load: " ^ msg))

  (* Header-stage failures know nothing but the byte count; that much
     still lands in the message for the post-mortem. *)
  let corrupt_header bytes msg =
    corrupt (Printf.sprintf "%s [bytes=%d]" msg (Bytes.length bytes))

  let checked_payload bytes =
    if Bytes.length bytes < 11 then corrupt_header bytes "truncated header";
    let r = Wire.Reader.of_bytes bytes in
    if Wire.Reader.u16 r <> magic then corrupt_header bytes "bad magic";
    let version = Wire.Reader.u8 r in
    if version < oldest_readable_version || version > snapshot_version then
      corrupt_header bytes (Printf.sprintf "unsupported version %d" version);
    let len = Wire.Reader.u32 r in
    if Bytes.length bytes <> 11 + len then
      corrupt_header bytes "payload length mismatch";
    let crc = Wire.Reader.u32 r in
    let payload = Wire.Reader.raw r len in
    if Wire.Crc32.digest payload <> crc then
      corrupt_header bytes "checksum mismatch";
    (version, payload)

  let load ?(adversary = fun _ -> CG.honest_adversary)
      ?(expose_behavior = fun _ _ -> CE.Honest) ?(max_ba_iterations = 64)
      ?(ba_flavor = `Phase_king) ?(max_refill_attempts = 5)
      ?(sentinel = Some Sentinel.passive) ~prng ~batch_size ~refill_threshold
      bytes =
    let version, payload = checked_payload bytes in
    let n, fault_bound, counters, coins, saved_counts =
      (* The checksum has vouched for the bytes, so any decode failure
         here still means corruption (e.g. of the CRC field itself along
         with a compensating payload flip is out of scope — but a buggy
         writer is not): surface it as [Corrupt_snapshot], never a raw
         decode exception. *)
      match
        let r = Wire.Reader.of_bytes payload in
        let n = Wire.Reader.u16 r in
        let fault_bound = Wire.Reader.u16 r in
        let counters = Array.init 10 (fun _ -> Wire.Reader.u32 r) in
        let count = Wire.Reader.u16 r in
        let coins = List.init count (fun _ -> C.read r) in
        let saved_counts =
          (* The v3 ledger section; v2 payloads end at the coins. *)
          if version < 3 then None
          else
            match Wire.Reader.u8 r with
            | 0 -> None
            | 1 ->
                Some
                  (Array.init n (fun _ ->
                       Array.init
                         (List.length Sentinel.all_kinds)
                         (fun _ -> Wire.Reader.u32 r)))
            | _ -> failwith "bad ledger flag"
        in
        Wire.Reader.expect_end r;
        (n, fault_bound, counters, coins, saved_counts)
      with
      | decoded -> decoded
      | exception _ ->
          corrupt
            (Printf.sprintf "undecodable payload [bytes=%d]"
               (Bytes.length bytes))
    in
    let with_stats msg =
      Printf.sprintf
        "%s [refills=%d refill_attempts=%d backoff_rounds=%d coins=%d]" msg
        counters.(0) counters.(8) counters.(9) (List.length coins)
    in
    List.iter
      (fun c ->
        if c.C.n <> n || c.C.fault_bound <> fault_bound then
          corrupt (with_stats "coin parameters inconsistent"))
      coins;
    if refill_threshold < 2 then
      invalid_arg "Pool.load: refill_threshold must be >= 2";
    if batch_size < 2 * refill_threshold then
      invalid_arg "Pool.load: batch_size must be >= 2 * refill_threshold";
    if max_refill_attempts < 1 then
      invalid_arg "Pool.load: max_refill_attempts must be >= 1";
    let ledger =
      (* The caller's sentinel config governs; persisted evidence counts
         rehydrate it (quarantine recomputed from the scores), and a
         [None] config discards them. v2 snapshots restore fresh. *)
      Option.map
        (fun config ->
          match saved_counts with
          | Some counts when Array.length counts = n ->
              Sentinel.Ledger.of_counts ~config counts
          | _ -> Sentinel.Ledger.create ~config ~n ())
        sentinel
    in
    {
      prng;
      n;
      fault_bound;
      batch_size;
      refill_threshold;
      adversary;
      expose_behavior;
      max_ba_iterations;
      ba_flavor;
      max_refill_attempts;
      ledger;
      quarantine_mark =
        (match ledger with
        | None -> 0
        | Some l -> Sentinel.Ledger.quarantined_count l);
      coins;
      bit_buffer = [];
      refills = counters.(0);
      refreshes = counters.(1);
      dealer_coins = counters.(2);
      generated_coins = counters.(3);
      seed_coins_consumed = counters.(4);
      coins_exposed = counters.(5);
      ba_iterations = counters.(6);
      unanimity_failures = counters.(7);
      refill_attempts = counters.(8);
      backoff_rounds = counters.(9);
    }

  let restore = load
end
