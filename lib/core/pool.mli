(** The bootstrap coin pool (Fig. 1 and Section 1.2).

    "An initial distributed seed is generated via some known, not
    necessarily fast protocol. Then the generator is run to produce as
    many coins as the current execution of the application needs, plus
    another (distributed) seed. [...] Once the number of remaining coins
    drops beneath a certain level, a new batch is generated exploiting
    the (small amount of) remaining coins."

    The pool holds sealed coins. Setup obtains [initial_seed] coins from
    the trusted dealer (used {e once}, the paper's contrast with [Rab83]
    where the dealer must keep supplying coins). Every draw exposes one
    coin via {!Coin_expose}; when availability drops to the refill
    threshold, the pool runs {!Coin_gen} — whose seed-coin oracle draws
    from the pool itself — and deposits the fresh batch. The mechanism is
    self-sufficient from then on: an adaptive, demand-driven generator of
    unboundedly many shared coins.

    Proactive settings ("intruders are allowed to move over time",
    Section 1.2) are supported by supplying a per-refill adversary: each
    batch generation can face a different corrupted set. *)

module Make (F : Field_intf.S) : sig
  module C : module type of Sealed_coin.Make (F)
  module CG : module type of Coin_gen.Make (F)
  module CE : module type of Coin_expose.Make (F)

  type t

  exception Starved of string
  (** Raised when a refill cannot complete (the pool ran out of seed
      coins mid-generation, or the retry budget of
      [max_refill_attempts] Coin-Gen runs — with exponential backoff
      between them — was exhausted) — with a sane [refill_threshold]
      this is a probability-negligible event. The message embeds a
      stats snapshot ([refills], [refill_attempts], [backoff_rounds],
      coins remaining) so post-mortems don't need a debugger. *)

  exception Corrupt_snapshot of string
  (** Raised by {!load} on bytes that are not an intact snapshot:
      truncated, bit-flipped (checksum mismatch), wrong magic or
      version, or an undecodable payload. Distinct from
      [Invalid_argument], which {!load} reserves for bad {e parameters}
      passed alongside intact bytes. Messages embed what is known at
      the failing stage: the byte count for header-level rejections,
      and the decoded stats counters once the payload has been read. *)

  exception Safe_mode of string
  (** Raised by {!draw_kary}/{!draw_bit} when the sentinel ledger's
      evidence implies more than [t] corrupted players — the fault
      assumption underpinning reconstruction is void, so the pool
      refuses to vend possibly-biased randomness. The message carries
      the full per-player suspicion table as a diagnostic report. Only
      an {e active} ledger config ({!Sentinel.active}) can trigger
      this. *)

  type stats = {
    refills : int;
    refreshes : int;  (** pro-active share-refresh epochs performed *)
    dealer_coins : int;  (** coins obtained from the trusted dealer (setup only) *)
    generated_coins : int;  (** sealed coins produced by Coin-Gen runs *)
    seed_coins_consumed : int;  (** coins spent to fuel Coin-Gen runs *)
    coins_exposed : int;  (** coins consumed by the application *)
    ba_iterations : int;
    unanimity_failures : int;
        (** exposures where honest players decoded differently or failed
            (bounded by [M n 2^-k]); the majority value is still
            returned. *)
    refill_attempts : int;
        (** Coin-Gen runs attempted across all refills (>= [refills]:
            failed runs are retried after a backoff). *)
    backoff_rounds : int;
        (** idle rounds spent backing off between failed refill
            attempts (1, 2, 4, ... per refill). *)
  }

  val create :
    ?adversary:(int -> CG.adversary) ->
    ?expose_behavior:(int -> int -> CE.sender_behavior) ->
    ?max_ba_iterations:int ->
    ?ba_flavor:[ `Phase_king | `Common_coin ] ->
    ?max_refill_attempts:int ->
    ?sentinel:Sentinel.config option ->
    prng:Prng.t ->
    n:int ->
    t:int ->
    batch_size:int ->
    refill_threshold:int ->
    initial_seed:int ->
    unit ->
    t
  (** [adversary refill_number] gives the Byzantine strategy faced by
      the [refill_number]-th Coin-Gen run (default: all honest) — the
      hook for mobile/proactive fault experiments. [expose_behavior
      refill_epoch player] shapes exposure-time lying. Requires
      [initial_seed > refill_threshold >= 2] and [batch_size] at least
      twice the threshold so each batch strictly grows the pool.

      [ba_flavor] selects the agreement protocol inside Coin-Gen runs.
      The default [`Phase_king] is the paper's simplifying assumption
      ("we shall assume in this presentation that deterministic BA is
      carried out"). [`Common_coin] implements the alternative the paper
      sketches in Section 1.2: a randomized BA whose common coins are
      drawn {e from this very pool} ("the coins needed by the BA
      protocol must be taken into consideration when setting the level
      of coins needed for the bootstrapping mechanism") — the extra
      draws come out of the seed reserve, so pick [refill_threshold]
      one or two coins higher. A faulty player's BA strategy maps from
      its phase-king behaviour (Arbitrary degrades to Silent).

      [max_refill_attempts] (default 5) bounds the Coin-Gen retries per
      refill: a failed run is retried after an exponentially growing
      idle backoff (1, 2, 4, ... rounds, charged to the ambient round
      counter) before {!Starved} is raised.

      [sentinel] configures the fault-attribution ledger installed
      around every protocol run the pool drives (exposures, refills,
      refreshes). The default [Some Sentinel.passive] records evidence
      without ever acting on it — runs are bit-identical to
      [~sentinel:None], which disables the ledger entirely. An active
      config ([Some (Sentinel.active ())]) quarantines players whose
      suspicion score crosses the threshold: they are dropped from
      Coin-Expose subset selection and Coin-Gen leader rotation, a
      rising quarantine count triggers an early proactive {!refresh},
      and more than [t] quarantined players puts draws into
      {!Safe_mode}. *)

  val available : t -> int
  (** Sealed coins currently in the pool. *)

  val refill_threshold : t -> int
  (** The refill watermark this pool was created/loaded with. *)

  val headroom : t -> int
  (** [available - refill_threshold]: how many draws the pool can serve
      before a draw pays a Coin-Gen refill inline. The beacon's
      admission control treats [headroom <= 0] as pool pressure. *)

  val prefetch : t -> upcoming:int -> unit
  (** Pending-demand signal: refill (possibly repeatedly) until
      {!headroom} covers the next [upcoming] draws, so a long-running
      consumer can pay refill latency between vends instead of inside
      one. No-op when the headroom already suffices.
      @raise Starved as {!draw_kary} would, if a refill fails.
      @raise Safe_mode as {!draw_kary} would. *)

  val draw_kary : t -> F.t
  (** Expose the next coin; triggers a refill first when the pool is at
      the threshold. The returned value is what the honest players
      jointly reconstructed. *)

  val draw_bit : t -> bool
  (** One binary coin. A single k-ary coin funds [k_bits] of these
      (Section 3.1: "each coin generates in fact 'k' random coins"), so
      bits are buffered and only occasionally consume a sealed coin. *)

  val refresh : t -> unit
  (** Pro-active epoch boundary: re-randomize the shares of every
      sealed coin in stock (see {!Refresh}), so shares an intruder
      stole before this point cannot be combined with shares stolen
      after it. A small seed reserve ([refill_threshold] coins) fuels
      the refresh batch and skips this round's re-randomization; the
      refresh run faces [adversary] just like a refill.
      @raise Starved if the reserve runs out mid-refresh. *)

  val stats : t -> stats

  val ledger : t -> Sentinel.Ledger.t option
  (** The pool's sentinel ledger, if one was configured — the
      suspicion/quarantine table behind [dprbg pool --suspects]. *)

  val save : t -> bytes
  (** Serialize the pool's durable state — the sealed coins and the
      ledger counters. The PRNG position, adversary hooks and bit buffer
      are {e not} saved: a restored pool continues with the randomness
      and behaviours given to {!restore}. (In a deployment each player
      persists only its own shares; the simulator saves the global
      state.) *)

  val load :
    ?adversary:(int -> CG.adversary) ->
    ?expose_behavior:(int -> int -> CE.sender_behavior) ->
    ?max_ba_iterations:int ->
    ?ba_flavor:[ `Phase_king | `Common_coin ] ->
    ?max_refill_attempts:int ->
    ?sentinel:Sentinel.config option ->
    prng:Prng.t ->
    batch_size:int ->
    refill_threshold:int ->
    bytes ->
    t
  (** Rebuild a pool from {!save}d state — how a crashed player
      recovers, and how the service restarts, without a new
      trusted-dealer setup. The snapshot carries a version header and a
      CRC-32 of its payload; verification happens before any decoding.
      Current snapshots are v3 (they carry the sentinel ledger's
      evidence counts); v2 snapshots are still read and restore with a
      fresh ledger. The persisted counts rehydrate whatever [sentinel]
      config the caller passes — quarantine flags are recomputed from
      the scores — and are discarded under [~sentinel:None].
      @raise Corrupt_snapshot on bytes that are not an intact snapshot
      (any single bit flip or truncation is detected).
      @raise Invalid_argument on bad parameters ([refill_threshold],
      [batch_size], [max_refill_attempts]) accompanying intact bytes. *)

  val restore :
    ?adversary:(int -> CG.adversary) ->
    ?expose_behavior:(int -> int -> CE.sender_behavior) ->
    ?max_ba_iterations:int ->
    ?ba_flavor:[ `Phase_king | `Common_coin ] ->
    ?max_refill_attempts:int ->
    ?sentinel:Sentinel.config option ->
    prng:Prng.t ->
    batch_size:int ->
    refill_threshold:int ->
    bytes ->
    t
  (** Alias of {!load}, kept for callers of the pre-checksum API. *)
end
