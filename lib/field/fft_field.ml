(* GF(q^l) with NTT-based multiplication — the paper's special field.

   Elements are coefficient vectors of length l over Z_q (int arrays,
   canonical residues). The modulus is the binomial x^l - c, c a
   primitive root of Z_q, so reducing a product is one linear pass. *)

module type PARAM = sig
  val k : int
end

module Make (P : PARAM) = struct
  let () = if P.k < 1 then invalid_arg "Fft_field.Make: k must be >= 1"

  let bits_of v =
    let rec go v acc = if v = 0 then acc else go (v / 2) (acc + 1) in
    go v 0

  (* Smallest l (power of two, >= 2) whose field reaches 2^k, together
     with the matching prime q = 1 (mod 2l). *)
  let l, q =
    let rec choose l =
      let m = 2 * l in
      let q = Zp.next_prime_in_progression ~a:(m + 1) ~d:m in
      let bits_per_coord = bits_of q - 1 in
      if l * bits_per_coord >= P.k then (l, q) else choose (2 * l)
    in
    choose 2

  let tbl = Zq_table.Tables.make ~q
  let c = Zq_table.Tables.generator tbl
  let ntt_plan = Ntt.plan tbl ~m:(2 * l)

  type t = int array (* length l, residues mod q *)

  let name = Printf.sprintf "GF(%d^%d) fft" q l
  let k_bits = l * (bits_of q - 1)
  let bytes_per_coord = (bits_of (q - 1) + 7) / 8
  let byte_size = l * bytes_per_coord

  let zero = Array.make l 0

  let one =
    let a = Array.make l 0 in
    a.(0) <- 1;
    a

  let equal = ( = )
  let compare = compare
  let hash a = Hashtbl.hash a

  let repr a = a

  let of_repr a =
    assert (Array.length a = l && Array.for_all (fun x -> x >= 0 && x < q) a);
    a

  let add a b =
    Metrics.tick_adds 1;
    Array.init l (fun i -> Zq_table.Tables.add tbl a.(i) b.(i))

  let sub a b =
    Metrics.tick_adds 1;
    Array.init l (fun i -> Zq_table.Tables.sub tbl a.(i) b.(i))

  let neg a =
    Metrics.tick_adds 1;
    Array.init l (fun i -> Zq_table.Tables.neg tbl a.(i))

  let mul a b =
    Metrics.tick_mults 1;
    let prod = Ntt.convolve ntt_plan a b in
    (* Reduce modulo x^l - c: x^(l+i) = c * x^i. *)
    Array.init l (fun i ->
        if i + l < Array.length prod then
          Zq_table.Tables.add tbl prod.(i)
            (Zq_table.Tables.mul tbl c prod.(i + l))
        else prod.(i))

  (* Polynomial helpers over Z_q for the inverse's extended Euclid;
     degrees never exceed l, so the quadratic cost is irrelevant. *)
  let pdeg a =
    let rec go i = if i < 0 then -1 else if a.(i) <> 0 then i else go (i - 1) in
    go (Array.length a - 1)

  let inv a =
    if pdeg a < 0 then raise Division_by_zero;
    Metrics.tick_invs 1;
    let width = l + 1 in
    let widen src =
      let d = Array.make width 0 in
      Array.blit src 0 d 0 (Array.length src);
      d
    in
    let modulus =
      let f = Array.make width 0 in
      f.(0) <- Zq_table.Tables.neg tbl c;
      f.(l) <- 1;
      f
    in
    (* r0 - coef * x^shift * r1, in place on (r0, s0). *)
    let submul (r0, s0) (r1, s1) coef shift =
      for i = 0 to width - 1 - shift do
        r0.(i + shift) <-
          Zq_table.Tables.sub tbl r0.(i + shift) (Zq_table.Tables.mul tbl coef r1.(i));
        s0.(i + shift) <-
          Zq_table.Tables.sub tbl s0.(i + shift) (Zq_table.Tables.mul tbl coef s1.(i))
      done
    in
    let rec reduce (r0, s0) (r1, s1) d1 =
      let d0 = pdeg r0 in
      if d0 < d1 then (r0, s0)
      else begin
        let coef =
          Zq_table.Tables.mul tbl r0.(d0) (Zq_table.Tables.inv tbl r1.(d1))
        in
        submul (r0, s0) (r1, s1) coef (d0 - d1);
        reduce (r0, s0) (r1, s1) d1
      end
    in
    let rec go (r0, s0) (r1, s1) =
      let d1 = pdeg r1 in
      if d1 < 0 then begin
        let d0 = pdeg r0 in
        assert (d0 = 0);
        (* Normalize the gcd to 1. *)
        let scale = Zq_table.Tables.inv tbl r0.(0) in
        Array.init l (fun i -> Zq_table.Tables.mul tbl scale s0.(i))
      end
      else
        let r, s = reduce (r0, s0) (r1, s1) d1 in
        go (r1, s1) (r, s)
    in
    go (modulus, Array.make width 0) (widen a, widen one)

  let div a b = mul a (inv b)

  let pow x e =
    assert (e >= 0);
    let rec go acc base e =
      if e = 0 then acc
      else
        let acc = if e land 1 = 1 then mul acc base else acc in
        if e = 1 then acc else go acc (mul base base) (e lsr 1)
    in
    go one x e

  let of_int i =
    if i < 0 then invalid_arg (name ^ ".of_int: negative");
    let a = Array.make l 0 in
    let rec fill j v =
      if v <> 0 then begin
        if j >= l then invalid_arg (name ^ ".of_int: out of range");
        a.(j) <- v mod q;
        fill (j + 1) (v / q)
      end
    in
    fill 0 i;
    a

  let random g = Array.init l (fun _ -> Prng.int g q)

  let rec random_nonzero g =
    let a = random g in
    if pdeg a < 0 then random_nonzero g else a

  let lsb a = a.(0) land 1

  let bits_per_coord = bits_of q - 1

  let to_bits a =
    Array.init k_bits (fun i ->
        let coord = i / bits_per_coord and bit = i mod bits_per_coord in
        (a.(coord) lsr bit) land 1 = 1)

  let to_bytes a =
    let b = Bytes.create byte_size in
    Array.iteri
      (fun i coord ->
        Field_bytes.encode_int b ~off:(i * bytes_per_coord)
          ~width:bytes_per_coord coord)
      a;
    b

  let of_bytes b =
    Field_bytes.check_length name b byte_size;
    Array.init l (fun i ->
        let v =
          Field_bytes.decode_int b ~off:(i * bytes_per_coord)
            ~width:bytes_per_coord
        in
        if v >= q then invalid_arg (name ^ ".of_bytes: non-canonical residue");
        v)

  let to_string a =
    String.concat "," (Array.to_list (Array.map string_of_int a))

  let pp ppf a = Format.pp_print_string ppf (to_string a)

  (* Batch multipoint kernel. The protocol grid points of_int(1..n) are
     scalars (coordinates 1..l-1 zero, since i+1 < q in every supported
     deployment), and evaluating a vector-coefficient polynomial at a
     scalar splits into l independent scalar polynomial evaluations
     over Z_q — one per coordinate — each served by the raw table
     kernel (finite differences on the AP grid) or, for large non-AP
     scalar point sets, by the NTT subproduct tree amortized across the
     l * M scalar polynomials of the batch. Non-scalar points fall back
     to raw Horner with unticked NTT products. No Metrics ticks
     anywhere; callers account model cost in bulk. *)
  let batch_eval =
    let raw_mul a b =
      let prod = Ntt.convolve ntt_plan a b in
      Array.init l (fun i ->
          if i + l < Array.length prod then
            Zq_table.Tables.add tbl prod.(i)
              (Zq_table.Tables.mul tbl c prod.(i + l))
          else prod.(i))
    in
    let raw_add a b =
      Array.init l (fun i -> Zq_table.Tables.add tbl a.(i) b.(i))
    in
    let is_scalar x =
      let ok = ref true in
      for i = 1 to l - 1 do
        if x.(i) <> 0 then ok := false
      done;
      !ok
    in
    Some
      (fun css xs ->
        let n = Array.length xs in
        let m = Array.length css in
        if n = 0 then Array.map (fun _ -> [||]) css
        else if not (Array.for_all is_scalar xs) then
          Array.map
            (fun cs ->
              let len = Array.length cs in
              Array.map
                (fun x ->
                  let acc = ref zero in
                  for d = len - 1 downto 0 do
                    acc := raw_add (raw_mul !acc x) cs.(d)
                  done;
                  !acc)
                xs)
            css
        else begin
          let sx = Array.map (fun x -> x.(0)) xs in
          let out =
            Array.init m (fun _ -> Array.init n (fun _ -> Array.make l 0))
          in
          let is_ap =
            n >= 2
            &&
            let ok = ref true in
            for i = 0 to n - 2 do
              let s = sx.(i) + 1 in
              let s = if s >= q then s - q else s in
              if sx.(i + 1) <> s then ok := false
            done;
            !ok
          in
          if n >= 64 && not is_ap then begin
            (* One subproduct tree, reused for all l*m scalar polys. *)
            let mp = Ntt.Multipoint.make tbl ~xs:sx in
            for r = 0 to l - 1 do
              for j = 0 to m - 1 do
                let cs_r = Array.map (fun cd -> cd.(r)) css.(j) in
                let vals = Ntt.Multipoint.eval mp cs_r in
                let row = out.(j) in
                for i = 0 to n - 1 do
                  row.(i).(r) <- vals.(i)
                done
              done
            done
          end
          else
            for r = 0 to l - 1 do
              let css_r =
                Array.map (fun cs -> Array.map (fun cd -> cd.(r)) cs) css
              in
              let vals = Zq_table.Tables.eval_batch tbl css_r sx in
              for j = 0 to m - 1 do
                let row = out.(j) and vr = vals.(j) in
                for i = 0 to n - 1 do
                  row.(i).(r) <- vr.(i)
                done
              done
            done;
          out
        end)
end

module GF_k64 = Make (struct let k = 64 end)
module GF_k128 = Make (struct let k = 128 end)
module GF_k256 = Make (struct let k = 256 end)
