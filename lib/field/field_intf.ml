(** The field abstraction every protocol in this repository is generic
    over.

    The paper works over a finite field of size [p ~ 2^k] where [k] is the
    security parameter: either [GF(2^k)] with naive [O(k^2)]-bit-operation
    multiplication, or the special Section-2 field [GF(q^l)] in which
    multiplication costs [O(k log k)] via discrete Fourier transforms.
    Both are provided (see {!Gf2k}, {!Gf2_wide}, {!Fft_field}), as well as
    prime fields used by the Feldman-VSS baseline and by the NTT.

    Protocol costs are stated in field operations, so every built-in
    implementation ticks {!Metrics} on each arithmetic operation; the
    ticks compile to a single branch when no measurement is active. *)

module type S = sig
  type t
  (** A field element. Values are immutable. *)

  val name : string
  (** Human-readable description, e.g. ["GF(2^32)"] or ["GF(97^16)"]. *)

  val k_bits : int
  (** Security parameter: [floor(log2 |F|)]. A uniformly random element
      carries at least [k_bits] bits of entropy. *)

  val byte_size : int
  (** Wire size of one serialized element, used for communication
      accounting. *)

  val zero : t
  val one : t

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t

  val inv : t -> t
  (** Multiplicative inverse. @raise Division_by_zero on {!zero}. *)

  val div : t -> t -> t
  (** [div a b = mul a (inv b)]. @raise Division_by_zero when [b] is
      {!zero}. *)

  val pow : t -> int -> t
  (** [pow x e] for [e >= 0] by square-and-multiply. *)

  val of_int : int -> t
  (** Canonical embedding of small non-negative integers. Injective on
      [0, 2^k_bits); in particular [of_int 1 .. of_int n] give the [n]
      distinct non-zero evaluation points used for player ids. *)

  val random : Prng.t -> t
  (** Uniformly random element. *)

  val random_nonzero : Prng.t -> t

  val lsb : t -> int
  (** The "mod 2" of an element (Fig. 6 step 3 derives the binary coin as
      [F(0) mod 2]). For [GF(2^k)] this is the constant bit; for
      [GF(q^l)] the parity of the constant coefficient. *)

  val to_bits : t -> bool array
  (** [k_bits] near-uniform bits extracted from a uniform element (a
      [k]-ary coin yields [k] binary coins, Section 3.1 of the paper). *)

  val to_bytes : t -> bytes
  (** Canonical wire encoding, exactly {!byte_size} bytes
      (little-endian). [to_bytes] / {!of_bytes} round-trip. *)

  val of_bytes : bytes -> t
  (** Decode a canonical encoding.
      @raise Invalid_argument on wrong length or a non-canonical value
      (e.g. a residue [>= p]). *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string

  val batch_eval : (t array array -> t array -> t array array) option
  (** Optional batch multipoint-evaluation kernel. When [Some eval],
      [eval css xs] returns [out] with [out.(j).(i) = p_j(xs.(i))],
      where [p_j] is the polynomial with coefficient vector [css.(j)]
      (low-to-high degree; trailing zeros allowed; the empty vector is
      the zero polynomial). The values must be bit-identical to Horner
      evaluation — fields are exact, so "fast" may never mean
      "approximate". The kernel draws no randomness and performs no
      {!Metrics} ticks of its own: callers run it under
      [Metrics.without_counting] and account the model cost (the ticks
      the Horner path would have made) in bulk, keeping the paper's
      cost-model parity. [None] means the field has no fast kernel and
      callers fall back to per-point Horner. *)
end
