(* GF(2^k) for arbitrary k: polynomials over GF(2) packed into arrays of
   32-bit limbs (little-endian). 32-bit limbs keep all intermediate shift
   results comfortably inside OCaml's 63-bit native ints. *)

module Bits = struct
  let limb_bits = 32
  let limb_mask = 0xFFFFFFFF

  type t = int array

  let create nlimbs = Array.make nlimbs 0
  let copy = Array.copy

  let get a i =
    let q = i / limb_bits and r = i mod limb_bits in
    if q >= Array.length a then false else (a.(q) lsr r) land 1 = 1

  let set a i =
    let q = i / limb_bits and r = i mod limb_bits in
    a.(q) <- a.(q) lor (1 lsl r)

  let is_zero a = Array.for_all (fun limb -> limb = 0) a

  let degree a =
    let rec limb j =
      if j < 0 then -1
      else if a.(j) = 0 then limb (j - 1)
      else
        let rec bit i = if (a.(j) lsr i) land 1 = 1 then i else bit (i - 1) in
        (j * limb_bits) + bit (limb_bits - 1)
    in
    limb (Array.length a - 1)

  (* dst ^= src << s. dst must be long enough. *)
  let xor_shift dst src s =
    let q = s / limb_bits and r = s mod limb_bits in
    let n = Array.length src in
    if r = 0 then
      for j = 0 to n - 1 do
        if src.(j) <> 0 then dst.(j + q) <- dst.(j + q) lxor src.(j)
      done
    else
      for j = 0 to n - 1 do
        if src.(j) <> 0 then begin
          dst.(j + q) <- dst.(j + q) lxor ((src.(j) lsl r) land limb_mask);
          dst.(j + q + 1) <- dst.(j + q + 1) lxor (src.(j) lsr (limb_bits - r))
        end
      done

  (* Reduce a in place modulo f (degree df, df >= 0), top-down. *)
  let reduce a f df =
    let rec go pos =
      if pos >= df then begin
        if get a pos then xor_shift a f (pos - df);
        go (pos - 1)
      end
    in
    go (degree a)

  let equal = ( = )
end

let prime_factors n =
  let rec go n d acc =
    if n = 1 then List.rev acc
    else if d * d > n then List.rev (n :: acc)
    else if n mod d = 0 then
      let rec strip n = if n mod d = 0 then strip (n / d) else n in
      go (strip n) (d + 1) (d :: acc)
    else go n (d + 1) acc
  in
  go n 2 []

module type PARAM = sig
  val k : int
end

module type S = sig
  include Field_intf.S

  val modulus_bits : int list
  val of_repr : int array -> t
  val repr : t -> int array
  val mul_schoolbook : t -> t -> t
  val mul_karatsuba : t -> t -> t

  module Sliced : sig
    type elt
    type t

    val lanes : int
    val count : t -> int
    val slice : elt array -> t
    val unslice : t -> elt array
    val mul : t -> t -> t
    val add : t -> t -> t
  end
  with type elt := t
end

module Make (P : PARAM) = struct
  let () = if P.k < 1 then invalid_arg "Gf2_wide.Make: k must be >= 1"

  let k_bits = P.k
  let name = Printf.sprintf "GF(2^%d) wide" P.k
  let byte_size = (P.k + 7) / 8

  (* Limb counts: elements occupy [nlimbs]; products and the modulus need
     scratch up to [2k] bits. *)
  let nlimbs = ((P.k - 1) / Bits.limb_bits) + 1
  let scratch_limbs = (2 * nlimbs) + 2

  type t = Bits.t (* exactly [nlimbs] limbs, degree < k *)

  (* Raw multiply-mod against an arbitrary modulus [f] of degree [df]:
     schoolbook carryless product into a scratch buffer, then top-down
     reduction. Used both for field multiplication and, during functor
     application, inside Rabin's irreducibility test on candidates. *)
  let raw_mul_mod f df width a b =
    let acc = Bits.create scratch_limbs in
    let n = Array.length a in
    for j = 0 to n - 1 do
      let limb = a.(j) in
      if limb <> 0 then
        for i = 0 to Bits.limb_bits - 1 do
          if (limb lsr i) land 1 = 1 then
            Bits.xor_shift acc b ((j * Bits.limb_bits) + i)
        done
    done;
    Bits.reduce acc f df;
    Array.sub acc 0 width

  let raw_mod f df a =
    let acc = Bits.create (max (Array.length a) (Array.length f)) in
    Bits.xor_shift acc a 0;
    Bits.reduce acc f df;
    acc

  let rec raw_gcd a b =
    if Bits.is_zero b then a else raw_gcd b (raw_mod b (Bits.degree b) a)

  let is_one a = Bits.degree a = 0 (* nonzero constant = 1 over GF(2) *)

  let is_irreducible f =
    let df = Bits.degree f in
    assert (df >= 1);
    let x =
      let a = Bits.create (Array.length f) in
      Bits.set a 1;
      raw_mod f df a
    in
    let iterate_frobenius i =
      let width = Array.length f in
      let rec go i r = if i = 0 then r else go (i - 1) (raw_mul_mod f df width r r) in
      go i x
    in
    Bits.equal (iterate_frobenius df) x
    && List.for_all
         (fun p ->
           let d = iterate_frobenius (df / p) in
           let diff = Bits.copy d in
           Bits.xor_shift diff x 0;
           is_one (raw_gcd f diff))
         (prime_factors df)

  (* The modulus: smallest irreducible of degree k. Candidates are
     x^k + (low bits), enumerated by increasing low part, so the winner
     is low-weight and reduction stays cheap. *)
  let modulus, modulus_degree =
    let f = Bits.create (nlimbs + 1) in
    Bits.set f P.k;
    let rec bump i =
      (* Increment the low part of f, binary-counter style. *)
      if Bits.get f i then begin
        f.(i / Bits.limb_bits) <- f.(i / Bits.limb_bits) lxor (1 lsl (i mod Bits.limb_bits));
        bump (i + 1)
      end
      else Bits.set f i
    in
    let rec search () =
      if is_irreducible f then f
      else begin
        bump 0;
        if Bits.degree f > P.k then invalid_arg "Gf2_wide: no irreducible found";
        search ()
      end
    in
    let f = search () in
    (f, P.k)

  let modulus_bits =
    let rec collect i acc =
      if i < 0 then List.rev acc
      else collect (i - 1) (if Bits.get modulus i then i :: acc else acc)
    in
    collect P.k []

  let zero = Bits.create nlimbs
  let one =
    let a = Bits.create nlimbs in
    Bits.set a 0;
    a

  let equal = Bits.equal
  let compare = compare
  let hash a = Hashtbl.hash a

  let of_repr a =
    assert (Array.length a = nlimbs);
    a

  let repr a = a

  let add a b =
    Metrics.tick_adds 1;
    Array.init nlimbs (fun i -> a.(i) lxor b.(i))

  let sub = add

  let neg a =
    Metrics.tick_adds 1;
    Bits.copy a

  let mul_schoolbook a b =
    Metrics.tick_mults 1;
    raw_mul_mod modulus modulus_degree nlimbs a b

  let inv a =
    if Bits.is_zero a then raise Division_by_zero;
    Metrics.tick_invs 1;
    (* Extended Euclid over GF(2)[x]; invariant r_i = s_i * a (mod modulus). *)
    let width = nlimbs + 3 in
    let widen src =
      let d = Bits.create width in
      Bits.xor_shift d src 0;
      d
    in
    let rec divstep r0 s0 r1 s1 dr1 =
      let d = Bits.degree r0 - dr1 in
      if d < 0 then (r0, s0)
      else begin
        Bits.xor_shift r0 r1 d;
        Bits.xor_shift s0 s1 d;
        divstep r0 s0 r1 s1 dr1
      end
    in
    let rec go r0 s0 r1 s1 =
      if Bits.is_zero r1 then begin
        assert (is_one r0);
        Array.sub s0 0 nlimbs
      end
      else
        let r, s = divstep r0 s0 r1 s1 (Bits.degree r1) in
        go r1 s1 r s
    in
    go (widen modulus) (Bits.create width) (widen a) (widen one)

  (* Karatsuba carryless multiplication on limb arrays. [clmul] returns
     the unreduced product of two GF(2) polynomials given as limb
     vectors; the recursion bottoms out on the schoolbook loop once
     operands fit a couple of words. *)
  let clmul_school a b =
    let la = Array.length a and lb = Array.length b in
    let out = Bits.create (la + lb + 1) in
    for j = 0 to la - 1 do
      let limb = a.(j) in
      if limb <> 0 then
        for i = 0 to Bits.limb_bits - 1 do
          if (limb lsr i) land 1 = 1 then
            Bits.xor_shift out b ((j * Bits.limb_bits) + i)
        done
    done;
    out

  let xor_into dst src limb_offset =
    Array.iteri
      (fun j v -> if v <> 0 then dst.(j + limb_offset) <- dst.(j + limb_offset) lxor v)
      src

  let rec clmul a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then Bits.create 1
    else if min la lb <= 2 then clmul_school a b
    else begin
      let h = (max la lb + 1) / 2 in
      let lo x = Array.sub x 0 (min h (Array.length x)) in
      let hi x =
        if Array.length x <= h then [||]
        else Array.sub x h (Array.length x - h)
      in
      let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
      let z0 = clmul a0 b0 in
      let z2 = clmul a1 b1 in
      let xor_pad x y =
        let l = max (Array.length x) (Array.length y) in
        Array.init l (fun j ->
            (if j < Array.length x then x.(j) else 0)
            lxor if j < Array.length y then y.(j) else 0)
      in
      let z1 = clmul (xor_pad a0 a1) (xor_pad b0 b1) in
      let out = Bits.create (la + lb + 1) in
      xor_into out z0 0;
      xor_into out z1 h;
      xor_into out z0 h;
      xor_into out z2 h;
      xor_into out z2 (2 * h);
      out
    end

  let mul_karatsuba a b =
    Metrics.tick_mults 1;
    let prod = clmul a b in
    Bits.reduce prod modulus modulus_degree;
    Array.sub prod 0 nlimbs

  (* Default multiplication: schoolbook up to 3 limbs, Karatsuba above.
     Measured on the bench E13 sweep: with the recursion bottoming out
     at 2 limbs, the three-way split starts winning at 4 limbs
     (k >= 97), ~1.2x at k = 128 and ~1.9x at k = 256; below that the
     split overhead loses to the plain loop. [mul_schoolbook] stays
     exported as the paper's naive O(k^2) reference. *)
  let karatsuba_limb_threshold = 4

  let mul = if nlimbs >= karatsuba_limb_threshold then mul_karatsuba
            else mul_schoolbook

  let div a b = mul a (inv b)

  let pow x e =
    assert (e >= 0);
    let rec go acc base e =
      if e = 0 then acc
      else
        let acc = if e land 1 = 1 then mul acc base else acc in
        if e = 1 then acc else go acc (mul base base) (e lsr 1)
    in
    go one x e

  let of_int i =
    if i < 0 then invalid_arg (name ^ ".of_int: negative");
    let a = Bits.create nlimbs in
    let rec fill j v =
      if v <> 0 then begin
        if j >= nlimbs then invalid_arg (name ^ ".of_int: out of range");
        a.(j) <- v land Bits.limb_mask;
        fill (j + 1) (v lsr Bits.limb_bits)
      end
    in
    fill 0 i;
    if Bits.degree a >= P.k then invalid_arg (name ^ ".of_int: out of range");
    a

  let random g =
    let a = Array.init nlimbs (fun _ -> Prng.bits g Bits.limb_bits) in
    (* Mask the top limb down to k bits. *)
    let rem = P.k mod Bits.limb_bits in
    if rem <> 0 then a.(nlimbs - 1) <- a.(nlimbs - 1) land ((1 lsl rem) - 1);
    a

  let rec random_nonzero g =
    let a = random g in
    if Bits.is_zero a then random_nonzero g else a

  let lsb a = a.(0) land 1
  let to_bits a = Array.init P.k (fun i -> Bits.get a i)

  let to_bytes a =
    let b = Bytes.create byte_size in
    for j = 0 to byte_size - 1 do
      let limb = a.(j / 4) in
      Bytes.set_uint8 b j ((limb lsr (8 * (j mod 4))) land 0xFF)
    done;
    b

  let of_bytes b =
    Field_bytes.check_length name b byte_size;
    let a = Bits.create nlimbs in
    for j = 0 to byte_size - 1 do
      a.(j / 4) <- a.(j / 4) lor (Bytes.get_uint8 b j lsl (8 * (j mod 4)))
    done;
    if Bits.degree a >= P.k then
      invalid_arg (name ^ ".of_bytes: non-canonical value");
    a

  let to_string a =
    let b = Buffer.create (nlimbs * 8) in
    Buffer.add_string b "0x";
    for j = nlimbs - 1 downto 0 do
      Buffer.add_string b (Printf.sprintf "%08x" a.(j))
    done;
    Buffer.contents b

  let pp ppf a = Format.pp_print_string ppf (to_string a)

  (* ---------------------------------------------------- bit-slicing -- *)

  (* Exponents below k with a non-zero modulus coefficient, as an array
     for the sliced reduction loop. *)
  let mod_low =
    Array.of_list (List.filter (fun e -> e < P.k) modulus_bits)

  (* Transposed ("bit-sliced") representation: a vector of up to [lanes]
     field elements becomes [k] plane words, plane [b] holding bit [b]
     of every element (element [j] at bit position [j]). One AND+XOR on
     a plane pair then advances one GF(2) product term for every lane
     at once, so a batched multiply costs O(k^2 + k*w) word ops for the
     whole vector instead of per element (w = modulus weight). *)
  module Sliced = struct
    let lanes = Sys.int_size (* 63 on 64-bit OCaml: one lane per int bit *)

    type sliced = { planes : int array; (* length k *) count : int }
    type t = sliced

    let count s = s.count

    let slice v =
      let cnt = Array.length v in
      if cnt = 0 || cnt > lanes then
        invalid_arg (name ^ ".Sliced.slice: 1..lanes elements");
      let planes = Array.make P.k 0 in
      for b = 0 to P.k - 1 do
        let lb = b / Bits.limb_bits and r = b mod Bits.limb_bits in
        let w = ref 0 in
        for j = cnt - 1 downto 0 do
          w := (!w lsl 1) lor (((Array.unsafe_get v j).(lb) lsr r) land 1)
        done;
        planes.(b) <- !w
      done;
      { planes; count = cnt }

    let unslice_one planes jj =
      let a = Bits.create nlimbs in
      for b = 0 to P.k - 1 do
        if (Array.unsafe_get planes b lsr jj) land 1 = 1 then Bits.set a b
      done;
      a

    let unslice s = Array.init s.count (unslice_one s.planes)

    (* Raw lanewise product of two plane vectors: schoolbook on planes
       (k^2 AND+XOR), then fold the high planes down through the
       low-weight modulus. No ticks, no lane-count bookkeeping. *)
    let mul_planes pa pb =
      let prod = Array.make ((2 * P.k) - 1) 0 in
      for i = 0 to P.k - 1 do
        let ai = Array.unsafe_get pa i in
        if ai <> 0 then
          for j = 0 to P.k - 1 do
            let bj = Array.unsafe_get pb j in
            if bj <> 0 then begin
              let idx = i + j in
              Array.unsafe_set prod idx (Array.unsafe_get prod idx lxor (ai land bj))
            end
          done
      done;
      for s = (2 * P.k) - 2 downto P.k do
        let p = Array.unsafe_get prod s in
        if p <> 0 then begin
          Array.unsafe_set prod s 0;
          for ei = 0 to Array.length mod_low - 1 do
            let idx = s - P.k + Array.unsafe_get mod_low ei in
            Array.unsafe_set prod idx (Array.unsafe_get prod idx lxor p)
          done
        end
      done;
      Array.sub prod 0 P.k

    (* Public sliced arithmetic keeps the cost model honest: a lanewise
       multiply computes [count] field products, so it ticks [count]
       mults — same convention as the tabled kernels, which tick the
       model cost of what they compute, not the machine cost. *)
    let mul sa sb =
      if sa.count <> sb.count then
        invalid_arg (name ^ ".Sliced.mul: lane count mismatch");
      Metrics.tick_mults sa.count;
      { planes = mul_planes sa.planes sb.planes; count = sa.count }

    let add sa sb =
      if sa.count <> sb.count then
        invalid_arg (name ^ ".Sliced.add: lane count mismatch");
      Metrics.tick_adds sa.count;
      {
        planes = Array.init P.k (fun b -> sa.planes.(b) lxor sb.planes.(b));
        count = sa.count;
      }
  end

  (* Batch multipoint kernel: slice the evaluation points (chunks of
     [lanes]) and run Horner on the plane representation — one
     [mul_planes] plus one broadcast-XOR per coefficient advances all
     lanes at once. Raw (no ticks, no randomness); values bit-identical
     to per-point Horner because GF(2) arithmetic is exact either way. *)
  let batch_eval =
    Some
      (fun css xs ->
        let n = Array.length xs in
        let m = Array.length css in
        let out = Array.init m (fun _ -> Array.make n zero) in
        let c0 = ref 0 in
        while !c0 < n do
          let cnt = min Sliced.lanes (n - !c0) in
          let sx = Sliced.slice (Array.sub xs !c0 cnt) in
          let px = sx.Sliced.planes in
          let all_mask = if cnt = Sliced.lanes then -1 else (1 lsl cnt) - 1 in
          for j = 0 to m - 1 do
            let cs = css.(j) in
            let len = Array.length cs in
            if len > 0 then begin
              let acc = ref (Array.make P.k 0) in
              let top = cs.(len - 1) in
              for b = 0 to P.k - 1 do
                if Bits.get top b then !acc.(b) <- all_mask
              done;
              for d = len - 2 downto 0 do
                let p = Sliced.mul_planes !acc px in
                let c = cs.(d) in
                for b = 0 to P.k - 1 do
                  if Bits.get c b then
                    Array.unsafe_set p b (Array.unsafe_get p b lxor all_mask)
                done;
                acc := p
              done;
              let row = out.(j) in
              for jj = 0 to cnt - 1 do
                row.(!c0 + jj) <- Sliced.unslice_one !acc jj
              done
            end
          done;
          c0 := !c0 + cnt
        done;
        out)
end

module GF64 = Make (struct let k = 64 end)
module GF128 = Make (struct let k = 128 end)
module GF256 = Make (struct let k = 256 end)
