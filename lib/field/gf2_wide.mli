(** [GF(2^k)] for arbitrary [k >= 1], limb-array representation.

    Complements {!Gf2k} (which is limited to one machine word) so the
    security-parameter sweeps in the benchmarks can reach the paper's
    regime of cryptographic [k] (64, 128, 256). Three multiplication
    kernels coexist:

    - {!S.mul_schoolbook}: the schoolbook carryless method — [O(k^2)]
      bit operations, the "naive" cost the paper quotes and what
      experiment E13's naive rows measure;
    - {!S.mul_karatsuba}: the three-way split ([O(k^1.585)] bit
      operations). {!S.mul} dispatches to it above a measured limb
      threshold (4 limbs, i.e. [k >= 97]) and stays schoolbook below;
    - {!S.Sliced}: a transposed bit-plane representation processing one
      full lane vector (63 elements) per word operation, the batch
      kernel behind [batch_eval] (DESIGN.md §17).

    Elements are immutable; all arithmetic allocates fresh limb arrays. *)

module type PARAM = sig
  val k : int
  (** Field extension degree, [k >= 1]. *)
end

module type S = sig
  include Field_intf.S

  val modulus_bits : int list
  (** Exponents with non-zero coefficient in the reduction polynomial,
      decreasing; head is [k_bits]. *)

  val of_repr : int array -> t
  (** Unsafe view of little-endian 32-bit limbs as an element. *)

  val repr : t -> int array

  val mul_schoolbook : t -> t -> t
  (** The paper's naive [O(k^2)] product — the reference kernel every
      other multiplication path is tested against. *)

  val mul_karatsuba : t -> t -> t
  (** Same product via Karatsuba's three-way split on the limb array.
      {!mul} uses this automatically for [k >= 97]. *)

  (** Bit-sliced vectors: up to {!Sliced.lanes} field elements stored
      transposed as [k_bits] plane words (plane [b], bit [j] = bit [b]
      of element [j]). [slice]/[unslice] round-trip; [mul]/[add]
      compute all lanes per word-op and tick the model cost of the
      [count] element operations they perform. *)
  module Sliced : sig
    type elt
    type t

    val lanes : int
    (** Maximum lane count: [Sys.int_size] (63 on 64-bit OCaml — the
        64-lane design loses one lane to the tag bit). *)

    val count : t -> int

    val slice : elt array -> t
    (** @raise Invalid_argument on an empty vector or more than
        [lanes] elements. *)

    val unslice : t -> elt array

    val mul : t -> t -> t
    (** Lanewise field product; ticks [count] mults.
        @raise Invalid_argument on lane-count mismatch. *)

    val add : t -> t -> t
    (** Lanewise sum; ticks [count] adds.
        @raise Invalid_argument on lane-count mismatch. *)
  end
  with type elt := t
end

module Make (P : PARAM) : S
module GF64 : S
module GF128 : S
module GF256 : S
