(* GF(2^k) on one machine word, 1 <= k <= 61.

   A field element is a polynomial over GF(2) of degree < k, packed as
   the low k bits of an int. The word width constraint comes from the
   multiplication loop below, which shifts the multiplicand one past the
   top bit of the modulus before reducing.

   For k <= 16 multiplication additionally runs off exp/log tables over
   the (cyclic) multiplicative group, mirroring the Zq_table trick: one
   table lookup replaces the k-step shift-and-xor loop. The naive loop
   is kept as the reference implementation ([mul_naive], and the whole
   backend as [Make_untabled]) so equivalence stays testable and the
   paper's naive-multiplication baseline stays measurable. *)

let degree x =
  let rec go i = if i < 0 then -1 else if x land (1 lsl i) <> 0 then i else go (i - 1) in
  go 62

let mul_mod ~modulus a b =
  let top = 1 lsl degree modulus in
  (* Russian-peasant carryless multiplication with interleaved reduction:
     the multiplicand never exceeds bit [deg modulus], so everything fits
     in a word for degrees up to 61. *)
  let rec go a b acc =
    if a = 0 then acc
    else
      let acc = if a land 1 = 1 then acc lxor b else acc in
      let b = b lsl 1 in
      let b = if b land top <> 0 then b lxor modulus else b in
      go (a lsr 1) b acc
  in
  go a b 0

let poly_mod a b =
  assert (b <> 0);
  let db = degree b in
  let rec go a =
    let da = degree a in
    if da < db then a else go (a lxor (b lsl (da - db)))
  in
  go a

let rec poly_gcd a b = if b = 0 then a else poly_gcd b (poly_mod a b)

let prime_factors n =
  let rec go n d acc =
    if n = 1 then List.rev acc
    else if d * d > n then List.rev (n :: acc)
    else if n mod d = 0 then
      let rec strip n = if n mod d = 0 then strip (n / d) else n in
      go (strip n) (d + 1) (d :: acc)
    else go n (d + 1) acc
  in
  go n 2 []

let is_irreducible f =
  let k = degree f in
  assert (k >= 1);
  let x = poly_mod 0b10 f in
  (* x^(2^i) mod f by i successive squarings. *)
  let iterate_frobenius i =
    let rec go i r = if i = 0 then r else go (i - 1) (mul_mod ~modulus:f r r) in
    go i x
  in
  (* Rabin: f (degree k) is irreducible iff x^(2^k) = x (mod f) and for
     every prime p | k, gcd(x^(2^(k/p)) - x, f) = 1. *)
  iterate_frobenius k = x
  && List.for_all
       (fun p -> poly_gcd (iterate_frobenius (k / p) lxor x) f = 1)
       (prime_factors k)

let smallest_irreducible k =
  assert (k >= 1 && k <= 61);
  let top = 1 lsl k in
  let rec search low =
    if low >= top then invalid_arg "smallest_irreducible: none found"
    else
      let f = top lor low in
      if is_irreducible f then f else search (low + 1)
  in
  search 0

module type PARAM = sig
  val k : int
end

module type S = sig
  include Field_intf.S

  val modulus : int
  val of_repr : int -> t
  val repr : t -> int
  val tabled : bool
  val mul_naive : t -> t -> t
end

(* Largest extension degree for which the exp/log tables are built: the
   doubled exp table holds 2(2^k - 1) words, so k = 16 tops out at one
   megabyte per instantiated field. *)
let table_threshold = 16

module Make_gen (P : PARAM) (T : sig val want_tables : bool end) = struct
  let () =
    if P.k < 1 || P.k > 61 then
      invalid_arg "Gf2k.Make: k must be within [1, 61]"

  type t = int

  let k_bits = P.k
  let name = Printf.sprintf "GF(2^%d)" P.k
  let byte_size = (P.k + 7) / 8
  let modulus = smallest_irreducible P.k
  let mask = (1 lsl P.k) - 1
  let zero = 0
  let one = 1

  let equal = Int.equal
  let compare = Int.compare
  let hash x = x

  let of_repr x =
    assert (x land mask = x);
    x

  let repr x = x

  let add a b =
    Metrics.tick_adds 1;
    a lxor b

  let sub = add

  let neg x =
    Metrics.tick_adds 1;
    x

  let mul_naive a b =
    Metrics.tick_mults 1;
    mul_mod ~modulus a b

  let tabled = T.want_tables && P.k <= table_threshold

  (* The multiplicative group is cyclic of order 2^k - 1. exp.(i) = g^i
     for a generator g; the table is doubled so index sums (mul) and the
     [ord - log a] of inv never need reduction mod ord. Built with raw
     [mul_mod]: table construction is setup, not protocol work, and must
     not tick the ambient counters. *)
  let ord = mask

  let tables =
    if not tabled then None
    else begin
      let pow_raw b e =
        let rec go acc b e =
          if e = 0 then acc
          else
            go
              (if e land 1 = 1 then mul_mod ~modulus acc b else acc)
              (mul_mod ~modulus b b) (e lsr 1)
        in
        go 1 b e
      in
      let factors = prime_factors ord in
      let is_generator g =
        List.for_all (fun p -> pow_raw g (ord / p) <> 1) factors
      in
      let rec find g =
        if g > mask then invalid_arg (name ^ ": no generator found")
        else if is_generator g then g
        else find (g + 1)
      in
      let g = if ord = 1 then 1 else find 2 in
      let exp_table = Array.make (2 * ord) 1 in
      let log_table = Array.make (ord + 1) 0 in
      let acc = ref 1 in
      for i = 0 to (2 * ord) - 1 do
        exp_table.(i) <- !acc;
        if i < ord then log_table.(!acc) <- i;
        acc := mul_mod ~modulus !acc g
      done;
      Some (exp_table, log_table)
    end

  let mul =
    match tables with
    | None -> mul_naive
    | Some (exp_table, log_table) ->
        fun a b ->
          Metrics.tick_mults 1;
          if a = 0 || b = 0 then 0
          else exp_table.(log_table.(a) + log_table.(b))

  let inv_naive a =
    if a = 0 then raise Division_by_zero;
    Metrics.tick_invs 1;
    (* Extended Euclid over GF(2)[x], tracking only the coefficient of
       [a]: the invariant is r_i = s_i * a (mod modulus). *)
    let rec divstep r0 s0 r1 s1 =
      let d = degree r0 - degree r1 in
      if d < 0 then (r0, s0)
      else divstep (r0 lxor (r1 lsl d)) (s0 lxor (s1 lsl d)) r1 s1
    in
    let rec go r0 s0 r1 s1 =
      if r1 = 0 then begin
        assert (r0 = 1);
        s0
      end
      else
        let r, s = divstep r0 s0 r1 s1 in
        go r1 s1 r s
    in
    go modulus 0 a 1

  let inv =
    match tables with
    | None -> inv_naive
    | Some (exp_table, log_table) ->
        fun a ->
          if a = 0 then raise Division_by_zero;
          Metrics.tick_invs 1;
          exp_table.(ord - log_table.(a))

  let div a b = mul a (inv b)

  let pow x e =
    assert (e >= 0);
    let rec go acc base e =
      if e = 0 then acc
      else
        let acc = if e land 1 = 1 then mul acc base else acc in
        if e = 1 then acc else go acc (mul base base) (e lsr 1)
    in
    go one x e

  let of_int i =
    if i < 0 || i > mask then invalid_arg (name ^ ".of_int: out of range");
    i

  let random g = Prng.bits g P.k

  let rec random_nonzero g =
    let x = random g in
    if x = 0 then random_nonzero g else x

  let lsb x = x land 1
  let to_bits x = Array.init P.k (fun i -> (x lsr i) land 1 = 1)

  let to_bytes x =
    let b = Bytes.create byte_size in
    Field_bytes.encode_int b ~off:0 ~width:byte_size x;
    b

  let of_bytes b =
    Field_bytes.check_length name b byte_size;
    let v = Field_bytes.decode_int b ~off:0 ~width:byte_size in
    if v > mask then invalid_arg (name ^ ".of_bytes: non-canonical value");
    v

  let pp ppf x = Format.fprintf ppf "0x%x" x
  let to_string x = Printf.sprintf "0x%x" x

  (* Batch multipoint kernel: log-domain Horner with each point's
     discrete log looked up once per batch. Raw lookups only — no
     Metrics ticks (callers account model cost in bulk) — so a Horner
     step is one doubled-exp lookup plus one xor instead of a ticked
     table mul and a ticked add. Untabled backends keep the per-point
     reference path. *)
  let batch_eval =
    match tables with
    | None -> None
    | Some (exp_table, log_table) ->
        Some
          (fun css xs ->
            let n = Array.length xs in
            let lxs =
              Array.map (fun x -> if x = 0 then -1 else log_table.(x)) xs
            in
            Array.map
              (fun cs ->
                let len = Array.length cs in
                let row = Array.make n 0 in
                if len > 0 then
                  for i = 0 to n - 1 do
                    let lx = Array.unsafe_get lxs i in
                    if lx < 0 then row.(i) <- cs.(0) (* p(0) = c0 *)
                    else begin
                      let acc = ref 0 in
                      for j = len - 1 downto 0 do
                        let a = !acc in
                        let ax =
                          if a = 0 then 0
                          else
                            Array.unsafe_get exp_table
                              (Array.unsafe_get log_table a + lx)
                        in
                        acc := ax lxor Array.unsafe_get cs j
                      done;
                      row.(i) <- !acc
                    end
                  done;
                row)
              css)
end

module Make (P : PARAM) = Make_gen (P) (struct let want_tables = true end)
module Make_untabled (P : PARAM) =
  Make_gen (P) (struct let want_tables = false end)

module GF8 = Make (struct let k = 8 end)
module GF16 = Make (struct let k = 16 end)
module GF32 = Make (struct let k = 32 end)
module GF61 = Make (struct let k = 61 end)
