(** [GF(2^k)] for [1 <= k <= 61], one machine word per element.

    This is the paper's default field (Section 2): elements are degree
    [< k] polynomials over [GF(2)] packed into the low [k] bits of an
    [int]; multiplication is the naive shift-and-xor schoolbook method,
    i.e. [O(k)] word operations realizing the [O(k^2)] bit-operation
    bound the paper quotes for naive multiplication. The paper remarks
    that for small [k] this beats the asymptotically faster special field
    — experiment E13 measures exactly that crossover against
    {!Fft_field}.

    The reduction polynomial is found at functor-application time: the
    lexicographically smallest irreducible polynomial of degree [k] over
    [GF(2)], certified by Rabin's irreducibility test. *)

module type PARAM = sig
  val k : int
  (** Field extension degree; [1 <= k <= 61]. *)
end

val table_threshold : int
(** Largest [k] (16) for which {!Make} builds exp/log multiplication
    tables; beyond it the shift-and-xor loop is the only path. *)

module type S = sig
  include Field_intf.S

  val modulus : int
  (** The reduction polynomial, bit [i] = coefficient of [x^i]; bit
      [P.k] is always set. *)

  val of_repr : int -> t
  (** Unsafe view of a bit pattern as an element; must be [< 2^k]. *)

  val repr : t -> int
  (** The underlying bit pattern, [< 2^k]. *)

  val tabled : bool
  (** Whether {!mul} runs off exp/log tables (true in {!Make} for
      [k <= table_threshold]). *)

  val mul_naive : t -> t -> t
  (** The shift-and-xor reference multiplication, regardless of
      {!tabled}. Ticks one {!Metrics} mult exactly like {!mul}, so the
      paper's cost accounting is identical on both paths. *)
end

module Make (P : PARAM) : S
(** Tabled multiplication when [P.k <= table_threshold]: [mul a b] is
    [exp.(log a + log b)] over a doubled exp table of the cyclic
    multiplicative group (the {!Zq_table} trick), with [inv] a single
    lookup too. Each lookup still ticks exactly one mult/inv. *)

module Make_untabled (P : PARAM) : S
(** Identical field, always on the naive shift-and-xor path — the
    pre-optimization baseline, kept instantiable for benchmarks. *)

(** {1 Ready-made instances} *)

module GF8 : S
module GF16 : S
module GF32 : S
module GF61 : S

(** {1 Polynomial arithmetic over GF(2) on word-packed representations}

    Exposed for tests and for {!Gf2_wide}'s modulus search. *)

val degree : int -> int
(** Degree of the packed polynomial; [-1] for the zero polynomial. *)

val mul_mod : modulus:int -> int -> int -> int
(** Carryless multiply-and-reduce; [modulus] must have its top set bit at
    position [<= 61]. *)

val poly_mod : int -> int -> int
(** [poly_mod a b] is the remainder of carryless division; [b <> 0]. *)

val poly_gcd : int -> int -> int

val is_irreducible : int -> bool
(** Rabin's irreducibility test for a packed [GF(2)] polynomial of
    degree [>= 1]. *)

val smallest_irreducible : int -> int
(** [smallest_irreducible k] is the lexicographically smallest
    irreducible polynomial of degree [k], packed. *)
