type plan = {
  tbl : Zq_table.Tables.t;
  m : int;
  log_m : int;
  root_powers : int array;     (* w^0 .. w^(m-1), w of order m *)
  inv_root_powers : int array; (* w^-0 .. w^-(m-1) *)
  m_inv : int;                 (* m^-1 mod q *)
}

let is_pow2 m = m > 0 && m land (m - 1) = 0

let plan tbl ~m =
  let q = Zq_table.Tables.q tbl in
  if not (is_pow2 m) then invalid_arg "Ntt.plan: size not a power of two";
  if (q - 1) mod m <> 0 then invalid_arg "Ntt.plan: m does not divide q-1";
  let w = Zq_table.Tables.exp tbl ((q - 1) / m) in
  let w_inv = Zq_table.Tables.inv tbl w in
  let powers base =
    let a = Array.make m 1 in
    for i = 1 to m - 1 do
      a.(i) <- Zq_table.Tables.mul tbl a.(i - 1) base
    done;
    a
  in
  let rec log2 v = if v = 1 then 0 else 1 + log2 (v / 2) in
  {
    tbl;
    m;
    log_m = log2 m;
    root_powers = powers w;
    inv_root_powers = powers w_inv;
    m_inv = Zq_table.Tables.inv tbl (m mod q);
  }

let size p = p.m

let bit_reverse_permute a log_m =
  let m = Array.length a in
  let rec rev v acc i =
    if i = 0 then acc else rev (v lsr 1) ((acc lsl 1) lor (v land 1)) (i - 1)
  in
  for i = 0 to m - 1 do
    let j = rev i 0 log_m in
    if i < j then begin
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    end
  done

(* In-place decimation-in-time butterfly network over the given root
   power table. *)
let fft_in_place p powers a =
  let tbl = p.tbl in
  bit_reverse_permute a p.log_m;
  let len = ref 2 in
  while !len <= p.m do
    let half = !len / 2 in
    let stride = p.m / !len in
    let base = ref 0 in
    while !base < p.m do
      for i = 0 to half - 1 do
        let w = powers.(i * stride) in
        let u = a.(!base + i) in
        let v = Zq_table.Tables.mul tbl w a.(!base + i + half) in
        a.(!base + i) <- Zq_table.Tables.add tbl u v;
        a.(!base + i + half) <- Zq_table.Tables.sub tbl u v
      done;
      base := !base + !len
    done;
    len := !len * 2
  done

let pad p a =
  if Array.length a > p.m then invalid_arg "Ntt: input longer than plan size";
  let out = Array.make p.m 0 in
  Array.blit a 0 out 0 (Array.length a);
  out

let transform p a =
  let out = pad p a in
  fft_in_place p p.root_powers out;
  out

let inverse p a =
  if Array.length a <> p.m then invalid_arg "Ntt.inverse: wrong length";
  let out = Array.copy a in
  fft_in_place p p.inv_root_powers out;
  for i = 0 to p.m - 1 do
    out.(i) <- Zq_table.Tables.mul p.tbl out.(i) p.m_inv
  done;
  out

let convolve p a b =
  if Array.length a + Array.length b - 1 > p.m then
    invalid_arg "Ntt.convolve: result does not fit plan size";
  let fa = transform p a and fb = transform p b in
  for i = 0 to p.m - 1 do
    fa.(i) <- Zq_table.Tables.mul p.tbl fa.(i) fb.(i)
  done;
  inverse p fa

(* Multipoint evaluation at arbitrary points via a subproduct tree.

   The grid points used by the protocols (of_int 1..n) are not root
   powers, so a plain DFT cannot evaluate there. The classical remedy
   is the subproduct/remainder tree: build the tree of monic products
   prod (x - a_i) bottom-up (products by NTT convolution once they are
   large enough for the butterflies to pay), then push the polynomial
   down the tree by remaindering; each leaf remainder is p(a_i).
   Remainders against large divisors use Newton power-series inversion
   (again NTT products), so the whole evaluation is O(M(n) log n).
   Duplicate points are fine — (x - a) still divides the tree node, and
   both leaves receive p(a). All arithmetic is raw table ops: no
   Metrics ticks, callers account model cost themselves. *)
module Multipoint = struct
  (* Polynomials are int arrays, coefficients low-to-high, residues in
     [0, q). Trailing zeros are tolerated everywhere; [trim] is applied
     where degree logic needs it. *)

  type node =
    | Leaf of int (* index into xs *)
    | Node of { l : node; r : node; lprod : int array; rprod : int array }

  type t = {
    tbl : Zq_table.Tables.t;
    xs : int array;
    root : node;
    root_prod : int array;
    plans : (int, plan option) Hashtbl.t;
        (* smallest usable plan per result size; None if q-1 has no
           large enough power-of-two divisor *)
  }

  (* Products below this result length run schoolbook: the butterfly
     setup does not pay for itself on tiny operands. *)
  let ntt_mul_threshold = 32

  (* Divisors below this degree are remaindered schoolbook; above it
     the Newton-inversion division is used. *)
  let newton_rem_threshold = 32

  let trim a =
    let n = ref (Array.length a) in
    while !n > 0 && a.(!n - 1) = 0 do
      decr n
    done;
    if !n = Array.length a then a else Array.sub a 0 !n

  let prefix a k =
    if Array.length a <= k then a else Array.sub a 0 k

  let rev a =
    let n = Array.length a in
    Array.init n (fun i -> a.(n - 1 - i))

  let plan_for t need =
    match Hashtbl.find_opt t.plans need with
    | Some p -> p
    | None ->
        let q = Zq_table.Tables.q t.tbl in
        let m = ref 1 in
        while !m < need do
          m := !m * 2
        done;
        let p = if (q - 1) mod !m = 0 then Some (plan t.tbl ~m:!m) else None in
        Hashtbl.add t.plans need p;
        p

  let mul_school tbl a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then [||]
    else begin
      let out = Array.make (la + lb - 1) 0 in
      for i = 0 to la - 1 do
        let ai = Array.unsafe_get a i in
        if ai <> 0 then
          for j = 0 to lb - 1 do
            let k = i + j in
            Array.unsafe_set out k
              (Zq_table.Tables.add tbl
                 (Array.unsafe_get out k)
                 (Zq_table.Tables.mul tbl ai (Array.unsafe_get b j)))
          done
      done;
      out
    end

  let poly_mul t a b =
    let la = Array.length a and lb = Array.length b in
    if la = 0 || lb = 0 then [||]
    else begin
      let need = la + lb - 1 in
      if need < ntt_mul_threshold then mul_school t.tbl a b
      else
        match plan_for t need with
        | None -> mul_school t.tbl a b
        | Some p -> Array.sub (convolve p a b) 0 need
    end

  (* Power-series inverse: g with f*g = 1 (mod x^k), f.(0) <> 0, by
     Newton doubling g' = g*(2 - f*g). *)
  let inv_series t f k =
    let tbl = t.tbl in
    let g = ref [| Zq_table.Tables.inv tbl f.(0) |] in
    let len = ref 1 in
    while !len < k do
      let nl = min (2 * !len) k in
      let fg = poly_mul t (prefix f nl) !g in
      let h = Array.make nl 0 in
      let fg0 = if Array.length fg > 0 then fg.(0) else 0 in
      h.(0) <- Zq_table.Tables.sub tbl (2 mod Zq_table.Tables.q tbl) fg0;
      for i = 1 to min (nl - 1) (Array.length fg - 1) do
        h.(i) <- Zq_table.Tables.neg tbl fg.(i)
      done;
      g := prefix (poly_mul t !g h) nl;
      len := nl
    done;
    prefix !g k

  (* Remainder of [p] by monic [d] (leading coefficient 1), schoolbook:
     only mul/sub since the divisor is monic. *)
  let rem_school tbl p d =
    let dd = Array.length d - 1 in
    let r = Array.copy p in
    for i = Array.length r - 1 downto dd do
      let c = r.(i) in
      if c <> 0 then
        for j = 0 to dd do
          let k = i - dd + j in
          r.(k) <-
            Zq_table.Tables.sub tbl r.(k)
              (Zq_table.Tables.mul tbl c (Array.unsafe_get d j))
        done
    done;
    Array.sub r 0 dd

  (* Remainder by monic [d] via q = rev(p) * rev(d)^-1 (mod x^(n-m+1)),
     reversed; then r = p - q*d truncated below deg d. *)
  let rem_newton t p d =
    let tbl = t.tbl in
    let n = Array.length p - 1 and m = Array.length d - 1 in
    let k = n - m + 1 in
    let inv = inv_series t (rev d) k in
    let qr = prefix (poly_mul t (rev p) inv) k in
    let qp =
      (* rev of qr padded to length k: quotient coefficients *)
      let out = Array.make k 0 in
      let lq = Array.length qr in
      for i = 0 to lq - 1 do
        out.(k - 1 - i) <- qr.(i)
      done;
      out
    in
    let qd = poly_mul t qp d in
    Array.init m (fun i ->
        let pv = if i <= n then p.(i) else 0 in
        let sv = if i < Array.length qd then qd.(i) else 0 in
        Zq_table.Tables.sub tbl pv sv)

  let poly_rem t p d =
    let p = trim p in
    let dd = Array.length d - 1 in
    if Array.length p - 1 < dd then p
    else if dd <= newton_rem_threshold then rem_school t.tbl p d
    else rem_newton t p d

  let leaf_poly tbl a = [| Zq_table.Tables.neg tbl a; 1 |]

  let make tbl ~xs =
    if Array.length xs = 0 then invalid_arg "Ntt.Multipoint.make: no points";
    let q = Zq_table.Tables.q tbl in
    Array.iter
      (fun x ->
        if x < 0 || x >= q then
          invalid_arg "Ntt.Multipoint.make: point out of range")
      xs;
    let t =
      {
        tbl;
        xs = Array.copy xs;
        root = Leaf 0;
        root_prod = [||];
        plans = Hashtbl.create 8;
      }
    in
    let rec build lo hi =
      if hi - lo = 1 then (Leaf lo, leaf_poly tbl xs.(lo))
      else begin
        let mid = (lo + hi) / 2 in
        let ln, lp = build lo mid and rn, rp = build mid hi in
        (Node { l = ln; r = rn; lprod = lp; rprod = rp }, poly_mul t lp rp)
      end
    in
    let root, root_prod = build 0 (Array.length xs) in
    { t with root; root_prod }

  let points t = Array.copy t.xs

  let eval_into t cs out =
    let rec go node r =
      match node with
      | Leaf i -> out.(i) <- (if Array.length r = 0 then 0 else r.(0))
      | Node { l; r = rn; lprod; rprod } ->
          go l (poly_rem t r lprod);
          go rn (poly_rem t r rprod)
    in
    go t.root (poly_rem t cs t.root_prod)

  let eval t cs =
    let out = Array.make (Array.length t.xs) 0 in
    eval_into t cs out;
    out

  let eval_batch t css =
    Array.map
      (fun cs ->
        let out = Array.make (Array.length t.xs) 0 in
        eval_into t cs out;
        out)
      css
end
