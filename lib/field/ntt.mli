(** Number-theoretic transform (DFT over [Z_q]).

    Realizes the paper's Section-2 remark that multiplication in the
    special field uses "discrete Fourier transforms to do the
    multiplication, modulo some irreducible polynomial, in O(l log l)
    operations over Zq". Radix-2 iterative Cooley–Tukey; the transform
    size [m] must be a power of two dividing [q - 1]. *)

type plan
(** Precomputed twiddle factors for one [(q, m)] pair. *)

val plan : Zq_table.Tables.t -> m:int -> plan
(** [plan tbl ~m] requires [m] a power of two with [m | q - 1].
    @raise Invalid_argument otherwise. *)

val size : plan -> int

val transform : plan -> int array -> int array
(** Forward DFT of a coefficient vector (length [<= m]; implicitly
    zero-padded). Returns a fresh array of length [m]. *)

val inverse : plan -> int array -> int array
(** Inverse DFT; [inverse p (transform p a)] equals [a] zero-padded
    to length [m]. The input must have length [m]. *)

val convolve : plan -> int array -> int array -> int array
(** Polynomial product via pointwise multiplication in the frequency
    domain. The two inputs must satisfy
    [length a + length b - 1 <= size plan]; the result has length [m]
    (high entries zero). *)

(** Multipoint evaluation at {e arbitrary} points of [Z_q] via a
    subproduct tree: monic node products built by NTT convolution,
    remainder tree pushed down with Newton-inversion division, so
    evaluating a degree-[< n] polynomial at all [n] points costs
    [O(M(n) log n)] where [M] is the NTT multiplication cost. This is
    the batch-dealing kernel for point sets that are not root-of-unity
    powers (the protocol grid [of_int 1..n] in particular — a plain DFT
    cannot evaluate there, see DESIGN.md §17).

    All arithmetic is raw {!Zq_table.Tables} ops: no {!Metrics} ticks
    and no randomness; callers account the model cost in bulk. *)
module Multipoint : sig
  type t
  (** A subproduct tree over one fixed point set. Building costs
      [O(M(n) log n)]; reuse it for every polynomial evaluated at the
      same points. *)

  val make : Zq_table.Tables.t -> xs:int array -> t
  (** [make tbl ~xs] builds the tree over points [xs] (canonical
      residues; duplicates allowed — both occurrences receive the same
      value).
      @raise Invalid_argument on an empty point set or an out-of-range
      residue. *)

  val points : t -> int array

  val eval : t -> int array -> int array
  (** [eval t cs] evaluates the polynomial with coefficients [cs]
      (low-to-high, any length, trailing zeros fine) at every tree
      point: [(eval t cs).(i) = p(xs.(i))]. *)

  val eval_batch : t -> int array array -> int array array
  (** [eval_batch t css] is [Array.map (eval t) css] — the tree (and
      its cached NTT plans) amortized across a batch of dealings. *)
end
