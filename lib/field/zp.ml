(* Prime fields Z_p, p < 2^31. Products of two canonical representatives
   are below 2^62 and therefore exact in OCaml's native int. *)

let mul_mod p a b = a * b mod p

let pow_mod p b e =
  assert (e >= 0);
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul_mod p acc base else acc in
      if e = 1 then acc else go acc (mul_mod p base base) (e lsr 1)
  in
  go 1 (b mod p) e

let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else begin
    (* Miller-Rabin with bases 2, 3, 5, 7: deterministic below
       3,215,031,751 > 2^31. *)
    let d = ref (n - 1) and s = ref 0 in
    while !d mod 2 = 0 do
      d := !d / 2;
      incr s
    done;
    let witness a =
      let x = pow_mod n a !d in
      if x = 1 || x = n - 1 then false
      else
        let rec squeeze i x =
          if i >= !s - 1 then true
          else
            let x = mul_mod n x x in
            if x = n - 1 then false else squeeze (i + 1) x
        in
        squeeze 0 x
    in
    not (List.exists (fun a -> a mod n <> 0 && witness a) [ 2; 3; 5; 7 ])
  end

let factorize n =
  assert (n >= 1);
  let rec go n d acc =
    if n = 1 then List.rev acc
    else if d * d > n then List.rev ((n, 1) :: acc)
    else if n mod d = 0 then begin
      let rec strip n m = if n mod d = 0 then strip (n / d) (m + 1) else (n, m) in
      let n', m = strip n 0 in
      go n' (d + 1) ((d, m) :: acc)
    end
    else go n (d + 1) acc
  in
  go n 2 []

let next_prime_in_progression ~a ~d =
  let rec go x tries =
    if tries > 1_000_000 then
      invalid_arg "next_prime_in_progression: search exhausted"
    else if x >= 2 && is_prime x then x
    else go (x + d) (tries + 1)
  in
  go a 0

let find_primitive_root p =
  let phi = p - 1 in
  let primes = List.map fst (factorize phi) in
  let is_generator g =
    List.for_all (fun q -> pow_mod p g (phi / q) <> 1) primes
  in
  let rec search g =
    if g >= p then invalid_arg "find_primitive_root"
    else if is_generator g then g
    else search (g + 1)
  in
  search 2

module type PARAM = sig
  val p : int
end

module Make (P : PARAM) = struct
  let () =
    if P.p < 2 || P.p >= 1 lsl 31 then invalid_arg "Zp.Make: p out of range";
    if not (is_prime P.p) then invalid_arg "Zp.Make: p is not prime"

  type t = int

  let p = P.p
  let name = Printf.sprintf "Z_%d" P.p

  let k_bits =
    let rec bits v acc = if v <= 1 then acc else bits (v / 2) (acc + 1) in
    bits P.p 0

  let byte_size = (k_bits + 8) / 8
  let zero = 0
  let one = 1
  let equal = Int.equal
  let compare = Int.compare
  let hash x = x
  let repr x = x

  let of_repr x =
    assert (x >= 0 && x < P.p);
    x

  let add a b =
    Metrics.tick_adds 1;
    let s = a + b in
    if s >= P.p then s - P.p else s

  let sub a b =
    Metrics.tick_adds 1;
    let s = a - b in
    if s < 0 then s + P.p else s

  let neg a =
    Metrics.tick_adds 1;
    if a = 0 then 0 else P.p - a

  let mul a b =
    Metrics.tick_mults 1;
    a * b mod P.p

  let inv a =
    if a = 0 then raise Division_by_zero;
    Metrics.tick_invs 1;
    (* Fermat: a^(p-2). *)
    pow_mod P.p a (P.p - 2)

  let div a b = mul a (inv b)

  let pow x e =
    assert (e >= 0);
    let rec go acc base e =
      if e = 0 then acc
      else
        let acc = if e land 1 = 1 then mul acc base else acc in
        if e = 1 then acc else go acc (mul base base) (e lsr 1)
    in
    go one x e

  let of_int i =
    if i < 0 then invalid_arg (name ^ ".of_int: negative") else i mod P.p

  let random g = Prng.int g P.p

  let rec random_nonzero g =
    let x = random g in
    if x = 0 then random_nonzero g else x

  let lsb x = x land 1

  let to_bits x =
    (* Only the low k_bits - 1 bits of a uniform residue are close to
       uniform; we expose k_bits bits as the signature requires and the
       coin layer's statistical tests bound the bias. *)
    Array.init k_bits (fun i -> (x lsr i) land 1 = 1)

  let to_bytes x =
    let b = Bytes.create byte_size in
    Field_bytes.encode_int b ~off:0 ~width:byte_size x;
    b

  let of_bytes b =
    Field_bytes.check_length name b byte_size;
    let v = Field_bytes.decode_int b ~off:0 ~width:byte_size in
    if v >= P.p then invalid_arg (name ^ ".of_bytes: non-canonical residue");
    v

  let pp = Format.pp_print_int
  let to_string = string_of_int

  (* No table/NTT machinery here: Zp is the untabled reference field
     (and the bench's "naive" twin), so batch dealing falls back to
     per-point Horner. *)
  let batch_eval = None
  let primitive_root = find_primitive_root P.p
  let pow_mod b e = pow_mod P.p b e
end
