(* Z_q with exp/log tables: mul a b = exp.(log a + log b), inv a =
   exp.(q - 1 - log a). The exp table is doubled so index sums never
   need reduction mod q-1. *)

module Tables = struct
  type t = {
    q : int;
    generator : int;
    exp_table : int array; (* length 2(q-1): g^i mod q *)
    log_table : int array; (* length q: log_table.(g^i) = i; log_table.(0) unused *)
  }

  let make ~q =
    if q < 3 || q >= 1 lsl 20 then invalid_arg "Zq_table: q out of range";
    if not (Zp.is_prime q) then invalid_arg "Zq_table: q not prime";
    let module G = Zp.Make (struct let p = q end) in
    let g = G.repr G.primitive_root in
    let exp_table = Array.make (2 * (q - 1)) 1 in
    let log_table = Array.make q 0 in
    let acc = ref 1 in
    for i = 0 to (2 * (q - 1)) - 1 do
      exp_table.(i) <- !acc;
      if i < q - 1 then log_table.(!acc) <- i;
      acc := !acc * g mod q
    done;
    { q; generator = g; exp_table; log_table }

  let q t = t.q
  let generator t = t.generator

  let add t a b =
    let s = a + b in
    if s >= t.q then s - t.q else s

  let sub t a b =
    let s = a - b in
    if s < 0 then s + t.q else s

  let neg t a = if a = 0 then 0 else t.q - a

  let mul t a b =
    if a = 0 || b = 0 then 0
    else t.exp_table.(t.log_table.(a) + t.log_table.(b))

  let inv t a =
    if a = 0 then raise Division_by_zero;
    t.exp_table.(t.q - 1 - t.log_table.(a))

  let exp t e = t.exp_table.(e)

  let log t a =
    if a = 0 then invalid_arg "Zq_table.log: zero";
    t.log_table.(a)

  let pow t b e =
    assert (e >= 0);
    if b = 0 then if e = 0 then 1 else 0
    else t.exp_table.(t.log_table.(b) * e mod (t.q - 1))

  (* Raw Horner at one point (log-domain multiply, branchless lazy
     reduction on the add). No Metrics ticks. *)
  let horner t cs x =
    let len = Array.length cs in
    if len = 0 then 0
    else if x = 0 then cs.(0)
    else begin
      let lx = Array.unsafe_get t.log_table x in
      let exp_t = t.exp_table and log_t = t.log_table in
      let q = t.q in
      let acc = ref 0 in
      for k = len - 1 downto 0 do
        let a = !acc in
        let ax =
          if a = 0 then 0
          else Array.unsafe_get exp_t (Array.unsafe_get log_t a + lx)
        in
        let s = ax + Array.unsafe_get cs k in
        acc := if s >= q then s - q else s
      done;
      !acc
    end

  (* Batch multipoint evaluation, raw (no ticks): out.(j).(i) =
     p_j(xs.(i)) with css.(j) the coefficients low-to-high. When the
     points form a step-1 arithmetic progression mod q — the protocol
     grid of_int 1..n — each polynomial costs len Horner seeds and then
     len-1 additions per further point (the classical difference
     engine: the len-th finite difference of a degree-(len-1)
     polynomial over a unit-step AP vanishes). Otherwise every point is
     a log-domain Horner. Scratch is reused across the batch, so the
     per-polynomial allocation is one output row. *)
  let eval_batch t css xs =
    let n = Array.length xs in
    let m = Array.length css in
    let q = t.q in
    let out = Array.make m [||] in
    let is_ap =
      n >= 2
      &&
      let ok = ref true in
      for i = 0 to n - 2 do
        let s = xs.(i) + 1 in
        let s = if s >= q then s - q else s in
        if xs.(i + 1) <> s then ok := false
      done;
      !ok
    in
    let maxlen = Array.fold_left (fun a cs -> max a (Array.length cs)) 1 css in
    let diff = Array.make maxlen 0 in
    let anti = Array.make maxlen 0 in
    for j = 0 to m - 1 do
      let cs = css.(j) in
      let len = Array.length cs in
      let row = Array.make n 0 in
      out.(j) <- row;
      if len = 0 then () (* zero polynomial: row stays 0 *)
      else if (not is_ap) || n <= len then
        for i = 0 to n - 1 do
          row.(i) <- horner t cs xs.(i)
        done
      else begin
        let d = len - 1 in
        (* Seeds p(xs.(0)) .. p(xs.(d)). *)
        for i = 0 to d do
          let y = horner t cs xs.(i) in
          row.(i) <- y;
          diff.(i) <- y
        done;
        (* Anti-diagonal of the difference triangle:
           anti.(k) = Δ^k p(xs.(d-k)). *)
        anti.(0) <- diff.(d);
        for k = 1 to d do
          for i = d downto k do
            let s = diff.(i) - diff.(i - 1) in
            diff.(i) <- (if s < 0 then s + q else s)
          done;
          anti.(k) <- diff.(d)
        done;
        (* Advance: updating j descending uses the already-advanced
           anti.(j+1), which is exactly Δ^(j+1) p at the anchor the
           update of anti.(j) needs. *)
        for i = d + 1 to n - 1 do
          for k = d - 1 downto 0 do
            let s = anti.(k) + anti.(k + 1) in
            anti.(k) <- (if s >= q then s - q else s)
          done;
          row.(i) <- anti.(0)
        done
      end
    done;
    out
end

module type PARAM = sig
  val q : int
end

module Make (P : PARAM) = struct
  let tables = Tables.make ~q:P.q

  type t = int

  let name = Printf.sprintf "Z_%d (tabled)" P.q

  let k_bits =
    let rec bits v acc = if v <= 1 then acc else bits (v / 2) (acc + 1) in
    bits P.q 0

  let byte_size = (k_bits + 8) / 8
  let zero = 0
  let one = 1
  let equal = Int.equal
  let compare = Int.compare
  let hash x = x
  let repr x = x

  let of_repr x =
    assert (x >= 0 && x < P.q);
    x

  let add a b =
    Metrics.tick_adds 1;
    Tables.add tables a b

  let sub a b =
    Metrics.tick_adds 1;
    Tables.sub tables a b

  let neg a =
    Metrics.tick_adds 1;
    Tables.neg tables a

  let mul a b =
    Metrics.tick_mults 1;
    Tables.mul tables a b

  let inv a =
    Metrics.tick_invs 1;
    Tables.inv tables a

  let div a b = mul a (inv b)

  let pow x e =
    Metrics.tick_mults 1;
    Tables.pow tables x e

  let of_int i =
    if i < 0 then invalid_arg (name ^ ".of_int: negative") else i mod P.q

  let random g = Prng.int g P.q

  let rec random_nonzero g =
    let x = random g in
    if x = 0 then random_nonzero g else x

  let lsb x = x land 1
  let to_bits x = Array.init k_bits (fun i -> (x lsr i) land 1 = 1)

  let to_bytes x =
    let b = Bytes.create byte_size in
    Field_bytes.encode_int b ~off:0 ~width:byte_size x;
    b

  let of_bytes b =
    Field_bytes.check_length name b byte_size;
    let v = Field_bytes.decode_int b ~off:0 ~width:byte_size in
    if v >= P.q then invalid_arg (name ^ ".of_bytes: non-canonical residue");
    v

  let pp = Format.pp_print_int
  let to_string = string_of_int

  (* Elements are canonical residues, so the raw table kernel is
     directly the field kernel. *)
  let batch_eval = Some (fun css xs -> Tables.eval_batch tables css xs)
end
