(** Small prime fields [Z_q] with exp/log table arithmetic.

    Section 2 of the paper: "We can implement operations over Zq via a
    table, so that they take O(log q) time." A discrete-log table over a
    generator [g] turns multiplication and inversion into two lookups and
    one addition. Intended for the [q = O(l)] base field of the special
    FFT field {!Fft_field}; the table size is [O(q)]. *)

module Tables : sig
  type t
  (** Shared, untick-ed raw arithmetic over [Z_q]; the building block
      for {!Ntt} and {!Fft_field} inner loops. *)

  val make : q:int -> t
  (** [q] must be prime and [3 <= q < 2^20]. *)

  val q : t -> int
  val generator : t -> int
  (** The primitive root the tables are built on. *)

  val add : t -> int -> int -> int
  val sub : t -> int -> int -> int
  val neg : t -> int -> int
  val mul : t -> int -> int -> int
  val inv : t -> int -> int
  val pow : t -> int -> int -> int
  val exp : t -> int -> int
  (** [exp tbl e] is [generator^e mod q], [0 <= e < 2(q-1)]. *)

  val log : t -> int -> int
  (** Discrete log base [generator]; argument must be non-zero. *)

  val horner : t -> int array -> int -> int
  (** Raw Horner evaluation of a coefficient vector (low-to-high) at
      one point, entirely in the tables (no {!Metrics} ticks). *)

  val eval_batch : t -> int array array -> int array -> int array array
  (** [eval_batch tbl css xs] is the raw batch multipoint kernel:
      [(eval_batch tbl css xs).(j).(i) = p_j(xs.(i))]. When [xs] is a
      step-1 arithmetic progression mod [q] (the protocol grid
      [of_int 1..n]) each polynomial runs the finite-difference engine
      — [len] Horner seeds then [len-1] raw additions per further point
      — otherwise per-point log-domain Horner. No ticks, no
      randomness. *)
end

module type PARAM = sig
  val q : int
end

module Make (P : PARAM) : sig
  include Field_intf.S

  val repr : t -> int
  val of_repr : int -> t
end
