module Make (F : Field_intf.S) = struct
  module P = Poly.Make (F)

  type t = {
    n : int;
    deg : int;
    xs : F.t array; (* xs.(i) = F.of_int (i + 1), player i's point *)
    vand : F.t array array; (* vand.(i).(d) = xs.(i)^d, d <= deg *)
    ext : F.t array array;
        (* ext.(r).(j) = L_j(xs.(deg + 1 + r)) for the Lagrange basis
           over the first deg + 1 grid points: the full-grid degree
           check is "every later value equals its extension row dotted
           with the first deg + 1 values". *)
    weights0 : (int, F.t array) Hashtbl.t;
        (* subset bitset -> Lagrange-at-zero weights, ids ascending *)
    exts : (int, F.t array array) Hashtbl.t;
        (* subset bitset -> extension rows over its first deg + 1 ids *)
    sc_ids : int array; (* scratch arena for the array reconstruct path *)
    sc_ys : F.t array;
    mutable full_w0 : F.t array option;
        (* Lagrange-at-zero weights of the first deg + 1 grid points,
           built on first use: the full-inbox fast path of
           [reconstruct_zero_checked_into] — the steady state of a
           fault-free exposure — reads these and the [ext] rows
           directly, skipping the subset bitset and cache lookups. *)
  }

  let n plan = plan.n
  let degree_bound plan = plan.deg
  let point plan i = plan.xs.(i)

  (* Lagrange basis rows over base points [bs]: for each y in [ys] the
     row of values L_j(y). Denominator inverses are shared across rows;
     the numerators come from prefix/suffix products of (y - bs.(m)),
     so each row costs O(|bs|) multiplications. *)
  let basis_rows bs ys =
    let b = Array.length bs in
    let inv_denom =
      Array.init b (fun j ->
          let d = ref F.one in
          for m = 0 to b - 1 do
            if m <> j then d := F.mul !d (F.sub bs.(j) bs.(m))
          done;
          (* Distinct grid points make the product non-zero. *)
          F.inv !d)
    in
    Array.map
      (fun y ->
        let diff = Array.init b (fun m -> F.sub y bs.(m)) in
        let pre = Array.make (b + 1) F.one in
        for m = 0 to b - 1 do
          pre.(m + 1) <- F.mul pre.(m) diff.(m)
        done;
        let suf = Array.make (b + 1) F.one in
        for m = b - 1 downto 0 do
          suf.(m) <- F.mul suf.(m + 1) diff.(m)
        done;
        Array.init b (fun j ->
            F.mul (F.mul pre.(j) suf.(j + 1)) inv_denom.(j)))
      ys

  (* Lagrange-at-zero weights for the point set [ps]: weight i is
     prod_{j<>i} (0 - x_j) / (x_i - x_j) — exactly the coefficients the
     direct interpolate_at formula derives per call. *)
  let zero_weights ps =
    let s = Array.length ps in
    let nx = Array.map F.neg ps in
    let pre = Array.make (s + 1) F.one in
    for m = 0 to s - 1 do
      pre.(m + 1) <- F.mul pre.(m) nx.(m)
    done;
    let suf = Array.make (s + 1) F.one in
    for m = s - 1 downto 0 do
      suf.(m) <- F.mul suf.(m + 1) nx.(m)
    done;
    Array.init s (fun i ->
        let num = F.mul pre.(i) suf.(i + 1) in
        let den = ref F.one in
        for j = 0 to s - 1 do
          if j <> i then den := F.mul !den (F.sub ps.(i) ps.(j))
        done;
        F.div num !den)

  let make ~n ~t =
    if n < 1 then invalid_arg "Grid.make: n must be positive";
    if t < 0 || t >= n then invalid_arg "Grid.make: need 0 <= t < n";
    let xs = Array.init n (fun i -> F.of_int (i + 1)) in
    let vand =
      Array.init n (fun i ->
          let row = Array.make (t + 1) F.one in
          for d = 1 to t do
            row.(d) <- F.mul row.(d - 1) xs.(i)
          done;
          row)
    in
    let ext = basis_rows (Array.sub xs 0 (t + 1)) (Array.sub xs (t + 1) (n - t - 1)) in
    {
      n;
      deg = t;
      xs;
      vand;
      ext;
      weights0 = Hashtbl.create 7;
      exts = Hashtbl.create 7;
      sc_ids = Array.make n 0;
      sc_ys = Array.make n F.zero;
      full_w0 = None;
    }

  let eval_coeffs plan cs =
    let len = Array.length cs in
    if len > plan.deg + 1 then
      invalid_arg "Grid.eval_coeffs: degree exceeds the plan bound";
    if len = 0 then Array.make plan.n F.zero
    else
      Array.init plan.n (fun i ->
          let row = plan.vand.(i) in
          let acc = ref cs.(0) in
          for d = 1 to len - 1 do
            acc := F.add !acc (F.mul cs.(d) row.(d))
          done;
          !acc)

  let eval_poly plan p =
    let d = P.degree p in
    if d > plan.deg then
      invalid_arg "Grid.eval_poly: degree exceeds the plan bound";
    if d < 0 then Array.make plan.n F.zero
    else
      Array.init plan.n (fun i ->
          let row = plan.vand.(i) in
          let acc = ref (P.coeff p 0) in
          for j = 1 to d do
            acc := F.add !acc (F.mul (P.coeff p j) row.(j))
          done;
          !acc)

  let fits plan values =
    if Array.length values <> plan.n then
      invalid_arg "Grid.fits: expected one value per grid point";
    Metrics.tick_interpolation ();
    let b = plan.deg + 1 in
    let ok = ref true in
    let r = ref 0 in
    while !ok && !r < plan.n - b do
      let row = plan.ext.(!r) in
      let acc = ref F.zero in
      for j = 0 to b - 1 do
        acc := F.add !acc (F.mul row.(j) values.(j))
      done;
      if not (F.equal !acc values.(b + !r)) then ok := false;
      incr r
    done;
    !ok

  (* ---- subsets -------------------------------------------------- *)

  (* Canonical subset order is ascending player id; the cache key is the
     membership bitset, which fits one word for n <= 62 (every deployed
     grid: of_int player ids cap n well below that in the small fields,
     and OCaml ints carry 62 bits). Larger grids skip the cache rather
     than the computation. *)
  let subset_key plan ids =
    if plan.n > 62 then None
    else Some (List.fold_left (fun acc i -> acc lor (1 lsl i)) 0 ids)

  (* [sort_points_opt] is [None] when two points share a player id —
     degraded networks deliver duplicates, which only the
     error-correcting fallback knows how to weigh. *)
  let sort_points_opt plan points =
    (match points with
    | [] -> invalid_arg "Grid: no points"
    | _ -> ());
    let ps = List.sort (fun (a, _) (b, _) -> compare a b) points in
    let rec check prev = function
      | [] -> true
      | (i, _) :: rest ->
          if i < 0 || i >= plan.n then
            invalid_arg "Grid: player id out of range";
          i <> prev && check i rest
    in
    if check (-1) ps then Some ps else None

  let sort_points plan points =
    match sort_points_opt plan points with
    | Some ps -> ps
    | None -> invalid_arg "Grid: duplicate player id"

  let points_of_ids plan ids =
    Array.of_list (List.map (fun i -> plan.xs.(i)) ids)

  let weights_for plan ids =
    match subset_key plan ids with
    | None -> zero_weights (points_of_ids plan ids)
    | Some key -> (
        match Hashtbl.find_opt plan.weights0 key with
        | Some w -> w
        | None ->
            let w = zero_weights (points_of_ids plan ids) in
            Hashtbl.replace plan.weights0 key w;
            w)

  (* Extension rows of a subset: Lagrange basis over its first deg + 1
     ids, evaluated at the remaining ids. Callers guarantee
     |ids| >= deg + 2. *)
  let ext_for plan ids =
    let build () =
      let arr = Array.of_list ids in
      let b = plan.deg + 1 in
      let base = Array.map (fun i -> plan.xs.(i)) (Array.sub arr 0 b) in
      let extra =
        Array.map (fun i -> plan.xs.(i))
          (Array.sub arr b (Array.length arr - b))
      in
      basis_rows base extra
    in
    match subset_key plan ids with
    | None -> build ()
    | Some key -> (
        match Hashtbl.find_opt plan.exts key with
        | Some rows -> rows
        | None ->
            let rows = build () in
            Hashtbl.replace plan.exts key rows;
            rows)

  let fits_sorted plan ps =
    let b = plan.deg + 1 in
    let s = List.length ps in
    if s <= b then true
    else begin
      let ids = List.map fst ps in
      let rows = ext_for plan ids in
      let ys = Array.of_list (List.map snd ps) in
      let ok = ref true in
      let r = ref 0 in
      while !ok && !r < s - b do
        let row = (rows : F.t array array).(!r) in
        let acc = ref F.zero in
        for j = 0 to b - 1 do
          acc := F.add !acc (F.mul row.(j) ys.(j))
        done;
        if not (F.equal !acc ys.(b + !r)) then ok := false;
        incr r
      done;
      !ok
    end

  let fits_on plan points =
    let ps = sort_points plan points in
    Metrics.tick_interpolation ();
    fits_sorted plan ps

  let reconstruct_sorted plan ps =
    let ids = List.map fst ps in
    let w = weights_for plan ids in
    let acc = ref F.zero in
    List.iteri (fun idx (_, y) -> acc := F.add !acc (F.mul w.(idx) y)) ps;
    !acc

  let reconstruct_zero plan points =
    let ps = sort_points plan points in
    Metrics.tick_interpolation ();
    reconstruct_sorted plan ps

  let reconstruct_zero_checked plan points =
    Metrics.tick_interpolation ();
    match sort_points_opt plan points with
    | None -> None
    | Some ps ->
        let b = plan.deg + 1 in
        if List.length ps < b then None
        else if not (fits_sorted plan ps) then None
        else
          let rec take k = function
            | p :: rest when k > 0 -> p :: take (k - 1) rest
            | _ -> []
          in
          Some (reconstruct_sorted plan (take b ps))

  (* ---- batch dealing --------------------------------------------- *)

  (* Evaluate a batch of polynomials (degree <= deg each) at all n grid
     points. With a field batch kernel ({!Field_intf.S.batch_eval}) the
     arithmetic runs raw under [Metrics.without_counting] and the model
     cost is ticked in bulk — exactly what the per-poly Horner path
     performs: n*d mults and n*d adds for a polynomial of normalized
     degree d >= 1, nothing for constants — so traced runs stay
     tick-identical to M sequential {!eval_poly} calls. Kernels draw no
     randomness, so the PRNG stream is untouched either way. *)
  let eval_poly_batch plan ps =
    match F.batch_eval with
    | None -> Array.map (eval_poly plan) ps
    | Some kernel ->
        let m = Array.length ps in
        let css = Array.make m [||] in
        let total = ref 0 in
        for j = 0 to m - 1 do
          let d = P.degree ps.(j) in
          if d > plan.deg then
            invalid_arg "Grid.eval_poly: degree exceeds the plan bound";
          if d >= 1 then total := !total + (plan.n * d);
          css.(j) <- P.coeffs ps.(j)
        done;
        let out = Metrics.without_counting (fun () -> kernel css plan.xs) in
        Metrics.tick_mults !total;
        Metrics.tick_adds !total;
        out

  (* ---- arena reconstruct ------------------------------------------ *)

  (* Array-based twins of the subset-cache lookups: same bitset keys,
     same built values, so a plan can serve the list and array paths
     interchangeably. *)
  let subset_key_arr plan ids len =
    if plan.n > 62 then None
    else begin
      let key = ref 0 in
      for i = 0 to len - 1 do
        key := !key lor (1 lsl ids.(i))
      done;
      Some !key
    end

  let ext_for_arr plan ids len =
    let build () =
      let b = plan.deg + 1 in
      let base = Array.init b (fun i -> plan.xs.(ids.(i))) in
      let extra = Array.init (len - b) (fun i -> plan.xs.(ids.(b + i))) in
      basis_rows base extra
    in
    match subset_key_arr plan ids len with
    | None -> build ()
    | Some key -> (
        match Hashtbl.find_opt plan.exts key with
        | Some rows -> rows
        | None ->
            let rows = build () in
            Hashtbl.replace plan.exts key rows;
            rows)

  let weights_for_arr plan ids len =
    let build () = zero_weights (Array.init len (fun i -> plan.xs.(ids.(i)))) in
    match subset_key_arr plan ids len with
    | None -> build ()
    | Some key -> (
        match Hashtbl.find_opt plan.weights0 key with
        | Some w -> w
        | None ->
            let w = build () in
            Hashtbl.replace plan.weights0 key w;
            w)

  (* [reconstruct_zero_checked] over parallel arrays, using the plan's
     scratch arena: same result, same single interpolation tick, same
     subset-cache keys — but no list churn, no comparator closures, and
     O(1) minor words on the cache-hit path. Reads the first [len]
     entries of [ids]/[ys]; the caller's arrays are not modified. Not
     re-entrant: one reconstruction at a time per plan. *)
  let reconstruct_zero_checked_into plan ~ids ~ys ~len =
    Metrics.tick_interpolation ();
    if len = 0 then invalid_arg "Grid: no points";
    if len > plan.n then begin
      (* More points than players: some id repeats (pigeonhole), so the
         duplicate scan below would answer None — do so directly instead
         of overflowing the n-sized scratch. Ids are still validated,
         matching the list twin on malformed input. *)
      for i = 0 to len - 1 do
        if ids.(i) < 0 || ids.(i) >= plan.n then
          invalid_arg "Grid: player id out of range"
      done;
      None
    end
    else begin
    (* Full-inbox fast path: every player present, in id order — the
       steady state of a fault-free exposure round. The subset is the
       whole grid, so the degree check runs over the plan's own [ext]
       rows and the reconstruction over a once-built weight vector:
       identical field elements and steady-state tick pattern to the
       general path below (same basis_rows / zero_weights on the same
       points; the one-time row build was ticked at plan construction
       rather than on first use), with no copying, sorting, bitset keys
       or cache lookups. *)
    let full =
      len = plan.n
      &&
      let ok = ref true in
      for i = 0 to len - 1 do
        if ids.(i) <> i then ok := false
      done;
      !ok
    in
    if full then begin
      let b = plan.deg + 1 in
      let ok = ref true in
      let r = ref 0 in
      while !ok && !r < len - b do
        let row = plan.ext.(!r) in
        let acc = ref F.zero in
        for j = 0 to b - 1 do
          acc := F.add !acc (F.mul row.(j) ys.(j))
        done;
        if not (F.equal !acc ys.(b + !r)) then ok := false;
        incr r
      done;
      if not !ok then None
      else begin
        let w =
          match plan.full_w0 with
          | Some w -> w
          | None ->
              let w = zero_weights (Array.sub plan.xs 0 b) in
              plan.full_w0 <- Some w;
              w
        in
        let acc = ref F.zero in
        for i = 0 to b - 1 do
          acc := F.add !acc (F.mul w.(i) ys.(i))
        done;
        Some !acc
      end
    end
    else begin
    let sc_ids = plan.sc_ids and sc_ys = plan.sc_ys in
    for i = 0 to len - 1 do
      let id = ids.(i) in
      if id < 0 || id >= plan.n then
        invalid_arg "Grid: player id out of range";
      sc_ids.(i) <- id;
      sc_ys.(i) <- ys.(i)
    done;
    (* Insertion sort by id: subsets are near-sorted (inbox order) and
       small, and this allocates nothing. *)
    for i = 1 to len - 1 do
      let id = sc_ids.(i) and y = sc_ys.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && sc_ids.(!j) > id do
        sc_ids.(!j + 1) <- sc_ids.(!j);
        sc_ys.(!j + 1) <- sc_ys.(!j);
        decr j
      done;
      sc_ids.(!j + 1) <- id;
      sc_ys.(!j + 1) <- y
    done;
    let dup = ref false in
    for i = 0 to len - 2 do
      if sc_ids.(i) = sc_ids.(i + 1) then dup := true
    done;
    let b = plan.deg + 1 in
    if !dup || len < b then None
    else begin
      let ok =
        if len <= b then true
        else begin
          let rows = ext_for_arr plan sc_ids len in
          let ok = ref true in
          let r = ref 0 in
          while !ok && !r < len - b do
            let row = rows.(!r) in
            let acc = ref F.zero in
            for j = 0 to b - 1 do
              acc := F.add !acc (F.mul row.(j) sc_ys.(j))
            done;
            if not (F.equal !acc sc_ys.(b + !r)) then ok := false;
            incr r
          done;
          !ok
        end
      in
      if not ok then None
      else begin
        let w = weights_for_arr plan sc_ids b in
        let acc = ref F.zero in
        for i = 0 to b - 1 do
          acc := F.add !acc (F.mul w.(i) sc_ys.(i))
        done;
        Some !acc
      end
    end
    end
    end
end
