(** Precomputed evaluation-grid kernels.

    Every protocol in this repository works over the same fixed point
    set: player [i] lives at [F.of_int (i + 1)], and a session's
    parameters [(n, t)] never change between the [deal], [verify] and
    [reconstruct] calls of a batch. The naive paths re-derive the
    Lagrange/Vandermonde setup for that grid on every call — an
    [O(n^2)] cost the paper's amortization argument never pays, because
    the setup is the same each time. A {!t} is that setup, computed
    once per [(field, n, t)] session:

    - a transposed-Vandermonde table [x_i^d] for multi-point evaluation
      of degree-[<= t] polynomials (dealing: one polynomial to all [n]
      grid points, the table shared across all [M] polynomials of a
      batch);
    - extension rows [L_j(x_i)] of the Lagrange basis over the first
      [t + 1] grid points, turning the Fig. 2/Fig. 3 degree check
      ("do all [n] broadcast values lie on one degree-[<= t]
      polynomial?") into [(n - t - 1)(t + 1)] multiplications with no
      polynomial allocation;
    - per-subset caches of Lagrange-at-zero weights and extension rows,
      keyed by the participating-index bitset, for Coin-Expose
      reconstruction under missing or faulty shares (the subset of
      trusted senders repeats across coins of a batch).

    All kernels compute exactly the same field elements as the naive
    {!Poly} paths (fields are exact; only the association order
    differs, property-tested in [test/test_kernel.ml]), and tick
    {!Metrics} identically where the naive path did: one
    [tick_interpolation] per degree check or reconstruction, and the
    same multiplication count as Horner evaluation per dealt share. *)

module Make (F : Field_intf.S) : sig
  module P : module type of Poly.Make (F)

  type t
  (** A plan for the grid [F.of_int 1 .. F.of_int n] with degree bound
      [t]. Immutable apart from its internal append-only subset
      caches. *)

  val make : n:int -> t:int -> t
  (** Precompute the plan; [O(n t)] field operations and [t + 1]
      inversions, paid once per session. Requires [0 <= t < n] and [n]
      distinct non-zero grid points to exist in [F]. *)

  val n : t -> int
  val degree_bound : t -> int

  val point : t -> int -> F.t
  (** [point plan i = F.of_int (i + 1)], read from the plan. *)

  val eval_coeffs : t -> F.t array -> F.t array
  (** Evaluate the polynomial with the given coefficients (increasing
      degree, length [<= t + 1]) at all [n] grid points via the
      precomputed power table. Same multiplication/addition count as
      [n] Horner evaluations. *)

  val eval_poly : t -> P.t -> F.t array
  (** [eval_coeffs] on a {!Poly.Make.t} of degree [<= t], without
      copying its coefficients. *)

  val fits : t -> F.t array -> bool
  (** [fits plan values]: do the [n] grid values (indexed by player)
      lie on a single polynomial of degree [<= t]? Equivalent to
      {!Poly.Make.fits_degree} on the full grid; ticks one
      interpolation. *)

  val fits_on : t -> (int * F.t) list -> bool
  (** Subset variant: the points [(player, value)] (distinct players)
      lie on a degree-[<= t] polynomial. Subsets of size [<= t + 1]
      fit trivially. Extension rows are cached per subset. Ticks one
      interpolation. *)

  val reconstruct_zero : t -> (int * F.t) list -> F.t
  (** Interpolate [f(0)] through the given [(player, value)] points
      (distinct players; no degree check — all points are used, like
      {!Poly.Make.interpolate_at} at zero). Weights are cached per
      subset. Ticks one interpolation. *)

  val reconstruct_zero_checked : t -> (int * F.t) list -> F.t option
  (** Combined degree check and reconstruction, ticking one
      interpolation total: [Some f(0)] when all points lie on one
      degree-[<= t] polynomial [f] (at least [t + 1] points required),
      [None] otherwise — including when two points share a player id
      (degraded networks deliver duplicates). This is the Coin-Expose
      fast path; a [None] means some share is faulty or duplicated and
      an error-correcting decoder must take over. *)

  val eval_poly_batch : t -> P.t array -> F.t array array
  (** Deal a batch: evaluate [M] polynomials (each of degree [<= t]) at
      all [n] grid points; row [j] is [eval_poly plan ps.(j)]. When the
      field provides a {!Field_intf.S.batch_eval} kernel (NTT/finite
      differences over [Z_q], log-table [GF(2^k)], bit-sliced wide
      fields) the arithmetic runs as raw word/table ops and the model
      cost is ticked in bulk, keeping results, Metrics and the PRNG
      stream bit-identical to [M] sequential {!eval_poly} calls (pinned
      by differential tests); otherwise it is exactly that sequential
      loop. *)

  val reconstruct_zero_checked_into :
    t -> ids:int array -> ys:F.t array -> len:int -> F.t option
  (** {!reconstruct_zero_checked} over parallel arrays — the first
      [len] entries of [ids]/[ys], in any order, caller's arrays left
      untouched — using a scratch arena inside the plan: no
      intermediate lists, no sort closures, O(1) minor-heap allocation
      on the subset-cache hit path. Same result, same single
      interpolation tick, same cache keys as the list version. Not
      re-entrant: one reconstruction at a time per plan. *)
end
