let log_src = Logs.Src.create "dprbg.net" ~doc:"Synchronous network rounds"

module Log = (val Logs.src_log log_src)

(* ------------------------- Fault plans --------------------------- *)

module Plan = struct
  type stats = {
    dropped : int;
    delayed : int;
    duplicated : int;
    corrupted : int;
    reordered : int;
    crashed_msgs : int;
    rounds : int;
  }

  type t = {
    prng : Prng.t;
    (* Probabilities in basis points (1/10000) so sampling stays in
       integer arithmetic and replays exactly. *)
    drop : int;
    delay : int;
    max_delay : int;
    duplicate : int;
    corrupt : int;
    reorder : int;
    crashes : (int * int * int option) list;
    (* Supervised real failures: (player, from_round) crash-stop marks
       added mid-run by the transport supervision layer when a physical
       peer dies. Semantically identical to a [crashes] entry with no
       recovery round. *)
    mutable real_crashes : (int * int) list;
    retransmits : int;
    bounded : bool;
    mutable round : int;
    (* True while a [deliver] barrier is in progress: the round clock
       has already advanced to the round being delivered, so the "round
       currently being formed" is [round] rather than [round + 1]. *)
    mutable delivering : bool;
    (* (attempt, attempts) while inside a retransmit envelope. *)
    mutable envelope : (int * int) option;
    mutable dropped : int;
    mutable delayed : int;
    mutable duplicated : int;
    mutable corrupted : int;
    mutable reordered : int;
    mutable crashed_msgs : int;
  }

  let bp name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Net.Plan.make: %s must be in [0, 1]" name);
    int_of_float ((p *. 10000.0) +. 0.5)

  let make ?(drop = 0.0) ?(delay = 0.0) ?(max_delay = 2) ?(duplicate = 0.0)
      ?(corrupt = 0.0) ?(reorder = 0.0) ?(crashes = []) ?(retransmits = 0)
      ?(bounded = true) ~seed () =
    if max_delay < 1 then invalid_arg "Net.Plan.make: max_delay must be >= 1";
    if retransmits < 0 then
      invalid_arg "Net.Plan.make: retransmits must be >= 0";
    List.iter
      (fun (i, from, until) ->
        if i < 0 then invalid_arg "Net.Plan.make: crash player id negative";
        if from < 1 then invalid_arg "Net.Plan.make: crash round must be >= 1";
        match until with
        | Some u when u <= from ->
            invalid_arg "Net.Plan.make: recovery round must follow the crash"
        | _ -> ())
      crashes;
    {
      prng = Prng.of_int seed;
      drop = bp "drop" drop;
      delay = bp "delay" delay;
      max_delay;
      duplicate = bp "duplicate" duplicate;
      corrupt = bp "corrupt" corrupt;
      reorder = bp "reorder" reorder;
      crashes;
      real_crashes = [];
      retransmits;
      bounded;
      round = 0;
      delivering = false;
      envelope = None;
      dropped = 0;
      delayed = 0;
      duplicated = 0;
      corrupted = 0;
      reordered = 0;
      crashed_msgs = 0;
    }

  let retransmits p = p.retransmits
  let rounds_elapsed p = p.round
  let advance_round p = p.round <- p.round + 1
  let begin_delivery p = p.delivering <- true
  let end_delivery p = p.delivering <- false

  (* The round whose messages are currently in flight: during the send
     phase the upcoming round, during a [deliver] barrier the round the
     (already advanced) clock points at. This is the round a supervised
     real failure is pinned to, whichever phase detected it. *)
  let forming_round p = if p.delivering then max 1 p.round else p.round + 1

  (* Down during [from, until): a crashed player sends and receives
     nothing; with [until = None] it never recovers (crash-stop).
     Supervised real crashes are crash-stop marks on the same clock. *)
  let down_at p r i =
    List.exists
      (fun (j, from, until) ->
        j = i && from <= r
        && match until with None -> true | Some u -> r < u)
      p.crashes
    || List.exists (fun (j, from) -> j = i && from <= r) p.real_crashes

  let really_down_at p r i =
    List.exists (fun (j, from) -> j = i && from <= r) p.real_crashes

  let down p i = down_at p (p.round + 1) i

  (* Supervision hook: a physical peer died (killed process, poisoned
     domain, stream past its deadline) and the transport layer is
     converting it into a tolerated crash-stop fault starting at the
     round currently being formed — the exact semantics a static
     [crashes] entry at that round would have had. Returns whether the
     mark is new (the peer was not already down this round). *)
  let mark_crashed p ~player =
    let r = forming_round p in
    if down_at p r player then false
    else begin
      p.real_crashes <- (player, r) :: p.real_crashes;
      true
    end

  let real_crashes p = List.sort compare p.real_crashes
  let real_crash_count p = List.length p.real_crashes

  let hit p basis = basis > 0 && Prng.int p.prng 10000 < basis

  (* The absorption guarantee of bounded plans: the last of a multi-send
     retransmit envelope is never link-faulted, so an honest message
     always gets through within the envelope. Crashes are exempt — no
     amount of retransmission reaches a dead player. *)
  let suppressed p =
    p.bounded
    && match p.envelope with Some (a, n) -> n > 1 && a = n | None -> false

  let sample_delay p =
    let cap =
      match p.envelope with
      | Some (a, n) when p.bounded -> min p.max_delay (n - a)
      | _ -> p.max_delay
    in
    if cap < 1 then 0 else 1 + Prng.int p.prng cap

  type link_fate = Deliver | Drop | Delay of int | Duplicate | Corrupt

  let link_fate p =
    if suppressed p then Deliver
    else if hit p p.drop then begin
      p.dropped <- p.dropped + 1;
      Drop
    end
    else if hit p p.delay then begin
      match sample_delay p with
      | 0 -> Deliver
      | d ->
          p.delayed <- p.delayed + 1;
          Delay d
    end
    else if hit p p.duplicate then begin
      p.duplicated <- p.duplicated + 1;
      Duplicate
    end
    else if hit p p.corrupt then begin
      p.corrupted <- p.corrupted + 1;
      Corrupt
    end
    else Deliver

  (* Byte-level corruption: flip one uniformly random bit of the wire
     encoding. The caller re-decodes; a strict decoder that rejects the
     mangled bytes turns the fault into a (detected) drop. *)
  let corrupt_bytes p b =
    let b = Bytes.copy b in
    let len = Bytes.length b in
    if len > 0 then begin
      let pos = Prng.int p.prng len in
      let bit = Prng.int p.prng 8 in
      Bytes.set_uint8 b pos (Bytes.get_uint8 b pos lxor (1 lsl bit))
    end;
    b

  let broadcast_fate p =
    if suppressed p then `Deliver
    else if hit p p.drop then begin
      p.dropped <- p.dropped + 1;
      `Drop
    end
    else if hit p p.corrupt then begin
      p.corrupted <- p.corrupted + 1;
      `Corrupt
    end
    else `Deliver

  let count_crashed_msg p = p.crashed_msgs <- p.crashed_msgs + 1
  let note_crashed_msg = count_crashed_msg

  let enter_envelope p ~attempt ~attempts =
    p.envelope <- Some (attempt, attempts)

  let exit_envelope p = p.envelope <- None

  let shuffle_inbox p inbox =
    if hit p p.reorder then begin
      p.reordered <- p.reordered + 1;
      let a = Array.of_list inbox in
      Prng.shuffle p.prng a;
      Array.to_list a
    end
    else inbox

  let stats p =
    {
      dropped = p.dropped;
      delayed = p.delayed;
      duplicated = p.duplicated;
      corrupted = p.corrupted;
      reordered = p.reordered;
      crashed_msgs = p.crashed_msgs;
      rounds = p.round;
    }

  let pp_stats ppf (s : stats) =
    Format.fprintf ppf
      "dropped=%d delayed=%d duplicated=%d corrupted=%d reordered=%d \
       crashed-msgs=%d rounds=%d"
      s.dropped s.delayed s.duplicated s.corrupted s.reordered s.crashed_msgs
      s.rounds
end

let ambient_plan : Plan.t option ref = ref None

let with_plan plan f =
  let previous = !ambient_plan in
  ambient_plan := Some plan;
  Fun.protect ~finally:(fun () -> ambient_plan := previous) f

let current_plan () = !ambient_plan

let retransmit_budget () =
  match !ambient_plan with None -> 0 | Some p -> Plan.retransmits p

(* A carrier is the physical message-moving layer under a network: the
   coordinator still decides every fault, ordering and metric outcome,
   but each surviving message is [post]ed to the carrier when it enters
   a queue and must come back — matched by uid — from [collect] at the
   round barrier. With no carrier the network is the pure in-memory
   simulator, bit-identical to its pre-carrier behaviour. *)
module Carrier = struct
  type 'msg t = {
    name : string;  (** backend tag, e.g. ["domains"] or ["socket"] *)
    post : src:int -> dst:int -> uid:int -> 'msg -> unit;
    collect : unit -> (int * 'msg) list array;
        (** per-destination [(uid, msg)] frames since the last collect *)
  }
end

exception Desync of string
(** A carrier lost or invented a frame: the physical layer disagrees
    with the coordinator's bookkeeping. Always a transport bug, never a
    simulated fault — simulated faults are decided before posting. *)

type 'msg t = {
  n : int;
  byte_size : 'msg -> int;
  codec : (('msg -> bytes) * (bytes -> 'msg)) option;
  plan : Plan.t option;
  carrier : 'msg Carrier.t option;
  (* queues.(dst) holds (src, uid, msg) in reverse send order. *)
  queues : (int * int * 'msg) list array;
  (* In-flight delayed messages: (arrival_round, src, dst, msg), with
     arrival measured on the plan's global round clock. *)
  mutable delayed : (int * int * int * 'msg) list;
  mutable rounds : int;
  (* Next per-network message uid; identifies each queued message to the
     carrier so delivery can match physical frames back to the
     coordinator's queue entries. *)
  mutable next_uid : int;
  (* Messages enqueued since the last delivery / in the last delivered
     round. On a pristine net, where drivers send at most once per
     (src, dst) pair, [last_enqueued = n * n] proves the round was
     complete — the O(1) fast path behind {!complete_last_round}. *)
  mutable enqueued : int;
  mutable last_enqueued : int;
}

let create ?carrier ?codec ~n ~byte_size () =
  if n < 1 then invalid_arg "Net.create: n must be positive";
  {
    n;
    byte_size;
    codec;
    plan = !ambient_plan;
    carrier;
    queues = Array.make n [];
    delayed = [];
    rounds = 0;
    next_uid = 0;
    enqueued = 0;
    last_enqueued = 0;
  }

let n t = t.n

let check_id t label i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Net.%s: player id %d out of range" label i)

(* Every message surviving the fault decision goes through here: it is
   posted to the carrier (when one is attached) under a fresh uid and
   recorded in the coordinator's queue under the same uid. *)
let queue_message t ~src ~dst msg =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  (match t.carrier with
  | Some c -> c.Carrier.post ~src ~dst ~uid msg
  | None -> ());
  (src, uid, msg)

let enqueue t ~src ~dst msg =
  t.enqueued <- t.enqueued + 1;
  t.queues.(dst) <- queue_message t ~src ~dst msg :: t.queues.(dst)

let corrupted_copy t plan msg =
  match t.codec with
  | None -> None (* no wire form to mangle: detected and discarded *)
  | Some (encode, decode) -> (
      match decode (Plan.corrupt_bytes plan (encode msg)) with
      | msg' -> Some msg'
      | exception _ -> None)

let send t ~src ~dst msg =
  check_id t "send" src;
  check_id t "send" dst;
  if src <> dst then begin
    let bytes = t.byte_size msg in
    Metrics.tick_message ~bytes_len:bytes;
    (* The event thunk allocates even when no collector is installed;
       at n players that is n^2 closures per round, so guard it. *)
    if Trace.enabled () then
      Trace.event (fun () -> Trace.Send { src; dst; bytes })
  end;
  match t.plan with
  | None -> enqueue t ~src ~dst msg
  | Some plan ->
      if Plan.down plan src then Plan.count_crashed_msg plan
      else if src = dst then
        (* Local hand-off: a player's channel to itself is its own
           memory — only a crash can lose it. *)
        enqueue t ~src ~dst msg
      else begin
        match Plan.link_fate plan with
        | Plan.Deliver -> enqueue t ~src ~dst msg
        | Plan.Drop -> ()
        | Plan.Delay d ->
            t.delayed <-
              (Plan.rounds_elapsed plan + 1 + d, src, dst, msg) :: t.delayed
        | Plan.Duplicate ->
            enqueue t ~src ~dst msg;
            enqueue t ~src ~dst msg
        | Plan.Corrupt -> (
            match corrupted_copy t plan msg with
            | Some msg' -> enqueue t ~src ~dst msg'
            | None -> ())
      end

let send_to_all t ~src f =
  check_id t "send_to_all" src;
  for dst = 0 to t.n - 1 do
    send t ~src ~dst (f dst)
  done

let deliver t =
  Trace.span Trace.Round "net.round" @@ fun () ->
  Metrics.tick_round ();
  t.rounds <- t.rounds + 1;
  (match t.plan with
  | Some plan ->
      Plan.advance_round plan;
      Plan.begin_delivery plan
  | None -> ());
  Fun.protect
    ~finally:(fun () ->
      match t.plan with Some plan -> Plan.end_delivery plan | None -> ())
  @@ fun () ->
  (* Uids below this boundary belong to this round's send phase; uids at
     or above it are delayed messages maturing below. The distinction
     matters for supervised crashes: a real death detected this round
     voids the victim's fresh sends (a simulated crash would have
     suppressed them at send time), but an in-flight delayed copy left
     the sender before it died and is still delivered, as in the
     simulator. *)
  let fresh_boundary = t.next_uid in
  (* Mature the delayed messages whose arrival round has come; they slot
     in ahead of this round's fresh sends so a retransmitted copy
     supersedes a stale one. *)
  (match t.plan with
  | None -> ()
  | Some plan ->
      let now = Plan.rounds_elapsed plan in
      let ready, waiting =
        List.partition (fun (at, _, _, _) -> at <= now) t.delayed
      in
      t.delayed <- waiting;
      List.iter
        (fun (_, src, dst, msg) ->
          t.queues.(dst) <- t.queues.(dst) @ [ queue_message t ~src ~dst msg ])
        (List.rev ready));
  Log.debug (fun m ->
      let pending =
        Array.fold_left (fun acc q -> acc + List.length q) 0 t.queues
      in
      m "round %d: delivering %d messages to %d players" t.rounds pending t.n);
  (* Collect from the carrier before deciding inbox fates: a supervised
     backend detects real peer deaths inside this barrier and marks them
     in the plan, and this round's crash voiding below must already see
     those marks for a real crash to be byte-identical to a simulated
     one at the same round. All posts for this round (fresh sends and
     matured delays) have already happened. *)
  let arrived =
    match t.carrier with
    | None -> None
    | Some c ->
        let tbl = Hashtbl.create 64 in
        Array.iter
          (List.iter (fun (uid, msg) -> Hashtbl.replace tbl uid msg))
          (c.Carrier.collect ());
        Some tbl
  in
  let tagged =
    Array.mapi
      (fun dst queue ->
        t.queues.(dst) <- [];
        match t.plan with
        | Some plan when Plan.down_at plan (Plan.rounds_elapsed plan) dst ->
            (* A crashed player's inbox is void: messages addressed to it
               while it is down are lost, not buffered. *)
            List.iter (fun _ -> Plan.count_crashed_msg plan) queue;
            []
        | plan -> (
            (* Restore send order, then stable-sort by sender for
               deterministic iteration in protocol code. Senders post in
               ascending id order in the common full round, so the
               reversed queue is usually already sorted — a linear scan
               skips the sort (and its allocations) exactly when sorting
               would be the identity, which keeps the inbox identical. *)
            let rec sorted_by_src = function
              | (a, _, _) :: ((b, _, _) :: _ as rest) ->
                  a <= b && sorted_by_src rest
              | _ -> true
            in
            let restored = List.rev queue in
            let inbox =
              if sorted_by_src restored then restored
              else
                List.stable_sort
                  (fun (a, _, _) (b, _, _) -> Int.compare a b)
                  restored
            in
            match plan with
            | Some plan -> Plan.shuffle_inbox plan inbox
            | None -> inbox))
      t.queues
  in
  (* Void the fresh sends of supervised-crashed players. A simulated
     crash suppresses them in [send] (counting each), but a real death
     is only detected after the messages were queued and posted — drop
     and count them here so the inboxes and fault tallies line up with
     the equivalent simulated schedule. Delayed copies (uid at or past
     the boundary) stay: they left the sender while it was alive. *)
  let tagged =
    match t.plan with
    | Some plan when Plan.real_crash_count plan > 0 ->
        let now = Plan.rounds_elapsed plan in
        Array.map
          (List.filter (fun (src, uid, _) ->
               if uid < fresh_boundary && Plan.really_down_at plan now src
               then begin
                 Plan.count_crashed_msg plan;
                 false
               end
               else true))
          tagged
    | _ -> tagged
  in
  let inbox =
    match (t.carrier, arrived) with
    | None, _ | _, None ->
        Array.map (List.map (fun (src, _, msg) -> (src, msg))) tagged
    | Some c, Some arrived ->
        (* Materialize each inbox entry from the value that physically
           traversed the carrier, matched by uid. A missing uid means
           the backend lost a frame the coordinator accounted for. *)
        Array.map
          (List.map (fun (src, uid, _) ->
               match Hashtbl.find_opt arrived uid with
               | Some msg -> (src, msg)
               | None ->
                   raise
                     (Desync
                        (Printf.sprintf
                           "Net: %s carrier lost frame uid=%d from player %d"
                           c.Carrier.name uid src))))
          tagged
  in
  if Trace.enabled () then
    Array.iteri
      (fun dst msgs ->
        List.iter
          (fun (src, msg) ->
            Trace.event (fun () ->
                Trace.Recv { src; dst; bytes = t.byte_size msg }))
          msgs)
      inbox;
  t.last_enqueued <- t.enqueued;
  t.enqueued <- 0;
  inbox

let rounds_elapsed t = t.rounds

(* O(1) completeness certificate for the sentinel's silence tally: with
   no fault plan installed nothing is ever dropped, delayed or
   duplicated, so — given the driver discipline of at most one send per
   (src, dst) pair per round — [n * n] enqueued messages mean every
   sender reached every receiver. Under a plan this conservatively
   answers [false] and callers take the full per-sender walk. *)
let complete_last_round t =
  Option.is_none t.plan && t.last_enqueued = t.n * t.n

(* A retransmit envelope: run the same synchronous send round
   [retransmits + 1] times and merge the inboxes, keeping the latest
   copy received per sender. Honest senders re-deposit identical
   messages, so omission faults (drops, short delays, detected
   corruption) within the budget are absorbed; under a bounded plan the
   final attempt is guaranteed clean, making absorption deterministic.
   With no ambient plan — or a zero budget — this is exactly one
   ordinary round. *)
let exchange t ~send =
  match t.plan with
  | None ->
      send ();
      deliver t
  | Some plan ->
      let attempts = Plan.retransmits plan + 1 in
      let finally () = Plan.exit_envelope plan in
      if attempts = 1 then begin
        Plan.enter_envelope plan ~attempt:1 ~attempts:1;
        Fun.protect ~finally (fun () ->
            send ();
            deliver t)
      end
      else begin
        let latest = Array.init t.n (fun _ -> Array.make t.n None) in
        Fun.protect ~finally (fun () ->
            for attempt = 1 to attempts do
              Plan.enter_envelope plan ~attempt ~attempts;
              send ();
              let inbox = deliver t in
              Array.iteri
                (fun dst msgs ->
                  List.iter
                    (fun (src, msg) -> latest.(dst).(src) <- Some msg)
                    msgs)
                inbox
            done);
        Array.init t.n (fun dst ->
            List.filter_map
              (fun src ->
                Option.map (fun msg -> (src, msg)) latest.(dst).(src))
              (List.init t.n Fun.id))
      end

(* Attribution helper for the sentinel ledger: how many receivers ended
   an exchange with no copy at all from each sender. Under a bounded
   envelope with rt >= 1 an honest live sender's final copy always
   lands, so only crashed receivers (at most t of them) can miss it —
   persistent absence at t + 1 or more receivers is attributable to the
   sender, not the links. Pure integer bookkeeping: no field ops, no
   randomness. *)
let absent_counts ?(unique_senders = false) ~n inboxes =
  let missing = Array.make n 0 in
  (* Fast path for the hot exposure loop: when each inbox is known to
     hold at most one entry per sender — pristine nets (drivers send
     once per round) or merged retransmit envelopes (deduped by
     construction) — [n] full inboxes prove nobody is absent, and the
     per-sender walk is skipped entirely. *)
  if
    unique_senders
    && Array.for_all (fun ib -> List.compare_length_with ib n = 0) inboxes
  then missing
  else begin
    (* Epoch marking: [seen.(src) = i] means inbox [i] heard from [src],
       so one scratch array serves every inbox without reallocation. *)
    let seen = Array.make n (-1) in
    Array.iteri
      (fun i inbox ->
        List.iter
          (fun (src, _) -> if src >= 0 && src < n then seen.(src) <- i)
          inbox;
        for src = 0 to n - 1 do
          if seen.(src) <> i then missing.(src) <- missing.(src) + 1
        done)
      inboxes;
    missing
  end

module Faults = struct
  type t = { n : int; faulty : bool array }

  let none ~n = { n; faulty = Array.make n false }

  let make ~n ~faulty =
    let a = Array.make n false in
    List.iter
      (fun i ->
        if i < 0 || i >= n then invalid_arg "Faults.make: id out of range";
        if a.(i) then invalid_arg "Faults.make: duplicate id";
        a.(i) <- true)
      faulty;
    { n; faulty = a }

  let random g ~n ~t =
    if t < 0 || t > n then invalid_arg "Faults.random: bad t";
    make ~n ~faulty:(Prng.sample_distinct g t n)

  let n t = t.n
  let is_faulty t i = t.faulty.(i)
  let is_honest t i = not t.faulty.(i)

  let faulty t =
    List.filter (fun i -> t.faulty.(i)) (List.init t.n Fun.id)

  let honest t =
    List.filter (fun i -> not t.faulty.(i)) (List.init t.n Fun.id)

  let count t = List.length (faulty t)

  let pp ppf t =
    Format.fprintf ppf "faulty={%s}"
      (String.concat "," (List.map string_of_int (faulty t)))
end
