(** Synchronous network of [n] players with private point-to-point
    channels — the paper's communication model (Section 2).

    A protocol round is: every player deposits its outgoing messages with
    {!send} (or {!send_to_all}), then the round barrier {!deliver}
    advances time and hands every player its inbox. Synchrony means a
    message sent in round [r] arrives at the start of round [r+1] and a
    missing message is detectable — faulty players simply do not call
    {!send}.

    Channels are private: the simulator only ever exposes an inbox to its
    addressee (there is no eavesdropping API), which models the paper's
    secrecy assumption for shares in transit.

    Byzantine behaviour is expressed by the code driving a faulty
    player's sends — nothing here restricts what a player may send, to
    whom, or how inconsistently (equivocation is just [send]ing different
    values to different destinations).

    Every send ticks {!Metrics.tick_message} with the message's wire
    size and every barrier ticks {!Metrics.tick_round}, which is how the
    paper's per-protocol message/bit/round counts are measured.

    {b Degraded networks.} The paper assumes reliable channels; real
    deployments do not. A {!Plan} describes a degraded network — per-link
    message drop, delay, duplication, reordering, byte-level corruption,
    and whole-player crash/recovery windows — and is installed ambiently
    with {!with_plan}, mirroring how {!Metrics} sinks are installed.
    Networks created inside [with_plan] apply the plan's faults; the
    {!exchange} retransmit envelope then absorbs omission faults within a
    bounded budget so protocol drivers survive them without miscounting
    silence as Byzantine behaviour. *)

(** {1 Fault plans} *)

module Plan : sig
  type t
  (** One degraded-network schedule: probabilistic link faults, a crash
      schedule, and a retransmit budget, all driven by a private
      deterministic PRNG so a run replays exactly from its seed. The
      plan owns a global round clock shared by every network created
      under it (crash windows are expressed on that clock). *)

  val make :
    ?drop:float ->
    ?delay:float ->
    ?max_delay:int ->
    ?duplicate:float ->
    ?corrupt:float ->
    ?reorder:float ->
    ?crashes:(int * int * int option) list ->
    ?retransmits:int ->
    ?bounded:bool ->
    seed:int ->
    unit ->
    t
  (** [make ~seed ()] builds a plan. [drop], [delay], [duplicate],
      [corrupt] are per-message fault probabilities in [[0, 1]] (sampled
      in that priority order, at most one fault per message); [reorder]
      is a per-inbox-per-round shuffle probability. A delayed message
      arrives [d] rounds late with [d] uniform in [[1, max_delay]].
      [crashes] lists [(player, from_round, recovery_round)] windows on
      the plan's global round clock (1-based; [None] means crash-stop,
      never recovering): while down, a player's sends vanish and its
      inbox is voided. [retransmits] is the per-{!exchange} resend
      budget. With [bounded] (default), the final attempt of a
      multi-attempt {!exchange} is exempt from link faults — the
      real-world assumption that omission bursts are shorter than the
      timeout budget — so retransmission absorbs faults {e
      deterministically}; crashes are never exempt.

      @raise Invalid_argument on probabilities outside [[0, 1]],
      [max_delay < 1], [retransmits < 0], or malformed crash windows. *)

  val retransmits : t -> int
  val rounds_elapsed : t -> int
  (** Rounds elapsed on the plan's global clock (every {!deliver} under
      the plan advances it). *)

  val down : t -> int -> bool
  (** Is this player crashed in the upcoming round? *)

  (** {2 Supervised real failures}

      The transport supervision layer (DESIGN.md section 16) converts a
      {e physical} peer failure — killed process, poisoned domain,
      stream past its read deadline — into a tolerated crash-stop fault
      by marking the peer here. A marked peer behaves exactly like a
      static [crashes] entry starting at the round the failure was
      detected in: its sends vanish (fresh sends already queued this
      round are voided and counted at the barrier), its inbox is
      voided, and it never recovers. *)

  val mark_crashed : t -> player:int -> bool
  (** Mark [player] crash-stopped from the round currently being formed
      (the upcoming round during a send phase, the in-progress round
      during a {!Net.deliver} barrier). Returns [false] — and changes
      nothing — if the player is already down this round. *)

  val forming_round : t -> int
  (** The round whose messages are currently in flight on the plan's
      global clock (1-based): where {!mark_crashed} pins a failure. *)

  val real_crashes : t -> (int * int) list
  (** Supervised [(player, from_round)] crash marks, sorted. *)

  val real_crash_count : t -> int

  type stats = {
    dropped : int;
    delayed : int;
    duplicated : int;
    corrupted : int;
    reordered : int;  (** inboxes shuffled *)
    crashed_msgs : int;  (** messages lost to crashed senders/receivers *)
    rounds : int;
  }

  val stats : t -> stats
  val pp_stats : Format.formatter -> stats -> unit

  (** {2 Hooks for broadcast-channel layers}

      Point-to-point faults are applied inside {!send}/{!deliver}; a
      layer that models an abstract broadcast channel (one announcement,
      one metric tick) instead samples its own per-receiver fates with
      these. *)

  val advance_round : t -> unit

  val broadcast_fate : t -> [ `Deliver | `Drop | `Corrupt ]
  (** Sample a per-announcement fate for one broadcast delivery
      (respects the bounded-envelope exemption like point-to-point
      links; a broadcast channel fails whole announcements, never
      equivocates). *)

  val corrupt_bytes : t -> bytes -> bytes
  (** Flip one uniformly random bit of a copy of the wire encoding. *)

  val note_crashed_msg : t -> unit

  val enter_envelope : t -> attempt:int -> attempts:int -> unit
  (** Mark that the caller is inside attempt [attempt] of an
      [attempts]-attempt retransmit envelope, enabling the bounded
      final-attempt exemption. {!Net.exchange} does this itself. *)

  val exit_envelope : t -> unit
end

val with_plan : Plan.t -> (unit -> 'a) -> 'a
(** [with_plan plan f] runs [f] with [plan] installed as the ambient
    fault plan: every {!create} inside captures it. Nesting restores the
    previous plan on exit. *)

val current_plan : unit -> Plan.t option

val retransmit_budget : unit -> int
(** The ambient plan's retransmit budget, [0] when no plan is
    installed. Broadcast-channel layers use this to size their own
    retransmit loops. *)

(** {1 Carriers}

    The network separates {e deciding} what happens to a message (fault
    sampling, ordering, metrics — all in the coordinator, in one
    deterministic order) from {e moving} it. A carrier is the pluggable
    moving layer: every message that survives the fault decision is
    [post]ed under a fresh per-network uid, and the round barrier
    [collect]s the physically-delivered frames and materializes each
    inbox entry from the value that actually traversed the backend,
    matched by uid. With no carrier (the default) the network is the
    pure in-memory simulator and behaves bit-identically to before the
    carrier layer existed. The [Transport] library builds its domains
    and socket backends as carriers. *)

module Carrier : sig
  type 'msg t = {
    name : string;  (** backend tag, e.g. ["domains"] or ["socket"] *)
    post : src:int -> dst:int -> uid:int -> 'msg -> unit;
    collect : unit -> (int * 'msg) list array;
        (** per-destination [(uid, msg)] frames since the last collect *)
  }
end

exception Desync of string
(** Raised by {!deliver} when the carrier failed to return a frame the
    coordinator accounted for — a transport-layer bug, never a simulated
    fault (simulated faults are decided before posting). *)

(** {1 Networks} *)

type 'msg t

val create :
  ?carrier:'msg Carrier.t ->
  ?codec:(('msg -> bytes) * (bytes -> 'msg)) ->
  n:int ->
  byte_size:('msg -> int) ->
  unit ->
  'msg t
(** A fresh network for one protocol execution. [byte_size] gives the
    wire size of each message for communication accounting. The network
    captures the ambient fault plan, if any. [codec] is the wire
    encoding used for byte-level corruption faults: a corrupted message
    is re-encoded, has one bit flipped, and is re-decoded — if the
    strict decoder rejects the mangled bytes the message is dropped
    (a detected corruption), otherwise the mangled value is delivered.
    Without a [codec], corruption degrades to a drop. [carrier] attaches
    a physical message-moving backend; omitted, the network is the
    in-memory simulator. *)

val n : _ t -> int

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Queue a message for delivery at the next {!deliver}. Sending to
    oneself is allowed (and free: self-messages are not counted as
    communication, and are exempt from link faults — only a crash loses
    them).

    @raise Invalid_argument if [src] or [dst] is out of range. *)

val send_to_all : 'msg t -> src:int -> (int -> 'msg) -> unit
(** [send_to_all net ~src f] sends [f dst] to every player [dst]
    (including [src] itself, uncounted). With a constant [f] this is the
    point-to-point "announce" the paper uses in place of broadcast; a
    faulty player equivocates by varying [f].

    @raise Invalid_argument if [src] is out of range. *)

val deliver : 'msg t -> (int * 'msg) list array
(** Round barrier: returns [inbox] where [inbox.(i)] lists
    [(sender, msg)] pairs in sender order (at most one slot per sender
    per round is typical, but multiple sends are preserved in send
    order). All queues are emptied. Under a fault plan, delayed
    messages sent in earlier rounds mature here, a crashed receiver's
    inbox is voided, and a reorder fault shuffles an inbox out of
    sender order. *)

val exchange : 'msg t -> send:(unit -> unit) -> (int * 'msg) list array
(** [exchange net ~send] is the bounded timeout-and-retransmit
    envelope: it runs the synchronous round [send (); deliver net] once
    per attempt — [Plan.retransmits + 1] attempts under the ambient
    plan — and merges the inboxes, keeping the {e latest} copy received
    per (receiver, sender) pair, sorted by sender. Honest senders
    re-deposit identical messages on every attempt (sends must be
    deterministic — sample randomness {e outside} the closure), so
    omission faults within the budget are absorbed rather than
    surfacing as missing messages. With no plan or a zero budget this
    is exactly [send (); deliver net] — same inbox shape, same metrics
    — so fault-free runs are bit-identical to the unhardened protocol.
    Each attempt costs one round and re-sends every message, which is
    the round/message cost multiplier of hardening. *)

val rounds_elapsed : _ t -> int

val complete_last_round : _ t -> bool
(** O(1) completeness certificate for the last delivered round: true
    iff the net runs with {e no} fault plan and exactly [n * n]
    messages were enqueued — which, under the driver discipline of at
    most one send per (src, dst) pair per round, proves every sender
    reached every receiver, so the sentinel's silence tally can skip
    its per-sender walk. Conservative: under any fault plan it answers
    [false] and callers must fall back to {!absent_counts}. *)

val absent_counts :
  ?unique_senders:bool -> n:int -> (int * 'msg) list array -> int array
(** [absent_counts ~n inboxes] counts, per sender, how many of the [n]
    receivers got {e no} copy from it in the merged inboxes of one
    {!exchange}. [unique_senders] (default false) asserts each inbox
    holds at most one entry per sender — true for pristine nets and for
    merged retransmit envelopes ([rt >= 1]), which dedup by
    construction — enabling a length-only fast path on the hot
    exposure loop. Drivers feed counts of [t + 1] or more to the sentinel
    ledger as [Silent] evidence: with a retransmit budget the envelope
    delivers every honest live sender's final copy, so only crashed
    receivers — at most [t] — can miss it, and persistent absence at
    [t + 1] receivers is attributable to the sender rather than to link
    noise. Pure integer bookkeeping (no field ops, no randomness). *)

(** {1 Fault sets} *)

module Faults : sig
  type t
  (** Which players are Byzantine in one execution. The set is fixed for
      the run, matching the paper's "fixed for a constant number of
      rounds" assumption; the proactive-refresh example models mobility
      by using a different set per epoch. *)

  val none : n:int -> t
  val make : n:int -> faulty:int list -> t
  (** @raise Invalid_argument on out-of-range or duplicate ids. *)

  val random : Prng.t -> n:int -> t:int -> t
  (** [t] faulty players chosen uniformly. *)

  val n : t -> int
  val count : t -> int
  val is_faulty : t -> int -> bool
  val is_honest : t -> int -> bool
  val faulty : t -> int list
  val honest : t -> int list
  val pp : Format.formatter -> t -> unit
end
