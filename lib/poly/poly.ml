module Make (F : Field_intf.S) = struct
  (* Invariant: either the array is empty (zero polynomial) or its last
     element is non-zero. *)
  type t = F.t array

  let normalize a =
    let rec top i = if i >= 0 && F.equal a.(i) F.zero then top (i - 1) else i in
    let d = top (Array.length a - 1) in
    if d = Array.length a - 1 then a else Array.sub a 0 (d + 1)

  let zero = [||]
  let one = [| F.one |]
  let constant c = normalize [| c |]

  let monomial c d =
    assert (d >= 0);
    if F.equal c F.zero then zero
    else Array.init (d + 1) (fun i -> if i = d then c else F.zero)

  (* Single copy: find the top non-zero coefficient first, then copy
     exactly the normalized prefix (normalize-after-copy would copy an
     already-normalized array twice). *)
  let of_coeffs a =
    let rec top i = if i >= 0 && F.equal a.(i) F.zero then top (i - 1) else i in
    Array.sub a 0 (top (Array.length a - 1) + 1)
  let coeffs p = Array.copy p
  let coeff p d = if d < Array.length p then p.(d) else F.zero
  let degree p = Array.length p - 1

  let equal a b =
    Array.length a = Array.length b && Array.for_all2 F.equal a b

  let pp ppf p =
    if Array.length p = 0 then Format.pp_print_string ppf "0"
    else begin
      let first = ref true in
      Array.iteri
        (fun d c ->
          if not (F.equal c F.zero) then begin
            if not !first then Format.pp_print_string ppf " + ";
            first := false;
            if d = 0 then F.pp ppf c
            else if F.equal c F.one then Format.fprintf ppf "x^%d" d
            else Format.fprintf ppf "%a*x^%d" F.pp c d
          end)
        p;
      if !first then Format.pp_print_string ppf "0"
    end

  let eval p x =
    let rec horner i acc =
      if i < 0 then acc else horner (i - 1) (F.add (F.mul acc x) p.(i))
    in
    if Array.length p = 0 then F.zero
    else horner (Array.length p - 2) p.(Array.length p - 1)

  let add a b =
    let n = max (Array.length a) (Array.length b) in
    normalize
      (Array.init n (fun i ->
           F.add
             (if i < Array.length a then a.(i) else F.zero)
             (if i < Array.length b then b.(i) else F.zero)))

  let sub a b =
    let n = max (Array.length a) (Array.length b) in
    normalize
      (Array.init n (fun i ->
           F.sub
             (if i < Array.length a then a.(i) else F.zero)
             (if i < Array.length b then b.(i) else F.zero)))

  let scale c p =
    if F.equal c F.zero then zero else normalize (Array.map (F.mul c) p)

  let mul a b =
    if Array.length a = 0 || Array.length b = 0 then zero
    else begin
      let out = Array.make (Array.length a + Array.length b - 1) F.zero in
      Array.iteri
        (fun i ai ->
          if not (F.equal ai F.zero) then
            Array.iteri
              (fun j bj -> out.(i + j) <- F.add out.(i + j) (F.mul ai bj))
              b)
        a;
      normalize out
    end

  let divmod a b =
    if Array.length b = 0 then raise Division_by_zero;
    let db = degree b in
    let lead_inv = F.inv b.(db) in
    let r = Array.copy a in
    let dq = degree a - db in
    if dq < 0 then (zero, normalize r)
    else begin
      let q = Array.make (dq + 1) F.zero in
      for d = degree a downto db do
        let c = r.(d) in
        if not (F.equal c F.zero) then begin
          let f = F.mul c lead_inv in
          q.(d - db) <- f;
          for i = 0 to db do
            r.(d - db + i) <- F.sub r.(d - db + i) (F.mul f b.(i))
          done
        end
      done;
      (normalize q, normalize r)
    end

  let random g ~degree =
    assert (degree >= 0);
    normalize (Array.init (degree + 1) (fun _ -> F.random g))

  let random_with_c0 g ~degree ~c0 =
    assert (degree >= 0);
    normalize
      (Array.init (degree + 1) (fun i -> if i = 0 then c0 else F.random g))

  (* Lagrange basis: for each point j, the product over i <> j of
     (x - x_i) / (x_j - x_i). We build the master product N(x) = prod
     (x - x_i) once and divide out each factor, which keeps the whole
     interpolation at O(n^2) field operations. *)
  let interpolate points =
    Metrics.tick_interpolation ();
    match points with
    | [] -> zero
    | points ->
        let xs = Array.of_list (List.map fst points) in
        let ys = Array.of_list (List.map snd points) in
        let n = Array.length xs in
        let master =
          Array.fold_left
            (fun acc x -> mul acc [| F.neg x; F.one |])
            one xs
        in
        let acc = ref zero in
        for j = 0 to n - 1 do
          let basis, rem = divmod master [| F.neg xs.(j); F.one |] in
          assert (Array.length rem = 0);
          let denom = eval basis xs.(j) in
          (* Distinct xs make denom non-zero. *)
          acc := add !acc (scale (F.div ys.(j) denom) basis)
        done;
        !acc

  (* Array fast path: the hot reconstruction pipeline (Shamir, coin
     exposure) builds xs/ys directly instead of a list of pairs. [?len]
     reads only a prefix, so callers can reuse one scratch arena across
     reconstructions instead of allocating exact-size arrays. *)
  let interpolate_at_arrays ?len ~xs ~ys x0 =
    let n =
      match len with
      | None ->
          if Array.length xs <> Array.length ys then
            invalid_arg "Poly.interpolate_at_arrays: length mismatch";
          Array.length xs
      | Some l ->
          if l < 0 || l > Array.length xs || l > Array.length ys then
            invalid_arg "Poly.interpolate_at_arrays: bad prefix length";
          l
    in
    Metrics.tick_interpolation ();
    let total = ref F.zero in
    for j = 0 to n - 1 do
      let num = ref F.one and den = ref F.one in
      for i = 0 to n - 1 do
        if i <> j then begin
          num := F.mul !num (F.sub x0 xs.(i));
          den := F.mul !den (F.sub xs.(j) xs.(i))
        end
      done;
      total := F.add !total (F.mul ys.(j) (F.div !num !den))
    done;
    !total

  let interpolate_at points x0 =
    interpolate_at_arrays
      ~xs:(Array.of_list (List.map fst points))
      ~ys:(Array.of_list (List.map snd points))
      x0

  let fits_degree points ~max_degree =
    degree (interpolate points) <= max_degree
end
