(** Dense univariate polynomials over an abstract field.

    Everything in the paper is polynomial manipulation: Shamir sharing
    evaluates a random degree-[t] polynomial at player ids, verification
    interpolates one polynomial through broadcast values (Figs. 2-3), and
    coin exposure interpolates through a set of shares (Fig. 6). This
    module provides those operations generically over {!Field_intf.S};
    full interpolations additionally tick
    {!Metrics.tick_interpolation} because the paper counts them as a
    separate cost unit ("the bottleneck for distributed coin generation
    [...] is the final interpolation", Section 5). *)

module Make (F : Field_intf.S) : sig
  type t
  (** A polynomial with coefficients in [F]. The representation is
      normalized: the leading coefficient is non-zero (the zero
      polynomial has no coefficients). *)

  val zero : t
  val one : t
  val constant : F.t -> t
  val monomial : F.t -> int -> t
  (** [monomial c d] is [c * x^d]. *)

  val of_coeffs : F.t array -> t
  (** Coefficients in increasing degree order; trailing zeros are
      stripped. The array is not retained. *)

  val coeffs : t -> F.t array
  (** Increasing degree order; empty for the zero polynomial. *)

  val coeff : t -> int -> F.t
  (** [coeff p d] is the coefficient of [x^d] (zero beyond the
      degree). *)

  val degree : t -> int
  (** [-1] for the zero polynomial. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit

  val eval : t -> F.t -> F.t
  (** Horner evaluation: [degree p] multiplications and additions. *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : F.t -> t -> t
  val mul : t -> t -> t
  (** Schoolbook product. *)

  val divmod : t -> t -> t * t
  (** [divmod a b = (q, r)] with [a = q*b + r] and
      [degree r < degree b]. @raise Division_by_zero if [b] is zero. *)

  val random : Prng.t -> degree:int -> t
  (** Uniform polynomial of degree [<= degree] (each coefficient
      uniform). *)

  val random_with_c0 : Prng.t -> degree:int -> c0:F.t -> t
  (** Uniform polynomial of degree [<= degree] with fixed constant term —
    the Shamir dealing shape: [f(0)] is the secret. *)

  val interpolate : (F.t * F.t) list -> t
  (** Lagrange interpolation through the given [(x, y)] points; the [x]s
      must be pairwise distinct. Result degree is [< length points].
      Ticks one {!Metrics.tick_interpolation}. *)

  val interpolate_at : (F.t * F.t) list -> F.t -> F.t
  (** [interpolate_at points x0] evaluates the interpolating polynomial
      at [x0] without constructing it (direct Lagrange formula) — the
      cheap path for secret reconstruction at [x = 0]. Also ticks one
      interpolation. *)

  val interpolate_at_arrays :
    ?len:int -> xs:F.t array -> ys:F.t array -> F.t -> F.t
  (** {!interpolate_at} on parallel coordinate arrays — the
      allocation-free variant for hot reconstruction paths that already
      hold arrays. [?len] restricts to a prefix so callers can thread
      one reusable scratch arena through many reconstructions (the
      arrays are only read). Ticks one interpolation. *)

  val fits_degree : (F.t * F.t) list -> max_degree:int -> bool
  (** [fits_degree points ~max_degree]: does some polynomial of degree
      [<= max_degree] pass through all points? This is the paper's
      Problem 1 check: interpolate and test the degree. *)
end
