type kind =
  | Bad_share
  | Rejected_dealing
  | Equivocation
  | Grade_zero
  | Silent
  | Undecodable

let all_kinds =
  [ Bad_share; Rejected_dealing; Equivocation; Grade_zero; Silent; Undecodable ]

let n_kinds = List.length all_kinds

let kind_index = function
  | Bad_share -> 0
  | Rejected_dealing -> 1
  | Equivocation -> 2
  | Grade_zero -> 3
  | Silent -> 4
  | Undecodable -> 5

let kind_name = function
  | Bad_share -> "bad-share"
  | Rejected_dealing -> "rejected-dealing"
  | Equivocation -> "equivocation"
  | Grade_zero -> "grade-zero"
  | Silent -> "silent"
  | Undecodable -> "undecodable"

type config = {
  bad_share : int;
  rejected_dealing : int;
  equivocation : int;
  grade_zero : int;
  silent : int;
  undecodable : int;
  link_slack : int;
  quarantine_threshold : int option;
}

let passive =
  {
    bad_share = 3;
    rejected_dealing = 3;
    equivocation = 4;
    grade_zero = 2;
    silent = 1;
    undecodable = 2;
    link_slack = 2;
    quarantine_threshold = None;
  }

let active ?(threshold = 6) () =
  { passive with quarantine_threshold = Some threshold }

module Ledger = struct
  type t = {
    n : int;
    config : config;
    counts : int array array; (* player -> kind_index -> observations *)
    quarantine : bool array; (* sticky *)
    (* Cached population count of [quarantine]. Quarantine is sticky, so
       this only grows; [exclusion_mask] reads it to skip the per-player
       walk in the common nobody-quarantined state. *)
    mutable quarantine_n : int;
  }

  let create ?(config = passive) ~n () =
    if n < 1 then invalid_arg "Sentinel.Ledger.create: n must be >= 1";
    {
      n;
      config;
      counts = Array.init n (fun _ -> Array.make n_kinds 0);
      quarantine = Array.make n false;
      quarantine_n = 0;
    }

  let n t = t.n
  let config t = t.config
  let in_range t p = p >= 0 && p < t.n

  let count t ~player kind =
    if in_range t player then t.counts.(player).(kind_index kind) else 0

  (* Silent/Undecodable are the only kinds a lossy link can produce for
     an honest player, so the first [link_slack] of their combined count
     is written off as line noise before anything is weighted. *)
  let score t ~player =
    if not (in_range t player) then 0
    else begin
      let c = t.counts.(player) in
      let w = t.config in
      let noise = c.(kind_index Silent) + c.(kind_index Undecodable) in
      let charged = max 0 (noise - w.link_slack) in
      (* Charge the forgiven observations against the cheapest-weighted
         noise kind first so slack never under-forgives. *)
      let silent = c.(kind_index Silent) in
      let undecodable = c.(kind_index Undecodable) in
      let forgiven = noise - charged in
      let forgiven_silent = min silent forgiven in
      let forgiven_undec = forgiven - forgiven_silent in
      (c.(kind_index Bad_share) * w.bad_share)
      + (c.(kind_index Rejected_dealing) * w.rejected_dealing)
      + (c.(kind_index Equivocation) * w.equivocation)
      + (c.(kind_index Grade_zero) * w.grade_zero)
      + ((silent - forgiven_silent) * w.silent)
      + ((undecodable - forgiven_undec) * w.undecodable)
    end

  let quarantined t ~player = in_range t player && t.quarantine.(player)

  let refresh_quarantine t player =
    match t.config.quarantine_threshold with
    | None -> ()
    | Some threshold ->
        if (not t.quarantine.(player)) && score t ~player >= threshold
        then begin
          t.quarantine.(player) <- true;
          t.quarantine_n <- t.quarantine_n + 1
        end

  let record t ~player kind =
    if in_range t player then begin
      let i = kind_index kind in
      t.counts.(player).(i) <- t.counts.(player).(i) + 1;
      refresh_quarantine t player;
      Trace.event (fun () ->
          Trace.Suspicion
            {
              player;
              evidence = kind_name kind;
              score = score t ~player;
              quarantined = t.quarantine.(player);
            })
    end

  let suspects t =
    List.filter (fun p -> score t ~player:p > 0) (List.init t.n Fun.id)

  let quarantine_set t =
    List.filter (fun p -> t.quarantine.(p)) (List.init t.n Fun.id)

  let quarantined_count t =
    Array.fold_left (fun acc q -> if q then acc + 1 else acc) 0 t.quarantine

  let dump t = Array.map Array.copy t.counts

  let of_counts ?(config = passive) counts =
    let n = Array.length counts in
    if n < 1 then invalid_arg "Sentinel.Ledger.of_counts: empty";
    Array.iter
      (fun row ->
        if Array.length row <> n_kinds then
          invalid_arg "Sentinel.Ledger.of_counts: bad row width")
      counts;
    let t =
      {
        n;
        config;
        counts = Array.map Array.copy counts;
        quarantine = Array.make n false;
        quarantine_n = 0;
      }
    in
    for p = 0 to n - 1 do
      refresh_quarantine t p
    done;
    t

  let pp_table ppf t =
    Fmt.pf ppf "player  bad-share  rejected  equivoc  grade-0  silent  undec  score  status@.";
    for p = 0 to t.n - 1 do
      let c k = t.counts.(p).(kind_index k) in
      Fmt.pf ppf "  p%02d   %9d %9d %8d %8d %7d %6d %6d  %s@." p (c Bad_share)
        (c Rejected_dealing) (c Equivocation) (c Grade_zero) (c Silent)
        (c Undecodable) (score t ~player:p)
        (if t.quarantine.(p) then "QUARANTINED"
         else if score t ~player:p > 0 then "suspect"
         else "clear")
    done;
    match t.config.quarantine_threshold with
    | None -> Fmt.pf ppf "  (passive ledger: no quarantine threshold)@."
    | Some th -> Fmt.pf ppf "  (quarantine threshold: score >= %d)@." th
end

(* ------------------------- ambient ledger ------------------------- *)

let installed : Ledger.t option ref = ref None

let with_ledger ledger f =
  let prev = !installed in
  installed := Some ledger;
  match f () with
  | result ->
      installed := prev;
      result
  | exception e ->
      installed := prev;
      raise e

let current () = !installed
let is_active () = !installed <> None

let observe f =
  match !installed with
  | None -> ()
  | Some ledger ->
      (* Evidence extraction must not perturb the run: any field ops it
         performs are uncounted, and callers draw no randomness. *)
      Metrics.without_counting (fun () ->
          List.iter
            (fun (player, kind) -> Ledger.record ledger ~player kind)
            (f ()))

let excluded player =
  match !installed with
  | None -> false
  | Some ledger -> Ledger.quarantined ledger ~player

(* Hot loops call [excluded] once per (receiver, sender) pair; snapshotting
   the quarantine flags into a flat mask hoists the ambient lookup out of
   the O(n^2) inner loop. Quarantine is sticky, so a snapshot taken at the
   top of a protocol run stays valid for the whole run. *)
let exclusion_mask ~n =
  match !installed with
  | None -> Array.make n false
  | Some ledger when ledger.Ledger.quarantine_n = 0 ->
      (* Nobody quarantined (always true under a passive ledger): skip
         the per-player closure walk; the mask is all-false either way. *)
      Array.make n false
  | Some ledger -> Array.init n (fun j -> Ledger.quarantined ledger ~player:j)
