(** Fault attribution: a per-player evidence ledger for the coin stack.

    The protocol machinery already computes blame evidence and throws it
    away: Berlekamp-Welch error locators name exactly which Coin-Expose
    shares were bad, Fig. 2/3 verdict votes name rejected dealers,
    gradecast grade-0 outcomes name equivocators, and the retransmit
    envelope sees persistent silence. The sentinel collects those
    observations as typed, per-player {!kind}s, scores suspicion with
    configurable weights, and — when a quarantine threshold is set —
    marks players that cross it so the stack can eject them.

    Attribution discipline: drivers must only feed an accusation when at
    least [t + 1] players concur on it within one protocol event (see
    DESIGN.md section 14). Any coalition of at most [t] faulty observers
    is then unable to frame an honest player, and under the bounded
    retransmit envelope ([rt >= 1]) link faults never survive to the
    merged inbox, so honest players accrue no evidence at all. The
    [link_slack] allowance additionally forgives a bounded number of
    {!Silent}/{!Undecodable} observations per player, so even without
    retransmissions an honest player behind a lossy link is not blamed
    for noise.

    The ledger is ambient, mirroring {!Trace} and [Net.Plan]: drivers
    call {!observe} unconditionally; with no ledger installed it is a
    single branch and the evidence thunk is never forced, so runs
    without a ledger pay nothing. With a {!passive} ledger (threshold
    [None]) evidence is recorded but nothing is ever quarantined, and
    the run stays bit-identical — same PRNG draws, same metrics — to a
    ledger-free run: evidence thunks are forced inside
    [Metrics.without_counting] and draw no randomness. *)

type kind =
  | Bad_share  (** BW error locator / [reconstruct_zero_checked] mismatch *)
  | Rejected_dealing  (** VSS / Batch-VSS verdict rejected this dealer *)
  | Equivocation  (** gradecast accepted two different values for a dealer *)
  | Grade_zero  (** gradecast ended at confidence 0 for this dealer *)
  | Silent  (** persistently absent from the merged exchange inbox *)
  | Undecodable  (** delivered bytes that failed to decode / wrong shape *)

val kind_name : kind -> string
val all_kinds : kind list

type config = {
  bad_share : int;
  rejected_dealing : int;
  equivocation : int;
  grade_zero : int;
  silent : int;
  undecodable : int;  (** per-kind suspicion weights *)
  link_slack : int;
      (** this many {!Silent}/{!Undecodable} observations per player are
          attributed to the link, not the player, and score zero *)
  quarantine_threshold : int option;
      (** [None] = passive: record evidence, never quarantine *)
}

val passive : config
(** Default weights, [link_slack = 2], threshold [None]. Recording under
    this config never changes behaviour. *)

val active : ?threshold:int -> unit -> config
(** {!passive} with a quarantine threshold (default 6). *)

module Ledger : sig
  type t

  val create : ?config:config -> n:int -> unit -> t
  (** Fresh ledger over players [0 .. n-1]; default config {!passive}. *)

  val n : t -> int
  val config : t -> config

  val record : t -> player:int -> kind -> unit
  (** Accrue one observation. Emits a lazy [Trace.Suspicion] event and,
      when the new score crosses the configured threshold, marks the
      player quarantined (sticky). Out-of-range players are ignored. *)

  val count : t -> player:int -> kind -> int
  val score : t -> player:int -> int
  (** Weighted suspicion total, after the [link_slack] allowance. *)

  val suspects : t -> int list
  (** Players with a positive score, ascending. *)

  val quarantined : t -> player:int -> bool
  val quarantine_set : t -> int list
  val quarantined_count : t -> int

  val dump : t -> int array array
  (** Raw evidence counts, [n] rows in the order of {!all_kinds} — the
      persistence payload. *)

  val of_counts : ?config:config -> int array array -> t
  (** Rebuild a ledger from {!dump} output; quarantine flags are
      recomputed from the scores. Raises [Invalid_argument] on rows of
      the wrong width. *)

  val pp_table : Format.formatter -> t -> unit
  (** Per-player table of evidence counts, score and status — the
      [dprbg pool --suspects] / safe-mode diagnostic report. *)
end

(** {1 Ambient ledger} *)

val with_ledger : Ledger.t -> (unit -> 'a) -> 'a
(** Install a ledger for the dynamic extent of the callback (restored on
    exceptions; nested installs shadow). *)

val current : unit -> Ledger.t option

val is_active : unit -> bool
(** True iff a ledger is installed. Hot paths branch on this once to
    skip building evidence inputs entirely (closure environments,
    intermediate lists) rather than paying their construction cost only
    for {!observe} to drop the thunk unforced. *)

val observe : (unit -> (int * kind) list) -> unit
(** [observe f] feeds [f ()]'s accusations to the installed ledger, if
    any. The thunk is only forced when a ledger is installed, and runs
    under [Metrics.without_counting], so observation never perturbs
    counters. Callers must ensure [f] draws no randomness. *)

val excluded : int -> bool
(** True iff the installed ledger has quarantined this player — the
    subset-selection hook for Coin-Expose and leader rotation. False
    without a ledger. *)

val exclusion_mask : n:int -> bool array
(** [excluded] for players [0 .. n-1], snapshotted with a single ambient
    lookup. Quarantine is sticky, so a mask taken at the top of a
    protocol run stays valid throughout it — hot O(n^2) selection loops
    should index the mask instead of calling {!excluded} per pair. *)
