module Make (F : Field_intf.S) = struct
  module P = Poly.Make (F)
  module BW = Berlekamp_welch.Make (F)
  module G = Grid.Make (F)

  let eval_point i =
    assert (i >= 0);
    F.of_int (i + 1)

  (* One plan per (n, t) session, shared by every deal/verify/
     reconstruct in this functor instantiation. The table is tiny: a
     deployment touches a handful of (n, t) pairs over its lifetime. *)
  let grids : (int * int, G.t) Hashtbl.t = Hashtbl.create 7

  let grid ~n ~t =
    match Hashtbl.find_opt grids (n, t) with
    | Some plan -> plan
    | None ->
        let plan = G.make ~n ~t in
        Hashtbl.replace grids (n, t) plan;
        plan

  let share_poly g ~t ~secret =
    assert (t >= 0);
    P.random_with_c0 g ~degree:t ~c0:secret

  let deal_with plan g ~secret =
    let f = share_poly g ~t:(G.degree_bound plan) ~secret in
    G.eval_poly plan f

  let deal g ~t ~n ~secret =
    if t >= n then invalid_arg "Shamir.deal: need t < n";
    deal_with (grid ~n ~t) g ~secret

  (* Batch dealing: draw every sharing polynomial first (in secret
     order — evaluation consumes no randomness, so the PRNG stream is
     identical to M sequential [deal_with] calls), then evaluate the
     whole batch through the grid's batch kernel. *)
  let deal_batch_with plan g ~secrets =
    let t = G.degree_bound plan in
    let polys = Array.map (fun secret -> share_poly g ~t ~secret) secrets in
    G.eval_poly_batch plan polys

  let deal_batch g ~t ~n ~secrets =
    if t >= n then invalid_arg "Shamir.deal_batch: need t < n";
    deal_batch_with (grid ~n ~t) g ~secrets

  let deal_naive g ~t ~n ~secret =
    if t >= n then invalid_arg "Shamir.deal_naive: need t < n";
    let f = share_poly g ~t ~secret in
    Array.init n (fun i -> P.eval f (eval_point i))

  let reconstruct shares =
    if shares = [] then invalid_arg "Shamir.reconstruct: no shares";
    let m = List.length shares in
    let xs = Array.make m F.zero and ys = Array.make m F.zero in
    List.iteri
      (fun idx (i, s) ->
        xs.(idx) <- eval_point i;
        ys.(idx) <- s)
      shares;
    P.interpolate_at_arrays ~xs ~ys F.zero

  let reconstruct_with plan shares =
    if shares = [] then invalid_arg "Shamir.reconstruct_with: no shares";
    G.reconstruct_zero plan shares

  let robust_reconstruct ~t shares =
    let m = List.length shares in
    (* (m - t - 1) / 2 truncates toward zero, so at m = t it is 0, not
       negative — a degree-t decode needs m >= t + 1 points, guard on m. *)
    let e = (m - t - 1) / 2 in
    if m <= t then None
    else
      let points = List.map (fun (i, s) -> (eval_point i, s)) shares in
      match BW.decode_with_support ~max_degree:t ~max_errors:e points with
      | None -> None
      | Some (f, support) ->
          let support_ids =
            List.filter
              (fun (i, s) ->
                List.exists
                  (fun (x, y) -> F.equal x (eval_point i) && F.equal y s)
                  support)
              shares
          in
          Some (BW.P.eval f F.zero, support_ids)
end
