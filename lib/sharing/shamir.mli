(** Shamir secret sharing [Sha79] — the sharing shape underneath every
    protocol in the paper.

    The dealer picks a uniformly random polynomial [f] of degree [<= t]
    with [f(0) = secret]; player [i] (ids [0 .. n-1]) receives the share
    [f(i+1)]. Any [t+1] shares reconstruct [f(0)] by interpolation; any
    [t] shares are statistically independent of the secret. *)

module Make (F : Field_intf.S) : sig
  module P : module type of Poly.Make (F)
  module G : module type of Grid.Make (F)

  val eval_point : int -> F.t
  (** [eval_point i] is the field point of player [i], namely
      [F.of_int (i + 1)] — non-zero so that no share is the secret
      itself. *)

  val grid : n:int -> t:int -> G.t
  (** The cached evaluation-grid plan for an [(n, t)] session,
      constructed on first use and shared by every subsequent
      plan-aware call with the same parameters. *)

  val share_poly : Prng.t -> t:int -> secret:F.t -> P.t
  (** The dealer's random degree-[<= t] polynomial with constant term
      [secret]. *)

  val deal : Prng.t -> t:int -> n:int -> secret:F.t -> F.t array
  (** [deal g ~t ~n ~secret] returns the [n] shares. Requires
      [t < n] and [n] distinct evaluation points to exist in [F].
      Evaluates through the cached {!grid} plan; draws, shares and
      {!Metrics} ticks are identical to {!deal_naive}. *)

  val deal_with : G.t -> Prng.t -> secret:F.t -> F.t array
  (** Plan-aware dealing: same polynomial draw as {!deal} with the
      session plan supplied explicitly (batch dealers evaluate many
      polynomials through one plan). *)

  val deal_naive : Prng.t -> t:int -> n:int -> secret:F.t -> F.t array
  (** The reference path: per-point Horner evaluation with no
      precomputation. Same PRNG draws and results as {!deal}; kept for
      equivalence tests and benchmarks. *)

  val deal_batch_with : G.t -> Prng.t -> secrets:F.t array -> F.t array array
  (** Deal [M] sharings in one batch: row [j] holds the [n] shares of
      [secrets.(j)]. All sharing polynomials are drawn first (secret
      order), then evaluated through {!Grid.Make.eval_poly_batch}, so
      shares, PRNG draws and Metrics ticks are bit-identical to [M]
      sequential {!deal_with} calls — only the wall-clock drops when
      the field has a batch kernel. *)

  val deal_batch :
    Prng.t -> t:int -> n:int -> secrets:F.t array -> F.t array array
  (** {!deal_batch_with} through the cached {!grid} plan. *)

  val reconstruct : (int * F.t) list -> F.t
  (** [reconstruct shares] interpolates [f(0)] from [(player, share)]
      pairs; callers supply at least [t+1] shares from distinct
      players. All supplied shares are used, so a corrupted share
      corrupts the output — use {!robust_reconstruct} against faults. *)

  val reconstruct_with : G.t -> (int * F.t) list -> F.t
  (** Plan-aware {!reconstruct}: Lagrange-at-zero weights for the
      share subset come from the plan's per-subset cache. *)

  val robust_reconstruct :
    t:int -> (int * F.t) list -> (F.t * (int * F.t) list) option
  (** [robust_reconstruct ~t shares] decodes through up to [e] wrong
      shares where [e = (len - t - 1) / 2] (Berlekamp–Welch), returning
      the secret and the agreeing shares. [None] when decoding fails,
      i.e. more errors than the share count supports. *)
end
