(* The paper's cost formulas (Lemmas 2/4/6, Theorem 2), measured against
   honest protocol runs. Derivations are in the .mli and DESIGN.md
   section 13. Fixed to GF(2^16) — every checked quantity except the
   byte counts is field-independent, and the byte formulas use
   F.byte_size explicitly. *)

module F = Gf2k.GF16
module V = Vss.Make (F)
module BG = Bit_gen.Make (F)
module CG = Coin_gen.Make (F)
module S = Shamir.Make (F)

type bound = Exact of int | At_most of int

type check = {
  lemma : string;
  protocol : string;
  n : int;
  t : int;
  m : int;
  quantity : string;
  formula : string;
  bound : bound;
  measured : int;
}

let passed c =
  match c.bound with
  | Exact v -> c.measured = v
  | At_most v -> c.measured <= v

(* Run [f] under a trace collector and return the metrics snapshot of
   the first span named [name] — the protocol's own cost delta, which
   excludes anything the closure does around it (dealing randomness,
   oracle setup). *)
let measure_span name f =
  let _, trace = Trace.collect f in
  match Trace.find trace ~name with
  | Some s -> s.Trace.metrics
  | None -> failwith (Printf.sprintf "Conformance: no span named %S" name)

let make ~lemma ~protocol ~n ~t ~m (snap : Metrics.snapshot) rows =
  List.map
    (fun (quantity, formula, bound, measured_of) ->
      { lemma; protocol; n; t; m; quantity; formula; bound;
        measured = measured_of snap })
    rows

let adds s = s.Metrics.field_adds
let mults s = s.Metrics.field_mults
let invs s = s.Metrics.field_invs
let interps s = s.Metrics.interpolations
let msgs s = s.Metrics.messages
let byts s = s.Metrics.bytes
let rounds s = s.Metrics.rounds
let bas s = s.Metrics.ba_runs
let gcs s = s.Metrics.gradecasts

(* Grid plans, field tables and other memoized session state tick
   counters when first built; one throwaway run makes the measured run
   see only steady-state protocol costs (the same warm-cache convention
   the bench uses). *)
let warm_grid ~n ~t = ignore (S.grid ~n ~t)

(* ---- Lemma 2: VSS (Fig. 2) -------------------------------------- *)

let vss_checks ~n ~t =
  warm_grid ~n ~t;
  let g = Prng.of_int 0xC0FFEE in
  let run () =
    let alpha = V.honest_dealing g ~n ~t ~secret:(F.random g) in
    let beta = V.honest_dealing g ~n ~t ~secret:(F.random g) in
    ignore (V.run ~n ~t ~alpha ~beta ~r:(F.random g) ())
  in
  run ();
  let snap = measure_span "vss" run in
  let op_ceiling = 2 * n * (1 + ((n - t) * (t + 1))) in
  make ~lemma:"Lemma 2" ~protocol:"vss" ~n ~t ~m:1 snap
    [
      ("rounds", "2", Exact 2, rounds);
      ("messages", "2n", Exact (2 * n), msgs);
      ("bytes", "2n*k/8", Exact (2 * n * F.byte_size), byts);
      ("interpolations", "n", Exact n, interps);
      ("gradecasts", "0", Exact 0, gcs);
      ("ba_runs", "0", Exact 0, bas);
      ("field_mults", "<= 2n(1 + (n-t)(t+1))", At_most op_ceiling, mults);
      ("field_adds", "<= 2n(1 + (n-t)(t+1))", At_most op_ceiling, adds);
      ("field_invs", "0", At_most 0, invs);
    ]

(* ---- Lemma 4: Batch-VSS (Fig. 3) -------------------------------- *)

let batch_vss_checks ~n ~t ~m =
  warm_grid ~n ~t;
  let g = Prng.of_int 0xBA7C4 in
  let secrets = Array.init m (fun _ -> F.random g) in
  let shares = V.batch_honest_dealing g ~n ~t ~secrets in
  let run () = ignore (V.run_batch ~n ~t ~shares ~r:(F.random g) ()) in
  run ();
  let snap = measure_span "batch-vss" run in
  let op_ceiling = 2 * n * (m + ((n - t) * (t + 1))) in
  make ~lemma:"Lemma 4" ~protocol:"batch-vss" ~n ~t ~m snap
    [
      ("rounds", "1", Exact 1, rounds);
      ("messages", "n", Exact n, msgs);
      ("bytes", "n*k/8", Exact (n * F.byte_size), byts);
      ("interpolations", "n", Exact n, interps);
      ("field_mults", "<= 2n(M + (n-t)(t+1))", At_most op_ceiling, mults);
      ("field_adds", "<= 2n(M + (n-t)(t+1))", At_most op_ceiling, adds);
      ("field_invs", "0", At_most 0, invs);
    ]

(* ---- Lemma 6: Bit-Gen (Fig. 4) ---------------------------------- *)

(* One Berlekamp-Welch decode over n points at error budget
   e = (n-t-1)/2 solves an (n x ~n) locator system by Gaussian
   elimination: O(n^3) mults/adds and <= n pivot inversions. 4n^3
   gives the decoder >= 3x headroom at every deployed size. *)
let bw_mult_ceiling n = 4 * n * n * n

let bit_gen_checks ~n ~t ~m =
  warm_grid ~n ~t;
  let g = Prng.of_int 0xB17 in
  let run () =
    let prng = Prng.split g in
    ignore (BG.run ~prng ~n ~t ~m ~dealer:0 ~r:(F.random g) ())
  in
  run ();
  let snap = measure_span "bit-gen" run in
  let op_ceiling = n * (m + bw_mult_ceiling n) in
  make ~lemma:"Lemma 6" ~protocol:"bit-gen" ~n ~t ~m snap
    [
      ("rounds", "2", Exact 2, rounds);
      ("messages", "n^2 - 1", Exact ((n * n) - 1), msgs);
      ("interpolations", "n", Exact n, interps);
      ("gradecasts", "0", Exact 0, gcs);
      ("field_mults", "<= n(M + 4n^3)", At_most op_ceiling, mults);
      ("field_adds", "<= n(M + 4n^3)", At_most op_ceiling, adds);
      ("field_invs", "<= 2n^2", At_most (2 * n * n), invs);
    ]

(* ---- Theorem 2: Coin-Gen (Fig. 5) ------------------------------- *)

let coin_gen_checks ~n ~t ~m =
  if n < (6 * t) + 1 then
    invalid_arg "Conformance.coin_gen_checks: requires n >= 6t+1";
  warm_grid ~n ~t;
  let g = Prng.of_int 0xC01 in
  let run () =
    let prng = Prng.split g in
    let sg = Prng.split g in
    let oracle () = Metrics.without_counting (fun () -> F.random sg) in
    match CG.run ~prng ~oracle ~n ~t ~m () with
    | Some _ -> ()
    | None -> failwith "Conformance: honest Coin-Gen did not terminate"
  in
  run ();
  let snap = measure_span "coin-gen" run in
  (* Honest runs always accept the first leader: one BA iteration. *)
  let exact_rounds = 5 + (2 * (t + 1)) in
  let exact_msgs = (5 * n * (n - 1)) + ((t + 1) * ((n * n) - 1)) in
  let op_ceiling = (n * n * m) + (6 * n * n * n * n * n) in
  make ~lemma:"Theorem 2" ~protocol:"coin-gen" ~n ~t ~m snap
    [
      ("rounds", "5 + 2(t+1)", Exact exact_rounds, rounds);
      ("messages", "5n(n-1) + (t+1)(n^2-1)", Exact exact_msgs, msgs);
      ("interpolations", "n^2", Exact (n * n), interps);
      ("gradecasts", "n", Exact n, gcs);
      ("ba_runs", "1", Exact 1, bas);
      ("field_mults", "<= n^2 M + 6n^5", At_most op_ceiling, mults);
      ("field_adds", "<= n^2 M + 6n^5", At_most op_ceiling, adds);
      ("field_invs", "<= 2n^3", At_most (2 * n * n * n), invs);
      (* The amortization claim: total messages are independent of M, so
         per-coin communication is n + O(n^3/M). *)
      ( "messages (amortized)",
        "<= nM + 6n^3 (n + O(n^3/M) per coin)",
        At_most ((n * m) + (6 * n * n * n)),
        msgs );
    ]

let suite ~n ~t ~m =
  let t_cg = min t ((n - 1) / 6) in
  vss_checks ~n ~t
  @ batch_vss_checks ~n ~t ~m
  @ bit_gen_checks ~n ~t ~m
  @ coin_gen_checks ~n ~t:t_cg ~m

let pp_check ppf c =
  let bound_str =
    match c.bound with
    | Exact v -> Printf.sprintf "= %d" v
    | At_most v -> Printf.sprintf "<= %d" v
  in
  Fmt.pf ppf "%-9s %-10s (n=%-2d t=%-2d M=%-3d) %-22s %10d %-14s %s  [%s]"
    c.lemma c.protocol c.n c.t c.m c.quantity c.measured bound_str c.formula
    (if passed c then "OK" else "FAIL")

let report ppf checks =
  let failures = List.filter (fun c -> not (passed c)) checks in
  List.iter (fun c -> Fmt.pf ppf "%a@." pp_check c) checks;
  Fmt.pf ppf "conformance: %d checks, %d failed@."
    (List.length checks) (List.length failures);
  failures = []
