(** The paper's cost formulas as a machine-checked oracle.

    Lemmas 2, 4 and 6 and Theorem 2 of Bellare-Garay-Rabin give
    closed-form per-protocol costs in field operations, interpolations,
    messages, bits and rounds as functions of [(n, t, M, k)]. This
    module runs each protocol honestly on a pristine network, measures
    its cost vector from the protocol's {!Trace} span snapshot, and
    checks it against the formulas: {e exact equality} for quantities
    the implementation determines combinatorially (interpolation counts,
    rounds, messages, bytes, grade-casts, BA runs) and
    {e asymptotic-constant ceilings} for field-op counts, whose exact
    value depends on decoder internals (Gaussian elimination inside
    Berlekamp-Welch) but whose growth order the paper pins down.

    The derived expectations, with the repo's accounting convention
    (counters are totals across all [n] players; per-player work runs
    once per player — DESIGN.md section 7):

    - {b Lemma 2} (VSS, Fig. 2): 2 rounds, [2n] messages ([n] private
      deals + [n] broadcast gammas), [2nk] bits, [n] interpolations (one
      strict degree check per player); mults/adds [O(n^2 t)].
    - {b Lemma 4} (Batch-VSS, Fig. 3, dealing excluded): 1 round, [n]
      messages, [nk] bits, [n] interpolations; mults [<= 2n(M +
      (n-t)(t+1))] — the Horner combination is [M] mults per player and
      the degree check [(n-t-1)(t+1)].
    - {b Lemma 6} (Bit-Gen, Fig. 4): 2 rounds, [n^2 - 1] messages
      ([n-1] dealing + [n(n-1)] gammas), [n] interpolations (one
      Berlekamp-Welch decode per player); mults [<= n(M + 4n^3)].
    - {b Theorem 2} (Coin-Gen, Fig. 5, honest run, shared check coin):
      [5 + 2(t+1)] rounds (deal, gamma, 3 grade-cast rounds, one
      [2(t+1)]-round phase-king BA), [5n(n-1) + (t+1)(n^2-1)] messages,
      [n^2] interpolations (each player decodes each dealer), [n]
      grade-casts, [1] BA run; amortized over the batch the message
      count is [<= nM + 6n^3], i.e. [n + O(n^3/M)] per coin.

    Coin-Gen requires [n >= 6t+1]; {!suite} runs it at the largest
    admissible fault bound [(n-1)/6] when the requested [t] is above
    that, and the other protocols (which need [n >= 3t+1]) at the
    requested [t]. *)

type bound = Exact of int | At_most of int

type check = {
  lemma : string;  (** e.g. ["Lemma 2"] *)
  protocol : string;  (** trace span name, e.g. ["vss"] *)
  n : int;
  t : int;
  m : int;  (** batch size; [1] for single VSS *)
  quantity : string;  (** e.g. ["rounds"] *)
  formula : string;  (** human-readable expected-cost formula *)
  bound : bound;
  measured : int;
}

val passed : check -> bool

val vss_checks : n:int -> t:int -> check list
(** Lemma 2: runs Fig. 2 honestly at [(n, t)] and checks its vector. *)

val batch_vss_checks : n:int -> t:int -> m:int -> check list
(** Lemma 4: Fig. 3 on an [M]-secret honest batch (dealing excluded, as
    in the lemma). *)

val bit_gen_checks : n:int -> t:int -> m:int -> check list
(** Lemma 6: Fig. 4 with an honest dealer. *)

val coin_gen_checks : n:int -> t:int -> m:int -> check list
(** Theorem 2: Fig. 5 honest run.
    @raise Invalid_argument when [n < 6t + 1]. *)

val suite : n:int -> t:int -> m:int -> check list
(** All four blocks; Coin-Gen at [min t ((n-1)/6)]. *)

val pp_check : Format.formatter -> check -> unit

val report : Format.formatter -> check list -> bool
(** Print one line per check and a summary; true iff all passed. *)
