type kind = Protocol | Phase | Round

type event =
  | Send of { src : int; dst : int; bytes : int }
  | Recv of { src : int; dst : int; bytes : int }
  | Broadcast of { src : int; bytes : int }
  | Verdict of { player : int; accept : bool }
  | Reconstruct of { player : int; ok : bool }
  | Suspicion of {
      player : int;
      evidence : string;
      score : int;
      quarantined : bool;
    }
  | Crash of { player : int; round : int; reason : string }
  | Stall of { player : int; attempt : int }
  | Vend of { request : int; epoch : int; bits : int }
  | Note of string

type span = {
  id : int;
  kind : kind;
  name : string;
  metrics : Metrics.snapshot;
  items : item list;
}

and item = Span of span | Event of int * event

type t = { backend : string option; items : item list }

(* The ambient transport backend tag ("sim", "domains", "socket"),
   stamped onto every trace completed while it is set. Installed by
   [Transport.with_backend]; [None] outside any transport session. *)
let ambient_backend : string option ref = ref None

let set_backend_tag tag = ambient_backend := tag
let backend_tag () = !ambient_backend

(* ------------------------- collection ---------------------------- *)

type frame = {
  f_id : int;
  f_kind : kind;
  f_name : string;
  mutable f_items : item list; (* reverse order *)
}

type builder = {
  mutable next_id : int;
  mutable next_seq : int;
  mutable stack : frame list; (* innermost first *)
  mutable top : item list; (* reverse order *)
}

let collector : builder option ref = ref None
let enabled () = !collector <> None

let push_item b item =
  match b.stack with
  | f :: _ -> f.f_items <- item :: f.f_items
  | [] -> b.top <- item :: b.top

let event f =
  match !collector with
  | None -> ()
  | Some b ->
      let seq = b.next_seq in
      b.next_seq <- seq + 1;
      push_item b (Event (seq, f ()))

let note msg = event (fun () -> Note msg)

let close_frame b frame metrics =
  (match b.stack with
  | top :: rest when top == frame -> b.stack <- rest
  | _ ->
      (* Stack discipline broken only by exceptions crossing span
         boundaries; recover by filtering, like Metrics does. *)
      b.stack <- List.filter (fun fr -> fr != frame) b.stack);
  push_item b
    (Span
       {
         id = frame.f_id;
         kind = frame.f_kind;
         name = frame.f_name;
         metrics;
         items = List.rev frame.f_items;
       })

let span kind name f =
  match !collector with
  | None -> f ()
  | Some b ->
      let frame =
        { f_id = b.next_id; f_kind = kind; f_name = name; f_items = [] }
      in
      b.next_id <- b.next_id + 1;
      b.stack <- frame :: b.stack;
      (* The span's cost delta rides on the Metrics sink stack: outer
         sinks keep accumulating, so bracketing is invisible to any
         enclosing measurement. *)
      (match Metrics.with_counting f with
      | result, metrics ->
          close_frame b frame metrics;
          result
      | exception e ->
          let seq = b.next_seq in
          b.next_seq <- seq + 1;
          frame.f_items <-
            Event (seq, Note ("aborted: " ^ Printexc.to_string e))
            :: frame.f_items;
          close_frame b frame Metrics.zero;
          raise e)

let fresh_builder () = { next_id = 1; next_seq = 0; stack = []; top = [] }

let finish b =
  (* Close frames an escaping exception left open, innermost first. *)
  List.iter (fun frame -> close_frame b frame Metrics.zero) b.stack;
  { backend = !ambient_backend; items = List.rev b.top }

let collect f =
  let b = fresh_builder () in
  let prev = !collector in
  collector := Some b;
  match f () with
  | result ->
      collector := prev;
      (result, finish b)
  | exception e ->
      collector := prev;
      raise e

let try_collect f =
  let b = fresh_builder () in
  let prev = !collector in
  collector := Some b;
  match f () with
  | result ->
      collector := prev;
      (Ok result, finish b)
  | exception e ->
      collector := prev;
      (Error e, finish b)

(* ------------------------- inspection ---------------------------- *)

let rec spans_of_items items =
  List.concat_map
    (function
      | Span s -> s :: spans_of_items s.items
      | Event _ -> [])
    items

let spans t = spans_of_items t.items
let find t ~name = List.find_opt (fun s -> s.name = name) (spans t)

let events (s : span) =
  List.filter_map
    (function Event (q, e) -> Some (q, e) | Span _ -> None)
    s.items

let all_events t =
  let rec go items =
    List.concat_map
      (function Event (q, e) -> [ (q, e) ] | Span s -> go s.items)
      items
  in
  List.sort (fun (a, _) (b, _) -> Int.compare a b) (go t.items)

(* ------------------------- rendering ----------------------------- *)

let kind_name = function
  | Protocol -> "protocol"
  | Phase -> "phase"
  | Round -> "round"

let pp_event ppf = function
  | Send { src; dst; bytes } -> Fmt.pf ppf "send %d->%d (%dB)" src dst bytes
  | Recv { src; dst; bytes } -> Fmt.pf ppf "recv %d->%d (%dB)" src dst bytes
  | Broadcast { src; bytes } -> Fmt.pf ppf "broadcast %d (%dB)" src bytes
  | Verdict { player; accept } ->
      Fmt.pf ppf "verdict p%d %s" player (if accept then "accept" else "reject")
  | Reconstruct { player; ok } ->
      Fmt.pf ppf "reconstruct p%d %s" player (if ok then "ok" else "failed")
  | Suspicion { player; evidence; score; quarantined } ->
      Fmt.pf ppf "suspicion p%d %s score=%d%s" player evidence score
        (if quarantined then " QUARANTINED" else "")
  | Crash { player; round; reason } ->
      Fmt.pf ppf "crash p%d round=%d (%s)" player round reason
  | Stall { player; attempt } ->
      Fmt.pf ppf "stall p%d attempt=%d" player attempt
  | Vend { request; epoch; bits } ->
      Fmt.pf ppf "vend r%d epoch=%d (%d bits)" request epoch bits
  | Note msg -> Fmt.pf ppf "note %S" msg

let pp ppf t =
  let rec go indent = function
    | Span s ->
        Fmt.pf ppf "%s[%s] %s  {%a}@." indent (kind_name s.kind) s.name
          Metrics.pp s.metrics;
        List.iter (go (indent ^ "  ")) s.items
    | Event (_, (Send _ | Recv _)) -> () (* too chatty for the tree view *)
    | Event (_, e) -> Fmt.pf ppf "%s- %a@." indent pp_event e
  in
  List.iter (go "") t.items

(* JSONL. All payloads are ints and fixed atoms except Note strings and
   span names, which we escape by hand (no JSON library in the image). *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_metrics (s : Metrics.snapshot) =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "%s:%d" (json_string k) v)
       (Metrics.to_row s))

let pp_jsonl ppf t =
  let span_line parent s =
    Fmt.pf ppf
      "{\"type\":\"span\",\"id\":%d,\"parent\":%d,\"kind\":%s,\"name\":%s,\"metrics\":{%s}}@."
      s.id parent
      (json_string (kind_name s.kind))
      (json_string s.name) (json_metrics s.metrics)
  in
  let event_line parent seq e =
    let fields =
      match e with
      | Send { src; dst; bytes } ->
          Printf.sprintf "\"event\":\"send\",\"src\":%d,\"dst\":%d,\"bytes\":%d"
            src dst bytes
      | Recv { src; dst; bytes } ->
          Printf.sprintf "\"event\":\"recv\",\"src\":%d,\"dst\":%d,\"bytes\":%d"
            src dst bytes
      | Broadcast { src; bytes } ->
          Printf.sprintf "\"event\":\"broadcast\",\"src\":%d,\"bytes\":%d" src
            bytes
      | Verdict { player; accept } ->
          Printf.sprintf "\"event\":\"verdict\",\"player\":%d,\"accept\":%b"
            player accept
      | Reconstruct { player; ok } ->
          Printf.sprintf "\"event\":\"reconstruct\",\"player\":%d,\"ok\":%b"
            player ok
      | Suspicion { player; evidence; score; quarantined } ->
          Printf.sprintf
            "\"event\":\"suspicion\",\"player\":%d,\"evidence\":%s,\"score\":%d,\"quarantined\":%b"
            player (json_string evidence) score quarantined
      | Crash { player; round; reason } ->
          Printf.sprintf
            "\"event\":\"crash\",\"player\":%d,\"round\":%d,\"reason\":%s"
            player round (json_string reason)
      | Stall { player; attempt } ->
          Printf.sprintf "\"event\":\"stall\",\"player\":%d,\"attempt\":%d"
            player attempt
      | Vend { request; epoch; bits } ->
          Printf.sprintf
            "\"event\":\"vend\",\"request\":%d,\"epoch\":%d,\"bits\":%d"
            request epoch bits
      | Note msg -> Printf.sprintf "\"event\":\"note\",\"text\":%s" (json_string msg)
    in
    Fmt.pf ppf "{\"type\":\"event\",\"span\":%d,\"seq\":%d,%s}@." parent seq
      fields
  in
  let rec go parent = function
    | Event (seq, e) -> event_line parent seq e
    | Span s ->
        span_line parent s;
        List.iter (go s.id) s.items
  in
  (match t.backend with
  | None -> ()
  | Some b -> Fmt.pf ppf "{\"type\":\"meta\",\"backend\":%s}@." (json_string b));
  List.iter (go 0) t.items

let write_jsonl path t =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  pp_jsonl ppf t;
  Format.pp_print_flush ppf ();
  close_out oc

(* ------------------------- timeline ------------------------------ *)

(* Cell marks, by display priority (highest wins the glyph). *)
let glyph ~send ~recv ~bcast ~verdict ~recon =
  match (verdict, recon) with
  | Some false, _ -> '!'
  | _, Some false -> 'x'
  | _ -> (
      if send && recv then '#'
      else if bcast then 'B'
      else if send then '>'
      else if recv then '<'
      else
        match (verdict, recon) with
        | Some true, _ -> '+'
        | _, Some true -> 'o'
        | _ -> '.')

let pp_timeline ppf t =
  (* Walk document order. A Round span is one column; Send events emitted
     before a barrier belong to that upcoming column, Recv/Broadcast
     events inside the round span to its own column, verdicts and
     reconstructions to the last completed column. *)
  let cells : (int * int, bool * bool * bool * bool option * bool option)
      Hashtbl.t =
    Hashtbl.create 97
  in
  let rounds = ref 0 in
  let max_player = ref (-1) in
  let phases = ref [] in
  let get p r =
    match Hashtbl.find_opt cells (p, r) with
    | Some c -> c
    | None -> (false, false, false, None, None)
  in
  let set p r c =
    if p > !max_player then max_player := p;
    Hashtbl.replace cells (p, r) c
  in
  let mark_event r_next r_last = function
    | Send { src; _ } ->
        let s, rv, b, v, k = get src r_next in
        ignore s;
        set src r_next (true, rv, b, v, k)
    | Recv { dst; _ } ->
        let s, _, b, v, k = get dst r_last in
        set dst r_last (s, true, b, v, k)
    | Broadcast { src; _ } ->
        let s, rv, _, v, k = get src r_last in
        set src r_last (s, rv, true, v, k)
    | Verdict { player; accept } ->
        let s, rv, b, _, k = get player r_last in
        set player r_last (s, rv, b, Some accept, k)
    | Reconstruct { player; ok } ->
        let s, rv, b, v, _ = get player r_last in
        set player r_last (s, rv, b, v, Some ok)
    | Suspicion _ | Crash _ | Stall _ | Vend _ | Note _ -> ()
  in
  let rec go = function
    | Event (_, e) -> mark_event !rounds (max 0 (!rounds - 1)) e
    | Span ({ kind = Round; _ } as s) ->
        let col = !rounds in
        incr rounds;
        List.iter
          (function
            | Event (_, e) -> mark_event col col e
            | Span _ as child -> go child)
          s.items
    | Span s ->
        let from_round = !rounds in
        List.iter go s.items;
        phases := (s.name, from_round, !rounds) :: !phases
  in
  List.iter go t.items;
  let n_rounds = !rounds and n_players = !max_player + 1 in
  if n_rounds = 0 || n_players = 0 then
    Fmt.pf ppf "(no rounds recorded)@."
  else begin
    Fmt.pf ppf "per-player round timeline (%d players x %d rounds)@."
      n_players n_rounds;
    Fmt.pf ppf "  legend: > sent  < received  # both  B broadcast  +/! verdict  o/x reconstruct  . idle@.";
    (* Column ruler: tens line only when it earns its keep. *)
    if n_rounds > 10 then begin
      Fmt.pf ppf "      ";
      for r = 0 to n_rounds - 1 do
        Fmt.pf ppf "%c" (if r mod 10 = 0 then Char.chr (Char.code '0' + r / 10 mod 10) else ' ')
      done;
      Fmt.pf ppf "@."
    end;
    Fmt.pf ppf "      ";
    for r = 0 to n_rounds - 1 do
      Fmt.pf ppf "%d" (r mod 10)
    done;
    Fmt.pf ppf "@.";
    for p = 0 to n_players - 1 do
      Fmt.pf ppf "  p%02d " p;
      for r = 0 to n_rounds - 1 do
        let send, recv, bcast, verdict, recon = get p r in
        Fmt.pf ppf "%c" (glyph ~send ~recv ~bcast ~verdict ~recon)
      done;
      Fmt.pf ppf "@."
    done;
    let phases = List.rev !phases in
    if phases <> [] then begin
      Fmt.pf ppf "  spans:@.";
      List.iter
        (fun (name, a, b) ->
          if b > a then Fmt.pf ppf "    rounds %2d-%2d  %s@." a (b - 1) name
          else Fmt.pf ppf "    (no rounds)   %s@." name)
        phases
    end;
    (* Ledger section: the last suspicion record per player is the final
       evidence state, so the timeline doubles as a post-mortem. *)
    let final : (int, string * int * bool) Hashtbl.t = Hashtbl.create 7 in
    List.iter
      (fun (_, e) ->
        match e with
        | Suspicion { player; evidence; score; quarantined } ->
            Hashtbl.replace final player (evidence, score, quarantined)
        | _ -> ())
      (all_events t);
    if Hashtbl.length final > 0 then begin
      Fmt.pf ppf "  ledger:@.";
      Hashtbl.fold (fun p v acc -> (p, v) :: acc) final []
      |> List.sort compare
      |> List.iter (fun (p, (evidence, score, quarantined)) ->
             Fmt.pf ppf "    p%02d score=%d last=%s%s@." p score evidence
               (if quarantined then "  [quarantined]" else ""))
    end
  end
