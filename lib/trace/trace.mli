(** Structured protocol tracing: nested spans and typed events.

    A {e span} brackets one unit of protocol structure — a whole protocol
    run, one of its phases, or one synchronous communication round — and
    carries the {!Metrics.snapshot} delta incurred inside it, so a trace
    is simultaneously a timeline and an exact cost breakdown. {e Events}
    are point records (a message sent or received, a broadcast
    announcement, a per-player verdict or reconstruction outcome, a
    free-form note) attached to the innermost open span.

    Tracing is ambient, mirroring {!Metrics}: hooks in the network,
    broadcast, VSS, Bit-Gen, Coin-Gen, Coin-Expose and Pool layers call
    {!span} and {!event} unconditionally, and both are a single branch
    when no collector is installed ({!collect} not active) — event
    payloads are built lazily, so disabled tracing costs nothing
    measurable. Collection never ticks any counter and draws no
    randomness, so traced runs are bit-identical (same PRNG draws, same
    metrics) to untraced ones.

    The nesting discipline is protocol > phase > round: protocol spans
    come from the drivers ([coin-gen], [vss], [pool.refill], ...), phase
    spans from their steps ([coin-gen.deal], [bit-gen.gamma], ...), and
    round spans from the network barriers ([net.round], [bcast.round]).
    The schema is documented in DESIGN.md section 13. *)

type kind = Protocol | Phase | Round

type event =
  | Send of { src : int; dst : int; bytes : int }
      (** a point-to-point message deposited with [Net.send] *)
  | Recv of { src : int; dst : int; bytes : int }
      (** a message delivered by a [Net.deliver] barrier *)
  | Broadcast of { src : int; bytes : int }
      (** one announcement on the ideal broadcast channel *)
  | Verdict of { player : int; accept : bool }
      (** a player's VSS accept/reject verdict *)
  | Reconstruct of { player : int; ok : bool }
      (** a player's decode/reconstruction outcome *)
  | Suspicion of {
      player : int;
      evidence : string;
      score : int;
      quarantined : bool;
    }
      (** a sentinel ledger update: [player] accrued a piece of evidence
          named [evidence], its suspicion total is now [score], and
          [quarantined] says whether it crossed the quarantine line *)
  | Crash of { player : int; round : int; reason : string }
      (** the transport supervisor declared a physical peer dead at
          [round] (on the ambient plan's clock) and converted it into a
          tolerated crash-stop fault *)
  | Stall of { player : int; attempt : int }
      (** a supervised read from this peer missed its deadline and is
          being retried ([attempt] is 1-based) *)
  | Vend of { request : int; epoch : int; bits : int }
      (** the beacon fulfilled consumer request [request] with [bits]
          derived bits at the close of epoch [epoch] *)
  | Note of string  (** free-form annotation *)

type span = {
  id : int;  (** unique within one trace, document order, from 1 *)
  kind : kind;
  name : string;
  metrics : Metrics.snapshot;
      (** cost delta incurred inside the span (zero if it aborted) *)
  items : item list;  (** children in execution order *)
}

and item = Span of span | Event of int * event  (** [Event (seq, e)] *)

type t = { backend : string option; items : item list }
(** A completed trace: the top-level spans/events in execution order.
    [backend] is the ambient transport backend tag ("sim", "domains",
    "socket") in effect when the trace finished — [None] outside any
    transport session — emitted by {!pp_jsonl} as a leading [meta]
    line. *)

(** {1 Collection} *)

val set_backend_tag : string option -> unit
(** Install/clear the ambient backend tag stamped onto completed
    traces. Called by [Transport.with_backend]; rarely needed
    directly. *)

val backend_tag : unit -> string option

val enabled : unit -> bool
(** True iff a collector is installed (inside {!collect}). *)

val event : (unit -> event) -> unit
(** Record an event in the innermost open span. The thunk is only
    forced when a collector is installed. *)

val note : string -> unit
(** [note msg] is [event (fun () -> Note msg)]. *)

val span : kind -> string -> (unit -> 'a) -> 'a
(** [span kind name f] runs [f] bracketed as a span. With no collector
    this is exactly [f ()]. With one, the span's metrics delta is
    captured via {!Metrics.with_counting} (outer measurements still
    accumulate, so bracketing changes no observable count). If [f]
    raises, the span is closed with zero metrics and an explanatory
    {!Note}, and the exception propagates. *)

val collect : (unit -> 'a) -> 'a * t
(** [collect f] installs a fresh collector around [f] and returns its
    result with the trace. Nested [collect]s stack; the inner one sees
    only its own spans. If [f] raises, the exception propagates and the
    trace is lost — use {!try_collect} to keep partial traces. *)

val try_collect : (unit -> 'a) -> ('a, exn) result * t
(** Like {!collect} but an exception from [f] is returned, not raised,
    and the partial trace — with any interrupted spans closed — is kept.
    This is how a failing fuzz trial's trace is dumped. *)

(** {1 Inspection} *)

val spans : t -> span list
(** All spans, pre-order (document order). *)

val find : t -> name:string -> span option
(** First span with this name, pre-order. *)

val events : span -> (int * event) list
(** The span's direct events (not those of child spans). *)

val all_events : t -> (int * event) list
(** Every event in the trace, in sequence order. *)

(** {1 Rendering} *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
(** Indented span tree with per-span cost vectors. *)

val pp_jsonl : Format.formatter -> t -> unit
(** One JSON object per line, document order: span lines
    [{"type":"span","id":..,"parent":..,"kind":..,"name":..,"metrics":{..}}]
    followed by their event lines
    [{"type":"event","span":..,"seq":..,"event":..,...}]. *)

val write_jsonl : string -> t -> unit
(** Write {!pp_jsonl} output to a file. *)

val pp_timeline : Format.formatter -> t -> unit
(** Per-player round timeline: players as rows, synchronous rounds as
    columns, one glyph per cell ([>] sent, [<] received, [#] both, [B]
    broadcast announcement, [+]/[!] verdict accept/reject, [o]/[x]
    reconstruction ok/failed, [.] idle), followed by the list of
    protocol/phase spans with the round interval each one covers, and —
    when the trace carries {!Suspicion} events — a ledger section with
    each player's final suspicion score and quarantine status. *)
