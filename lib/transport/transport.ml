(* ----------------------- Backend selection ----------------------- *)

type backend = Sim | Domains | Socket

let backend_name = function
  | Sim -> "sim"
  | Domains -> "domains"
  | Socket -> "socket"

let backend_of_string = function
  | "sim" -> Ok Sim
  | "domains" -> Ok Domains
  | "socket" -> Ok Socket
  | s ->
      Error
        (Printf.sprintf "unknown transport %S (expected sim, domains or socket)"
           s)

let all_backends = [ Sim; Domains; Socket ]

exception Backend_failure = Transport_error.Backend_failure

let default_timeout = 60.0

let timeout () =
  match Sys.getenv_opt "DPRBG_TRANSPORT_TIMEOUT" with
  | Some s -> ( match float_of_string_opt s with Some t when t > 0.0 -> t | _ -> default_timeout)
  | None -> default_timeout

(* One live worker group per player count: n domains or n processes,
   shared by every network of that size created inside the session. *)
type group = Gdomains of Transport_domains.t | Gsocket of Transport_socket.t

type session = { backend : backend; groups : (int, group) Hashtbl.t }

let ambient : session option ref = ref None
let current_backend () = match !ambient with None -> Sim | Some s -> s.backend

let group_post g ~dst frame =
  match g with
  | Gdomains d -> Transport_domains.post d ~dst frame
  | Gsocket s -> Transport_socket.post s ~dst frame

let group_barrier g =
  match g with
  | Gdomains d -> Transport_domains.barrier d
  | Gsocket s -> Transport_socket.barrier s

let group_shutdown g =
  match g with
  | Gdomains d -> Transport_domains.shutdown d
  | Gsocket s -> Transport_socket.shutdown s

(* OCaml's [Unix.fork] is a one-way door: once any domain has ever been
   spawned in the process, fork is forbidden for the rest of its
   lifetime. Track domain use so a socket group started too late fails
   with an actionable message instead of the runtime's generic one —
   and order socket work before domains work when driving both. *)
let domains_used = ref false

let group session ~n =
  match Hashtbl.find_opt session.groups n with
  | Some g -> g
  | None ->
      let g =
        match session.backend with
        | Sim -> assert false (* sim sessions never build groups *)
        | Domains ->
            domains_used := true;
            Gdomains (Transport_domains.create ~n)
        | Socket ->
            if !domains_used then
              Transport_error.fail
                "socket: cannot fork player processes after a domains \
                 session has run in this process (OCaml forbids fork once \
                 a domain was spawned) — run socket sessions first";
            Gsocket (Transport_socket.create ~timeout:(timeout ()) ~n)
      in
      Hashtbl.add session.groups n g;
      g

let with_backend backend f =
  let session = { backend; groups = Hashtbl.create 4 } in
  let previous = !ambient in
  let previous_tag = Trace.backend_tag () in
  ambient := Some session;
  Trace.set_backend_tag (Some (backend_name backend));
  Fun.protect
    ~finally:(fun () ->
      ambient := previous;
      Trace.set_backend_tag previous_tag;
      Hashtbl.iter (fun _ g -> group_shutdown g) session.groups)
    f

(* ----------------------- Fault-plan surface ---------------------- *)

(* The degraded-network machinery is backend-independent — fault
   sampling happens in the coordinator before a message is handed to
   the physical layer — so the plan API is Net's, re-exported to keep
   Transport the single networking entry point for protocol code. *)

module Plan = Net.Plan
module Faults = Net.Faults

let with_plan = Net.with_plan
let current_plan = Net.current_plan
let retransmit_budget = Net.retransmit_budget

(* --------------------------- Networks ----------------------------- *)

type 'msg conn = 'msg Net.t

(* Codec-less networks (agreement sub-protocols exchange plain OCaml
   values) still need a byte representation to physically traverse a
   backend; Marshal is the fallback. Networks with a wire codec use it,
   so the bytes on the wire are the protocol's own encoding. *)
let marshal_codec () =
  ((fun v -> Marshal.to_bytes v []), fun b -> Marshal.from_bytes b 0)

let carrier backend (encode, decode) g =
  {
    Net.Carrier.name = backend_name backend;
    post =
      (fun ~src ~dst ~uid msg ->
        group_post g ~dst
          (Frame.encode Frame.Msg ~src ~dst ~uid ~payload:(encode msg)));
    collect =
      (fun () ->
        Array.map
          (List.map (fun raw ->
               let hdr, payload = Frame.decode raw in
               (hdr.Frame.uid, decode payload)))
          (group_barrier g));
  }

let create ?codec ~n ~byte_size () =
  match !ambient with
  | None | Some { backend = Sim; _ } -> Net.create ?codec ~n ~byte_size ()
  | Some ({ backend = Domains | Socket; _ } as session) ->
      let c =
        match codec with Some c -> c | None -> marshal_codec ()
      in
      Net.create
        ~carrier:(carrier session.backend c (group session ~n))
        ?codec ~n ~byte_size ()

let n = Net.n
let send = Net.send
let send_to_all = Net.send_to_all
let deliver = Net.deliver
let exchange = Net.exchange
let rounds_elapsed = Net.rounds_elapsed
let complete_last_round = Net.complete_last_round
let absent_counts = Net.absent_counts

(* ----------------------- Broadcast channel ----------------------- *)

let bcast_fault_free ~byte_size ~n announce =
  Metrics.tick_round ();
  Array.init n (fun i ->
      match announce i with
      | None -> None
      | Some v ->
          Metrics.tick_message ~bytes_len:(byte_size v);
          Trace.event (fun () ->
              Trace.Broadcast { src = i; bytes = byte_size v });
          Some v)

(* Under a fault plan the channel can fail whole announcements (it never
   equivocates — every receiver still sees the same vector): an
   announcement can be omitted, corrupted in transit, or lost to a
   crashed announcer. The retransmit envelope re-announces once per
   attempt and keeps the latest delivered copy, mirroring
   [Net.exchange]: under a bounded plan the final attempt is exempt from
   link faults, so omission bursts within the budget are absorbed. *)
let bcast_degraded plan ?codec ~byte_size ~n announce =
  let attempts = Plan.retransmits plan + 1 in
  let result = Array.make n None in
  Fun.protect
    ~finally:(fun () -> Plan.exit_envelope plan)
    (fun () ->
      for attempt = 1 to attempts do
        Plan.enter_envelope plan ~attempt ~attempts;
        Metrics.tick_round ();
        for i = 0 to n - 1 do
          match announce i with
          | None -> ()
          | Some v ->
              Metrics.tick_message ~bytes_len:(byte_size v);
              Trace.event (fun () ->
                  Trace.Broadcast { src = i; bytes = byte_size v });
              if Plan.down plan i then Plan.note_crashed_msg plan
              else (
                match Plan.broadcast_fate plan with
                | `Deliver -> result.(i) <- Some v
                | `Drop -> ()
                | `Corrupt -> (
                    match codec with
                    | None -> () (* no wire form: detected and discarded *)
                    | Some (encode, decode) -> (
                        match decode (Plan.corrupt_bytes plan (encode v)) with
                        | v' -> result.(i) <- Some v'
                        | exception _ -> ())))
        done;
        Plan.advance_round plan
      done);
  result

(* Physically replicate the surviving announcement vector through the
   byte-level backend: each delivered announcement is framed once per
   receiver (uid = announcer id), the barrier hands every receiver its
   copies, and the vector every player observes is rebuilt from what
   actually traversed the wire. Receivers must agree on which slots are
   populated — a divergence is a backend bug, not a simulated fault,
   because the channel by definition never equivocates. *)
let bcast_replicate session (encode, decode) ~n result =
  let g = group session ~n in
  Array.iteri
    (fun src slot ->
      match slot with
      | None -> ()
      | Some v ->
          let payload = encode v in
          for dst = 0 to n - 1 do
            group_post g ~dst
              (Frame.encode Frame.Msg ~src ~dst ~uid:src ~payload)
          done)
    result;
  let raw = group_barrier g in
  let vectors =
    Array.map
      (fun frames ->
        let vec = Array.make n None in
        List.iter
          (fun frame ->
            let hdr, payload = Frame.decode frame in
            if hdr.Frame.uid < 0 || hdr.Frame.uid >= n then
              Transport_error.fail "broadcast frame with alien uid %d"
                hdr.Frame.uid;
            vec.(hdr.Frame.uid) <- Some (decode payload))
          frames;
        vec)
      raw
  in
  let expected = Array.map Option.is_some result in
  Array.iteri
    (fun dst vec ->
      if Array.map Option.is_some vec <> expected then
        Transport_error.fail "broadcast replication diverged at receiver %d"
          dst)
    vectors;
  vectors.(0)

let broadcast_round ?codec ~byte_size ~n announce =
  Trace.span Trace.Round "bcast.round" @@ fun () ->
  let result =
    match Net.current_plan () with
    | None -> bcast_fault_free ~byte_size ~n announce
    | Some plan -> bcast_degraded plan ?codec ~byte_size ~n announce
  in
  match !ambient with
  | None | Some { backend = Sim; _ } -> result
  | Some ({ backend = Domains | Socket; _ } as session) ->
      let c = match codec with Some c -> c | None -> marshal_codec () in
      bcast_replicate session c ~n result
