(* ----------------------- Backend selection ----------------------- *)

type backend = Sim | Domains | Socket

let backend_name = function
  | Sim -> "sim"
  | Domains -> "domains"
  | Socket -> "socket"

let backend_of_string = function
  | "sim" -> Ok Sim
  | "domains" -> Ok Domains
  | "socket" -> Ok Socket
  | s ->
      Error
        (Printf.sprintf "unknown transport %S (expected sim, domains or socket)"
           s)

let all_backends = [ Sim; Domains; Socket ]

exception Backend_failure = Transport_error.Backend_failure

module Supervisor = Transport_supervisor
module Chaos = Transport_chaos

let with_supervision = Transport_supervisor.with_supervision
let with_chaos = Transport_chaos.with_chaos

exception Safe_mode = Transport_supervisor.Safe_mode

let default_timeout = 60.0

(* Overrides come from the CLI's --transport-timeout flag; the env var
   is the fallback. A malformed or non-positive env value is a
   configuration error and is rejected loudly — silently running with
   the default timeout turns a typo into an hour of hung soak. *)
let timeout_override : float option ref = ref None

let set_timeout_override t =
  (match t with
  | Some t when t <= 0.0 || t <> t ->
      invalid_arg "Transport.set_timeout_override: timeout must be positive"
  | _ -> ());
  timeout_override := t

let timeout () =
  match !timeout_override with
  | Some t -> t
  | None -> (
      match Sys.getenv_opt "DPRBG_TRANSPORT_TIMEOUT" with
      | None -> default_timeout
      | Some s -> (
          match float_of_string_opt (String.trim s) with
          | Some t when t > 0.0 && t = t && t <> infinity -> t
          | Some _ | None ->
              Transport_error.fail
                "DPRBG_TRANSPORT_TIMEOUT=%S is not a positive number of \
                 seconds — fix or unset it (default %gs), or pass \
                 --transport-timeout"
                s default_timeout))

(* One live worker group per player count: n domains or n processes,
   shared by every network of that size created inside the session.
   Each group carries a supervision tracker — which peers have been
   declared dead — so deadness is sticky across every network and
   broadcast round of the session. *)
type group = {
  impl : group_impl;
  gn : int;
  tracker : Transport_supervisor.tracker;
}

and group_impl = Gdomains of Transport_domains.t | Gsocket of Transport_socket.t

type session = { backend : backend; groups : (int, group) Hashtbl.t }

let ambient : session option ref = ref None
let current_backend () = match !ambient with None -> Sim | Some s -> s.backend

(* OCaml's [Unix.fork] is a one-way door: once any domain has ever been
   spawned in the process, fork is forbidden for the rest of its
   lifetime. Track domain use so a socket group started too late fails
   with an actionable message instead of the runtime's generic one —
   and order socket work before domains work when driving both. *)
let domains_used = ref false

let group session ~n =
  match Hashtbl.find_opt session.groups n with
  | Some g -> g
  | None ->
      let impl =
        match session.backend with
        | Sim -> assert false (* sim sessions never build groups *)
        | Domains ->
            domains_used := true;
            Gdomains (Transport_domains.create ~n)
        | Socket ->
            if !domains_used then
              Transport_error.fail
                "socket: cannot fork player processes after a domains \
                 session has run in this process (OCaml forbids fork once \
                 a domain was spawned) — run socket sessions first";
            Gsocket (Transport_socket.create ~timeout:(timeout ()) ~n)
      in
      let g = { impl; gn = n; tracker = Transport_supervisor.tracker ~n } in
      Hashtbl.add session.groups n g;
      g

let group_shutdown g =
  match g.impl with
  | Gdomains d -> Transport_domains.shutdown d
  | Gsocket s -> Transport_socket.shutdown s

(* Chaos bookkeeping: (group size, player) pairs whose injected stall
   should be resumed at the first missed read deadline (see the chaos
   wiring below). Session-scoped; reset when a session closes so stale
   entries cannot leak into the next one. *)
let resumable_stalls : (int * int, unit) Hashtbl.t = Hashtbl.create 8

let with_backend backend f =
  let session = { backend; groups = Hashtbl.create 4 } in
  let previous = !ambient in
  let previous_tag = Trace.backend_tag () in
  ambient := Some session;
  Trace.set_backend_tag (Some (backend_name backend));
  Fun.protect
    ~finally:(fun () ->
      ambient := previous;
      Trace.set_backend_tag previous_tag;
      Hashtbl.reset resumable_stalls;
      Hashtbl.iter (fun _ g -> group_shutdown g) session.groups)
    f

(* ----------------------- Fault-plan surface ---------------------- *)

(* The degraded-network machinery is backend-independent — fault
   sampling happens in the coordinator before a message is handed to
   the physical layer — so the plan API is Net's, re-exported to keep
   Transport the single networking entry point for protocol code. *)

module Plan = Net.Plan
module Faults = Net.Faults

let with_plan = Net.with_plan
let current_plan = Net.current_plan
let retransmit_budget = Net.retransmit_budget

(* ------------------- Supervision and chaos wiring ----------------- *)

(* Fire every chaos event due at the round currently being formed on
   the ambient plan's clock. Called at the head of each physical post
   and each barrier, so an event scheduled for round r strikes before
   round r's bytes move even in rounds with no traffic. A socket stall
   shorter than the supervision budget is made recoverable: the child
   is SIGSTOPped now and SIGCONTed from the read-retry path, so the
   coordinator observes one missed deadline and a successful retry. *)
let fire_chaos g =
  if Transport_chaos.active () then
    match Net.current_plan () with
    | None -> ()
    | Some plan ->
        let round = Plan.forming_round plan in
        List.iter
          (fun (e : Transport_chaos.event) ->
            if e.player >= 0 && e.player < g.gn then
              match (g.impl, e.action) with
              | Gsocket s, Transport_chaos.Kill ->
                  Transport_socket.kill_peer s e.player
              | Gsocket s, Transport_chaos.Stall d ->
                  let budget =
                    match Transport_supervisor.active () with
                    | Some cfg -> Transport_supervisor.total_budget cfg
                    | None -> timeout ()
                  in
                  Transport_socket.stall_peer s e.player;
                  if d < budget then
                    Hashtbl.replace resumable_stalls (g.gn, e.player) ()
              | Gsocket s, Transport_chaos.Truncate ->
                  Transport_socket.garble_peer s e.player
              | Gdomains d, Transport_chaos.Kill ->
                  Transport_domains.chaos_die d e.player
              | Gdomains d, Transport_chaos.Stall dur ->
                  Transport_domains.chaos_stall d e.player ~duration:dur
              | Gdomains d, Transport_chaos.Truncate ->
                  Transport_domains.post_garbage d e.player)
          (Transport_chaos.due ~round)

let on_stall g ~player ~attempt =
  Trace.event (fun () -> Trace.Stall { player; attempt });
  if Hashtbl.mem resumable_stalls (g.gn, player) then begin
    Hashtbl.remove resumable_stalls (g.gn, player);
    match g.impl with
    | Gsocket s -> Transport_socket.resume_peer s player
    | Gdomains _ -> ()
  end

let declare_dead g ~player failure =
  match Transport_supervisor.active () with
  | Some cfg -> Transport_supervisor.declare_dead cfg g.tracker ~player failure
  | None ->
      (* Unsupervised sessions keep the pre-supervision contract: the
         first peer failure is fatal. *)
      Transport_error.fail "%s: player %d %s"
        (match g.impl with Gdomains _ -> "domains" | Gsocket _ -> "socket")
        player failure.Transport_error.reason

let peer_dead g player = Transport_supervisor.is_dead g.tracker player

(* Physically post one frame, tolerating (under supervision) the
   addressee being found dead at write time. A failed post does NOT
   declare the peer dead: the frame is lost either way, and the round's
   barrier — which sees the backend's failure classification (plain
   death vs garbage-induced) — makes the declaration deterministically,
   where a write-time EPIPE racing the barrier would not. *)
let group_post g ~dst frame =
  if not (peer_dead g dst) then
    let post () =
      match g.impl with
      | Gdomains d -> Transport_domains.post d ~dst frame
      | Gsocket s -> Transport_socket.post s ~dst frame
    in
    match Transport_supervisor.active () with
    | None -> post ()
    | Some _ -> ( try post () with Backend_failure _ -> ())

(* Run the physical round barrier. Supervised: dead peers are skipped,
   read deadlines/retries/backoff come from the config, and a peer
   failure declares it dead (possibly raising [Safe_mode]) and yields
   an empty hand-off — the coordinator's plan voids its inbox exactly
   as for a simulated crash. Unsupervised: the session timeout is the
   single read deadline and the first failure is fatal. *)
let group_barrier g =
  let skip = peer_dead g in
  let results =
    match (Transport_supervisor.active (), g.impl) with
    | Some cfg, Gsocket s ->
        Transport_socket.barrier ~skip ~deadline:cfg.deadline
          ~retries:cfg.retries ~backoff:cfg.backoff ~on_stall:(on_stall g) s
    | Some cfg, Gdomains d ->
        Transport_domains.barrier ~skip ~deadline:cfg.deadline
          ~retries:cfg.retries ~backoff:cfg.backoff ~on_stall:(on_stall g) d
    | None, Gsocket s -> Transport_socket.barrier ~skip s
    | None, Gdomains d ->
        Transport_domains.barrier ~skip ~on_stall:(on_stall g) d
  in
  Array.mapi
    (fun player result ->
      match result with
      | Ok frames -> frames
      | Error failure ->
          declare_dead g ~player failure;
          [])
    results

(* --------------------------- Networks ----------------------------- *)

type 'msg conn = 'msg Net.t

(* Codec-less networks (agreement sub-protocols exchange plain OCaml
   values) still need a byte representation to physically traverse a
   backend; Marshal is the fallback. Networks with a wire codec use it,
   so the bytes on the wire are the protocol's own encoding. *)
let marshal_codec () =
  ((fun v -> Marshal.to_bytes v []), fun b -> Marshal.from_bytes b 0)

let carrier backend (encode, decode) g =
  {
    Net.Carrier.name = backend_name backend;
    post =
      (fun ~src ~dst ~uid msg ->
        fire_chaos g;
        group_post g ~dst
          (Frame.encode Frame.Msg ~src ~dst ~uid ~payload:(encode msg)));
    collect =
      (fun () ->
        fire_chaos g;
        Array.mapi
          (fun player frames ->
            (* A peer that echoes bytes failing to decode is mangling
               its stream: under supervision that is an attributable
               Undecodable death, not a coordinator crash. *)
            match
              List.map
                (fun raw ->
                  let hdr, payload = Frame.decode raw in
                  (hdr.Frame.uid, decode payload))
                frames
            with
            | inbox -> inbox
            | exception Frame.Error e ->
                (match Transport_supervisor.active () with
                | None ->
                    Transport_error.fail "%s: player %d echoed a bad frame: %s"
                      (backend_name backend) player
                      (Format.asprintf "%a" Frame.pp_error e)
                | Some _ ->
                    declare_dead g ~player
                      {
                        Transport_error.reason =
                          Format.asprintf "echoed a bad frame: %a"
                            Frame.pp_error e;
                        undecodable = true;
                      });
                [])
          (group_barrier g));
  }

let create ?codec ~n ~byte_size () =
  match !ambient with
  | None | Some { backend = Sim; _ } -> Net.create ?codec ~n ~byte_size ()
  | Some ({ backend = Domains | Socket; _ } as session) ->
      let c =
        match codec with Some c -> c | None -> marshal_codec ()
      in
      Net.create
        ~carrier:(carrier session.backend c (group session ~n))
        ?codec ~n ~byte_size ()

let n = Net.n
let send = Net.send
let send_to_all = Net.send_to_all
let deliver = Net.deliver
let exchange = Net.exchange
let rounds_elapsed = Net.rounds_elapsed
let complete_last_round = Net.complete_last_round
let absent_counts = Net.absent_counts

(* ----------------------- Broadcast channel ----------------------- *)

let bcast_fault_free ~byte_size ~n announce =
  Metrics.tick_round ();
  Array.init n (fun i ->
      match announce i with
      | None -> None
      | Some v ->
          Metrics.tick_message ~bytes_len:(byte_size v);
          Trace.event (fun () ->
              Trace.Broadcast { src = i; bytes = byte_size v });
          Some v)

(* Under a fault plan the channel can fail whole announcements (it never
   equivocates — every receiver still sees the same vector): an
   announcement can be omitted, corrupted in transit, or lost to a
   crashed announcer. The retransmit envelope re-announces once per
   attempt and keeps the latest delivered copy, mirroring
   [Net.exchange]: under a bounded plan the final attempt is exempt from
   link faults, so omission bursts within the budget are absorbed. *)
let bcast_degraded plan ?codec ~byte_size ~n announce =
  let attempts = Plan.retransmits plan + 1 in
  let result = Array.make n None in
  Fun.protect
    ~finally:(fun () -> Plan.exit_envelope plan)
    (fun () ->
      for attempt = 1 to attempts do
        Plan.enter_envelope plan ~attempt ~attempts;
        Metrics.tick_round ();
        for i = 0 to n - 1 do
          match announce i with
          | None -> ()
          | Some v ->
              Metrics.tick_message ~bytes_len:(byte_size v);
              Trace.event (fun () ->
                  Trace.Broadcast { src = i; bytes = byte_size v });
              if Plan.down plan i then Plan.note_crashed_msg plan
              else (
                match Plan.broadcast_fate plan with
                | `Deliver -> result.(i) <- Some v
                | `Drop -> ()
                | `Corrupt -> (
                    match codec with
                    | None -> () (* no wire form: detected and discarded *)
                    | Some (encode, decode) -> (
                        match decode (Plan.corrupt_bytes plan (encode v)) with
                        | v' -> result.(i) <- Some v'
                        | exception _ -> ())))
        done;
        Plan.advance_round plan
      done);
  result

(* Physically replicate the surviving announcement vector through the
   byte-level backend: each delivered announcement is framed once per
   receiver (uid = announcer id), the barrier hands every receiver its
   copies, and the vector every player observes is rebuilt from what
   actually traversed the wire. Live receivers must agree on which
   slots are populated — a divergence is a backend bug, not a simulated
   fault, because the channel by definition never equivocates. Peers
   declared dead by the supervision layer receive nothing and are
   exempt; if every receiver is dead the logical vector stands. *)
let bcast_replicate session (encode, decode) ~n result =
  let g = group session ~n in
  Array.iteri
    (fun src slot ->
      match slot with
      | None -> ()
      | Some v ->
          let payload = encode v in
          for dst = 0 to n - 1 do
            fire_chaos g;
            group_post g ~dst
              (Frame.encode Frame.Msg ~src ~dst ~uid:src ~payload)
          done)
    result;
  let raw = group_barrier g in
  let vectors =
    Array.map
      (fun frames ->
        let vec = Array.make n None in
        List.iter
          (fun frame ->
            let hdr, payload = Frame.decode frame in
            if hdr.Frame.uid < 0 || hdr.Frame.uid >= n then
              Transport_error.fail "broadcast frame with alien uid %d"
                hdr.Frame.uid;
            vec.(hdr.Frame.uid) <- Some (decode payload))
          frames;
        vec)
      raw
  in
  let expected = Array.map Option.is_some result in
  let live = ref None in
  Array.iteri
    (fun dst vec ->
      if not (peer_dead g dst) then begin
        if !live = None then live := Some dst;
        if Array.map Option.is_some vec <> expected then
          Transport_error.fail "broadcast replication diverged at receiver %d"
            dst
      end)
    vectors;
  match !live with
  | Some dst -> vectors.(dst)
  | None ->
      (* Everyone is dead; replication carried nothing. Return what the
         channel decided — callers past the fault bound are already in
         Safe_mode territory. *)
      Array.map (Option.map (fun v -> decode (encode v))) result

let broadcast_round ?codec ~byte_size ~n announce =
  Trace.span Trace.Round "bcast.round" @@ fun () ->
  let result =
    match Net.current_plan () with
    | None -> bcast_fault_free ~byte_size ~n announce
    | Some plan -> bcast_degraded plan ?codec ~byte_size ~n announce
  in
  match !ambient with
  | None | Some { backend = Sim; _ } -> result
  | Some ({ backend = Domains | Socket; _ } as session) ->
      let c = match codec with Some c -> c | None -> marshal_codec () in
      bcast_replicate session c ~n result

(* ------------------------ Failure inspection --------------------- *)

(* Which peers the current session has declared dead (player, why), per
   group size. Empty when unsupervised or nothing failed. *)
let session_deaths ~n =
  match !ambient with
  | None -> []
  | Some session -> (
      match Hashtbl.find_opt session.groups n with
      | None -> []
      | Some g -> Transport_supervisor.deaths g.tracker)
