(** Pluggable transport under the synchronous protocol drivers.

    Protocol code talks to {e this} module — never to {!Net} directly —
    and gets the same synchronous API ({!create}, {!send}, {!deliver},
    {!exchange}, {!broadcast_round}, the fault-plan surface) over one of
    three interchangeable backends:

    - [Sim] — the in-memory simulator; {!create} is exactly
      {!Net.create} and behaviour is bit-identical to the pre-transport
      code. The default when no backend is installed.
    - [Domains] — one OCaml 5 domain per player with mutex/condvar
      mailboxes; every protocol message physically crosses a domain
      boundary as a {!Frame} and is validated by the receiving player's
      domain.
    - [Socket] — one local process per player, connected by Unix domain
      sockets carrying length-prefixed, versioned {!Frame}s; the round
      barrier is a control-frame handshake with an OS-level receive
      timeout.

    {b Determinism contract.} Every observable decision — fault
    sampling, message ordering, metric ticks, PRNG draws — is made by
    the coordinator in one deterministic order; backends move bytes and
    are never allowed to influence ordering (the round barrier reads
    player hand-offs in player order, and inbox entries are matched back
    to coordinator bookkeeping by frame uid). Consequently a protocol
    run is {e byte-identical} across backends: same coin values, same
    metrics, same evidence, same trace structure (modulo the backend
    tag). The cross-backend differential suite in [test/test_transport.ml]
    pins this.

    Backends fail loudly, not silently: a lost frame raises
    {!Net.Desync}, a dead or wedged worker raises {!Backend_failure}
    (socket reads time out after [DPRBG_TRANSPORT_TIMEOUT] seconds,
    default 60; a malformed value of that variable is itself a loud
    {!Backend_failure}, never a silent fallback).

    {b Supervision.} Inside {!with_supervision} real peer failures stop
    being fatal: a dead, wedged or garbling peer is declared crashed on
    the ambient fault plan at the round where it failed, the protocol
    continues with the survivors exactly as if the plan had scheduled a
    simulated crash there, and more than [fault_bound] distinct real
    failures raise {!Safe_mode}. See DESIGN.md section 16 for the
    failure model and the crash/sim equivalence contract. *)

(** {1 Backends} *)

type backend = Sim | Domains | Socket

val backend_name : backend -> string
(** ["sim"], ["domains"], ["socket"] — also the trace backend tag. *)

val backend_of_string : string -> (backend, string) result
val all_backends : backend list

exception Backend_failure of string
(** A backend broke its delivery contract (worker died, process exited,
    receive timed out, frame failed validation at a player). Never used
    for simulated faults. *)

val with_backend : backend -> (unit -> 'a) -> 'a
(** [with_backend b f] runs [f] with [b] installed as the ambient
    transport: every {!create} and {!broadcast_round} inside uses it,
    and traces collected inside carry its {!backend_name} as their
    backend tag. Worker groups (n domains, or n player processes) are
    created lazily per player count, shared across the session, and
    shut down — domains joined, processes reaped — when [f] returns or
    raises. Nesting restores the previous backend on exit.

    Do not nest a [Socket] session inside a [Domains] session: forking
    is unsafe while worker domains are live. Sequential sessions are
    fine. *)

val current_backend : unit -> backend
(** The ambient backend; [Sim] when none is installed. *)

val set_timeout_override : float option -> unit
(** Install (or clear, with [None]) a receive-timeout override taking
    precedence over [DPRBG_TRANSPORT_TIMEOUT]. The CLI's
    [--transport-timeout] flag lands here. Raises [Invalid_argument] on
    a non-positive or NaN value. *)

val timeout : unit -> float
(** The effective receive timeout: the override if set, else
    [DPRBG_TRANSPORT_TIMEOUT], else 60 s. Raises {!Backend_failure} on
    a malformed or non-positive env value — never a silent fallback.
    Callers taking configuration can force this eagerly to fail fast. *)

(** {1 Supervision and chaos}

    Opt-in tolerance of {e real} peer failures (killed processes, dead
    worker domains, missed read deadlines, mangled streams), and the
    seeded injector that produces them on purpose. Both are ambient,
    mirroring {!with_plan}; supervision requires an ambient fault plan
    to hold its crash marks (an empty plan suffices). *)

module Supervisor = Transport_supervisor
module Chaos = Transport_chaos

exception Safe_mode of string
(** Re-export of {!Transport_supervisor.Safe_mode}: more distinct real
    peer failures than the configured fault bound. *)

val with_supervision :
  ?deadline:float ->
  ?retries:int ->
  ?backoff:float ->
  ?fault_bound:int ->
  (unit -> 'a) ->
  'a
(** [with_supervision f] runs [f] with failure supervision active:
    supervised barriers read under [deadline] seconds per attempt with
    [retries] extra attempts at [backoff]-multiplied deadlines
    (defaults 5s / 2 / 2.0); a peer that dies, exhausts the budget or
    mangles its stream is declared crashed on the ambient plan and
    skipped thereafter; strictly more than [fault_bound] such
    declarations raise {!Safe_mode} (no bound: never). *)

val with_chaos : Transport_chaos.event list -> (unit -> 'a) -> 'a
(** Install a chaos schedule for the duration of [f]: each event fires
    once, at the first physical post or barrier of its round (on the
    ambient plan's round clock). *)

val session_deaths : n:int -> (int * Transport_error.peer_failure) list
(** Peers the current session's [n]-player group has declared dead,
    with why — [[]] when unsupervised, outside a session, or nothing
    failed. *)

(** {1 Fault plans}

    Degraded-network machinery is backend-independent — faults are
    decided in the coordinator before a message reaches the physical
    layer — so this is {!Net}'s plan surface re-exported, keeping
    [Transport] the single networking entry point for protocol code. *)

module Plan = Net.Plan
module Faults = Net.Faults

val with_plan : Plan.t -> (unit -> 'a) -> 'a
val current_plan : unit -> Plan.t option
val retransmit_budget : unit -> int

(** {1 Networks}

    The synchronous API of {!Net}, dispatched over the ambient backend.
    ['msg conn] {e is} ['msg Net.t], so the cost model, fault semantics
    and inbox shapes are exactly Net's — see {!Net} for the full
    contracts. *)

type 'msg conn = 'msg Net.t

val create :
  ?codec:(('msg -> bytes) * (bytes -> 'msg)) ->
  n:int ->
  byte_size:('msg -> int) ->
  unit ->
  'msg conn
(** Like {!Net.create}, on the ambient backend. Under [Domains]/[Socket]
    every queued message is framed and physically posted to the
    addressee's worker; [codec] (when given) is the on-wire payload
    encoding, otherwise [Marshal] is used. *)

val n : _ conn -> int
val send : 'msg conn -> src:int -> dst:int -> 'msg -> unit
val send_to_all : 'msg conn -> src:int -> (int -> 'msg) -> unit
val deliver : 'msg conn -> (int * 'msg) list array
val exchange : 'msg conn -> send:(unit -> unit) -> (int * 'msg) list array
val rounds_elapsed : _ conn -> int
val complete_last_round : _ conn -> bool

val absent_counts :
  ?unique_senders:bool -> n:int -> (int * 'msg) list array -> int array

(** {1 Broadcast channel} *)

val broadcast_round :
  ?codec:(('v -> bytes) * (bytes -> 'v)) ->
  byte_size:('v -> int) ->
  n:int ->
  (int -> 'v option) ->
  'v option array
(** One round of the assumed broadcast channel (see {!Broadcast.round},
    which delegates here): player [i] announces [announce i] and every
    player observes the same vector. Fault handling (ambient
    {!Net.Plan}, retransmit envelope, corruption through [codec]) is
    identical on every backend; under [Domains]/[Socket] the surviving
    vector is additionally replicated through the physical layer — one
    frame per (announcement, receiver) — and the returned vector is
    rebuilt from the frames that actually traversed it, with a
    {!Backend_failure} if any receiver's copy diverges. *)
