(* Seeded chaos injection (DESIGN.md section 16): a schedule of real
   failures — SIGKILLed player processes, stalled peers, truncated
   frames — fired at predetermined protocol rounds while a supervised
   transport session runs. The injector only decides {e when} and
   {e what}; the physical mechanics live in the backends
   ([Transport_socket.kill_peer], [Transport_domains.chaos_die], ...)
   and the wiring in [Transport].

   A schedule is deterministic from its seed, and every Kill/Stall
   event has an exact simulator counterpart — a [crashes] entry at the
   same round — which is how the differential chaos tests pin real
   failure handling to the sim oracle byte for byte. Truncation has no
   sim counterpart (the simulator cannot emit undecodable bytes); it is
   asserted against the evidence ledger instead. *)

type action =
  | Kill  (** SIGKILL the player process / crash the worker domain *)
  | Stall of float
      (** wedge the peer for this many seconds; shorter than the
          supervision budget it is recovered by retry-and-backoff,
          longer and the peer is declared dead *)
  | Truncate
      (** inject undecodable bytes into the peer's stream mid-round *)

type event = { round : int; player : int; action : action }

let pp_action ppf = function
  | Kill -> Format.fprintf ppf "kill"
  | Stall d -> Format.fprintf ppf "stall %.3gs" d
  | Truncate -> Format.fprintf ppf "truncate"

let pp_event ppf e =
  Format.fprintf ppf "round %d: %a p%d" e.round pp_action e.action e.player

(* ------------------------- schedule builder ---------------------- *)

(* Deterministic schedule from a seed: [kills]+[stalls]+[truncates]
   distinct victims (so each event is a distinct real fault, comparable
   to distinct crash entries), each assigned a uniform round in
   [first_round, last_round]. Victims and rounds use a private split of
   the seed, so building a schedule never perturbs protocol
   randomness. *)
let schedule ~seed ~n ~kills ~stalls ~truncates ?(stall_duration = 0.05)
    ?(first_round = 1) ~last_round () =
  let total = kills + stalls + truncates in
  if total > n then
    invalid_arg "Transport_chaos.schedule: more victims than players";
  if first_round < 1 || last_round < first_round then
    invalid_arg "Transport_chaos.schedule: bad round interval";
  let prng = Prng.of_int (seed lxor 0x6368616f) (* "chao" *) in
  let victims = Prng.sample_distinct prng total n in
  let span = last_round - first_round + 1 in
  List.mapi
    (fun idx player ->
      let round = first_round + Prng.int prng span in
      let action =
        if idx < kills then Kill
        else if idx < kills + stalls then Stall stall_duration
        else Truncate
      in
      { round; player; action })
    victims
  |> List.sort (fun a b -> compare (a.round, a.player) (b.round, b.player))

(* The simulated-crash schedule equivalent to this chaos schedule under
   a supervision budget of [budget] seconds: every Kill, every Stall at
   least as long as the budget, and every Truncate (the garbled peer
   dies of the injected bytes) is a crash-stop at its round with no
   recovery. Sub-budget stalls are recovered by retry-and-backoff and
   have no crash counterpart. Coin values and fault tallies match this
   schedule exactly; a Truncate additionally accrues Undecodable
   evidence the simulator cannot produce, so evidence rows are only
   comparable for kill/stall schedules. *)
let sim_crashes ~budget events =
  List.filter_map
    (fun e ->
      match e.action with
      | Kill | Truncate -> Some (e.player, e.round, None)
      | Stall d when d >= budget -> Some (e.player, e.round, None)
      | Stall _ -> None)
    events

(* ---------------------- serve-loop kill points -------------------- *)

(* The beacon serve loop's chaos hook: a seeded set of epoch sequence
   numbers at which a supervised `dprbg beacon --supervise` child
   SIGKILLs itself, right after the epoch is durable. Firing after the
   close (never before) is what makes the schedule convergent: the
   restarted incarnation resumes past the kill epoch and cannot
   re-trigger it, so [kills] kills cost exactly [kills] restarts. The
   seed split is private (like [schedule]'s), so computing the plan
   perturbs no protocol randomness, and every incarnation computes the
   identical plan from the same seed. *)
let serve_kill_epochs ~seed ~kills ~epochs =
  if kills < 0 then
    invalid_arg "Transport_chaos.serve_kill_epochs: negative kills";
  if kills > epochs then
    invalid_arg "Transport_chaos.serve_kill_epochs: more kills than epochs";
  if kills = 0 then []
  else
    let prng = Prng.of_int (seed lxor 0x6b696c6c) (* "kill" *) in
    Prng.sample_distinct prng kills epochs

(* --------------------------- ambient state ----------------------- *)

type t = { events : event array; fired : bool array }

let ambient : t option ref = ref None

let with_chaos events f =
  let t =
    {
      events = Array.of_list events;
      fired = Array.make (List.length events) false;
    }
  in
  let previous = !ambient in
  ambient := Some t;
  Fun.protect ~finally:(fun () -> ambient := previous) f

let active () = !ambient <> None

(* Events due at (or before — rounds with no traffic must not shield an
   event) the round currently being formed, each fired exactly once, in
   schedule order. *)
let due ~round =
  match !ambient with
  | None -> []
  | Some t ->
      let out = ref [] in
      Array.iteri
        (fun i e ->
          if (not t.fired.(i)) && e.round <= round then begin
            t.fired.(i) <- true;
            out := e :: !out
          end)
        t.events;
      List.rev !out
