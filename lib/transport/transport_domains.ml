(* Shared-memory backend: one OCaml 5 domain per player, each owning a
   mutex/condvar mailbox of raw frames. The coordinator posts frames
   into mailboxes; the round barrier asks every player, in player order,
   to validate and hand back everything received since the last barrier.
   Determinism comes from the barrier discipline: the coordinator only
   reads a player's hand-off after that player has acknowledged the
   round, and frames are handed back in arrival order, so the physical
   layer can neither reorder nor interleave observably.

   Failure reporting is per peer: [barrier] {e returns} each peer's
   outcome — its hand-off or a {!Transport_error.peer_failure} — so the
   supervision layer can tolerate individual worker deaths; the
   unsupervised path converts the first failure into the same fatal
   error as before. The stdlib has no timed condvar wait, so supervised
   barriers poll the mailbox under a wall-clock budget instead of
   blocking. *)

type mailbox = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable incoming : bytes list; (* reverse arrival order *)
  mutable round : int; (* barrier generation requested by coordinator *)
  mutable served : int; (* barrier generation completed by the player *)
  mutable outbox : bytes list; (* completed hand-off, arrival order *)
  mutable failed : string option; (* worker died: why *)
  mutable failed_garbage : bool;
      (* the death was caused by undecodable bytes on the stream *)
  mutable stop : bool;
  (* chaos injection (DESIGN.md section 16): flags the worker honours at
     its next wakeup, simulating a real crash / wedged peer *)
  mutable chaos_die : bool;
  mutable chaos_stall : float; (* seconds to sleep before serving; 0 = none *)
}

type t = { n : int; boxes : mailbox array; workers : unit Domain.t array }

(* Each frame is validated by the receiving player in its own domain: it
   must parse, be a protocol message, and be addressed to this player.
   Decode and framing failures raise the typed {!Frame.Error} — the
   worker classifies those deaths as garbage-induced; contract
   violations the frame layer cannot express stay [Backend_failure]. *)
let validate me frame =
  let hdr = Frame.decode_header frame ~pos:0 in
  if hdr.Frame.kind <> Frame.Msg then
    Transport_error.fail "domains: player %d got control frame %s" me
      (Frame.kind_name hdr.Frame.kind);
  if hdr.Frame.dst <> me then
    Transport_error.fail "domains: player %d got frame addressed to player %d"
      me hdr.Frame.dst;
  let expected = Frame.header_size + hdr.Frame.length in
  let got = Bytes.length frame in
  if got < expected then raise (Frame.Error (Frame.Truncated { expected; got }))
  else if got > expected then
    raise (Frame.Error (Frame.Trailing_bytes (got - expected)))

let record_failure box e ~garbage =
  Mutex.lock box.mu;
  box.failed <- Some e;
  box.failed_garbage <- garbage;
  box.served <- box.round;
  Condition.broadcast box.cv;
  Mutex.unlock box.mu

let worker me box () =
  let buffered = ref [] (* validated frames, reverse arrival order *) in
  try
    let running = ref true in
    while !running do
      Mutex.lock box.mu;
      while
        box.incoming = []
        && box.round = box.served
        && (not box.stop)
        && (not box.chaos_die)
        && box.chaos_stall = 0.0
      do
        Condition.wait box.cv box.mu
      done;
      let batch = List.rev box.incoming in
      box.incoming <- [];
      let round_due = box.round > box.served in
      let stopping = box.stop in
      let dying = box.chaos_die in
      let stall = box.chaos_stall in
      box.chaos_stall <- 0.0;
      Mutex.unlock box.mu;
      if dying then begin
        (* Injected death: indistinguishable from a worker whose domain
           crashed — it records why and acks barriers forever after. *)
        record_failure box "killed by chaos injection" ~garbage:false;
        running := false
      end
      else begin
        (* Injected stall: sleep outside the mutex, then serve normally.
           A stall shorter than the coordinator's retry budget is
           recovered by backoff; a longer one gets this peer declared
           dead while it is still asleep. *)
        if stall > 0.0 then Unix.sleepf stall;
        List.iter
          (fun frame ->
            validate me frame;
            buffered := frame :: !buffered)
          batch;
        if round_due then begin
          Mutex.lock box.mu;
          box.outbox <- List.rev !buffered;
          buffered := [];
          box.served <- box.round;
          Condition.broadcast box.cv;
          Mutex.unlock box.mu
        end;
        if stopping && not round_due then running := false
      end
    done
  with
  (* Never let the domain die with an uncaught exception — record the
     failure (classified: undecodable bytes vs anything else) and
     acknowledge every future barrier so the coordinator wakes up and
     reports it instead of deadlocking. *)
  | Frame.Error _ as e -> record_failure box (Printexc.to_string e) ~garbage:true
  | e -> record_failure box (Printexc.to_string e) ~garbage:false

let create ~n =
  let boxes =
    Array.init n (fun _ ->
        {
          mu = Mutex.create ();
          cv = Condition.create ();
          incoming = [];
          round = 0;
          served = 0;
          outbox = [];
          failed = None;
          failed_garbage = false;
          stop = false;
          chaos_die = false;
          chaos_stall = 0.0;
        })
  in
  let workers = Array.init n (fun i -> Domain.spawn (worker i boxes.(i))) in
  { n; boxes; workers }

let post t ~dst frame =
  let box = t.boxes.(dst) in
  Mutex.lock box.mu;
  (match box.failed with
  | Some why ->
      Mutex.unlock box.mu;
      Transport_error.fail "domains: worker %d is dead: %s" dst why
  | None -> ());
  box.incoming <- frame :: box.incoming;
  Condition.signal box.cv;
  Mutex.unlock box.mu

(* Wait for one peer to serve the current barrier generation. Without a
   deadline this is the original blocking condvar wait. With one, the
   coordinator polls (1 ms grain) under an escalating per-attempt
   budget; [`Stalled] means the whole budget elapsed with the worker
   alive but unresponsive. Called with [box.mu] held; returns with it
   held. *)
let wait_served ?deadline ~retries ~backoff ~on_stall box =
  match deadline with
  | None ->
      while box.served < box.round && box.failed = None do
        Condition.wait box.cv box.mu
      done;
      if box.failed = None then `Served else `Failed
  | Some d ->
      let start = Unix.gettimeofday () in
      let attempt = ref 0 in
      let budget = ref d in
      let rec loop () =
        if box.failed <> None then `Failed
        else if box.served >= box.round then `Served
        else if Unix.gettimeofday () -. start >= !budget then
          if !attempt >= retries then `Stalled
          else begin
            incr attempt;
            budget := !budget +. (d *. (backoff ** float_of_int !attempt));
            Mutex.unlock box.mu;
            on_stall ~attempt:!attempt;
            Mutex.lock box.mu;
            loop ()
          end
        else begin
          Mutex.unlock box.mu;
          Unix.sleepf 0.001;
          Mutex.lock box.mu;
          loop ()
        end
      in
      loop ()

(* The coordinator-side barrier. [skip]ped peers (already declared dead
   by the supervision layer) are not asked for the round and report an
   empty hand-off; everyone else is polled in player order. Per-peer
   outcomes are returned, never raised — the caller decides whether a
   failure is fatal. *)
let barrier ?(skip = fun _ -> false) ?deadline ?(retries = 0) ?(backoff = 1.0)
    ?(on_stall = fun ~player:_ ~attempt:_ -> ()) t =
  Array.mapi
    (fun i box ->
      if skip i then Ok []
      else begin
        Mutex.lock box.mu;
        box.round <- box.round + 1;
        Condition.broadcast box.cv;
        let outcome =
          wait_served ?deadline ~retries ~backoff
            ~on_stall:(fun ~attempt -> on_stall ~player:i ~attempt)
            box
        in
        let out = box.outbox in
        box.outbox <- [];
        let failed = box.failed in
        let garbage = box.failed_garbage in
        Mutex.unlock box.mu;
        match outcome with
        | `Served -> Ok out
        | `Failed ->
            let why = match failed with Some w -> w | None -> "died" in
            Transport_error.peer_failure ~undecodable:garbage "worker died: %s"
              why
        | `Stalled ->
            Transport_error.peer_failure
              "missed the barrier deadline (%d attempts of %.3gs)"
              (retries + 1)
              (match deadline with Some d -> d | None -> 0.0)
      end)
    t.boxes

(* -------------------------- chaos hooks -------------------------- *)

(* Used only by the chaos injector: real worker failures, induced on
   purpose. All tolerate an already-dead worker. *)

let chaos_die t i =
  let box = t.boxes.(i) in
  Mutex.lock box.mu;
  if box.failed = None then begin
    box.chaos_die <- true;
    Condition.broadcast box.cv
  end;
  Mutex.unlock box.mu

let chaos_stall t i ~duration =
  let box = t.boxes.(i) in
  Mutex.lock box.mu;
  if box.failed = None then begin
    box.chaos_stall <- duration;
    Condition.broadcast box.cv
  end;
  Mutex.unlock box.mu

(* Inject undecodable bytes into the peer's mailbox: a junk header with
   a wrong magic. Validation fails at the worker's next wakeup and the
   death is classified as garbage-induced (Undecodable evidence). *)
let post_garbage t i =
  let box = t.boxes.(i) in
  Mutex.lock box.mu;
  if box.failed = None then begin
    box.incoming <- Bytes.make Frame.header_size '\xFF' :: box.incoming;
    Condition.signal box.cv
  end;
  Mutex.unlock box.mu

let shutdown t =
  Array.iter
    (fun box ->
      Mutex.lock box.mu;
      box.stop <- true;
      (* An abandoned stall must not hold up the join longer than its
         own (finite) duration; a dead worker has already exited. *)
      Condition.broadcast box.cv;
      Mutex.unlock box.mu)
    t.boxes;
  Array.iter Domain.join t.workers
