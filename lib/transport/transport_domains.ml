(* Shared-memory backend: one OCaml 5 domain per player, each owning a
   mutex/condvar mailbox of raw frames. The coordinator posts frames
   into mailboxes; the round barrier asks every player, in player order,
   to validate and hand back everything received since the last barrier.
   Determinism comes from the barrier discipline: the coordinator only
   reads a player's hand-off after that player has acknowledged the
   round, and frames are handed back in arrival order, so the physical
   layer can neither reorder nor interleave observably. *)

type mailbox = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable incoming : bytes list; (* reverse arrival order *)
  mutable round : int; (* barrier generation requested by coordinator *)
  mutable served : int; (* barrier generation completed by the player *)
  mutable outbox : bytes list; (* completed hand-off, arrival order *)
  mutable failed : string option; (* worker died: why *)
  mutable stop : bool;
}

type t = { n : int; boxes : mailbox array; workers : unit Domain.t array }

(* Each frame is validated by the receiving player in its own domain:
   it must parse, be a protocol message, and be addressed to this
   player. *)
let validate me frame =
  match Frame.decode_header frame ~pos:0 with
  | exception Frame.Error e ->
      Transport_error.fail "domains: player %d got bad frame: %s" me
        (Format.asprintf "%a" Frame.pp_error e)
  | hdr ->
      if hdr.Frame.kind <> Frame.Msg then
        Transport_error.fail "domains: player %d got control frame %s" me
          (Frame.kind_name hdr.Frame.kind);
      if hdr.Frame.dst <> me then
        Transport_error.fail
          "domains: player %d got frame addressed to player %d" me
          hdr.Frame.dst;
      if Frame.header_size + hdr.Frame.length <> Bytes.length frame then
        Transport_error.fail "domains: player %d got mis-framed message" me

let worker me box () =
  let buffered = ref [] (* validated frames, reverse arrival order *) in
  try
    let running = ref true in
    while !running do
      Mutex.lock box.mu;
      while box.incoming = [] && box.round = box.served && not box.stop do
        Condition.wait box.cv box.mu
      done;
      let batch = List.rev box.incoming in
      box.incoming <- [];
      let round_due = box.round > box.served in
      let stopping = box.stop in
      Mutex.unlock box.mu;
      List.iter
        (fun frame ->
          validate me frame;
          buffered := frame :: !buffered)
        batch;
      if round_due then begin
        Mutex.lock box.mu;
        box.outbox <- List.rev !buffered;
        buffered := [];
        box.served <- box.round;
        Condition.broadcast box.cv;
        Mutex.unlock box.mu
      end;
      if stopping && not round_due then running := false
    done
  with e ->
    (* Never let the domain die with an uncaught exception — record the
       failure and acknowledge every future barrier so the coordinator
       wakes up and reports it instead of deadlocking. *)
    Mutex.lock box.mu;
    box.failed <- Some (Printexc.to_string e);
    box.served <- box.round;
    Condition.broadcast box.cv;
    Mutex.unlock box.mu

let create ~n =
  let boxes =
    Array.init n (fun _ ->
        {
          mu = Mutex.create ();
          cv = Condition.create ();
          incoming = [];
          round = 0;
          served = 0;
          outbox = [];
          failed = None;
          stop = false;
        })
  in
  let workers = Array.init n (fun i -> Domain.spawn (worker i boxes.(i))) in
  { n; boxes; workers }

let post t ~dst frame =
  let box = t.boxes.(dst) in
  Mutex.lock box.mu;
  (match box.failed with
  | Some why ->
      Mutex.unlock box.mu;
      Transport_error.fail "domains: worker %d is dead: %s" dst why
  | None -> ());
  box.incoming <- frame :: box.incoming;
  Condition.signal box.cv;
  Mutex.unlock box.mu

let barrier t =
  Array.mapi
    (fun i box ->
      Mutex.lock box.mu;
      box.round <- box.round + 1;
      Condition.broadcast box.cv;
      while box.served < box.round && box.failed = None do
        Condition.wait box.cv box.mu
      done;
      let out = box.outbox in
      box.outbox <- [];
      let failed = box.failed in
      Mutex.unlock box.mu;
      (match failed with
      | Some why -> Transport_error.fail "domains: worker %d died: %s" i why
      | None -> ());
      out)
    t.boxes

let shutdown t =
  Array.iter
    (fun box ->
      Mutex.lock box.mu;
      box.stop <- true;
      Condition.broadcast box.cv;
      Mutex.unlock box.mu)
    t.boxes;
  Array.iter Domain.join t.workers
