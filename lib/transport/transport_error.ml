exception Backend_failure of string
(** A transport backend broke its delivery contract: a worker domain
    died, a player process exited or timed out, or a frame failed
    validation at the receiving player. Distinct from simulated faults
    (those are part of the experiment) and from {!Net.Desync} (the
    coordinator-side bookkeeping mismatch). *)

let fail fmt = Printf.ksprintf (fun s -> raise (Backend_failure s)) fmt

type peer_failure = { reason : string; undecodable : bool }
(** One peer's failure as observed at the frame I/O level, reported by a
    backend barrier instead of raised so the supervision layer can
    tolerate it per peer. [undecodable] distinguishes a stream that
    carried mangled bytes (attributable as {e Undecodable} evidence)
    from plain death or a missed deadline (which surface as silence). *)

let peer_failure ?(undecodable = false) fmt =
  Printf.ksprintf (fun reason -> Error { reason; undecodable }) fmt
