exception Backend_failure of string
(** A transport backend broke its delivery contract: a worker domain
    died, a player process exited or timed out, or a frame failed
    validation at the receiving player. Distinct from simulated faults
    (those are part of the experiment) and from {!Net.Desync} (the
    coordinator-side bookkeeping mismatch). *)

let fail fmt = Printf.ksprintf (fun s -> raise (Backend_failure s)) fmt
