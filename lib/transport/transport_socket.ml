(* Process backend: one forked child per player, connected to the
   coordinator by a Unix domain socket pair carrying length-prefixed
   {!Frame}s. The child buffers every [Msg] frame addressed to it; on a
   [Round] control frame it echoes the buffered frames back in arrival
   order followed by [End_of_round]; on [Stop] it exits.

   Failure reporting is per peer: [post] raises a typed
   {!Transport_error.Backend_failure}, but [barrier] {e returns} each
   peer's outcome — its echoed frames or a {!Transport_error.peer_failure}
   — so the supervision layer can tolerate individual deaths while the
   unsupervised path converts the first failure into the same fatal
   error as before. Reads carry per-attempt OS-level deadlines with
   bounded retry-and-backoff; a peer that exhausts the budget is
   declared stalled, killed, and reaped, never hung on. *)

type conn = {
  fd : Unix.file_descr;
  pid : int;
  mutable exit_status : Unix.process_status option;
      (* recorded when the child is reaped; [None] while running *)
}

type t = { n : int; conns : conn array; timeout : float }

let sigpipe_ignored = ref false

(* A dead child must surface as EPIPE on write, not kill the whole
   coordinator process. *)
let ignore_sigpipe () =
  if not !sigpipe_ignored then begin
    sigpipe_ignored := true;
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())
  end

let really_write fd b =
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write fd b !pos (len - !pos) with
    | k -> pos := !pos + k
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        (* The send buffer stayed full past the socket's send deadline:
           the peer has stopped draining its stream. Surface it as a
           typed failure instead of blocking the coordinator forever. *)
        Transport_error.fail "socket: write stalled past the send deadline"
  done

exception Closed

(* Read exactly [len] bytes into [b] at [pos]; [Closed] on EOF. Bytes
   already read are kept across [EAGAIN] wakeups, so a slow-but-alive
   peer never tears a frame; only the attempt budget is consumed. With
   [retries = 0] a single missed deadline raises [Stalled], the
   pre-supervision timeout behaviour. *)
exception Stalled

let really_read ?(deadline = 0.0) ?(retries = 0) ?(backoff = 1.0)
    ?(on_stall = fun ~attempt:_ -> ()) fd b pos len =
  let got = ref 0 in
  let attempt = ref 0 in
  while !got < len do
    match Unix.read fd b (pos + !got) (len - !got) with
    | 0 -> raise Closed
    | k -> got := !got + k
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        if !attempt >= retries then raise Stalled;
        incr attempt;
        on_stall ~attempt:!attempt;
        (* Back off: each retry waits longer at the OS level. *)
        if deadline > 0.0 then
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO
            (deadline *. (backoff ** float_of_int !attempt))
  done

(* Read one whole frame off the stream: fixed header, then exactly the
   announced payload. Returns the raw frame bytes and its parsed
   header. Frame.decode_header bounds-checks the length field before we
   allocate. *)
let read_frame ?deadline ?retries ?backoff ?on_stall fd =
  let rd b pos len = really_read ?deadline ?retries ?backoff ?on_stall fd b pos len in
  let hdr_bytes = Bytes.create Frame.header_size in
  rd hdr_bytes 0 Frame.header_size;
  let hdr = Frame.decode_header hdr_bytes ~pos:0 in
  let frame = Bytes.create (Frame.header_size + hdr.Frame.length) in
  Bytes.blit hdr_bytes 0 frame 0 Frame.header_size;
  rd frame Frame.header_size hdr.Frame.length;
  (hdr, frame)

(* The child's whole life: buffer messages, echo them at each round
   barrier, exit on [Stop]. Any protocol violation — a mis-addressed
   frame, garbage on the stream, coordinator vanishing — exits with a
   distinct status; the coordinator reads the status back at reap time
   and classifies the death (status 3 = the stream carried bytes that
   failed to decode). *)
let child_loop fd me =
  let buffered = ref [] in
  let running = ref true in
  while !running do
    let hdr, frame = read_frame fd in
    match hdr.Frame.kind with
    | Frame.Msg ->
        if hdr.Frame.dst <> me then Unix._exit 3;
        buffered := frame :: !buffered
    | Frame.Round ->
        List.iter (really_write fd) (List.rev !buffered);
        buffered := [];
        really_write fd
          (Frame.encode Frame.End_of_round ~src:me ~dst:me ~uid:0
             ~payload:Bytes.empty)
    | Frame.Stop -> running := false
    | Frame.End_of_round -> Unix._exit 3
  done

let create ~timeout ~n =
  ignore_sigpipe ();
  let parents = ref [] in
  let conns =
    Array.init n (fun i ->
        let parent, child = Unix.(socketpair PF_UNIX SOCK_STREAM 0) in
        match Unix.fork () with
        | 0 ->
            (* Child: drop every coordinator-side descriptor inherited
               from earlier forks so EOF detection stays crisp, then
               serve player [i] until told to stop. Exit with _exit —
               never back into the caller's at_exit machinery. *)
            List.iter (fun fd -> try Unix.close fd with _ -> ()) !parents;
            (try Unix.close parent with _ -> ());
            (try child_loop child i with
            | Closed | Stalled | Unix.Unix_error _ -> Unix._exit 2
            | Frame.Error _ -> Unix._exit 3
            | _ -> Unix._exit 4);
            Unix._exit 0
        | pid ->
            Unix.close child;
            Unix.setsockopt_float parent Unix.SO_RCVTIMEO timeout;
            Unix.setsockopt_float parent Unix.SO_SNDTIMEO timeout;
            parents := parent :: !parents;
            { fd = parent; pid; exit_status = None })
  in
  { n; conns; timeout }

(* --------------------------- reaping ----------------------------- *)

let pp_status = function
  | Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

(* Reap one child without ever blocking forever: poll with [WNOHANG],
   escalate SIGTERM after [grace] seconds and SIGKILL after another
   grace period. [ECHILD] means the child is already gone (reaped
   elsewhere or never existed) and is not an error; other waitpid
   errors are recorded, not swallowed. Records and returns the exit
   status so the caller can classify the death. *)
let reap ?(grace = 0.5) conn =
  match conn.exit_status with
  | Some st -> Some st
  | None ->
      let signal s = try Unix.kill conn.pid s with Unix.Unix_error _ -> () in
      let deadline_step = 0.01 in
      let rec poll ~waited ~termed ~killed =
        match Unix.waitpid [ Unix.WNOHANG ] conn.pid with
        | 0, _ ->
            if (not termed) && waited >= grace then begin
              (* The child normally exits on its own after [Stop] well
                 within the grace period; only then ask a wedged one to
                 leave. *)
              signal Sys.sigterm;
              Unix.sleepf deadline_step;
              poll ~waited:(waited +. deadline_step) ~termed:true ~killed
            end
            else if termed && (not killed) && waited >= 2.0 *. grace then begin
              (* SIGTERM is not enough for a SIGSTOPped child (pending
                 until it is continued); SIGKILL terminates it
                 regardless. *)
              signal Sys.sigkill;
              Unix.sleepf deadline_step;
              poll ~waited:(waited +. deadline_step) ~termed ~killed:true
            end
            else begin
              Unix.sleepf deadline_step;
              poll ~waited:(waited +. deadline_step) ~termed ~killed
            end
        | _, st ->
            conn.exit_status <- Some st;
            Some st
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
            (* Already reaped (or inherited by init): nothing to record,
               but not a failure either. *)
            None
        | exception Unix.Unix_error (e, _, _) ->
            Transport_error.fail "socket: waitpid for player %d: %s" conn.pid
              (Unix.error_message e)
      in
      poll ~waited:0.0 ~termed:false ~killed:false

let exit_status t i = t.conns.(i).exit_status

(* --------------------------- frame I/O --------------------------- *)

let backend_trouble dst what =
  Transport_error.fail "socket: player process %d %s" dst what

let post t ~dst frame =
  match really_write t.conns.(dst).fd frame with
  | () -> ()
  | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
      backend_trouble dst "is dead"
  | exception Unix.Unix_error (e, _, _) ->
      backend_trouble dst (Unix.error_message e)

(* Declare one peer failed during a barrier: make sure the child is
   actually gone (a stalled-but-alive child is killed so it cannot
   desync later rounds), grab its exit status, and classify — exit
   status 3 means the child's stream carried undecodable bytes. *)
let declare ~undecodable conn fmt =
  Printf.ksprintf
    (fun what ->
      let st = reap conn in
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      let undecodable =
        undecodable || st = Some (Unix.WEXITED 3)
      in
      let reason =
        match st with
        | Some st -> Printf.sprintf "%s (%s)" what (pp_status st)
        | None -> what
      in
      Error { Transport_error.reason; undecodable })
    fmt

(* One peer's barrier: send the [Round] control frame, then read echoed
   frames until [End_of_round], under the given read policy. *)
let barrier_peer ~deadline ~retries ~backoff ~on_stall i conn =
  Unix.setsockopt_float conn.fd Unix.SO_RCVTIMEO deadline;
  match
    really_write conn.fd
      (Frame.encode Frame.Round ~src:i ~dst:i ~uid:0 ~payload:Bytes.empty)
  with
  | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
      declare ~undecodable:false conn "is dead"
  | exception Unix.Unix_error (e, _, _) ->
      declare ~undecodable:false conn "%s" (Unix.error_message e)
  | exception Transport_error.Backend_failure why ->
      declare ~undecodable:false conn "%s" why
  | () -> (
      let frames = ref [] in
      let result = ref None in
      (try
         while !result = None do
           match read_frame ~deadline ~retries ~backoff ~on_stall conn.fd with
           | { Frame.kind = Frame.End_of_round; _ }, _ ->
               result := Some (Ok (List.rev !frames))
           | { Frame.kind = Frame.Msg; _ }, frame -> frames := frame :: !frames
           | { Frame.kind = Frame.Round | Frame.Stop; _ }, _ ->
               result :=
                 Some (declare ~undecodable:true conn "echoed a control frame")
         done
       with
      | Closed -> result := Some (declare ~undecodable:false conn "exited mid-round")
      | Stalled ->
          result :=
            Some
              (declare ~undecodable:false conn
                 "missed the read deadline (%d attempts of %.3gs)" (retries + 1)
                 deadline)
      | Unix.Unix_error (e, _, _) ->
          result := Some (declare ~undecodable:false conn "%s" (Unix.error_message e))
      | Frame.Error e ->
          result :=
            Some
              (declare ~undecodable:true conn "sent a bad frame: %s"
                 (Format.asprintf "%a" Frame.pp_error e)));
      match !result with Some r -> r | None -> assert false)

(* The coordinator-side barrier. [skip]ped peers (already declared dead
   by the supervision layer) are not posted to, not read from, and
   report an empty echo list; everyone else is polled in player order
   under the read policy. Per-peer outcomes are returned, never raised
   — the caller decides whether a failure is fatal. *)
let barrier ?(skip = fun _ -> false) ?deadline ?(retries = 0) ?(backoff = 1.0)
    ?(on_stall = fun ~player:_ ~attempt:_ -> ()) t =
  let deadline = match deadline with Some d -> d | None -> t.timeout in
  Array.mapi
    (fun i conn ->
      if skip i then Ok []
      else
        barrier_peer ~deadline ~retries ~backoff
          ~on_stall:(fun ~attempt -> on_stall ~player:i ~attempt)
          i conn)
    t.conns

(* -------------------------- chaos hooks -------------------------- *)

(* Used only by the chaos injector (DESIGN.md section 16): real process
   failures, induced on purpose. All tolerate an already-dead child. *)

let kill_peer t i =
  try Unix.kill t.conns.(i).pid Sys.sigkill with Unix.Unix_error _ -> ()

(* A stopped child stops draining its stream: reads from it miss their
   deadlines, which is exactly a wedged peer. The supervisor's stall
   path kills and reaps it once the retry budget is exhausted (SIGKILL
   terminates stopped processes too). *)
let stall_peer t i =
  try Unix.kill t.conns.(i).pid Sys.sigstop with Unix.Unix_error _ -> ()

(* Resume a SIGSTOPped child. Used by the chaos wiring to bound a stall
   below the supervision budget so retry-and-backoff recovers it. *)
let resume_peer t i =
  try Unix.kill t.conns.(i).pid Sys.sigcont with Unix.Unix_error _ -> ()

(* Inject undecodable bytes into the peer's stream: a junk header with
   a wrong magic. The child's next decode fails and it exits with
   status 3, which the supervisor classifies as Undecodable. *)
let garble_peer t i =
  let junk = Bytes.make Frame.header_size '\xFF' in
  try really_write t.conns.(i).fd junk
  with Unix.Unix_error _ | Transport_error.Backend_failure _ -> ()

(* -------------------------- shutdown ----------------------------- *)

let shutdown t =
  Array.iteri
    (fun i conn ->
      (try
         really_write conn.fd
           (Frame.encode Frame.Stop ~src:i ~dst:i ~uid:0 ~payload:Bytes.empty)
       with
      | Unix.Unix_error _ | Transport_error.Backend_failure _ -> ());
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      (* Reap with escalation: a healthy child exits promptly on [Stop];
         a wedged or stopped one is SIGTERMed, then SIGKILLed after the
         grace period. Never leaves a zombie behind, and the status is
         recorded for post-mortems rather than swallowed. *)
      ignore (reap conn))
    t.conns
