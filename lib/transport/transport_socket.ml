(* Process backend: one forked child per player, connected to the
   coordinator by a Unix domain socket pair carrying length-prefixed
   {!Frame}s. The child buffers every [Msg] frame addressed to it; on a
   [Round] control frame it echoes the buffered frames back in arrival
   order followed by [End_of_round]; on [Stop] it exits. The
   coordinator's receive path carries an OS-level timeout so a wedged or
   dead child surfaces as a typed {!Transport_error.Backend_failure}
   instead of hanging the run. *)

type conn = { fd : Unix.file_descr; pid : int }
type t = { n : int; conns : conn array }

let sigpipe_ignored = ref false

(* A dead child must surface as EPIPE on write, not kill the whole
   coordinator process. *)
let ignore_sigpipe () =
  if not !sigpipe_ignored then begin
    sigpipe_ignored := true;
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())
  end

let really_write fd b =
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write fd b !pos (len - !pos)
  done

exception Closed

(* Read exactly [len] bytes into [b] at [pos]; [Closed] on EOF. *)
let really_read fd b pos len =
  let got = ref 0 in
  while !got < len do
    let k = Unix.read fd b (pos + !got) (len - !got) in
    if k = 0 then raise Closed;
    got := !got + k
  done

(* Read one whole frame off the stream: fixed header, then exactly the
   announced payload. Returns the raw frame bytes and its parsed
   header. Frame.decode_header bounds-checks the length field before we
   allocate. *)
let read_frame fd =
  let hdr_bytes = Bytes.create Frame.header_size in
  really_read fd hdr_bytes 0 Frame.header_size;
  let hdr = Frame.decode_header hdr_bytes ~pos:0 in
  let frame = Bytes.create (Frame.header_size + hdr.Frame.length) in
  Bytes.blit hdr_bytes 0 frame 0 Frame.header_size;
  really_read fd frame Frame.header_size hdr.Frame.length;
  (hdr, frame)

(* The child's whole life: buffer messages, echo them at each round
   barrier, exit on [Stop]. Any protocol violation — a mis-addressed
   frame, garbage on the stream, coordinator vanishing — exits with a
   distinct status; the coordinator reports the failure when its next
   read times out or hits EOF. *)
let child_loop fd me =
  let buffered = ref [] in
  let running = ref true in
  while !running do
    let hdr, frame = read_frame fd in
    match hdr.Frame.kind with
    | Frame.Msg ->
        if hdr.Frame.dst <> me then Unix._exit 3;
        buffered := frame :: !buffered
    | Frame.Round ->
        List.iter (really_write fd) (List.rev !buffered);
        buffered := [];
        really_write fd
          (Frame.encode Frame.End_of_round ~src:me ~dst:me ~uid:0
             ~payload:Bytes.empty)
    | Frame.Stop -> running := false
    | Frame.End_of_round -> Unix._exit 3
  done

let create ~timeout ~n =
  ignore_sigpipe ();
  let parents = ref [] in
  let conns =
    Array.init n (fun i ->
        let parent, child = Unix.(socketpair PF_UNIX SOCK_STREAM 0) in
        match Unix.fork () with
        | 0 ->
            (* Child: drop every coordinator-side descriptor inherited
               from earlier forks so EOF detection stays crisp, then
               serve player [i] until told to stop. Exit with _exit —
               never back into the caller's at_exit machinery. *)
            List.iter (fun fd -> try Unix.close fd with _ -> ()) !parents;
            (try Unix.close parent with _ -> ());
            (try child_loop child i with
            | Closed | Unix.Unix_error _ -> Unix._exit 2
            | Frame.Error _ -> Unix._exit 3
            | _ -> Unix._exit 4);
            Unix._exit 0
        | pid ->
            Unix.close child;
            Unix.setsockopt_float parent Unix.SO_RCVTIMEO timeout;
            parents := parent :: !parents;
            { fd = parent; pid })
  in
  { n; conns }

let backend_trouble dst what =
  Transport_error.fail "socket: player process %d %s" dst what

let post t ~dst frame =
  match really_write t.conns.(dst).fd frame with
  | () -> ()
  | exception Unix.Unix_error (EPIPE, _, _) -> backend_trouble dst "is dead"
  | exception Unix.Unix_error (e, _, _) ->
      backend_trouble dst (Unix.error_message e)

let barrier t =
  Array.mapi
    (fun i conn ->
      post t ~dst:i
        (Frame.encode Frame.Round ~src:i ~dst:i ~uid:0 ~payload:Bytes.empty);
      let frames = ref [] in
      let finished = ref false in
      while not !finished do
        match read_frame conn.fd with
        | { Frame.kind = Frame.End_of_round; _ }, _ -> finished := true
        | { Frame.kind = Frame.Msg; _ }, frame -> frames := frame :: !frames
        | { Frame.kind = Frame.Round | Frame.Stop; _ }, _ ->
            backend_trouble i "echoed a control frame"
        | exception Closed -> backend_trouble i "exited mid-round"
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
            backend_trouble i "timed out"
        | exception Unix.Unix_error (e, _, _) ->
            backend_trouble i (Unix.error_message e)
        | exception Frame.Error e ->
            backend_trouble i
              (Format.asprintf "sent a bad frame: %a" Frame.pp_error e)
      done;
      List.rev !frames)
    t.conns

let shutdown t =
  Array.iteri
    (fun i conn ->
      (try
         really_write conn.fd
           (Frame.encode Frame.Stop ~src:i ~dst:i ~uid:0 ~payload:Bytes.empty)
       with _ -> ());
      (try Unix.close conn.fd with _ -> ());
      try ignore (Unix.waitpid [] conn.pid) with _ -> ())
    t.conns
